// Generic scenario-runner front-end: runs any registered sweep (or several,
// sharing one stage cache so e.g. table4 + fig5 never retrain a model the
// other already produced) or an ad-hoc grid, and emits the uniform
// BENCH_<name>.json artifact.
//
//   ./bench_runner --scenarios=table4,fig5 [--epochs=150]
//   ./bench_runner --grid='CoraLike,CiteseerLike;GCN,GAT;Vanilla,PPFR'
//   ./bench_runner --scenarios=smoke --epochs=8 --runner_threads=2
//
// --grid takes three ';'-separated comma-lists (datasets;models;methods);
// an empty or '*' component means the default grid for that axis. All names
// are matched exactly and die with the valid list on a typo.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {"scenarios", "grid", "journal", "resume"});
  la::ConfigureBackendFromFlags(flags);

  runner::Sweep sweep = runner::SweepFromFlags(flags, /*default_name=*/"smoke");
  runner::ApplyCommonOverrides(flags, &sweep);

  std::printf("sweep %s — %s (%zu cells)\n\n", sweep.name.c_str(),
              sweep.title.c_str(), sweep.cells.size());

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  TablePrinter table({"Dataset", "Model", "Cell", "Seed", "Acc%", "Bias",
                      "Risk AUC", "dAcc%", "dBias%", "dRisk%", "D", "sec"});
  for (const runner::CellResult& cell : result.cells) {
    if (cell.failed) {
      table.AddRow({data::DatasetName(cell.scenario.dataset),
                    nn::ModelKindName(cell.scenario.model),
                    cell.scenario.DisplayLabel(), std::to_string(cell.seed),
                    "FAILED", "-", "-", "-", "-", "-", "-",
                    TablePrinter::Num(cell.seconds, 1)});
      continue;
    }
    const bool vanilla = cell.scenario.method == core::MethodKind::kVanilla;
    table.AddRow({data::DatasetName(cell.scenario.dataset),
                  nn::ModelKindName(cell.scenario.model), cell.scenario.DisplayLabel(),
                  std::to_string(cell.seed),
                  TablePrinter::Num(100.0 * cell.run->eval.accuracy),
                  TablePrinter::Num(cell.run->eval.bias, 4),
                  TablePrinter::Num(cell.run->eval.risk_auc, 4),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_acc),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_bias),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_risk),
                  vanilla ? "-" : TablePrinter::Num(cell.delta.combined, 3),
                  TablePrinter::Num(cell.seconds, 1)});
  }
  table.Print();

  if (result.failed_cells > 0 || result.resumed_cells > 0) {
    std::printf("\n%lld cell(s) resumed from the journal, %lld FAILED",
                static_cast<long long>(result.resumed_cells),
                static_cast<long long>(result.failed_cells));
    for (const runner::CellResult& cell : result.cells) {
      if (!cell.failed) continue;
      std::printf("\n  FAILED %s seed %llu: %s", cell.scenario.DisplayLabel().c_str(),
                  static_cast<unsigned long long>(cell.seed), cell.error.c_str());
    }
    std::printf("\n");
  }

  // Cross-seed mean ± stddev per logical cell (the numbers the paper's
  // tables actually report) whenever the sweep was seed-expanded.
  if (result.seeds.size() > 1) {
    std::printf("\naggregates over %zu seeds (mean +/- stddev):\n",
                result.seeds.size());
    TablePrinter agg_table(
        {"Dataset", "Model", "Cell", "Acc%", "+/-", "Bias", "+/-", "Risk AUC", "+/-"});
    for (const runner::CellAggregate& g : runner::AggregateCells(result)) {
      agg_table.AddRow(
          {data::DatasetName(g.scenario.dataset), nn::ModelKindName(g.scenario.model),
           g.scenario.DisplayLabel(),
           TablePrinter::Num(100.0 * g.metrics.at("accuracy").mean),
           TablePrinter::Num(100.0 * g.metrics.at("accuracy").stddev),
           TablePrinter::Num(g.metrics.at("bias").mean, 4),
           TablePrinter::Num(g.metrics.at("bias").stddev, 4),
           TablePrinter::Num(g.metrics.at("risk_auc").mean, 4),
           TablePrinter::Num(g.metrics.at("risk_auc").stddev, 4)});
    }
    agg_table.Print();
  }

  const runner::RunCache::Stats stats = cache.stats();
  std::printf(
      "\n%zu cells in %.1fs (%d runner threads) — vanilla trains %lld "
      "(+%lld from disk), stage hits: vanilla %lld, dp %lld, pp %lld, "
      "fr %lld, cell %lld, disk loads %lld\n",
      result.cells.size(), result.wall_seconds, result.threads,
      static_cast<long long>(stats.vanilla.misses - stats.vanilla.disk_hits),
      static_cast<long long>(stats.vanilla.disk_hits),
      static_cast<long long>(stats.vanilla.hits),
      static_cast<long long>(stats.dp_context.hits),
      static_cast<long long>(stats.pp_context.hits),
      static_cast<long long>(stats.fr.hits),
      static_cast<long long>(stats.cell.hits),
      static_cast<long long>(stats.vanilla.disk_hits + stats.dp_context.disk_hits +
                             stats.pp_context.disk_hits + stats.fr.disk_hits +
                             stats.cell.disk_hits));
  return 0;
}

// Generic scenario-runner front-end: runs any registered sweep (or several,
// sharing one stage cache so e.g. table4 + fig5 never retrain a model the
// other already produced) or an ad-hoc grid, and emits the uniform
// BENCH_<name>.json artifact.
//
//   ./bench_runner --scenarios=table4,fig5 [--epochs=150]
//   ./bench_runner --grid='CoraLike,CiteseerLike;GCN,GAT;Vanilla,PPFR'
//   ./bench_runner --scenarios=smoke --epochs=8 --runner_threads=2
//
// --grid takes three ';'-separated comma-lists (datasets;models;methods);
// an empty or '*' component means the default grid for that axis. All names
// are matched exactly and die with the valid list on a typo.
//
// Fleet mode (see EXPERIMENTS.md "fleet protocol"):
//   ./bench_runner --scenarios=smoke --shard=0/3 --shard_dir=shards
//       --run_cache_dir=cache        # one process per shard, any machines
//   ./bench_runner --scenarios=smoke --merge=shards --stable_artifact
// Each shard journals to shards/shard-<i>of<N>.journal and writes a
// BENCH_<name>.shard-<i>of<N>.json artifact; a SIGKILL'd shard re-runs with
// --resume added. --merge reassembles the full artifact from the journals:
// exit 0 and a bitwise-unsharded artifact when every shard arrived, exit 3
// with missing_shards/missing_cells/conflicting_cells reported when
// degraded. SIGTERM/SIGINT on a running sweep stops gracefully: in-flight
// cells finish and journal, the artifact is written with interrupted:true,
// and the exit code is 4.

#include <cstdio>

#include "bench_util.h"
#include "runner/shard_merge.h"

namespace {

// --merge=DIR mode: no cells run; the sweep definition (same flags as the
// shard runs) pins the grid and the journals supply the results.
int RunMergeMode(const ppfr::Flags& flags, const ppfr::runner::Sweep& sweep) {
  using namespace ppfr;
  const std::string dir = flags.GetString("merge", "");
  if (dir.empty() || dir == "true") {
    std::fprintf(stderr, "--merge wants the shard directory (e.g. --merge=shards)\n");
    return bench::kExitUsage;
  }
  if (flags.Has("shard") || flags.Has("journal") || flags.GetBool("resume", false)) {
    std::fprintf(stderr, "--merge cannot be combined with --shard/--journal/--resume\n");
    return bench::kExitUsage;
  }
  runner::ShardMergeOptions options;
  options.shard_dir = dir;
  options.env_seed = flags.GetUint64("env_seed", core::kDefaultEnvSeed);
  runner::ShardMergeReport report;
  const runner::SweepResult result = runner::MergeShards(sweep, options, &report);
  bench::EmitArtifact(flags, result);

  std::printf("merged %zu of %d shard journal(s): %zu cells",
              report.present_shards.size(), report.shard_count,
              result.cells.size());
  if (report.complete) {
    std::printf(", complete\n");
    return 0;
  }
  std::printf(", DEGRADED —");
  if (!result.missing_shards.empty()) {
    std::printf(" missing shards:");
    for (int s : result.missing_shards) std::printf(" %d", s);
    std::printf(" (re-run them against the same --shard_dir, then merge again);");
  }
  std::printf(" %lld missing cell(s), %lld conflicting cell(s)\n",
              static_cast<long long>(result.missing_cells),
              static_cast<long long>(result.conflicting_cells));
  return bench::kExitDegradedMerge;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(
      flags, {"scenarios", "grid", "journal", "resume", "shard", "shard_dir",
              "merge", "cache_gc_bytes", "cache_gc_age_s"});
  la::ConfigureBackendFromFlags(flags);

  runner::Sweep sweep = runner::SweepFromFlags(flags, /*default_name=*/"smoke");
  runner::ApplyCommonOverrides(flags, &sweep);

  bench::PreflightOutputPaths(flags);
  if (flags.Has("merge")) return RunMergeMode(flags, sweep);

  runner::RunnerOptions opts = bench::RunnerOptionsFromFlags(flags);
  const bench::ShardSpec shard = bench::ShardFromFlags(flags);
  std::string artifact_suffix;
  if (shard.count > 1) {
    opts.shard_index = shard.index;
    opts.shard_count = shard.count;
    opts.journal_path =
        shard.dir + "/" + runner::ShardJournalFilename(shard.index, shard.count);
    artifact_suffix = ".shard-" + std::to_string(shard.index) + "of" +
                      std::to_string(shard.count);
  }
  opts.stop = bench::InstallGracefulStop();

  std::printf("sweep %s — %s (%zu cells%s)\n\n", sweep.name.c_str(),
              sweep.title.c_str(),
              runner::ExpandCells(sweep).size(),
              shard.count > 1
                  ? (", shard " + std::to_string(shard.index) + "/" +
                     std::to_string(shard.count))
                        .c_str()
                  : "");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = runner::RunSweep(sweep, &cache, opts);
  bench::EmitArtifact(flags, result, artifact_suffix);

  TablePrinter table({"Dataset", "Model", "Cell", "Seed", "Acc%", "Bias",
                      "Risk AUC", "dAcc%", "dBias%", "dRisk%", "D", "sec"});
  for (const runner::CellResult& cell : result.cells) {
    if (cell.failed || cell.skipped) {
      table.AddRow({data::DatasetName(cell.scenario.dataset),
                    nn::ModelKindName(cell.scenario.model),
                    cell.scenario.DisplayLabel(), std::to_string(cell.seed),
                    cell.failed ? "FAILED" : "SKIPPED", "-", "-", "-", "-", "-",
                    "-", TablePrinter::Num(cell.seconds, 1)});
      continue;
    }
    const bool vanilla = cell.scenario.method == core::MethodKind::kVanilla;
    table.AddRow({data::DatasetName(cell.scenario.dataset),
                  nn::ModelKindName(cell.scenario.model), cell.scenario.DisplayLabel(),
                  std::to_string(cell.seed),
                  TablePrinter::Num(100.0 * cell.run->eval.accuracy),
                  TablePrinter::Num(cell.run->eval.bias, 4),
                  TablePrinter::Num(cell.run->eval.risk_auc, 4),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_acc),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_bias),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_risk),
                  vanilla ? "-" : TablePrinter::Num(cell.delta.combined, 3),
                  TablePrinter::Num(cell.seconds, 1)});
  }
  table.Print();

  if (result.failed_cells > 0 || result.resumed_cells > 0) {
    std::printf("\n%lld cell(s) resumed from the journal, %lld FAILED",
                static_cast<long long>(result.resumed_cells),
                static_cast<long long>(result.failed_cells));
    for (const runner::CellResult& cell : result.cells) {
      if (!cell.failed) continue;
      std::printf("\n  FAILED %s seed %llu: %s", cell.scenario.DisplayLabel().c_str(),
                  static_cast<unsigned long long>(cell.seed), cell.error.c_str());
    }
    std::printf("\n");
  }

  // Cross-seed mean ± stddev per logical cell (the numbers the paper's
  // tables actually report) whenever the sweep was seed-expanded.
  if (result.seeds.size() > 1) {
    std::printf("\naggregates over %zu seeds (mean +/- stddev):\n",
                result.seeds.size());
    TablePrinter agg_table(
        {"Dataset", "Model", "Cell", "Acc%", "+/-", "Bias", "+/-", "Risk AUC", "+/-"});
    for (const runner::CellAggregate& g : runner::AggregateCells(result)) {
      agg_table.AddRow(
          {data::DatasetName(g.scenario.dataset), nn::ModelKindName(g.scenario.model),
           g.scenario.DisplayLabel(),
           TablePrinter::Num(100.0 * g.metrics.at("accuracy").mean),
           TablePrinter::Num(100.0 * g.metrics.at("accuracy").stddev),
           TablePrinter::Num(g.metrics.at("bias").mean, 4),
           TablePrinter::Num(g.metrics.at("bias").stddev, 4),
           TablePrinter::Num(g.metrics.at("risk_auc").mean, 4),
           TablePrinter::Num(g.metrics.at("risk_auc").stddev, 4)});
    }
    agg_table.Print();
  }

  const runner::RunCache::Stats stats = cache.stats();
  std::printf(
      "\n%zu cells in %.1fs (%d runner threads) — vanilla trains %lld "
      "(+%lld from disk), stage hits: vanilla %lld, dp %lld, pp %lld, "
      "fr %lld, cell %lld, disk loads %lld\n",
      result.cells.size(), result.wall_seconds, result.threads,
      static_cast<long long>(stats.vanilla.misses - stats.vanilla.disk_hits),
      static_cast<long long>(stats.vanilla.disk_hits),
      static_cast<long long>(stats.vanilla.hits),
      static_cast<long long>(stats.dp_context.hits),
      static_cast<long long>(stats.pp_context.hits),
      static_cast<long long>(stats.fr.hits),
      static_cast<long long>(stats.cell.hits),
      static_cast<long long>(stats.vanilla.disk_hits + stats.dp_context.disk_hits +
                             stats.pp_context.disk_hits + stats.fr.disk_hits +
                             stats.cell.disk_hits));

  bench::MaybeRunCacheGc(flags, cache);

  if (result.interrupted) {
    std::printf("sweep interrupted: %lld cell(s) skipped — resume with the "
                "same journal to finish\n",
                static_cast<long long>(result.skipped_cells));
    return bench::kExitInterrupted;
  }
  return 0;
}

// Generic scenario-runner front-end: runs any registered sweep (or several,
// sharing one stage cache so e.g. table4 + fig5 never retrain a model the
// other already produced) or an ad-hoc grid, and emits the uniform
// BENCH_<name>.json artifact.
//
//   ./bench_runner --scenarios=table4,fig5 [--epochs=150]
//   ./bench_runner --grid='CoraLike,CiteseerLike;GCN,GAT;Vanilla,PPFR'
//   ./bench_runner --scenarios=smoke --epochs=8 --runner_threads=2
//
// --grid takes three ';'-separated comma-lists (datasets;models;methods);
// an empty or '*' component means the default grid for that axis. All names
// are matched exactly and die with the valid list on a typo.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {"scenarios", "grid"});
  la::ConfigureBackendFromFlags(flags);

  runner::Sweep sweep = runner::SweepFromFlags(flags, /*default_name=*/"smoke");
  runner::ApplyCommonOverrides(flags, &sweep);

  std::printf("sweep %s — %s (%zu cells)\n\n", sweep.name.c_str(),
              sweep.title.c_str(), sweep.cells.size());

  runner::RunCache cache;
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  TablePrinter table({"Dataset", "Model", "Cell", "Acc%", "Bias", "Risk AUC",
                      "dAcc%", "dBias%", "dRisk%", "D", "sec"});
  for (const runner::CellResult& cell : result.cells) {
    const bool vanilla = cell.scenario.method == core::MethodKind::kVanilla;
    table.AddRow({data::DatasetName(cell.scenario.dataset),
                  nn::ModelKindName(cell.scenario.model), cell.scenario.DisplayLabel(),
                  TablePrinter::Num(100.0 * cell.run->eval.accuracy),
                  TablePrinter::Num(cell.run->eval.bias, 4),
                  TablePrinter::Num(cell.run->eval.risk_auc, 4),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_acc),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_bias),
                  vanilla ? "-" : TablePrinter::Pct(cell.delta.d_risk),
                  vanilla ? "-" : TablePrinter::Num(cell.delta.combined, 3),
                  TablePrinter::Num(cell.seconds, 1)});
  }
  table.Print();

  const runner::RunCache::Stats stats = cache.stats();
  std::printf(
      "\n%zu cells in %.1fs (%d runner threads) — vanilla trains %lld, "
      "stage hits: vanilla %lld, dp %lld, pp %lld, fr %lld, cell %lld\n",
      result.cells.size(), result.wall_seconds, result.threads,
      static_cast<long long>(stats.vanilla.misses),
      static_cast<long long>(stats.vanilla.hits),
      static_cast<long long>(stats.dp_context.hits),
      static_cast<long long>(stats.pp_context.hits),
      static_cast<long long>(stats.fr.hits),
      static_cast<long long>(stats.cell.hits));
  return 0;
}

// Scale-axis benchmark: nodes vs wall-time / peak-memory curves.
//
// Runs the streamed scale pipeline end to end at each point of a named sweep
// ("scale-smoke" for CI, "scale" for the committed trajectory) and times its
// four stages in isolation:
//   * generate  — one pass over the counter-based streamed edge multiset
//                 (no edge list, no CSR; measures raw generator throughput);
//   * build     — ScaleDataset construction, i.e. the two-pass bounded-peak
//                 CSR build replaying the same stream;
//   * train     — neighbour-sampled mini-batch GraphSAGE (TrainSampled):
//                 fanout-capped 2-hop blocks, per-batch frontier feature
//                 gathers — at no point does a full feature matrix exist;
//   * influence — the frontier-partitioned per-node influence sweep
//                 (PartitionByTwoHopSupport + RunFrontierSweep) on the
//                 materialised graph; only run at points small enough to
//                 hold the dense full-graph forward.
//
// Each stage reports wall seconds, the arena peak (logical bytes of live
// la::Matrix/CsrMatrix/CsrAdjacency buffers, reset per stage) and the
// process peak RSS (VmHWM — monotone over the process, so per-stage values
// read as "peak so far"). Emits BENCH_scale.json (schema pinned by
// bench/golden/artifact_schema.txt, section "scale"); --stable_artifact
// zeroes the measured fields so reruns with identical results are bitwise
// identical.
//
// The influence stage composes with fleet sharding: --shard=i/N runs only
// the frontier chunks owned by shard i (chunk k belongs to shard k % N).
//
//   ./bench_scale --sweep=scale-smoke --fanout=5 --batch_nodes=256
//       --epochs=3 --la_backend=parallel --la_threads=4 --json_dir=.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/scale_gen.h"
#include "graph/csr_builder.h"
#include "influence/frontier.h"
#include "influence/influence.h"
#include "la/backend.h"
#include "la/matrix.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/trainer.h"

namespace ppfr {
namespace {

// One point of a scale sweep. Training and influence are opt-in per point:
// the generate/build stages stream and never materialise anything dense, so
// they stretch to 10^7 nodes, while the influence stage needs the dense
// full-graph forward and is capped at ~10^5.
struct ScalePoint {
  int64_t nodes = 0;
  bool train = false;
  bool influence = false;
};

struct ScaleSweepSpec {
  std::string name;
  std::vector<ScalePoint> points;
};

// The registered scale sweeps. "scale" is the committed-artifact
// configuration (a >= 10^6-node generate/build/train point on top of the
// fully-staged 10^5 point); "scale-smoke" is the single fully-staged point
// CI runs; "scale-tiny" is a seconds-fast local sanity loop.
std::vector<ScaleSweepSpec> RegisteredScaleSweeps() {
  return {
      {"scale-tiny", {{20000, true, true}}},
      {"scale-smoke", {{100000, true, true}}},
      {"scale",
       {{100000, true, true}, {300000, true, false}, {1000000, true, false}}},
  };
}

ScaleSweepSpec ResolveSweep(const std::string& name) {
  const std::vector<ScaleSweepSpec> sweeps = RegisteredScaleSweeps();
  for (const ScaleSweepSpec& sweep : sweeps) {
    if (sweep.name == name) return sweep;
  }
  std::fprintf(stderr, "--sweep '%s' is not a registered scale sweep; known:",
               name.c_str());
  for (const ScaleSweepSpec& sweep : sweeps) {
    std::fprintf(stderr, " %s", sweep.name.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(bench::kExitUsage);
}

// Per-stage measurement. The arena peak is reset before the stage body runs,
// so it reads "largest logical buffer footprint this stage reached on top of
// what was already live".
struct StageSample {
  bool ran = false;
  double wall_seconds = 0.0;
  int64_t arena_peak_bytes = 0;
  int64_t process_peak_rss_bytes = 0;
};

template <typename Body>
StageSample MeasureStage(const Body& body) {
  la::ResetArenaPeakBytes();
  Stopwatch watch;
  body();
  StageSample sample;
  sample.ran = true;
  sample.wall_seconds = watch.ElapsedSeconds();
  sample.arena_peak_bytes = la::ArenaPeakBytes();
  sample.process_peak_rss_bytes = la::ProcessPeakRssBytes();
  return sample;
}

struct TrainOutcome {
  StageSample stage;
  int train_nodes = 0;
  int batch_nodes = 0;
  double final_loss = 0.0;
  double val_accuracy = 0.0;
};

struct InfluenceOutcome {
  StageSample stage;
  int train_nodes = 0;
  int targets = 0;
  int chunks_total = 0;
  int chunks_run = 0;
  double influence_abs_mean = 0.0;
};

struct PointResult {
  int64_t nodes = 0;
  int64_t edges = 0;
  int64_t edges_streamed = 0;
  int64_t csr_bytes = 0;
  int64_t arena_bytes_after_build = 0;
  int64_t max_degree = 0;
  double average_degree = 0.0;
  StageSample generate;
  StageSample build;
  TrainOutcome train;
  InfluenceOutcome influence;
};

struct BenchOptions {
  uint64_t seed = 1;
  int fanout = 5;
  int batch_nodes = 256;
  int epochs = 3;
  int train_count = 1024;
  int val_count = 512;
  int influence_train = 96;
  int influence_targets = 8;
  int64_t support_budget = 4096;
  int shard_index = 0;
  int shard_count = 1;
};

PointResult RunPoint(const ScalePoint& point, const BenchOptions& opts) {
  PointResult result;
  result.nodes = point.nodes;

  data::ScaleGraphConfig cfg;
  cfg.num_nodes = point.nodes;

  // generate: one streaming pass, counting the emitted multiset. This is the
  // pure generator cost — the build stage below pays it twice more.
  result.generate = MeasureStage([&] {
    int64_t streamed = 0;
    data::StreamScaleEdges(cfg, opts.seed,
                           [&](int64_t, int64_t) { ++streamed; });
    result.edges_streamed = streamed;
  });

  // build: ScaleDataset construction = the two-pass CSR build.
  std::optional<data::ScaleDataset> dataset;
  result.build = MeasureStage([&] { dataset.emplace(cfg, opts.seed); });
  const graph::CsrAdjacency& adj = dataset->adjacency();
  result.edges = adj.num_edges();
  result.max_degree = adj.MaxDegree();
  result.average_degree = adj.AverageDegree();
  result.csr_bytes =
      static_cast<int64_t>(adj.row_ptr().size()) * sizeof(int64_t) +
      static_cast<int64_t>(adj.adj().size()) * sizeof(int);
  result.arena_bytes_after_build = la::ArenaBytesInUse();

  if (!point.train) return result;

  // train: neighbour-sampled mini-batch GraphSAGE over a strided train split.
  // Feature rows exist only per-batch, gathered for each block's frontier.
  const int64_t train_target =
      std::min<int64_t>(opts.train_count, point.nodes / 4);
  const int64_t val_target = std::min<int64_t>(opts.val_count, point.nodes / 4);
  const std::vector<int> train_nodes =
      dataset->StridedNodes(std::max<int64_t>(train_target, 1), /*salt=*/1);
  const std::vector<int> val_nodes =
      dataset->StridedNodes(std::max<int64_t>(val_target, 1), /*salt=*/2);
  const std::vector<int> train_labels = dataset->LabelsFor(train_nodes);

  auto model = nn::MakeModel(nn::ModelKind::kGraphSage, cfg.feature_dim,
                             dataset->num_classes(), opts.seed);
  nn::SampledTrainSpec spec;
  spec.adj = &adj;
  spec.gather_features = [&dataset](const std::vector<int>& nodes) {
    return dataset->GatherFeatures(nodes);
  };
  nn::TrainConfig train_cfg;
  train_cfg.epochs = opts.epochs;
  train_cfg.sage_fanout = opts.fanout;
  train_cfg.batch_nodes = opts.batch_nodes;
  train_cfg.seed = opts.seed;

  nn::TrainStats stats;
  result.train.stage = MeasureStage([&] {
    stats = nn::TrainSampled(model.get(), spec, train_nodes, train_labels,
                             train_cfg);
  });
  result.train.train_nodes = static_cast<int>(train_nodes.size());
  result.train.batch_nodes = opts.batch_nodes;
  result.train.final_loss = stats.final_loss;

  // Validation accuracy through the exact (full-fanout) sampled blocks.
  const la::Matrix val_logits = nn::SampledLogits(model.get(), spec, val_nodes);
  const std::vector<int> val_pred = la::ArgmaxRows(val_logits);
  const std::vector<int> val_labels = dataset->LabelsFor(val_nodes);
  int64_t correct = 0;
  for (size_t i = 0; i < val_nodes.size(); ++i) {
    if (val_pred[i] == val_labels[i]) ++correct;
  }
  result.train.val_accuracy =
      static_cast<double>(correct) / static_cast<double>(val_nodes.size());

  if (!point.influence) return result;

  // influence: frontier-partitioned per-node sweep on the materialised
  // graph. The dense context (features + propagation operators) only exists
  // inside this stage's scope — its cost is exactly what the arena peak
  // shows relative to the streamed stages above.
  {
    const std::vector<int> inf_train = dataset->StridedNodes(
        std::min<int64_t>(opts.influence_train, train_target), /*salt=*/3);
    const std::vector<int> targets = dataset->StridedNodes(
        std::min<int64_t>(opts.influence_targets, train_target), /*salt=*/4);
    graph::Graph graph = adj.ToGraph();
    la::Matrix features = dataset->MaterializeFeatures();
    const std::vector<int> labels = dataset->MaterializeLabels();
    nn::GraphContext ctx =
        nn::GraphContext::Build(std::move(graph), std::move(features));

    influence::InfluenceConfig inf_cfg;
    // Damping pinned in the PD regime and a tight iteration cap: the curve
    // tracks sweep wall-time scaling, not solver convergence (the parity
    // story lives in tests/frontier_test.cc). Narrow pools: every lane of
    // the shared-forward TapePool and the fused replay graph carries
    // full-graph activations, so width 8 would dominate the memory curve
    // with pool buffers instead of the pipeline's own footprint.
    inf_cfg.cg.damping = 1.0;
    inf_cfg.cg.tolerance = 1e-6;
    inf_cfg.cg.max_iterations = 25;
    inf_cfg.tape_pool_lanes = 2;
    inf_cfg.replay_lanes = 2;

    const influence::FrontierPartition partition =
        influence::PartitionByTwoHopSupport(ctx.graph, targets,
                                            opts.support_budget);
    influence::FrontierSweepResult sweep;
    result.influence.stage = MeasureStage([&] {
      influence::InfluenceCalculator calc(model.get(), ctx, inf_train, labels,
                                          inf_cfg);
      sweep = influence::RunFrontierSweep(
          &calc, partition,
          {.shard_index = opts.shard_index, .shard_count = opts.shard_count});
    });
    result.influence.train_nodes = static_cast<int>(inf_train.size());
    result.influence.targets = static_cast<int>(sweep.targets.size());
    result.influence.chunks_total = static_cast<int>(partition.chunks.size());
    result.influence.chunks_run = sweep.chunks_run;
    double abs_sum = 0.0;
    int64_t count = 0;
    for (const std::vector<double>& row : sweep.influence) {
      for (double v : row) {
        abs_sum += std::abs(v);
        ++count;
      }
    }
    result.influence.influence_abs_mean =
        count > 0 ? abs_sum / static_cast<double>(count) : 0.0;
  }
  return result;
}

void ScrubStage(StageSample* stage) {
  stage->wall_seconds = 0.0;
  stage->arena_peak_bytes = 0;
  stage->process_peak_rss_bytes = 0;
}

void EmitStage(JsonWriter* json, const char* name, const StageSample& stage) {
  json->Key(name).BeginObject();
  json->Key("ran").Bool(stage.ran);
  JsonMetric(json, "wall_seconds", stage.wall_seconds);
  json->Key("arena_peak_bytes").Int(stage.arena_peak_bytes);
  json->Key("process_peak_rss_bytes").Int(stage.process_peak_rss_bytes);
  json->EndObject();
}

std::string HumanBytes(int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::RejectUnknownFlags(
      flags, {"sweep", "max_nodes", "fanout", "batch_nodes", "epochs", "seed",
              "train_count", "val_count", "influence_train",
              "influence_targets", "support_budget", "shard", "la_backend",
              "la_threads", "json_dir", "stable_artifact"});
  la::ConfigureBackendFromFlags(flags);
  bench::PreflightOutputPaths(flags);

  BenchOptions opts;
  opts.seed = flags.GetUint64("seed", 1);
  opts.fanout = flags.GetInt("fanout", 5);
  opts.batch_nodes = flags.GetInt("batch_nodes", 256);
  opts.epochs = flags.GetInt("epochs", 3);
  opts.train_count = flags.GetInt("train_count", 1024);
  opts.val_count = flags.GetInt("val_count", 512);
  opts.influence_train = flags.GetInt("influence_train", 96);
  opts.influence_targets = flags.GetInt("influence_targets", 8);
  opts.support_budget =
      static_cast<int64_t>(flags.GetUint64("support_budget", 4096));

  // Malformed values ('--fanout=abc') already died inside Flags with the flag
  // name; these are the VALUE contracts — a zero fanout or a negative batch
  // size would otherwise PPFR_CHECK-abort deep inside the sampler with a
  // stack trace instead of a usage line.
  if (opts.fanout < 1) {
    std::fprintf(stderr, "--fanout must be >= 1 (got %d)\n", opts.fanout);
    return bench::kExitUsage;
  }
  if (opts.batch_nodes < 0) {
    std::fprintf(stderr,
                 "--batch_nodes must be >= 0 (0 = one batch per epoch; got "
                 "%d)\n",
                 opts.batch_nodes);
    return bench::kExitUsage;
  }
  if (opts.epochs < 1) {
    std::fprintf(stderr, "--epochs must be >= 1 (got %d)\n", opts.epochs);
    return bench::kExitUsage;
  }
  if (opts.train_count < 1 || opts.val_count < 1 || opts.influence_train < 1 ||
      opts.influence_targets < 1) {
    std::fprintf(stderr,
                 "--train_count/--val_count/--influence_train/"
                 "--influence_targets must be >= 1\n");
    return bench::kExitUsage;
  }
  if (opts.support_budget < 1) {
    std::fprintf(stderr, "--support_budget must be >= 1\n");
    return bench::kExitUsage;
  }
  if (flags.Has("shard")) {
    const std::string raw = flags.GetString("shard", "");
    char tail = '\0';
    if (std::sscanf(raw.c_str(), "%d/%d%c", &opts.shard_index,
                    &opts.shard_count, &tail) != 2 ||
        opts.shard_count < 1 || opts.shard_index < 0 ||
        opts.shard_index >= opts.shard_count) {
      std::fprintf(stderr,
                   "--shard wants i/N with 0 <= i < N (e.g. --shard=0/3), got "
                   "'%s'\n",
                   raw.c_str());
      return bench::kExitUsage;
    }
  }

  ScaleSweepSpec sweep = ResolveSweep(flags.GetString("sweep", "scale-smoke"));
  const int64_t max_nodes =
      static_cast<int64_t>(flags.GetUint64("max_nodes", 0));
  if (max_nodes > 0) {
    std::vector<ScalePoint> kept;
    for (const ScalePoint& point : sweep.points) {
      if (point.nodes <= max_nodes) kept.push_back(point);
    }
    if (kept.empty()) {
      std::fprintf(stderr, "--max_nodes=%lld drops every point of sweep '%s'\n",
                   static_cast<long long>(max_nodes), sweep.name.c_str());
      return bench::kExitUsage;
    }
    sweep.points = std::move(kept);
  }

  std::printf(
      "scale bench: sweep=%s backend=%s threads=%d fanout=%d batch_nodes=%d "
      "epochs=%d shard=%d/%d\n",
      sweep.name.c_str(), la::ActiveBackend().name().c_str(),
      la::ActiveBackend().num_threads(), opts.fanout, opts.batch_nodes,
      opts.epochs, opts.shard_index, opts.shard_count);

  std::vector<PointResult> results;
  for (const ScalePoint& point : sweep.points) {
    std::printf("point: %lld nodes (train=%d influence=%d)\n",
                static_cast<long long>(point.nodes), point.train ? 1 : 0,
                point.influence ? 1 : 0);
    results.push_back(RunPoint(point, opts));
  }

  const bool stable = flags.GetBool("stable_artifact", false);
  if (stable) {
    for (PointResult& r : results) {
      ScrubStage(&r.generate);
      ScrubStage(&r.build);
      ScrubStage(&r.train.stage);
      ScrubStage(&r.influence.stage);
    }
  }

  TablePrinter table({"nodes", "edges", "gen s", "build s", "train s",
                      "infl s", "csr", "peak rss"});
  for (const PointResult& r : results) {
    table.AddRow({std::to_string(r.nodes), std::to_string(r.edges),
                  TablePrinter::Num(r.generate.wall_seconds),
                  TablePrinter::Num(r.build.wall_seconds),
                  r.train.stage.ran ? TablePrinter::Num(r.train.stage.wall_seconds)
                                    : std::string("-"),
                  r.influence.stage.ran
                      ? TablePrinter::Num(r.influence.stage.wall_seconds)
                      : std::string("-"),
                  HumanBytes(r.csr_bytes),
                  HumanBytes(stable ? 0 : la::ProcessPeakRssBytes())});
  }
  table.Print();

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("sweep").String(sweep.name);
  json.Key("backend").String(la::ActiveBackend().name());
  json.Key("threads").Int(la::ActiveBackend().num_threads());
  json.Key("seed").Uint(opts.seed);
  json.Key("fanout").Int(opts.fanout);
  json.Key("batch_nodes").Int(opts.batch_nodes);
  json.Key("epochs").Int(opts.epochs);
  json.Key("shard_index").Int(opts.shard_index);
  json.Key("shard_count").Int(opts.shard_count);
  json.Key("process_peak_rss_bytes")
      .Int(stable ? 0 : la::ProcessPeakRssBytes());
  json.Key("points").BeginArray();
  for (const PointResult& r : results) {
    json.BeginObject();
    json.Key("nodes").Int(r.nodes);
    json.Key("edges").Int(r.edges);
    json.Key("edges_streamed").Int(r.edges_streamed);
    json.Key("csr_bytes").Int(r.csr_bytes);
    json.Key("arena_bytes_after_build")
        .Int(stable ? 0 : r.arena_bytes_after_build);
    json.Key("max_degree").Int(r.max_degree);
    JsonMetric(&json, "average_degree", r.average_degree);
    EmitStage(&json, "generate", r.generate);
    EmitStage(&json, "build", r.build);
    json.Key("train").BeginObject();
    json.Key("ran").Bool(r.train.stage.ran);
    JsonMetric(&json, "wall_seconds", r.train.stage.wall_seconds);
    json.Key("arena_peak_bytes").Int(r.train.stage.arena_peak_bytes);
    json.Key("process_peak_rss_bytes").Int(r.train.stage.process_peak_rss_bytes);
    json.Key("train_nodes").Int(r.train.train_nodes);
    json.Key("batch_nodes").Int(r.train.batch_nodes);
    JsonMetric(&json, "final_loss", r.train.final_loss);
    JsonMetric(&json, "val_accuracy", r.train.val_accuracy);
    json.EndObject();
    json.Key("influence").BeginObject();
    json.Key("ran").Bool(r.influence.stage.ran);
    JsonMetric(&json, "wall_seconds", r.influence.stage.wall_seconds);
    json.Key("arena_peak_bytes").Int(r.influence.stage.arena_peak_bytes);
    json.Key("process_peak_rss_bytes")
        .Int(r.influence.stage.process_peak_rss_bytes);
    json.Key("train_nodes").Int(r.influence.train_nodes);
    json.Key("targets").Int(r.influence.targets);
    json.Key("chunks_total").Int(r.influence.chunks_total);
    json.Key("chunks_run").Int(r.influence.chunks_run);
    json.Key("support_budget").Int(opts.support_budget);
    JsonMetric(&json, "influence_abs_mean", r.influence.influence_abs_mean);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const std::string json_path =
      (std::filesystem::path(flags.GetString("json_dir", ".")) /
       "BENCH_scale.json")
          .string();
  WriteFileOrDie(json_path, json.ToString());
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace ppfr

int main(int argc, char** argv) { return ppfr::Main(argc, argv); }

// Influence-engine before/after benchmark.
//
// Measures the two hot paths of the influence machinery on an SBM graph:
//   * per-node loss gradients — the pre-overhaul serial algorithm (one
//     growing tape, full ZeroAllGrads sweep per node) versus the TapePool
//     path (reachability-pruned, row-support-zeroed, fanned across lanes);
//   * the damped-CG solve behind InfluenceOnBias — fresh tape per gradient
//     evaluation versus the replayed ReusableLossGraph arena.
// The pooled per-node gradients are verified BITWISE against the serial
// reference before any timing is reported, and dense-buffer allocations are
// counted via la::MatrixAllocCount. A third column times the pooled path
// under the SimdBackend (with its own serial-vs-pooled bitwise gate), so the
// artifact tracks the vector kernels' effect on per-node gradient throughput
// alongside the CPU feature-detection result.
//
// Emits BENCH_influence.json for the cross-PR perf trajectory (schema pinned
// by bench/golden/artifact_schema.txt, section "influence").
//
//   ./bench_influence_engine --nodes=800 --degree=8 --train=96 --lanes=4
//       --la_backend=parallel --la_threads=4

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/sbm.h"
#include "data/split.h"
#include "fairness/bias_metric.h"
#include "influence/influence.h"
#include "la/backend.h"
#include "la/matrix.h"
#include "la/simd_kernels.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/trainer.h"

namespace ppfr {
namespace {

struct PathResult {
  double seconds = 0.0;
  int64_t allocs = 0;
  std::vector<std::vector<double>> grads;
};

PathResult TimePerNodeGrads(nn::GnnModel* model, const nn::GraphContext& ctx,
                            const std::vector<int>& train_nodes,
                            const std::vector<int>& labels,
                            const influence::InfluenceConfig& config, int reps) {
  PathResult result;
  for (int rep = 0; rep < reps; ++rep) {
    influence::InfluenceCalculator calc(model, ctx, train_nodes, labels, config);
    const int64_t alloc0 = la::MatrixAllocCount();
    Stopwatch watch;
    const auto& grads = calc.PerNodeLossGrads();
    result.seconds += watch.ElapsedSeconds();
    result.allocs += la::MatrixAllocCount() - alloc0;
    if (rep == 0) result.grads = grads;
  }
  result.seconds /= reps;
  result.allocs /= reps;
  return result;
}

double TimeBiasSolve(nn::GnnModel* model, const nn::GraphContext& ctx,
                     const std::vector<int>& train_nodes, const std::vector<int>& labels,
                     const fairness::SimilarityContext& sim,
                     influence::InfluenceConfig config, int reps) {
  double seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    influence::InfluenceCalculator calc(model, ctx, train_nodes, labels, config);
    // Warm the per-node cache so the timing isolates gradient evaluation +
    // CG, which is what the tape arena accelerates.
    calc.PerNodeLossGrads();
    Stopwatch watch;
    calc.InfluenceOnBias(sim.laplacian);
    seconds += watch.ElapsedSeconds();
  }
  return seconds / reps;
}

bool BitwiseEqual(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k] != b[k]) return false;
  }
  return true;
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::RejectUnknownFlags(flags, {"nodes", "degree", "train", "lanes", "epochs",
                                    "reps", "json", "la_backend", "la_threads"});
  la::ConfigureBackendFromFlags(flags);
  // Default to the acceptance configuration — parallel backend, 4 threads,
  // 4 tape-pool lanes — unless the caller pinned a thread count.
  if (!flags.Has("la_threads") && std::getenv("PPFR_LA_THREADS") == nullptr) {
    la::SetActiveBackend(la::ActiveBackendKind(), 4);
  }

  const int nodes = flags.GetInt("nodes", 3000);
  const double degree = flags.GetDouble("degree", 8.0);
  const int train_count = flags.GetInt("train", 200);
  const int lanes = flags.GetInt("lanes", 4);
  const int epochs = flags.GetInt("epochs", 30);
  const int reps = flags.GetInt("reps", 3);

  data::SbmConfig sbm;
  sbm.name = "bench-influence";
  sbm.num_nodes = nodes;
  sbm.num_classes = 4;
  sbm.feature_dim = 48;
  sbm.signature_size = 8;
  sbm.average_degree = degree;
  const data::NodeClassificationData data = data::GenerateSbm(sbm, /*seed=*/17);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const data::Split split = data::MakeSplit(nodes, train_count, 0, /*seed=*/5);
  const fairness::SimilarityContext sim =
      fairness::SimilarityContext::FromGraph(data.graph);

  auto model =
      nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(), data.num_classes, 7);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  nn::Train(model.get(), ctx, split.train, data.labels, train_cfg);

  std::printf("influence engine bench: n=%d avg_deg=%.1f train=%d backend=%s threads=%d lanes=%d\n",
              nodes, degree, train_count, la::ActiveBackend().name().c_str(),
              la::ActiveBackend().num_threads(), lanes);

  influence::InfluenceConfig before;
  before.serial_reference_per_node = true;
  before.reuse_grad_tape = false;

  influence::InfluenceConfig after;
  after.tape_pool_lanes = lanes;

  const PathResult serial = TimePerNodeGrads(model.get(), ctx, split.train,
                                             data.labels, before, reps);
  const PathResult pooled = TimePerNodeGrads(model.get(), ctx, split.train,
                                             data.labels, after, reps);

  const bool bitwise = BitwiseEqual(serial.grads, pooled.grads);
  std::printf("per-node grads pooled-vs-serial bitwise: %s\n", bitwise ? "OK" : "FAIL");

  // The same serial/pooled pair under the SimdBackend (same thread count),
  // with its own bitwise gate — the pooled/serial invariant must hold under
  // the vector kernels too. When the simd backend is already active, this
  // would just repeat the rows above, so they are reused.
  PathResult simd_serial = serial;
  PathResult simd_pooled = pooled;
  bool simd_bitwise = bitwise;
  if (la::ActiveBackendKind() != la::BackendKind::kSimd) {
    la::ScopedBackend scoped(la::BackendKind::kSimd,
                             la::ActiveBackend().num_threads());
    simd_serial =
        TimePerNodeGrads(model.get(), ctx, split.train, data.labels, before, reps);
    simd_pooled =
        TimePerNodeGrads(model.get(), ctx, split.train, data.labels, after, reps);
    simd_bitwise = BitwiseEqual(simd_serial.grads, simd_pooled.grads);
    std::printf("per-node grads pooled-vs-serial bitwise (simd backend): %s\n",
                simd_bitwise ? "OK" : "FAIL");
  }
  const bool simd_kernels_active = la::simd::KernelsUsable();

  const double cg_before = TimeBiasSolve(model.get(), ctx, split.train, data.labels,
                                         sim, before, reps);
  const double cg_after = TimeBiasSolve(model.get(), ctx, split.train, data.labels,
                                        sim, after, reps);

  const double tput_serial = train_count / serial.seconds;
  const double tput_pooled = train_count / pooled.seconds;
  const double tput_simd_pooled = train_count / simd_pooled.seconds;

  TablePrinter table({"Path", "PerNodeGrads ms", "nodes/s", "allocs", "CG ms"});
  table.AddRow({"serial reference (before)", TablePrinter::Num(serial.seconds * 1e3),
                TablePrinter::Num(tput_serial, 0), std::to_string(serial.allocs),
                TablePrinter::Num(cg_before * 1e3)});
  table.AddRow({"tape pool (after)", TablePrinter::Num(pooled.seconds * 1e3),
                TablePrinter::Num(tput_pooled, 0), std::to_string(pooled.allocs),
                TablePrinter::Num(cg_after * 1e3)});
  table.AddRow({std::string("tape pool (simd") +
                    (simd_kernels_active ? ")" : ", scalar fallback)"),
                TablePrinter::Num(simd_pooled.seconds * 1e3),
                TablePrinter::Num(tput_simd_pooled, 0),
                std::to_string(simd_pooled.allocs), ""});
  table.AddSeparator();
  table.AddRow({"speedup", TablePrinter::Num(serial.seconds / pooled.seconds) + "x",
                TablePrinter::Num(tput_pooled / tput_serial) + "x", "",
                TablePrinter::Num(cg_before / cg_after) + "x"});
  table.Print();

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(2);
  json.Key("nodes").Int(nodes);
  json.Key("train").Int(train_count);
  json.Key("backend").String(la::ActiveBackend().name());
  json.Key("threads").Int(la::ActiveBackend().num_threads());
  json.Key("lanes").Int(lanes);
  json.Key("per_node_grads_ms_serial").Number(serial.seconds * 1e3);
  json.Key("per_node_grads_ms_pooled").Number(pooled.seconds * 1e3);
  json.Key("per_node_throughput_serial").Number(tput_serial);
  json.Key("per_node_throughput_pooled").Number(tput_pooled);
  json.Key("per_node_speedup").Number(serial.seconds / pooled.seconds);
  json.Key("per_node_allocs_serial").Int(serial.allocs);
  json.Key("per_node_allocs_pooled").Int(pooled.allocs);
  json.Key("cg_solve_ms_before").Number(cg_before * 1e3);
  json.Key("cg_solve_ms_after").Number(cg_after * 1e3);
  json.Key("cg_speedup").Number(cg_before / cg_after);
  json.Key("bitwise_identical").Bool(bitwise);
  // SimdBackend column + the feature-detection result it acted on.
  json.Key("simd_cpu_avx2_fma").Bool(la::simd::CpuSupportsAvx2Fma());
  json.Key("simd_cpu_avx512").Bool(la::simd::CpuSupportsAvx512());
  json.Key("simd_kernels_active").Bool(simd_kernels_active);
  json.Key("per_node_grads_ms_serial_simd").Number(simd_serial.seconds * 1e3);
  json.Key("per_node_grads_ms_pooled_simd").Number(simd_pooled.seconds * 1e3);
  json.Key("per_node_throughput_pooled_simd").Number(tput_simd_pooled);
  json.Key("per_node_speedup_simd").Number(simd_serial.seconds / simd_pooled.seconds);
  json.Key("bitwise_identical_simd").Bool(simd_bitwise);
  json.EndObject();

  const std::string json_path = flags.GetString("json", "BENCH_influence.json");
  WriteFileOrDie(json_path, json.ToString());
  std::printf("wrote %s\n", json_path.c_str());

  return bitwise && simd_bitwise ? 0 : 1;
}

}  // namespace ppfr

int main(int argc, char** argv) { return ppfr::Main(argc, argv); }

// Influence-engine before/after benchmark.
//
// Measures the two hot paths of the influence machinery on an SBM graph:
//   * per-node loss gradients — the pre-overhaul serial algorithm (one
//     growing tape, full ZeroAllGrads sweep per node) versus the TapePool
//     path (reachability-pruned, row-support-zeroed, fanned across lanes);
//   * the damped-CG solve behind InfluenceOnBias — fresh tape per gradient
//     evaluation versus the replayed ReusableLossGraph arena.
// The pooled per-node gradients are verified BITWISE against the serial
// reference before any timing is reported, and dense-buffer allocations are
// counted via la::MatrixAllocCount. A third column times the pooled path
// under the SimdBackend (with its own serial-vs-pooled bitwise gate), so the
// artifact tracks the vector kernels' effect on per-node gradient throughput
// alongside the CPU feature-detection result.
//
// Two block-solver columns sit on top (both under the SimdBackend):
//   * the real pipeline — InfluenceOnNodeLosses over --cg_targets target
//     nodes at cg_block=1 (the single-RHS oracle) versus --cg_block, with a
//     per-row relative-error parity gate between the two;
//   * a synthetic damped SPD quadratic at --cg_dim parameters, where the
//     batched probe-gradient evaluation is literally one GEMM over all
//     stacked probe points — the BLAS-1 → BLAS-3 story isolated from
//     tape-replay costs. The sweep runs k ∈ {1,4,8,16} through the SAME
//     BlockConjugateGradientSolve code path and reports per-RHS wall time,
//     block algebra GFLOP/s, and parity against the k=1 oracle; the headline
//     `cg_block_speedup` is per-RHS k=1 over k=8.
//
// The fused-replay columns sit on top of the pipeline sweep: the same
// cg_block sweep with --replay_lanes=1 (one tape replay per probe point)
// versus the fused width, gated BITWISE — plus a direct per-width {1,2,8}
// probe-gradient parity check and a warm-pool reuse pass (cell-scoped
// ReplayCache) asserting the second calculator's allocation counts.
//
// Emits BENCH_influence.json for the cross-PR perf trajectory (schema pinned
// by bench/golden/artifact_schema.txt, section "influence").
//
//   ./bench_influence_engine --nodes=800 --degree=8 --train=96 --lanes=4
//       --la_backend=parallel --la_threads=4 --cg_block=8 --cg_dim=1280

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/sbm.h"
#include "data/split.h"
#include "fairness/bias_metric.h"
#include "influence/hvp.h"
#include "influence/influence.h"
#include "influence/param_vector.h"
#include "la/backend.h"
#include "la/matrix.h"
#include "la/simd_kernels.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/trainer.h"

namespace ppfr {
namespace {

struct PathResult {
  double seconds = 0.0;
  int64_t allocs = 0;
  std::vector<std::vector<double>> grads;
};

PathResult TimePerNodeGrads(nn::GnnModel* model, const nn::GraphContext& ctx,
                            const std::vector<int>& train_nodes,
                            const std::vector<int>& labels,
                            const influence::InfluenceConfig& config, int reps) {
  PathResult result;
  for (int rep = 0; rep < reps; ++rep) {
    influence::InfluenceCalculator calc(model, ctx, train_nodes, labels, config);
    const int64_t alloc0 = la::MatrixAllocCount();
    Stopwatch watch;
    const auto& grads = calc.PerNodeLossGrads();
    result.seconds += watch.ElapsedSeconds();
    result.allocs += la::MatrixAllocCount() - alloc0;
    if (rep == 0) result.grads = grads;
  }
  result.seconds /= reps;
  result.allocs /= reps;
  return result;
}

double TimeBiasSolve(nn::GnnModel* model, const nn::GraphContext& ctx,
                     const std::vector<int>& train_nodes, const std::vector<int>& labels,
                     const fairness::SimilarityContext& sim,
                     influence::InfluenceConfig config, int reps) {
  double seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    influence::InfluenceCalculator calc(model, ctx, train_nodes, labels, config);
    // Warm the per-node cache so the timing isolates gradient evaluation +
    // CG, which is what the tape arena accelerates.
    calc.PerNodeLossGrads();
    Stopwatch watch;
    calc.InfluenceOnBias(sim.laplacian);
    seconds += watch.ElapsedSeconds();
  }
  return seconds / reps;
}

bool BitwiseEqual(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k] != b[k]) return false;
  }
  return true;
}

// Largest per-row relative l2 error between two influence tables.
double MaxRowRelErr(const std::vector<std::vector<double>>& got,
                    const std::vector<std::vector<double>>& want) {
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    double diff = 0.0, ref = 0.0;
    for (size_t v = 0; v < want[i].size(); ++v) {
      const double d = got[i][v] - want[i][v];
      diff += d * d;
      ref += want[i][v] * want[i][v];
    }
    if (ref > 0.0) worst = std::max(worst, std::sqrt(diff / ref));
  }
  return worst;
}

struct PipelineBlockRun {
  double seconds = 0.0;
  influence::BlockSolveStats stats;
  std::vector<std::vector<double>> influence;
};

// The per-node influence sweep of the paper's correlation study, timed at a
// fixed block width. Damping is pinned in the PD regime (the trained model is
// not at an exact minimum, and at the default 0.01 even the single-RHS oracle
// truncates on negative curvature — there is no converged solve to compare).
PipelineBlockRun TimeNodeLossSweep(nn::GnnModel* model, const nn::GraphContext& ctx,
                                   const std::vector<int>& train_nodes,
                                   const std::vector<int>& labels,
                                   influence::InfluenceConfig config, int block,
                                   const std::vector<int>& targets, int reps) {
  config.cg_block = block;
  // The damping must put the solve in the PD regime: an UNDERTRAINED model's
  // Hessian carries negative curvature past any fixed damping, both solvers
  // then truncate on different Krylov spaces, and the parity gate would
  // compare two unconverged answers — so smoke-sized runs of this bench need
  // enough epochs (~30) to be near a minimum, not more damping.
  config.cg.damping = 1.0;
  config.cg.tolerance = 1e-8;
  config.cg.max_iterations = 200;
  PipelineBlockRun run;
  for (int rep = 0; rep < reps; ++rep) {
    influence::InfluenceCalculator calc(model, ctx, train_nodes, labels, config);
    // Warm the per-node cache so the timing isolates RHS gathering + block
    // solves + contraction — the paths the block solver changes.
    calc.PerNodeLossGrads();
    Stopwatch watch;
    auto influence = calc.InfluenceOnNodeLosses(targets);
    run.seconds += watch.ElapsedSeconds();
    if (rep == 0) {
      run.influence = std::move(influence);
      run.stats = calc.block_stats();
    }
  }
  run.seconds /= reps;
  return run;
}

// Damped SPD quadratic test bed for the block sweep: L(θ) = ½θᵀAθ − cᵀθ, so
// the gradient at an absolute point p is A·p − c and the batched probe
// evaluation is ONE backend GEMM over all stacked points — A is streamed once
// per block iteration instead of once per probe. The single-RHS path pays the
// same closure one point at a time (a memory-bound GEMV-shaped product),
// which is exactly the BLAS-1/2 regime the block solver replaces.
struct SyntheticQuadratic {
  ag::Parameter theta;
  la::Matrix a;  // symmetric, eigenvalues ≈ [2, 4]
  std::vector<double> c;

  explicit SyntheticQuadratic(int n, uint64_t seed)
      : theta("cg-sweep-theta", la::Matrix(n, 1)), a(n, n) {
    Rng rng(seed);
    // Wigner bulk of radius ~1 around a diagonal of 3: a well-conditioned SPD
    // spectrum, so every k converges and the sweep times steady-state math,
    // not stagnation.
    const double scale = 0.5 / std::sqrt(static_cast<double>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j <= i; ++j) {
        const double v = rng.Normal() * scale;
        a(i, j) = v;
        a(j, i) = v;
      }
      a(i, i) += 3.0;
    }
    c.resize(static_cast<size_t>(n));
    for (auto& v : c) v = rng.Normal();
    for (int i = 0; i < n; ++i) theta.value(i, 0) = rng.Normal();
  }

  std::vector<std::vector<double>> GradsAt(
      const std::vector<std::vector<double>>& points) const {
    const int n = a.rows();
    const int m = static_cast<int>(points.size());
    la::Matrix stacked(m, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) stacked(i, j) = points[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    la::Matrix prod(m, n);
    la::ActiveBackend().Gemm(stacked, a, &prod);
    std::vector<std::vector<double>> grads(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      auto& g = grads[static_cast<size_t>(i)];
      g.assign(prod.row(i), prod.row(i) + n);
      for (int j = 0; j < n; ++j) g[static_cast<size_t>(j)] -= c[static_cast<size_t>(j)];
    }
    return grads;
  }

  influence::GradFn MakeGradFn() {
    return [this] { return GradsAt({influence::FlattenValues({&theta})})[0]; };
  }

  influence::BatchGradFn MakeBatchGradFn() {
    return [this](const std::vector<std::vector<double>>& points) {
      return GradsAt(points);
    };
  }
};

struct SweepRow {
  int k = 0;
  double total_ms = 0.0;
  double per_rhs_ms = 0.0;
  int block_iterations = 0;
  int grad_evals = 0;
  double algebra_gflops = 0.0;
  double max_rel_err_vs_oracle = 0.0;
  bool parity_ok = false;
};

// Solves the same `num_rhs` systems in blocks of k through
// BlockConjugateGradientSolve, returning timing + parity against `oracle`
// (the k=1 solutions; pass nullptr when this run IS the oracle, and collect
// its solutions via `solutions_out`).
SweepRow RunSweepPoint(SyntheticQuadratic* problem, const influence::MultiVector& b,
                       int k, int reps, const influence::MultiVector* oracle,
                       influence::MultiVector* solutions_out = nullptr) {
  const int num_rhs = b.k();
  influence::CgOptions options;
  options.damping = 0.1;
  options.tolerance = 1e-8;
  options.max_iterations = 80;

  SweepRow row;
  row.k = k;
  influence::MultiVector x(b.dim(), num_rhs);
  bool all_converged = true;
  double seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    influence::BlockCgStats stats;
    all_converged = true;
    Stopwatch watch;
    for (int start = 0; start < num_rhs; start += k) {
      const int width = std::min(k, num_rhs - start);
      std::vector<int> cols(static_cast<size_t>(width));
      for (int j = 0; j < width; ++j) cols[static_cast<size_t>(j)] = start + j;
      const influence::BlockCgResult part = influence::BlockConjugateGradientSolve(
          {&problem->theta}, problem->MakeGradFn(), problem->MakeBatchGradFn(),
          b.SelectColumns(cols), options);
      for (int j = 0; j < width; ++j) {
        if (rep == 0) x.SetColumn(start + j, part.x.Column(j));
        all_converged = all_converged && part.converged[static_cast<size_t>(j)];
      }
      stats.block_iterations += part.stats.block_iterations;
      stats.grad_evals += part.stats.grad_evals;
      stats.algebra_seconds += part.stats.algebra_seconds;
      stats.algebra_flops += part.stats.algebra_flops;
    }
    seconds += watch.ElapsedSeconds();
    if (rep == 0) {
      row.block_iterations = stats.block_iterations;
      row.grad_evals = stats.grad_evals;
      row.algebra_gflops = stats.algebra_seconds > 0.0
                               ? stats.algebra_flops / stats.algebra_seconds / 1e9
                               : 0.0;
    }
  }
  seconds /= reps;
  row.total_ms = seconds * 1e3;
  row.per_rhs_ms = row.total_ms / num_rhs;
  if (oracle != nullptr) {
    double worst = 0.0;
    for (int j = 0; j < num_rhs; ++j) {
      const std::vector<double> got = x.Column(j);
      const std::vector<double> want = oracle->Column(j);
      double diff = 0.0, ref = 0.0;
      for (size_t i = 0; i < want.size(); ++i) {
        const double d = got[i] - want[i];
        diff += d * d;
        ref += want[i] * want[i];
      }
      worst = std::max(worst, std::sqrt(diff / ref));
    }
    row.max_rel_err_vs_oracle = worst;
    row.parity_ok = all_converged && worst < 1e-5;
  } else {
    row.parity_ok = all_converged;
  }
  if (solutions_out != nullptr) *solutions_out = std::move(x);
  return row;
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::RejectUnknownFlags(flags, {"nodes", "degree", "train", "lanes", "epochs",
                                    "reps", "json", "la_backend", "la_threads",
                                    "cg_block", "cg_targets", "cg_dim",
                                    "replay_lanes"});
  la::ConfigureBackendFromFlags(flags);
  // Default to the acceptance configuration — parallel backend, 4 threads,
  // 4 tape-pool lanes — unless the caller pinned a thread count.
  if (!flags.Has("la_threads") && std::getenv("PPFR_LA_THREADS") == nullptr) {
    la::SetActiveBackend(la::ActiveBackendKind(), 4);
  }

  const int nodes = flags.GetInt("nodes", 3000);
  const double degree = flags.GetDouble("degree", 8.0);
  const int train_count = flags.GetInt("train", 200);
  const int lanes = flags.GetInt("lanes", 4);
  const int epochs = flags.GetInt("epochs", 30);
  const int reps = flags.GetInt("reps", 3);
  const int cg_block = flags.GetInt("cg_block", 8);
  const int cg_targets = flags.GetInt("cg_targets", 16);
  const int cg_dim = flags.GetInt("cg_dim", 1280);
  // 0 = auto (PPFR_REPLAY_LANES, else 8) — the fused tape-replay width.
  const int replay_lanes =
      influence::ResolveReplayLanes(flags.GetInt("replay_lanes", 0));

  data::SbmConfig sbm;
  sbm.name = "bench-influence";
  sbm.num_nodes = nodes;
  sbm.num_classes = 4;
  sbm.feature_dim = 48;
  sbm.signature_size = 8;
  sbm.average_degree = degree;
  const data::NodeClassificationData data = data::GenerateSbm(sbm, /*seed=*/17);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const data::Split split = data::MakeSplit(nodes, train_count, 0, /*seed=*/5);
  const fairness::SimilarityContext sim =
      fairness::SimilarityContext::FromGraph(data.graph);

  auto model =
      nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(), data.num_classes, 7);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  nn::Train(model.get(), ctx, split.train, data.labels, train_cfg);

  std::printf("influence engine bench: n=%d avg_deg=%.1f train=%d backend=%s threads=%d lanes=%d\n",
              nodes, degree, train_count, la::ActiveBackend().name().c_str(),
              la::ActiveBackend().num_threads(), lanes);

  influence::InfluenceConfig before;
  before.serial_reference_per_node = true;
  before.reuse_grad_tape = false;

  influence::InfluenceConfig after;
  after.tape_pool_lanes = lanes;
  after.replay_lanes = replay_lanes;

  const PathResult serial = TimePerNodeGrads(model.get(), ctx, split.train,
                                             data.labels, before, reps);
  const PathResult pooled = TimePerNodeGrads(model.get(), ctx, split.train,
                                             data.labels, after, reps);

  const bool bitwise = BitwiseEqual(serial.grads, pooled.grads);
  std::printf("per-node grads pooled-vs-serial bitwise: %s\n", bitwise ? "OK" : "FAIL");

  // The same serial/pooled pair under the SimdBackend (same thread count),
  // with its own bitwise gate — the pooled/serial invariant must hold under
  // the vector kernels too. When the simd backend is already active, this
  // would just repeat the rows above, so they are reused.
  PathResult simd_serial = serial;
  PathResult simd_pooled = pooled;
  bool simd_bitwise = bitwise;
  if (la::ActiveBackendKind() != la::BackendKind::kSimd) {
    la::ScopedBackend scoped(la::BackendKind::kSimd,
                             la::ActiveBackend().num_threads());
    simd_serial =
        TimePerNodeGrads(model.get(), ctx, split.train, data.labels, before, reps);
    simd_pooled =
        TimePerNodeGrads(model.get(), ctx, split.train, data.labels, after, reps);
    simd_bitwise = BitwiseEqual(simd_serial.grads, simd_pooled.grads);
    std::printf("per-node grads pooled-vs-serial bitwise (simd backend): %s\n",
                simd_bitwise ? "OK" : "FAIL");
  }
  const bool simd_kernels_active = la::simd::KernelsUsable();

  const double cg_before = TimeBiasSolve(model.get(), ctx, split.train, data.labels,
                                         sim, before, reps);
  const double cg_after = TimeBiasSolve(model.get(), ctx, split.train, data.labels,
                                        sim, after, reps);

  // --- Block solver on the real pipeline: the per-node influence sweep
  // (Table 2's workload) over the first --cg_targets train nodes, single-RHS
  // oracle (cg_block=1) versus blocks of --cg_block, both under the
  // SimdBackend. The honest pipeline win is bounded by tape-replay gradient
  // costs, which both paths pay per probe point; the parity gate is the
  // load-bearing result here. ---
  const int num_targets = std::min(static_cast<int>(split.train.size()), cg_targets);
  const std::vector<int> targets(split.train.begin(), split.train.begin() + num_targets);
  PipelineBlockRun pipe_single, pipe_block, pipe_block_serial;
  {
    la::ScopedBackend scoped(la::BackendKind::kSimd, la::ActiveBackend().num_threads());
    influence::InfluenceConfig serial_replay = after;
    serial_replay.replay_lanes = 1;
    // Baseline = the legacy engine exactly as it shipped before lane fusion:
    // single-RHS CG with one tape replay per probe point.
    pipe_single = TimeNodeLossSweep(model.get(), ctx, split.train, data.labels,
                                    serial_replay, /*block=*/1, targets, reps);
    pipe_block = TimeNodeLossSweep(model.get(), ctx, split.train, data.labels, after,
                                   cg_block, targets, reps);
    // The SAME block sweep with fusion off (one replay per probe point) —
    // isolates the lane-fused replay's contribution, and its result must be
    // BITWISE identical to the fused run's: every fused lane's arithmetic is
    // the serial graph's.
    pipe_block_serial = TimeNodeLossSweep(model.get(), ctx, split.train, data.labels,
                                          serial_replay, cg_block, targets, reps);
  }
  const double pipe_parity = MaxRowRelErr(pipe_block.influence, pipe_single.influence);
  const bool pipe_parity_ok = pipe_parity < 1e-3;
  const double pipe_speedup = pipe_single.seconds / pipe_block.seconds;
  const bool fused_bitwise =
      BitwiseEqual(pipe_block.influence, pipe_block_serial.influence);
  const double fused_replay_speedup = pipe_block_serial.seconds / pipe_block.seconds;
  std::printf("node-loss sweep, cg_block=%d vs single-RHS oracle: %.2fx per-RHS, "
              "max rel err %.2e (%s)\n",
              cg_block, pipe_speedup, pipe_parity, pipe_parity_ok ? "OK" : "FAIL");
  std::printf("fused replay (width %d) vs serial replay at cg_block=%d: %.2fx, "
              "bitwise %s\n",
              replay_lanes, cg_block, fused_replay_speedup,
              fused_bitwise ? "OK" : "FAIL");

  // --- Per-lane-width parity: the probe-gradient engine itself, driven
  // directly at widths {1, 2, 8} on one fixed probe batch — every width must
  // reproduce the width-1 gradients bit for bit. ---
  bool fused_lane_parity_ok = true;
  {
    la::ScopedBackend scoped(la::BackendKind::kSimd, la::ActiveBackend().num_threads());
    const std::vector<double> theta0 = influence::FlattenValues(model->Params());
    constexpr int kProbePoints = 5;
    Rng probe_rng(417);
    std::vector<std::vector<double>> points(kProbePoints, theta0);
    for (auto& p : points) {
      for (double& v : p) v += 1e-3 * probe_rng.Normal();
    }
    std::vector<std::vector<double>> want;
    for (const int w : {1, 2, 8}) {
      influence::InfluenceConfig cfg = after;
      cfg.replay_lanes = w;
      influence::InfluenceCalculator calc(model.get(), ctx, split.train,
                                          data.labels, cfg);
      const auto grads = calc.BatchTrainGrad()(points);
      if (w == 1) {
        want = grads;
      } else {
        const bool same = BitwiseEqual(grads, want);
        fused_lane_parity_ok = fused_lane_parity_ok && same;
        std::printf("fused replay width %d vs width 1: bitwise %s\n", w,
                    same ? "OK" : "FAIL");
      }
    }
  }

  // --- Warm-pool reuse across calculators (cell-scoped ReplayCache): the
  // second calculator re-acquires the recorded forward tape (re-warmed by an
  // allocation-free replay) and the fused lane pool (no refresh needed), so
  // its sweep allocates strictly less than the cold one and the lane-pool
  // acquisition allocates nothing at all. ---
  int64_t cold_calc_allocs = 0, warm_calc_allocs = 0, warm_lane_allocs = 0;
  bool warm_reuse_ok = false;
  {
    influence::ReplayCache replay_cache;
    influence::InfluenceConfig warm_cfg = after;
    warm_cfg.replay_cache = &replay_cache;
    std::vector<std::vector<double>> cold_grads, warm_grads;
    {
      influence::InfluenceCalculator calc(model.get(), ctx, split.train,
                                          data.labels, warm_cfg);
      const int64_t a0 = la::MatrixAllocCount();
      cold_grads = calc.PerNodeLossGrads();
      cold_calc_allocs = la::MatrixAllocCount() - a0;
      calc.BatchTrainGrad();  // populate the lane pool in the cache
    }
    influence::InfluenceCalculator calc(model.get(), ctx, split.train,
                                        data.labels, warm_cfg);
    const int64_t a0 = la::MatrixAllocCount();
    warm_grads = calc.PerNodeLossGrads();
    warm_calc_allocs = la::MatrixAllocCount() - a0;
    const int64_t b0 = la::MatrixAllocCount();
    calc.BatchTrainGrad();  // cache hit: no clone, no re-record
    warm_lane_allocs = la::MatrixAllocCount() - b0;
    warm_reuse_ok = warm_calc_allocs < cold_calc_allocs && warm_lane_allocs == 0 &&
                    BitwiseEqual(cold_grads, warm_grads);
    std::printf("warm-pool reuse: cold %lld allocs, warm %lld, lane acquire %lld (%s)\n",
                static_cast<long long>(cold_calc_allocs),
                static_cast<long long>(warm_calc_allocs),
                static_cast<long long>(warm_lane_allocs),
                warm_reuse_ok ? "OK" : "FAIL");
  }

  // --- Block sweep on the synthetic GEMM-batched operator (SimdBackend):
  // k=1 is the oracle row; every other k must agree with it per RHS. ---
  constexpr int kSweepRhs = 16;
  std::vector<SweepRow> sweep;
  {
    la::ScopedBackend scoped(la::BackendKind::kSimd, la::ActiveBackend().num_threads());
    SyntheticQuadratic quad(cg_dim, /*seed=*/91);
    influence::MultiVector b(cg_dim, kSweepRhs);
    Rng rng(92);
    for (int j = 0; j < kSweepRhs; ++j) {
      for (int i = 0; i < cg_dim; ++i) b.col(j)[i] = rng.Normal();
    }
    influence::MultiVector oracle;
    sweep.push_back(RunSweepPoint(&quad, b, 1, reps, nullptr, &oracle));
    for (const int k : {4, 8, 16}) {
      sweep.push_back(RunSweepPoint(&quad, b, k, reps, &oracle));
    }
  }
  bool sweep_parity_ok = true;
  double per_rhs_k8 = 0.0;
  for (const SweepRow& row : sweep) {
    sweep_parity_ok = sweep_parity_ok && row.parity_ok;
    if (row.k == 8) per_rhs_k8 = row.per_rhs_ms;
  }
  const double cg_block_speedup =
      per_rhs_k8 > 0.0 ? sweep[0].per_rhs_ms / per_rhs_k8 : 0.0;

  const double tput_serial = train_count / serial.seconds;
  const double tput_pooled = train_count / pooled.seconds;
  const double tput_simd_pooled = train_count / simd_pooled.seconds;

  TablePrinter table({"Path", "PerNodeGrads ms", "nodes/s", "allocs", "CG ms"});
  table.AddRow({"serial reference (before)", TablePrinter::Num(serial.seconds * 1e3),
                TablePrinter::Num(tput_serial, 0), std::to_string(serial.allocs),
                TablePrinter::Num(cg_before * 1e3)});
  table.AddRow({"tape pool (after)", TablePrinter::Num(pooled.seconds * 1e3),
                TablePrinter::Num(tput_pooled, 0), std::to_string(pooled.allocs),
                TablePrinter::Num(cg_after * 1e3)});
  table.AddRow({std::string("tape pool (simd") +
                    (simd_kernels_active ? ")" : ", scalar fallback)"),
                TablePrinter::Num(simd_pooled.seconds * 1e3),
                TablePrinter::Num(tput_simd_pooled, 0),
                std::to_string(simd_pooled.allocs), ""});
  table.AddSeparator();
  table.AddRow({"speedup", TablePrinter::Num(serial.seconds / pooled.seconds) + "x",
                TablePrinter::Num(tput_pooled / tput_serial) + "x", "",
                TablePrinter::Num(cg_before / cg_after) + "x"});
  table.Print();

  TablePrinter sweep_table({"k", "per-RHS ms", "total ms", "block iters",
                            "grad evals", "algebra GFLOP/s", "vs k=1 rel err"});
  for (const SweepRow& row : sweep) {
    sweep_table.AddRow({std::to_string(row.k), TablePrinter::Num(row.per_rhs_ms),
                        TablePrinter::Num(row.total_ms),
                        std::to_string(row.block_iterations),
                        std::to_string(row.grad_evals),
                        TablePrinter::Num(row.algebra_gflops),
                        row.k == 1 ? std::string("oracle")
                                   : TablePrinter::Num(row.max_rel_err_vs_oracle, 9)});
  }
  sweep_table.AddSeparator();
  sweep_table.AddRow({"k=8", TablePrinter::Num(cg_block_speedup) + "x vs k=1", "", "",
                      "", "", sweep_parity_ok ? "parity OK" : "parity FAIL"});
  sweep_table.Print();

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(5);
  json.Key("nodes").Int(nodes);
  json.Key("train").Int(train_count);
  json.Key("backend").String(la::ActiveBackend().name());
  json.Key("threads").Int(la::ActiveBackend().num_threads());
  // Peak-memory accounting over the whole bench run: the arena peak counts
  // logical bytes of live dense/sparse matrix buffers, the RSS peak is the
  // kernel's VmHWM (0 where /proc is unavailable).
  json.Key("arena_peak_bytes").Int(la::ArenaPeakBytes());
  json.Key("process_peak_rss_bytes").Int(la::ProcessPeakRssBytes());
  json.Key("lanes").Int(lanes);
  json.Key("replay_lanes").Int(replay_lanes);
  json.Key("per_node_grads_ms_serial").Number(serial.seconds * 1e3);
  json.Key("per_node_grads_ms_pooled").Number(pooled.seconds * 1e3);
  json.Key("per_node_throughput_serial").Number(tput_serial);
  json.Key("per_node_throughput_pooled").Number(tput_pooled);
  json.Key("per_node_speedup").Number(serial.seconds / pooled.seconds);
  json.Key("per_node_allocs_serial").Int(serial.allocs);
  json.Key("per_node_allocs_pooled").Int(pooled.allocs);
  json.Key("cg_solve_ms_before").Number(cg_before * 1e3);
  json.Key("cg_solve_ms_after").Number(cg_after * 1e3);
  json.Key("cg_speedup").Number(cg_before / cg_after);
  json.Key("bitwise_identical").Bool(bitwise);
  // SimdBackend column + the feature-detection result it acted on.
  json.Key("simd_cpu_avx2_fma").Bool(la::simd::CpuSupportsAvx2Fma());
  json.Key("simd_cpu_avx512").Bool(la::simd::CpuSupportsAvx512());
  json.Key("simd_kernels_active").Bool(simd_kernels_active);
  json.Key("per_node_grads_ms_serial_simd").Number(simd_serial.seconds * 1e3);
  json.Key("per_node_grads_ms_pooled_simd").Number(simd_pooled.seconds * 1e3);
  json.Key("per_node_throughput_pooled_simd").Number(tput_simd_pooled);
  json.Key("per_node_speedup_simd").Number(simd_serial.seconds / simd_pooled.seconds);
  json.Key("bitwise_identical_simd").Bool(simd_bitwise);
  // Block solver: the real per-node influence sweep (cg_block vs the
  // single-RHS oracle) and the synthetic GEMM-batched block sweep.
  json.Key("cg_block").Int(cg_block);
  json.Key("cg_targets").Int(num_targets);
  json.Key("pipeline_per_rhs_ms_single").Number(pipe_single.seconds * 1e3 / num_targets);
  json.Key("pipeline_per_rhs_ms_block").Number(pipe_block.seconds * 1e3 / num_targets);
  json.Key("pipeline_block_speedup").Number(pipe_speedup);
  json.Key("pipeline_max_rel_err").Number(pipe_parity);
  json.Key("pipeline_parity_ok").Bool(pipe_parity_ok);
  json.Key("pipeline_block_iterations").Int(pipe_block.stats.block_iterations);
  json.Key("pipeline_grad_evals_single").Int(pipe_single.stats.grad_evals);
  json.Key("pipeline_grad_evals_block").Int(pipe_block.stats.grad_evals);
  // Lane-fused tape replay: fused vs one-replay-per-probe at the same block
  // width, plus the bitwise gates and warm-pool reuse counters.
  json.Key("fused_replay_speedup").Number(fused_replay_speedup);
  json.Key("fused_bitwise_identical").Bool(fused_bitwise);
  json.Key("fused_lane_parity_ok").Bool(fused_lane_parity_ok);
  json.Key("warm_calc_allocs").Int(warm_calc_allocs);
  json.Key("cold_calc_allocs").Int(cold_calc_allocs);
  json.Key("warm_lane_allocs").Int(warm_lane_allocs);
  json.Key("warm_reuse_ok").Bool(warm_reuse_ok);
  json.Key("block_sweep_dim").Int(cg_dim);
  json.Key("block_sweep_rhs").Int(kSweepRhs);
  json.Key("block_sweep").BeginArray();
  for (const SweepRow& row : sweep) {
    json.BeginObject();
    json.Key("k").Int(row.k);
    json.Key("per_rhs_ms").Number(row.per_rhs_ms);
    json.Key("total_ms").Number(row.total_ms);
    json.Key("block_iterations").Int(row.block_iterations);
    json.Key("grad_evals").Int(row.grad_evals);
    json.Key("algebra_gflops").Number(row.algebra_gflops);
    json.Key("max_rel_err_vs_oracle").Number(row.max_rel_err_vs_oracle);
    json.Key("parity_ok").Bool(row.parity_ok);
    json.EndObject();
  }
  json.EndArray();
  json.Key("cg_block_speedup").Number(cg_block_speedup);
  json.EndObject();

  const std::string json_path = flags.GetString("json", "BENCH_influence.json");
  WriteFileOrDie(json_path, json.ToString());
  std::printf("wrote %s\n", json_path.c_str());

  return bitwise && simd_bitwise && pipe_parity_ok && sweep_parity_ok &&
                 fused_bitwise && fused_lane_parity_ok && warm_reuse_ok
             ? 0
             : 1;
}

}  // namespace ppfr

int main(int argc, char** argv) { return ppfr::Main(argc, argv); }

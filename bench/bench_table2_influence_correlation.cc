// Reproduces Table II: Pearson correlation r between the per-training-node
// influences on fairness (I_fbias) and on privacy risk (I_frisk), for each
// (dataset, model) pair. The paper reads |r| < 0.3 (or negative r) as
// "inconformity": the two goals cannot be served by one reweighting, which
// motivates splitting PPFR into FR (weights) + PP (structure).
//
// Thin front-end over the "table2" registry sweep (vanilla cells only); the
// correlations are computed from the stage-cached vanilla models and ride
// along in the artifact as extra cell metrics.
//
//   ./bench_table2_influence_correlation [--datasets=CoraLike,...]
//       [--models=GCN,GAT,GraphSage] [--epochs=150] [--runner_threads=N]
//       [--json_dir=.]

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "influence/influence.h"
#include "la/stats.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "table2");
  const runner::RunnerOptions opts = bench::RunnerOptionsFromFlags(flags);

  std::printf("Table II — correlation r between I_fbias and I_frisk\n");
  std::printf("(|r| < 0.3 or r < 0 indicates fairness/privacy inconformity in the\n");
  std::printf(" reweighting space; the paper reports mixed signs across cells)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  runner::SweepResult result = runner::RunSweep(sweep, &cache, opts);

  // Influence correlations on the cached vanilla models — the dominant cost
  // here is the CG solves, so they fan across the same worker discipline as
  // the cell scheduler (--runner_threads, private single-threaded backends;
  // each cell works on a private model clone and writes only its own cell).
  const auto correlate_cell = [&](size_t i) {
    runner::CellResult& cell = result.cells[i];
    const auto env = cache.Env(cell.scenario.dataset, opts.env_seed);
    const core::MethodConfig cfg = cell.scenario.ResolvedConfig();
    const std::unique_ptr<nn::GnnModel> model =
        cache.VanillaModel(cell.scenario.model, *env, cfg);

    influence::InfluenceCalculator calculator(model.get(), env->ctx,
                                              env->train_nodes(), env->labels(),
                                              cfg.fr.influence);
    // One 2-RHS block inverse-HVP solve for both influence vectors.
    const std::vector<std::vector<double>> batched = calculator.InfluenceOnFunctions(
        {influence::InfluenceCalculator::BiasFunction(env->similarity.laplacian),
         influence::InfluenceCalculator::RiskFunction(env->attack_pairs)});
    cell.extra["pearson_r"] = la::PearsonCorrelation(batched[0], batched[1]);
    std::fprintf(stderr, "  [%s/%s] r = %.3f\n",
                 data::DatasetName(cell.scenario.dataset).c_str(),
                 nn::ModelKindName(cell.scenario.model).c_str(),
                 cell.extra["pearson_r"]);
  };
  runner::ParallelCells(result.cells.size(), opts.threads, correlate_cell);

  const auto models = bench::ModelsIn(result);
  std::vector<std::string> header{"Dataset"};
  for (nn::ModelKind kind : models) header.push_back(nn::ModelKindName(kind));
  TablePrinter table(header);
  for (data::DatasetId dataset : bench::DatasetsIn(result)) {
    std::vector<std::string> row{data::DatasetName(dataset)};
    for (nn::ModelKind kind : models) {
      const runner::CellResult& cell =
          bench::CellOrDie(result, dataset, kind, core::MethodKind::kVanilla);
      row.push_back(TablePrinter::Num(cell.extra.at("pearson_r"), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  bench::EmitArtifact(flags, result);
  return 0;
}

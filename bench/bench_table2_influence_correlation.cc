// Reproduces Table II: Pearson correlation r between the per-training-node
// influences on fairness (I_fbias) and on privacy risk (I_frisk), for each
// (dataset, model) pair. The paper reads |r| < 0.3 (or negative r) as
// "inconformity": the two goals cannot be served by one reweighting, which
// motivates splitting PPFR into FR (weights) + PP (structure).
//
//   ./bench_table2_influence_correlation [--datasets=CoraLike,...]
//       [--models=GCN,GAT,GraphSage] [--epochs=150]

#include <cstdio>

#include "bench_util.h"
#include "influence/influence.h"
#include "la/stats.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets = bench::ParseDatasets(flags, data::StrongHomophilyDatasets());
  const auto models =
      bench::ParseModels(flags, {nn::ModelKind::kGcn, nn::ModelKind::kGat,
                                 nn::ModelKind::kGraphSage});

  std::printf("Table II — correlation r between I_fbias and I_frisk\n");
  std::printf("(|r| < 0.3 or r < 0 indicates fairness/privacy inconformity in the\n");
  std::printf(" reweighting space; the paper reports mixed signs across cells)\n\n");

  std::vector<std::string> header{"Dataset"};
  for (nn::ModelKind kind : models) header.push_back(nn::ModelKindName(kind));
  TablePrinter table(header);

  for (data::DatasetId dataset : datasets) {
    core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
    std::vector<std::string> row{data::DatasetName(dataset)};
    for (nn::ModelKind kind : models) {
      core::MethodConfig cfg = core::DefaultMethodConfig(dataset, kind);
      bench::ApplyCommonFlags(flags, &cfg);
      auto model = core::TrainFresh(kind, env, env.ctx, cfg, /*lambda=*/0.0);

      influence::InfluenceCalculator calculator(model.get(), env.ctx,
                                                env.train_nodes(), env.labels(),
                                                cfg.fr.influence);
      const std::vector<double> bias_influence =
          calculator.InfluenceOnBias(env.similarity.laplacian);
      const std::vector<double> risk_influence =
          calculator.InfluenceOnRisk(env.attack_pairs);
      const double r = la::PearsonCorrelation(bias_influence, risk_influence);
      row.push_back(TablePrinter::Num(r, 2));
      std::fprintf(stderr, "  [%s/%s] r = %.3f\n", data::DatasetName(dataset).c_str(),
                   nn::ModelKindName(kind).c_str(), r);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

// Reproduces Fig. 7: accuracy cost ΔAcc (%) of the four methods on
// GraphSAGE. The paper's companion observation (Table IV discussion): the
// neighbour-sampling in GraphSAGE dilutes the DP noise, so DPReg's risk
// reduction is much weaker here than on GCN/GAT while its accuracy cost
// remains substantial.
//
// Thin front-end over the "fig7" registry sweep.
//
//   ./bench_fig7_accuracy_cost_sage [--datasets=...] [--epochs=150]
//       [--runner_threads=N] [--json_dir=.]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "fig7");

  std::printf("Fig. 7 — accuracy cost dAcc (%%) on GraphSAGE (higher = better)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  std::vector<std::string> header{"Dataset", "Vanilla Acc%"};
  for (core::MethodKind method : core::ComparisonMethods()) {
    header.push_back(core::MethodName(method) + " dAcc%");
  }
  header.push_back("DPReg dRisk%");
  TablePrinter table(header);

  for (data::DatasetId dataset : bench::DatasetsIn(result)) {
    const runner::CellResult& vanilla = bench::CellOrDie(
        result, dataset, nn::ModelKind::kGraphSage, core::MethodKind::kVanilla);
    std::vector<std::string> row{
        data::DatasetName(dataset),
        TablePrinter::Num(100.0 * vanilla.run->eval.accuracy)};
    for (core::MethodKind method : core::ComparisonMethods()) {
      row.push_back(TablePrinter::Pct(
          bench::CellOrDie(result, dataset, nn::ModelKind::kGraphSage, method)
              .delta.d_acc));
    }
    row.push_back(TablePrinter::Pct(
        bench::CellOrDie(result, dataset, nn::ModelKind::kGraphSage,
                         core::MethodKind::kDpReg)
            .delta.d_risk));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nExpected shape (paper): DPReg's |dRisk| on GraphSAGE is much smaller\n");
  std::printf("than on GCN/GAT (sampling dilutes the DP edge noise), while PPFR's\n");
  std::printf("accuracy cost stays small.\n");
  return 0;
}

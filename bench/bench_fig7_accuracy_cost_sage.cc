// Reproduces Fig. 7: accuracy cost ΔAcc (%) of the four methods on
// GraphSAGE. The paper's companion observation (Table IV discussion): the
// neighbour-sampling in GraphSAGE dilutes the DP noise, so DPReg's risk
// reduction is much weaker here than on GCN/GAT while its accuracy cost
// remains substantial.
//
//   ./bench_fig7_accuracy_cost_sage [--datasets=...] [--epochs=150]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets = bench::ParseDatasets(flags, data::StrongHomophilyDatasets());

  std::printf("Fig. 7 — accuracy cost dAcc (%%) on GraphSAGE (higher = better)\n\n");
  std::vector<std::string> header{"Dataset", "Vanilla Acc%"};
  for (core::MethodKind method : core::ComparisonMethods()) {
    header.push_back(core::MethodName(method) + " dAcc%");
  }
  header.push_back("DPReg dRisk%");
  TablePrinter table(header);

  for (data::DatasetId dataset : datasets) {
    core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
    core::MethodConfig cfg =
        core::DefaultMethodConfig(dataset, nn::ModelKind::kGraphSage);
    bench::ApplyCommonFlags(flags, &cfg);
    const bench::MethodSuite suite =
        bench::RunMethodSuite(env, nn::ModelKind::kGraphSage, cfg);
    std::vector<std::string> row{
        data::DatasetName(dataset),
        TablePrinter::Num(100.0 * suite.vanilla.eval.accuracy)};
    for (core::MethodKind method : core::ComparisonMethods()) {
      row.push_back(TablePrinter::Pct(suite.deltas.at(method).d_acc));
    }
    row.push_back(TablePrinter::Pct(suite.deltas.at(core::MethodKind::kDpReg).d_risk));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nExpected shape (paper): DPReg's |dRisk| on GraphSAGE is much smaller\n");
  std::printf("than on GCN/GAT (sampling dilutes the DP edge noise), while PPFR's\n");
  std::printf("accuracy cost stays small.\n");
  return 0;
}

// Reproduces Table IV: Δbias, Δrisk and the combined Δ (Eq. 22) of Reg,
// DPReg, DPFR and PPFR relative to vanilla training, across 3 datasets x
// 3 models. Expected shape: Reg has negative Δ (bias down but risk up);
// DPReg has positive Δ at huge accuracy cost (see Fig. 5); PPFR achieves
// positive Δ — bias and risk down together — at a modest accuracy cost,
// and PP beats DP when combined with FR.
//
// Thin front-end over the "table4" registry sweep: the scenario runner
// trains vanilla once per (dataset, model, seed) and shares the DP/PP/FR
// stages across methods; results are numerically identical to running each
// pipeline from scratch.
//
//   ./bench_table4_ppfr_effectiveness [--datasets=...] [--models=...]
//       [--epochs=150] [--runner_threads=N] [--json_dir=.]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "table4");

  std::printf("Table IV — effectiveness of PPFR (all values vs vanilla, %%)\n");
  std::printf("(smaller Δbias = fairer, smaller Δrisk = more private,\n");
  std::printf(" larger positive Δ = better fairness/privacy balance)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  const auto models = bench::ModelsIn(result);
  for (data::DatasetId dataset : bench::DatasetsIn(result)) {
    std::printf("%s:\n", data::DatasetName(dataset).c_str());
    std::vector<std::string> header{"Methods"};
    for (nn::ModelKind kind : models) {
      const std::string name = nn::ModelKindName(kind);
      header.push_back(name + " dBias%");
      header.push_back(name + " dRisk%");
      header.push_back(name + " D");
    }
    TablePrinter table(header);

    for (core::MethodKind method : core::ComparisonMethods()) {
      std::vector<std::string> row{core::MethodName(method)};
      for (nn::ModelKind kind : models) {
        const core::DeltaMetrics& d =
            bench::CellOrDie(result, dataset, kind, method).delta;
        row.push_back(TablePrinter::Pct(d.d_bias));
        row.push_back(TablePrinter::Pct(d.d_risk));
        row.push_back(TablePrinter::Num(d.combined, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): Reg rows show Δrisk > 0 (trade-off);\n");
  std::printf("PPFR rows show Δbias < 0 AND Δrisk <= 0 with positive Δ.\n");
  return 0;
}

#!/usr/bin/env python3
"""Key-path schema tooling for the BENCH_*.json artifacts.

CI diffs each artifact's schema against its named section of
bench/golden/artifact_schema.txt, so a schema change is a deliberate golden
update, never an accident. Bench-specific `extra` cell metrics are excluded —
they are allowed to vary per sweep.

Usage:
  extract_schema.py ARTIFACT.json
      Print the artifact's sorted key-path schema (for regenerating goldens).
  extract_schema.py ARTIFACT.json --golden GOLDEN --section NAME
      Diff the artifact's schema against the named golden section; prints a
      unified diff and exits non-zero on mismatch.
"""

import argparse
import difflib
import json
import sys


def walk(node, prefix, out):
    if isinstance(node, dict):
        for key, value in node.items():
            path = prefix + "." + key
            out.add(path)
            walk(value, path, out)
    elif isinstance(node, list):
        for value in node:
            walk(value, prefix + "[]", out)


def artifact_schema(path):
    keys = set()
    with open(path) as f:
        walk(json.load(f), "", keys)
    return sorted(k for k in keys if ".extra" not in k)


def golden_section(path, name):
    """Parses `# section: <name>` delimited blocks; blank/comment lines are
    ignored inside a section."""
    sections = {}
    current = None
    with open(path) as f:
        for raw in f:
            line = raw.rstrip("\n")
            if line.startswith("# section: "):
                current = line[len("# section: "):].strip()
                sections[current] = []
            elif not line or line.startswith("#"):
                continue
            elif current is not None:
                sections[current].append(line)
    if name not in sections:
        sys.exit(f"{path} has no '# section: {name}' "
                 f"(found: {', '.join(sorted(sections)) or 'none'})")
    return sections[name]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("artifact")
    parser.add_argument("--golden", help="golden schema file with sections")
    parser.add_argument("--section", help="section name inside --golden")
    args = parser.parse_args()
    if bool(args.golden) != bool(args.section):
        parser.error("--golden and --section must be used together")

    got = artifact_schema(args.artifact)
    if not args.golden:
        print("\n".join(got))
        return

    want = golden_section(args.golden, args.section)
    if got == want:
        print(f"{args.artifact}: schema matches section '{args.section}'")
        return
    sys.stdout.writelines(
        difflib.unified_diff([l + "\n" for l in want], [l + "\n" for l in got],
                             fromfile=f"{args.golden}#{args.section}",
                             tofile=args.artifact))
    sys.exit(1)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Prints the sorted key-path schema of a BENCH_<sweep>.json artifact.

CI diffs this against bench/golden/artifact_schema.txt so a schema change is
a deliberate golden update, never an accident. Bench-specific `extra` cell
metrics are excluded — they are allowed to vary per sweep.

Usage: extract_schema.py BENCH_smoke.json
"""

import json
import sys


def walk(node, prefix, out):
    if isinstance(node, dict):
        for key, value in node.items():
            path = prefix + "." + key
            out.add(path)
            walk(value, path, out)
    elif isinstance(node, list):
        for value in node:
            walk(value, prefix + "[]", out)


def main():
    keys = set()
    walk(json.load(open(sys.argv[1])), "", keys)
    print("\n".join(sorted(k for k in keys if ".extra" not in k)))


if __name__ == "__main__":
    main()

// Reproduces Table V: the weak-homophily study (Enzymes-like 0.66,
// Credit-like 0.62) on GCN — Δacc, Δbias, Δrisk and Δ for each method.
// Expected shape: the fairness/privacy trade-off weakens or disappears when
// homophily is weak (Reg's Δ is higher than on the citation graphs), and DP
// becomes competitive with PP because DP's random edges resemble the
// weak-homophily edge distribution.
//
//   ./bench_table5_weak_homophily [--epochs=150]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets = bench::ParseDatasets(flags, data::WeakHomophilyDatasets());

  std::printf("Table V — GCN on weak-homophily datasets (all values %%, Δ raw)\n\n");
  TablePrinter table(
      {"Dataset", "Methods", "dAcc%", "dBias% (down)", "dRisk% (down)", "D (up)"});

  for (data::DatasetId dataset : datasets) {
    core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
    core::MethodConfig cfg = core::DefaultMethodConfig(dataset, nn::ModelKind::kGcn);
    bench::ApplyCommonFlags(flags, &cfg);
    const bench::MethodSuite suite =
        bench::RunMethodSuite(env, nn::ModelKind::kGcn, cfg);
    std::fprintf(stderr, "  [%s] homophily %.2f\n",
                 data::DatasetName(dataset).c_str(),
                 env.dataset.data.graph.EdgeHomophily(env.labels()));

    for (core::MethodKind method : core::ComparisonMethods()) {
      const core::DeltaMetrics& d = suite.deltas.at(method);
      table.AddRow({data::DatasetName(dataset), core::MethodName(method),
                    TablePrinter::Pct(d.d_acc), TablePrinter::Pct(d.d_bias),
                    TablePrinter::Pct(d.d_risk), TablePrinter::Num(d.combined, 3)});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nExpected shape (paper): the Reg trade-off is weaker here than on\n");
  std::printf("strong-homophily graphs; DP and PP are comparable when combined\n");
  std::printf("with FR.\n");
  return 0;
}

// Reproduces Table V: the weak-homophily study (Enzymes-like 0.66,
// Credit-like 0.62) on GCN — Δacc, Δbias, Δrisk and Δ for each method.
// Expected shape: the fairness/privacy trade-off weakens or disappears when
// homophily is weak (Reg's Δ is higher than on the citation graphs), and DP
// becomes competitive with PP because DP's random edges resemble the
// weak-homophily edge distribution.
//
// Thin front-end over the "table5" (alias "weak-homophily") registry sweep.
//
//   ./bench_table5_weak_homophily [--epochs=150] [--runner_threads=N]
//       [--json_dir=.]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "table5");

  std::printf("Table V — GCN on weak-homophily datasets (all values %%, Δ raw)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  TablePrinter table(
      {"Dataset", "Methods", "dAcc%", "dBias% (down)", "dRisk% (down)", "D (up)"});
  for (data::DatasetId dataset : bench::DatasetsIn(result)) {
    const auto env = cache.Env(dataset, bench::RunnerOptionsFromFlags(flags).env_seed);
    std::fprintf(stderr, "  [%s] homophily %.2f\n",
                 data::DatasetName(dataset).c_str(),
                 env->dataset.data.graph.EdgeHomophily(env->labels()));
    for (core::MethodKind method : core::ComparisonMethods()) {
      const core::DeltaMetrics& d =
          bench::CellOrDie(result, dataset, nn::ModelKind::kGcn, method).delta;
      table.AddRow({data::DatasetName(dataset), core::MethodName(method),
                    TablePrinter::Pct(d.d_acc), TablePrinter::Pct(d.d_bias),
                    TablePrinter::Pct(d.d_risk), TablePrinter::Num(d.combined, 3)});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nExpected shape (paper): the Reg trade-off is weaker here than on\n");
  std::printf("strong-homophily graphs; DP and PP are comparable when combined\n");
  std::printf("with FR.\n");
  return 0;
}

// Reproduces Fig. 6: ablation of PPFR's two modules on (CoraLike, GAT).
//   Left panel   — FR only (zero PP): sweep the number of fine-tune epochs;
//                  fairness improves but accuracy AND privacy degrade (RQ1).
//   Middle panel — PP + fixed FR: sweep the perturbation ratio γ; privacy
//                  risk falls as γ grows, at an accuracy cost.
//   Right panel  — fixed PP + FR: sweep fine-tune epochs; PP restrains the
//                  risk near the vanilla level while FR debiases.
// Plus a library-specific ablation of the QCLP zero-sum constraint.
//
// Thin front-end over the "fig6" (alias "ablation") registry sweep — every
// panel point is a PPFR scenario with config overrides (γ = 0 disables the
// perturbation, so "FR only" is PPFR with pp_gamma = 0), and the shared
// vanilla model / FR weights / PP context come out of the stage cache
// instead of bespoke clone-and-finetune plumbing.
//
//   ./bench_fig6_ablation [--epochs=150] [--runner_threads=N] [--json_dir=.]

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace ppfr;

// Panel membership and x values are derived from the registry sweep's own
// cell labels (one source of truth in runner::RegistrySweep("fig6")): cells
// labelled `<prefix><x>` belong to the panel, x parsed from the suffix.
void PrintSeries(const runner::SweepResult& result, const std::string& title,
                 const std::string& x_name, const std::string& label_prefix,
                 const core::EvalResult& vanilla) {
  std::printf("%s\n", title.c_str());
  TablePrinter table({x_name, "Acc%", "Bias", "Risk AUC"});
  table.AddRow({"(vanilla)", TablePrinter::Num(100.0 * vanilla.accuracy),
                TablePrinter::Num(vanilla.bias, 4),
                TablePrinter::Num(vanilla.risk_auc, 4)});
  table.AddSeparator();
  int points = 0;
  for (const runner::CellResult& cell : result.cells) {
    const std::string& label = cell.scenario.label;
    if (label.rfind(label_prefix, 0) != 0) continue;
    const double x = std::atof(label.c_str() + label_prefix.size());
    table.AddRow({TablePrinter::Num(x, 2),
                  TablePrinter::Num(100.0 * cell.run->eval.accuracy),
                  TablePrinter::Num(cell.run->eval.bias, 4),
                  TablePrinter::Num(cell.run->eval.risk_auc, 4)});
    ++points;
  }
  if (points == 0) {
    std::fprintf(stderr, "fig6 sweep has no '%s*' cells — registry drift?\n",
                 label_prefix.c_str());
    std::exit(2);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "fig6");

  std::printf("Fig. 6 — PPFR ablation on (CoraLike, GAT)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  const core::EvalResult& vanilla_eval =
      bench::CellOrDie(result, data::DatasetId::kCoraLike, nn::ModelKind::kGat,
                       core::MethodKind::kVanilla)
          .run->eval;

  PrintSeries(result, "(left) FR only — fine-tune epoch sweep, zero edge perturbations",
              "#epochs", "fr_only_ep", vanilla_eval);
  PrintSeries(result, "(middle) PP ratio sweep, fixed FR epochs", "gamma",
              "pp_gamma_", vanilla_eval);
  PrintSeries(result, "(right) fixed PP + FR — fine-tune epoch sweep", "#epochs",
              "ppfr_ep", vanilla_eval);

  std::printf("(extra) QCLP zero-sum constraint ablation (30 fine-tune epochs)\n");
  TablePrinter zs_table({"zero_sum", "Acc%", "Bias", "Risk AUC"});
  for (bool zero_sum : {true, false}) {
    const std::string label = zero_sum ? "zero_sum_on" : "zero_sum_off";
    const runner::CellResult* cell = runner::FindCellByLabel(result, label);
    if (cell == nullptr) {
      std::fprintf(stderr, "fig6 sweep has no '%s' cell — registry drift?\n",
                   label.c_str());
      return 2;
    }
    zs_table.AddRow({zero_sum ? "on" : "off",
                     TablePrinter::Num(100.0 * cell->run->eval.accuracy),
                     TablePrinter::Num(cell->run->eval.bias, 4),
                     TablePrinter::Num(cell->run->eval.risk_auc, 4)});
  }
  zs_table.Print();
  std::printf("\nExpected shape (paper): left panel degrades privacy as fairness\n");
  std::printf("improves; right panel holds Risk AUC near the vanilla line.\n");
  return 0;
}

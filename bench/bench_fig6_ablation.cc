// Reproduces Fig. 6: ablation of PPFR's two modules on (CoraLike, GAT).
//   Left panel   — FR only (zero PP): sweep the number of fine-tune epochs;
//                  fairness improves but accuracy AND privacy degrade (RQ1).
//   Middle panel — PP + fixed FR: sweep the perturbation ratio γ; privacy
//                  risk falls as γ grows, at an accuracy cost.
//   Right panel  — fixed PP + FR: sweep fine-tune epochs; PP restrains the
//                  risk near the vanilla level while FR debiases.
// Plus a library-specific ablation of the QCLP zero-sum constraint.
//
//   ./bench_fig6_ablation [--dataset=CoraLike] [--model=GAT] [--epochs=150]

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace ppfr;

struct Point {
  double x = 0.0;
  core::EvalResult eval;
};

void PrintSeries(const std::string& title, const std::string& x_name,
                 const std::vector<Point>& points, const core::EvalResult& vanilla) {
  std::printf("%s\n", title.c_str());
  TablePrinter table({x_name, "Acc%", "Bias", "Risk AUC"});
  table.AddRow({"(vanilla)", TablePrinter::Num(100.0 * vanilla.accuracy),
                TablePrinter::Num(vanilla.bias, 4),
                TablePrinter::Num(vanilla.risk_auc, 4)});
  table.AddSeparator();
  for (const Point& p : points) {
    table.AddRow({TablePrinter::Num(p.x, 2), TablePrinter::Num(100.0 * p.eval.accuracy),
                  TablePrinter::Num(p.eval.bias, 4),
                  TablePrinter::Num(p.eval.risk_auc, 4)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets =
      bench::ParseDatasets(flags, {data::DatasetId::kCoraLike});
  const auto models = bench::ParseModels(flags, {nn::ModelKind::kGat});
  const data::DatasetId dataset = datasets.front();
  const nn::ModelKind model_kind = models.front();

  core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
  core::MethodConfig cfg = core::DefaultMethodConfig(dataset, model_kind);
  bench::ApplyCommonFlags(flags, &cfg);

  std::printf("Fig. 6 — PPFR ablation on (%s, %s)\n\n",
              data::DatasetName(dataset).c_str(),
              nn::ModelKindName(model_kind).c_str());

  // Shared vanilla phase + FR weights (identical across panels).
  auto vanilla = core::TrainFresh(model_kind, env, env.ctx, cfg, /*lambda=*/0.0);
  const core::EvalResult vanilla_eval = core::EvaluateModel(vanilla.get(), env.Eval());
  const core::FrOutput fr = core::ComputeFr(vanilla.get(), env, cfg);

  const std::vector<int> epoch_sweep{8, 15, 30, 45, 60};
  const std::vector<double> gamma_sweep{0.0, 0.25, 0.5, 0.75, 1.0};
  const int fixed_epochs = 30;
  const double fixed_gamma = cfg.pp_gamma;

  // Left: FR only (original graph).
  std::vector<Point> left;
  for (int epochs : epoch_sweep) {
    auto clone = vanilla->Clone();
    core::Finetune(clone.get(), env, env.ctx, fr.sample_weights, epochs, cfg);
    left.push_back({static_cast<double>(epochs),
                    core::EvaluateModel(clone.get(), env.Eval())});
  }
  PrintSeries("(left) FR only — fine-tune epoch sweep, zero edge perturbations",
              "#epochs", left, vanilla_eval);

  // Middle: PP ratio sweep with fixed FR epochs.
  std::vector<Point> middle;
  for (double gamma : gamma_sweep) {
    auto clone = vanilla->Clone();
    const nn::GraphContext pp_ctx =
        core::MakePpContext(env, vanilla.get(), gamma, cfg.seed ^ 0x99ULL);
    core::Finetune(clone.get(), env, pp_ctx, fr.sample_weights, fixed_epochs, cfg);
    middle.push_back({gamma, core::EvaluateModel(clone.get(), env.Eval())});
  }
  PrintSeries("(middle) PP ratio sweep, fixed FR epochs", "gamma", middle,
              vanilla_eval);

  // Right: fixed PP + FR epoch sweep.
  const nn::GraphContext pp_ctx =
      core::MakePpContext(env, vanilla.get(), fixed_gamma, cfg.seed ^ 0x99ULL);
  std::vector<Point> right;
  for (int epochs : epoch_sweep) {
    auto clone = vanilla->Clone();
    core::Finetune(clone.get(), env, pp_ctx, fr.sample_weights, epochs, cfg);
    right.push_back({static_cast<double>(epochs),
                     core::EvaluateModel(clone.get(), env.Eval())});
  }
  PrintSeries("(right) fixed PP + FR — fine-tune epoch sweep", "#epochs", right,
              vanilla_eval);

  // Library ablation: QCLP zero-sum constraint on vs off (DESIGN.md §5).
  std::printf("(extra) QCLP zero-sum constraint ablation (30 fine-tune epochs)\n");
  TablePrinter zs_table({"zero_sum", "Acc%", "Bias", "Risk AUC"});
  for (bool zero_sum : {true, false}) {
    core::MethodConfig variant = cfg;
    variant.fr.zero_sum = zero_sum;
    const core::FrOutput weights = core::ComputeFr(vanilla.get(), env, variant);
    auto clone = vanilla->Clone();
    core::Finetune(clone.get(), env, env.ctx, weights.sample_weights, fixed_epochs,
                   variant);
    const core::EvalResult eval = core::EvaluateModel(clone.get(), env.Eval());
    zs_table.AddRow({zero_sum ? "on" : "off", TablePrinter::Num(100.0 * eval.accuracy),
                     TablePrinter::Num(eval.bias, 4),
                     TablePrinter::Num(eval.risk_auc, 4)});
  }
  zs_table.Print();
  std::printf("\nExpected shape (paper): left panel degrades privacy as fairness\n");
  std::printf("improves; right panel holds Risk AUC near the vanilla line.\n");
  return 0;
}

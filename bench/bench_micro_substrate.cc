// Micro-benchmarks of the substrate hot paths (google-benchmark): SpMM, GCN
// forward/backward, GAT attention, Jaccard similarity, attack distance
// evaluation, influence per-node gradients and the QCLP solver. These bound
// the cost of every experiment binary in this repo.
//
// Before the google-benchmark suite runs, the binary prints a
// reference/parallel/simd backend comparison per kernel and per thread count
// and emits it as BENCH_micro.json (the BENCH trajectory for the la::Backend
// layer — per-kernel GFLOP/s across PRs; schema pinned by
// bench/golden/artifact_schema.txt, section "micro"). Flags:
//   --la_backend=reference|parallel|simd --la_threads=N   backend for BM_*
//   --compare_reps=N        timing repetitions for the comparison (0 skips it)
//   --compare_gemm_size=N   GEMM problem size (default 512, i.e. 512x512x512)
//   --json=PATH             comparison artifact path (default BENCH_micro.json)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/datasets.h"
#include "graph/graph_ops.h"
#include "graph/jaccard.h"
#include "la/backend.h"
#include "la/simd_kernels.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "privacy/attack/link_stealing.h"
#include "privacy/defense/edge_rand.h"
#include "solver/qclp.h"

namespace {

using namespace ppfr;

const data::NodeClassificationData& CoraLikeData() {
  static const auto* data = new data::NodeClassificationData(
      data::GenerateSbm(data::DatasetConfig(data::DatasetId::kCoraLike), 1));
  return *data;
}

const nn::GraphContext& CoraLikeContext() {
  static const auto* ctx = new nn::GraphContext(
      nn::GraphContext::Build(CoraLikeData().graph, CoraLikeData().features));
  return *ctx;
}

void BM_SpMM(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  Rng rng(1);
  la::Matrix x(ctx.num_nodes(), static_cast<int>(state.range(0)));
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.gcn_adj->mat.Multiply(x));
  }
  state.SetItemsProcessed(state.iterations() * ctx.gcn_adj->mat.nnz());
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_DenseMatMul(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  la::Matrix a(n, n), b(n, n);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Normal();
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Normal();
  for (auto _ : state) benchmark::DoNotOptimize(la::MatMul(a, b));
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnForward(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  auto model = nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(),
                             CoraLikeData().num_classes, 1);
  for (auto _ : state) benchmark::DoNotOptimize(model->Logits(ctx));
}
BENCHMARK(BM_GcnForward);

void BM_GatForward(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  auto model = nn::MakeModel(nn::ModelKind::kGat, ctx.feature_dim(),
                             CoraLikeData().num_classes, 1);
  for (auto _ : state) benchmark::DoNotOptimize(model->Logits(ctx));
}
BENCHMARK(BM_GatForward);

void BM_GcnTrainEpoch(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  auto model = nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(),
                             CoraLikeData().num_classes, 1);
  std::vector<int> train_nodes;
  for (int v = 0; v < 140; ++v) train_nodes.push_back(v * 10);
  nn::TrainConfig cfg;
  cfg.epochs = 1;
  for (auto _ : state) {
    nn::Train(model.get(), ctx, train_nodes, CoraLikeData().labels, cfg);
  }
}
BENCHMARK(BM_GcnTrainEpoch);

void BM_JaccardSimilarity(benchmark::State& state) {
  const auto& data = CoraLikeData();
  for (auto _ : state) benchmark::DoNotOptimize(graph::JaccardSimilarity(data.graph));
}
BENCHMARK(BM_JaccardSimilarity);

void BM_LinkStealingAttack(benchmark::State& state) {
  const auto& data = CoraLikeData();
  const privacy::PairSample pairs = privacy::SamplePairs(data.graph, 2000, 3);
  Rng rng(4);
  la::Matrix probs(data.graph.num_nodes(), data.num_classes);
  for (int v = 0; v < probs.rows(); ++v) {
    double sum = 0;
    for (int c = 0; c < probs.cols(); ++c) {
      probs(v, c) = 0.01 + rng.Uniform();
      sum += probs(v, c);
    }
    for (int c = 0; c < probs.cols(); ++c) probs(v, c) /= sum;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::LinkStealingAttack(probs, pairs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.connected.size()) * 2 *
                          static_cast<int64_t>(privacy::AllDistanceKinds().size()));
}
BENCHMARK(BM_LinkStealingAttack);

void BM_EdgeRand(benchmark::State& state) {
  const auto& data = CoraLikeData();
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::EdgeRand(data.graph, 6.0, ++seed));
  }
}
BENCHMARK(BM_EdgeRand);

void BM_QclpSolve(benchmark::State& state) {
  Rng rng(5);
  solver::QclpProblem problem;
  const int n = static_cast<int>(state.range(0));
  problem.objective.resize(n);
  problem.halfspace_u.resize(n);
  for (int i = 0; i < n; ++i) {
    problem.objective[i] = rng.Normal();
    problem.halfspace_u[i] = rng.Normal();
  }
  problem.ball_radius_sq = 0.9 * n;
  problem.halfspace_offset = 0.1;
  problem.zero_sum = true;
  for (auto _ : state) benchmark::DoNotOptimize(solver::SolveQclp(problem));
}
BENCHMARK(BM_QclpSolve)->Arg(140)->Arg(500);

// ---------------------------------------------------------------------------
// Backend comparison. Each kernel is timed on a standalone ReferenceBackend
// and on ParallelBackend/SimdBackend instances with increasing thread
// counts; the table reports milliseconds, speedups over the reference loops
// and the simd backend's GFLOP/s. The same numbers are emitted to
// BENCH_micro.json so the kernel trajectory is tracked across PRs like the
// influence and sweep artifacts.
// ---------------------------------------------------------------------------

struct CompareCase {
  std::string kernel;
  std::string shape;
  double flops_per_call;
  std::function<void(const la::Backend&)> run;
};

double TimeKernel(const la::Backend& backend, const CompareCase& cc, int reps) {
  cc.run(backend);  // warmup
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    cc.run(backend);
    best_ms = std::min(best_ms, sw.ElapsedMillis());
  }
  return best_ms;
}

double Gflops(double flops, double ms) { return flops / (ms * 1e-3) / 1e9; }

void RunBackendComparison(const Flags& flags) {
  const int reps = flags.GetInt("compare_reps", 3);
  if (reps <= 0) return;
  const int n = flags.GetInt("compare_gemm_size", 512);

  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > thread_counts.back()) thread_counts.push_back(hw);

  Rng rng(17);
  la::Matrix a(n, n), b(n, n), gemm_out(n, n);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Normal();
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Normal();

  const nn::GraphContext& ctx = CoraLikeContext();
  const la::CsrMatrix& adj = ctx.gcn_adj->mat;
  la::Matrix spmm_x(ctx.num_nodes(), 64), spmm_out(ctx.num_nodes(), 64);
  for (int64_t i = 0; i < spmm_x.size(); ++i) spmm_x.data()[i] = rng.Normal();
  // The lane-fused replay regime: a hidden-16 operand widened to 8 probe
  // lanes = 128 contiguous columns per row, the shape the multi-column
  // SpmmRow kernel keeps in registers across a row's whole nonzero list.
  la::Matrix spmm_wide_x(ctx.num_nodes(), 128), spmm_wide_out(ctx.num_nodes(), 128);
  for (int64_t i = 0; i < spmm_wide_x.size(); ++i) {
    spmm_wide_x.data()[i] = rng.Normal();
  }

  const int64_t vec_n = 4 * 1000 * 1000;
  std::vector<double> vx(vec_n), vy(vec_n);
  for (auto& v : vx) v = rng.Normal();
  for (auto& v : vy) v = rng.Normal();

  const double gemm_flops = 2.0 * n * n * n;
  const std::string nn_shape =
      std::to_string(n) + "x" + std::to_string(n) + "x" + std::to_string(n);
  std::vector<CompareCase> cases;
  cases.push_back({"gemm", nn_shape, gemm_flops,
                   [&](const la::Backend& be) { be.Gemm(a, b, &gemm_out); }});
  cases.push_back({"gemm_transA", nn_shape, gemm_flops,
                   [&](const la::Backend& be) { be.GemmTransA(a, b, &gemm_out); }});
  cases.push_back({"gemm_transB", nn_shape, gemm_flops,
                   [&](const la::Backend& be) { be.GemmTransB(a, b, &gemm_out); }});
  // Accumulates across repetitions on purpose: zeroing inside the timed
  // region would charge both backends a constant memset and dilute the ratio.
  cases.push_back({"spmm",
                   std::to_string(adj.rows()) + "x" + std::to_string(adj.cols()) +
                       " (" + std::to_string(adj.nnz()) + " nnz) x 64",
                   2.0 * static_cast<double>(adj.nnz()) * 64,
                   [&](const la::Backend& be) {
                     be.SpmmAccum(adj, spmm_x, 1.0, &spmm_out);
                   }});
  cases.push_back({"spmm_wide8",
                   std::to_string(adj.rows()) + "x" + std::to_string(adj.cols()) +
                       " (" + std::to_string(adj.nnz()) + " nnz) x 16x8lanes",
                   2.0 * static_cast<double>(adj.nnz()) * 128,
                   [&](const la::Backend& be) {
                     be.SpmmAccum(adj, spmm_wide_x, 1.0, &spmm_wide_out);
                   }});
  cases.push_back({"vec_axpy", std::to_string(vec_n), 2.0 * vec_n,
                   [&](const la::Backend& be) {
                     be.VAxpy(0.5, vx.data(), vy.data(), vec_n);
                   }});
  cases.push_back({"vec_dot", std::to_string(vec_n), 2.0 * vec_n,
                   [&](const la::Backend& be) {
                     double d = be.VDot(vx.data(), vy.data(), vec_n);
                     benchmark::DoNotOptimize(d);
                   }});

  const bool simd_active = la::simd::KernelsUsable();

  TablePrinter table({"Kernel", "Shape", "thr", "ref ms", "par ms", "par spd",
                      "simd ms", "simd spd", "simd GFLOP/s"});
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("bench").String("micro");
  json.Key("gemm_size").Int(n);
  json.Key("reps").Int(reps);
  json.Key("hardware_threads").Int(hw);
  json.Key("simd_cpu_avx2_fma").Bool(la::simd::CpuSupportsAvx2Fma());
  json.Key("simd_cpu_avx512").Bool(la::simd::CpuSupportsAvx512());
  json.Key("simd_kernels_active").Bool(simd_active);
  json.Key("kernels").BeginArray();

  const auto reference = la::MakeBackend(la::BackendKind::kReference, 1);
  for (const CompareCase& cc : cases) {
    const double ref_ms = TimeKernel(*reference, cc, reps);
    json.BeginObject();
    json.Key("kernel").String(cc.kernel);
    json.Key("shape").String(cc.shape);
    json.Key("flops_per_call").Number(cc.flops_per_call);
    json.Key("timings").BeginArray();
    json.BeginObject();
    json.Key("backend").String("reference");
    json.Key("threads").Int(1);
    json.Key("ms").Number(ref_ms);
    json.Key("gflops").Number(Gflops(cc.flops_per_call, ref_ms));
    json.EndObject();
    for (const int t : thread_counts) {
      const double par_ms =
          TimeKernel(*la::MakeBackend(la::BackendKind::kParallel, t), cc, reps);
      const double simd_ms =
          TimeKernel(*la::MakeBackend(la::BackendKind::kSimd, t), cc, reps);
      for (const auto& [name, ms] :
           {std::pair<const char*, double>{"parallel", par_ms}, {"simd", simd_ms}}) {
        json.BeginObject();
        json.Key("backend").String(name);
        json.Key("threads").Int(t);
        json.Key("ms").Number(ms);
        json.Key("gflops").Number(Gflops(cc.flops_per_call, ms));
        json.EndObject();
      }
      table.AddRow({cc.kernel, cc.shape, std::to_string(t),
                    TablePrinter::Num(ref_ms, 2), TablePrinter::Num(par_ms, 2),
                    TablePrinter::Num(ref_ms / par_ms, 2) + "x",
                    TablePrinter::Num(simd_ms, 2),
                    TablePrinter::Num(ref_ms / simd_ms, 2) + "x",
                    TablePrinter::Num(Gflops(cc.flops_per_call, simd_ms), 1)});
    }
    json.EndArray().EndObject();
  }
  json.EndArray().EndObject();

  std::printf(
      "la::Backend comparison (best of %d reps; %d hardware threads; "
      "simd kernels %s: avx2+fma=%d avx512=%d)\n",
      reps, hw, simd_active ? "active" : "fallback (scalar)",
      la::simd::CpuSupportsAvx2Fma() ? 1 : 0, la::simd::CpuSupportsAvx512() ? 1 : 0);
  table.Print();

  const std::string json_path = flags.GetString("json", "BENCH_micro.json");
  WriteFileOrDie(json_path, json.ToString());
  std::printf("wrote %s\n", json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const ppfr::Flags flags(argc, argv);
  ppfr::la::ConfigureBackendFromFlags(flags);
  RunBackendComparison(flags);
  // Hand google-benchmark an argv without this binary's own flags so its
  // unrecognized-argument guard still catches misspelled --benchmark_* args.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--la_backend") || arg.starts_with("--la_threads") ||
        arg.starts_with("--compare_") || arg.starts_with("--json")) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Micro-benchmarks of the substrate hot paths (google-benchmark): SpMM, GCN
// forward/backward, GAT attention, Jaccard similarity, attack distance
// evaluation, influence per-node gradients and the QCLP solver. These bound
// the cost of every experiment binary in this repo.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "graph/graph_ops.h"
#include "graph/jaccard.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "privacy/attack/link_stealing.h"
#include "privacy/defense/edge_rand.h"
#include "solver/qclp.h"

namespace {

using namespace ppfr;

const data::NodeClassificationData& CoraLikeData() {
  static const auto* data = new data::NodeClassificationData(
      data::GenerateSbm(data::DatasetConfig(data::DatasetId::kCoraLike), 1));
  return *data;
}

const nn::GraphContext& CoraLikeContext() {
  static const auto* ctx = new nn::GraphContext(
      nn::GraphContext::Build(CoraLikeData().graph, CoraLikeData().features));
  return *ctx;
}

void BM_SpMM(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  Rng rng(1);
  la::Matrix x(ctx.num_nodes(), static_cast<int>(state.range(0)));
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.gcn_adj->mat.Multiply(x));
  }
  state.SetItemsProcessed(state.iterations() * ctx.gcn_adj->mat.nnz());
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_DenseMatMul(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  la::Matrix a(n, n), b(n, n);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Normal();
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Normal();
  for (auto _ : state) benchmark::DoNotOptimize(la::MatMul(a, b));
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128);

void BM_GcnForward(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  auto model = nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(),
                             CoraLikeData().num_classes, 1);
  for (auto _ : state) benchmark::DoNotOptimize(model->Logits(ctx));
}
BENCHMARK(BM_GcnForward);

void BM_GatForward(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  auto model = nn::MakeModel(nn::ModelKind::kGat, ctx.feature_dim(),
                             CoraLikeData().num_classes, 1);
  for (auto _ : state) benchmark::DoNotOptimize(model->Logits(ctx));
}
BENCHMARK(BM_GatForward);

void BM_GcnTrainEpoch(benchmark::State& state) {
  const nn::GraphContext& ctx = CoraLikeContext();
  auto model = nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(),
                             CoraLikeData().num_classes, 1);
  std::vector<int> train_nodes;
  for (int v = 0; v < 140; ++v) train_nodes.push_back(v * 10);
  nn::TrainConfig cfg;
  cfg.epochs = 1;
  for (auto _ : state) {
    nn::Train(model.get(), ctx, train_nodes, CoraLikeData().labels, cfg);
  }
}
BENCHMARK(BM_GcnTrainEpoch);

void BM_JaccardSimilarity(benchmark::State& state) {
  const auto& data = CoraLikeData();
  for (auto _ : state) benchmark::DoNotOptimize(graph::JaccardSimilarity(data.graph));
}
BENCHMARK(BM_JaccardSimilarity);

void BM_LinkStealingAttack(benchmark::State& state) {
  const auto& data = CoraLikeData();
  const privacy::PairSample pairs = privacy::SamplePairs(data.graph, 2000, 3);
  Rng rng(4);
  la::Matrix probs(data.graph.num_nodes(), data.num_classes);
  for (int v = 0; v < probs.rows(); ++v) {
    double sum = 0;
    for (int c = 0; c < probs.cols(); ++c) {
      probs(v, c) = 0.01 + rng.Uniform();
      sum += probs(v, c);
    }
    for (int c = 0; c < probs.cols(); ++c) probs(v, c) /= sum;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::LinkStealingAttack(probs, pairs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.connected.size()) * 2 *
                          static_cast<int64_t>(privacy::AllDistanceKinds().size()));
}
BENCHMARK(BM_LinkStealingAttack);

void BM_EdgeRand(benchmark::State& state) {
  const auto& data = CoraLikeData();
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::EdgeRand(data.graph, 6.0, ++seed));
  }
}
BENCHMARK(BM_EdgeRand);

void BM_QclpSolve(benchmark::State& state) {
  Rng rng(5);
  solver::QclpProblem problem;
  const int n = static_cast<int>(state.range(0));
  problem.objective.resize(n);
  problem.halfspace_u.resize(n);
  for (int i = 0; i < n; ++i) {
    problem.objective[i] = rng.Normal();
    problem.halfspace_u[i] = rng.Normal();
  }
  problem.ball_radius_sq = 0.9 * n;
  problem.halfspace_offset = 0.1;
  problem.zero_sum = true;
  for (auto _ : state) benchmark::DoNotOptimize(solver::SolveQclp(problem));
}
BENCHMARK(BM_QclpSolve)->Arg(140)->Arg(500);

}  // namespace

BENCHMARK_MAIN();

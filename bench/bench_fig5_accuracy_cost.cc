// Reproduces Fig. 5: the accuracy cost ΔAcc (%) of Reg, DPReg, DPFR and PPFR
// on GCN (left panel) and GAT (right panel), per dataset. Expected shape:
// DPReg pays by far the largest accuracy cost (the paper reports drops beyond
// -40% in some cells); PPFR stays close to Reg.
//
// Thin front-end over the "fig5" registry sweep (shares every stage with
// table4 when run in the same process, e.g. via bench_runner --scenarios=).
//
//   ./bench_fig5_accuracy_cost [--datasets=...] [--models=GCN,GAT]
//       [--epochs=150] [--runner_threads=N] [--json_dir=.]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "fig5");

  std::printf("Fig. 5 — accuracy cost dAcc (%%) per method (higher = better)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  for (nn::ModelKind kind : bench::ModelsIn(result)) {
    std::printf("%s panel:\n", nn::ModelKindName(kind).c_str());
    std::vector<std::string> header{"Dataset", "Vanilla Acc%"};
    for (core::MethodKind method : core::ComparisonMethods()) {
      header.push_back(core::MethodName(method) + " dAcc%");
    }
    TablePrinter table(header);
    for (data::DatasetId dataset : bench::DatasetsIn(result)) {
      const runner::CellResult& vanilla =
          bench::CellOrDie(result, dataset, kind, core::MethodKind::kVanilla);
      std::vector<std::string> row{
          data::DatasetName(dataset),
          TablePrinter::Num(100.0 * vanilla.run->eval.accuracy)};
      for (core::MethodKind method : core::ComparisonMethods()) {
        row.push_back(
            TablePrinter::Pct(bench::CellOrDie(result, dataset, kind, method).delta.d_acc));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): DPReg has the largest accuracy drop;\n");
  std::printf("PPFR's drop stays small (two-phase design protects performance).\n");
  return 0;
}

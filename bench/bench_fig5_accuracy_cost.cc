// Reproduces Fig. 5: the accuracy cost ΔAcc (%) of Reg, DPReg, DPFR and PPFR
// on GCN (left panel) and GAT (right panel), per dataset. Expected shape:
// DPReg pays by far the largest accuracy cost (the paper reports drops beyond
// -40% in some cells); PPFR stays close to Reg.
//
//   ./bench_fig5_accuracy_cost [--datasets=...] [--models=GCN,GAT]
//       [--epochs=150]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets = bench::ParseDatasets(flags, data::StrongHomophilyDatasets());
  const auto models =
      bench::ParseModels(flags, {nn::ModelKind::kGcn, nn::ModelKind::kGat});

  std::printf("Fig. 5 — accuracy cost dAcc (%%) per method (higher = better)\n\n");

  for (nn::ModelKind kind : models) {
    std::printf("%s panel:\n", nn::ModelKindName(kind).c_str());
    std::vector<std::string> header{"Dataset", "Vanilla Acc%"};
    for (core::MethodKind method : core::ComparisonMethods()) {
      header.push_back(core::MethodName(method) + " dAcc%");
    }
    TablePrinter table(header);
    for (data::DatasetId dataset : datasets) {
      core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
      core::MethodConfig cfg = core::DefaultMethodConfig(dataset, kind);
      bench::ApplyCommonFlags(flags, &cfg);
      const bench::MethodSuite suite = bench::RunMethodSuite(env, kind, cfg);
      std::vector<std::string> row{
          data::DatasetName(dataset),
          TablePrinter::Num(100.0 * suite.vanilla.eval.accuracy)};
      for (core::MethodKind method : core::ComparisonMethods()) {
        row.push_back(TablePrinter::Pct(suite.deltas.at(method).d_acc));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): DPReg has the largest accuracy drop;\n");
  std::printf("PPFR's drop stays small (two-phase design protects performance).\n");
  return 0;
}

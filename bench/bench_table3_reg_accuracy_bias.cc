// Reproduces Table III: accuracy and InFoRM bias of GCN models trained
// without ("Vanilla") and with ("Reg") the fairness regulariser, on the three
// strong-homophily benchmarks. Expected shape: Reg lowers bias on every
// dataset, at a (small) accuracy cost.
//
//   ./bench_table3_reg_accuracy_bias [--datasets=...] [--epochs=150]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets = bench::ParseDatasets(flags, data::StrongHomophilyDatasets());

  std::printf("Table III — accuracy and bias of GCN, Vanilla vs Reg\n\n");
  TablePrinter table({"Datasets", "Methods", "Acc (up)", "Bias (down)"});

  for (data::DatasetId dataset : datasets) {
    core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
    core::MethodConfig cfg = core::DefaultMethodConfig(dataset, nn::ModelKind::kGcn);
    bench::ApplyCommonFlags(flags, &cfg);

    const core::MethodRun vanilla =
        core::RunMethod(core::MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
    const core::MethodRun reg =
        core::RunMethod(core::MethodKind::kReg, nn::ModelKind::kGcn, env, cfg);

    table.AddRow({data::DatasetName(dataset), "Vanilla",
                  TablePrinter::Num(100.0 * vanilla.eval.accuracy),
                  TablePrinter::Num(vanilla.eval.bias, 4)});
    table.AddRow({data::DatasetName(dataset), "Reg",
                  TablePrinter::Num(100.0 * reg.eval.accuracy),
                  TablePrinter::Num(reg.eval.bias, 4)});
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nExpected shape (paper): bias drops under Reg on every dataset while\n");
  std::printf("accuracy decreases slightly — fairness costs performance.\n");
  return 0;
}

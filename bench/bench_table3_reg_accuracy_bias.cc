// Reproduces Table III: accuracy and InFoRM bias of GCN models trained
// without ("Vanilla") and with ("Reg") the fairness regulariser, on the three
// strong-homophily benchmarks. Expected shape: Reg lowers bias on every
// dataset, at a (small) accuracy cost.
//
// Thin front-end over the "table3" registry sweep.
//
//   ./bench_table3_reg_accuracy_bias [--datasets=...] [--epochs=150]
//       [--runner_threads=N] [--json_dir=.]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "table3");

  std::printf("Table III — accuracy and bias of GCN, Vanilla vs Reg\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  const runner::SweepResult result = bench::RunAndEmit(flags, sweep, &cache);

  TablePrinter table({"Datasets", "Methods", "Acc (up)", "Bias (down)"});
  for (data::DatasetId dataset : bench::DatasetsIn(result)) {
    for (core::MethodKind method :
         {core::MethodKind::kVanilla, core::MethodKind::kReg}) {
      const core::EvalResult& eval =
          bench::CellOrDie(result, dataset, nn::ModelKind::kGcn, method).run->eval;
      table.AddRow({data::DatasetName(dataset), core::MethodName(method),
                    TablePrinter::Num(100.0 * eval.accuracy),
                    TablePrinter::Num(eval.bias, 4)});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nExpected shape (paper): bias drops under Reg on every dataset while\n");
  std::printf("accuracy decreases slightly — fairness costs performance.\n");
  return 0;
}

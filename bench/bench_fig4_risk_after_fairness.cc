// Reproduces Fig. 4: link-stealing attack AUC per prediction-distance metric,
// before ("vanilla") and after ("Reg") improving individual fairness, on GCN.
// Expected shape (RQ1): AUC rises for most distances once fairness is
// enforced — edge privacy degrades as node fairness improves.
//
//   ./bench_fig4_risk_after_fairness [--datasets=...] [--epochs=150]

#include <cstdio>

#include "bench_util.h"
#include "privacy/distance.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const auto datasets = bench::ParseDatasets(flags, data::StrongHomophilyDatasets());

  std::printf("Fig. 4 — attack AUC per distance, GCN vanilla vs Reg\n");
  std::printf("(smaller AUC = better privacy; the paper observes AUC increases\n");
  std::printf(" when fairness is promoted)\n\n");

  for (data::DatasetId dataset : datasets) {
    core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
    core::MethodConfig cfg = core::DefaultMethodConfig(dataset, nn::ModelKind::kGcn);
    bench::ApplyCommonFlags(flags, &cfg);

    const core::MethodRun vanilla =
        core::RunMethod(core::MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
    const core::MethodRun reg =
        core::RunMethod(core::MethodKind::kReg, nn::ModelKind::kGcn, env, cfg);

    std::printf("%s:\n", data::DatasetName(dataset).c_str());
    TablePrinter table({"Distance", "AUC vanilla", "AUC Reg", "change"});
    const auto& kinds = privacy::AllDistanceKinds();
    int increased = 0;
    for (size_t i = 0; i < kinds.size(); ++i) {
      const double before = vanilla.eval.attack.auc_per_distance[i];
      const double after = reg.eval.attack.auc_per_distance[i];
      increased += after > before;
      table.AddRow({privacy::DistanceName(kinds[i]), TablePrinter::Num(before, 4),
                    TablePrinter::Num(after, 4),
                    after > before ? "riskier" : "safer"});
    }
    table.AddSeparator();
    table.AddRow({"MEAN", TablePrinter::Num(vanilla.eval.risk_auc, 4),
                  TablePrinter::Num(reg.eval.risk_auc, 4),
                  reg.eval.risk_auc > vanilla.eval.risk_auc ? "riskier" : "safer"});
    table.Print();
    std::printf("  distances with increased AUC: %d / %zu\n\n", increased,
                kinds.size());
  }
  return 0;
}

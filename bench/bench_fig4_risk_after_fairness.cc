// Reproduces Fig. 4: link-stealing attack AUC per prediction-distance metric,
// before ("vanilla") and after ("Reg") improving individual fairness, on GCN.
// Expected shape (RQ1): AUC rises for most distances once fairness is
// enforced — edge privacy degrades as node fairness improves.
//
// Thin front-end over the "fig4" registry sweep; the per-distance AUC
// breakdown is added to the artifact as extra cell metrics.
//
//   ./bench_fig4_risk_after_fairness [--datasets=...] [--epochs=150]
//       [--runner_threads=N] [--json_dir=.]

#include <cstdio>

#include "bench_util.h"
#include "privacy/distance.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  bench::RequireKnownFlags(flags, {});
  la::ConfigureBackendFromFlags(flags);
  const runner::Sweep sweep = bench::BenchSweep(flags, "fig4");

  std::printf("Fig. 4 — attack AUC per distance, GCN vanilla vs Reg\n");
  std::printf("(smaller AUC = better privacy; the paper observes AUC increases\n");
  std::printf(" when fairness is promoted)\n\n");

  runner::RunCache cache(bench::RunCacheDir(flags));
  runner::SweepResult result =
      runner::RunSweep(sweep, &cache, bench::RunnerOptionsFromFlags(flags));

  const auto& kinds = privacy::AllDistanceKinds();
  // Per-distance AUCs ride along in the artifact.
  for (runner::CellResult& cell : result.cells) {
    for (size_t i = 0; i < kinds.size(); ++i) {
      cell.extra["auc_" + privacy::DistanceName(kinds[i])] =
          cell.run->eval.attack.auc_per_distance[i];
    }
  }

  for (data::DatasetId dataset : bench::DatasetsIn(result)) {
    const core::EvalResult& vanilla =
        bench::CellOrDie(result, dataset, nn::ModelKind::kGcn,
                         core::MethodKind::kVanilla)
            .run->eval;
    const core::EvalResult& reg =
        bench::CellOrDie(result, dataset, nn::ModelKind::kGcn,
                         core::MethodKind::kReg)
            .run->eval;

    std::printf("%s:\n", data::DatasetName(dataset).c_str());
    TablePrinter table({"Distance", "AUC vanilla", "AUC Reg", "change"});
    int increased = 0;
    for (size_t i = 0; i < kinds.size(); ++i) {
      const double before = vanilla.attack.auc_per_distance[i];
      const double after = reg.attack.auc_per_distance[i];
      increased += after > before;
      table.AddRow({privacy::DistanceName(kinds[i]), TablePrinter::Num(before, 4),
                    TablePrinter::Num(after, 4),
                    after > before ? "riskier" : "safer"});
    }
    table.AddSeparator();
    table.AddRow({"MEAN", TablePrinter::Num(vanilla.risk_auc, 4),
                  TablePrinter::Num(reg.risk_auc, 4),
                  reg.risk_auc > vanilla.risk_auc ? "riskier" : "safer"});
    table.Print();
    std::printf("  distances with increased AUC: %d / %zu\n\n", increased,
                kinds.size());
  }

  bench::EmitArtifact(flags, result);
  return 0;
}

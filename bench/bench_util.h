#ifndef PPFR_BENCH_BENCH_UTIL_H_
#define PPFR_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of "Unraveling Privacy Risks of Individual
// Fairness in Graph Neural Networks" (ICDE'24) as a thin front-end over the
// scenario runner (src/runner/): it resolves its registered sweep, runs it
// through the shared stage cache, renders its bespoke table, and emits the
// uniform BENCH_<name>.json artifact.

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "la/backend.h"
#include "runner/runner.h"
#include "runner/shard_merge.h"

namespace ppfr::bench {

// Exit-code contract of the runner-driven binaries. 0 = clean completion
// (including a COMPLETE merge); 2 = usage error (the long-standing repo
// convention); the fleet codes are distinct so a driver script can tell
// "re-run the missing shard and merge again" from "a signal stopped this
// shard, resume it" without parsing output.
inline constexpr int kExitUsage = 2;
inline constexpr int kExitDegradedMerge = 3;  // merge wrote a partial artifact
inline constexpr int kExitInterrupted = 4;    // SIGTERM/SIGINT stopped the sweep

// Flags every runner-driven bench binary understands.
inline std::vector<std::string> CommonFlagNames() {
  return {"datasets",   "models",     "epochs",         "seed",
          "seeds",      "env_seed",   "la_backend",     "la_threads",
          "runner_threads", "json_dir", "run_cache_dir", "stable_artifact",
          "cell_retries"};
}

// Directory for the disk-persisted run cache: --run_cache_dir= beats the
// PPFR_RUN_CACHE_DIR environment variable; absent (the default) keeps the
// cache in-memory only. A bare `--run_cache_dir` (which Flags stores as
// "true") or an empty value is a malformed request for caching, not a
// request for a directory named "true" — die naming the flag.
inline std::string RunCacheDir(const Flags& flags) {
  if (flags.Has("run_cache_dir")) {
    const std::string dir = flags.GetString("run_cache_dir", "");
    if (dir.empty() || dir == "true") {
      std::fprintf(stderr,
                   "--run_cache_dir wants a directory path "
                   "(e.g. --run_cache_dir=.ppfr-cache)\n");
      std::exit(2);
    }
    return dir;
  }
  const char* env = std::getenv("PPFR_RUN_CACHE_DIR");
  return env == nullptr ? std::string{} : std::string(env);
}

// Rejects flags outside `known` with a usage listing and exits — a typo
// like --epoch=10 must fail loudly, never silently run the defaults.
inline void RejectUnknownFlags(const Flags& flags,
                               const std::vector<std::string>& known) {
  const std::vector<std::string> unknown = flags.UnknownFlags(known);
  if (unknown.empty()) return;
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
  }
  std::fprintf(stderr, "known flags:");
  for (const std::string& name : known) std::fprintf(stderr, " --%s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

// RejectUnknownFlags against the runner-driven bench flag set plus the
// binary's `extra` names.
inline void RequireKnownFlags(const Flags& flags,
                              const std::vector<std::string>& extra) {
  std::vector<std::string> known = CommonFlagNames();
  known.insert(known.end(), extra.begin(), extra.end());
  RejectUnknownFlags(flags, known);
}

// Parsed --shard=i/N + --shard_dir=DIR (bench_runner only). count == 1 means
// unsharded. A sharded run's journal is ALWAYS the canonical
// DIR/shard-<i>of<N>.journal — an explicit --journal is rejected, because
// the merge discovers shards purely by that naming contract and a renamed
// journal would silently drop its shard from every future merge.
struct ShardSpec {
  int index = 0;
  int count = 1;
  std::string dir;
};

inline ShardSpec ShardFromFlags(const Flags& flags) {
  ShardSpec spec;
  if (!flags.Has("shard")) {
    if (flags.Has("shard_dir")) {
      std::fprintf(stderr, "--shard_dir only makes sense with --shard=i/N\n");
      std::exit(kExitUsage);
    }
    return spec;
  }
  const std::string raw = flags.GetString("shard", "");
  char tail = '\0';
  if (std::sscanf(raw.c_str(), "%d/%d%c", &spec.index, &spec.count, &tail) != 2 ||
      spec.count < 1 || spec.index < 0 || spec.index >= spec.count) {
    std::fprintf(stderr,
                 "--shard wants i/N with 0 <= i < N (e.g. --shard=0/3), got "
                 "'%s'\n",
                 raw.c_str());
    std::exit(kExitUsage);
  }
  spec.dir = flags.GetString("shard_dir", "");
  if (spec.dir.empty() || spec.dir == "true") {
    std::fprintf(stderr,
                 "--shard=i/N needs --shard_dir=DIR (where the shard journals "
                 "and per-shard artifacts live)\n");
    std::exit(kExitUsage);
  }
  if (flags.Has("journal")) {
    std::fprintf(stderr,
                 "--journal cannot be combined with --shard: a shard's journal "
                 "is always <shard_dir>/%s so --merge can discover it\n",
                 runner::ShardJournalFilename(spec.index, spec.count).c_str());
    std::exit(kExitUsage);
  }
  return spec;
}

// Installs SIGTERM/SIGINT handlers for a graceful sweep stop and returns the
// flag to hand to RunnerOptions::stop: the first signal sets the flag (cells
// not yet started are skipped, in-flight cells finish and journal, the
// binary writes an `interrupted:true` artifact and exits kExitInterrupted);
// SA_RESETHAND restores the default disposition, so a SECOND signal kills
// the process immediately — an operator double-Ctrl-C must never be argued
// with. Async-signal-safe: the handler only stores to a lock-free atomic.
inline const std::atomic<bool>* InstallGracefulStop() {
  static std::atomic<bool> stop{false};
  static_assert(std::atomic<bool>::is_always_lock_free);
  struct sigaction action = {};
  action.sa_handler = [](int) { stop.store(true, std::memory_order_relaxed); };
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  return &stop;
}

inline runner::RunnerOptions RunnerOptionsFromFlags(const Flags& flags) {
  runner::RunnerOptions opts;
  opts.threads = flags.GetInt("runner_threads", 1);
  opts.env_seed = flags.GetUint64("env_seed", core::kDefaultEnvSeed);
  opts.max_cell_retries = flags.GetInt("cell_retries", opts.max_cell_retries);
  // --journal/--resume are only in bench_runner's known-flag list: bespoke
  // table benches post-process cell.run->model, which a journal-restored cell
  // does not carry, so they reject the flags as unknown instead of crashing.
  if (flags.Has("journal")) {
    const std::string path = flags.GetString("journal", "");
    if (path.empty() || path == "true") {
      std::fprintf(stderr,
                   "--journal wants a file path "
                   "(e.g. --journal=sweep.journal)\n");
      std::exit(2);
    }
    opts.journal_path = path;
  }
  opts.resume = flags.GetBool("resume", false);
  // A sharded run's journal path is derived from --shard_dir AFTER this
  // parse (see ShardFromFlags), so --resume is valid there too.
  if (opts.resume && opts.journal_path.empty() && !flags.Has("shard")) {
    std::fprintf(stderr,
                 "--resume needs --journal=<path> (or --shard=i/N "
                 "--shard_dir=DIR) to replay from\n");
    std::exit(kExitUsage);
  }
  return opts;
}

// Fails fast, BEFORE any training runs, if an output location the run will
// eventually write to is not writable: --json_dir (artifact) and the
// --journal parent directory. Probes by creating the directory and atomically
// writing + removing a scratch file — the same code path the real writes
// take. A sweep that trains for an hour and then dies on its artifact write
// is the failure mode this removes.
inline void PreflightOutputPaths(const Flags& flags) {
  const auto probe_dir = [](const std::string& dir, const char* what) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // ok if it already exists
    const std::string probe =
        (std::filesystem::path(dir) / ".ppfr_preflight").string();
    std::string error;
    if (!WriteFileAtomic(probe, "probe", &error)) {
      std::fprintf(stderr, "%s '%s' is not writable: %s\n", what, dir.c_str(),
                   error.c_str());
      std::exit(2);
    }
    std::remove(probe.c_str());
  };
  probe_dir(flags.GetString("json_dir", "."), "--json_dir");
  if (flags.Has("journal")) {
    const std::filesystem::path parent =
        std::filesystem::path(flags.GetString("journal", "")).parent_path();
    probe_dir(parent.empty() ? "." : parent.string(), "--journal directory");
  }
  // The shard dir receives this shard's journal AND its per-shard artifact;
  // the merge dir must at least exist before we bother resolving the sweep.
  if (flags.Has("shard_dir")) {
    const std::string dir = flags.GetString("shard_dir", "");
    if (!dir.empty() && dir != "true") probe_dir(dir, "--shard_dir");
  }
  if (flags.Has("merge")) {
    const std::string dir = flags.GetString("merge", "");
    std::error_code ec;
    if (!dir.empty() && dir != "true" && !std::filesystem::is_directory(dir, ec)) {
      std::fprintf(stderr, "--merge directory '%s' does not exist\n", dir.c_str());
      std::exit(kExitUsage);
    }
  }
  // A GC request writes the cache index file into the cache dir at sweep
  // end; an unwritable index must die NOW, not after the training finished.
  if (flags.Has("cache_gc_bytes") || flags.Has("cache_gc_age_s")) {
    const std::string cache_dir = RunCacheDir(flags);
    if (cache_dir.empty()) {
      std::fprintf(stderr,
                   "--cache_gc_bytes/--cache_gc_age_s need --run_cache_dir "
                   "(there is no disk cache to collect)\n");
      std::exit(kExitUsage);
    }
    probe_dir(cache_dir, "--run_cache_dir (cache GC index)");
  }
}

// Resolves the binary's registered sweep, applying --datasets/--models
// narrowing and the --epochs/--seed cell overrides.
inline runner::Sweep BenchSweep(const Flags& flags, const std::string& name) {
  std::optional<runner::Sweep> sweep = runner::RegistrySweep(name);
  if (!sweep) {
    std::fprintf(stderr, "bench bug: sweep '%s' is not registered\n", name.c_str());
    std::exit(2);
  }
  runner::ApplyFilters(flags, &*sweep);
  runner::ApplyCommonOverrides(flags, &*sweep);
  return *std::move(sweep);
}

// Writes the sweep artifact into --json_dir (default "."), honouring
// --stable_artifact (zeroes the run-varying fields — timings, cache
// counters — so repeated runs with identical results produce identical
// files). Every bench that writes an artifact must come through here so the
// flag is never silently ignored.
inline std::string EmitArtifact(const Flags& flags,
                                const runner::SweepResult& result,
                                const std::string& filename_suffix = "") {
  runner::ArtifactOptions artifact;
  artifact.stable = flags.GetBool("stable_artifact", false);
  artifact.filename_suffix = filename_suffix;
  const std::string path =
      runner::WriteArtifact(result, flags.GetString("json_dir", "."), artifact);
  std::printf("wrote %s\n", path.c_str());
  // The bespoke paper tables address cells by (dataset, model, method) and
  // therefore show the FIRST seed instance; under a seed list, say so and
  // point at the aggregated numbers instead of letting a single-seed slice
  // read as the paper's averaged table.
  if (result.seeds.size() > 1) {
    std::printf(
        "note: %zu seed instances per cell ran; any per-cell table above may "
        "show the first seed only — cross-seed mean/stddev per metric are in "
        "the artifact's 'aggregates'\n",
        result.seeds.size());
  }
  return path;
}

// Runs the sweep and emits its artifact (see EmitArtifact). Output paths are
// preflighted first so an unwritable --json_dir/--journal dies before any
// cell trains.
inline runner::SweepResult RunAndEmit(const Flags& flags, const runner::Sweep& sweep,
                                      runner::RunCache* cache) {
  PreflightOutputPaths(flags);
  runner::SweepResult result =
      runner::RunSweep(sweep, cache, RunnerOptionsFromFlags(flags));
  EmitArtifact(flags, result);
  return result;
}

// Runs the size/age-bounded cache GC when --cache_gc_bytes / --cache_gc_age_s
// were given (after the sweep, so this run's own entries carry fresh access
// stamps and survive an LRU pass that evicts genuinely cold entries).
// Misuse (no disk cache configured) already died in PreflightOutputPaths.
inline void MaybeRunCacheGc(const Flags& flags, const runner::RunCache& cache) {
  if (!flags.Has("cache_gc_bytes") && !flags.Has("cache_gc_age_s")) return;
  runner::CacheStore::GcOptions gc;
  gc.max_bytes = static_cast<int64_t>(flags.GetUint64("cache_gc_bytes", 0));
  gc.max_age_seconds = static_cast<int64_t>(flags.GetUint64("cache_gc_age_s", 0));
  const runner::CacheStore::GcResult r = cache.store().GarbageCollect(gc);
  std::printf(
      "cache gc: %lld of %lld entries evicted (%lld of %lld bytes), "
      "%lld spared by live claims\n",
      static_cast<long long>(r.evicted_entries),
      static_cast<long long>(r.entries_before),
      static_cast<long long>(r.evicted_bytes),
      static_cast<long long>(r.bytes_before),
      static_cast<long long>(r.kept_claimed));
}

// Distinct values of a Scenario field in first-appearance cell order.
template <typename T>
std::vector<T> DistinctInOrder(const runner::SweepResult& result,
                               T runner::Scenario::* field) {
  std::vector<T> out;
  for (const runner::CellResult& cell : result.cells) {
    const T value = cell.scenario.*field;
    if (std::find(out.begin(), out.end(), value) == out.end()) out.push_back(value);
  }
  return out;
}

inline std::vector<data::DatasetId> DatasetsIn(const runner::SweepResult& result) {
  return DistinctInOrder(result, &runner::Scenario::dataset);
}

inline std::vector<nn::ModelKind> ModelsIn(const runner::SweepResult& result) {
  return DistinctInOrder(result, &runner::Scenario::model);
}

// FindCell that dies instead of returning nullptr (bench tables address
// cells their own sweep definition guarantees).
inline const runner::CellResult& CellOrDie(const runner::SweepResult& result,
                                           data::DatasetId dataset,
                                           nn::ModelKind model,
                                           core::MethodKind method) {
  const runner::CellResult* cell = runner::FindCell(result, dataset, model, method);
  if (cell == nullptr) {
    std::fprintf(stderr, "sweep '%s' is missing cell (%s, %s, %s)\n",
                 result.name.c_str(), data::DatasetName(dataset).c_str(),
                 nn::ModelKindName(model).c_str(), core::MethodName(method).c_str());
    std::exit(2);
  }
  return *cell;
}

}  // namespace ppfr::bench

#endif  // PPFR_BENCH_BENCH_UTIL_H_

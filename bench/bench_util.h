#ifndef PPFR_BENCH_BENCH_UTIL_H_
#define PPFR_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of "Unraveling Privacy Risks of Individual
// Fairness in Graph Neural Networks" (ICDE'24); this header centralises
// dataset/model parsing and the method-suite runner so every artifact reports
// the same underlying pipelines.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "la/backend.h"

namespace ppfr::bench {

inline std::vector<data::DatasetId> ParseDatasets(const Flags& flags,
                                                  std::vector<data::DatasetId> defaults) {
  const std::string arg = flags.GetString("datasets", "");
  if (arg.empty()) return defaults;
  std::vector<data::DatasetId> out;
  for (data::DatasetId id :
       {data::DatasetId::kCoraLike, data::DatasetId::kCiteseerLike,
        data::DatasetId::kPubmedLike, data::DatasetId::kEnzymesLike,
        data::DatasetId::kCreditLike}) {
    if (arg.find(data::DatasetName(id)) != std::string::npos) out.push_back(id);
  }
  return out.empty() ? defaults : out;
}

inline std::vector<nn::ModelKind> ParseModels(const Flags& flags,
                                              std::vector<nn::ModelKind> defaults) {
  const std::string arg = flags.GetString("models", "");
  if (arg.empty()) return defaults;
  std::vector<nn::ModelKind> out;
  for (nn::ModelKind kind :
       {nn::ModelKind::kGcn, nn::ModelKind::kGat, nn::ModelKind::kGraphSage}) {
    if (arg.find(nn::ModelKindName(kind)) != std::string::npos) out.push_back(kind);
  }
  return out.empty() ? defaults : out;
}

// Applies the common bench flags (--epochs, --seed) onto a config.
inline void ApplyCommonFlags(const Flags& flags, core::MethodConfig* cfg) {
  cfg->train.epochs = flags.GetInt("epochs", cfg->train.epochs);
  cfg->seed = static_cast<uint64_t>(flags.GetInt("seed", static_cast<int>(cfg->seed)));
}

// Runs Vanilla plus the four comparison methods, logging wall time.
struct MethodSuite {
  core::MethodRun vanilla;
  std::map<core::MethodKind, core::MethodRun> methods;
  std::map<core::MethodKind, core::DeltaMetrics> deltas;
};

inline MethodSuite RunMethodSuite(const core::ExperimentEnv& env, nn::ModelKind model,
                                  const core::MethodConfig& cfg, bool verbose = true) {
  MethodSuite suite;
  Stopwatch watch;
  suite.vanilla = core::RunMethod(core::MethodKind::kVanilla, model, env, cfg);
  if (verbose) {
    std::fprintf(stderr, "  [%s/%s] Vanilla done in %.1fs (acc %.3f)\n",
                 env.dataset.data.name.c_str(), nn::ModelKindName(model).c_str(),
                 watch.ElapsedSeconds(), suite.vanilla.eval.accuracy);
  }
  for (core::MethodKind method : core::ComparisonMethods()) {
    watch.Reset();
    core::MethodRun run = core::RunMethod(method, model, env, cfg);
    suite.deltas[method] = core::ComputeDeltas(run.eval, suite.vanilla.eval);
    if (verbose) {
      std::fprintf(stderr, "  [%s/%s] %s done in %.1fs\n",
                   env.dataset.data.name.c_str(), nn::ModelKindName(model).c_str(),
                   core::MethodName(method).c_str(), watch.ElapsedSeconds());
    }
    suite.methods.emplace(method, std::move(run));
  }
  return suite;
}

}  // namespace ppfr::bench

#endif  // PPFR_BENCH_BENCH_UTIL_H_

#ifndef PPFR_BENCH_BENCH_UTIL_H_
#define PPFR_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of "Unraveling Privacy Risks of Individual
// Fairness in Graph Neural Networks" (ICDE'24) as a thin front-end over the
// scenario runner (src/runner/): it resolves its registered sweep, runs it
// through the shared stage cache, renders its bespoke table, and emits the
// uniform BENCH_<name>.json artifact.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "la/backend.h"
#include "runner/runner.h"

namespace ppfr::bench {

// Flags every runner-driven bench binary understands.
inline std::vector<std::string> CommonFlagNames() {
  return {"datasets",   "models",     "epochs",         "seed",
          "seeds",      "env_seed",   "la_backend",     "la_threads",
          "runner_threads", "json_dir", "run_cache_dir", "stable_artifact",
          "cell_retries"};
}

// Directory for the disk-persisted run cache: --run_cache_dir= beats the
// PPFR_RUN_CACHE_DIR environment variable; absent (the default) keeps the
// cache in-memory only. A bare `--run_cache_dir` (which Flags stores as
// "true") or an empty value is a malformed request for caching, not a
// request for a directory named "true" — die naming the flag.
inline std::string RunCacheDir(const Flags& flags) {
  if (flags.Has("run_cache_dir")) {
    const std::string dir = flags.GetString("run_cache_dir", "");
    if (dir.empty() || dir == "true") {
      std::fprintf(stderr,
                   "--run_cache_dir wants a directory path "
                   "(e.g. --run_cache_dir=.ppfr-cache)\n");
      std::exit(2);
    }
    return dir;
  }
  const char* env = std::getenv("PPFR_RUN_CACHE_DIR");
  return env == nullptr ? std::string{} : std::string(env);
}

// Rejects flags outside `known` with a usage listing and exits — a typo
// like --epoch=10 must fail loudly, never silently run the defaults.
inline void RejectUnknownFlags(const Flags& flags,
                               const std::vector<std::string>& known) {
  const std::vector<std::string> unknown = flags.UnknownFlags(known);
  if (unknown.empty()) return;
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
  }
  std::fprintf(stderr, "known flags:");
  for (const std::string& name : known) std::fprintf(stderr, " --%s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

// RejectUnknownFlags against the runner-driven bench flag set plus the
// binary's `extra` names.
inline void RequireKnownFlags(const Flags& flags,
                              const std::vector<std::string>& extra) {
  std::vector<std::string> known = CommonFlagNames();
  known.insert(known.end(), extra.begin(), extra.end());
  RejectUnknownFlags(flags, known);
}

inline runner::RunnerOptions RunnerOptionsFromFlags(const Flags& flags) {
  runner::RunnerOptions opts;
  opts.threads = flags.GetInt("runner_threads", 1);
  opts.env_seed = flags.GetUint64("env_seed", core::kDefaultEnvSeed);
  opts.max_cell_retries = flags.GetInt("cell_retries", opts.max_cell_retries);
  // --journal/--resume are only in bench_runner's known-flag list: bespoke
  // table benches post-process cell.run->model, which a journal-restored cell
  // does not carry, so they reject the flags as unknown instead of crashing.
  if (flags.Has("journal")) {
    const std::string path = flags.GetString("journal", "");
    if (path.empty() || path == "true") {
      std::fprintf(stderr,
                   "--journal wants a file path "
                   "(e.g. --journal=sweep.journal)\n");
      std::exit(2);
    }
    opts.journal_path = path;
  }
  opts.resume = flags.GetBool("resume", false);
  if (opts.resume && opts.journal_path.empty()) {
    std::fprintf(stderr, "--resume needs --journal=<path> to replay from\n");
    std::exit(2);
  }
  return opts;
}

// Fails fast, BEFORE any training runs, if an output location the run will
// eventually write to is not writable: --json_dir (artifact) and the
// --journal parent directory. Probes by creating the directory and atomically
// writing + removing a scratch file — the same code path the real writes
// take. A sweep that trains for an hour and then dies on its artifact write
// is the failure mode this removes.
inline void PreflightOutputPaths(const Flags& flags) {
  const auto probe_dir = [](const std::string& dir, const char* what) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // ok if it already exists
    const std::string probe =
        (std::filesystem::path(dir) / ".ppfr_preflight").string();
    std::string error;
    if (!WriteFileAtomic(probe, "probe", &error)) {
      std::fprintf(stderr, "%s '%s' is not writable: %s\n", what, dir.c_str(),
                   error.c_str());
      std::exit(2);
    }
    std::remove(probe.c_str());
  };
  probe_dir(flags.GetString("json_dir", "."), "--json_dir");
  if (flags.Has("journal")) {
    const std::filesystem::path parent =
        std::filesystem::path(flags.GetString("journal", "")).parent_path();
    probe_dir(parent.empty() ? "." : parent.string(), "--journal directory");
  }
}

// Resolves the binary's registered sweep, applying --datasets/--models
// narrowing and the --epochs/--seed cell overrides.
inline runner::Sweep BenchSweep(const Flags& flags, const std::string& name) {
  std::optional<runner::Sweep> sweep = runner::RegistrySweep(name);
  if (!sweep) {
    std::fprintf(stderr, "bench bug: sweep '%s' is not registered\n", name.c_str());
    std::exit(2);
  }
  runner::ApplyFilters(flags, &*sweep);
  runner::ApplyCommonOverrides(flags, &*sweep);
  return *std::move(sweep);
}

// Writes the sweep artifact into --json_dir (default "."), honouring
// --stable_artifact (zeroes the run-varying fields — timings, cache
// counters — so repeated runs with identical results produce identical
// files). Every bench that writes an artifact must come through here so the
// flag is never silently ignored.
inline std::string EmitArtifact(const Flags& flags,
                                const runner::SweepResult& result) {
  runner::ArtifactOptions artifact;
  artifact.stable = flags.GetBool("stable_artifact", false);
  const std::string path =
      runner::WriteArtifact(result, flags.GetString("json_dir", "."), artifact);
  std::printf("wrote %s\n", path.c_str());
  // The bespoke paper tables address cells by (dataset, model, method) and
  // therefore show the FIRST seed instance; under a seed list, say so and
  // point at the aggregated numbers instead of letting a single-seed slice
  // read as the paper's averaged table.
  if (result.seeds.size() > 1) {
    std::printf(
        "note: %zu seed instances per cell ran; any per-cell table above may "
        "show the first seed only — cross-seed mean/stddev per metric are in "
        "the artifact's 'aggregates'\n",
        result.seeds.size());
  }
  return path;
}

// Runs the sweep and emits its artifact (see EmitArtifact). Output paths are
// preflighted first so an unwritable --json_dir/--journal dies before any
// cell trains.
inline runner::SweepResult RunAndEmit(const Flags& flags, const runner::Sweep& sweep,
                                      runner::RunCache* cache) {
  PreflightOutputPaths(flags);
  runner::SweepResult result =
      runner::RunSweep(sweep, cache, RunnerOptionsFromFlags(flags));
  EmitArtifact(flags, result);
  return result;
}

// Distinct values of a Scenario field in first-appearance cell order.
template <typename T>
std::vector<T> DistinctInOrder(const runner::SweepResult& result,
                               T runner::Scenario::* field) {
  std::vector<T> out;
  for (const runner::CellResult& cell : result.cells) {
    const T value = cell.scenario.*field;
    if (std::find(out.begin(), out.end(), value) == out.end()) out.push_back(value);
  }
  return out;
}

inline std::vector<data::DatasetId> DatasetsIn(const runner::SweepResult& result) {
  return DistinctInOrder(result, &runner::Scenario::dataset);
}

inline std::vector<nn::ModelKind> ModelsIn(const runner::SweepResult& result) {
  return DistinctInOrder(result, &runner::Scenario::model);
}

// FindCell that dies instead of returning nullptr (bench tables address
// cells their own sweep definition guarantees).
inline const runner::CellResult& CellOrDie(const runner::SweepResult& result,
                                           data::DatasetId dataset,
                                           nn::ModelKind model,
                                           core::MethodKind method) {
  const runner::CellResult* cell = runner::FindCell(result, dataset, model, method);
  if (cell == nullptr) {
    std::fprintf(stderr, "sweep '%s' is missing cell (%s, %s, %s)\n",
                 result.name.c_str(), data::DatasetName(dataset).c_str(),
                 nn::ModelKindName(model).c_str(), core::MethodName(method).c_str());
    std::exit(2);
  }
  return *cell;
}

}  // namespace ppfr::bench

#endif  // PPFR_BENCH_BENCH_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/datasets.h"
#include "data/sbm.h"
#include "data/split.h"

namespace ppfr::data {
namespace {

TEST(SbmTest, DeterministicInSeed) {
  SbmConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_classes = 4;
  cfg.feature_dim = 80;
  const NodeClassificationData a = GenerateSbm(cfg, 77);
  const NodeClassificationData b = GenerateSbm(cfg, 77);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_LT(la::Sub(a.features, b.features).MaxAbs(), 1e-15);

  const NodeClassificationData c = GenerateSbm(cfg, 78);
  EXPECT_NE(a.graph.num_edges(), c.graph.num_edges());
}

TEST(SbmTest, LabelsAreBalanced) {
  SbmConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_classes = 3;
  const NodeClassificationData data = GenerateSbm(cfg, 1);
  std::vector<int> counts(3, 0);
  for (int label : data.labels) counts[label]++;
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(SbmTest, ProbabilityFormulasMatchTargets) {
  SbmConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_classes = 5;
  cfg.homophily = 0.8;
  cfg.average_degree = 6.0;
  const double p = cfg.IntraClassProb();
  const double q = cfg.InterClassProb();
  // Expected same-class degree a = (n/C - 1) p ≈ h d; cross b = n(C-1)/C q.
  const double a = (1000.0 / 5 - 1) * p;
  const double b = 1000.0 * 4 / 5 * q;
  EXPECT_NEAR(a, 0.8 * 6.0, 1e-9);
  EXPECT_NEAR(b, 0.2 * 6.0, 1e-9);
  EXPECT_GT(p, q);  // homophily
}

// Generated graphs hit their calibration targets within sampling noise.
class DatasetCalibrationSweep : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetCalibrationSweep, HomophilyAndDegreeNearTarget) {
  const SbmConfig cfg = DatasetConfig(GetParam());
  const NodeClassificationData data = GenerateSbm(cfg, 1234);
  EXPECT_EQ(data.graph.num_nodes(), cfg.num_nodes);
  EXPECT_EQ(data.num_classes, cfg.num_classes);
  EXPECT_NEAR(data.graph.EdgeHomophily(data.labels), cfg.homophily, 0.05);
  EXPECT_NEAR(data.graph.AverageDegree(), cfg.average_degree,
              0.15 * cfg.average_degree);
}

TEST_P(DatasetCalibrationSweep, FeaturesCarryClassSignal) {
  const SbmConfig cfg = DatasetConfig(GetParam());
  const NodeClassificationData data = GenerateSbm(cfg, 99);
  // Mean feature vector per class must be most similar to the class's own
  // signature block: on-signature activation rate >> off-signature rate.
  for (int cls = 0; cls < cfg.num_classes; ++cls) {
    double on = 0.0, off = 0.0;
    int64_t members = 0;
    for (int v = 0; v < cfg.num_nodes; ++v) {
      if (data.labels[v] != cls) continue;
      ++members;
      for (int f = 0; f < cfg.feature_dim; ++f) {
        const bool in_sig =
            f >= cls * cfg.signature_size && f < (cls + 1) * cfg.signature_size;
        (in_sig ? on : off) += data.features(v, f);
      }
    }
    on /= static_cast<double>(members * cfg.signature_size);
    off /= static_cast<double>(members * (cfg.feature_dim - cfg.signature_size));
    EXPECT_GT(on, 2.0 * off) << "class " << cls;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetCalibrationSweep,
                         ::testing::Values(DatasetId::kCoraLike,
                                           DatasetId::kCiteseerLike,
                                           DatasetId::kPubmedLike,
                                           DatasetId::kEnzymesLike,
                                           DatasetId::kCreditLike));

TEST(DatasetTest, NamesAreUnique) {
  std::set<std::string> names;
  for (DatasetId id :
       {DatasetId::kCoraLike, DatasetId::kCiteseerLike, DatasetId::kPubmedLike,
        DatasetId::kEnzymesLike, DatasetId::kCreditLike}) {
    names.insert(DatasetName(id));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(DatasetTest, StrongAndWeakGroupsPartition) {
  EXPECT_EQ(StrongHomophilyDatasets().size(), 3u);
  EXPECT_EQ(WeakHomophilyDatasets().size(), 2u);
  for (DatasetId id : WeakHomophilyDatasets()) {
    EXPECT_LT(DatasetConfig(id).homophily, 0.7);
  }
  for (DatasetId id : StrongHomophilyDatasets()) {
    EXPECT_GE(DatasetConfig(id).homophily, 0.7);
  }
}

TEST(DatasetTest, LoadDatasetProducesConsistentSplit) {
  const Dataset ds = LoadDataset(DatasetId::kEnzymesLike, 5);
  EXPECT_EQ(static_cast<int>(ds.split.train.size()),
            DefaultTrainCount(DatasetId::kEnzymesLike));
  EXPECT_EQ(ds.data.graph.num_nodes(),
            DatasetConfig(DatasetId::kEnzymesLike).num_nodes);
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  const Split split = MakeSplit(100, 20, 10, 3);
  EXPECT_EQ(split.train.size(), 20u);
  EXPECT_EQ(split.val.size(), 10u);
  EXPECT_EQ(split.test.size(), 70u);
  std::set<int> all;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (int v : *part) {
      EXPECT_TRUE(all.insert(v).second) << "duplicate node " << v;
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, DeterministicAndSeedSensitive) {
  const Split a = MakeSplit(50, 10, 5, 7);
  const Split b = MakeSplit(50, 10, 5, 7);
  const Split c = MakeSplit(50, 10, 5, 8);
  EXPECT_EQ(a.train, b.train);
  EXPECT_NE(a.train, c.train);
}

TEST(SplitDeathTest, RejectsOversizedSplit) {
  EXPECT_DEATH(MakeSplit(10, 8, 5, 1), "CHECK failed");
}

}  // namespace
}  // namespace ppfr::data

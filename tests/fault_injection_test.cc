// Tests for the deterministic fault-injection harness (common/fault_injection)
// and the runner behaviours built on it: per-cell fault isolation, bounded
// transient retries, and the "a faulted-but-recovered sweep is bitwise equal
// to a clean one" contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/recoverable.h"
#include "nn/trainer.h"
#include "runner/journal.h"
#include "runner/run_cache.h"
#include "runner/runner.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kEnvSeed = 7;

Scenario Cell(data::DatasetId dataset, nn::ModelKind model, core::MethodKind method,
              int epochs) {
  Scenario cell{dataset, model, method, {}, ""};
  cell.overrides.epochs = epochs;
  return cell;
}

// A sweep exercising every persisted stage (vanilla, DP/PP contexts, the FR
// solve, whole cells) — the same shape runner_test's disk-cache suite uses.
Sweep MiniSuiteSweep(int epochs) {
  Sweep sweep;
  sweep.name = "fault_mini";
  for (core::MethodKind method :
       {core::MethodKind::kVanilla, core::MethodKind::kDpFr,
        core::MethodKind::kPpFr}) {
    sweep.cells.push_back(
        Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn, method, epochs));
  }
  return sweep;
}

RunnerOptions QuietOptions() {
  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  opts.retry_backoff_ms = 0;  // no sleeping in tests
  return opts;
}

void ExpectEvalBitwiseEq(const core::EvalResult& a, const core::EvalResult& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.bias, b.bias);
  EXPECT_EQ(a.risk_auc, b.risk_auc);
  EXPECT_EQ(a.delta_d, b.delta_d);
}

// Resets injection to "off" when a test returns, even on failure — the
// harness is process-wide state.
struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::ConfigureForTest(spec); }
  ~FaultScope() { fault::ConfigureForTest(""); }
};

TEST(RecoverableErrorTest, CarriesMessageAndTransience) {
  const RecoverableError hard("diverged", /*transient=*/false);
  EXPECT_STREQ(hard.what(), "diverged");
  EXPECT_FALSE(hard.transient());
  const RecoverableError soft("read race", /*transient=*/true);
  EXPECT_TRUE(soft.transient());
  // Catchable through the std::exception base (what RunCache's futures see).
  try {
    throw RecoverableError("as base", true);
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "as base");
  }
}

TEST(FaultInjectionTest, FiresEveryNthHitDeterministically) {
  FaultScope scope("test.site:3");
  EXPECT_TRUE(fault::Enabled());
  // Hits 1..6: fires on exactly 3 and 6.
  for (int round = 0; round < 2; ++round) {
    EXPECT_FALSE(fault::ShouldFail(fault::kTestSite));
    EXPECT_FALSE(fault::ShouldFail(fault::kTestSite));
    EXPECT_TRUE(fault::ShouldFail(fault::kTestSite));
  }
  EXPECT_EQ(fault::HitCount(fault::kTestSite), 6);
  EXPECT_EQ(fault::FiredCount(fault::kTestSite), 2);
  // Sites not named in the spec never fire.
  EXPECT_FALSE(fault::ShouldFail(fault::kCacheStoreRead));
  EXPECT_EQ(fault::FiredCount(fault::kCacheStoreRead), 0);
}

TEST(FaultInjectionTest, ReconfigureResetsCounters) {
  FaultScope scope("test.site:1");
  EXPECT_TRUE(fault::ShouldFail(fault::kTestSite));
  fault::ConfigureForTest("test.site:2");
  EXPECT_EQ(fault::HitCount(fault::kTestSite), 0);
  EXPECT_FALSE(fault::ShouldFail(fault::kTestSite));
  EXPECT_TRUE(fault::ShouldFail(fault::kTestSite));
  fault::ConfigureForTest("");
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldFail(fault::kTestSite));
}

TEST(FaultInjectionTest, KnowsTheFleetSites) {
  // The cross-process sites added for the sharded-fleet hardening must parse
  // and fire like any other site.
  FaultScope scope("cache_store.claim:1,shard.merge_read:1,journal.replay:1");
  EXPECT_TRUE(fault::ShouldFail(fault::kCacheStoreClaim));
  EXPECT_TRUE(fault::ShouldFail(fault::kShardMergeRead));
  EXPECT_TRUE(fault::ShouldFail(fault::kJournalReplay));
}

TEST(FaultInjectionTest, ReplayFaultTruncatesTheReplayedPrefix) {
  const std::string path = ::testing::TempDir() + "/fault_replay.journal";
  std::remove(path.c_str());
  {
    SweepJournal journal(path, "replay_fault", kEnvSeed, /*resume=*/false);
    for (uint64_t key = 1; key <= 3; ++key) {
      JournalRecord rec;
      rec.cell_key = key;
      rec.eval.accuracy = 0.5;
      journal.Append(rec);
    }
  }
  const JournalReplay clean = ReplayJournalFile(path, "replay_fault", kEnvSeed);
  ASSERT_TRUE(clean.header_ok);
  EXPECT_EQ(clean.records.size(), 3u);
  EXPECT_FALSE(clean.torn);

  // The site fires per record: cadence 3 parses two records, then truncates —
  // the rest of the journal reads as unfinished (torn), exactly like a
  // partially-flushed file on a dying disk.
  FaultScope scope("journal.replay:3");
  const JournalReplay faulted = ReplayJournalFile(path, "replay_fault", kEnvSeed);
  ASSERT_TRUE(faulted.header_ok);
  EXPECT_EQ(faulted.records.size(), 2u);
  EXPECT_TRUE(faulted.torn);
  std::remove(path.c_str());
}

TEST(FaultInjectionDeathTest, RejectsMalformedSpecs) {
  EXPECT_DEATH(fault::ConfigureForTest("no_such.site:3"), "unknown site");
  EXPECT_DEATH(fault::ConfigureForTest("test.site:0"), "positive every_n");
  EXPECT_DEATH(fault::ConfigureForTest("test.site"), "not site:every_n");
  EXPECT_DEATH(fault::ConfigureForTest("test.site:abc"), "positive every_n");
}

TEST(FaultInjectionTest, HonoursEnvironmentSpecWhenSet) {
  // The CI fault leg runs this binary with PPFR_FAULT_INJECT exported; the
  // suite must stay deterministic regardless (every sweep test pins its own
  // spec via ConfigureForTest), but the env path itself is only observable
  // when the variable is present.
  if (std::getenv("PPFR_FAULT_INJECT") == nullptr) {
    GTEST_SKIP() << "PPFR_FAULT_INJECT not set";
  }
  // ConfigureForTest ran in earlier tests, so Enabled() no longer reflects
  // the env directly — but the env spec must have parsed without dying at
  // first use, which reaching this line proves for this process.
  SUCCEED();
}

// The tentpole contract: a sweep whose disk-cache reads keep faulting
// transiently completes with zero failed cells, burns retries, and produces
// results bitwise identical to an undisturbed warm run.
TEST(FaultInjectionTest, SweepSurvivesCacheReadFaultsBitwise) {
  const std::string dir = ::testing::TempDir() + "/fault_cache_read";
  std::filesystem::remove_all(dir);
  const Sweep sweep = MiniSuiteSweep(6);
  const RunnerOptions opts = QuietOptions();

  RunCache cold(dir);
  const SweepResult clean = RunSweep(sweep, &cold, opts);
  ASSERT_EQ(clean.failed_cells, 0);

  // Every 2nd disk read throws the transient RecoverableError; the cell
  // retry loop re-requests until an attempt's reads all land.
  FaultScope scope("cache_store.read:2");
  RunCache faulted(dir);
  const SweepResult survived = RunSweep(sweep, &faulted, opts);
  EXPECT_EQ(survived.failed_cells, 0);
  int total_retries = 0;
  for (const CellResult& cell : survived.cells) total_retries += cell.retries;
  EXPECT_GT(total_retries, 0) << "read faults must have cost at least one retry";
  ASSERT_EQ(clean.cells.size(), survived.cells.size());
  for (size_t i = 0; i < clean.cells.size(); ++i) {
    SCOPED_TRACE(clean.cells[i].scenario.DisplayLabel());
    EXPECT_FALSE(survived.cells[i].failed);
    ExpectEvalBitwiseEq(clean.cells[i].run->eval, survived.cells[i].run->eval);
  }
}

// Write faults only degrade persistence (the entry recomputes next process);
// the faulted run itself completes clean and bitwise-equal.
TEST(FaultInjectionTest, CacheWriteFaultsOnlySkipPersistence) {
  const std::string dir = ::testing::TempDir() + "/fault_cache_write";
  std::filesystem::remove_all(dir);
  const Sweep sweep = MiniSuiteSweep(6);
  const RunnerOptions opts = QuietOptions();

  SweepResult faulted;
  {
    FaultScope scope("cache_store.write:2");
    RunCache cache(dir);
    faulted = RunSweep(sweep, &cache, opts);
  }
  EXPECT_EQ(faulted.failed_cells, 0);

  RunCache clean_cache;  // in-memory reference, no disk involved
  const SweepResult clean = RunSweep(sweep, &clean_cache, opts);
  ASSERT_EQ(clean.cells.size(), faulted.cells.size());
  for (size_t i = 0; i < clean.cells.size(); ++i) {
    SCOPED_TRACE(clean.cells[i].scenario.DisplayLabel());
    ExpectEvalBitwiseEq(clean.cells[i].run->eval, faulted.cells[i].run->eval);
  }
}

// Fault isolation without retries: every cell fails, but the sweep (and the
// artifact write) still completes, and failed cells stay out of aggregates.
TEST(FaultInjectionTest, ExhaustedRetriesFailCellsNotTheSweep) {
  const Sweep sweep = MiniSuiteSweep(4);
  RunnerOptions opts = QuietOptions();
  opts.max_cell_retries = 0;

  FaultScope scope("stage.cell:1");  // every cell compute throws
  RunCache cache;
  const SweepResult result = RunSweep(sweep, &cache, opts);
  EXPECT_EQ(result.failed_cells, static_cast<int64_t>(sweep.cells.size()));
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.failed);
    EXPECT_NE(cell.error.find("injected stage.cell fault"), std::string::npos)
        << cell.error;
    EXPECT_TRUE(std::isnan(cell.run->eval.accuracy));
  }
  // NaN placeholders must not leak into the cross-seed aggregates.
  EXPECT_TRUE(AggregateCells(result).empty());

  // The artifact still writes, reporting the failures honestly.
  const std::string dir = ::testing::TempDir() + "/fault_all_failed";
  std::filesystem::create_directories(dir);
  const std::string path = WriteArtifact(result, dir);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"failed_cells\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("injected stage.cell fault"), std::string::npos);
  std::remove(path.c_str());
}

// Bounded retries: a transient fault that keeps firing burns exactly
// max_cell_retries extra attempts before the cell is marked failed.
TEST(FaultInjectionTest, TransientRetriesAreBounded) {
  Sweep sweep;
  sweep.name = "fault_bound";
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kVanilla, 4));
  RunnerOptions opts = QuietOptions();
  opts.max_cell_retries = 2;

  FaultScope scope("stage.cell:1");
  RunCache cache;
  const SweepResult result = RunSweep(sweep, &cache, opts);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].failed);
  EXPECT_EQ(result.cells[0].retries, 2);
  EXPECT_EQ(fault::FiredCount(fault::kStageCell), 3);  // initial + 2 retries
}

// FR-backed cells surface their inverse-HVP solve health as an artifact
// extra (the cg_unconverged satellite).
TEST(FaultInjectionTest, FrCellsReportCgConvergenceExtra) {
  Sweep sweep;
  sweep.name = "cg_extra";
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kPpFr, 6));
  RunCache cache;
  const SweepResult result = RunSweep(sweep, &cache, QuietOptions());
  ASSERT_EQ(result.cells.size(), 1u);
  const CellResult& cell = result.cells[0];
  ASSERT_TRUE(cell.extra.count("cg_unconverged"));
  EXPECT_GE(cell.extra.at("cg_unconverged"), 0.0);
  EXPECT_GT(cell.run->cg_total_rhs, 0);
  EXPECT_LE(cell.run->cg_unconverged, cell.run->cg_total_rhs);
}

}  // namespace
}  // namespace ppfr::runner

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/csr_matrix.h"
#include "la/matrix.h"
#include "la/stats.h"
#include "test_util.h"

namespace ppfr::la {
namespace {

using ::ppfr::testing::RandomMatrix;

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
}

TEST(MatrixTest, MatMulKnownValues) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposedMatMulVariantsAgree) {
  Rng rng(3);
  const Matrix a = RandomMatrix(4, 6, &rng);
  const Matrix b = RandomMatrix(4, 5, &rng);
  // aᵀ b via MatMulTransA vs explicit transpose.
  const Matrix direct = MatMulTransA(a, b);
  const Matrix reference = MatMul(Transpose(a), b);
  EXPECT_LT(Sub(direct, reference).MaxAbs(), 1e-12);

  const Matrix c = RandomMatrix(5, 6, &rng);
  const Matrix direct2 = MatMulTransB(a, c);  // (4,6) x (5,6)ᵀ -> 4x5
  const Matrix reference2 = MatMul(a, Transpose(c));
  EXPECT_LT(Sub(direct2, reference2).MaxAbs(), 1e-12);
}

TEST(MatrixTest, AxpyScaleSumNorm) {
  Matrix m = Matrix::FromRows({{1, -2}, {3, 0}});
  const Matrix other = Matrix::FromRows({{1, 1}, {1, 1}});
  m.Axpy(2.0, other);
  EXPECT_DOUBLE_EQ(m(0, 0), 3);
  EXPECT_DOUBLE_EQ(m(0, 1), 0);
  m.Scale(0.5);
  EXPECT_DOUBLE_EQ(m(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(Matrix::FromRows({{3, 4}}).FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix::FromRows({{-7, 4}}).MaxAbs(), 7.0);
  EXPECT_DOUBLE_EQ(Matrix::FromRows({{1, 2}, {3, 4}}).SumAll(), 10.0);
}

TEST(MatrixTest, HadamardAndDot) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{2, 0}, {1, -1}});
  const Matrix h = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2);
  EXPECT_DOUBLE_EQ(h(1, 1), -4);
  EXPECT_DOUBLE_EQ(Dot(a, b), 2 + 0 + 3 - 4);
}

TEST(MatrixTest, SoftmaxRowsIsNormalizedAndShiftInvariant) {
  const Matrix logits = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  const Matrix p = SoftmaxRows(logits);
  for (int r = 0; r < 2; ++r) {
    double sum = 0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GT(p(r, c), 0.0);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Shift invariance.
  Matrix shifted = logits;
  for (int c = 0; c < 3; ++c) shifted(0, c) += 100.0;
  const Matrix p2 = SoftmaxRows(shifted);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(p(0, c), p2(0, c), 1e-12);
}

TEST(MatrixTest, ArgmaxRowsBreaksTiesLow) {
  const Matrix m = Matrix::FromRows({{1, 3, 2}, {5, 5, 1}, {0, 0, 0}});
  const std::vector<int> amax = ArgmaxRows(m);
  EXPECT_EQ(amax[0], 1);
  EXPECT_EQ(amax[1], 0);
  EXPECT_EQ(amax[2], 0);
}

TEST(CsrMatrixTest, FromTripletsDeduplicatesAndSorts) {
  const CsrMatrix m = CsrMatrix::FromTriplets(
      3, 3, {{0, 2, 1.0}, {0, 1, 2.0}, {0, 2, 3.0}, {2, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 4.0);  // summed duplicates
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(5);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(8)),
                        static_cast<int>(rng.UniformInt(6)), rng.Normal()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(8, 6, triplets);
  const Matrix x = RandomMatrix(6, 4, &rng);
  const Matrix got = sparse.Multiply(x);
  const Matrix want = MatMul(sparse.ToDense(), x);
  EXPECT_LT(Sub(got, want).MaxAbs(), 1e-12);
}

TEST(CsrMatrixTest, TransposedIsCorrect) {
  const CsrMatrix m = CsrMatrix::FromTriplets(2, 3, {{0, 1, 5.0}, {1, 2, -2.0}});
  const CsrMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.At(2, 1), -2.0);
}

TEST(CsrMatrixTest, MultiplyAccumAddsScaled) {
  const CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  const Matrix x = Matrix::FromRows({{1, 1}, {1, 1}});
  Matrix out(2, 2, 10.0);
  m.MultiplyAccum(x, 0.5, &out);
  EXPECT_DOUBLE_EQ(out(0, 0), 10.5);
  EXPECT_DOUBLE_EQ(out(1, 0), 11.0);
}

TEST(StatsTest, MeanVarianceKnown) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Variance({1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({0, 2}), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, PearsonPerfectAndAnti) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);  // constant side
}

TEST(StatsTest, AucPerfectSeparation) {
  EXPECT_DOUBLE_EQ(AucFromScores({5, 6, 7}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(AucFromScores({1, 2, 3}, {5, 6, 7}), 0.0);
}

TEST(StatsTest, AucWithTiesIsHalf) {
  EXPECT_DOUBLE_EQ(AucFromScores({1, 1, 1}, {1, 1}), 0.5);
}

TEST(StatsTest, AucOverlappingKnownValue) {
  // pos {2, 4}, neg {1, 3}: pairs (2>1), (2<3), (4>1), (4>3) -> 3/4.
  EXPECT_DOUBLE_EQ(AucFromScores({2, 4}, {1, 3}), 0.75);
}

TEST(StatsTest, AucOnRandomScoresIsNearHalf) {
  Rng rng(9);
  std::vector<double> pos(2000), neg(2000);
  for (auto& v : pos) v = rng.Normal();
  for (auto& v : neg) v = rng.Normal();
  EXPECT_NEAR(AucFromScores(pos, neg), 0.5, 0.03);
}

// Property sweep: SpMM distributes over addition for random sparse matrices.
class CsrPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrPropertySweep, MultiplyIsLinear) {
  Rng rng(GetParam());
  std::vector<Triplet> triplets;
  for (int i = 0; i < 60; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(10)),
                        static_cast<int>(rng.UniformInt(10)), rng.Normal()});
  }
  const CsrMatrix m = CsrMatrix::FromTriplets(10, 10, triplets);
  const Matrix x = RandomMatrix(10, 3, &rng);
  const Matrix y = RandomMatrix(10, 3, &rng);
  const Matrix lhs = m.Multiply(Add(x, y));
  const Matrix rhs = Add(m.Multiply(x), m.Multiply(y));
  EXPECT_LT(Sub(lhs, rhs).MaxAbs(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrPropertySweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

}  // namespace
}  // namespace ppfr::la

#ifndef PPFR_TESTS_TEST_UTIL_H_
#define PPFR_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "data/sbm.h"
#include "graph/graph.h"
#include "la/matrix.h"

namespace ppfr::testing {

// A small deterministic SBM instance for fast tests.
inline data::NodeClassificationData SmallSbm(uint64_t seed = 42, int num_nodes = 120,
                                             int num_classes = 3) {
  data::SbmConfig cfg;
  cfg.name = "test-sbm";
  cfg.num_nodes = num_nodes;
  cfg.num_classes = num_classes;
  cfg.feature_dim = 24;
  cfg.homophily = 0.85;
  cfg.average_degree = 6.0;
  cfg.signature_size = 6;
  cfg.feature_on_prob = 0.5;
  cfg.feature_noise_prob = 0.03;
  return data::GenerateSbm(cfg, seed);
}

// Random dense matrix with entries ~ N(0, 1).
inline la::Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  la::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal();
  return m;
}

// A fixed small graph:   0-1, 1-2, 2-3, 3-0, 0-2  (square with one diagonal)
// plus a pendant 4-0 and an isolated node 5.
inline graph::Graph SmallGraph() {
  return graph::Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {4, 0}});
}

}  // namespace ppfr::testing

#endif  // PPFR_TESTS_TEST_UTIL_H_

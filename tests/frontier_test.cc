// Tests for the frontier-partitioned per-node influence sweep
// (influence/frontier). The contracts:
//   * PartitionByTwoHopSupport exactly covers the targets with
//     2-hop-support-local chunks respecting the budget (hubs excepted);
//   * RunFrontierSweep's rows are BITWISE identical to the existing
//     InfluenceOnNodeLosses path invoked on the same target lists — per
//     chunk by construction, verified here against FRESH calculators and
//     under every backend/thread count;
//   * at cg_block = 1 (the single-RHS oracle) rows are bitwise identical
//     ACROSS different chunkings of the same targets;
//   * --shard=i/N style sharding yields a disjoint exact cover whose merged
//     rows equal the unsharded sweep's.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "influence/frontier.h"
#include "influence/influence.h"
#include "la/backend.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace ppfr::influence {
namespace {

struct SweepFixture {
  data::NodeClassificationData data;
  nn::GraphContext ctx;
  data::Split split;
  std::unique_ptr<nn::GnnModel> model;

  SweepFixture()
      : data(ppfr::testing::SmallSbm(/*seed=*/42, /*num_nodes=*/120)),
        ctx(nn::GraphContext::Build(data.graph, data.features)),
        split(data::MakeSplit(120, /*train=*/36, 0, /*seed=*/5)) {
    model = nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(),
                          data.num_classes, /*seed=*/7);
    nn::TrainConfig tc;
    tc.epochs = 25;
    nn::Train(model.get(), ctx, split.train, data.labels, tc);
  }

  InfluenceConfig Config(int cg_block) const {
    InfluenceConfig cfg;
    cfg.cg.damping = 1.0;
    cfg.cg.tolerance = 1e-8;
    cfg.cg.max_iterations = 100;
    cfg.cg_block = cg_block;
    cfg.replay_lanes = 2;
    cfg.tape_pool_lanes = 2;
    return cfg;
  }

  InfluenceCalculator MakeCalc(int cg_block) const {
    return InfluenceCalculator(model.get(), ctx, split.train, data.labels,
                               Config(cg_block));
  }
};

TEST(FrontierPartitionTest, ExactCoverWithinSupportBudget) {
  const SweepFixture fix;
  std::vector<int> targets(fix.split.train.begin(), fix.split.train.end());
  const FrontierPartition partition =
      PartitionByTwoHopSupport(fix.ctx.graph, targets, /*support_budget=*/30);
  ASSERT_GT(partition.chunks.size(), 1u);

  // Disjoint exact cover of the (deduplicated, sorted) targets.
  std::vector<int> covered;
  for (const FrontierChunk& chunk : partition.chunks) {
    ASSERT_FALSE(chunk.targets.empty());
    ASSERT_TRUE(std::is_sorted(chunk.targets.begin(), chunk.targets.end()));
    covered.insert(covered.end(), chunk.targets.begin(), chunk.targets.end());

    // Chunk support really is the union of its targets' 2-hop supports, and
    // respects the budget unless the chunk is a singleton hub.
    std::set<int> want_support;
    for (int t : chunk.targets) {
      want_support.insert(t);
      for (int u : fix.ctx.graph.Neighbors(t)) {
        want_support.insert(u);
        for (int w : fix.ctx.graph.Neighbors(u)) want_support.insert(w);
      }
    }
    const std::set<int> got_support(chunk.support.begin(), chunk.support.end());
    EXPECT_EQ(got_support, want_support);
    if (chunk.targets.size() > 1) {
      EXPECT_LE(static_cast<int64_t>(chunk.support.size()), 30);
    }
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  ASSERT_TRUE(std::is_sorted(covered.begin(), covered.end()));
  EXPECT_EQ(covered, targets);

  // Deterministic: chunking depends only on (graph, targets, budget).
  const FrontierPartition again =
      PartitionByTwoHopSupport(fix.ctx.graph, targets, 30);
  ASSERT_EQ(again.chunks.size(), partition.chunks.size());
  for (size_t k = 0; k < partition.chunks.size(); ++k) {
    EXPECT_EQ(again.chunks[k].targets, partition.chunks[k].targets);
    EXPECT_EQ(again.chunks[k].support, partition.chunks[k].support);
  }

  // A budget of 1 forces singleton chunks (every support exceeds it).
  const FrontierPartition singletons =
      PartitionByTwoHopSupport(fix.ctx.graph, targets, 1);
  EXPECT_EQ(singletons.chunks.size(), targets.size());
  for (const FrontierChunk& chunk : singletons.chunks) {
    EXPECT_EQ(chunk.targets.size(), 1u);
  }
}

// The headline contract: under EVERY backend/thread count, each chunk's rows
// from the frontier sweep are bitwise identical to a fresh calculator's
// InfluenceOnNodeLosses on that chunk's target list — the partition changes
// scheduling and locality, never a float.
TEST(FrontierSweepTest, BitwiseMatchesPerNodePathPerChunkOnAllBackends) {
  const SweepFixture fix;
  const std::vector<int> targets(fix.split.train.begin(),
                                 fix.split.train.begin() + 12);
  const FrontierPartition partition =
      PartitionByTwoHopSupport(fix.ctx.graph, targets, /*support_budget=*/40);

  const std::vector<std::pair<la::BackendKind, int>> backends = {
      {la::BackendKind::kReference, 1},
      {la::BackendKind::kParallel, 3},
      {la::BackendKind::kSimd, 2},
  };
  for (const auto& [kind, threads] : backends) {
    la::ScopedBackend scoped(kind, threads);
    InfluenceCalculator sweep_calc = fix.MakeCalc(/*cg_block=*/0);
    const FrontierSweepResult sweep = RunFrontierSweep(&sweep_calc, partition,
                                                       FrontierSweepOptions{});
    ASSERT_EQ(sweep.chunks_run, static_cast<int>(partition.chunks.size()));
    ASSERT_EQ(sweep.targets.size(), sweep.influence.size());

    size_t row = 0;
    for (const FrontierChunk& chunk : partition.chunks) {
      InfluenceCalculator fresh = fix.MakeCalc(/*cg_block=*/0);
      const auto want = fresh.InfluenceOnNodeLosses(chunk.targets);
      ASSERT_EQ(want.size(), chunk.targets.size());
      for (size_t i = 0; i < chunk.targets.size(); ++i, ++row) {
        ASSERT_EQ(sweep.targets[row], chunk.targets[i]);
        ASSERT_EQ(sweep.influence[row], want[i])
            << "backend " << static_cast<int>(kind) << " chunk row " << i;
      }
    }
  }
}

// With cg_block = 1 every RHS goes through the single-RHS oracle, so the
// SOLVES depend only on the target, never on its chunk. The rows therefore
// coincide across ANY chunking of the same targets — bitwise under the
// reference backend, whose GEMM-T reduction order is shape-invariant, and to
// contraction roundoff (a few ULPs) under tiling backends, whose final
// influence GEMM-T may pick a blocked kernel once the chunk is wide enough.
TEST(FrontierSweepTest, SingleRhsOracleIsChunkingInvariant) {
  const SweepFixture fix;
  const std::vector<int> targets(fix.split.train.begin(),
                                 fix.split.train.begin() + 10);

  const auto sweep_rows = [&](const FrontierPartition& partition) {
    InfluenceCalculator calc = fix.MakeCalc(/*cg_block=*/1);
    const FrontierSweepResult result =
        RunFrontierSweep(&calc, partition, FrontierSweepOptions{});
    std::map<int, std::vector<double>> rows;
    for (size_t i = 0; i < result.targets.size(); ++i) {
      rows[result.targets[i]] = result.influence[i];
    }
    return rows;
  };

  FrontierPartition one_chunk;
  one_chunk.chunks.push_back(FrontierChunk{targets, {}});
  const FrontierPartition fine =
      PartitionByTwoHopSupport(fix.ctx.graph, targets, /*support_budget=*/1);
  ASSERT_EQ(fine.chunks.size(), targets.size());

  {
    la::ScopedBackend scoped(la::BackendKind::kReference, 1);
    const auto whole = sweep_rows(one_chunk);
    const auto split = sweep_rows(fine);
    ASSERT_EQ(split.size(), targets.size());
    for (const auto& [target, row] : split) {
      ASSERT_EQ(row, whole.at(target)) << "target " << target;
    }
  }
  {
    la::ScopedBackend scoped(la::BackendKind::kParallel, 3);
    const auto whole = sweep_rows(one_chunk);
    const auto split = sweep_rows(fine);
    ASSERT_EQ(split.size(), targets.size());
    for (const auto& [target, row] : split) {
      const std::vector<double>& want = whole.at(target);
      ASSERT_EQ(row.size(), want.size());
      for (size_t v = 0; v < want.size(); ++v) {
        ASSERT_NEAR(row[v], want[v], 1e-12) << "target " << target;
      }
    }
  }
}

TEST(FrontierSweepTest, ShardsFormDisjointCoverAndMergeBitwise) {
  const SweepFixture fix;
  const std::vector<int> targets(fix.split.train.begin(),
                                 fix.split.train.begin() + 12);
  const FrontierPartition partition =
      PartitionByTwoHopSupport(fix.ctx.graph, targets, /*support_budget=*/25);
  ASSERT_GE(partition.chunks.size(), 3u);

  InfluenceCalculator full_calc = fix.MakeCalc(/*cg_block=*/0);
  const FrontierSweepResult full =
      RunFrontierSweep(&full_calc, partition, FrontierSweepOptions{});

  constexpr int kShards = 3;
  std::map<int, std::vector<double>> merged;
  int chunks_run = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    InfluenceCalculator calc = fix.MakeCalc(/*cg_block=*/0);
    const FrontierSweepResult part = RunFrontierSweep(
        &calc, partition, {.shard_index = shard, .shard_count = kShards});
    chunks_run += part.chunks_run;
    for (size_t i = 0; i < part.targets.size(); ++i) {
      ASSERT_EQ(merged.count(part.targets[i]), 0u)
          << "target " << part.targets[i] << " owned by two shards";
      merged[part.targets[i]] = part.influence[i];
    }
  }
  EXPECT_EQ(chunks_run, static_cast<int>(partition.chunks.size()));
  ASSERT_EQ(merged.size(), full.targets.size());
  for (size_t i = 0; i < full.targets.size(); ++i) {
    ASSERT_EQ(merged.at(full.targets[i]), full.influence[i]);
  }
}

TEST(FrontierSweepDeathTest, GuardsMisuse) {
  const SweepFixture fix;
  InfluenceCalculator calc = fix.MakeCalc(0);
  const FrontierPartition partition;
  EXPECT_DEATH(RunFrontierSweep(nullptr, partition, FrontierSweepOptions{}),
               "CHECK failed");
  EXPECT_DEATH(RunFrontierSweep(&calc, partition,
                                {.shard_index = 2, .shard_count = 2}),
               "CHECK failed");
  EXPECT_DEATH(
      PartitionByTwoHopSupport(fix.ctx.graph, {1, 2}, /*support_budget=*/0),
      "CHECK failed");
}

}  // namespace
}  // namespace ppfr::influence

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "autograd/grad_check.h"
#include "data/split.h"
#include "nn/adam.h"
#include "nn/graph_context.h"
#include "nn/init.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace ppfr::nn {
namespace {

struct Fixture {
  data::NodeClassificationData data;
  GraphContext ctx;
  data::Split split;

  explicit Fixture(uint64_t seed = 42) : data(ppfr::testing::SmallSbm(seed)) {
    ctx = GraphContext::Build(data.graph, data.features);
    split = data::MakeSplit(data.graph.num_nodes(), 40, 20, seed);
  }
};

TEST(InitTest, GlorotBoundsAndSpread) {
  Rng rng(1);
  const la::Matrix w = GlorotUniform(50, 30, &rng);
  const double limit = std::sqrt(6.0 / 80.0);
  double max_abs = 0.0, sum = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(w.data()[i]));
    sum += w.data()[i];
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, 0.5 * limit);          // actually spread out
  EXPECT_NEAR(sum / w.size(), 0.0, 0.02);   // centred
}

TEST(GraphContextTest, BuildsAllOperators) {
  Fixture f;
  EXPECT_EQ(f.ctx.num_nodes(), f.data.graph.num_nodes());
  EXPECT_EQ(f.ctx.feature_dim(), f.data.features.cols());
  EXPECT_NE(f.ctx.gcn_adj, nullptr);
  EXPECT_NE(f.ctx.mean_adj, nullptr);
  ASSERT_NE(f.ctx.edges_with_self, nullptr);
  // Every node has its self-loop first in the edge set.
  for (int v = 0; v < f.ctx.num_nodes(); ++v) {
    EXPECT_EQ(f.ctx.edges_with_self->col_idx[f.ctx.edges_with_self->row_ptr[v]], v);
    EXPECT_EQ(f.ctx.edges_with_self->row_ptr[v + 1] - f.ctx.edges_with_self->row_ptr[v],
              f.data.graph.Degree(v) + 1);
  }
}

class ModelForwardSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelForwardSweep, ForwardShapeAndFiniteValues) {
  Fixture f;
  auto model = MakeModel(GetParam(), f.ctx.feature_dim(), f.data.num_classes, 3);
  const la::Matrix logits = model->Logits(f.ctx);
  EXPECT_EQ(logits.rows(), f.ctx.num_nodes());
  EXPECT_EQ(logits.cols(), f.data.num_classes);
  for (int64_t i = 0; i < logits.size(); ++i) {
    ASSERT_TRUE(std::isfinite(logits.data()[i]));
  }
}

TEST_P(ModelForwardSweep, TrainingReducesLossAndBeatsChance) {
  Fixture f;
  auto model = MakeModel(GetParam(), f.ctx.feature_dim(), f.data.num_classes, 3);
  TrainConfig cfg;
  cfg.epochs = 60;
  const TrainStats stats =
      Train(model.get(), f.ctx, f.split.train, f.data.labels, cfg);
  EXPECT_LT(stats.final_loss, 0.7 * stats.epoch_losses.front());
  const double acc = Accuracy(model->Logits(f.ctx), f.data.labels, f.split.test);
  EXPECT_GT(acc, 1.5 / f.data.num_classes) << "should beat chance comfortably";
}

TEST_P(ModelForwardSweep, DeterministicTraining) {
  Fixture f;
  TrainConfig cfg;
  cfg.epochs = 15;
  auto m1 = MakeModel(GetParam(), f.ctx.feature_dim(), f.data.num_classes, 3);
  auto m2 = MakeModel(GetParam(), f.ctx.feature_dim(), f.data.num_classes, 3);
  Train(m1.get(), f.ctx, f.split.train, f.data.labels, cfg);
  Train(m2.get(), f.ctx, f.split.train, f.data.labels, cfg);
  EXPECT_LT(la::Sub(m1->Logits(f.ctx), m2->Logits(f.ctx)).MaxAbs(), 1e-12);
}

TEST_P(ModelForwardSweep, CloneIsDeepCopy) {
  Fixture f;
  auto model = MakeModel(GetParam(), f.ctx.feature_dim(), f.data.num_classes, 3);
  auto clone = model->Clone();
  const la::Matrix before = model->Logits(f.ctx);
  TrainConfig cfg;
  cfg.epochs = 10;
  Train(clone.get(), f.ctx, f.split.train, f.data.labels, cfg);
  // Training the clone must not touch the original.
  EXPECT_LT(la::Sub(model->Logits(f.ctx), before).MaxAbs(), 1e-15);
  EXPECT_GT(la::Sub(clone->Logits(f.ctx), before).MaxAbs(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelForwardSweep,
                         ::testing::Values(ModelKind::kGcn, ModelKind::kGat,
                                           ModelKind::kGraphSage),
                         [](const auto& info) { return ModelKindName(info.param); });

TEST(ModelGradientTest, GcnEndToEndGradCheck) {
  Fixture f(7);
  Gcn model(f.ctx.feature_dim(), 8, f.data.num_classes, 11);
  const std::vector<int> rows{0, 5, 9};
  const std::vector<int> labels{f.data.labels[0], f.data.labels[5], f.data.labels[9]};
  Rng rng(1);
  auto build = [&](ag::Tape& tape) {
    ag::Var logits = model.Forward(tape, f.ctx, ForwardOptions{});
    return ag::WeightedNll(ag::LogSoftmaxRows(logits), rows, labels, {1, 1, 1}, 3.0);
  };
  const ag::GradCheckResult r = ag::GradCheck(build, model.Params(), &rng, 6);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(ModelGradientTest, GatEndToEndGradCheck) {
  Fixture f(8);
  Gat model(f.ctx.feature_dim(), 4, f.data.num_classes, 2, 11);
  const std::vector<int> rows{1, 3};
  const std::vector<int> labels{f.data.labels[1], f.data.labels[3]};
  Rng rng(2);
  auto build = [&](ag::Tape& tape) {
    ag::Var logits = model.Forward(tape, f.ctx, ForwardOptions{});
    return ag::WeightedNll(ag::LogSoftmaxRows(logits), rows, labels, {1, 1}, 2.0);
  };
  const ag::GradCheckResult r = ag::GradCheck(build, model.Params(), &rng, 4);
  EXPECT_LT(r.max_rel_error, 1e-3);
}

TEST(ModelGradientTest, SageEndToEndGradCheck) {
  Fixture f(9);
  GraphSage model(f.ctx.feature_dim(), 8, f.data.num_classes, 11);
  const std::vector<int> rows{2, 4};
  const std::vector<int> labels{f.data.labels[2], f.data.labels[4]};
  Rng rng(3);
  auto build = [&](ag::Tape& tape) {
    ag::Var logits = model.Forward(tape, f.ctx, ForwardOptions{});
    return ag::WeightedNll(ag::LogSoftmaxRows(logits), rows, labels, {1, 1}, 2.0);
  };
  const ag::GradCheckResult r = ag::GradCheck(build, model.Params(), &rng, 6);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = ||x - 3||²; Adam should drive x to ~3.
  ag::Parameter x("x", la::Matrix(1, 1, 0.0));
  Adam adam({&x}, {.lr = 0.1});
  for (int step = 0; step < 300; ++step) {
    x.ZeroGrad();
    x.grad(0, 0) = 2.0 * (x.value(0, 0) - 3.0);
    adam.Step();
  }
  EXPECT_NEAR(x.value(0, 0), 3.0, 1e-3);
}

TEST(AdamTest, WeightDecayShrinksUnusedParameter) {
  ag::Parameter x("x", la::Matrix(1, 1, 5.0));
  Adam adam({&x}, {.lr = 0.05, .weight_decay = 1.0});
  for (int step = 0; step < 200; ++step) {
    x.ZeroGrad();  // gradient zero; only decay acts
    adam.Step();
  }
  EXPECT_LT(std::fabs(x.value(0, 0)), 0.5);
}

TEST(TrainerTest, SampleWeightsChangeTheOptimum) {
  Fixture f;
  TrainConfig base;
  base.epochs = 40;
  auto uniform = MakeModel(ModelKind::kGcn, f.ctx.feature_dim(), f.data.num_classes, 3);
  Train(uniform.get(), f.ctx, f.split.train, f.data.labels, base);

  TrainConfig weighted = base;
  weighted.sample_weights.assign(f.split.train.size(), 1.0);
  for (size_t i = 0; i < weighted.sample_weights.size(); i += 2) {
    weighted.sample_weights[i] = 0.0;  // drop half the supervision
  }
  auto reweighted =
      MakeModel(ModelKind::kGcn, f.ctx.feature_dim(), f.data.num_classes, 3);
  Train(reweighted.get(), f.ctx, f.split.train, f.data.labels, weighted);
  EXPECT_GT(la::Sub(uniform->Logits(f.ctx), reweighted->Logits(f.ctx)).MaxAbs(), 1e-4);
}

TEST(TrainerTest, ZeroWeightEqualsExclusion) {
  Fixture f;
  TrainConfig cfg;
  cfg.epochs = 25;
  // Weight zero on the second half of train nodes ...
  TrainConfig weighted = cfg;
  weighted.sample_weights.assign(f.split.train.size(), 1.0);
  const size_t half = f.split.train.size() / 2;
  for (size_t i = half; i < f.split.train.size(); ++i) weighted.sample_weights[i] = 0.0;
  auto a = MakeModel(ModelKind::kGcn, f.ctx.feature_dim(), f.data.num_classes, 3);
  Train(a.get(), f.ctx, f.split.train, f.data.labels, weighted);
  // ... must equal training on the first half only, with matching
  // normalisation (weights scaled so the denominators agree).
  std::vector<int> first_half(f.split.train.begin(), f.split.train.begin() + half);
  TrainConfig subset = cfg;
  subset.sample_weights.assign(first_half.size(),
                               static_cast<double>(first_half.size()) /
                                   static_cast<double>(f.split.train.size()));
  auto b = MakeModel(ModelKind::kGcn, f.ctx.feature_dim(), f.data.num_classes, 3);
  Train(b.get(), f.ctx, first_half, f.data.labels, subset);
  EXPECT_LT(la::Sub(a->Logits(f.ctx), b->Logits(f.ctx)).MaxAbs(), 1e-9);
}

TEST(TrainerTest, AccuracyHelper) {
  la::Matrix logits = la::Matrix::FromRows({{2, 1}, {0, 3}, {5, 4}});
  const std::vector<int> labels{0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1}), 1.0);
}

}  // namespace
}  // namespace ppfr::nn

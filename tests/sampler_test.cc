// Tests for the fanout-capped k-hop block sampler (nn/sampler) and the
// sampled mini-batch training path it feeds (nn::TrainSampled). Pins the
// properties the scale axis stands on: blocks are pure functions of
// (seed, epoch, batch, targets) — identical across runs and threads; the
// fanout cap binds; at fanout >= max degree the block is EXACTLY the dense
// 2-hop neighbourhood; and sampled training at full fanout matches
// full-batch training within float-summation tolerance.

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/scale_gen.h"
#include "graph/csr_builder.h"
#include "nn/graph_context.h"
#include "nn/models.h"
#include "nn/sampler.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace ppfr {
namespace {

graph::CsrAdjacency TestAdjacency(uint64_t seed = 5, int64_t nodes = 600) {
  data::ScaleGraphConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_blocks = 3;
  cfg.feature_dim = 24;
  cfg.average_degree = 6.0;
  return data::ScaleDataset(cfg, seed).adjacency();
}

bool BlocksEqual(const nn::SampledBlock& a, const nn::SampledBlock& b) {
  if (a.frontier != b.frontier || a.hop_sizes != b.hop_sizes ||
      a.hops.size() != b.hops.size()) {
    return false;
  }
  for (size_t h = 0; h < a.hops.size(); ++h) {
    const la::CsrMatrix& ma = a.hops[h].agg;
    const la::CsrMatrix& mb = b.hops[h].agg;
    if (ma.rows() != mb.rows() || ma.cols() != mb.cols() ||
        ma.row_ptr() != mb.row_ptr() || ma.col_idx() != mb.col_idx() ||
        ma.values() != mb.values()) {
      return false;
    }
  }
  return true;
}

TEST(NeighborSamplerTest, BlocksAreDeterministicAcrossInstancesAndThreads) {
  const graph::CsrAdjacency adj = TestAdjacency();
  const nn::SamplerConfig cfg{.fanout = 3, .num_hops = 2, .seed = 17};
  const std::vector<int> targets = {5, 99, 311, 42};

  const nn::NeighborSampler sampler(&adj, cfg);
  const nn::SampledBlock want = sampler.SampleBlock(targets, /*epoch=*/2,
                                                    /*batch=*/4);

  // A fresh sampler instance reproduces the block bit for bit.
  const nn::NeighborSampler other(&adj, cfg);
  EXPECT_TRUE(BlocksEqual(want, other.SampleBlock(targets, 2, 4)));

  // Concurrent sampling from many threads: each (epoch, batch) stream is
  // independent, so parallel calls must reproduce the serial blocks exactly.
  std::vector<nn::SampledBlock> serial;
  for (int b = 0; b < 8; ++b) {
    serial.push_back(sampler.SampleBlock(targets, /*epoch=*/b / 4,
                                         /*batch=*/b % 4));
  }
  std::vector<nn::SampledBlock> parallel(8);
  std::vector<std::thread> workers;
  for (int b = 0; b < 8; ++b) {
    workers.emplace_back([&, b] {
      parallel[static_cast<size_t>(b)] =
          sampler.SampleBlock(targets, b / 4, b % 4);
    });
  }
  for (std::thread& t : workers) t.join();
  for (int b = 0; b < 8; ++b) {
    EXPECT_TRUE(BlocksEqual(serial[static_cast<size_t>(b)],
                            parallel[static_cast<size_t>(b)]))
        << "epoch " << b / 4 << " batch " << b % 4;
  }

  // Different (epoch, batch) coordinates draw different samples.
  EXPECT_FALSE(BlocksEqual(want, sampler.SampleBlock(targets, 3, 4)));
}

TEST(NeighborSamplerTest, FanoutCapBindsAndWeightsAreRowStochastic) {
  const graph::CsrAdjacency adj = TestAdjacency();
  const int fanout = 3;
  const nn::NeighborSampler sampler(&adj, {.fanout = fanout, .num_hops = 2,
                                           .seed = 9});
  const std::vector<int> targets = {1, 50, 200, 301, 599};
  const nn::SampledBlock block = sampler.SampleBlock(targets, 0, 0);

  ASSERT_EQ(block.hops.size(), 2u);
  ASSERT_EQ(block.hop_sizes.size(), 3u);
  EXPECT_EQ(block.num_targets(), static_cast<int>(targets.size()));
  // Prefix property: targets are the leading frontier entries; frontiers nest.
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(block.frontier[i], targets[i]);
  }
  EXPECT_GE(block.hop_sizes[0], block.hop_sizes[1]);
  EXPECT_GE(block.hop_sizes[1], block.hop_sizes[2]);

  for (size_t h = 0; h < block.hops.size(); ++h) {
    const la::CsrMatrix& agg = block.hops[h].agg;
    ASSERT_EQ(agg.rows(), block.hop_sizes[h + 1]);
    ASSERT_EQ(agg.cols(), block.hop_sizes[h]);
    for (int r = 0; r < agg.rows(); ++r) {
      const int64_t begin = agg.row_ptr()[static_cast<size_t>(r)];
      const int64_t end = agg.row_ptr()[static_cast<size_t>(r) + 1];
      const int64_t nnz = end - begin;
      const int out_node = block.frontier[static_cast<size_t>(r)];
      const int deg = adj.Degree(out_node);
      ASSERT_LE(nnz, std::min<int64_t>(fanout, deg));
      if (deg <= fanout) {
        ASSERT_EQ(nnz, deg);  // under the cap: keep all
      }
      double row_sum = 0.0;
      for (int64_t k = begin; k < end; ++k) {
        const double w = agg.values()[static_cast<size_t>(k)];
        ASSERT_DOUBLE_EQ(w, 1.0 / static_cast<double>(nnz));
        row_sum += w;
      }
      if (nnz > 0) {
        ASSERT_NEAR(row_sum, 1.0, 1e-12);
      }
    }
  }
}

TEST(NeighborSamplerTest, FullFanoutBlockIsTheExactTwoHopNeighbourhood) {
  const graph::CsrAdjacency adj = TestAdjacency();
  const nn::NeighborSampler sampler(&adj, {.fanout = nn::kAllNeighbors,
                                           .num_hops = 2, .seed = 1});
  const std::vector<int> targets = {7, 123, 456};
  const nn::SampledBlock block = sampler.SampleBlock(targets, 0, 0);

  // Dense reference: F_1 = targets ∪ N(targets), F_0 = F_1 ∪ N(F_1).
  std::set<int> one_hop(targets.begin(), targets.end());
  for (int t : targets) {
    for (int u : adj.Neighbors(t)) one_hop.insert(u);
  }
  std::set<int> two_hop = one_hop;
  for (int v : one_hop) {
    for (int u : adj.Neighbors(v)) two_hop.insert(u);
  }

  ASSERT_EQ(block.hop_sizes[1], static_cast<int>(one_hop.size()));
  ASSERT_EQ(block.hop_sizes[0], static_cast<int>(two_hop.size()));
  const std::set<int> f1(block.frontier.begin(),
                         block.frontier.begin() + block.hop_sizes[1]);
  const std::set<int> f0(block.frontier.begin(),
                         block.frontier.begin() + block.hop_sizes[0]);
  EXPECT_EQ(f1, one_hop);
  EXPECT_EQ(f0, two_hop);

  // Each hop row must hold ALL neighbours of its output node, weight 1/deg.
  for (size_t h = 0; h < 2; ++h) {
    const la::CsrMatrix& agg = block.hops[h].agg;
    for (int r = 0; r < agg.rows(); ++r) {
      const int out_node = block.frontier[static_cast<size_t>(r)];
      const auto want = adj.Neighbors(out_node);
      const int64_t begin = agg.row_ptr()[static_cast<size_t>(r)];
      const int64_t end = agg.row_ptr()[static_cast<size_t>(r) + 1];
      ASSERT_EQ(end - begin, static_cast<int64_t>(want.size()));
      // CSR columns sort by LOCAL frontier index (frontier order interleaves
      // rows), so map them back to global ids and compare as sorted sets.
      std::vector<int> got;
      for (int64_t k = begin; k < end; ++k) {
        const int local = agg.col_idx()[static_cast<size_t>(k)];
        got.push_back(block.frontier[static_cast<size_t>(local)]);
        ASSERT_DOUBLE_EQ(agg.values()[static_cast<size_t>(k)],
                         1.0 / static_cast<double>(want.size()));
      }
      std::sort(got.begin(), got.end());
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
          << "row " << r << " neighbour set mismatch";
    }
  }
}

TEST(NeighborSamplerTest, EpochBatchesPartitionAndReshuffle) {
  const std::vector<int> nodes = {3, 1, 4, 1 + 10, 5, 9, 2, 6};
  const auto batches = nn::NeighborSampler::EpochBatches(nodes, 3, /*seed=*/5,
                                                         /*epoch=*/0);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[1].size(), 3u);
  EXPECT_EQ(batches[2].size(), 2u);

  std::vector<int> flattened;
  for (const auto& batch : batches) {
    flattened.insert(flattened.end(), batch.begin(), batch.end());
  }
  std::vector<int> sorted_nodes = nodes;
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  std::sort(flattened.begin(), flattened.end());
  EXPECT_EQ(flattened, sorted_nodes);  // exact cover

  EXPECT_EQ(batches, nn::NeighborSampler::EpochBatches(nodes, 3, 5, 0));
  EXPECT_NE(batches, nn::NeighborSampler::EpochBatches(nodes, 3, 5, 1));

  // batch_nodes <= 0: one batch, original order.
  const auto whole = nn::NeighborSampler::EpochBatches(nodes, 0, 5, 0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], nodes);
}

// Sampled-vs-full-batch parity: at fanout >= max degree and batch_nodes = 0,
// TrainSampled computes the same loss sequence as full-batch Train() on the
// materialised context — both aggregate ALL neighbours with mean weights and
// share the WeightedNll denominator. The two paths sum the same float terms
// in different orders (local CSR layout vs full-graph CSR), so the parity is
// tolerance-based, not bitwise; the documented tolerance is 1e-6 on every
// epoch loss.
TEST(SampledTrainingTest, FullFanoutMatchesFullBatchWithinTolerance) {
  data::ScaleGraphConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_blocks = 3;
  cfg.feature_dim = 24;
  cfg.average_degree = 6.0;
  const data::ScaleDataset dataset(cfg, 13);

  const std::vector<int> train_nodes = dataset.StridedNodes(60, /*salt=*/1);
  const std::vector<int> train_labels = dataset.LabelsFor(train_nodes);
  const std::vector<int> full_labels = dataset.MaterializeLabels();

  nn::TrainConfig tc;
  tc.epochs = 12;
  tc.sage_fanout = nn::kAllNeighbors;
  tc.batch_nodes = 0;
  tc.seed = 3;

  auto full_model = nn::MakeModel(nn::ModelKind::kGraphSage, cfg.feature_dim,
                                  dataset.num_classes(), /*seed=*/21);
  nn::GraphContext ctx = nn::GraphContext::Build(
      dataset.adjacency().ToGraph(), dataset.MaterializeFeatures());
  const nn::TrainStats full =
      nn::Train(full_model.get(), ctx, train_nodes, full_labels, tc);

  auto sampled_model = nn::MakeModel(nn::ModelKind::kGraphSage, cfg.feature_dim,
                                     dataset.num_classes(), /*seed=*/21);
  nn::SampledTrainSpec spec;
  spec.adj = &dataset.adjacency();
  spec.gather_features = [&dataset](const std::vector<int>& nodes) {
    return dataset.GatherFeatures(nodes);
  };
  const nn::TrainStats sampled = nn::TrainSampled(sampled_model.get(), spec,
                                                  train_nodes, train_labels, tc);

  ASSERT_EQ(full.epoch_losses.size(), sampled.epoch_losses.size());
  for (size_t e = 0; e < full.epoch_losses.size(); ++e) {
    EXPECT_NEAR(sampled.epoch_losses[e], full.epoch_losses[e], 1e-6)
        << "epoch " << e;
  }

  // Inference parity through the exact sampled blocks.
  const std::vector<int> probe = dataset.StridedNodes(40, /*salt=*/2);
  const la::Matrix sampled_logits =
      nn::SampledLogits(sampled_model.get(), spec, probe);
  const la::Matrix full_logits = full_model->Logits(ctx);
  for (size_t i = 0; i < probe.size(); ++i) {
    for (int c = 0; c < sampled_logits.cols(); ++c) {
      EXPECT_NEAR(sampled_logits(static_cast<int>(i), c),
                  full_logits(probe[i], c), 1e-5);
    }
  }
}

TEST(SampledTrainingTest, MiniBatchRunsAreDeterministicAndLearn) {
  data::ScaleGraphConfig cfg;
  cfg.num_nodes = 900;
  cfg.num_blocks = 3;
  cfg.feature_dim = 24;
  cfg.average_degree = 6.0;
  const data::ScaleDataset dataset(cfg, 41);

  const std::vector<int> train_nodes = dataset.StridedNodes(180, /*salt=*/1);
  const std::vector<int> train_labels = dataset.LabelsFor(train_nodes);
  nn::SampledTrainSpec spec;
  spec.adj = &dataset.adjacency();
  spec.gather_features = [&dataset](const std::vector<int>& nodes) {
    return dataset.GatherFeatures(nodes);
  };

  nn::TrainConfig tc;
  tc.epochs = 20;
  tc.sage_fanout = 4;
  tc.batch_nodes = 64;
  tc.seed = 7;

  auto model_a = nn::MakeModel(nn::ModelKind::kGraphSage, cfg.feature_dim,
                               dataset.num_classes(), /*seed=*/33);
  auto model_b = nn::MakeModel(nn::ModelKind::kGraphSage, cfg.feature_dim,
                               dataset.num_classes(), /*seed=*/33);
  const nn::TrainStats a =
      nn::TrainSampled(model_a.get(), spec, train_nodes, train_labels, tc);
  const nn::TrainStats b =
      nn::TrainSampled(model_b.get(), spec, train_nodes, train_labels, tc);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);  // bitwise: same sampling stream

  EXPECT_LT(a.final_loss, a.epoch_losses.front());

  // The trained model beats chance on held-out nodes through exact blocks.
  const std::vector<int> val_nodes = dataset.StridedNodes(120, /*salt=*/2);
  const la::Matrix logits = nn::SampledLogits(model_a.get(), spec, val_nodes);
  const std::vector<int> pred = la::ArgmaxRows(logits);
  const std::vector<int> val_labels = dataset.LabelsFor(val_nodes);
  int correct = 0;
  for (size_t i = 0; i < val_nodes.size(); ++i) {
    if (pred[i] == val_labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(val_nodes.size()),
            0.6);
}

TEST(SampledTrainingDeathTest, GuardsMisuse) {
  const graph::CsrAdjacency adj = TestAdjacency();
  // Zero fanout is a configuration bug, not a request for isolated nodes.
  EXPECT_DEATH(nn::NeighborSampler(&adj, {.fanout = 0, .num_hops = 2,
                                          .seed = 1}),
               "CHECK failed");
  // Duplicate targets would alias logits rows.
  const nn::NeighborSampler sampler(&adj, {.fanout = 2, .num_hops = 2,
                                           .seed = 1});
  EXPECT_DEATH(sampler.SampleBlock({4, 4}, 0, 0), "CHECK failed");
  // Non-SAGE models have no sampled forward path.
  auto gcn = nn::MakeModel(nn::ModelKind::kGcn, 8, 3, 1);
  nn::SampledBlock block;
  ag::Tape tape;
  ag::Var x = tape.Constant(la::Matrix(1, 8));
  EXPECT_DEATH(gcn->ForwardSampled(tape, block, x),
               "no sampled mini-batch forward path");
}

}  // namespace
}  // namespace ppfr

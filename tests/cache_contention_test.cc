// Tests for the multi-process hardening of the disk cache (runner/cache_store
// claims + GC) and the RunCache contention contract built on it: concurrent
// threads AND forked processes sharing one cache dir train each stage exactly
// once, stale claims are taken over, corrupt entries recover under
// contention, and the GC respects size/age bounds without ever evicting a
// claimed entry.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/experiment.h"
#include "la/backend.h"
#include "nn/trainer.h"
#include "runner/cache_store.h"
#include "runner/run_cache.h"
#include "runner/runner.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kEnvSeed = 7;

Scenario Cell(data::DatasetId dataset, nn::ModelKind model, core::MethodKind method,
              int epochs) {
  Scenario cell{dataset, model, method, {}, ""};
  cell.overrides.epochs = epochs;
  return cell;
}

// A sweep exercising every persisted stage (vanilla model, DP/PP contexts,
// the FR solve, whole cells) — the contention suite's unit of work.
Sweep MiniSuiteSweep(int epochs) {
  Sweep sweep;
  sweep.name = "contention_mini";
  for (core::MethodKind method :
       {core::MethodKind::kVanilla, core::MethodKind::kDpFr,
        core::MethodKind::kPpFr}) {
    sweep.cells.push_back(
        Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn, method, epochs));
  }
  return sweep;
}

RunnerOptions QuietOptions() {
  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  opts.retry_backoff_ms = 0;
  return opts;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Runs the sweep against `dir` on a private single-threaded reference
// backend and returns how many nn::Train calls it cost THIS thread's
// process. The private backend keeps the forked children off the process-wide
// ParallelBackend worker pool, which fork(2) does not duplicate.
int64_t RunSweepCountingTrains(const Sweep& sweep, const std::string& dir) {
  const std::unique_ptr<la::Backend> backend =
      la::MakeBackend(la::BackendKind::kReference, /*num_threads=*/1);
  la::ThreadLocalBackendGuard guard(backend.get());
  const int64_t before = nn::TrainInvocationCount();
  RunCache cache(dir);
  const SweepResult result = RunSweep(sweep, &cache, QuietOptions());
  EXPECT_EQ(result.failed_cells, 0);
  return nn::TrainInvocationCount() - before;
}

struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::ConfigureForTest(spec); }
  ~FaultScope() { fault::ConfigureForTest(""); }
};

// Two fork(2)ed processes hammering one cache dir: the claim files must
// serialize every stage compute so the FLEET trains each stage exactly once,
// and neither process may leave a corrupt entry behind. First in the file so
// the parent has not yet spun up any backend worker threads when it forks.
TEST(CacheContentionTest, TwoForkedProcessesTrainEachStageOnce) {
  const std::string dir = FreshDir("contention_fork");
  const Sweep sweep = MiniSuiteSweep(6);

  std::vector<pid_t> children;
  for (int child = 0; child < 2; ++child) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const int64_t trains = RunSweepCountingTrains(sweep, dir);
      std::ofstream(dir + "/trains." + std::to_string(getpid()))
          << trains << "\n";
      // _exit: no gtest teardown or atexit in the child.
      _exit(::testing::Test::HasFailure() ? 1 : 0);
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child " << pid << " status " << status;
  }

  int64_t fleet_trains = 0;
  int reports = 0;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    const std::string name = it.path().filename().string();
    if (name.rfind("trains.", 0) != 0) continue;
    std::ifstream in(it.path());
    int64_t trains = -1;
    in >> trains;
    ASSERT_GE(trains, 0) << name;
    fleet_trains += trains;
    ++reports;
  }
  ASSERT_EQ(reports, 2);

  // The unsharded reference count, measured AFTER the forks (in-memory cache
  // in a scratch dir) so the parent stays backend-thread-free until here.
  const int64_t solo_trains =
      RunSweepCountingTrains(sweep, FreshDir("contention_fork_solo"));
  ASSERT_GT(solo_trains, 0);
  EXPECT_EQ(fleet_trains, solo_trains)
      << "two processes on one cache dir must not double-train any stage";

  // Zero corrupt entries: a third pass over the shared dir loads everything
  // from disk without a single retrain.
  EXPECT_EQ(RunSweepCountingTrains(sweep, dir), 0);
}

// The same contract inside one process: two threads, each with its OWN
// RunCache instance (no shared in-memory futures), sharing only the dir.
TEST(CacheContentionTest, TwoThreadsOneDirTrainEachStageOnce) {
  const std::string dir = FreshDir("contention_threads");
  const Sweep sweep = MiniSuiteSweep(6);
  const int64_t solo_trains =
      RunSweepCountingTrains(sweep, FreshDir("contention_threads_solo"));
  ASSERT_GT(solo_trains, 0);

  const int64_t before = nn::TrainInvocationCount();
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] { RunSweepCountingTrains(sweep, dir); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(nn::TrainInvocationCount() - before, solo_trains)
      << "two threads on one cache dir must not double-train any stage";
  EXPECT_EQ(RunSweepCountingTrains(sweep, dir), 0) << "corrupt or missing entries";
}

// A corrupt entry under contention: both contenders see the checksum failure
// as a miss, exactly one recomputes (claim), and the rewritten entry is
// valid again.
TEST(CacheContentionTest, CorruptEntryRecoversUnderContention) {
  const std::string dir = FreshDir("contention_corrupt");
  const Sweep sweep = MiniSuiteSweep(6);
  ASSERT_GT(RunSweepCountingTrains(sweep, dir), 0);

  // Flip a payload byte in every vanilla-stage entry (this suite has one).
  int corrupted = 0;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    const std::string name = it.path().filename().string();
    if (name.rfind("vanilla-", 0) != 0) continue;
    std::ifstream in(it.path(), std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() - 9] ^= 0x5a;
    std::ofstream out(it.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ++corrupted;
  }
  ASSERT_EQ(corrupted, 1);

  const int64_t before = nn::TrainInvocationCount();
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] { RunSweepCountingTrains(sweep, dir); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(nn::TrainInvocationCount() - before, 1)
      << "exactly one contender retrains the corrupted stage";
  EXPECT_EQ(RunSweepCountingTrains(sweep, dir), 0) << "entry must be valid again";
}

TEST(ClaimTest, ExclusiveCreateProbeAndRelease) {
  const CacheStore store(FreshDir("claim_basic"));
  EXPECT_EQ(store.ProbeClaim("cell", 42), CacheStore::ClaimState::kNone);
  EXPECT_TRUE(store.TryClaim("cell", 42));
  EXPECT_TRUE(std::filesystem::exists(store.ClaimPath("cell", 42)));
  EXPECT_FALSE(store.TryClaim("cell", 42)) << "O_EXCL: one winner";
  EXPECT_EQ(store.ProbeClaim("cell", 42), CacheStore::ClaimState::kHeld);
  store.ReleaseClaim("cell", 42);
  EXPECT_EQ(store.ProbeClaim("cell", 42), CacheStore::ClaimState::kNone);
  EXPECT_TRUE(store.TryClaim("cell", 42));
  store.ReleaseClaim("cell", 42);
  store.ReleaseClaim("cell", 42);  // idempotent

  const CacheStore disabled("");
  EXPECT_TRUE(disabled.TryClaim("cell", 42))
      << "a disabled store has no cross-process concern";
}

TEST(ClaimTest, DeadOwnerPidIsStale) {
  const CacheStore store(FreshDir("claim_dead"));
  // Fabricate the claim a SIGKILL'd shard would leave behind: well-formed,
  // young, but its pid no longer exists (pid_max is far below this value on
  // any Linux config).
  ASSERT_TRUE(store.TryClaim("vanilla", 7));
  {
    std::ofstream out(store.ClaimPath("vanilla", 7), std::ios::trunc);
    out << "pid=999999999\nfingerprint=" << CacheStore::Fingerprint()
        << "\ncreated_unix=9999999999\n";
  }
  EXPECT_EQ(store.ProbeClaim("vanilla", 7), CacheStore::ClaimState::kStale);
  store.BreakClaim("vanilla", 7);
  EXPECT_EQ(store.ProbeClaim("vanilla", 7), CacheStore::ClaimState::kNone);
  EXPECT_TRUE(store.TryClaim("vanilla", 7)) << "takeover re-contends the create";
  store.ReleaseClaim("vanilla", 7);
}

TEST(ClaimTest, OverAgedClaimIsStale) {
  const CacheStore store(FreshDir("claim_aged"));
  ASSERT_TRUE(store.TryClaim("fr", 9));
  // Our own pid is alive, so only the age bound can stale this claim.
  // Backdate the claim's mtime (the staleness clock runs at second
  // granularity) instead of sleeping the test out.
  EXPECT_EQ(store.ProbeClaim("fr", 9), CacheStore::ClaimState::kHeld);
  std::filesystem::last_write_time(
      store.ClaimPath("fr", 9),
      std::filesystem::file_time_type::clock::now() - std::chrono::seconds(5));
  EXPECT_EQ(store.ProbeClaim("fr", 9, /*stale_ms=*/1000),
            CacheStore::ClaimState::kStale);
  EXPECT_EQ(store.ProbeClaim("fr", 9), CacheStore::ClaimState::kHeld)
      << "the default bound is far larger";
  store.ReleaseClaim("fr", 9);
}

TEST(ClaimTest, InjectedClaimFaultSkipsTheCreate) {
  const CacheStore store(FreshDir("claim_fault"));
  FaultScope scope("cache_store.claim:2");
  EXPECT_TRUE(store.TryClaim("cell", 1));  // hit 1: no fire
  store.ReleaseClaim("cell", 1);
  EXPECT_FALSE(store.TryClaim("cell", 1)) << "hit 2 fires: spurious failure";
  EXPECT_EQ(store.ProbeClaim("cell", 1), CacheStore::ClaimState::kNone)
      << "a faulted TryClaim must not leave a claim file behind";
  EXPECT_TRUE(store.TryClaim("cell", 1)) << "the re-contend wins";
  store.ReleaseClaim("cell", 1);
}

// A dead claimant blocking a stage a live sweep needs: the waiter's poll
// loop must classify the claim stale, break it, and complete the compute in
// bounded time.
TEST(ClaimTest, SweepTakesOverDeadClaimants) {
  const std::string dir = FreshDir("claim_takeover");
  const Sweep sweep = MiniSuiteSweep(6);

  // Pre-claim the vanilla stage key under a dead pid.
  const Scenario cell = sweep.cells[0];
  const core::MethodConfig config = cell.ResolvedConfig();
  const core::ExperimentEnv env = core::MakeEnv(cell.dataset, kEnvSeed);
  const uint64_t key = RunCache::VanillaKey(cell.model, env, config);
  const CacheStore store(dir);
  ASSERT_TRUE(store.TryClaim("vanilla", key));
  {
    std::ofstream out(store.ClaimPath("vanilla", key), std::ios::trunc);
    out << "pid=999999999\nfingerprint=" << CacheStore::Fingerprint()
        << "\ncreated_unix=9999999999\n";
  }

  RunCache cache(dir);
  const SweepResult result = RunSweep(sweep, &cache, QuietOptions());
  EXPECT_EQ(result.failed_cells, 0) << "stale claim must not wedge the sweep";
  EXPECT_EQ(store.ProbeClaim("vanilla", key), CacheStore::ClaimState::kNone)
      << "the takeover's own claim is released after the compute";
}

// ---- GC ---------------------------------------------------------------

// Stores a synthetic entry and backdates its mtime so a FRESH CacheStore
// instance (whose in-process touch map is empty) sees it as idle.
void StoreAged(const CacheStore& store, uint64_t key, size_t bytes,
               int64_t age_seconds) {
  store.Store("cell", key, std::string(bytes, 'x'));
  const std::string path = store.EntryPath("cell", key);
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() -
                std::chrono::seconds(age_seconds));
}

TEST(CacheGcTest, EvictsLeastRecentlyUsedOverBudget) {
  const std::string dir = FreshDir("gc_lru");
  {
    const CacheStore writer(dir);
    StoreAged(writer, 1, 1000, 3600);  // oldest
    StoreAged(writer, 2, 1000, 1800);
    StoreAged(writer, 3, 1000, 60);  // newest
  }
  const CacheStore store(dir);  // fresh instance: mtimes alone order the LRU
  // Entries carry a fixed serialization header, so size them from disk.
  const uint64_t entry_bytes =
      std::filesystem::file_size(store.EntryPath("cell", 3));
  CacheStore::GcOptions options;
  options.max_bytes = static_cast<int64_t>(entry_bytes + entry_bytes / 2);
  const CacheStore::GcResult result = store.GarbageCollect(options);
  EXPECT_EQ(result.entries_before, 3);
  EXPECT_EQ(result.bytes_before, 3 * entry_bytes);
  EXPECT_EQ(result.evicted_entries, 2);
  EXPECT_EQ(result.evicted_bytes, 2 * entry_bytes);
  EXPECT_FALSE(std::filesystem::exists(store.EntryPath("cell", 1)));
  EXPECT_FALSE(std::filesystem::exists(store.EntryPath("cell", 2)));
  EXPECT_TRUE(std::filesystem::exists(store.EntryPath("cell", 3)))
      << "the most recently used entry survives";
  // The refreshed index lists exactly the survivors.
  EXPECT_TRUE(std::filesystem::exists(store.IndexPath()));
  std::ifstream in(store.IndexPath());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string index = buffer.str();
  EXPECT_EQ(index.find(std::filesystem::path(store.EntryPath("cell", 1))
                           .filename()
                           .string()),
            std::string::npos);
  EXPECT_NE(index.find(std::filesystem::path(store.EntryPath("cell", 3))
                           .filename()
                           .string()),
            std::string::npos);
}

TEST(CacheGcTest, EvictsEntriesIdleBeyondTheAgeBound) {
  const std::string dir = FreshDir("gc_age");
  {
    const CacheStore writer(dir);
    StoreAged(writer, 1, 500, 3600);
    StoreAged(writer, 2, 500, 0);
  }
  const CacheStore store(dir);
  CacheStore::GcOptions options;
  options.max_age_seconds = 600;
  const CacheStore::GcResult result = store.GarbageCollect(options);
  EXPECT_EQ(result.evicted_entries, 1);
  EXPECT_FALSE(std::filesystem::exists(store.EntryPath("cell", 1)));
  EXPECT_TRUE(std::filesystem::exists(store.EntryPath("cell", 2)));
}

TEST(CacheGcTest, InProcessTouchRefreshesAnAgedEntry) {
  const std::string dir = FreshDir("gc_touch");
  {
    const CacheStore writer(dir);
    StoreAged(writer, 1, 500, 3600);
  }
  // A fresh instance (no Store-time touch) whose only traffic is one Load:
  // that read alone must spare the entry from the age bound.
  const CacheStore store(dir);
  std::string payload;
  ASSERT_TRUE(store.Load("cell", 1, &payload));
  CacheStore::GcOptions options;
  options.max_age_seconds = 600;
  EXPECT_EQ(store.GarbageCollect(options).evicted_entries, 0)
      << "a recent in-process Load outranks the stale mtime";
}

TEST(CacheGcTest, NeverEvictsClaimedEntries) {
  const std::string dir = FreshDir("gc_claimed");
  const CacheStore store(dir);
  StoreAged(store, 1, 1000, 3600);
  StoreAged(store, 2, 1000, 3600);
  ASSERT_TRUE(store.TryClaim("cell", 1));
  CacheStore::GcOptions options;
  options.max_bytes = 1;  // over budget: everything is an eviction candidate
  const CacheStore::GcResult result = store.GarbageCollect(options);
  EXPECT_EQ(result.kept_claimed, 1);
  EXPECT_EQ(result.evicted_entries, 1);
  EXPECT_TRUE(std::filesystem::exists(store.EntryPath("cell", 1)))
      << "a claimant is about to rewrite this entry";
  EXPECT_TRUE(std::filesystem::exists(store.ClaimPath("cell", 1)))
      << "claim files are not entries and are left alone";
  EXPECT_FALSE(std::filesystem::exists(store.EntryPath("cell", 2)));
  store.ReleaseClaim("cell", 1);
}

TEST(CacheGcTest, UnboundedAndDisabledAreNoOps) {
  const std::string dir = FreshDir("gc_noop");
  const CacheStore store(dir);
  StoreAged(store, 1, 500, 3600);
  const CacheStore::GcResult unbounded = store.GarbageCollect({});
  EXPECT_EQ(unbounded.entries_before, 1);
  EXPECT_EQ(unbounded.evicted_entries, 0);
  EXPECT_TRUE(std::filesystem::exists(store.EntryPath("cell", 1)));

  const CacheStore disabled("");
  const CacheStore::GcResult off = disabled.GarbageCollect({});
  EXPECT_EQ(off.entries_before, 0);
  EXPECT_EQ(off.evicted_entries, 0);
}

}  // namespace
}  // namespace ppfr::runner

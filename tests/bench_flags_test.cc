// Tests for the bench front-end scaffolding: Flags strict parsing, the
// unknown-flag rejection, --shard=i/N parsing, and PreflightOutputPaths —
// the fail-fast probe that keeps a long sweep from dying on its artifact
// write. The death expectations pin the usage-error contract the bench
// binaries share: exit code 2, message naming the offending flag.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/flags.h"

namespace ppfr::bench {
namespace {

// Builds a Flags object as if the strings had been passed on a command line.
Flags MakeFlags(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_under_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, StrictNumericParsingDiesNamingTheFlag) {
  const Flags flags = MakeFlags({"--epochs=12abc", "--seed=-1", "--lr=fast"});
  EXPECT_EXIT(flags.GetInt("epochs", 1), ::testing::ExitedWithCode(2),
              "epochs");
  EXPECT_EXIT(flags.GetUint64("seed", 1), ::testing::ExitedWithCode(2),
              "seed");
  EXPECT_EXIT(flags.GetDouble("lr", 0.1), ::testing::ExitedWithCode(2), "lr");

  // Well-formed values parse exactly; absent flags yield the default.
  const Flags ok = MakeFlags({"--epochs=7", "--fanout=5"});
  EXPECT_EQ(ok.GetInt("epochs", 1), 7);
  EXPECT_EQ(ok.GetInt("fanout", 1), 5);
  EXPECT_EQ(ok.GetInt("batch_nodes", 256), 256);
}

TEST(FlagsTest, UnknownFlagRejectionListsTheTypo) {
  const Flags flags = MakeFlags({"--epoch=10", "--fanout=5"});
  const std::vector<std::string> unknown =
      flags.UnknownFlags({"epochs", "fanout"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "epoch");
  EXPECT_EXIT(RejectUnknownFlags(flags, {"epochs", "fanout"}),
              ::testing::ExitedWithCode(kExitUsage), "unknown flag --epoch");
}

TEST(ShardSpecTest, ParsesAndRejectsMalformedShards) {
  const Flags ok = MakeFlags({"--shard=1/3", "--shard_dir=/tmp"});
  const ShardSpec spec = ShardFromFlags(ok);
  EXPECT_EQ(spec.index, 1);
  EXPECT_EQ(spec.count, 3);

  for (const char* bad : {"3/3", "-1/3", "0/0", "1of3", "2/3x"}) {
    const Flags flags =
        MakeFlags({std::string("--shard=") + bad, "--shard_dir=/tmp"});
    EXPECT_EXIT(ShardFromFlags(flags), ::testing::ExitedWithCode(kExitUsage),
                "--shard wants i/N")
        << bad;
  }
  const Flags no_dir = MakeFlags({"--shard=0/2"});
  EXPECT_EXIT(ShardFromFlags(no_dir), ::testing::ExitedWithCode(kExitUsage),
              "--shard_dir");
}

// The preflight probe for the scale artifact path: a fresh --json_dir is
// created up front (the same create_directories the real write performs) and
// the probe file is cleaned up, so the later BENCH_scale.json write cannot
// be the first thing to discover a bad path.
TEST(PreflightOutputPathsTest, CreatesTheArtifactDirAndRemovesTheProbe) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "ppfr_scale_artifacts";
  std::filesystem::remove_all(dir);
  const Flags flags = MakeFlags({"--json_dir=" + dir.string()});
  PreflightOutputPaths(flags);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_FALSE(std::filesystem::exists(dir / ".ppfr_preflight"));
  std::filesystem::remove_all(dir);
}

TEST(PreflightOutputPathsTest, DiesNamingJsonDirWhenThePathCannotBeADir) {
  // A regular file where a path component should be a directory makes the
  // probe's create_directories/write fail for any user, root included.
  const std::filesystem::path blocker =
      std::filesystem::path(::testing::TempDir()) / "ppfr_preflight_blocker";
  std::filesystem::remove_all(blocker);
  std::ofstream(blocker.string()) << "not a directory";
  const std::string bad = (blocker / "nested").string();
  const Flags flags = MakeFlags({"--json_dir=" + bad});
  EXPECT_EXIT(PreflightOutputPaths(flags),
              ::testing::ExitedWithCode(kExitUsage), "--json_dir");
  std::filesystem::remove_all(blocker);
}

}  // namespace
}  // namespace ppfr::bench

#include <gtest/gtest.h>

#include "fairness/bias_metric.h"
#include "graph/jaccard.h"
#include "test_util.h"

namespace ppfr::fairness {
namespace {

TEST(BiasMetricTest, ZeroForConstantPredictions) {
  const auto data = ppfr::testing::SmallSbm(1, 80, 3);
  const SimilarityContext sim = SimilarityContext::FromGraph(data.graph);
  la::Matrix uniform(data.graph.num_nodes(), 3, 1.0 / 3.0);
  EXPECT_NEAR(Bias(uniform, *sim.laplacian), 0.0, 1e-12);
}

TEST(BiasMetricTest, MatchesBruteForcePairwiseSum) {
  const auto data = ppfr::testing::SmallSbm(2, 60, 3);
  const SimilarityContext sim = SimilarityContext::FromGraph(data.graph);
  Rng rng(5);
  const la::Matrix y = ppfr::testing::RandomMatrix(data.graph.num_nodes(), 3, &rng);

  double brute = 0.0;
  const la::CsrMatrix& s = sim.similarity;
  for (int i = 0; i < s.rows(); ++i) {
    for (int64_t k = s.row_ptr()[i]; k < s.row_ptr()[i + 1]; ++k) {
      const int j = s.col_idx()[k];
      if (i == j) continue;
      double dist_sq = 0.0;
      for (int c = 0; c < y.cols(); ++c) {
        dist_sq += (y(i, c) - y(j, c)) * (y(i, c) - y(j, c));
      }
      brute += 0.5 * s.values()[k] * dist_sq;
    }
  }
  EXPECT_NEAR(RawBias(y, *sim.laplacian), brute, 1e-8);
  EXPECT_NEAR(Bias(y, *sim.laplacian), brute / y.rows(), 1e-8);
}

TEST(BiasMetricTest, EqualizingSimilarNodesLowersBias) {
  const auto data = ppfr::testing::SmallSbm(3, 80, 3);
  const SimilarityContext sim = SimilarityContext::FromGraph(data.graph);
  Rng rng(6);
  la::Matrix y = ppfr::testing::RandomMatrix(data.graph.num_nodes(), 3, &rng);
  const double before = Bias(y, *sim.laplacian);

  // Copy each node's prediction onto its neighbours (one smoothing sweep).
  la::Matrix smoothed = y;
  for (int v = 0; v < data.graph.num_nodes(); ++v) {
    const auto nbrs = data.graph.Neighbors(v);
    if (nbrs.empty()) continue;
    for (int c = 0; c < y.cols(); ++c) {
      double mean = y(v, c);
      for (int u : nbrs) mean += y(u, c);
      smoothed(v, c) = mean / static_cast<double>(nbrs.size() + 1);
    }
  }
  EXPECT_LT(Bias(smoothed, *sim.laplacian), before);
}

TEST(BiasMetricTest, BiasIsNonNegative) {
  const auto data = ppfr::testing::SmallSbm(4, 70, 3);
  const SimilarityContext sim = SimilarityContext::FromGraph(data.graph);
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const la::Matrix y = ppfr::testing::RandomMatrix(data.graph.num_nodes(), 4, &rng);
    EXPECT_GE(Bias(y, *sim.laplacian), -1e-10);
  }
}

TEST(SimilarityContextTest, LaplacianSharedAndConsistent) {
  const auto data = ppfr::testing::SmallSbm(5, 60, 3);
  const SimilarityContext sim = SimilarityContext::FromGraph(data.graph);
  ASSERT_NE(sim.laplacian, nullptr);
  EXPECT_EQ(sim.laplacian->rows(), data.graph.num_nodes());
  // L = D - S: off-diagonal entries are negated similarities.
  const la::CsrMatrix& s = sim.similarity;
  for (int i = 0; i < std::min(10, s.rows()); ++i) {
    for (int64_t k = s.row_ptr()[i]; k < s.row_ptr()[i + 1]; ++k) {
      const int j = s.col_idx()[k];
      if (i == j) continue;
      EXPECT_NEAR(sim.laplacian->At(i, j), -s.values()[k], 1e-12);
    }
  }
}

}  // namespace
}  // namespace ppfr::fairness

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/fr.h"
#include "core/methods.h"
#include "core/metrics.h"

namespace ppfr::core {
namespace {

// One small shared environment for the heavier pipeline tests.
const ExperimentEnv& SmallEnv() {
  static const ExperimentEnv* env = [] {
    auto* e = new ExperimentEnv(MakeEnv(data::DatasetId::kEnzymesLike, 7));
    return e;
  }();
  return *env;
}

MethodConfig SmallConfig() {
  MethodConfig cfg = DefaultMethodConfig(data::DatasetId::kEnzymesLike,
                                         nn::ModelKind::kGcn);
  cfg.train.epochs = 80;
  return cfg;
}

TEST(MetricsTest, DeltaFormulaMatchesEq22) {
  EvalResult vanilla;
  vanilla.accuracy = 0.8;
  vanilla.bias = 0.5;
  vanilla.risk_auc = 0.9;
  EvalResult method;
  method.accuracy = 0.76;  // -5%
  method.bias = 0.4;       // -20%
  method.risk_auc = 0.855;  // -5%
  const DeltaMetrics d = ComputeDeltas(method, vanilla);
  EXPECT_NEAR(d.d_acc, -0.05, 1e-12);
  EXPECT_NEAR(d.d_bias, -0.20, 1e-12);
  EXPECT_NEAR(d.d_risk, -0.05, 1e-12);
  EXPECT_NEAR(d.combined, (-0.20) * (-0.05) / 0.05, 1e-9);
  EXPECT_GT(d.combined, 0.0);  // bias & risk both down -> positive
}

TEST(MetricsTest, DeltaSignConventions) {
  EvalResult vanilla;
  vanilla.accuracy = 0.8;
  vanilla.bias = 0.5;
  vanilla.risk_auc = 0.9;
  // Bias down but risk up -> negative combined delta.
  EvalResult method = vanilla;
  method.bias = 0.4;
  method.risk_auc = 0.95;
  method.accuracy = 0.79;
  EXPECT_LT(ComputeDeltas(method, vanilla).combined, 0.0);
}

TEST(ExperimentEnvTest, BuildsConsistentViews) {
  const ExperimentEnv& env = SmallEnv();
  EXPECT_EQ(env.ctx.num_nodes(), env.dataset.data.graph.num_nodes());
  EXPECT_EQ(env.labels().size(), static_cast<size_t>(env.ctx.num_nodes()));
  EXPECT_FALSE(env.attack_pairs.connected.empty());
  const EvalInputs inputs = env.Eval();
  EXPECT_EQ(inputs.ctx, &env.ctx);
  EXPECT_NE(inputs.laplacian, nullptr);
}

TEST(MethodsTest, NamesAndComparisonSet) {
  EXPECT_EQ(MethodName(MethodKind::kVanilla), "Vanilla");
  EXPECT_EQ(MethodName(MethodKind::kPpFr), "PPFR");
  const auto methods = ComparisonMethods();
  EXPECT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods.front(), MethodKind::kReg);
  EXPECT_EQ(methods.back(), MethodKind::kPpFr);
}

TEST(MethodsTest, VanillaRunIsDeterministic) {
  const ExperimentEnv& env = SmallEnv();
  const MethodConfig cfg = SmallConfig();
  const MethodRun a = RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
  const MethodRun b = RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
  EXPECT_DOUBLE_EQ(a.eval.accuracy, b.eval.accuracy);
  EXPECT_DOUBLE_EQ(a.eval.bias, b.eval.bias);
  EXPECT_DOUBLE_EQ(a.eval.risk_auc, b.eval.risk_auc);
}

TEST(MethodsTest, VanillaBeatsChanceAndLeaks) {
  const ExperimentEnv& env = SmallEnv();
  const MethodRun run =
      RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, SmallConfig());
  EXPECT_GT(run.eval.accuracy, 1.5 / env.dataset.data.num_classes);
  // A trained homophilous GNN leaks edges well above chance.
  EXPECT_GT(run.eval.risk_auc, 0.55);
  EXPECT_GT(run.eval.bias, 0.0);
}

TEST(MethodsTest, RegReducesBias) {
  const ExperimentEnv& env = SmallEnv();
  const MethodConfig cfg = SmallConfig();
  const MethodRun vanilla =
      RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
  const MethodRun reg = RunMethod(MethodKind::kReg, nn::ModelKind::kGcn, env, cfg);
  EXPECT_LT(reg.eval.bias, vanilla.eval.bias);
}

TEST(MethodsTest, DpContextPerturbsStructure) {
  const ExperimentEnv& env = SmallEnv();
  MethodConfig cfg = SmallConfig();
  cfg.dp_epsilon = 4.0;
  const nn::GraphContext dp_ctx = MakeDpContext(env, cfg);
  EXPECT_EQ(dp_ctx.num_nodes(), env.ctx.num_nodes());
  // EdgeRand at eps=4 flips a noticeable number of cells.
  int64_t differences = 0;
  for (const auto& e : env.dataset.data.graph.Edges()) {
    differences += !dp_ctx.graph.HasEdge(e.u, e.v);
  }
  for (const auto& e : dp_ctx.graph.Edges()) {
    differences += !env.dataset.data.graph.HasEdge(e.u, e.v);
  }
  EXPECT_GT(differences, 0);
}

TEST(MethodsTest, PpContextAddsHeterophilicEdgesOnly) {
  const ExperimentEnv& env = SmallEnv();
  const MethodConfig cfg = SmallConfig();
  auto model = TrainFresh(nn::ModelKind::kGcn, env, env.ctx, cfg, 0.0);
  const nn::GraphContext pp_ctx = MakePpContext(env, model.get(), 0.5, 11);
  EXPECT_GT(pp_ctx.graph.num_edges(), env.dataset.data.graph.num_edges());
  // Original edges are all preserved (PP only ADDS).
  for (const auto& e : env.dataset.data.graph.Edges()) {
    EXPECT_TRUE(pp_ctx.graph.HasEdge(e.u, e.v));
  }
}

TEST(FrTest, WeightsAreFeasibleAndNontrivial) {
  const ExperimentEnv& env = SmallEnv();
  const MethodConfig cfg = SmallConfig();
  auto model = TrainFresh(nn::ModelKind::kGcn, env, env.ctx, cfg, 0.0);
  const FrOutput fr = ComputeFr(model.get(), env, cfg);
  ASSERT_EQ(fr.w.size(), env.train_nodes().size());
  double norm_sq = 0.0, sum = 0.0, max_abs = 0.0;
  for (double w : fr.w) {
    EXPECT_GE(w, -1.0 - 1e-6);
    EXPECT_LE(w, 1.0 + 1e-6);
    norm_sq += w * w;
    sum += w;
    max_abs = std::max(max_abs, std::fabs(w));
  }
  EXPECT_LE(norm_sq, cfg.fr.alpha * static_cast<double>(fr.w.size()) + 1e-4);
  if (cfg.fr.zero_sum) {
    EXPECT_NEAR(sum, 0.0, 1e-3);
  }
  EXPECT_GT(max_abs, 0.05) << "reweighting should actually move some weights";
  // sample_weights = 1 + w.
  for (size_t i = 0; i < fr.w.size(); ++i) {
    EXPECT_DOUBLE_EQ(fr.sample_weights[i], 1.0 + fr.w[i]);
  }
}

TEST(FrTest, PredictedObjectiveIsNonPositive) {
  // The QCLP minimises Σ w·I_bias starting from w = 0, so the optimum is <= 0
  // (predicting a bias decrease).
  const ExperimentEnv& env = SmallEnv();
  const MethodConfig cfg = SmallConfig();
  auto model = TrainFresh(nn::ModelKind::kGcn, env, env.ctx, cfg, 0.0);
  const FrOutput fr = ComputeFr(model.get(), env, cfg);
  EXPECT_LE(fr.objective, 1e-9);
}

TEST(MethodsTest, PpfrProducesFrWeights) {
  const ExperimentEnv& env = SmallEnv();
  const MethodRun run =
      RunMethod(MethodKind::kPpFr, nn::ModelKind::kGcn, env, SmallConfig());
  EXPECT_EQ(run.fr_weights.size(), env.train_nodes().size());
  EXPECT_NE(run.model, nullptr);
}

TEST(DefaultConfigTest, CoversAllDatasets) {
  for (data::DatasetId id :
       {data::DatasetId::kCoraLike, data::DatasetId::kCiteseerLike,
        data::DatasetId::kPubmedLike, data::DatasetId::kEnzymesLike,
        data::DatasetId::kCreditLike}) {
    for (nn::ModelKind kind :
         {nn::ModelKind::kGcn, nn::ModelKind::kGat, nn::ModelKind::kGraphSage}) {
      const MethodConfig cfg = DefaultMethodConfig(id, kind);
      EXPECT_GT(cfg.train.epochs, 0);
      EXPECT_GT(cfg.lambda, 0.0);
      EXPECT_GT(cfg.dp_epsilon, 0.0);
      EXPECT_GT(cfg.finetune_scale, 0.0);
    }
  }
  EXPECT_TRUE(
      DefaultMethodConfig(data::DatasetId::kPubmedLike, nn::ModelKind::kGcn)
          .use_lap_graph);
}

}  // namespace
}  // namespace ppfr::core

// Tests for the scenario-runner subsystem: content-hash cache keys that are
// stable across processes, stage-cached results that are bitwise identical
// to cold runs, the parallel cell scheduler's parity with the serial order,
// the "vanilla trains exactly once" trainer-invocation contract, and the
// uniform JSON artifact schema.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "influence/param_vector.h"
#include "nn/trainer.h"
#include "runner/run_cache.h"
#include "runner/runner.h"
#include "runner/scenario.h"
#include "test_util.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kEnvSeed = 7;

// A MethodConfig with every key-relevant field pinned explicitly, so the
// key goldens depend only on the hash schema — not on the paper defaults.
core::MethodConfig PinnedConfig() {
  core::MethodConfig cfg;
  cfg.train.epochs = 50;
  cfg.train.lr = 0.05;
  cfg.train.weight_decay = 1e-4;
  cfg.train.sage_fanout = 4;
  cfg.train.seed = 3;
  cfg.lambda = 1e-3;
  cfg.dp_epsilon = 2.0;
  cfg.use_lap_graph = false;
  cfg.pp_gamma = 0.25;
  cfg.finetune_scale = 0.5;
  cfg.finetune_epochs = 0;
  cfg.finetune_lr = 2e-3;
  cfg.fr.alpha = 0.8;
  cfg.fr.beta = 0.2;
  cfg.fr.zero_sum = true;
  cfg.fr.influence.cg.damping = 0.02;
  cfg.fr.influence.cg.max_iterations = 20;
  cfg.fr.influence.cg.tolerance = 1e-6;
  cfg.fr.influence.cg.hvp_step = 1e-4;
  cfg.seed = 11;
  return cfg;
}

core::ExperimentEnv IdentityOnlyEnv(data::DatasetId id, uint64_t env_seed) {
  core::ExperimentEnv env;
  env.id = id;
  env.env_seed = env_seed;
  return env;
}

// Small sweeps reuse one environment build per dataset across all tests.
RunCache& SharedCache() {
  static RunCache* cache = new RunCache();
  return *cache;
}

Scenario Cell(data::DatasetId dataset, nn::ModelKind model, core::MethodKind method,
              int epochs) {
  Scenario cell{dataset, model, method, {}, ""};
  cell.overrides.epochs = epochs;
  return cell;
}

void ExpectEvalBitwiseEq(const core::EvalResult& a, const core::EvalResult& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.bias, b.bias);
  EXPECT_EQ(a.risk_auc, b.risk_auc);
  EXPECT_EQ(a.delta_d, b.delta_d);
}

TEST(KeyHasherTest, GoldenValuesStableAcrossProcesses) {
  // Content hashes must not involve addresses or iteration order; these
  // literals pin the schema so any process, on any run, produces the same
  // keys for the same logical inputs. Changing them is a cache-format break
  // (update the literals deliberately if the key schema evolves).
  const core::ExperimentEnv env = IdentityOnlyEnv(data::DatasetId::kCoraLike, 123);
  const core::MethodConfig cfg = PinnedConfig();

  EXPECT_EQ(RunCache::EnvKey(data::DatasetId::kCoraLike, 123),
            0xcda4452e6213209eULL);
  EXPECT_EQ(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            0x6b4731a3f0028329ULL);
  EXPECT_EQ(RunCache::DpKey(env, cfg), 0xdc379259979ac35fULL);
  EXPECT_EQ(RunCache::PpKey(nn::ModelKind::kGcn, env, cfg), 0x0cea453f034b7143ULL);
  EXPECT_EQ(RunCache::FrKey(nn::ModelKind::kGcn, env, cfg), 0xec87869b3493f788ULL);

  // The namespace tags must actually namespace: stages whose remaining
  // fields coincide still get distinct keys (guards the const char* → bool
  // overload trap in KeyHasher::Mix).
  EXPECT_NE(KeyHasher().Mix("env").hash(), KeyHasher().Mix("cell").hash());
  EXPECT_NE(KeyHasher().Mix("env").hash(), KeyHasher().Mix(true).hash());
}

TEST(KeyHasherTest, KeysDistinguishStageInputs) {
  const core::ExperimentEnv env = IdentityOnlyEnv(data::DatasetId::kCoraLike, 123);
  const core::MethodConfig cfg = PinnedConfig();

  // Rebuilding identical inputs reproduces the key.
  EXPECT_EQ(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGcn,
                                 IdentityOnlyEnv(data::DatasetId::kCoraLike, 123),
                                 PinnedConfig()));

  // Every identity and stage-prefix field separates keys.
  EXPECT_NE(RunCache::EnvKey(data::DatasetId::kCoraLike, 123),
            RunCache::EnvKey(data::DatasetId::kCoraLike, 124));
  EXPECT_NE(RunCache::EnvKey(data::DatasetId::kCoraLike, 123),
            RunCache::EnvKey(data::DatasetId::kCiteseerLike, 123));
  EXPECT_NE(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGat, env, cfg));
  core::MethodConfig other = cfg;
  other.seed = 12;
  EXPECT_NE(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGcn, env, other));
  other = cfg;
  other.train.epochs = 51;
  EXPECT_NE(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGcn, env, other));
  other = cfg;
  other.dp_epsilon = 3.0;
  EXPECT_NE(RunCache::DpKey(env, cfg), RunCache::DpKey(env, other));
  other = cfg;
  other.use_lap_graph = true;
  EXPECT_NE(RunCache::DpKey(env, cfg), RunCache::DpKey(env, other));
  other = cfg;
  other.pp_gamma = 0.5;
  EXPECT_NE(RunCache::PpKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::PpKey(nn::ModelKind::kGcn, env, other));
  other = cfg;
  other.fr.zero_sum = false;
  EXPECT_NE(RunCache::FrKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::FrKey(nn::ModelKind::kGcn, env, other));

  // The DP perturbation doesn't depend on the model or its training
  // schedule (the cache shares one DP context across GCN/GAT/GraphSage
  // cells), so train-prefix fields must not reach DpKey.
  other = cfg;
  other.train.epochs = 99;
  other.train.lr = 0.5;
  EXPECT_EQ(RunCache::DpKey(env, cfg), RunCache::DpKey(env, other));

  // Cell keys hash the resolved config, never the display label.
  Scenario a = Cell(data::DatasetId::kCoraLike, nn::ModelKind::kGcn,
                    core::MethodKind::kPpFr, 50);
  Scenario b = a;
  b.label = "renamed";
  EXPECT_EQ(RunCache::CellKey(a, 123), RunCache::CellKey(b, 123));
  b = a;
  b.overrides.finetune_epochs = 9;
  EXPECT_NE(RunCache::CellKey(a, 123), RunCache::CellKey(b, 123));
  EXPECT_NE(RunCache::CellKey(a, 123), RunCache::CellKey(a, 124));
}

TEST(RunCacheTest, CachedStagesBitwiseIdenticalToColdRuns) {
  const auto env = SharedCache().Env(data::DatasetId::kEnzymesLike, kEnvSeed);
  core::MethodConfig cfg =
      core::DefaultMethodConfig(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn);
  cfg.train.epochs = 8;

  for (core::MethodKind method : {core::MethodKind::kDpFr, core::MethodKind::kPpFr}) {
    SCOPED_TRACE(core::MethodName(method));
    // Cold: the historical path — vanilla retrained inside the method run.
    const core::MethodRun cold =
        core::RunMethod(method, nn::ModelKind::kGcn, *env, cfg, nullptr);
    // Warm: stages resumed from the shared cache (vanilla model, FR solve,
    // DP/PP context all come out of the memo after the first method).
    RunCache cache;
    const core::MethodRun warm =
        core::RunMethod(method, nn::ModelKind::kGcn, *env, cfg, &cache);
    ExpectEvalBitwiseEq(cold.eval, warm.eval);
    ASSERT_EQ(cold.fr_weights.size(), warm.fr_weights.size());
    for (size_t i = 0; i < cold.fr_weights.size(); ++i) {
      ASSERT_EQ(cold.fr_weights[i], warm.fr_weights[i]) << "weight " << i;
    }
    const std::vector<double> cold_params =
        influence::FlattenValues(cold.model->Params());
    const std::vector<double> warm_params =
        influence::FlattenValues(warm.model->Params());
    ASSERT_EQ(cold_params.size(), warm_params.size());
    for (size_t i = 0; i < cold_params.size(); ++i) {
      ASSERT_EQ(cold_params[i], warm_params[i]) << "param " << i;
    }

    // A second run through the same cache is a pure cell hit with identical
    // results.
    const core::MethodRun again =
        core::RunMethod(method, nn::ModelKind::kGcn, *env, cfg, &cache);
    ExpectEvalBitwiseEq(warm.eval, again.eval);
  }
}

TEST(RunnerTest, Table4EquivalentSweepMatchesPreRefactorAndTrainsVanillaOnce) {
  // A bench_table4-equivalent sweep (every method × two models on one
  // dataset) through the runner must produce numerically identical tables to
  // the pre-refactor per-method pipelines while training vanilla exactly
  // once per (dataset, model, seed).
  const int epochs = 8;
  const std::vector<nn::ModelKind> models{nn::ModelKind::kGcn,
                                          nn::ModelKind::kGraphSage};
  Sweep sweep;
  sweep.name = "table4_mini";
  for (nn::ModelKind model : models) {
    for (core::MethodKind method :
         {core::MethodKind::kVanilla, core::MethodKind::kReg,
          core::MethodKind::kDpReg, core::MethodKind::kDpFr,
          core::MethodKind::kPpFr}) {
      sweep.cells.push_back(
          Cell(data::DatasetId::kEnzymesLike, model, method, epochs));
    }
  }

  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  RunCache cache;
  const int64_t trains_before = nn::TrainInvocationCount();
  const SweepResult result = RunSweep(sweep, &cache, opts);
  const int64_t trains = nn::TrainInvocationCount() - trains_before;

  // Per model: 1 vanilla + 1 Reg + 1 DPReg + 2 fine-tunes = 5 Train calls.
  // The pre-refactor path took 7: DPFR and PPFR each retrained their own
  // vanilla (TrainFresh + Finetune = 2 Train calls apiece on top of the
  // baseline's 3).
  EXPECT_EQ(trains, static_cast<int64_t>(5 * models.size()));
  EXPECT_EQ(result.trainer_invocations, trains);
  EXPECT_EQ(result.cache_stats.vanilla.misses,
            static_cast<int64_t>(models.size()));

  // Numerically identical to the pre-refactor per-method pipelines.
  const auto env = SharedCache().Env(data::DatasetId::kEnzymesLike, kEnvSeed);
  for (nn::ModelKind model : models) {
    core::MethodConfig cfg =
        core::DefaultMethodConfig(data::DatasetId::kEnzymesLike, model);
    cfg.train.epochs = epochs;
    const core::MethodRun vanilla =
        core::RunMethod(core::MethodKind::kVanilla, model, *env, cfg, nullptr);
    for (const CellResult& cell : result.cells) {
      if (cell.scenario.model != model) continue;
      SCOPED_TRACE(std::string(nn::ModelKindName(model)) + "/" +
                   core::MethodName(cell.scenario.method));
      const core::MethodRun fresh =
          core::RunMethod(cell.scenario.method, model, *env, cfg, nullptr);
      ExpectEvalBitwiseEq(fresh.eval, cell.run->eval);
      if (cell.scenario.method != core::MethodKind::kVanilla) {
        const core::DeltaMetrics want = core::ComputeDeltas(fresh.eval, vanilla.eval);
        EXPECT_EQ(want.d_acc, cell.delta.d_acc);
        EXPECT_EQ(want.d_bias, cell.delta.d_bias);
        EXPECT_EQ(want.d_risk, cell.delta.d_risk);
        EXPECT_EQ(want.combined, cell.delta.combined);
      }
    }
  }
}

TEST(SchedulerTest, ParallelCellsMatchSerialOrderBitwiseOn2x2x3Grid) {
  const int epochs = 6;
  Sweep sweep;
  sweep.name = "grid_2x2x3";
  for (data::DatasetId dataset :
       {data::DatasetId::kEnzymesLike, data::DatasetId::kCreditLike}) {
    for (nn::ModelKind model : {nn::ModelKind::kGcn, nn::ModelKind::kGraphSage}) {
      for (core::MethodKind method : {core::MethodKind::kVanilla,
                                      core::MethodKind::kReg,
                                      core::MethodKind::kPpFr}) {
        sweep.cells.push_back(Cell(dataset, model, method, epochs));
      }
    }
  }

  RunnerOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.env_seed = kEnvSeed;
  serial_opts.verbose = false;
  RunCache serial_cache;
  const SweepResult serial = RunSweep(sweep, &serial_cache, serial_opts);

  RunnerOptions parallel_opts = serial_opts;
  parallel_opts.threads = 3;
  RunCache parallel_cache;
  const SweepResult parallel = RunSweep(sweep, &parallel_cache, parallel_opts);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(parallel.threads, 3);
  for (size_t i = 0; i < serial.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " " +
                 serial.cells[i].scenario.DisplayLabel());
    ExpectEvalBitwiseEq(serial.cells[i].run->eval, parallel.cells[i].run->eval);
    EXPECT_EQ(serial.cells[i].delta.d_acc, parallel.cells[i].delta.d_acc);
    EXPECT_EQ(serial.cells[i].delta.d_bias, parallel.cells[i].delta.d_bias);
    EXPECT_EQ(serial.cells[i].delta.d_risk, parallel.cells[i].delta.d_risk);
    EXPECT_EQ(serial.cells[i].delta.combined, parallel.cells[i].delta.combined);
  }
  // Both schedulers train each (dataset, model) vanilla exactly once.
  EXPECT_EQ(serial.cache_stats.vanilla.misses, 4);
  EXPECT_EQ(parallel.cache_stats.vanilla.misses, 4);
}

TEST(ArtifactTest, WritesUniformSchemaGolden) {
  Sweep sweep;
  sweep.name = "artifact_probe";
  sweep.title = "artifact schema probe";
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kVanilla, 2));
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kReg, 2));

  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  SweepResult result = RunSweep(sweep, &SharedCache(), opts);
  result.cells[0].extra["probe_metric"] = 0.5;

  const std::string dir = ::testing::TempDir();
  const std::string path = WriteArtifact(result, dir);
  EXPECT_EQ(path, dir + "/BENCH_artifact_probe.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  // The uniform schema every sweep artifact shares (CI diffs the same list
  // against bench/golden/artifact_schema.txt).
  for (const char* key :
       {"\"schema_version\"", "\"sweep\"", "\"title\"", "\"backend\"",
        "\"backend_threads\"", "\"runner_threads\"", "\"env_seed\"",
        "\"wall_seconds\"", "\"trainer_invocations\"", "\"cache\"", "\"env\"",
        "\"vanilla\"", "\"dp_context\"", "\"pp_context\"", "\"fr\"", "\"cell\"",
        "\"hits\"", "\"misses\"", "\"cells\"", "\"dataset\"", "\"model\"",
        "\"method\"", "\"label\"", "\"seconds\"", "\"cache_hit\"", "\"eval\"",
        "\"accuracy\"", "\"bias\"", "\"risk_auc\"", "\"delta_d\"", "\"delta\"",
        "\"d_acc\"", "\"d_bias\"", "\"d_risk\"", "\"combined\"", "\"extra\"",
        "\"probe_metric\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "artifact missing " << key;
  }
  EXPECT_NE(json.find("\"sweep\": \"artifact_probe\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScenarioTest, RegistryCoversEveryPaperSweep) {
  for (const std::string& name : RegistrySweepNames()) {
    const std::optional<Sweep> sweep = RegistrySweep(name);
    ASSERT_TRUE(sweep.has_value()) << name;
    EXPECT_FALSE(sweep->cells.empty()) << name;
  }
  EXPECT_FALSE(RegistrySweep("no_such_sweep").has_value());
  // Aliases resolve to the same cells.
  EXPECT_EQ(RegistrySweep("table5")->cells.size(),
            RegistrySweep("weak-homophily")->cells.size());
  EXPECT_EQ(RegistrySweep("fig6")->cells.size(),
            RegistrySweep("ablation")->cells.size());
}

TEST(ScenarioTest, StarAndEmptyFiltersKeepEverything) {
  const char* argv[] = {"prog", "--datasets=*", "--models="};
  Flags flags(3, const_cast<char**>(argv));
  Sweep sweep = *RegistrySweep("table4");
  const size_t cells = sweep.cells.size();
  ApplyFilters(flags, &sweep);
  EXPECT_EQ(sweep.cells.size(), cells);
}

TEST(ScenarioTest, OverridesResolveOntoDefaults) {
  Scenario cell = Cell(data::DatasetId::kCoraLike, nn::ModelKind::kGcn,
                       core::MethodKind::kPpFr, 42);
  cell.overrides.pp_gamma = 0.0;
  cell.overrides.finetune_epochs = 9;
  cell.overrides.fr_zero_sum = false;
  const core::MethodConfig cfg = cell.ResolvedConfig();
  EXPECT_EQ(cfg.train.epochs, 42);
  EXPECT_EQ(cfg.pp_gamma, 0.0);
  EXPECT_EQ(cfg.finetune_epochs, 9);
  EXPECT_FALSE(cfg.fr.zero_sum);
  EXPECT_EQ(core::FinetuneEpochs(cfg), 9);

  core::MethodConfig scaled = cfg;
  scaled.finetune_epochs = 0;
  scaled.finetune_scale = 0.5;
  EXPECT_EQ(core::FinetuneEpochs(scaled), 21);
}

}  // namespace
}  // namespace ppfr::runner

// Tests for the scenario-runner subsystem: content-hash cache keys that are
// stable across processes, stage-cached results that are bitwise identical
// to cold runs, the parallel cell scheduler's parity with the serial order,
// the "vanilla trains exactly once" trainer-invocation contract, and the
// uniform JSON artifact schema.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/serialize.h"
#include "core/snapshot.h"
#include "influence/param_vector.h"
#include "nn/trainer.h"
#include "runner/run_cache.h"
#include "runner/runner.h"
#include "runner/scenario.h"
#include "test_util.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kEnvSeed = 7;

// A MethodConfig with every key-relevant field pinned explicitly, so the
// key goldens depend only on the hash schema — not on the paper defaults.
core::MethodConfig PinnedConfig() {
  core::MethodConfig cfg;
  cfg.train.epochs = 50;
  cfg.train.lr = 0.05;
  cfg.train.weight_decay = 1e-4;
  cfg.train.sage_fanout = 4;
  cfg.train.seed = 3;
  cfg.lambda = 1e-3;
  cfg.dp_epsilon = 2.0;
  cfg.use_lap_graph = false;
  cfg.pp_gamma = 0.25;
  cfg.finetune_scale = 0.5;
  cfg.finetune_epochs = 0;
  cfg.finetune_lr = 2e-3;
  cfg.fr.alpha = 0.8;
  cfg.fr.beta = 0.2;
  cfg.fr.zero_sum = true;
  cfg.fr.influence.cg.damping = 0.02;
  cfg.fr.influence.cg.max_iterations = 20;
  cfg.fr.influence.cg.tolerance = 1e-6;
  cfg.fr.influence.cg.hvp_step = 1e-4;
  cfg.fr.influence.cg_block = 8;  // pinned: 0 would resolve from PPFR_CG_BLOCK
  cfg.fr.influence.replay_lanes = 8;  // pinned: 0 would resolve from PPFR_REPLAY_LANES
  cfg.seed = 11;
  return cfg;
}

core::ExperimentEnv IdentityOnlyEnv(data::DatasetId id, uint64_t env_seed) {
  core::ExperimentEnv env;
  env.id = id;
  env.env_seed = env_seed;
  return env;
}

// Small sweeps reuse one environment build per dataset across all tests.
RunCache& SharedCache() {
  static RunCache* cache = new RunCache();
  return *cache;
}

Scenario Cell(data::DatasetId dataset, nn::ModelKind model, core::MethodKind method,
              int epochs) {
  Scenario cell{dataset, model, method, {}, ""};
  cell.overrides.epochs = epochs;
  return cell;
}

void ExpectEvalBitwiseEq(const core::EvalResult& a, const core::EvalResult& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.bias, b.bias);
  EXPECT_EQ(a.risk_auc, b.risk_auc);
  EXPECT_EQ(a.delta_d, b.delta_d);
}

TEST(KeyHasherTest, GoldenValuesStableAcrossProcesses) {
  // Content hashes must not involve addresses or iteration order; these
  // literals pin the schema so any process, on any run, produces the same
  // keys for the same logical inputs. Changing them is a cache-format break
  // (update the literals deliberately if the key schema evolves).
  const core::ExperimentEnv env = IdentityOnlyEnv(data::DatasetId::kCoraLike, 123);
  const core::MethodConfig cfg = PinnedConfig();

  EXPECT_EQ(RunCache::EnvKey(data::DatasetId::kCoraLike, 123),
            0xcda4452e6213209eULL);
  EXPECT_EQ(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            0x6b4731a3f0028329ULL);
  EXPECT_EQ(RunCache::DpKey(env, cfg), 0xdc379259979ac35fULL);
  EXPECT_EQ(RunCache::PpKey(nn::ModelKind::kGcn, env, cfg), 0x0cea453f034b7143ULL);
  // FrKey changed when the fused-replay width joined the key recipe (the
  // resolved replay_lanes is mixed like the resolved cg_block).
  EXPECT_EQ(RunCache::FrKey(nn::ModelKind::kGcn, env, cfg), 0x12671a205dc02888ULL);

  // The namespace tags must actually namespace: stages whose remaining
  // fields coincide still get distinct keys (guards the const char* → bool
  // overload trap in KeyHasher::Mix).
  EXPECT_NE(KeyHasher().Mix("env").hash(), KeyHasher().Mix("cell").hash());
  EXPECT_NE(KeyHasher().Mix("env").hash(), KeyHasher().Mix(true).hash());
}

TEST(KeyHasherTest, KeysDistinguishStageInputs) {
  const core::ExperimentEnv env = IdentityOnlyEnv(data::DatasetId::kCoraLike, 123);
  const core::MethodConfig cfg = PinnedConfig();

  // Rebuilding identical inputs reproduces the key.
  EXPECT_EQ(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGcn,
                                 IdentityOnlyEnv(data::DatasetId::kCoraLike, 123),
                                 PinnedConfig()));

  // Every identity and stage-prefix field separates keys.
  EXPECT_NE(RunCache::EnvKey(data::DatasetId::kCoraLike, 123),
            RunCache::EnvKey(data::DatasetId::kCoraLike, 124));
  EXPECT_NE(RunCache::EnvKey(data::DatasetId::kCoraLike, 123),
            RunCache::EnvKey(data::DatasetId::kCiteseerLike, 123));
  EXPECT_NE(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGat, env, cfg));
  core::MethodConfig other = cfg;
  other.seed = 12;
  EXPECT_NE(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGcn, env, other));
  other = cfg;
  other.train.epochs = 51;
  EXPECT_NE(RunCache::VanillaKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::VanillaKey(nn::ModelKind::kGcn, env, other));
  other = cfg;
  other.dp_epsilon = 3.0;
  EXPECT_NE(RunCache::DpKey(env, cfg), RunCache::DpKey(env, other));
  other = cfg;
  other.use_lap_graph = true;
  EXPECT_NE(RunCache::DpKey(env, cfg), RunCache::DpKey(env, other));
  other = cfg;
  other.pp_gamma = 0.5;
  EXPECT_NE(RunCache::PpKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::PpKey(nn::ModelKind::kGcn, env, other));
  other = cfg;
  other.fr.zero_sum = false;
  EXPECT_NE(RunCache::FrKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::FrKey(nn::ModelKind::kGcn, env, other));
  // The block width changes FR results (different Krylov spaces), so it must
  // separate FR keys — by its RESOLVED value, so cg_block = 0 under the
  // default environment shares the explicit cg_block = 8 entry.
  other = cfg;
  other.fr.influence.cg_block = 16;
  EXPECT_NE(RunCache::FrKey(nn::ModelKind::kGcn, env, cfg),
            RunCache::FrKey(nn::ModelKind::kGcn, env, other));

  // The DP perturbation doesn't depend on the model or its training
  // schedule (the cache shares one DP context across GCN/GAT/GraphSage
  // cells), so train-prefix fields must not reach DpKey.
  other = cfg;
  other.train.epochs = 99;
  other.train.lr = 0.5;
  EXPECT_EQ(RunCache::DpKey(env, cfg), RunCache::DpKey(env, other));

  // Cell keys hash the resolved config, never the display label.
  Scenario a = Cell(data::DatasetId::kCoraLike, nn::ModelKind::kGcn,
                    core::MethodKind::kPpFr, 50);
  Scenario b = a;
  b.label = "renamed";
  EXPECT_EQ(RunCache::CellKey(a, 123), RunCache::CellKey(b, 123));
  b = a;
  b.overrides.finetune_epochs = 9;
  EXPECT_NE(RunCache::CellKey(a, 123), RunCache::CellKey(b, 123));
  EXPECT_NE(RunCache::CellKey(a, 123), RunCache::CellKey(a, 124));
}

TEST(KeyHasherTest, CanonicalizesNegativeZeroAndNaN) {
  // -0.0 == 0.0 and NaNs are config-equivalent, so equal configs must hash
  // equally — with the disk-persisted cache a spurious key split would be a
  // user-visible recompute.
  EXPECT_EQ(KeyHasher().Mix(0.0).hash(), KeyHasher().Mix(-0.0).hash());
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double payload_nan =
      std::bit_cast<double>(std::bit_cast<uint64_t>(qnan) | 0x5ULL);
  EXPECT_EQ(KeyHasher().Mix(qnan).hash(), KeyHasher().Mix(payload_nan).hash());
  EXPECT_EQ(KeyHasher().Mix(-qnan).hash(), KeyHasher().Mix(qnan).hash());
  // ...but canonicalization must not collapse distinct reals.
  EXPECT_NE(KeyHasher().Mix(0.0).hash(), KeyHasher().Mix(1e-300).hash());

  // End-to-end: a cell overridden with -0.0 shares the +0.0 cell's key.
  Scenario plus = Cell(data::DatasetId::kCoraLike, nn::ModelKind::kGcn,
                       core::MethodKind::kPpFr, 50);
  plus.overrides.pp_gamma = 0.0;
  Scenario minus = plus;
  minus.overrides.pp_gamma = -0.0;
  EXPECT_EQ(RunCache::CellKey(plus, 123), RunCache::CellKey(minus, 123));
}

TEST(RunCacheTest, CachedStagesBitwiseIdenticalToColdRuns) {
  const auto env = SharedCache().Env(data::DatasetId::kEnzymesLike, kEnvSeed);
  core::MethodConfig cfg =
      core::DefaultMethodConfig(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn);
  cfg.train.epochs = 8;

  for (core::MethodKind method : {core::MethodKind::kDpFr, core::MethodKind::kPpFr}) {
    SCOPED_TRACE(core::MethodName(method));
    // Cold: the historical path — vanilla retrained inside the method run.
    const core::MethodRun cold =
        core::RunMethod(method, nn::ModelKind::kGcn, *env, cfg, nullptr);
    // Warm: stages resumed from the shared cache (vanilla model, FR solve,
    // DP/PP context all come out of the memo after the first method).
    RunCache cache;
    const core::MethodRun warm =
        core::RunMethod(method, nn::ModelKind::kGcn, *env, cfg, &cache);
    ExpectEvalBitwiseEq(cold.eval, warm.eval);
    ASSERT_EQ(cold.fr_weights.size(), warm.fr_weights.size());
    for (size_t i = 0; i < cold.fr_weights.size(); ++i) {
      ASSERT_EQ(cold.fr_weights[i], warm.fr_weights[i]) << "weight " << i;
    }
    const std::vector<double> cold_params =
        influence::FlattenValues(cold.model->Params());
    const std::vector<double> warm_params =
        influence::FlattenValues(warm.model->Params());
    ASSERT_EQ(cold_params.size(), warm_params.size());
    for (size_t i = 0; i < cold_params.size(); ++i) {
      ASSERT_EQ(cold_params[i], warm_params[i]) << "param " << i;
    }

    // A second run through the same cache is a pure cell hit with identical
    // results.
    const core::MethodRun again =
        core::RunMethod(method, nn::ModelKind::kGcn, *env, cfg, &cache);
    ExpectEvalBitwiseEq(warm.eval, again.eval);
  }
}

TEST(RunnerTest, Table4EquivalentSweepMatchesPreRefactorAndTrainsVanillaOnce) {
  // A bench_table4-equivalent sweep (every method × two models on one
  // dataset) through the runner must produce numerically identical tables to
  // the pre-refactor per-method pipelines while training vanilla exactly
  // once per (dataset, model, seed).
  const int epochs = 8;
  const std::vector<nn::ModelKind> models{nn::ModelKind::kGcn,
                                          nn::ModelKind::kGraphSage};
  Sweep sweep;
  sweep.name = "table4_mini";
  for (nn::ModelKind model : models) {
    for (core::MethodKind method :
         {core::MethodKind::kVanilla, core::MethodKind::kReg,
          core::MethodKind::kDpReg, core::MethodKind::kDpFr,
          core::MethodKind::kPpFr}) {
      sweep.cells.push_back(
          Cell(data::DatasetId::kEnzymesLike, model, method, epochs));
    }
  }

  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  RunCache cache;
  const int64_t trains_before = nn::TrainInvocationCount();
  const SweepResult result = RunSweep(sweep, &cache, opts);
  const int64_t trains = nn::TrainInvocationCount() - trains_before;

  // Per model: 1 vanilla + 1 Reg + 1 DPReg + 2 fine-tunes = 5 Train calls.
  // The pre-refactor path took 7: DPFR and PPFR each retrained their own
  // vanilla (TrainFresh + Finetune = 2 Train calls apiece on top of the
  // baseline's 3).
  EXPECT_EQ(trains, static_cast<int64_t>(5 * models.size()));
  EXPECT_EQ(result.trainer_invocations, trains);
  EXPECT_EQ(result.cache_stats.vanilla.misses,
            static_cast<int64_t>(models.size()));

  // Numerically identical to the pre-refactor per-method pipelines.
  const auto env = SharedCache().Env(data::DatasetId::kEnzymesLike, kEnvSeed);
  for (nn::ModelKind model : models) {
    core::MethodConfig cfg =
        core::DefaultMethodConfig(data::DatasetId::kEnzymesLike, model);
    cfg.train.epochs = epochs;
    const core::MethodRun vanilla =
        core::RunMethod(core::MethodKind::kVanilla, model, *env, cfg, nullptr);
    for (const CellResult& cell : result.cells) {
      if (cell.scenario.model != model) continue;
      SCOPED_TRACE(std::string(nn::ModelKindName(model)) + "/" +
                   core::MethodName(cell.scenario.method));
      const core::MethodRun fresh =
          core::RunMethod(cell.scenario.method, model, *env, cfg, nullptr);
      ExpectEvalBitwiseEq(fresh.eval, cell.run->eval);
      if (cell.scenario.method != core::MethodKind::kVanilla) {
        const core::DeltaMetrics want = core::ComputeDeltas(fresh.eval, vanilla.eval);
        EXPECT_EQ(want.d_acc, cell.delta.d_acc);
        EXPECT_EQ(want.d_bias, cell.delta.d_bias);
        EXPECT_EQ(want.d_risk, cell.delta.d_risk);
        EXPECT_EQ(want.combined, cell.delta.combined);
      }
    }
  }
}

TEST(SchedulerTest, ParallelCellsMatchSerialOrderBitwiseOn2x2x3Grid) {
  const int epochs = 6;
  Sweep sweep;
  sweep.name = "grid_2x2x3";
  for (data::DatasetId dataset :
       {data::DatasetId::kEnzymesLike, data::DatasetId::kCreditLike}) {
    for (nn::ModelKind model : {nn::ModelKind::kGcn, nn::ModelKind::kGraphSage}) {
      for (core::MethodKind method : {core::MethodKind::kVanilla,
                                      core::MethodKind::kReg,
                                      core::MethodKind::kPpFr}) {
        sweep.cells.push_back(Cell(dataset, model, method, epochs));
      }
    }
  }

  RunnerOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.env_seed = kEnvSeed;
  serial_opts.verbose = false;
  RunCache serial_cache;
  const SweepResult serial = RunSweep(sweep, &serial_cache, serial_opts);

  RunnerOptions parallel_opts = serial_opts;
  parallel_opts.threads = 3;
  RunCache parallel_cache;
  const SweepResult parallel = RunSweep(sweep, &parallel_cache, parallel_opts);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(parallel.threads, 3);
  for (size_t i = 0; i < serial.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " " +
                 serial.cells[i].scenario.DisplayLabel());
    ExpectEvalBitwiseEq(serial.cells[i].run->eval, parallel.cells[i].run->eval);
    EXPECT_EQ(serial.cells[i].delta.d_acc, parallel.cells[i].delta.d_acc);
    EXPECT_EQ(serial.cells[i].delta.d_bias, parallel.cells[i].delta.d_bias);
    EXPECT_EQ(serial.cells[i].delta.d_risk, parallel.cells[i].delta.d_risk);
    EXPECT_EQ(serial.cells[i].delta.combined, parallel.cells[i].delta.combined);
  }
  // Both schedulers train each (dataset, model) vanilla exactly once.
  EXPECT_EQ(serial.cache_stats.vanilla.misses, 4);
  EXPECT_EQ(parallel.cache_stats.vanilla.misses, 4);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A sweep exercising every persisted stage: vanilla train + eval, DP and PP
// contexts, the FR solve, and whole cells.
Sweep MiniSuiteSweep(int epochs) {
  Sweep sweep;
  sweep.name = "disk_mini";
  for (core::MethodKind method :
       {core::MethodKind::kVanilla, core::MethodKind::kDpFr,
        core::MethodKind::kPpFr}) {
    sweep.cells.push_back(
        Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn, method, epochs));
  }
  return sweep;
}

void ExpectSweepBitwiseEq(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " " +
                 a.cells[i].scenario.DisplayLabel());
    ExpectEvalBitwiseEq(a.cells[i].run->eval, b.cells[i].run->eval);
    ExpectEvalBitwiseEq(a.cells[i].vanilla_eval, b.cells[i].vanilla_eval);
    ASSERT_EQ(a.cells[i].run->fr_weights.size(), b.cells[i].run->fr_weights.size());
    for (size_t j = 0; j < a.cells[i].run->fr_weights.size(); ++j) {
      ASSERT_EQ(a.cells[i].run->fr_weights[j], b.cells[i].run->fr_weights[j]);
    }
    const std::vector<double> pa = influence::FlattenValues(a.cells[i].run->model->Params());
    const std::vector<double> pb = influence::FlattenValues(b.cells[i].run->model->Params());
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t j = 0; j < pa.size(); ++j) {
      ASSERT_EQ(pa[j], pb[j]) << "param " << j;
    }
  }
}

TEST(DiskCacheTest, FreshProcessReloadsEveryStageWithoutTraining) {
  const std::string dir = ::testing::TempDir() + "/disk_cache_roundtrip";
  std::filesystem::remove_all(dir);
  const Sweep sweep = MiniSuiteSweep(6);
  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;

  RunCache cold(dir);
  const SweepResult first = RunSweep(sweep, &cold, opts);
  EXPECT_GT(first.trainer_invocations, 0);
  EXPECT_EQ(first.cache_stats.cell.disk_hits, 0);

  // A fresh RunCache over the same dir stands in for a second process — the
  // keys are process-stable content hashes, so nothing in-memory carries
  // over. Every stage must come off disk: zero nn::Train calls, results
  // bitwise identical, stable artifacts byte-for-byte equal.
  RunCache warm(dir);
  const SweepResult second = RunSweep(sweep, &warm, opts);
  EXPECT_EQ(second.trainer_invocations, 0);
  EXPECT_EQ(second.cache_stats.cell.disk_hits,
            static_cast<int64_t>(sweep.cells.size()));
  ExpectSweepBitwiseEq(first, second);

  const std::string dir1 = ::testing::TempDir() + "/disk_art1";
  const std::string dir2 = ::testing::TempDir() + "/disk_art2";
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir2);
  ArtifactOptions stable;
  stable.stable = true;
  const std::string path1 = WriteArtifact(first, dir1, stable);
  const std::string path2 = WriteArtifact(second, dir2, stable);
  EXPECT_EQ(ReadFileOrDie(path1), ReadFileOrDie(path2))
      << "stable artifacts must be bitwise identical across processes";

  // The vanilla stage itself also reloads train-free for a third consumer.
  RunCache third(dir);
  const auto env = SharedCache().Env(data::DatasetId::kEnzymesLike, kEnvSeed);
  const int64_t trains_before = nn::TrainInvocationCount();
  const core::EvalResult eval = third.VanillaEval(
      nn::ModelKind::kGcn, *env, sweep.cells[0].ResolvedConfig());
  EXPECT_EQ(nn::TrainInvocationCount(), trains_before);
  ExpectEvalBitwiseEq(eval, first.cells[0].run->eval);
}

TEST(DiskCacheTest, CorruptAndForeignEntriesRecoverBitwise) {
  const std::string dir = ::testing::TempDir() + "/disk_cache_corrupt";
  std::filesystem::remove_all(dir);
  const Sweep sweep = MiniSuiteSweep(6);
  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;

  RunCache cold(dir);
  const SweepResult first = RunSweep(sweep, &cold, opts);

  // Vandalise the store: truncate every cell entry mid-payload, garbage the
  // FR entry, and leave the rest intact.
  int mangled = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("cell-")) {
      const std::string bytes = ReadFileOrDie(entry.path().string());
      std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
      ++mangled;
    } else if (name.starts_with("fr-")) {
      std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
      out << "not a cache entry";
      ++mangled;
    }
  }
  ASSERT_GT(mangled, 0);

  // Recovery: corrupt entries are deleted and recomputed (never a crash),
  // and the recompute reproduces the original numbers bitwise. The intact
  // vanilla entry still loads, so the DP/PP cells only pay their fine-tune.
  RunCache recover(dir);
  const SweepResult recovered = RunSweep(sweep, &recover, opts);
  ExpectSweepBitwiseEq(first, recovered);
  EXPECT_EQ(recovered.cache_stats.vanilla.disk_hits, 1);

  // The recompute rewrote clean entries: one more fresh cache is train-free.
  RunCache warm(dir);
  const SweepResult warm_run = RunSweep(sweep, &warm, opts);
  EXPECT_EQ(warm_run.trainer_invocations, 0);
  ExpectSweepBitwiseEq(first, warm_run);
}

TEST(DiskCacheTest, MismatchedFingerprintIsAMissNotACrash) {
  const std::string dir = ::testing::TempDir() + "/disk_cache_foreign";
  std::filesystem::remove_all(dir);
  CacheStore store(dir);
  ASSERT_TRUE(store.enabled());
  store.Store("fr", 42, "payload");
  std::string payload;
  ASSERT_TRUE(store.Load("fr", 42, &payload));
  EXPECT_EQ(payload, "payload");
  // Another key never aliases.
  EXPECT_FALSE(store.Load("fr", 43, &payload));

  // Rewrite the entry as if a different build had produced it: flip a byte
  // inside the stored fingerprint region. Structurally intact ⇒ plain miss,
  // and the file survives for its producer.
  const std::string path = store.EntryPath("fr", 42);
  std::string bytes = ReadFileOrDie(path);
  // Header layout: magic u64 (0-7), format u32 (8-11), fingerprint length
  // u64 (12-19), fingerprint chars from 20 ("v1|backend=..."); flipping the
  // low bit of the '1' at offset 21 yields an intact "v0|..." fingerprint.
  bytes[21] ^= 0x1;
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(store.Load("fr", 42, &payload));
  EXPECT_TRUE(std::filesystem::exists(path));

  // A foreign-magic file (another tool's, or a future format) is not ours
  // to delete either: plain miss, file left in place.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "alien bytes with no ppfr magic";
  }
  EXPECT_FALSE(store.Load("fr", 42, &payload));
  EXPECT_TRUE(std::filesystem::exists(path));

  // But a magic-matching truncation IS corruption: deleted on sight.
  store.Store("fr", 42, "payload");
  std::string intact = ReadFileOrDie(path);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(intact.data(), static_cast<std::streamsize>(intact.size() - 3));
  }
  EXPECT_FALSE(store.Load("fr", 42, &payload));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(MultiSeedTest, SeedExpansionMatchesIndependentRunsAndAggregates) {
  Sweep sweep;
  sweep.name = "multiseed_mini";
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kVanilla, 6));
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kReg, 6));
  sweep.seeds = {3, 4};

  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  RunCache cache;
  const SweepResult result = RunSweep(sweep, &cache, opts);

  // Seed-major expansion: each seed block repeats the cell order.
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.seeds, (std::vector<uint64_t>{3, 4}));
  EXPECT_EQ(result.cells[0].seed, 3u);
  EXPECT_EQ(result.cells[1].seed, 3u);
  EXPECT_EQ(result.cells[2].seed, 4u);
  EXPECT_EQ(result.cells[3].seed, 4u);
  EXPECT_EQ(result.cells[0].scenario.method, core::MethodKind::kVanilla);
  EXPECT_EQ(result.cells[2].scenario.method, core::MethodKind::kVanilla);

  // Each instance is bitwise identical to an independent cold run pinned to
  // that seed — expansion changes scheduling, not numbers.
  const auto env = SharedCache().Env(data::DatasetId::kEnzymesLike, kEnvSeed);
  for (size_t i = 0; i < result.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    core::MethodConfig cfg = result.cells[i].scenario.ResolvedConfig();
    EXPECT_EQ(cfg.seed, result.cells[i].seed);
    const core::MethodRun cold = core::RunMethod(
        result.cells[i].scenario.method, nn::ModelKind::kGcn, *env, cfg, nullptr);
    ExpectEvalBitwiseEq(cold.eval, result.cells[i].run->eval);
  }

  // Aggregates group by logical cell across seeds, in first-appearance
  // order, and report exact mean / sample-stddev over the per-seed values.
  const std::vector<CellAggregate> aggregates = AggregateCells(result);
  ASSERT_EQ(aggregates.size(), 2u);
  EXPECT_EQ(aggregates[0].scenario.method, core::MethodKind::kVanilla);
  EXPECT_EQ(aggregates[1].scenario.method, core::MethodKind::kReg);
  for (const CellAggregate& agg : aggregates) {
    EXPECT_EQ(agg.seeds, (std::vector<uint64_t>{3, 4}));
    ASSERT_EQ(agg.metrics.at("accuracy").values.size(), 2u);
  }
  const MetricAggregate& acc = aggregates[1].metrics.at("accuracy");
  const double v0 = result.cells[1].run->eval.accuracy;
  const double v1 = result.cells[3].run->eval.accuracy;
  EXPECT_EQ(acc.values[0], v0);
  EXPECT_EQ(acc.values[1], v1);
  EXPECT_EQ(acc.mean, (v0 + v1) / 2.0);
  const double mean = (v0 + v1) / 2.0;
  const double want_stddev =
      std::sqrt((v0 - mean) * (v0 - mean) + (v1 - mean) * (v1 - mean));
  EXPECT_DOUBLE_EQ(acc.stddev, want_stddev);

  // A single-instance group degrades to stddev 0 without schema changes.
  Sweep single = sweep;
  single.seeds.clear();
  const SweepResult single_result = RunSweep(single, &cache, opts);
  const std::vector<CellAggregate> single_aggs = AggregateCells(single_result);
  ASSERT_EQ(single_aggs.size(), 2u);
  EXPECT_EQ(single_aggs[0].metrics.at("accuracy").values.size(), 1u);
  EXPECT_EQ(single_aggs[0].metrics.at("accuracy").stddev, 0.0);
}

TEST(MultiSeedTest, SeedsFlagParsingAndRegistryDefaults) {
  EXPECT_EQ(ParseSeedListOrDie("0,1,2"), (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_TRUE(ParseSeedListOrDie("").empty());
  EXPECT_EXIT(ParseSeedListOrDie("1,2x,3"), ::testing::ExitedWithCode(2),
              "invalid seed '2x'");
  EXPECT_EXIT(ParseSeedListOrDie("1,1"), ::testing::ExitedWithCode(2),
              "duplicate seed 1");

  {
    const char* argv[] = {"prog", "--seeds=5,6"};
    Flags flags(2, const_cast<char**>(argv));
    Sweep sweep = *RegistrySweep("smoke");
    ApplyCommonOverrides(flags, &sweep);
    EXPECT_EQ(sweep.seeds, (std::vector<uint64_t>{5, 6}));
  }
  {
    // A pinned --seed= beats any default seed list.
    const char* argv[] = {"prog", "--seed=11"};
    Flags flags(2, const_cast<char**>(argv));
    Sweep sweep = *RegistrySweep("smoke-multiseed");
    EXPECT_EQ(sweep.seeds.size(), 3u);
    ApplyCommonOverrides(flags, &sweep);
    EXPECT_TRUE(sweep.seeds.empty());
    EXPECT_EQ(*sweep.cells[0].overrides.seed, 11u);
  }
  {
    const char* argv[] = {"prog", "--seed=1", "--seeds=1,2"};
    Flags flags(3, const_cast<char**>(argv));
    Sweep sweep = *RegistrySweep("smoke");
    EXPECT_EXIT(ApplyCommonOverrides(flags, &sweep),
                ::testing::ExitedWithCode(2), "mutually exclusive");
  }
  {
    // Merging sweeps with conflicting default seed lists dies without an
    // override...
    const char* argv[] = {"prog", "--scenarios=smoke,smoke-multiseed"};
    Flags flags(2, const_cast<char**>(argv));
    EXPECT_EXIT(SweepFromFlags(flags, "smoke"), ::testing::ExitedWithCode(2),
                "default seed lists differ");
  }
  {
    // ...but an explicit --seeds= resolves the conflict, exactly as the
    // error message advises.
    const char* argv[] = {"prog", "--scenarios=smoke,smoke-multiseed",
                          "--seeds=5"};
    Flags flags(3, const_cast<char**>(argv));
    Sweep merged = SweepFromFlags(flags, "smoke");
    ApplyCommonOverrides(flags, &merged);
    EXPECT_EQ(merged.cells.size(), 10u);
    EXPECT_EQ(merged.seeds, (std::vector<uint64_t>{5}));
  }
}

TEST(SnapshotTest, GarbageEdgeCountIsRejectedBeforeAllocating) {
  // A checksum could in principle collide, so the snapshot loaders must be
  // total on arbitrary bytes too: a garbage edge count may not trigger a
  // pathological reserve() (length_error would escape this exception-free
  // codebase as a crash).
  BinaryWriter w;
  w.WriteI32(3);                         // num_nodes
  w.WriteU64(0xffffffffffffffffULL);     // num_edges: larger than any stream
  BinaryReader r(w.data());
  const la::Matrix features(3, 2);
  nn::GraphContext ctx;
  EXPECT_FALSE(core::LoadGraphContext(&r, features, &ctx));
}

TEST(ArtifactTest, WritesUniformSchemaGolden) {
  Sweep sweep;
  sweep.name = "artifact_probe";
  sweep.title = "artifact schema probe";
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kVanilla, 2));
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kReg, 2));

  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  SweepResult result = RunSweep(sweep, &SharedCache(), opts);
  result.cells[0].extra["probe_metric"] = 0.5;
  result.cells[1].extra["bad_metric"] = std::numeric_limits<double>::quiet_NaN();

  const std::string dir = ::testing::TempDir();
  const std::string path = WriteArtifact(result, dir);
  EXPECT_EQ(path, dir + "/BENCH_artifact_probe.json");
  const std::string json = ReadFileOrDie(path);

  // The uniform schema every sweep artifact shares (CI diffs the same list
  // against bench/golden/artifact_schema.txt).
  for (const char* key :
       {"\"schema_version\": 4", "\"sweep\"", "\"title\"", "\"backend\"",
        "\"backend_threads\"", "\"runner_threads\"", "\"env_seed\"",
        "\"seeds\"", "\"shard\"", "\"stable\"", "\"wall_seconds\"",
        "\"trainer_invocations\"", "\"failed_cells\"", "\"interrupted\"",
        "\"resumed_cells\"", "\"skipped_cells\"", "\"missing_cells\"",
        "\"missing_shards\"", "\"conflicting_cells\"",
        "\"cache\"", "\"env\"", "\"vanilla\"", "\"dp_context\"", "\"pp_context\"",
        "\"fr\"", "\"cell\"", "\"hits\"", "\"misses\"", "\"disk_hits\"",
        "\"cells\"", "\"dataset\"", "\"model\"", "\"method\"", "\"label\"",
        "\"seed\"", "\"seconds\"", "\"cache_hit\"", "\"status\"", "\"error\"",
        "\"retries\"", "\"resumed\"", "\"eval\"", "\"accuracy\"",
        "\"bias\"", "\"risk_auc\"", "\"delta_d\"", "\"delta\"", "\"d_acc\"",
        "\"d_bias\"", "\"d_risk\"", "\"combined\"", "\"extra\"",
        "\"probe_metric\"", "\"aggregates\"", "\"metrics\"", "\"mean\"",
        "\"stddev\"", "\"values\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "artifact missing " << key;
  }
  EXPECT_NE(json.find("\"sweep\": \"artifact_probe\""), std::string::npos);
  // A non-finite metric serialises as null but announces itself with a
  // sibling marker instead of corrupting the trajectory silently.
  EXPECT_NE(json.find("\"bad_metric\": null"), std::string::npos);
  EXPECT_NE(json.find("\"bad_metric_finite\": false"), std::string::npos);
  std::remove(path.c_str());

  // Stable mode zeroes only the run-varying fields; schema and results are
  // untouched, so two identical-result runs produce identical bytes.
  ArtifactOptions stable;
  stable.stable = true;
  const std::string stable_path = WriteArtifact(result, dir, stable);
  const std::string stable_json = ReadFileOrDie(stable_path);
  EXPECT_NE(stable_json.find("\"stable\": true"), std::string::npos);
  EXPECT_NE(stable_json.find("\"wall_seconds\": 0"), std::string::npos);
  EXPECT_NE(stable_json.find("\"trainer_invocations\": 0"), std::string::npos);
  EXPECT_NE(stable_json.find("\"probe_metric\": 0.5"), std::string::npos);
  std::remove(stable_path.c_str());
}

TEST(ScenarioTest, RegistryCoversEveryPaperSweep) {
  for (const std::string& name : RegistrySweepNames()) {
    const std::optional<Sweep> sweep = RegistrySweep(name);
    ASSERT_TRUE(sweep.has_value()) << name;
    EXPECT_FALSE(sweep->cells.empty()) << name;
  }
  EXPECT_FALSE(RegistrySweep("no_such_sweep").has_value());
  // The multiseed smoke entry carries the registry's only default seed list.
  EXPECT_EQ(RegistrySweep("smoke-multiseed")->seeds,
            (std::vector<uint64_t>{7, 8, 9}));
  EXPECT_TRUE(RegistrySweep("smoke")->seeds.empty());
  // Aliases resolve to the same cells.
  EXPECT_EQ(RegistrySweep("table5")->cells.size(),
            RegistrySweep("weak-homophily")->cells.size());
  EXPECT_EQ(RegistrySweep("fig6")->cells.size(),
            RegistrySweep("ablation")->cells.size());
}

TEST(ScenarioTest, StarAndEmptyFiltersKeepEverything) {
  const char* argv[] = {"prog", "--datasets=*", "--models="};
  Flags flags(3, const_cast<char**>(argv));
  Sweep sweep = *RegistrySweep("table4");
  const size_t cells = sweep.cells.size();
  ApplyFilters(flags, &sweep);
  EXPECT_EQ(sweep.cells.size(), cells);
}

TEST(ScenarioTest, OverridesResolveOntoDefaults) {
  Scenario cell = Cell(data::DatasetId::kCoraLike, nn::ModelKind::kGcn,
                       core::MethodKind::kPpFr, 42);
  cell.overrides.pp_gamma = 0.0;
  cell.overrides.finetune_epochs = 9;
  cell.overrides.fr_zero_sum = false;
  const core::MethodConfig cfg = cell.ResolvedConfig();
  EXPECT_EQ(cfg.train.epochs, 42);
  EXPECT_EQ(cfg.pp_gamma, 0.0);
  EXPECT_EQ(cfg.finetune_epochs, 9);
  EXPECT_FALSE(cfg.fr.zero_sum);
  EXPECT_EQ(core::FinetuneEpochs(cfg), 9);

  core::MethodConfig scaled = cfg;
  scaled.finetune_epochs = 0;
  scaled.finetune_scale = 0.5;
  EXPECT_EQ(core::FinetuneEpochs(scaled), 21);
}

}  // namespace
}  // namespace ppfr::runner

// Tests for the sharded-fleet layer: the canonical seed-major grid
// expansion, the k % N shard partition, read-only journal merge
// (runner/shard_merge) with graceful degradation, and the multi-seed
// kill/resume contract the fleet protocol builds on.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "runner/journal.h"
#include "runner/run_cache.h"
#include "runner/runner.h"
#include "runner/shard_merge.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kEnvSeed = 7;

Scenario Cell(data::DatasetId dataset, nn::ModelKind model, core::MethodKind method,
              int epochs) {
  Scenario cell{dataset, model, method, {}, ""};
  cell.overrides.epochs = epochs;
  return cell;
}

// Two cells expanded over three method seeds: 6 grid instances, small enough
// to train in-test but wide enough that a 3-way partition leaves every shard
// with work and a seed block spans a shard boundary.
Sweep MultiSeedSweep(int epochs) {
  Sweep sweep;
  sweep.name = "shard_mini";
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kVanilla, epochs));
  sweep.cells.push_back(Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn,
                             core::MethodKind::kPpFr, epochs));
  sweep.seeds = {0, 1, 2};
  return sweep;
}

RunnerOptions QuietOptions() {
  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  opts.retry_backoff_ms = 0;
  return opts;
}

RunnerOptions ShardOptions(const std::string& dir, int index, int count) {
  RunnerOptions opts = QuietOptions();
  opts.shard_index = index;
  opts.shard_count = count;
  opts.journal_path = dir + "/" + ShardJournalFilename(index, count);
  return opts;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string StableArtifactBytes(const SweepResult& result, const std::string& dir) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ArtifactOptions stable;
  stable.stable = true;
  return ReadFileOrDie(WriteArtifact(result, dir, stable));
}

// Runs every shard of an N-way fleet serially (each with its own in-memory
// cache, like separate processes without a shared --run_cache_dir) so the
// shard dir ends up holding a complete set of journals.
void RunFleet(const Sweep& sweep, const std::string& dir, int count) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (int i = 0; i < count; ++i) {
    RunCache cache;
    const SweepResult result = RunSweep(sweep, &cache, ShardOptions(dir, i, count));
    ASSERT_EQ(result.failed_cells, 0) << "shard " << i;
  }
}

struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::ConfigureForTest(spec); }
  ~FaultScope() { fault::ConfigureForTest(""); }
};

TEST(ExpandCellsTest, SeedMajorOrderIsCanonical) {
  const Sweep sweep = MultiSeedSweep(4);
  const std::vector<Scenario> expanded = ExpandCells(sweep);
  ASSERT_EQ(expanded.size(), sweep.cells.size() * sweep.seeds.size());
  for (size_t s = 0; s < sweep.seeds.size(); ++s) {
    for (size_t i = 0; i < sweep.cells.size(); ++i) {
      const Scenario& cell = expanded[s * sweep.cells.size() + i];
      EXPECT_EQ(cell.method, sweep.cells[i].method);
      EXPECT_EQ(cell.ResolvedConfig().seed, sweep.seeds[s]);
    }
  }
  // A seedless sweep expands to its cells verbatim.
  Sweep plain = sweep;
  plain.seeds.clear();
  EXPECT_EQ(ExpandCells(plain).size(), plain.cells.size());
}

TEST(ShardPartitionTest, ShardsAreDisjointAndCoverTheGrid) {
  const Sweep sweep = MultiSeedSweep(4);
  const std::vector<Scenario> expanded = ExpandCells(sweep);
  const int count = 3;

  std::set<uint64_t> seen;
  for (int i = 0; i < count; ++i) {
    RunCache cache;
    RunnerOptions opts = QuietOptions();
    opts.shard_index = i;
    opts.shard_count = count;
    const SweepResult result = RunSweep(sweep, &cache, opts);
    EXPECT_EQ(result.shard, std::to_string(i) + "/" + std::to_string(count));
    // Shard i owns exactly the expanded indices k with k % count == i, in
    // grid order.
    size_t k = static_cast<size_t>(i);
    for (const CellResult& cell : result.cells) {
      ASSERT_LT(k, expanded.size());
      const uint64_t key = RunCache::CellKey(expanded[k], kEnvSeed);
      EXPECT_EQ(RunCache::CellKey(cell.scenario, kEnvSeed), key);
      EXPECT_TRUE(seen.insert(key).second) << "cell owned by two shards";
      k += count;
    }
  }
  EXPECT_EQ(seen.size(), expanded.size()) << "shards must cover the whole grid";
}

// The headline merge contract: a complete fleet's merge is bitwise identical
// (stable artifact) to the unsharded run of the same sweep.
TEST(ShardMergeTest, CompleteMergeIsBitwiseIdenticalToUnsharded) {
  const std::string dir = ::testing::TempDir() + "/merge_complete";
  const Sweep sweep = MultiSeedSweep(5);
  RunFleet(sweep, dir, 3);

  RunCache cache;
  const SweepResult unsharded = RunSweep(sweep, &cache, QuietOptions());

  ShardMergeOptions options;
  options.shard_dir = dir;
  options.env_seed = kEnvSeed;
  ShardMergeReport report;
  const SweepResult merged = MergeShards(sweep, options, &report);

  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.shard_count, 3);
  EXPECT_EQ(report.present_shards.size(), 3u);
  EXPECT_TRUE(merged.missing_shards.empty());
  EXPECT_EQ(merged.missing_cells, 0);
  EXPECT_EQ(merged.conflicting_cells, 0);
  EXPECT_EQ(merged.shard, "") << "a complete merge is indistinguishable from "
                                 "an unsharded run";
  EXPECT_EQ(merged.cells.size(), ExpandCells(sweep).size());

  EXPECT_EQ(StableArtifactBytes(unsharded, ::testing::TempDir() + "/merge_a"),
            StableArtifactBytes(merged, ::testing::TempDir() + "/merge_b"))
      << "complete merge must reproduce the unsharded stable artifact bitwise";
}

TEST(ShardMergeTest, MissingShardDegradesGracefully) {
  const std::string dir = ::testing::TempDir() + "/merge_missing";
  const Sweep sweep = MultiSeedSweep(5);
  RunFleet(sweep, dir, 3);
  ASSERT_TRUE(std::filesystem::remove(dir + "/" + ShardJournalFilename(1, 3)));

  ShardMergeOptions options;
  options.shard_dir = dir;
  options.env_seed = kEnvSeed;
  ShardMergeReport report;
  const SweepResult merged = MergeShards(sweep, options, &report);

  EXPECT_FALSE(report.complete);
  EXPECT_EQ(merged.missing_shards, std::vector<int>{1});
  // Exactly shard 1's cells (expanded indices k % 3 == 1) report missing.
  const std::vector<Scenario> expanded = ExpandCells(sweep);
  int64_t missing = 0;
  for (size_t k = 0; k < merged.cells.size(); ++k) {
    EXPECT_EQ(merged.cells[k].missing, k % 3 == 1) << "cell " << k;
    missing += merged.cells[k].missing ? 1 : 0;
  }
  EXPECT_EQ(merged.missing_cells, missing);

  // Aggregates cover exactly what arrived: the missing cells' NaN
  // placeholders stay out (their seeds simply contribute fewer values).
  for (const CellAggregate& agg : AggregateCells(merged)) {
    for (const auto& [name, summary] : agg.metrics) {
      EXPECT_LT(summary.values.size(), sweep.seeds.size() + 1) << name;
      for (double v : summary.values) EXPECT_FALSE(std::isnan(v)) << name;
    }
  }

  // The degradation is visible in the artifact, even in stable mode (the
  // writer renders arrays multi-line, so check the slice between brackets).
  const std::string json =
      StableArtifactBytes(merged, ::testing::TempDir() + "/merge_missing_art");
  const size_t open = json.find("\"missing_shards\": [");
  ASSERT_NE(open, std::string::npos);
  const size_t close = json.find(']', open);
  ASSERT_NE(close, std::string::npos);
  EXPECT_NE(json.substr(open, close - open).find('1'), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"missing\""), std::string::npos);
}

// Duplicate records across shards (a repartitioned resume, an operator's
// manual rerun) are benign when identical; differing duplicates count as
// conflicts and the lowest shard index wins deterministically.
TEST(ShardMergeTest, DuplicatesAreBenignUnlessTheyDiffer) {
  const std::string dir = ::testing::TempDir() + "/merge_dupes";
  const Sweep sweep = MultiSeedSweep(5);
  RunFleet(sweep, dir, 3);

  // Grab shard 0's first record and append it verbatim to shard 2's journal:
  // an identical duplicate.
  const std::string path0 = dir + "/" + ShardJournalFilename(0, 3);
  const std::string path2 = dir + "/" + ShardJournalFilename(2, 3);
  JournalReplay replay0 = ReplayJournalFile(path0, sweep.name, kEnvSeed);
  ASSERT_TRUE(replay0.header_ok);
  ASSERT_FALSE(replay0.records.empty());
  const JournalRecord original = replay0.records.begin()->second;
  {
    SweepJournal journal(path2, sweep.name, kEnvSeed, /*resume=*/true);
    journal.Append(original);
  }

  ShardMergeOptions options;
  options.shard_dir = dir;
  options.env_seed = kEnvSeed;
  ShardMergeReport report;
  SweepResult merged = MergeShards(sweep, options, &report);
  EXPECT_TRUE(report.complete) << "identical duplicates must not degrade";
  EXPECT_EQ(merged.conflicting_cells, 0);

  // Now a DIFFERING duplicate of the same cell: the conflict is counted and
  // shard 0's (lowest index) record still wins.
  JournalRecord tampered = original;
  tampered.eval.accuracy = original.eval.accuracy + 0.125;
  {
    SweepJournal journal(path2, sweep.name, kEnvSeed, /*resume=*/true);
    journal.Append(tampered);
  }
  merged = MergeShards(sweep, options, &report);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(merged.conflicting_cells, 1);
  bool found = false;
  for (const CellResult& cell : merged.cells) {
    if (RunCache::CellKey(cell.scenario, kEnvSeed) != original.cell_key) continue;
    found = true;
    EXPECT_EQ(cell.run->eval.accuracy, original.eval.accuracy)
        << "lowest shard index must win the conflict";
  }
  EXPECT_TRUE(found);
}

TEST(ShardMergeTest, InjectedReadFaultDegradesShardToMissing) {
  const std::string dir = ::testing::TempDir() + "/merge_fault";
  const Sweep sweep = MultiSeedSweep(5);
  RunFleet(sweep, dir, 3);

  // The site fires once per discovered journal, in shard order: every 3rd
  // read fails, so shard 2 degrades to missing while 0 and 1 replay.
  FaultScope scope("shard.merge_read:3");
  ShardMergeOptions options;
  options.shard_dir = dir;
  options.env_seed = kEnvSeed;
  ShardMergeReport report;
  const SweepResult merged = MergeShards(sweep, options, &report);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(merged.missing_shards, std::vector<int>{2});
  EXPECT_EQ(report.present_shards, (std::vector<int>{0, 1}));
  EXPECT_GT(merged.missing_cells, 0);
}

TEST(ShardMergeDeathTest, MalformedShardDirsDieLoudly) {
  const std::string base = ::testing::TempDir() + "/merge_death";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base + "/mixed");
  std::filesystem::create_directories(base + "/empty");
  std::filesystem::create_directories(base + "/impossible");
  { std::ofstream(base + "/mixed/shard-0of2.journal") << ""; }
  { std::ofstream(base + "/mixed/shard-0of3.journal") << ""; }
  { std::ofstream(base + "/impossible/shard-5of3.journal") << ""; }

  const Sweep sweep = MultiSeedSweep(4);
  const auto merge_dir = [&](const std::string& dir) {
    ShardMergeOptions options;
    options.shard_dir = dir;
    options.env_seed = kEnvSeed;
    MergeShards(sweep, options);
  };
  EXPECT_DEATH(merge_dir(base + "/mixed"), "disagree on the fleet width");
  EXPECT_DEATH(merge_dir(base + "/empty"), "nothing to merge");
  EXPECT_DEATH(merge_dir(base + "/impossible"), "impossible");
  EXPECT_DEATH(merge_dir(base + "/no_such_dir"), "does not exist");
}

// The multi-seed crash/resume contract (and the seed-major order pin): a
// sweep over --seeds={0,1,2} killed mid-seed-block resumes from its journal
// replaying exactly the completed prefix of the canonical grid, recomputes
// the rest, and reproduces the uninterrupted stable artifact bitwise.
TEST(ShardResumeTest, MidSeedBlockKillResumesSeedMajorBitwise) {
  const std::string path = ::testing::TempDir() + "/shard_midseed.journal";
  std::remove(path.c_str());
  const Sweep sweep = MultiSeedSweep(5);
  const std::vector<Scenario> expanded = ExpandCells(sweep);
  ASSERT_EQ(expanded.size(), 6u);

  RunnerOptions opts = QuietOptions();
  opts.journal_path = path;
  RunCache full_cache;
  const SweepResult full = RunSweep(sweep, &full_cache, opts);
  ASSERT_EQ(full.failed_cells, 0);

  // Rebuild the journal as a SIGKILL mid-seed-block would leave it: only the
  // first 3 grid instances' records — all of seed block 0 (2 cells) plus the
  // first cell of seed block 1.
  const JournalReplay replay = ReplayJournalFile(path, sweep.name, kEnvSeed);
  ASSERT_TRUE(replay.header_ok);
  ASSERT_EQ(replay.records.size(), expanded.size());
  std::remove(path.c_str());
  {
    SweepJournal truncated(path, sweep.name, kEnvSeed, /*resume=*/false);
    for (size_t k = 0; k < 3; ++k) {
      truncated.Append(replay.records.at(RunCache::CellKey(expanded[k], kEnvSeed)));
    }
  }

  opts.resume = true;
  RunCache resumed_cache;  // fresh: the journal alone must do the skipping
  const SweepResult resumed = RunSweep(sweep, &resumed_cache, opts);
  EXPECT_EQ(resumed.resumed_cells, 3);
  EXPECT_EQ(resumed.failed_cells, 0);
  for (size_t k = 0; k < resumed.cells.size(); ++k) {
    // Replayed cells are exactly the seed-major prefix, and the result rows
    // stay in canonical grid order: seeds[k / cells.size()] at row k.
    EXPECT_EQ(resumed.cells[k].resumed, k < 3) << "cell " << k;
    EXPECT_EQ(resumed.cells[k].seed, sweep.seeds[k / sweep.cells.size()])
        << "cell " << k;
  }

  EXPECT_EQ(StableArtifactBytes(full, ::testing::TempDir() + "/midseed_a"),
            StableArtifactBytes(resumed, ::testing::TempDir() + "/midseed_b"))
      << "mid-seed-block resume must reproduce the stable artifact bitwise";
}

// Graceful stop: with the stop flag raised, unstarted cells are skipped with
// NaN placeholders and NOT journaled; the result reports interrupted and a
// later resume computes everything the stop skipped.
TEST(GracefulStopTest, StopSkipsCellsAndResumeFinishesBitwise) {
  const std::string path = ::testing::TempDir() + "/stop.journal";
  std::remove(path.c_str());
  const Sweep sweep = MultiSeedSweep(5);

  std::atomic<bool> stop{true};
  RunnerOptions opts = QuietOptions();
  opts.journal_path = path;
  opts.stop = &stop;
  RunCache stopped_cache;
  const SweepResult stopped = RunSweep(sweep, &stopped_cache, opts);
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_EQ(stopped.skipped_cells, static_cast<int64_t>(stopped.cells.size()));
  EXPECT_EQ(stopped.failed_cells, 0);
  for (const CellResult& cell : stopped.cells) {
    EXPECT_TRUE(cell.skipped);
    EXPECT_TRUE(std::isnan(cell.run->eval.accuracy));
  }
  EXPECT_TRUE(AggregateCells(stopped).empty())
      << "skipped placeholders must stay out of aggregates";
  // Skipped cells are not journaled — the journal holds the header alone, so
  // the resume recomputes the whole grid.
  EXPECT_TRUE(SweepJournal(path, sweep.name, kEnvSeed, /*resume=*/true)
                  .replayed()
                  .empty());

  // The interrupted artifact reports itself honestly, stable mode included.
  const std::string json =
      StableArtifactBytes(stopped, ::testing::TempDir() + "/stop_art");
  EXPECT_NE(json.find("\"interrupted\": true"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"skipped\""), std::string::npos);

  RunnerOptions resume_opts = QuietOptions();
  resume_opts.journal_path = path;
  resume_opts.resume = true;
  RunCache resume_cache;
  const SweepResult finished = RunSweep(sweep, &resume_cache, resume_opts);
  EXPECT_FALSE(finished.interrupted);
  EXPECT_EQ(finished.skipped_cells, 0);

  RunCache clean_cache;
  const SweepResult clean = RunSweep(sweep, &clean_cache, QuietOptions());
  EXPECT_EQ(StableArtifactBytes(clean, ::testing::TempDir() + "/stop_a"),
            StableArtifactBytes(finished, ::testing::TempDir() + "/stop_b"));
}

}  // namespace
}  // namespace ppfr::runner

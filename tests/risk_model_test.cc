// Tests for the §V sparsity statistics (Eq. 5) and the §VI-B2 edge
// sensitivity model (Eq. 20), plus the Li & Liu LP baseline solver.

#include <gtest/gtest.h>

#include <cmath>

#include "data/sbm.h"
#include "graph/sparsity_stats.h"
#include "la/stats.h"
#include "privacy/risk_model.h"
#include "solver/qclp.h"
#include "test_util.h"

namespace ppfr {
namespace {

TEST(SparsityStatsTest, CountsOnKnownGraph) {
  // Path 0-1-2-3: edges 3; 2-hop pairs {0,2},{1,3}; unconnected 3.
  const graph::Graph path = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const graph::TwoHopStats stats = graph::ComputeTwoHopStats(path);
  EXPECT_EQ(stats.connected_pairs, 3);
  EXPECT_EQ(stats.two_hop_pairs, 2);
  EXPECT_EQ(stats.unconnected_pairs, 3);
  EXPECT_NEAR(stats.two_hop_ratio, 2.0 / 3.0, 1e-12);
}

TEST(SparsityStatsTest, TriangleHasNoTwoHopPairs) {
  const graph::Graph tri = graph::Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  const graph::TwoHopStats stats = graph::ComputeTwoHopStats(tri);
  EXPECT_EQ(stats.two_hop_pairs, 0);
  EXPECT_EQ(stats.unconnected_pairs, 0);
}

// Proposition V.2's premise: on sparse homophilous graphs the 2-hop pairs
// are a vanishing fraction of the unconnected pairs, and the closed form of
// Eq. 5 is the right order of magnitude.
class Eq5Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Eq5Sweep, TwoHopPairsAreVanishinglyRare) {
  data::SbmConfig cfg;
  cfg.num_nodes = 400;
  cfg.num_classes = 4;
  cfg.homophily = 0.8;
  cfg.average_degree = 4.0;
  const auto data = data::GenerateSbm(cfg, GetParam());
  const graph::TwoHopStats stats = graph::ComputeTwoHopStats(data.graph);
  EXPECT_LT(stats.two_hop_ratio, 0.05) << "2-hop pairs must be a minor part";
  EXPECT_GT(stats.two_hop_pairs, 0);
  // The (n-1)-corrected closed form tracks the empirical ratio closely
  // (independent-links approximation; see sparsity_stats.cc).
  EXPECT_LT(stats.two_hop_ratio, 2.0 * stats.eq5_prediction);
  EXPECT_GT(stats.two_hop_ratio, stats.eq5_prediction / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eq5Sweep, ::testing::Values(1ull, 2ull, 3ull));

class RiskModelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SbmConfig cfg;
    cfg.num_nodes = 200;
    cfg.num_classes = 2;
    cfg.homophily = 0.8;
    cfg.average_degree = 6.0;
    cfg.feature_dim = 16;
    cfg.signature_size = 8;
    data_ = data::GenerateSbm(cfg, 11);
    // Class-separated Gaussian embeddings as the model assumes.
    Rng rng(3);
    embeddings_ = la::Matrix(cfg.num_nodes, 4);
    for (int v = 0; v < cfg.num_nodes; ++v) {
      for (int c = 0; c < 4; ++c) {
        embeddings_(v, c) = rng.Normal(data_.labels[v] == 0 ? 0.0 : 2.0, 0.15);
      }
    }
    class_means_ = la::Matrix(2, 4);
    std::vector<int64_t> counts(2, 0);
    for (int v = 0; v < cfg.num_nodes; ++v) {
      counts[data_.labels[v]]++;
      for (int c = 0; c < 4; ++c) class_means_(data_.labels[v], c) += embeddings_(v, c);
    }
    for (int k = 0; k < 2; ++k) {
      for (int c = 0; c < 4; ++c) class_means_(k, c) /= counts[k];
    }
  }

  data::NodeClassificationData data_;
  la::Matrix embeddings_;
  la::Matrix class_means_;
};

TEST_F(RiskModelFixture, Eq20PredictsMeasuredSensitivity) {
  // Across intra-class pairs, the analytic prediction must correlate with
  // the measured aggregation-distance change and match in scale.
  std::vector<double> predicted, measured;
  Rng rng(7);
  int found = 0;
  while (found < 60) {
    const int i = static_cast<int>(rng.UniformInt(data_.graph.num_nodes()));
    const int j = static_cast<int>(rng.UniformInt(data_.graph.num_nodes()));
    if (i == j || data_.labels[i] != data_.labels[j]) continue;
    ++found;
    predicted.push_back(
        privacy::PredictEdgeSensitivity(data_.graph, data_.labels, class_means_, i, j)
            .predicted_delta_d);
    measured.push_back(privacy::MeasureEdgeSensitivity(data_.graph, embeddings_, i, j));
  }
  const double r = la::PearsonCorrelation(predicted, measured);
  EXPECT_GT(r, 0.55) << "Eq. 20 should track the measured edge sensitivity";
}

TEST_F(RiskModelFixture, SensitivityScalesWithClassGap) {
  // Shrinking ‖μ1 − μ0‖ (what PP aims at) shrinks the predicted footprint.
  la::Matrix merged = class_means_;
  for (int c = 0; c < merged.cols(); ++c) {
    const double mid = 0.5 * (merged(0, c) + merged(1, c));
    merged(0, c) = mid + 0.1 * (merged(0, c) - mid);
    merged(1, c) = mid + 0.1 * (merged(1, c) - mid);
  }
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const int i = static_cast<int>(rng.UniformInt(data_.graph.num_nodes()));
    const int j = static_cast<int>(rng.UniformInt(data_.graph.num_nodes()));
    if (i == j || data_.labels[i] != data_.labels[j]) continue;
    const auto wide =
        privacy::PredictEdgeSensitivity(data_.graph, data_.labels, class_means_, i, j);
    const auto narrow =
        privacy::PredictEdgeSensitivity(data_.graph, data_.labels, merged, i, j);
    EXPECT_LE(narrow.predicted_delta_d, wide.predicted_delta_d + 1e-12);
  }
}

TEST_F(RiskModelFixture, ClassMeanGapMatchesConstruction) {
  const double gap = privacy::ClassMeanGap(embeddings_, data_.labels);
  // Means are ~0 vs ~2 in 4 dimensions -> gap ~ sqrt(4·2²) = 4.
  EXPECT_NEAR(gap, 4.0, 0.4);
}

TEST(LiLiuLpTest, SolutionIsBoxedAndSumPreserving) {
  const std::vector<double> objective{1.0, -0.5, 0.25, 2.0, -2.0};
  const solver::QclpResult result = solver::SolveLiLiuLp(objective);
  double sum = 0.0;
  for (double w : result.w) {
    EXPECT_GE(w, -1.0 - 1e-6);
    EXPECT_LE(w, 1.0 + 1e-6);
    sum += w;
  }
  EXPECT_NEAR(sum, 0.0, 1e-4);
  // The LP pushes weights to the box corners along the objective signs
  // (subject to the zero-sum coupling).
  EXPECT_LT(result.w[3], -0.5);  // largest positive coefficient -> downweight
  EXPECT_GT(result.w[4], 0.5);   // most negative coefficient -> upweight
}

TEST(LiLiuLpTest, WiderSearchSpaceThanQclp) {
  // With a tight ball, the QCLP optimum is strictly worse (larger) than the
  // LP optimum on the same objective — the paper's "wider search space"
  // remark, inverted: the LP is wider than a *tight* QCLP.
  const std::vector<double> objective{1.0, -1.0, 0.5, -0.5};
  solver::QclpProblem tight;
  tight.objective = objective;
  tight.ball_radius_sq = 0.25;
  tight.zero_sum = true;
  const double qclp_value = solver::SolveQclp(tight).objective_value;
  const double lp_value = solver::SolveLiLiuLp(objective).objective_value;
  EXPECT_LT(lp_value, qclp_value);
}

}  // namespace
}  // namespace ppfr

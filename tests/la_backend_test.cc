#include "la/backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/csr_matrix.h"
#include "la/matrix.h"
#include "la/simd_kernels.h"
#include "test_util.h"

namespace ppfr::la {
namespace {

using ::ppfr::testing::RandomMatrix;

constexpr double kTol = 1e-12;
// The SIMD kernels contract multiplies and adds into fmas and reduce over
// vector lanes, so they are a few ulps away from the scalar oracle rather
// than bitwise on it; they must still be bitwise deterministic across thread
// counts (asserted below).
constexpr double kSimdTol = 1e-10;

// Backends that must reproduce the reference oracle, with their tolerance.
const std::vector<std::pair<BackendKind, double>>& ParityKinds() {
  static const auto* kinds = new std::vector<std::pair<BackendKind, double>>{
      {BackendKind::kParallel, kTol}, {BackendKind::kSimd, kSimdTol}};
  return *kinds;
}

Matrix WithBackend(BackendKind kind, int threads,
                   const std::function<Matrix()>& compute) {
  ScopedBackend scoped(kind, threads);
  return compute();
}

void ExpectBitwiseEqual(const Matrix& want, const Matrix& got) {
  ASSERT_TRUE(got.SameShape(want));
  for (int64_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want.data()[i], got.data()[i]) << "flat index " << i;
  }
}

// Checks that the parallel and simd backends reproduce the reference backend
// for one dense computation, across thread counts 1/2/3/4 (1 exercises the
// inline path, 3 an uneven partition, 2 and 4 the acceptance configuration)
// — and that each backend is bitwise deterministic across those thread
// counts.
void ExpectBackendParity(const std::function<Matrix()>& compute) {
  const Matrix want = WithBackend(BackendKind::kReference, 1, compute);
  for (const auto& [kind, tol] : ParityKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Matrix single_thread;
    for (int threads : {1, 2, 3, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const Matrix got = WithBackend(kind, threads, compute);
      ASSERT_TRUE(got.SameShape(want));
      EXPECT_LT(Sub(got, want).MaxAbs(), tol);
      if (threads == 1) {
        single_thread = got;
      } else {
        ExpectBitwiseEqual(single_thread, got);
      }
    }
  }
}

// setenv/restore guard for the PPFR_SIMD_* escape hatches, which backends
// sample at construction time.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) previous_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnvVar() {
    if (previous_.has_value()) {
      ::setenv(name_, previous_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

TEST(BackendRegistryTest, KindNamesAndScopedSwap) {
  EXPECT_EQ(BackendKindName(BackendKind::kReference), "reference");
  EXPECT_EQ(BackendKindName(BackendKind::kParallel), "parallel");
  EXPECT_EQ(BackendKindName(BackendKind::kSimd), "simd");
  const BackendKind before = ActiveBackendKind();
  {
    ScopedBackend scoped(BackendKind::kReference, 1);
    EXPECT_EQ(ActiveBackendKind(), BackendKind::kReference);
    EXPECT_EQ(ActiveBackend().name(), "reference");
  }
  EXPECT_EQ(ActiveBackendKind(), before);
}

TEST(BackendRegistryTest, MakeBackendStandaloneInstances) {
  const auto ref = MakeBackend(BackendKind::kReference, 1);
  const auto par = MakeBackend(BackendKind::kParallel, 2);
  const auto simd_be = MakeBackend(BackendKind::kSimd, 2);
  EXPECT_EQ(ref->name(), "reference");
  EXPECT_EQ(par->name(), "parallel");
  EXPECT_EQ(simd_be->name(), "simd");
  EXPECT_EQ(par->num_threads(), 2);
  EXPECT_EQ(simd_be->num_threads(), 2);
  EXPECT_FALSE(ref->simd_active());
  EXPECT_FALSE(par->simd_active());
  // The simd backend's feature detection must agree with the probe the bench
  // artifacts record.
  EXPECT_EQ(simd_be->simd_active(), simd::KernelsUsable());
}

// Exhaustive shape sweep over all GEMM variants, including empty dimensions.
// Sizes cross the register-tile (4x8), cache-block (64/256) and serial-cutoff
// boundaries of the parallel backend.
TEST(BackendParityTest, GemmShapeSweep) {
  const std::vector<int> sizes = {0, 1, 2, 3, 5, 8, 17, 33, 65};
  Rng rng(7);
  for (int m : sizes) {
    for (int k : sizes) {
      for (int n : sizes) {
        const Matrix a = RandomMatrix(m, k, &rng);
        const Matrix b = RandomMatrix(k, n, &rng);
        ExpectBackendParity([&] { return MatMul(a, b); });
        const Matrix at = RandomMatrix(k, m, &rng);
        ExpectBackendParity([&] { return MatMulTransA(at, b); });
        const Matrix bt = RandomMatrix(n, k, &rng);
        ExpectBackendParity([&] { return MatMulTransB(a, bt); });
      }
    }
  }
}

TEST(BackendParityTest, SkinnyMGemmPartitionsColumnPanels) {
  Rng rng(12);
  // m=16 -> a single 64-row block, so the parallel backend partitions the B
  // column panels across threads instead (weight-gradient-shaped GEMM).
  const Matrix a = RandomMatrix(16, 300, &rng);
  const Matrix b = RandomMatrix(300, 2000, &rng);
  ExpectBackendParity([&] { return MatMul(a, b); });
  const Matrix at = RandomMatrix(300, 16, &rng);
  ExpectBackendParity([&] { return MatMulTransA(at, b); });
}

TEST(BackendParityTest, LargeGemmCrossesAllBlockBoundaries) {
  Rng rng(8);
  // 193 rows -> 4 row-blocks of 64 with a ragged tail; 300 k -> 2 KC panels;
  // 263 cols -> ragged NR tail.
  const Matrix a = RandomMatrix(193, 300, &rng);
  const Matrix b = RandomMatrix(300, 263, &rng);
  ExpectBackendParity([&] { return MatMul(a, b); });
  const Matrix at = RandomMatrix(300, 193, &rng);
  ExpectBackendParity([&] { return MatMulTransA(at, b); });
  const Matrix bt = RandomMatrix(263, 300, &rng);
  ExpectBackendParity([&] { return MatMulTransB(a, bt); });
}

TEST(BackendParityTest, TransposeAndElementwise) {
  Rng rng(9);
  const Matrix a = RandomMatrix(211, 307, &rng);  // > elementwise cutoff
  const Matrix b = RandomMatrix(211, 307, &rng);
  ExpectBackendParity([&] { return Transpose(a); });
  ExpectBackendParity([&] { return Hadamard(a, b); });
  ExpectBackendParity([&] {
    Matrix c = a;
    c.Axpy(-1.75, b);
    c.Scale(0.5);
    return c;
  });

  const double want = [&] {
    ScopedBackend scoped(BackendKind::kReference, 1);
    return Dot(a, b);
  }();
  for (const auto& [kind, tol] : ParityKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    std::optional<double> single_thread;
    for (int threads : {1, 2, 3, 4}) {
      ScopedBackend scoped(kind, threads);
      const double got = Dot(a, b);
      EXPECT_NEAR(got, want, tol * std::fabs(want));
      if (!single_thread.has_value()) {
        single_thread = got;
      } else {
        EXPECT_EQ(got, *single_thread) << "threads=" << threads;
      }
    }
  }
}

TEST(BackendParityTest, SpmmRandomAndEmpty) {
  Rng rng(10);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 30000; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(1200)),
                        static_cast<int>(rng.UniformInt(900)), rng.Normal()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(1200, 900, triplets);
  const Matrix x = RandomMatrix(900, 24, &rng);
  ExpectBackendParity([&] { return sparse.Multiply(x); });
  ExpectBackendParity([&] {
    Matrix out(1200, 24, 1.0);
    sparse.MultiplyAccum(x, -0.5, &out);
    return out;
  });

  // Degenerate shapes: no rows, no columns in x, and an all-empty operator.
  const CsrMatrix no_rows = CsrMatrix::FromTriplets(0, 5, {});
  const Matrix x5 = RandomMatrix(5, 3, &rng);
  ExpectBackendParity([&] { return no_rows.Multiply(x5); });
  const Matrix x0 = RandomMatrix(900, 0, &rng);
  ExpectBackendParity([&] { return sparse.Multiply(x0); });
  const CsrMatrix empty = CsrMatrix::FromTriplets(4, 4, {});
  const Matrix x4 = RandomMatrix(4, 2, &rng);
  ExpectBackendParity([&] { return empty.Multiply(x4); });
}

TEST(BackendParityTest, SpmmPowerLawDegreeGraph) {
  // Heavily skewed degrees: a few hub rows own most of the nnz, so the
  // nnz-balanced partition places chunk boundaries inside the hub region
  // while a row-count partition would serialise on one chunk. Results must
  // match the reference for every thread count.
  Rng rng(13);
  const int n = 2000;
  std::vector<Triplet> triplets;
  for (int hub = 0; hub < 4; ++hub) {
    for (int j = 0; j < n; j += 1 + hub) {
      triplets.push_back({hub, j, rng.Normal()});
    }
  }
  for (int i = 4; i < n; ++i) {
    for (int d = 0; d < 2; ++d) {
      triplets.push_back({i, static_cast<int>(rng.UniformInt(n)), rng.Normal()});
    }
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(n, n, triplets);
  const Matrix x = RandomMatrix(n, 16, &rng);
  ExpectBackendParity([&] { return sparse.Multiply(x); });
  ExpectBackendParity([&] {
    Matrix out(n, 16, 0.25);
    sparse.MultiplyAccum(x, 2.0, &out);
    return out;
  });
}

TEST(CsrMatrixTest, MultiplyAccumRowsMatchesFullProductOnSubset) {
  Rng rng(14);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 400; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(60)),
                        static_cast<int>(rng.UniformInt(60)), rng.Normal()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(60, 60, triplets);
  // x is zero outside rows {3, 17, 40}; the masked row-subset accumulate
  // must reproduce the full product bit for bit on the requested rows.
  Matrix x(60, 5);
  const std::vector<int> nonzero_rows{3, 17, 40};
  std::vector<uint8_t> mask(60, 0);
  for (int r : nonzero_rows) {
    mask[static_cast<size_t>(r)] = 1;
    for (int c = 0; c < 5; ++c) x(r, c) = rng.Normal();
  }
  const Matrix full = sparse.Multiply(x);

  const std::vector<int> subset{0, 5, 17, 33, 59};
  Matrix masked(60, 5);
  sparse.MultiplyAccumRows(x, 1.0, &masked, subset, mask);
  Matrix unmasked(60, 5);
  sparse.MultiplyAccumRows(x, 1.0, &unmasked, subset);
  for (int r : subset) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_EQ(masked(r, c), full(r, c)) << "masked (" << r << "," << c << ")";
      EXPECT_EQ(unmasked(r, c), full(r, c)) << "unmasked (" << r << "," << c << ")";
    }
  }
}

// The support-guided kernels (seeded-backward row supports) now dispatch
// through the backend: the parallel route must stay BITWISE on the serial
// loops (same per-element order, scalar leaf kernels), the simd route within
// tolerance and bitwise deterministic across thread counts. Supports cover
// the large case (above the threading thresholds), the empty support, a
// single row, and 1-column shapes.
TEST(BackendParityTest, SupportKernelRoutesMatchSerialReference) {
  Rng rng(31);
  const int m = 160, k = 96, n = 80;
  const Matrix g = RandomMatrix(m, n, &rng);
  const Matrix bmat = RandomMatrix(k, n, &rng);
  const Matrix a = RandomMatrix(m, k, &rng);
  std::vector<int> big_support;
  for (int r = 0; r < m; r += 2) big_support.push_back(r);
  const auto ref = MakeBackend(BackendKind::kReference, 1);

  for (const std::vector<int>& rows :
       {big_support, std::vector<int>{}, std::vector<int>{7}}) {
    SCOPED_TRACE("support size " + std::to_string(rows.size()));
    Matrix want_tb(m, k, 0.5);
    ref->GemmTransBAccumRows(g, bmat, &want_tb, rows);
    Matrix want_ta(k, n, -0.25);
    ref->GemmTransAAccumRows(a, g, &want_ta, rows);

    for (const auto& [kind, tol] : ParityKinds()) {
      SCOPED_TRACE(BackendKindName(kind));
      Matrix tb1, ta1;
      for (int threads : {1, 2, 3, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const auto backend = MakeBackend(kind, threads);
        Matrix got_tb(m, k, 0.5);
        backend->GemmTransBAccumRows(g, bmat, &got_tb, rows);
        Matrix got_ta(k, n, -0.25);
        backend->GemmTransAAccumRows(a, g, &got_ta, rows);
        if (kind == BackendKind::kParallel) {
          ExpectBitwiseEqual(want_tb, got_tb);
          ExpectBitwiseEqual(want_ta, got_ta);
        } else {
          EXPECT_LT(Sub(got_tb, want_tb).MaxAbs(), tol);
          EXPECT_LT(Sub(got_ta, want_ta).MaxAbs(), tol);
        }
        if (threads == 1) {
          tb1 = got_tb;
          ta1 = got_ta;
        } else {
          ExpectBitwiseEqual(tb1, got_tb);
          ExpectBitwiseEqual(ta1, got_ta);
        }
      }
    }
  }

  // 1-column edge shapes: dot over a single element, axpy of length 1.
  const Matrix g1 = RandomMatrix(m, 1, &rng);
  const Matrix b1 = RandomMatrix(1, 1, &rng);
  Matrix want1(m, 1);
  ref->GemmTransBAccumRows(g1, b1, &want1, big_support);
  for (const auto& [kind, tol] : ParityKinds()) {
    Matrix got1(m, 1);
    MakeBackend(kind, 3)->GemmTransBAccumRows(g1, b1, &got1, big_support);
    EXPECT_LT(Sub(got1, want1).MaxAbs(), tol) << BackendKindName(kind);
  }
}

TEST(BackendParityTest, SpmmAccumRowsRouteMatchesSerialReference) {
  Rng rng(33);
  const int nnodes = 400, ncols = 16;
  std::vector<Triplet> triplets;
  for (int i = 0; i < 12000; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(nnodes)),
                        static_cast<int>(rng.UniformInt(nnodes)), rng.Normal()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(nnodes, nnodes, triplets);
  const Matrix x = RandomMatrix(nnodes, ncols, &rng);
  std::vector<int> support;
  for (int r = 0; r < nnodes; r += 2) support.push_back(r);
  std::vector<uint8_t> mask(nnodes, 0);
  for (int r = 0; r < nnodes; r += 3) mask[static_cast<size_t>(r)] = 1;
  const auto ref = MakeBackend(BackendKind::kReference, 1);

  for (const std::vector<uint8_t>& m : {std::vector<uint8_t>{}, mask}) {
    SCOPED_TRACE(m.empty() ? "unmasked" : "masked");
    for (const std::vector<int>& rows : {support, std::vector<int>{}}) {
      SCOPED_TRACE("support size " + std::to_string(rows.size()));
      Matrix want(nnodes, ncols, 1.0);
      ref->SpmmAccumRows(sparse, x, -0.5, &want, rows, m);
      for (const auto& [kind, tol] : ParityKinds()) {
        SCOPED_TRACE(BackendKindName(kind));
        Matrix first;
        for (int threads : {1, 2, 3, 4}) {
          Matrix got(nnodes, ncols, 1.0);
          MakeBackend(kind, threads)->SpmmAccumRows(sparse, x, -0.5, &got, rows, m);
          if (kind == BackendKind::kParallel) {
            ExpectBitwiseEqual(want, got);
          } else {
            EXPECT_LT(Sub(got, want).MaxAbs(), tol);
          }
          if (threads == 1) {
            first = got;
          } else {
            ExpectBitwiseEqual(first, got);
          }
        }
      }
    }
  }
}

TEST(BackendApplyTest, CoversRangeOnceUnderBothBackends) {
  for (const BackendKind kind : {BackendKind::kReference, BackendKind::kParallel,
                                 BackendKind::kSimd}) {
    const auto backend = MakeBackend(kind, 3);
    std::vector<std::atomic<int>> hits(50000);
    backend->Apply(50000, 1024, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(BackendParityTest, VectorOpsMatchAcrossThreadCounts) {
  Rng rng(11);
  const int64_t n = 100001;  // > reduce-block and elementwise cutoffs, ragged
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.Normal();
  for (auto& v : b) v = rng.Normal();

  const auto ref = MakeBackend(BackendKind::kReference, 1);
  const double want_dot = ref->VDot(a.data(), b.data(), n);
  std::vector<double> want_axpy = b;
  ref->VAxpy(0.25, a.data(), want_axpy.data(), n);

  for (const auto& [kind, tol] : ParityKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    std::optional<double> dot1;
    std::vector<double> axpy1;
    for (int threads : {1, 2, 3, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const auto backend = MakeBackend(kind, threads);
      const double got_dot = backend->VDot(a.data(), b.data(), n);
      EXPECT_NEAR(got_dot, want_dot, tol * std::fabs(want_dot));
      std::vector<double> got_axpy = b;
      backend->VAxpy(0.25, a.data(), got_axpy.data(), n);
      double max_diff = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        max_diff = std::max(max_diff, std::fabs(got_axpy[i] - want_axpy[i]));
      }
      EXPECT_LT(max_diff, tol);
      // Bitwise determinism across thread counts, including the fma'd tails.
      if (!dot1.has_value()) {
        dot1 = got_dot;
        axpy1 = got_axpy;
      } else {
        EXPECT_EQ(got_dot, *dot1);
        ASSERT_EQ(got_axpy.size(), axpy1.size());
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(got_axpy[i], axpy1[i]) << "index " << i;
        }
      }
    }
  }
}

// Fused CG kernels (VAxpyDot / VDotAxpy). Contracts from backend.h:
//   * VAxpyDot updates y exactly like VAxpy and returns the bits a follow-up
//     VDot(y, y) would produce — on every backend, for every thread count.
//   * VDotAxpy computes y = x + beta*y elementwise; a follow-up VDot(y, y)
//     reproduces the returned bits; and the result is thread-count invariant.
// Sizes straddle the parallel elementwise cutoff and the reduce block, with
// ragged tails for the SIMD lane loop.
TEST(BackendParityTest, FusedCgKernelsHonourTheirContracts) {
  Rng rng(23);
  for (const int64_t n : {int64_t{7}, int64_t{1013}, int64_t{40003}, int64_t{100001}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> x(n), y0(n);
    for (auto& v : x) v = rng.Normal();
    for (auto& v : y0) v = rng.Normal();

    for (BackendKind kind :
         {BackendKind::kReference, BackendKind::kParallel, BackendKind::kSimd}) {
      SCOPED_TRACE(BackendKindName(kind));
      std::optional<double> axpy_dot1;
      std::vector<double> axpy_y1;
      std::optional<double> xpay_dot1;
      std::vector<double> xpay_y1;
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const auto backend = MakeBackend(kind, threads);

        // VAxpyDot == VAxpy then VDot(y, y), bitwise.
        std::vector<double> y_fused = y0;
        const double fused = backend->VAxpyDot(0.37, x.data(), y_fused.data(), n);
        std::vector<double> y_unfused = y0;
        backend->VAxpy(0.37, x.data(), y_unfused.data(), n);
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(y_fused[i], y_unfused[i]) << "VAxpyDot update differs at " << i;
        }
        EXPECT_EQ(fused, backend->VDot(y_fused.data(), y_fused.data(), n));

        // VDotAxpy: y = x + beta*y; follow-up VDot reproduces the bits.
        std::vector<double> y_dir = y0;
        const double dir_norm = backend->VDotAxpy(-0.58, x.data(), y_dir.data(), n);
        EXPECT_EQ(dir_norm, backend->VDot(y_dir.data(), y_dir.data(), n));
        for (int64_t i = 0; i < n; ++i) {
          const double want = x[i] + (-0.58) * y0[i];
          ASSERT_NEAR(y_dir[i], want, 1e-12 * std::max(1.0, std::fabs(want)))
              << "VDotAxpy update wrong at " << i;
        }

        // Thread-count invariance of both fused kernels, bitwise.
        if (!axpy_dot1.has_value()) {
          axpy_dot1 = fused;
          axpy_y1 = y_fused;
          xpay_dot1 = dir_norm;
          xpay_y1 = y_dir;
        } else {
          EXPECT_EQ(fused, *axpy_dot1);
          EXPECT_EQ(dir_norm, *xpay_dot1);
          for (int64_t i = 0; i < n; ++i) {
            ASSERT_EQ(y_fused[i], axpy_y1[i]) << "VAxpyDot thread variance at " << i;
            ASSERT_EQ(y_dir[i], xpay_y1[i]) << "VDotAxpy thread variance at " << i;
          }
        }
      }
    }
  }
}

// Odd/tail lengths around the 4-lane AVX2 width: n = 0..2 vector widths plus
// ragged remainders, exercising the lane loop, the single-lane step and the
// scalar tail of every flat kernel.
TEST(SimdBackendTest, VectorKernelTailSizes) {
  Rng rng(19);
  const auto ref = MakeBackend(BackendKind::kReference, 1);
  const auto simd_be = MakeBackend(BackendKind::kSimd, 1);
  for (const int64_t n : {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = rng.Normal();
    for (auto& v : b) v = rng.Normal();

    const double want_dot = ref->VDot(a.data(), b.data(), n);
    EXPECT_NEAR(simd_be->VDot(a.data(), b.data(), n), want_dot,
                kSimdTol * std::max(1.0, std::fabs(want_dot)));

    std::vector<double> want_y = b, got_y = b;
    ref->VAxpy(-1.5, a.data(), want_y.data(), n);
    simd_be->VAxpy(-1.5, a.data(), got_y.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got_y[i], want_y[i], kSimdTol) << "axpy index " << i;
    }

    std::vector<double> want_x = a, got_x = a;
    ref->VScale(0.75, want_x.data(), n);
    simd_be->VScale(0.75, got_x.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(got_x[i], want_x[i]) << "scale index " << i;
    }
  }
}

// PPFR_SIMD_DISABLE=1 must reroute every leaf kernel to the scalar set, which
// makes the simd backend reproduce the parallel backend bit for bit.
TEST(SimdBackendTest, ForcedFallbackMatchesParallelBitwise) {
  ScopedEnvVar disable("PPFR_SIMD_DISABLE", "1");
  const auto fallback = MakeBackend(BackendKind::kSimd, 3);
  const auto par = MakeBackend(BackendKind::kParallel, 3);
  EXPECT_FALSE(fallback->simd_active());
  EXPECT_EQ(fallback->name(), "simd");

  Rng rng(23);
  const Matrix a = RandomMatrix(193, 300, &rng);
  const Matrix b = RandomMatrix(300, 263, &rng);
  Matrix want(193, 263), got(193, 263);
  par->Gemm(a, b, &want);
  fallback->Gemm(a, b, &got);
  ExpectBitwiseEqual(want, got);

  const int64_t n = 100001;
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.Normal();
  for (auto& v : y) v = rng.Normal();
  EXPECT_EQ(fallback->VDot(x.data(), y.data(), n), par->VDot(x.data(), y.data(), n));
  std::vector<double> y_par = y, y_fb = y;
  par->VAxpy(2.5, x.data(), y_par.data(), n);
  fallback->VAxpy(2.5, x.data(), y_fb.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(y_fb[i], y_par[i]) << "index " << i;
}

// The AVX2 and AVX-512 GEMM micro-kernels apply one fma per (element, k) in
// the same order, so pinning the tile with PPFR_SIMD_AVX512=0 must not change
// a single bit. (Skipped on hardware where only one tile can run.)
TEST(SimdBackendTest, Avx2AndAvx512TilesBitwiseIdentical) {
  if (!simd::KernelsUsable() || !simd::CpuSupportsAvx512()) {
    GTEST_SKIP() << "needs a usable AVX-512 SIMD backend";
  }
  Rng rng(29);
  const Matrix a = RandomMatrix(193, 300, &rng);
  const Matrix b = RandomMatrix(300, 263, &rng);
  Matrix wide(193, 263), narrow(193, 263);
  MakeBackend(BackendKind::kSimd, 2)->Gemm(a, b, &wide);
  {
    ScopedEnvVar pin("PPFR_SIMD_AVX512", "0");
    MakeBackend(BackendKind::kSimd, 2)->Gemm(a, b, &narrow);
  }
  ExpectBitwiseEqual(wide, narrow);
}

// The autograd layer must stay numerically correct under either backend:
// grad-check ag::MatMul and ag::SpMM with each one active.
class AutogradUnderBackend : public ::testing::TestWithParam<BackendKind> {};

TEST_P(AutogradUnderBackend, MatMulGradCheck) {
  ScopedBackend scoped(GetParam(), 3);
  Rng rng(21);
  ag::Parameter a("a", RandomMatrix(6, 9, &rng));
  ag::Parameter b("b", RandomMatrix(9, 4, &rng));
  auto build = [&](ag::Tape& t) {
    return ag::MeanAll(ag::Square(ag::MatMul(t.Leaf(&a), t.Leaf(&b))));
  };
  const ag::GradCheckResult r = ag::GradCheck(build, {&a, &b}, &rng);
  EXPECT_LT(r.max_rel_error, 1e-5);
}

TEST_P(AutogradUnderBackend, SpMMGradCheck) {
  ScopedBackend scoped(GetParam(), 3);
  Rng rng(22);
  ag::Parameter x("x", RandomMatrix(8, 5, &rng));
  std::vector<Triplet> triplets;
  for (int i = 0; i < 24; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(8)),
                        static_cast<int>(rng.UniformInt(8)), rng.Normal()});
  }
  auto sp = ag::MakeSparseOperand(CsrMatrix::FromTriplets(8, 8, triplets),
                                  /*symmetric=*/false);
  auto build = [&](ag::Tape& t) {
    return ag::MeanAll(ag::Square(ag::SpMM(sp, t.Leaf(&x))));
  };
  const ag::GradCheckResult r = ag::GradCheck(build, {&x}, &rng);
  EXPECT_LT(r.max_rel_error, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Backends, AutogradUnderBackend,
                         ::testing::Values(BackendKind::kReference,
                                           BackendKind::kParallel,
                                           BackendKind::kSimd),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return BackendKindName(info.param);
                         });

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeAndLargeGrain) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Grain larger than the range -> single inline chunk on the caller.
  pool.ParallelFor(0, 10, 100, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 257, 8, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(MatrixCheckTest, FromRowsRejectsRaggedInput) {
  EXPECT_DEATH(Matrix::FromRows({{1.0, 2.0}, {3.0}}), "ragged");
}

#ifndef NDEBUG
TEST(MatrixCheckTest, DebugBoundsCheckOnAccess) {
  Matrix m(2, 3);
  EXPECT_DEATH((void)m(2, 0), "out of range");
  EXPECT_DEATH((void)m(0, 3), "out of range");
  EXPECT_DEATH((void)m(-1, 0), "out of range");
  EXPECT_DEATH((void)m.row(5), "out of range");
}
#endif

}  // namespace
}  // namespace ppfr::la

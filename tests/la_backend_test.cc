#include "la/backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/csr_matrix.h"
#include "la/matrix.h"
#include "test_util.h"

namespace ppfr::la {
namespace {

using ::ppfr::testing::RandomMatrix;

constexpr double kTol = 1e-12;

Matrix WithBackend(BackendKind kind, int threads,
                   const std::function<Matrix()>& compute) {
  ScopedBackend scoped(kind, threads);
  return compute();
}

// Checks that the parallel backend reproduces the reference backend for one
// dense computation, across several thread counts (1 exercises the inline
// path, 3 an uneven partition, 4 the acceptance configuration).
void ExpectBackendParity(const std::function<Matrix()>& compute) {
  const Matrix want = WithBackend(BackendKind::kReference, 1, compute);
  for (int threads : {1, 3, 4}) {
    const Matrix got = WithBackend(BackendKind::kParallel, threads, compute);
    ASSERT_TRUE(got.SameShape(want));
    EXPECT_LT(Sub(got, want).MaxAbs(), kTol);
  }
}

TEST(BackendRegistryTest, KindNamesAndScopedSwap) {
  EXPECT_EQ(BackendKindName(BackendKind::kReference), "reference");
  EXPECT_EQ(BackendKindName(BackendKind::kParallel), "parallel");
  const BackendKind before = ActiveBackendKind();
  {
    ScopedBackend scoped(BackendKind::kReference, 1);
    EXPECT_EQ(ActiveBackendKind(), BackendKind::kReference);
    EXPECT_EQ(ActiveBackend().name(), "reference");
  }
  EXPECT_EQ(ActiveBackendKind(), before);
}

TEST(BackendRegistryTest, MakeBackendStandaloneInstances) {
  const auto ref = MakeBackend(BackendKind::kReference, 1);
  const auto par = MakeBackend(BackendKind::kParallel, 2);
  EXPECT_EQ(ref->name(), "reference");
  EXPECT_EQ(par->name(), "parallel");
  EXPECT_EQ(par->num_threads(), 2);
}

// Exhaustive shape sweep over all GEMM variants, including empty dimensions.
// Sizes cross the register-tile (4x8), cache-block (64/256) and serial-cutoff
// boundaries of the parallel backend.
TEST(BackendParityTest, GemmShapeSweep) {
  const std::vector<int> sizes = {0, 1, 2, 3, 5, 8, 17, 33, 65};
  Rng rng(7);
  for (int m : sizes) {
    for (int k : sizes) {
      for (int n : sizes) {
        const Matrix a = RandomMatrix(m, k, &rng);
        const Matrix b = RandomMatrix(k, n, &rng);
        ExpectBackendParity([&] { return MatMul(a, b); });
        const Matrix at = RandomMatrix(k, m, &rng);
        ExpectBackendParity([&] { return MatMulTransA(at, b); });
        const Matrix bt = RandomMatrix(n, k, &rng);
        ExpectBackendParity([&] { return MatMulTransB(a, bt); });
      }
    }
  }
}

TEST(BackendParityTest, SkinnyMGemmPartitionsColumnPanels) {
  Rng rng(12);
  // m=16 -> a single 64-row block, so the parallel backend partitions the B
  // column panels across threads instead (weight-gradient-shaped GEMM).
  const Matrix a = RandomMatrix(16, 300, &rng);
  const Matrix b = RandomMatrix(300, 2000, &rng);
  ExpectBackendParity([&] { return MatMul(a, b); });
  const Matrix at = RandomMatrix(300, 16, &rng);
  ExpectBackendParity([&] { return MatMulTransA(at, b); });
}

TEST(BackendParityTest, LargeGemmCrossesAllBlockBoundaries) {
  Rng rng(8);
  // 193 rows -> 4 row-blocks of 64 with a ragged tail; 300 k -> 2 KC panels;
  // 263 cols -> ragged NR tail.
  const Matrix a = RandomMatrix(193, 300, &rng);
  const Matrix b = RandomMatrix(300, 263, &rng);
  ExpectBackendParity([&] { return MatMul(a, b); });
  const Matrix at = RandomMatrix(300, 193, &rng);
  ExpectBackendParity([&] { return MatMulTransA(at, b); });
  const Matrix bt = RandomMatrix(263, 300, &rng);
  ExpectBackendParity([&] { return MatMulTransB(a, bt); });
}

TEST(BackendParityTest, TransposeAndElementwise) {
  Rng rng(9);
  const Matrix a = RandomMatrix(211, 307, &rng);  // > elementwise cutoff
  const Matrix b = RandomMatrix(211, 307, &rng);
  ExpectBackendParity([&] { return Transpose(a); });
  ExpectBackendParity([&] { return Hadamard(a, b); });
  ExpectBackendParity([&] {
    Matrix c = a;
    c.Axpy(-1.75, b);
    c.Scale(0.5);
    return c;
  });

  const double want = [&] {
    ScopedBackend scoped(BackendKind::kReference, 1);
    return Dot(a, b);
  }();
  for (int threads : {1, 3, 4}) {
    ScopedBackend scoped(BackendKind::kParallel, threads);
    EXPECT_NEAR(Dot(a, b), want, kTol * std::fabs(want));
  }
}

TEST(BackendParityTest, SpmmRandomAndEmpty) {
  Rng rng(10);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 30000; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(1200)),
                        static_cast<int>(rng.UniformInt(900)), rng.Normal()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(1200, 900, triplets);
  const Matrix x = RandomMatrix(900, 24, &rng);
  ExpectBackendParity([&] { return sparse.Multiply(x); });
  ExpectBackendParity([&] {
    Matrix out(1200, 24, 1.0);
    sparse.MultiplyAccum(x, -0.5, &out);
    return out;
  });

  // Degenerate shapes: no rows, no columns in x, and an all-empty operator.
  const CsrMatrix no_rows = CsrMatrix::FromTriplets(0, 5, {});
  const Matrix x5 = RandomMatrix(5, 3, &rng);
  ExpectBackendParity([&] { return no_rows.Multiply(x5); });
  const Matrix x0 = RandomMatrix(900, 0, &rng);
  ExpectBackendParity([&] { return sparse.Multiply(x0); });
  const CsrMatrix empty = CsrMatrix::FromTriplets(4, 4, {});
  const Matrix x4 = RandomMatrix(4, 2, &rng);
  ExpectBackendParity([&] { return empty.Multiply(x4); });
}

TEST(BackendParityTest, SpmmPowerLawDegreeGraph) {
  // Heavily skewed degrees: a few hub rows own most of the nnz, so the
  // nnz-balanced partition places chunk boundaries inside the hub region
  // while a row-count partition would serialise on one chunk. Results must
  // match the reference for every thread count.
  Rng rng(13);
  const int n = 2000;
  std::vector<Triplet> triplets;
  for (int hub = 0; hub < 4; ++hub) {
    for (int j = 0; j < n; j += 1 + hub) {
      triplets.push_back({hub, j, rng.Normal()});
    }
  }
  for (int i = 4; i < n; ++i) {
    for (int d = 0; d < 2; ++d) {
      triplets.push_back({i, static_cast<int>(rng.UniformInt(n)), rng.Normal()});
    }
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(n, n, triplets);
  const Matrix x = RandomMatrix(n, 16, &rng);
  ExpectBackendParity([&] { return sparse.Multiply(x); });
  ExpectBackendParity([&] {
    Matrix out(n, 16, 0.25);
    sparse.MultiplyAccum(x, 2.0, &out);
    return out;
  });
}

TEST(CsrMatrixTest, MultiplyAccumRowsMatchesFullProductOnSubset) {
  Rng rng(14);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 400; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(60)),
                        static_cast<int>(rng.UniformInt(60)), rng.Normal()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(60, 60, triplets);
  // x is zero outside rows {3, 17, 40}; the masked row-subset accumulate
  // must reproduce the full product bit for bit on the requested rows.
  Matrix x(60, 5);
  const std::vector<int> nonzero_rows{3, 17, 40};
  std::vector<uint8_t> mask(60, 0);
  for (int r : nonzero_rows) {
    mask[static_cast<size_t>(r)] = 1;
    for (int c = 0; c < 5; ++c) x(r, c) = rng.Normal();
  }
  const Matrix full = sparse.Multiply(x);

  const std::vector<int> subset{0, 5, 17, 33, 59};
  Matrix masked(60, 5);
  sparse.MultiplyAccumRows(x, 1.0, &masked, subset, mask);
  Matrix unmasked(60, 5);
  sparse.MultiplyAccumRows(x, 1.0, &unmasked, subset);
  for (int r : subset) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_EQ(masked(r, c), full(r, c)) << "masked (" << r << "," << c << ")";
      EXPECT_EQ(unmasked(r, c), full(r, c)) << "unmasked (" << r << "," << c << ")";
    }
  }
}

TEST(BackendApplyTest, CoversRangeOnceUnderBothBackends) {
  for (const BackendKind kind : {BackendKind::kReference, BackendKind::kParallel}) {
    const auto backend = MakeBackend(kind, 3);
    std::vector<std::atomic<int>> hits(50000);
    backend->Apply(50000, 1024, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(BackendParityTest, VectorOpsMatchAcrossThreadCounts) {
  Rng rng(11);
  const int64_t n = 100001;  // > reduce-block and elementwise cutoffs, ragged
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.Normal();
  for (auto& v : b) v = rng.Normal();

  const auto ref = MakeBackend(BackendKind::kReference, 1);
  const double want_dot = ref->VDot(a.data(), b.data(), n);
  std::vector<double> want_axpy = b;
  ref->VAxpy(0.25, a.data(), want_axpy.data(), n);

  for (int threads : {1, 3, 4}) {
    const auto par = MakeBackend(BackendKind::kParallel, threads);
    EXPECT_NEAR(par->VDot(a.data(), b.data(), n), want_dot,
                kTol * std::fabs(want_dot));
    std::vector<double> got_axpy = b;
    par->VAxpy(0.25, a.data(), got_axpy.data(), n);
    double max_diff = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      max_diff = std::max(max_diff, std::fabs(got_axpy[i] - want_axpy[i]));
    }
    EXPECT_LT(max_diff, kTol);
  }
}

// The autograd layer must stay numerically correct under either backend:
// grad-check ag::MatMul and ag::SpMM with each one active.
class AutogradUnderBackend : public ::testing::TestWithParam<BackendKind> {};

TEST_P(AutogradUnderBackend, MatMulGradCheck) {
  ScopedBackend scoped(GetParam(), 3);
  Rng rng(21);
  ag::Parameter a("a", RandomMatrix(6, 9, &rng));
  ag::Parameter b("b", RandomMatrix(9, 4, &rng));
  auto build = [&](ag::Tape& t) {
    return ag::MeanAll(ag::Square(ag::MatMul(t.Leaf(&a), t.Leaf(&b))));
  };
  const ag::GradCheckResult r = ag::GradCheck(build, {&a, &b}, &rng);
  EXPECT_LT(r.max_rel_error, 1e-5);
}

TEST_P(AutogradUnderBackend, SpMMGradCheck) {
  ScopedBackend scoped(GetParam(), 3);
  Rng rng(22);
  ag::Parameter x("x", RandomMatrix(8, 5, &rng));
  std::vector<Triplet> triplets;
  for (int i = 0; i < 24; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(8)),
                        static_cast<int>(rng.UniformInt(8)), rng.Normal()});
  }
  auto sp = ag::MakeSparseOperand(CsrMatrix::FromTriplets(8, 8, triplets),
                                  /*symmetric=*/false);
  auto build = [&](ag::Tape& t) {
    return ag::MeanAll(ag::Square(ag::SpMM(sp, t.Leaf(&x))));
  };
  const ag::GradCheckResult r = ag::GradCheck(build, {&x}, &rng);
  EXPECT_LT(r.max_rel_error, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Backends, AutogradUnderBackend,
                         ::testing::Values(BackendKind::kReference,
                                           BackendKind::kParallel),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return BackendKindName(info.param);
                         });

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeAndLargeGrain) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Grain larger than the range -> single inline chunk on the caller.
  pool.ParallelFor(0, 10, 100, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 257, 8, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(MatrixCheckTest, FromRowsRejectsRaggedInput) {
  EXPECT_DEATH(Matrix::FromRows({{1.0, 2.0}, {3.0}}), "ragged");
}

#ifndef NDEBUG
TEST(MatrixCheckTest, DebugBoundsCheckOnAccess) {
  Matrix m(2, 3);
  EXPECT_DEATH((void)m(2, 0), "out of range");
  EXPECT_DEATH((void)m(0, 3), "out of range");
  EXPECT_DEATH((void)m(-1, 0), "out of range");
  EXPECT_DEATH((void)m.row(5), "out of range");
}
#endif

}  // namespace
}  // namespace ppfr::la

// End-to-end pipeline tests: the paper's qualitative claims, verified on
// fast configurations. These are the "does the reproduction reproduce"
// checks — the bench binaries print the full tables.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/methods.h"

namespace ppfr::core {
namespace {

struct PipelineCase {
  nn::ModelKind model;
  data::DatasetId dataset;
};

std::string CaseName(const ::testing::TestParamInfo<PipelineCase>& info) {
  return nn::ModelKindName(info.param.model) + "_" +
         data::DatasetName(info.param.dataset);
}

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineSweep, AllMethodsRunAndStayFinite) {
  const PipelineCase& test_case = GetParam();
  ExperimentEnv env = MakeEnv(test_case.dataset, 11);
  MethodConfig cfg = DefaultMethodConfig(test_case.dataset, test_case.model);
  cfg.train.epochs = 60;  // fast configuration

  const MethodRun vanilla =
      RunMethod(MethodKind::kVanilla, test_case.model, env, cfg);
  EXPECT_GT(vanilla.eval.accuracy, 1.2 / env.dataset.data.num_classes);

  for (MethodKind method : ComparisonMethods()) {
    const MethodRun run = RunMethod(method, test_case.model, env, cfg);
    const DeltaMetrics d = ComputeDeltas(run.eval, vanilla.eval);
    EXPECT_TRUE(std::isfinite(run.eval.accuracy)) << MethodName(method);
    EXPECT_TRUE(std::isfinite(run.eval.bias)) << MethodName(method);
    EXPECT_TRUE(std::isfinite(run.eval.risk_auc)) << MethodName(method);
    EXPECT_TRUE(std::isfinite(d.combined)) << MethodName(method);
    EXPECT_GT(run.eval.accuracy, 0.0) << MethodName(method);
    EXPECT_GE(run.eval.risk_auc, 0.0) << MethodName(method);
    EXPECT_LE(run.eval.risk_auc, 1.0) << MethodName(method);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndDatasets, PipelineSweep,
    ::testing::Values(PipelineCase{nn::ModelKind::kGcn, data::DatasetId::kEnzymesLike},
                      PipelineCase{nn::ModelKind::kGat, data::DatasetId::kEnzymesLike},
                      PipelineCase{nn::ModelKind::kGraphSage,
                                   data::DatasetId::kEnzymesLike}),
    CaseName);

// RQ1 (Proposition V.2): on a strongly homophilous graph, the fairness
// regulariser lowers bias, costs accuracy, and raises the attack AUC.
TEST(PaperClaims, FairnessRegularizationTradesPrivacy) {
  ExperimentEnv env = MakeEnv(data::DatasetId::kCoraLike, kDefaultEnvSeed);
  const MethodConfig cfg =
      DefaultMethodConfig(data::DatasetId::kCoraLike, nn::ModelKind::kGcn);
  const MethodRun vanilla =
      RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
  const MethodRun reg = RunMethod(MethodKind::kReg, nn::ModelKind::kGcn, env, cfg);

  EXPECT_LT(reg.eval.bias, vanilla.eval.bias);          // fairer (Table III)
  EXPECT_LT(reg.eval.accuracy, vanilla.eval.accuracy);  // costs accuracy
  EXPECT_GT(reg.eval.risk_auc, vanilla.eval.risk_auc);  // leakier (Fig. 4, RQ1)
}

// RQ2: PPFR debiases while keeping the attack AUC at or below vanilla.
TEST(PaperClaims, PpfrBalancesFairnessAndPrivacy) {
  ExperimentEnv env = MakeEnv(data::DatasetId::kCoraLike, kDefaultEnvSeed);
  const MethodConfig cfg =
      DefaultMethodConfig(data::DatasetId::kCoraLike, nn::ModelKind::kGcn);
  const MethodRun vanilla =
      RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
  const MethodRun ppfr = RunMethod(MethodKind::kPpFr, nn::ModelKind::kGcn, env, cfg);
  const DeltaMetrics d = ComputeDeltas(ppfr.eval, vanilla.eval);

  EXPECT_LT(d.d_bias, 0.0) << "PPFR must reduce bias";
  EXPECT_LT(d.d_risk, 0.02) << "PPFR must restrain privacy risk";
  EXPECT_GT(d.combined, 0.0) << "Eq. 22 composite must be positive";
}

// DPReg costs far more accuracy than PPFR (the paper's headline comparison).
TEST(PaperClaims, DpRegCostsMoreAccuracyThanPpfr) {
  ExperimentEnv env = MakeEnv(data::DatasetId::kCoraLike, kDefaultEnvSeed);
  const MethodConfig cfg =
      DefaultMethodConfig(data::DatasetId::kCoraLike, nn::ModelKind::kGcn);
  const MethodRun vanilla =
      RunMethod(MethodKind::kVanilla, nn::ModelKind::kGcn, env, cfg);
  const MethodRun dpreg =
      RunMethod(MethodKind::kDpReg, nn::ModelKind::kGcn, env, cfg);
  const MethodRun ppfr = RunMethod(MethodKind::kPpFr, nn::ModelKind::kGcn, env, cfg);
  const DeltaMetrics d_dpreg = ComputeDeltas(dpreg.eval, vanilla.eval);
  const DeltaMetrics d_ppfr = ComputeDeltas(ppfr.eval, vanilla.eval);
  EXPECT_LT(d_dpreg.d_acc, d_ppfr.d_acc)
      << "training from scratch on the DP graph should cost more accuracy "
         "than PPFR fine-tuning";
}

// Full determinism of a composite pipeline (PPFR involves DP-free
// perturbation, influence functions, QCLP and fine-tuning).
TEST(Determinism, PpfrIsBitReproducible) {
  ExperimentEnv env = MakeEnv(data::DatasetId::kEnzymesLike, 13);
  MethodConfig cfg = DefaultMethodConfig(data::DatasetId::kEnzymesLike,
                                         nn::ModelKind::kGcn);
  cfg.train.epochs = 50;
  const MethodRun a = RunMethod(MethodKind::kPpFr, nn::ModelKind::kGcn, env, cfg);
  const MethodRun b = RunMethod(MethodKind::kPpFr, nn::ModelKind::kGcn, env, cfg);
  EXPECT_DOUBLE_EQ(a.eval.accuracy, b.eval.accuracy);
  EXPECT_DOUBLE_EQ(a.eval.bias, b.eval.bias);
  EXPECT_DOUBLE_EQ(a.eval.risk_auc, b.eval.risk_auc);
  ASSERT_EQ(a.fr_weights.size(), b.fr_weights.size());
  for (size_t i = 0; i < a.fr_weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fr_weights[i], b.fr_weights[i]);
  }
}

}  // namespace
}  // namespace ppfr::core

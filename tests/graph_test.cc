#include <gtest/gtest.h>

#include <cmath>

#include "data/sbm.h"
#include "graph/graph.h"
#include "graph/graph_ops.h"
#include "graph/jaccard.h"
#include "test_util.h"

namespace ppfr::graph {
namespace {

using ::ppfr::testing::SmallGraph;

TEST(GraphTest, FromEdgesCanonicalizes) {
  // Duplicates, reversed duplicates and self-loops all collapse.
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {3, 1}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, NeighborsSortedAndDegreesMatch) {
  const Graph g = SmallGraph();
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.Degree(0), 4);
  EXPECT_EQ(g.Degree(4), 1);
  EXPECT_EQ(g.Degree(5), 0);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0 * 6 / 6);
}

TEST(GraphTest, EdgeHomophily) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}, {0, 2}});
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(g.EdgeHomophily(labels), 2.0 / 3.0);
}

TEST(GraphOpsTest, GcnNormalizedAdjacencyIsSymmetricWithSelfLoops) {
  const Graph g = SmallGraph();
  const la::CsrMatrix a = GcnNormalizedAdjacency(g);
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_GT(a.At(i, i), 0.0);  // self loop
    for (int j = 0; j < g.num_nodes(); ++j) {
      EXPECT_NEAR(a.At(i, j), a.At(j, i), 1e-14);
    }
  }
  // Known value: edge (4, 0), deg(4)=1, deg(0)=4 -> 1/sqrt(2)/sqrt(5).
  EXPECT_NEAR(a.At(4, 0), 1.0 / std::sqrt(2.0 * 5.0), 1e-14);
}

TEST(GraphOpsTest, LeftNormalizedRowsSumToOne) {
  const Graph g = SmallGraph();
  const la::CsrMatrix a = LeftNormalizedAdjacency(g);
  la::Matrix ones(g.num_nodes(), 1, 1.0);
  const la::Matrix row_sums = a.Multiply(ones);
  for (int i = 0; i < g.num_nodes(); ++i) EXPECT_NEAR(row_sums(i, 0), 1.0, 1e-12);
}

TEST(GraphOpsTest, MeanAggregationRowsSumToOneExceptIsolated) {
  const Graph g = SmallGraph();
  const la::CsrMatrix m = MeanAggregationMatrix(g);
  la::Matrix ones(g.num_nodes(), 1, 1.0);
  const la::Matrix row_sums = m.Multiply(ones);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(row_sums(i, 0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(row_sums(5, 0), 0.0);  // isolated node 5
}

TEST(GraphOpsTest, SampledMeanAggregationRespectsFanout) {
  const auto data = ppfr::testing::SmallSbm(7, 100, 2);
  Rng rng(5);
  const la::CsrMatrix m = SampledMeanAggregationMatrix(data.graph, 3, &rng);
  for (int i = 0; i < data.graph.num_nodes(); ++i) {
    const int64_t nnz_row = m.row_ptr()[i + 1] - m.row_ptr()[i];
    EXPECT_LE(nnz_row, 3);
    if (data.graph.Degree(i) > 0) {
      EXPECT_GT(nnz_row, 0);
      double sum = 0.0;
      for (int64_t k = m.row_ptr()[i]; k < m.row_ptr()[i + 1]; ++k) {
        sum += m.values()[k];
        // Sampled columns must be true neighbours.
        EXPECT_TRUE(data.graph.HasEdge(i, m.col_idx()[k]));
      }
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(GraphOpsTest, BfsHopsOnPathGraph) {
  const Graph path = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<int> hops = BfsHops(path, 0, 10);
  EXPECT_EQ(hops, (std::vector<int>{0, 1, 2, 3, 4}));
  // Capped BFS marks everything beyond the cap as cap + 1.
  const std::vector<int> capped = BfsHops(path, 0, 2);
  EXPECT_EQ(capped[3], 3);
  EXPECT_EQ(capped[4], 3);
}

TEST(GraphOpsTest, HopDistanceHandlesDisconnected) {
  const Graph g = SmallGraph();
  EXPECT_EQ(HopDistance(g, 0, 1, 5), 1);
  EXPECT_EQ(HopDistance(g, 4, 3, 5), 2);
  EXPECT_EQ(HopDistance(g, 0, 5, 5), 6);  // isolated -> cap + 1
}

TEST(JaccardTest, KnownValuesOnSquareGraph) {
  // Square 0-1-2-3 with diagonal 0-2, pendant 4-0 (closed neighbourhoods).
  const Graph g = SmallGraph();
  const la::CsrMatrix s = JaccardSimilarity(g);
  // N[0] = {0,1,2,3,4}, N[1] = {0,1,2}: inter {0,1,2} = 3, union 5 -> 0.6.
  EXPECT_NEAR(s.At(0, 1), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(s.At(1, 0), 3.0 / 5.0, 1e-12);
  // N[1] = {0,1,2}, N[3] = {0,2,3}: inter {0,2} = 2, union 4 -> 0.5.
  EXPECT_NEAR(s.At(1, 3), 0.5, 1e-12);
  // Diagonal excluded.
  EXPECT_DOUBLE_EQ(s.At(2, 2), 0.0);
  // Isolated node has no similarity entries.
  for (int j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(s.At(5, j), 0.0);
}

// Lemma V.1: S_ij > 0 exactly when hop(i, j) <= 2 (closed neighbourhoods).
class JaccardLemmaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JaccardLemmaSweep, PositiveIffWithinTwoHops) {
  const auto data = ppfr::testing::SmallSbm(GetParam(), 80, 3);
  const Graph& g = data.graph;
  const la::CsrMatrix s = JaccardSimilarity(g);
  for (int i = 0; i < g.num_nodes(); ++i) {
    const std::vector<int> hops = BfsHops(g, i, 3);
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i == j) continue;
      const double sij = s.At(i, j);
      if (hops[j] <= 2) {
        EXPECT_GT(sij, 0.0) << "hop(" << i << "," << j << ")=" << hops[j];
        EXPECT_LE(sij, 1.0);
      } else {
        EXPECT_DOUBLE_EQ(sij, 0.0) << "hop(" << i << "," << j << ")=" << hops[j];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardLemmaSweep, ::testing::Values(1ull, 2ull, 3ull));

TEST(JaccardTest, SimilarityIsSymmetric) {
  const auto data = ppfr::testing::SmallSbm(9, 100, 3);
  const la::CsrMatrix s = JaccardSimilarity(data.graph);
  for (int i = 0; i < s.rows(); ++i) {
    for (int64_t k = s.row_ptr()[i]; k < s.row_ptr()[i + 1]; ++k) {
      EXPECT_NEAR(s.values()[k], s.At(s.col_idx()[k], i), 1e-14);
    }
  }
}

TEST(JaccardTest, LaplacianRowsSumToZero) {
  const auto data = ppfr::testing::SmallSbm(10, 90, 3);
  const la::CsrMatrix s = JaccardSimilarity(data.graph);
  const la::CsrMatrix lap = SimilarityLaplacian(s);
  la::Matrix ones(lap.rows(), 1, 1.0);
  const la::Matrix row_sums = lap.Multiply(ones);
  for (int i = 0; i < lap.rows(); ++i) EXPECT_NEAR(row_sums(i, 0), 0.0, 1e-10);
}

TEST(JaccardTest, LaplacianQuadraticFormIsNonNegative) {
  const auto data = ppfr::testing::SmallSbm(11, 90, 3);
  const la::CsrMatrix lap = SimilarityLaplacian(JaccardSimilarity(data.graph));
  Rng rng(1);
  const la::Matrix y = ppfr::testing::RandomMatrix(lap.rows(), 4, &rng);
  const la::Matrix ly = lap.Multiply(y);
  EXPECT_GE(la::Dot(y, ly), -1e-9);
}

}  // namespace
}  // namespace ppfr::graph

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "common/rng.h"
#include "test_util.h"

namespace ppfr::ag {
namespace {

using ::ppfr::testing::RandomMatrix;

constexpr double kTol = 1e-5;

Parameter MakeParam(const std::string& name, int rows, int cols, Rng* rng) {
  return Parameter(name, RandomMatrix(rows, cols, rng));
}

TEST(TapeTest, LeafExposesParameterValue) {
  Rng rng(1);
  Parameter p = MakeParam("p", 2, 3, &rng);
  Tape tape;
  Var v = tape.Leaf(&p);
  EXPECT_EQ(v.rows(), 2);
  EXPECT_EQ(v.cols(), 3);
  EXPECT_DOUBLE_EQ(v.value()(1, 2), p.value(1, 2));
  EXPECT_TRUE(tape.NeedsGrad(v));
}

TEST(TapeTest, ConstantsDoNotRequireGrad) {
  Tape tape;
  Var c = tape.Constant(la::Matrix(2, 2, 1.0));
  EXPECT_FALSE(tape.NeedsGrad(c));
}

TEST(TapeTest, BackwardAccumulatesIntoParameter) {
  Rng rng(2);
  Parameter p = MakeParam("p", 3, 1, &rng);
  p.ZeroGrad();
  Tape tape;
  Var loss = SumAll(tape.Leaf(&p));
  tape.Backward(loss);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(p.grad(i, 0), 1.0);
  // Backward again accumulates (caller is responsible for zeroing).
  Tape tape2;
  Var loss2 = SumAll(tape2.Leaf(&p));
  tape2.Backward(loss2);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(p.grad(i, 0), 2.0);
}

TEST(TapeTest, BackwardWithSeedMatchesScaledBackward) {
  Rng rng(3);
  Parameter p = MakeParam("p", 2, 2, &rng);
  p.ZeroGrad();
  {
    Tape tape;
    Var loss = MeanAll(Square(tape.Leaf(&p)));
    la::Matrix seed(1, 1);
    seed(0, 0) = 2.0;
    tape.BackwardWithSeed(loss, seed);
  }
  la::Matrix grad_seeded = p.grad;
  p.ZeroGrad();
  {
    Tape tape;
    Var loss = Scale(MeanAll(Square(tape.Leaf(&p))), 2.0);
    tape.Backward(loss);
  }
  EXPECT_LT(la::Sub(grad_seeded, p.grad).MaxAbs(), 1e-12);
}

TEST(TapeTest, ZeroAllGradsEnablesReplay) {
  Rng rng(4);
  Parameter p = MakeParam("p", 3, 2, &rng);
  Tape tape;
  Var x = tape.Leaf(&p);
  Var loss = MeanAll(Square(x));

  p.ZeroGrad();
  tape.Backward(loss);
  const la::Matrix first = p.grad;

  p.ZeroGrad();
  tape.ZeroAllGrads();
  tape.Backward(loss);
  EXPECT_LT(la::Sub(first, p.grad).MaxAbs(), 1e-12);
}

// ---- Gradient checks per op ----

TEST(TapeTest, BackwardSkipsNodesUnreachableFromOutput) {
  // Two disjoint sub-expressions on one tape: back-propagating one must not
  // sweep — or write any gradient into — the other.
  Rng rng(40);
  Parameter used = MakeParam("used", 3, 2, &rng);
  Parameter untouched = MakeParam("untouched", 4, 4, &rng);
  used.ZeroGrad();
  untouched.ZeroGrad();

  Tape tape;
  Var loss_a = MeanAll(Square(tape.Leaf(&used)));
  Var loss_b = MeanAll(Square(Tanh(tape.Leaf(&untouched))));
  (void)loss_b;

  la::Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  tape.BackwardWithSeed(loss_a, seed);

  EXPECT_GT(used.grad.MaxAbs(), 0.0);
  EXPECT_EQ(untouched.grad.MaxAbs(), 0.0);
  // The pruned sweep must visit only loss_a's ancestry (leaf + square +
  // sum + scale + the loss node itself), not the whole tape.
  EXPECT_LT(tape.last_backward_visited(), tape.num_nodes());
  EXPECT_LE(tape.last_backward_visited(), 4);
}

TEST(TapeTest, SparseSeedMatchesDenseSeed) {
  Rng rng(41);
  Parameter p = MakeParam("p", 5, 3, &rng);

  p.ZeroGrad();
  {
    Tape tape;
    Var out = Tanh(tape.Leaf(&p));
    la::Matrix seed(5, 3);
    seed(2, 1) = -1.5;
    seed(4, 0) = 0.75;
    tape.BackwardWithSeed(out, seed);
  }
  const la::Matrix dense = p.grad;

  p.ZeroGrad();
  {
    Tape tape;
    Var out = Tanh(tape.Leaf(&p));
    tape.BackwardWithSparseSeed(out, {2, 4}, {1, 0}, {-1.5, 0.75});
  }
  for (int64_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense.data()[i], p.grad.data()[i]) << "component " << i;
  }
}

TEST(TapeTest, ReplayRebuildsValuesAndGradsBitwise) {
  Rng rng(42);
  Parameter w = MakeParam("w", 4, 3, &rng);
  Parameter b = MakeParam("b", 1, 3, &rng);
  auto build = [&](Tape& t) {
    return MeanAll(Square(AddRowVec(Sigmoid(t.Leaf(&w)), t.Leaf(&b))));
  };

  Tape reused;
  for (int round = 0; round < 3; ++round) {
    // Fresh-tape oracle at the current parameter values.
    w.ZeroGrad();
    b.ZeroGrad();
    Tape fresh;
    Var fresh_loss = build(fresh);
    fresh.Backward(fresh_loss);
    const double want_loss = fresh_loss.scalar();
    const la::Matrix want_dw = w.grad;
    const la::Matrix want_db = b.grad;

    w.ZeroGrad();
    b.ZeroGrad();
    if (round > 0) reused.BeginReplay();
    Var loss = build(reused);
    reused.Backward(loss);

    EXPECT_EQ(loss.scalar(), want_loss) << "round " << round;
    EXPECT_EQ(la::Sub(w.grad, want_dw).MaxAbs(), 0.0) << "round " << round;
    EXPECT_EQ(la::Sub(b.grad, want_db).MaxAbs(), 0.0) << "round " << round;
    // The replay must not have grown the tape.
    EXPECT_EQ(reused.num_nodes(), fresh.num_nodes());

    for (int64_t i = 0; i < w.value.size(); ++i) w.value.data()[i] *= 1.0 + 0.1 * round;
  }
}

TEST(TapeTest, ReplayRecyclesValueBuffers) {
  Rng rng(43);
  Parameter p = MakeParam("p", 32, 32, &rng);
  auto build = [&](Tape& t) { return MeanAll(Square(Relu(t.Leaf(&p)))); };

  Tape tape;
  tape.Backward(build(tape));
  p.ZeroGrad();
  tape.BeginReplay();
  const int64_t alloc0 = la::MatrixAllocCount();
  tape.Backward(build(tape));
  // Ops route their outputs through Tape::NewValue, so a replayed pass runs
  // allocation-free on the dense-buffer side (grads were allocated in round
  // one and are recycled too).
  EXPECT_EQ(la::MatrixAllocCount() - alloc0, 1);  // the 1x1 backward seed
}

TEST(TapeTest, GradArenasIsolateBackwardState) {
  // Two arenas over one tape: seeding different rows under each must yield
  // the same per-seed gradients as running both seeds in one arena
  // sequentially — and neither arena sees the other's dirty rows.
  Rng rng(44);
  Parameter p = MakeParam("p", 6, 2, &rng);

  Tape tape;
  tape.set_accumulate_param_grads(false);
  Var out = Square(tape.Leaf(&p));

  auto flat = [&](const std::vector<Parameter*>& params) {
    std::vector<double> v;
    tape.FlattenLeafGrads(params, &v);
    return v;
  };

  tape.BackwardWithSparseSeed(out, {1}, {0}, {2.0});
  const std::vector<double> want_seed1 = flat({&p});
  tape.ZeroDirtyNodeGrads();
  tape.BackwardWithSparseSeed(out, {4}, {1}, {-1.0});
  const std::vector<double> want_seed2 = flat({&p});
  tape.ZeroDirtyNodeGrads();

  GradArena arena_a(&tape);
  GradArena arena_b(&tape);
  std::vector<double> got_seed1, got_seed2;
  {
    ArenaScope scope(&arena_a);
    tape.BackwardWithSparseSeed(out, {1}, {0}, {2.0});
    got_seed1 = flat({&p});
  }
  {
    ArenaScope scope(&arena_b);
    tape.BackwardWithSparseSeed(out, {4}, {1}, {-1.0});
    got_seed2 = flat({&p});
  }
  {
    // arena_a's state is untouched by arena_b's backward pass.
    ArenaScope scope(&arena_a);
    EXPECT_EQ(flat({&p}), got_seed1);
  }
  EXPECT_EQ(got_seed1, want_seed1);
  EXPECT_EQ(got_seed2, want_seed2);
}

TEST(GradCheckTest, MatMulBothSides) {
  Rng rng(10);
  Parameter a = MakeParam("a", 3, 4, &rng);
  Parameter b = MakeParam("b", 4, 2, &rng);
  auto build = [&](Tape& t) { return MeanAll(Square(MatMul(t.Leaf(&a), t.Leaf(&b)))); };
  const GradCheckResult r = GradCheck(build, {&a, &b}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheckTest, SpMM) {
  Rng rng(11);
  Parameter x = MakeParam("x", 5, 3, &rng);
  std::vector<la::Triplet> triplets;
  for (int i = 0; i < 12; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(5)),
                        static_cast<int>(rng.UniformInt(5)), rng.Normal()});
  }
  auto sp = MakeSparseOperand(la::CsrMatrix::FromTriplets(5, 5, triplets),
                              /*symmetric=*/false);
  auto build = [&](Tape& t) { return MeanAll(Square(SpMM(sp, t.Leaf(&x)))); };
  const GradCheckResult r = GradCheck(build, {&x}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheckTest, ElementwiseBinaryOps) {
  Rng rng(12);
  Parameter a = MakeParam("a", 3, 3, &rng);
  Parameter b = MakeParam("b", 3, 3, &rng);
  // Keep b away from zero for Div.
  for (int64_t i = 0; i < b.size(); ++i) {
    b.value.data()[i] = 1.5 + std::fabs(b.value.data()[i]);
  }
  auto build = [&](Tape& t) {
    Var av = t.Leaf(&a);
    Var bv = t.Leaf(&b);
    Var mix = Add(Sub(Mul(av, bv), av), Div(av, bv));
    return MeanAll(Square(mix));
  };
  const GradCheckResult r = GradCheck(build, {&a, &b}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheckTest, BroadcastAndScalarOps) {
  Rng rng(13);
  Parameter a = MakeParam("a", 4, 3, &rng);
  Parameter row = MakeParam("row", 1, 3, &rng);
  Parameter s = MakeParam("s", 1, 1, &rng);
  auto build = [&](Tape& t) {
    Var out = AddRowVec(t.Leaf(&a), t.Leaf(&row));
    out = Add(out, ExpandScalar(t.Leaf(&s), 4, 3));
    out = AddScalar(Scale(out, 0.7), -0.3);
    return MeanAll(Square(out));
  };
  const GradCheckResult r = GradCheck(build, {&a, &row, &s}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

// Unary nonlinearity sweep. Inputs are nudged away from the kink at 0 so the
// finite-difference probe stays on one side.
using UnaryFactory = Var (*)(Var);
class UnaryGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnaryGradSweep, MatchesNumericGradient) {
  Rng rng(100 + GetParam());
  Parameter a = MakeParam("a", 4, 4, &rng);
  for (int64_t i = 0; i < a.size(); ++i) {
    double& v = a.value.data()[i];
    if (std::fabs(v) < 0.05) v = v < 0 ? v - 0.1 : v + 0.1;
  }
  auto apply = [&](Var x) {
    switch (GetParam()) {
      case 0:
        return Relu(x);
      case 1:
        return LeakyRelu(x, 0.2);
      case 2:
        return Elu(x);
      case 3:
        return Tanh(x);
      case 4:
        return Sigmoid(x);
      case 5:
        return Square(x);
      case 6:
        return Abs(x);
      default:
        return Sqrt(Square(x));  // positive-domain sqrt
    }
  };
  auto build = [&](Tape& t) { return MeanAll(Square(apply(t.Leaf(&a)))); };
  const GradCheckResult r = GradCheck(build, {&a}, &rng);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllUnaryOps, UnaryGradSweep, ::testing::Range(0, 8));

TEST(GradCheckTest, LogSoftmaxAndNll) {
  Rng rng(14);
  Parameter logits = MakeParam("logits", 6, 4, &rng);
  const std::vector<int> rows{0, 2, 5};
  const std::vector<int> labels{1, 3, 0};
  const std::vector<double> weights{1.0, 0.5, 2.0};
  auto build = [&](Tape& t) {
    return WeightedNll(LogSoftmaxRows(t.Leaf(&logits)), rows, labels, weights, 3.0);
  };
  const GradCheckResult r = GradCheck(build, {&logits}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheckTest, SoftmaxRows) {
  Rng rng(15);
  Parameter logits = MakeParam("logits", 5, 3, &rng);
  auto build = [&](Tape& t) {
    Var p = SoftmaxRows(t.Leaf(&logits));
    // Non-trivial downstream so the softmax Jacobian matters.
    return MeanAll(Square(Sub(p, t.Constant(la::Matrix(5, 3, 0.2)))));
  };
  const GradCheckResult r = GradCheck(build, {&logits}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheckTest, GatherConcatRowSums) {
  Rng rng(16);
  Parameter a = MakeParam("a", 6, 3, &rng);
  const std::vector<int> idx{0, 0, 4, 5, 2};
  auto build = [&](Tape& t) {
    Var x = t.Leaf(&a);
    Var g = GatherRows(x, idx);
    Var cat = ConcatCols({g, Square(g)});
    return MeanAll(Square(RowSums(cat)));
  };
  const GradCheckResult r = GradCheck(build, {&a}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheckTest, LaplacianQuadratic) {
  Rng rng(17);
  Parameter y = MakeParam("y", 6, 2, &rng);
  // Symmetric Laplacian of a small similarity graph.
  std::vector<la::Triplet> sim{{0, 1, 0.5}, {1, 0, 0.5}, {2, 3, 1.0},
                               {3, 2, 1.0}, {1, 4, 0.25}, {4, 1, 0.25}};
  la::CsrMatrix s = la::CsrMatrix::FromTriplets(6, 6, sim);
  std::vector<la::Triplet> lap;
  for (int i = 0; i < 6; ++i) {
    double degree = 0.0;
    for (int j = 0; j < 6; ++j) {
      const double v = s.At(i, j);
      if (v != 0.0) {
        lap.push_back({i, j, -v});
        degree += v;
      }
    }
    lap.push_back({i, i, degree});
  }
  auto laplacian =
      std::make_shared<la::CsrMatrix>(la::CsrMatrix::FromTriplets(6, 6, lap));
  auto build = [&](Tape& t) { return LaplacianQuadratic(laplacian, t.Leaf(&y)); };
  const GradCheckResult r = GradCheck(build, {&y}, &rng);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(LaplacianQuadraticTest, EqualsPairwiseForm) {
  // Tr(YᵀLY) must equal ½ Σ_ij S_ij ‖y_i − y_j‖² for symmetric S.
  Rng rng(18);
  la::Matrix y = RandomMatrix(4, 3, &rng);
  std::vector<la::Triplet> sim{{0, 1, 0.7}, {1, 0, 0.7}, {2, 3, 0.2}, {3, 2, 0.2}};
  la::CsrMatrix s = la::CsrMatrix::FromTriplets(4, 4, sim);
  std::vector<la::Triplet> lap;
  for (int i = 0; i < 4; ++i) {
    double degree = 0.0;
    for (int j = 0; j < 4; ++j) {
      const double v = s.At(i, j);
      if (v != 0.0) {
        lap.push_back({i, j, -v});
        degree += v;
      }
    }
    lap.push_back({i, i, degree});
  }
  auto laplacian =
      std::make_shared<la::CsrMatrix>(la::CsrMatrix::FromTriplets(4, 4, lap));
  Tape tape;
  Var quad = LaplacianQuadratic(laplacian, tape.Constant(y));
  double pairwise = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double sij = s.At(i, j);
      if (sij == 0.0) continue;
      double dist_sq = 0.0;
      for (int c = 0; c < 3; ++c) dist_sq += (y(i, c) - y(j, c)) * (y(i, c) - y(j, c));
      pairwise += 0.5 * sij * dist_sq;
    }
  }
  EXPECT_NEAR(quad.scalar(), pairwise, 1e-10);
}

TEST(GradCheckTest, EdgeSoftmaxAggregate) {
  Rng rng(19);
  const int n = 5, heads = 2, dim = 3;
  Parameter h = MakeParam("h", n, heads * dim, &rng);
  Parameter sl = MakeParam("sl", n, heads, &rng);
  Parameter sr = MakeParam("sr", n, heads, &rng);
  // Small graph with self-loops, destination-grouped.
  auto edges = std::make_shared<EdgeSet>();
  edges->num_nodes = n;
  const std::vector<std::vector<int>> nbrs{{0, 1, 2}, {1, 0}, {2, 0, 3}, {3, 2, 4}, {4, 3}};
  edges->row_ptr.assign(n + 1, 0);
  for (int i = 0; i < n; ++i) {
    edges->row_ptr[i + 1] = edges->row_ptr[i] + static_cast<int64_t>(nbrs[i].size());
    for (int j : nbrs[i]) edges->col_idx.push_back(j);
  }
  auto build = [&](Tape& t) {
    Var out = EdgeSoftmaxAggregate(t.Leaf(&h), t.Leaf(&sl), t.Leaf(&sr), edges, heads,
                                   0.2);
    return MeanAll(Square(out));
  };
  const GradCheckResult r = GradCheck(build, {&h, &sl, &sr}, &rng, 20);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(EdgeSoftmaxAggregateTest, UniformAttentionAverages) {
  // With zero attention scores every neighbour gets weight 1/deg, so the op
  // reduces to a plain neighbourhood mean.
  const int n = 3;
  Tape tape;
  la::Matrix h(3, 2);
  h(0, 0) = 1;
  h(1, 0) = 3;
  h(2, 0) = 5;
  auto edges = std::make_shared<EdgeSet>();
  edges->num_nodes = n;
  edges->row_ptr = {0, 3, 4, 5};
  edges->col_idx = {0, 1, 2, 1, 2};
  Var out = EdgeSoftmaxAggregate(tape.Constant(h), tape.Constant(la::Matrix(3, 1)),
                                 tape.Constant(la::Matrix(3, 1)), edges, 1, 0.2);
  EXPECT_NEAR(out.value()(0, 0), 3.0, 1e-12);  // (1+3+5)/3
  EXPECT_NEAR(out.value()(1, 0), 3.0, 1e-12);
  EXPECT_NEAR(out.value()(2, 0), 5.0, 1e-12);
}

TEST(GradCheckTest, RiskSurrogateShapedExpression) {
  // Composite expression mirroring the risk surrogate: means, variances,
  // Abs and Div of 1x1 nodes.
  Rng rng(20);
  Parameter logits = MakeParam("logits", 8, 3, &rng);
  const std::vector<int> us{0, 1, 2, 3};
  const std::vector<int> vs{4, 5, 6, 7};
  auto build = [&](Tape& t) {
    Var p = SoftmaxRows(t.Leaf(&logits));
    Var d = RowSums(Square(Sub(GatherRows(p, us), GatherRows(p, vs))));
    Var mean = MeanAll(d);
    Var var = MeanAll(Square(Sub(d, ExpandScalar(mean, d.rows(), 1))));
    return Div(Abs(mean), AddScalar(var, 1e-3));
  };
  const GradCheckResult r = GradCheck(build, {&logits}, &rng, 20, 1e-6);
  EXPECT_LT(r.max_rel_error, 1e-3);
}

TEST(OpsTest, NegAndSubConsistency) {
  Rng rng(21);
  Parameter a = MakeParam("a", 2, 2, &rng);
  Tape tape;
  Var x = tape.Leaf(&a);
  Var lhs = Neg(x);
  Var rhs = Sub(tape.Constant(la::Matrix(2, 2, 0.0)), x);
  EXPECT_LT(la::Sub(lhs.value(), rhs.value()).MaxAbs(), 1e-15);
}

}  // namespace
}  // namespace ppfr::ag

// Tests for the scale axis's data layer: the streamed power-law block-model
// generator (data/scale_gen) and the bounded-peak-memory CSR builder
// (graph/csr_builder). The load-bearing properties: every stream is a pure
// function of (config, seed) and replays bit-identically; the two-pass
// builder produces the same structure as the edge-list path; the hardening
// contracts (node-count ceiling, endpoint bounds, replay mismatch) abort
// with messages naming their limits.

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/scale_gen.h"
#include "graph/csr_builder.h"
#include "graph/graph.h"
#include "la/matrix.h"
#include "test_util.h"

namespace ppfr {
namespace {

data::ScaleGraphConfig SmallScaleConfig(int64_t nodes = 2000) {
  data::ScaleGraphConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_blocks = 4;
  cfg.feature_dim = 32;
  cfg.average_degree = 8.0;
  return cfg;
}

std::vector<std::pair<int64_t, int64_t>> CollectEdges(
    const data::ScaleGraphConfig& cfg, uint64_t seed) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  data::StreamScaleEdges(cfg, seed,
                         [&](int64_t u, int64_t v) { edges.emplace_back(u, v); });
  return edges;
}

TEST(ScaleGenTest, EdgeStreamReplaysBitIdentically) {
  const data::ScaleGraphConfig cfg = SmallScaleConfig();
  const auto first = CollectEdges(cfg, 7);
  const auto second = CollectEdges(cfg, 7);
  EXPECT_EQ(first, second);  // identical sequence, not just multiset
  EXPECT_GT(first.size(), 0u);

  const auto other_seed = CollectEdges(cfg, 8);
  EXPECT_NE(first, other_seed);
}

TEST(ScaleGenTest, EndpointsStayInRangeAndDegreeIsCalibrated) {
  const data::ScaleGraphConfig cfg = SmallScaleConfig(4000);
  const auto edges = CollectEdges(cfg, 3);
  for (const auto& [u, v] : edges) {
    ASSERT_GE(u, 0);
    ASSERT_LT(u, cfg.num_nodes);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, cfg.num_nodes);
  }
  // The emitted multiset targets n·d/2 draws; dedupe/self-loop losses must
  // not collapse the realised degree (the alpha >= 1 failure mode).
  EXPECT_NEAR(static_cast<double>(edges.size()),
              static_cast<double>(cfg.num_nodes) * cfg.average_degree / 2.0,
              0.02 * static_cast<double>(cfg.num_nodes) * cfg.average_degree);
  const data::ScaleDataset dataset(cfg, 3);
  EXPECT_GT(dataset.adjacency().AverageDegree(), 0.6 * cfg.average_degree);
}

TEST(ScaleGenTest, BlockLabelsPartitionTheIdSpace) {
  const data::ScaleGraphConfig cfg = SmallScaleConfig(1003);  // uneven blocks
  EXPECT_EQ(cfg.BlockStart(0), 0);
  EXPECT_EQ(cfg.BlockStart(cfg.num_blocks), cfg.num_nodes);
  for (int b = 0; b < cfg.num_blocks; ++b) {
    EXPECT_LT(cfg.BlockStart(b), cfg.BlockStart(b + 1));
    for (int64_t v = cfg.BlockStart(b); v < cfg.BlockStart(b + 1); ++v) {
      ASSERT_EQ(cfg.BlockOf(v), b);
    }
  }
}

TEST(CsrBuilderTest, MatchesEdgeListGraphBitForBit) {
  const data::ScaleGraphConfig cfg = SmallScaleConfig();
  const data::ScaleDataset dataset(cfg, 11);
  const graph::CsrAdjacency& adj = dataset.adjacency();

  // Reference construction through the materialised edge-list path.
  std::vector<graph::Edge> edges;
  data::StreamScaleEdges(cfg, 11, [&](int64_t u, int64_t v) {
    if (u != v) edges.push_back({static_cast<int>(u), static_cast<int>(v)});
  });
  const graph::Graph reference =
      graph::Graph::FromEdges(static_cast<int>(cfg.num_nodes), edges);
  const graph::CsrAdjacency from_graph = graph::CsrAdjacency::FromGraph(reference);

  EXPECT_EQ(adj.row_ptr(), from_graph.row_ptr());
  EXPECT_EQ(adj.adj(), from_graph.adj());
  EXPECT_EQ(adj.num_edges(), reference.num_edges());

  // Round trip back to the edge-list world.
  const graph::Graph round_trip = adj.ToGraph();
  EXPECT_EQ(round_trip.num_nodes(), reference.num_nodes());
  EXPECT_EQ(round_trip.num_edges(), reference.num_edges());
  for (int v = 0; v < reference.num_nodes(); ++v) {
    const auto got = round_trip.Neighbors(v);
    const auto want = reference.Neighbors(v);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
}

TEST(CsrBuilderTest, NeighboursAreSortedDeduplicatedAndSymmetric) {
  const data::ScaleDataset dataset(SmallScaleConfig(), 19);
  const graph::CsrAdjacency& adj = dataset.adjacency();
  for (int64_t v = 0; v < adj.num_nodes(); ++v) {
    const auto nbrs = adj.Neighbors(v);
    for (size_t i = 0; i + 1 < nbrs.size(); ++i) {
      ASSERT_LT(nbrs[i], nbrs[i + 1]);  // sorted AND duplicate-free
    }
    for (int u : nbrs) {
      ASSERT_NE(u, v);  // self-loops dropped
      const auto back = adj.Neighbors(u);
      ASSERT_TRUE(std::binary_search(back.begin(), back.end(),
                                     static_cast<int>(v)));
    }
  }
}

TEST(CsrBuilderDeathTest, RejectsNodeCountsPastTheInt32Ceiling) {
  EXPECT_DEATH(graph::BuildCsrFromEdgeStream(
                   graph::kMaxCsrNodes + 1,
                   [](const std::function<void(int64_t, int64_t)>&) {}),
               "kMaxCsrNodes");
}

TEST(CsrBuilderDeathTest, RejectsOutOfRangeEndpoints) {
  EXPECT_DEATH(graph::BuildCsrFromEdgeStream(
                   10,
                   [](const std::function<void(int64_t, int64_t)>& emit) {
                     emit(3, 10);  // v == num_nodes
                   }),
               "CHECK failed");
  EXPECT_DEATH(graph::BuildCsrFromEdgeStream(
                   10,
                   [](const std::function<void(int64_t, int64_t)>& emit) {
                     emit(-1, 3);
                   }),
               "CHECK failed");
}

TEST(CsrBuilderDeathTest, RejectsNonReplayableStreams) {
  // Emits one edge on the first pass, two on the second — the counting pass
  // and the placement pass disagree, which must abort, not corrupt.
  EXPECT_DEATH(graph::BuildCsrFromEdgeStream(
                   10,
                   [calls = 0](const std::function<void(int64_t, int64_t)>&
                                   emit) mutable {
                     emit(1, 2);
                     if (++calls == 2) emit(3, 4);
                   }),
               "replay");
}

TEST(ScaleDatasetTest, FeatureRowsRegenerateInIsolation) {
  const data::ScaleDataset dataset(SmallScaleConfig(), 23);
  const la::Matrix all = dataset.MaterializeFeatures();

  // Any gather, in any order, any number of times, reproduces the same rows.
  const std::vector<int> nodes = {1999, 3, 512, 3, 0};
  const la::Matrix gathered = dataset.GatherFeatures(nodes);
  ASSERT_EQ(gathered.rows(), static_cast<int>(nodes.size()));
  ASSERT_EQ(gathered.cols(), all.cols());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int f = 0; f < all.cols(); ++f) {
      ASSERT_EQ(gathered(static_cast<int>(i), f), all(nodes[i], f))
          << "node " << nodes[i] << " feature " << f;
    }
  }

  // Signature structure: a node's class signature window fires far more often
  // than the noise floor, aggregated over a block.
  const data::ScaleGraphConfig& cfg = dataset.config();
  double sig_mass = 0.0, noise_mass = 0.0;
  int sig_count = 0, noise_count = 0;
  for (int64_t v = 0; v < cfg.num_nodes; ++v) {
    const int cls = dataset.Label(v);
    for (int f = 0; f < cfg.feature_dim; ++f) {
      const bool in_sig = f >= cls * cfg.signature_size &&
                          f < (cls + 1) * cfg.signature_size;
      (in_sig ? sig_mass : noise_mass) += all(static_cast<int>(v), f);
      ++(in_sig ? sig_count : noise_count);
    }
  }
  EXPECT_GT(sig_mass / sig_count, 5.0 * (noise_mass / noise_count));
}

TEST(ScaleDatasetTest, LabelsAndStridedSplitsAreDeterministic) {
  const data::ScaleDataset dataset(SmallScaleConfig(), 29);
  const std::vector<int> labels = dataset.MaterializeLabels();
  ASSERT_EQ(labels.size(), static_cast<size_t>(dataset.num_nodes()));
  for (int64_t v = 0; v < dataset.num_nodes(); ++v) {
    ASSERT_EQ(labels[static_cast<size_t>(v)], dataset.Label(v));
  }

  const std::vector<int> train = dataset.StridedNodes(64, /*salt=*/1);
  EXPECT_EQ(train, dataset.StridedNodes(64, /*salt=*/1));
  EXPECT_EQ(train.size(), 64u);
  std::set<int> unique(train.begin(), train.end());
  EXPECT_EQ(unique.size(), train.size());
  for (int v : train) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, dataset.num_nodes());
  }
  // Balanced across the contiguous label blocks by construction.
  std::vector<int> per_class(static_cast<size_t>(dataset.num_classes()), 0);
  for (int v : train) ++per_class[static_cast<size_t>(dataset.Label(v))];
  for (int count : per_class) EXPECT_NEAR(count, 16, 2);
}

TEST(ScaleDatasetTest, IdenticalSeedsYieldIdenticalStructure) {
  const data::ScaleGraphConfig cfg = SmallScaleConfig();
  const data::ScaleDataset a(cfg, 31);
  const data::ScaleDataset b(cfg, 31);
  EXPECT_EQ(a.adjacency().row_ptr(), b.adjacency().row_ptr());
  EXPECT_EQ(a.adjacency().adj(), b.adjacency().adj());
  const data::ScaleDataset c(cfg, 32);
  EXPECT_NE(a.adjacency().adj(), c.adjacency().adj());
}

TEST(ArenaAccountingTest, TracksLiveBufferBytesAndPeak) {
  const int64_t base = la::ArenaBytesInUse();
  la::ResetArenaPeakBytes();
  {
    la::Matrix m(100, 50);
    const int64_t expect = 100 * 50 * static_cast<int64_t>(sizeof(double));
    EXPECT_EQ(la::ArenaBytesInUse(), base + expect);
    EXPECT_GE(la::ArenaPeakBytes(), base + expect);

    la::Matrix copy = m;  // copies register too
    EXPECT_EQ(la::ArenaBytesInUse(), base + 2 * expect);
  }
  EXPECT_EQ(la::ArenaBytesInUse(), base);  // destruction unwinds the counter
  EXPECT_GE(la::ArenaPeakBytes(), base);

  // The CSR adjacency registers its logical bytes as well.
  const data::ScaleDataset dataset(SmallScaleConfig(), 37);
  const graph::CsrAdjacency& adj = dataset.adjacency();
  const int64_t csr_bytes =
      static_cast<int64_t>(adj.row_ptr().size()) * sizeof(int64_t) +
      static_cast<int64_t>(adj.adj().size()) * sizeof(int);
  EXPECT_GE(la::ArenaBytesInUse(), base + csr_bytes);

  // Peak-RSS readout: monotone, and available on Linux.
  const int64_t rss = la::ProcessPeakRssBytes();
  EXPECT_GE(rss, 0);
#ifdef __linux__
  EXPECT_GT(rss, 0);
#endif
}

}  // namespace
}  // namespace ppfr

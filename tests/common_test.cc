#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/table_printer.h"

namespace ppfr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntWithinRangeAndCoversAll) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, LaplaceIsSymmetricWithCorrectScale) {
  Rng rng(17);
  double sum = 0.0, sum_abs = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(2.0);
    sum += x;
    sum_abs += std::fabs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.08);
  // E|X| = scale for Laplace(0, scale).
  EXPECT_NEAR(sum_abs / n, 2.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(19);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(23);
  const std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng fork = a.Fork();
  // The fork differs from the parent's continuation.
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

// Uniformity sweep: chi-square-like sanity across several seeds.
class RngUniformitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformitySweep, BucketsAreBalanced) {
  Rng rng(GetParam());
  constexpr int kBuckets = 10;
  constexpr int kDraws = 20000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<int>(rng.Uniform() * kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / kBuckets, 0.1 * kDraws / kBuckets);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformitySweep,
                         ::testing::Values(1ull, 99ull, 1234567ull, 0xdeadbeefull));

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"A", "Long header"});
  table.AddRow({"x", "1"});
  table.AddSeparator();
  table.AddRow({"yyyy", "2.5"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| A    | Long header |"), std::string::npos);
  EXPECT_NE(s.find("| yyyy | 2.5         |"), std::string::npos);
  // Header rule + separator + closing rule => at least 4 '+--' rules.
  int rules = 0;
  for (size_t pos = 0; (pos = s.find("+-", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_GE(rules, 4);
}

TEST(TablePrinterTest, NumAndPctFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(std::nan(""), 2), "-");
  EXPECT_EQ(TablePrinter::Pct(-0.3551), "-35.51");
  EXPECT_EQ(TablePrinter::Pct(0.018), "+1.80");
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name=test", "--verbose",
                        "--count=12"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("count", 0), 12);
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, Uint64SeedsRoundTripWithoutTruncation) {
  // Seeds above INT_MAX used to be truncated by an int round-trip.
  const char* argv[] = {"prog", "--seed=9876543210987654321"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetUint64("seed", 0), 9876543210987654321ULL);
  EXPECT_EQ(flags.GetUint64("missing", 7), 7ULL);
}

TEST(StrictParseTest, AcceptsExactNumbersOnly) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64Strict("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64Strict("", &i));
  EXPECT_FALSE(ParseInt64Strict("12abc", &i));
  EXPECT_FALSE(ParseInt64Strict("99999999999999999999", &i));  // overflow

  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64Strict("18446744073709551615", &u));
  EXPECT_EQ(u, 18446744073709551615ULL);
  EXPECT_FALSE(ParseUint64Strict("18446744073709551616", &u));  // overflow
  EXPECT_FALSE(ParseUint64Strict("-1", &u));  // strtoull would wrap this
  EXPECT_FALSE(ParseUint64Strict("+1", &u));
  EXPECT_FALSE(ParseUint64Strict("1 ", &u));
  // Leading whitespace would let strtoull smuggle a sign past the
  // first-character check (" -1" → ULLONG_MAX); exact parses only.
  EXPECT_FALSE(ParseUint64Strict(" -1", &u));
  EXPECT_FALSE(ParseUint64Strict("\t-2", &u));
  EXPECT_FALSE(ParseUint64Strict(" 1", &u));
  int64_t i2 = 0;
  EXPECT_FALSE(ParseInt64Strict(" 5", &i2));
  double d2 = 0.0;
  EXPECT_FALSE(ParseDoubleStrict(" 0.5", &d2));

  double d = 0.0;
  EXPECT_TRUE(ParseDoubleStrict("2.5e-3", &d));
  EXPECT_DOUBLE_EQ(d, 2.5e-3);
  EXPECT_FALSE(ParseDoubleStrict("1.5x", &d));
  EXPECT_FALSE(ParseDoubleStrict("1e999", &d));  // overflows to inf
  EXPECT_FALSE(ParseDoubleStrict("inf", &d));    // strtod literals are garbage
  EXPECT_FALSE(ParseDoubleStrict("nan", &d));    // flags too
  EXPECT_TRUE(ParseDoubleStrict("1e-320", &d));  // subnormal underflow is fine
}

TEST(FlagsDeathTest, MalformedNumericFlagsExitFatally) {
  // `--seed=12abc` used to silently parse as 12 and out-of-range values
  // wrapped; every garbage numeric flag must now name itself and exit(2).
  const char* argv[] = {"prog", "--seed=12abc", "--epochs=99999999999999999999",
                        "--alpha=fast", "--neg=-1", "--flagonly", "--verbose=maybe"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetUint64("seed", 0), ::testing::ExitedWithCode(2),
              "invalid value for --seed: '12abc'");
  EXPECT_EXIT(flags.GetInt("epochs", 0), ::testing::ExitedWithCode(2),
              "invalid value for --epochs");
  EXPECT_EXIT(flags.GetDouble("alpha", 0.0), ::testing::ExitedWithCode(2),
              "invalid value for --alpha: 'fast'");
  EXPECT_EXIT(flags.GetUint64("neg", 0), ::testing::ExitedWithCode(2),
              "invalid value for --neg: '-1'");
  // A bare "--flagonly" stores "true", which is not a number.
  EXPECT_EXIT(flags.GetInt("flagonly", 0), ::testing::ExitedWithCode(2),
              "invalid value for --flagonly: 'true'");
  EXPECT_EXIT(flags.GetBool("verbose", false), ::testing::ExitedWithCode(2),
              "invalid value for --verbose: 'maybe'");
  // Absent flags still fall back to defaults without touching the parser.
  EXPECT_EQ(flags.GetInt("missing", 3), 3);
}

TEST(FlagsTest, ReportsUnknownFlags) {
  const char* argv[] = {"prog", "--epochs=10", "--epoch=12", "--sed=3"};
  Flags flags(4, const_cast<char**>(argv));
  const std::vector<std::string> unknown = flags.UnknownFlags({"epochs", "seed"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "epoch");
  EXPECT_EQ(unknown[1], "sed");
  EXPECT_TRUE(flags.UnknownFlags({"epochs", "epoch", "sed"}).empty());
}

TEST(JsonWriterTest, RendersNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("sweep");
  w.Key("count").Int(3);
  w.Key("ratio").Number(0.5);
  w.Key("ok").Bool(true);
  w.Key("items").BeginArray();
  w.Number(1.0);
  w.BeginObject();
  w.Key("inner").Null();
  w.EndObject();
  w.EndArray();
  w.Key("empty").BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.ToString(),
            "{\n"
            "  \"name\": \"sweep\",\n"
            "  \"count\": 3,\n"
            "  \"ratio\": 0.5,\n"
            "  \"ok\": true,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    {\n"
            "      \"inner\": null\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(JsonWriterTest, EscapesStringsAndSerialisesNonFiniteAsNull) {
  JsonWriter w;
  w.BeginObject();
  w.Key("text").String("a\"b\\c\nd\te");
  w.Key("nan").Number(std::nan(""));
  w.Key("inf").Number(std::numeric_limits<double>::infinity());
  w.EndObject();
  const std::string json = w.ToString();
  EXPECT_NE(json.find("\"a\\\"b\\\\c\\nd\\te\""), std::string::npos);
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
}

TEST(JsonWriterTest, JsonMetricMarksNonFiniteValues) {
  JsonWriter w;
  w.BeginObject();
  JsonMetric(&w, "ok", 0.25);
  JsonMetric(&w, "bad", std::nan(""));
  JsonMetric(&w, "worse", -std::numeric_limits<double>::infinity());
  w.EndObject();
  const std::string json = w.ToString();
  EXPECT_NE(json.find("\"ok\": 0.25"), std::string::npos);
  EXPECT_EQ(json.find("\"ok_finite\""), std::string::npos);
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos);
  EXPECT_NE(json.find("\"bad_finite\": false"), std::string::npos);
  EXPECT_NE(json.find("\"worse_finite\": false"), std::string::npos);
}

TEST(SerializeTest, PrimitivesRoundTripBitwise) {
  BinaryWriter w;
  w.WriteU32(0xdeadbeefu);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-17);
  w.WriteDouble(-0.0);
  w.WriteDouble(std::nan(""));
  w.WriteBool(true);
  w.WriteString("hello\0world");  // embedded NUL would break a cstring format
  w.WriteDoubleVec({1.5, -2.25});
  w.WriteIntVec({-3, 0, 7});

  BinaryReader r(w.data());
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadI64(), -17);
  EXPECT_EQ(std::signbit(r.ReadDouble()), true);  // -0.0 preserved bitwise
  EXPECT_TRUE(std::isnan(r.ReadDouble()));
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadString(), std::string("hello"));  // literal truncates at NUL
  EXPECT_EQ(r.ReadDoubleVec(), (std::vector<double>{1.5, -2.25}));
  EXPECT_EQ(r.ReadIntVec(), (std::vector<int>{-3, 0, 7}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncationAndGarbageLengthsPoisonInsteadOfCrashing) {
  BinaryWriter w;
  w.WriteString("payload");
  w.WriteDoubleVec({1.0, 2.0, 3.0});
  const std::string& full = w.data();

  // Every truncation point parses to a poisoned reader, never UB.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader r(full.data(), cut);
    (void)r.ReadString();
    (void)r.ReadDoubleVec();
    EXPECT_FALSE(r.AtEnd()) << "cut at " << cut;
  }

  // A garbage length prefix must not trigger a pathological allocation.
  BinaryWriter bad;
  bad.WriteU64(0xffffffffffffffffULL);
  BinaryReader r(bad.data());
  EXPECT_TRUE(r.ReadString().empty());
  EXPECT_FALSE(r.ok());
  // Reads after poisoning return zero values.
  EXPECT_EQ(r.ReadU64(), 0u);
}

TEST(SerializeTest, WriteFileAtomicReportsFailuresAndLeavesNoPartials) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/atomic_probe.bin";
  EXPECT_TRUE(WriteFileAtomic(path, "abc"));
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back));
  EXPECT_EQ(back, "abc");
  // Overwrite is atomic too.
  EXPECT_TRUE(WriteFileAtomic(path, "xyz"));
  ASSERT_TRUE(ReadFileToString(path, &back));
  EXPECT_EQ(back, "xyz");
  std::remove(path.c_str());

  std::string error;
  EXPECT_FALSE(WriteFileAtomic("/nonexistent-dir-zzz/out.json", "x", &error));
  EXPECT_NE(error.find("/nonexistent-dir-zzz/out.json"), std::string::npos);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ PPFR_CHECK(1 == 2) << "should fire"; }, "CHECK failed");
  EXPECT_DEATH({ PPFR_CHECK_EQ(3, 4); }, "CHECK failed");
}

}  // namespace
}  // namespace ppfr

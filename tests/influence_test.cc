#include <gtest/gtest.h>

#include <cmath>

#include "data/split.h"
#include "fairness/bias_metric.h"
#include "influence/hvp.h"
#include "influence/influence.h"
#include "influence/param_vector.h"
#include "la/stats.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace ppfr::influence {
namespace {

TEST(ParamVectorTest, FlattenRoundTrip) {
  Rng rng(1);
  ag::Parameter a("a", ppfr::testing::RandomMatrix(2, 3, &rng));
  ag::Parameter b("b", ppfr::testing::RandomMatrix(1, 4, &rng));
  const std::vector<ag::Parameter*> params{&a, &b};
  EXPECT_EQ(TotalParamSize(params), 10);
  std::vector<double> flat = FlattenValues(params);
  EXPECT_EQ(flat.size(), 10u);
  EXPECT_DOUBLE_EQ(flat[0], a.value(0, 0));
  EXPECT_DOUBLE_EQ(flat[6], b.value(0, 0));
  for (auto& v : flat) v += 1.0;
  SetValues(params, flat);
  EXPECT_DOUBLE_EQ(a.value(1, 2), flat[5]);
  EXPECT_DOUBLE_EQ(b.value(0, 3), flat[9]);
}

TEST(ParamVectorTest, VectorAlgebra) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{-1, 0, 2};
  EXPECT_DOUBLE_EQ(VecDot(a, b), 5.0);
  EXPECT_DOUBLE_EQ(VecNorm({3, 4}), 5.0);
  std::vector<double> y{1, 1, 1};
  VecAxpy(2.0, a, &y);
  EXPECT_EQ(y, (std::vector<double>{3, 5, 7}));
}

// Quadratic test bed: L(θ) = ½ θᵀ A θ - bᵀθ with known SPD A, so the exact
// Hessian is A and CG solutions are checkable.
struct QuadraticProblem {
  ag::Parameter theta;
  la::Matrix a;  // SPD matrix (n x n)
  std::vector<double> b;

  explicit QuadraticProblem(int n, uint64_t seed) : theta("theta", la::Matrix(n, 1)) {
    Rng rng(seed);
    la::Matrix m = ppfr::testing::RandomMatrix(n, n, &rng);
    a = la::MatMulTransA(m, m);  // SPD
    for (int i = 0; i < n; ++i) a(i, i) += 1.0;
    b.resize(n);
    for (auto& v : b) v = rng.Normal();
    for (int i = 0; i < n; ++i) theta.value(i, 0) = rng.Normal();
  }

  GradFn MakeGradFn() {
    return [this]() {
      // grad = A θ - b
      std::vector<double> g(a.rows());
      for (int i = 0; i < a.rows(); ++i) {
        double s = -b[i];
        for (int j = 0; j < a.cols(); ++j) s += a(i, j) * theta.value(j, 0);
        g[i] = s;
      }
      return g;
    };
  }
};

TEST(HvpTest, MatchesExactHessianOnQuadratic) {
  QuadraticProblem problem(6, 3);
  Rng rng(4);
  std::vector<double> v(6);
  for (auto& x : v) x = rng.Normal();
  const std::vector<double> hv =
      HessianVectorProduct({&problem.theta}, problem.MakeGradFn(), v);
  for (int i = 0; i < 6; ++i) {
    double want = 0;
    for (int j = 0; j < 6; ++j) want += problem.a(i, j) * v[j];
    EXPECT_NEAR(hv[i], want, 1e-5 * std::max(1.0, std::fabs(want)));
  }
}

TEST(HvpTest, ZeroVectorGivesZero) {
  QuadraticProblem problem(4, 5);
  const std::vector<double> hv = HessianVectorProduct(
      {&problem.theta}, problem.MakeGradFn(), std::vector<double>(4, 0.0));
  for (double x : hv) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(HvpTest, RestoresParameters) {
  QuadraticProblem problem(5, 6);
  const std::vector<double> before = FlattenValues({&problem.theta});
  Rng rng(7);
  std::vector<double> v(5);
  for (auto& x : v) x = rng.Normal();
  HessianVectorProduct({&problem.theta}, problem.MakeGradFn(), v);
  const std::vector<double> after = FlattenValues({&problem.theta});
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(before[i], after[i]);
}

TEST(CgTest, SolvesDampedSystemOnQuadratic) {
  QuadraticProblem problem(8, 8);
  Rng rng(9);
  std::vector<double> rhs(8);
  for (auto& x : rhs) x = rng.Normal();
  CgOptions options;
  options.damping = 0.5;
  options.max_iterations = 100;
  options.tolerance = 1e-10;
  const CgResult result =
      ConjugateGradientSolve({&problem.theta}, problem.MakeGradFn(), rhs, options);
  // Verify (A + λI) x == b directly.
  for (int i = 0; i < 8; ++i) {
    double lhs = options.damping * result.x[i];
    for (int j = 0; j < 8; ++j) lhs += problem.a(i, j) * result.x[j];
    EXPECT_NEAR(lhs, rhs[i], 1e-3);
  }
}

// End-to-end: influence scores must anti-correlate with actual
// leave-one-out retraining effects (the returned quantity is the
// upweighting derivative; leaving out = downweighting).
TEST(InfluenceTest, PredictsLeaveOneOutBiasChange) {
  const auto data = ppfr::testing::SmallSbm(21, 150, 3);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const auto split = data::MakeSplit(data.graph.num_nodes(), 40, 0, 3);
  const fairness::SimilarityContext sim =
      fairness::SimilarityContext::FromGraph(data.graph);

  nn::TrainConfig train_cfg;
  train_cfg.epochs = 100;
  auto train_on = [&](const std::vector<int>& nodes) {
    auto model = nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(),
                               data.num_classes, 5);
    nn::Train(model.get(), ctx, nodes, data.labels, train_cfg);
    return model;
  };
  auto model = train_on(split.train);
  const double bias0 =
      fairness::RawBias(la::SoftmaxRows(model->Logits(ctx)), *sim.laplacian);

  InfluenceCalculator calc(model.get(), ctx, split.train, data.labels,
                           InfluenceConfig{});
  const std::vector<double> influence = calc.InfluenceOnBias(sim.laplacian);
  ASSERT_EQ(influence.size(), split.train.size());

  std::vector<double> predicted, actual;
  for (size_t k = 0; k < split.train.size(); k += 4) {
    std::vector<int> loo = split.train;
    loo.erase(loo.begin() + static_cast<int64_t>(k));
    auto retrained = train_on(loo);
    actual.push_back(
        fairness::RawBias(la::SoftmaxRows(retrained->Logits(ctx)), *sim.laplacian) -
        bias0);
    predicted.push_back(influence[k]);
  }
  const double r = la::PearsonCorrelation(predicted, actual);
  EXPECT_LT(r, -0.35) << "leave-out changes should anti-correlate with the "
                         "upweighting derivative, got r = "
                      << r;
}

TEST(InfluenceTest, UtilityInfluenceHasPlausibleScale) {
  const auto data = ppfr::testing::SmallSbm(22, 120, 3);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const auto split = data::MakeSplit(data.graph.num_nodes(), 30, 0, 3);
  auto model =
      nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(), data.num_classes, 5);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = 80;
  nn::Train(model.get(), ctx, split.train, data.labels, train_cfg);

  InfluenceCalculator calc(model.get(), ctx, split.train, data.labels,
                           InfluenceConfig{});
  const std::vector<double> util = calc.InfluenceOnUtility();
  ASSERT_EQ(util.size(), split.train.size());
  double max_abs = 0;
  for (double u : util) {
    ASSERT_TRUE(std::isfinite(u));
    max_abs = std::max(max_abs, std::fabs(u));
  }
  EXPECT_GT(max_abs, 0.0);
  EXPECT_LT(max_abs, 1e4);
}

TEST(InfluenceTest, RiskInfluenceIsFiniteAndNonDegenerate) {
  const auto data = ppfr::testing::SmallSbm(23, 120, 3);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const auto split = data::MakeSplit(data.graph.num_nodes(), 30, 0, 3);
  auto model =
      nn::MakeModel(nn::ModelKind::kGcn, ctx.feature_dim(), data.num_classes, 5);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = 80;
  nn::Train(model.get(), ctx, split.train, data.labels, train_cfg);
  const privacy::PairSample pairs = privacy::SamplePairs(data.graph, 150, 7);

  InfluenceCalculator calc(model.get(), ctx, split.train, data.labels,
                           InfluenceConfig{});
  const std::vector<double> risk = calc.InfluenceOnRisk(pairs);
  int nonzero = 0;
  for (double x : risk) {
    ASSERT_TRUE(std::isfinite(x));
    nonzero += std::fabs(x) > 1e-12;
  }
  EXPECT_GT(nonzero, static_cast<int>(risk.size()) / 2);
}

}  // namespace
}  // namespace ppfr::influence

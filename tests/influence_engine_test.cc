// Tests for the influence-engine hot path: TapePool (parallel per-seed
// backward over one shared forward tape), the ReusableLossGraph tape arena,
// and the trainer's cross-epoch tape replay. The central contract is
// BITWISE determinism: the pooled/replayed paths must reproduce the serial
// reference implementations bit for bit, for any lane count and under either
// compute backend.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "data/split.h"
#include "influence/influence.h"
#include "influence/param_vector.h"
#include "influence/tape_pool.h"
#include "la/backend.h"
#include "nn/adam.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace ppfr::influence {
namespace {

struct EngineFixture {
  data::NodeClassificationData data;
  nn::GraphContext ctx;
  data::Split split;
  std::unique_ptr<nn::GnnModel> model;

  explicit EngineFixture(nn::ModelKind kind, uint64_t seed = 31)
      : data(ppfr::testing::SmallSbm(seed, 140, 3)),
        ctx(nn::GraphContext::Build(data.graph, data.features)),
        split(data::MakeSplit(data.graph.num_nodes(), 40, 0, 3)),
        model(nn::MakeModel(kind, ctx.feature_dim(), data.num_classes, 5)) {
    nn::TrainConfig cfg;
    cfg.epochs = 30;
    nn::Train(model.get(), ctx, split.train, data.labels, cfg);
  }

  std::vector<std::vector<double>> PerNodeGrads(const InfluenceConfig& config) {
    InfluenceCalculator calc(model.get(), ctx, split.train, data.labels, config);
    return calc.PerNodeLossGrads();
  }
};

void ExpectBitwiseEqual(const std::vector<std::vector<double>>& want,
                        const std::vector<std::vector<double>>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(want[k].size(), got[k].size()) << "seed " << k;
    for (size_t i = 0; i < want[k].size(); ++i) {
      ASSERT_EQ(want[k][i], got[k][i])
          << "seed " << k << " component " << i << " differs";
    }
  }
}

class TapePoolBitwise : public ::testing::TestWithParam<la::BackendKind> {};

TEST_P(TapePoolBitwise, PooledEqualsSerialReferenceAcrossLaneCounts) {
  la::ScopedBackend scoped(GetParam(), 4);
  EngineFixture fx(nn::ModelKind::kGcn);

  InfluenceConfig serial_cfg;
  serial_cfg.serial_reference_per_node = true;
  const auto want = fx.PerNodeGrads(serial_cfg);
  ASSERT_EQ(want.size(), fx.split.train.size());

  for (int lanes : {1, 2, 4}) {
    InfluenceConfig pooled_cfg;
    pooled_cfg.tape_pool_lanes = lanes;
    const auto got = fx.PerNodeGrads(pooled_cfg);
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    ExpectBitwiseEqual(want, got);
  }
}

TEST_P(TapePoolBitwise, PooledEqualsSerialReferenceOnGat) {
  // GAT's fused attention backward propagates per-edge row supports (the
  // seeded destination rows and the union of their neighbour lists), so the
  // pooled per-node path prunes to the seed's receptive field just like
  // GCN's SpMM path — and must still match the serial reference bit for bit.
  la::ScopedBackend scoped(GetParam(), 3);
  EngineFixture fx(nn::ModelKind::kGat);

  InfluenceConfig serial_cfg;
  serial_cfg.serial_reference_per_node = true;
  const auto want = fx.PerNodeGrads(serial_cfg);

  InfluenceConfig pooled_cfg;
  pooled_cfg.tape_pool_lanes = 3;
  ExpectBitwiseEqual(want, fx.PerNodeGrads(pooled_cfg));
}

TEST(EdgeSoftmaxSupportTest, SparseSeedEqualsDenseSeedBitwise) {
  // Drives the fused GAT op directly: a sparse-seeded backward (known row
  // support → support-pruned path) must reproduce a dense whole-matrix seed
  // with the same nonzeros (unknown support → dense path) exactly, for every
  // parent (h, attn_left, attn_right).
  Rng rng(21);
  const int n = 7;
  const int heads = 2;
  const int dim = 3;
  auto edges = std::make_shared<ag::EdgeSet>();
  edges->num_nodes = n;
  edges->row_ptr.push_back(0);
  for (int i = 0; i < n; ++i) {  // ring + self-loops
    edges->col_idx.push_back(i);
    edges->col_idx.push_back((i + 1) % n);
    edges->col_idx.push_back((i + n - 1) % n);
    edges->row_ptr.push_back(static_cast<int64_t>(edges->col_idx.size()));
  }
  ag::Parameter hp("h", ppfr::testing::RandomMatrix(n, heads * dim, &rng));
  ag::Parameter lp("attn_l", ppfr::testing::RandomMatrix(n, heads, &rng));
  ag::Parameter rp("attn_r", ppfr::testing::RandomMatrix(n, heads, &rng));
  const std::vector<ag::Parameter*> params{&hp, &lp, &rp};

  auto run = [&](bool sparse_seed) {
    for (ag::Parameter* p : params) p->ZeroGrad();
    ag::Tape tape;
    ag::Var out = ag::EdgeSoftmaxAggregate(tape.Leaf(&hp), tape.Leaf(&lp),
                                           tape.Leaf(&rp), edges, heads,
                                           /*leaky_slope=*/0.2);
    if (sparse_seed) {
      tape.BackwardWithSparseSeed(out, {3, 3}, {2, 4}, {1.5, -0.5});
    } else {
      la::Matrix seed(n, heads * dim);
      seed(3, 2) = 1.5;
      seed(3, 4) = -0.5;
      tape.BackwardWithSeed(out, seed);
    }
    return FlattenGrads(params);
  };

  const std::vector<double> sparse = run(true);
  const std::vector<double> dense = run(false);
  ASSERT_EQ(sparse.size(), dense.size());
  for (size_t i = 0; i < sparse.size(); ++i) {
    ASSERT_EQ(sparse[i], dense[i]) << "component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TapePoolBitwise,
                         ::testing::Values(la::BackendKind::kReference,
                                           la::BackendKind::kParallel,
                                           la::BackendKind::kSimd),
                         [](const ::testing::TestParamInfo<la::BackendKind>& info) {
                           return la::BackendKindName(info.param);
                         });

TEST(TapePoolTest, SparseSeedMatchesMaterialisedLossNode) {
  // Seeding -w/denom at (v, label) must equal building the WeightedNll node
  // and back-propagating a unit seed through it.
  Rng rng(7);
  ag::Parameter logits_param("logits", ppfr::testing::RandomMatrix(9, 4, &rng));

  auto grads_via_loss_node = [&] {
    logits_param.ZeroGrad();
    ag::Tape tape;
    ag::Var logp = ag::LogSoftmaxRows(tape.Leaf(&logits_param));
    ag::Var loss = ag::WeightedNll(logp, {3}, {2}, {1.0}, 1.0);
    tape.Backward(loss);
    return FlattenGrads({&logits_param});
  }();

  TapePool pool(
      [&](ag::Tape& tape) { return ag::LogSoftmaxRows(tape.Leaf(&logits_param)); },
      {&logits_param}, /*num_lanes=*/1);
  const auto pooled = pool.PerSeedGrads(
      1, [](int, std::vector<int>* rows, std::vector<int>* cols,
            std::vector<double>* values) {
        rows->push_back(3);
        cols->push_back(2);
        values->push_back(-1.0);
      });

  ASSERT_EQ(pooled.size(), 1u);
  ASSERT_EQ(pooled[0].size(), grads_via_loss_node.size());
  for (size_t i = 0; i < pooled[0].size(); ++i) {
    EXPECT_EQ(pooled[0][i], grads_via_loss_node[i]) << "component " << i;
  }
}

TEST(TapePoolTest, DoesNotTouchParameterGrads) {
  Rng rng(8);
  ag::Parameter p("p", ppfr::testing::RandomMatrix(5, 3, &rng));
  p.grad.Fill(42.0);
  TapePool pool([&](ag::Tape& tape) { return ag::LogSoftmaxRows(tape.Leaf(&p)); },
                {&p}, /*num_lanes=*/2);
  pool.PerSeedGrads(4, [](int k, std::vector<int>* rows, std::vector<int>* cols,
                          std::vector<double>* values) {
    rows->push_back(k % 5);
    cols->push_back(0);
    values->push_back(-1.0);
  });
  for (int64_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_EQ(p.grad.data()[i], 42.0) << "Parameter::grad clobbered at " << i;
  }
}

TEST(ReusableLossGraphTest, ReplayedGradMatchesFreshTapeBitwise) {
  Rng rng(9);
  ag::Parameter w("w", ppfr::testing::RandomMatrix(6, 4, &rng));
  ag::Parameter b("b", ppfr::testing::RandomMatrix(1, 4, &rng));
  const std::vector<ag::Parameter*> params{&w, &b};
  auto build = [&](ag::Tape& tape) {
    ag::Var h = ag::AddRowVec(ag::Tanh(tape.Leaf(&w)), tape.Leaf(&b));
    return ag::MeanAll(ag::Square(h));
  };

  auto fresh_grad = [&] {
    for (ag::Parameter* p : params) p->ZeroGrad();
    ag::Tape tape;
    tape.Backward(build(tape));
    return FlattenGrads(params);
  };

  ReusableLossGraph graph(build, params);
  const std::vector<double> want = fresh_grad();
  // Several replays, including after a parameter update, must track the
  // fresh-tape gradient exactly.
  for (int round = 0; round < 3; ++round) {
    const std::vector<double> got = graph.Grad();
    const std::vector<double> expect = fresh_grad();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << "round " << round << " component " << i;
    }
    for (int64_t i = 0; i < w.value.size(); ++i) w.value.data()[i] += 0.01 * (round + 1);
  }
  (void)want;
}

TEST(InfluenceEngineTest, ReusedGradTapeLeavesInfluenceScoresIdentical) {
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/33);
  InfluenceConfig reuse_cfg;  // reuse_grad_tape = true (default)
  InfluenceConfig fresh_cfg;
  fresh_cfg.reuse_grad_tape = false;

  InfluenceCalculator reuse_calc(fx.model.get(), fx.ctx, fx.split.train,
                                 fx.data.labels, reuse_cfg);
  InfluenceCalculator fresh_calc(fx.model.get(), fx.ctx, fx.split.train,
                                 fx.data.labels, fresh_cfg);
  const std::vector<double> a = reuse_calc.InfluenceOnUtility();
  const std::vector<double> b = fresh_calc.InfluenceOnUtility();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "influence score " << i;
  }
}

class TrainerReplay : public ::testing::TestWithParam<nn::ModelKind> {};

TEST_P(TrainerReplay, ReplayedEpochsMatchFreshTapesBitwise) {
  const auto data = ppfr::testing::SmallSbm(12, 90, 3);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const auto split = data::MakeSplit(data.graph.num_nodes(), 25, 0, 3);

  auto run = [&](bool reuse) {
    auto model = nn::MakeModel(GetParam(), ctx.feature_dim(), data.num_classes, 5);
    nn::TrainConfig cfg;
    cfg.epochs = 12;
    cfg.reuse_tape = reuse;
    const nn::TrainStats stats = nn::Train(model.get(), ctx, split.train,
                                           data.labels, cfg);
    std::vector<double> flat = FlattenValues(model->Params());
    flat.insert(flat.end(), stats.epoch_losses.begin(), stats.epoch_losses.end());
    return flat;
  };

  const std::vector<double> replayed = run(true);
  const std::vector<double> fresh = run(false);
  ASSERT_EQ(replayed.size(), fresh.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    ASSERT_EQ(replayed[i], fresh[i]) << "component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TrainerReplay,
                         ::testing::Values(nn::ModelKind::kGcn, nn::ModelKind::kGat,
                                           nn::ModelKind::kGraphSage),
                         [](const ::testing::TestParamInfo<nn::ModelKind>& info) {
                           return nn::ModelKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Block-CG multi-RHS solver. Contracts under test (see influence/hvp.h):
// k = 1 equals the single-RHS oracle bit for bit; k > 1 agrees per column to
// solver tolerance; a fixed block is bitwise invariant across thread and lane
// counts; converged columns deflate individually; zero and duplicate RHS
// columns are handled exactly.
// ---------------------------------------------------------------------------

// Quadratic test bed L(θ) = ½θᵀAθ - bᵀθ (exact Hessian A), same shape as the
// fixture in influence_test.cc, plus the batch evaluation the block solver
// consumes: ∇L at an absolute point p is A·p - c, independent of θ.
struct BlockQuadratic {
  ag::Parameter theta;
  la::Matrix a;  // SPD (n x n)
  std::vector<double> c;

  explicit BlockQuadratic(int n, uint64_t seed) : theta("theta", la::Matrix(n, 1)) {
    Rng rng(seed);
    la::Matrix m = ppfr::testing::RandomMatrix(n, n, &rng);
    a = la::MatMulTransA(m, m);
    for (int i = 0; i < n; ++i) a(i, i) += 1.0;
    c.resize(static_cast<size_t>(n));
    for (auto& v : c) v = rng.Normal();
    for (int i = 0; i < n; ++i) theta.value(i, 0) = rng.Normal();
  }

  std::vector<double> GradAt(const std::vector<double>& point) const {
    std::vector<double> g(static_cast<size_t>(a.rows()));
    for (int i = 0; i < a.rows(); ++i) {
      double s = -c[static_cast<size_t>(i)];
      for (int j = 0; j < a.cols(); ++j) s += a(i, j) * point[static_cast<size_t>(j)];
      g[static_cast<size_t>(i)] = s;
    }
    return g;
  }

  GradFn MakeGradFn() {
    return [this] { return GradAt(FlattenValues({&theta})); };
  }

  BatchGradFn MakeBatchGradFn() {
    return [this](const std::vector<std::vector<double>>& points) {
      std::vector<std::vector<double>> grads;
      grads.reserve(points.size());
      for (const auto& p : points) grads.push_back(GradAt(p));
      return grads;
    };
  }

  std::vector<ag::Parameter*> Params() { return {&theta}; }
};

MultiVector RandomRhs(int64_t dim, int k, uint64_t seed) {
  Rng rng(seed);
  MultiVector b(dim, k);
  for (int j = 0; j < k; ++j) {
    for (int64_t i = 0; i < dim; ++i) b.col(j)[i] = rng.Normal();
  }
  return b;
}

class BlockCgBackend : public ::testing::TestWithParam<la::BackendKind> {};

TEST_P(BlockCgBackend, SingleColumnBlockEqualsOracleBitwise) {
  la::ScopedBackend scoped(GetParam(), 4);
  BlockQuadratic problem(10, 17);
  const MultiVector b = RandomRhs(10, 1, 18);
  CgOptions options;
  options.max_iterations = 60;
  options.tolerance = 1e-10;

  const CgResult oracle = ConjugateGradientSolve(problem.Params(), problem.MakeGradFn(),
                                                 b.Column(0), options);
  const BlockCgResult block =
      BlockConjugateGradientSolve(problem.Params(), problem.MakeGradFn(),
                                  problem.MakeBatchGradFn(), b, options);

  ASSERT_EQ(block.x.k(), 1);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(block.x.col(0)[i], oracle.x[static_cast<size_t>(i)]) << "component " << i;
  }
  EXPECT_EQ(block.residual_norm[0], oracle.residual_norm);
  EXPECT_EQ(block.iterations[0], oracle.iterations);
}

TEST_P(BlockCgBackend, BlockMatchesOraclePerColumnWithinTolerance) {
  la::ScopedBackend scoped(GetParam(), 2);
  const int n = 12;
  BlockQuadratic problem(n, 23);
  CgOptions options;
  options.max_iterations = 80;
  options.tolerance = 1e-10;

  for (int k : {2, 3, 8}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const MultiVector b = RandomRhs(n, k, 100 + static_cast<uint64_t>(k));
    const BlockCgResult block =
        BlockConjugateGradientSolve(problem.Params(), problem.MakeGradFn(),
                                    problem.MakeBatchGradFn(), b, options);
    for (int j = 0; j < k; ++j) {
      EXPECT_TRUE(block.converged[static_cast<size_t>(j)]) << "column " << j;
      const CgResult oracle = ConjugateGradientSolve(
          problem.Params(), problem.MakeGradFn(), b.Column(j), options);
      double num = 0.0;
      double den = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const double d = block.x.col(j)[i] - oracle.x[static_cast<size_t>(i)];
        num += d * d;
        den += oracle.x[static_cast<size_t>(i)] * oracle.x[static_cast<size_t>(i)];
      }
      EXPECT_LT(std::sqrt(num / std::max(den, 1e-30)), 1e-6)
          << "column " << j << " diverges from the single-RHS oracle";
    }
  }
}

TEST_P(BlockCgBackend, FixedBlockIsBitwiseInvariantAcrossThreadCounts) {
  const int n = 14;
  const int k = 4;
  CgOptions options;
  options.max_iterations = 80;
  options.tolerance = 1e-10;

  std::vector<std::vector<double>> runs;
  for (int threads : {1, 2, 4}) {
    la::ScopedBackend scoped(GetParam(), threads);
    BlockQuadratic problem(n, 41);  // rebuilt identically per run
    const MultiVector b = RandomRhs(n, k, 42);
    const BlockCgResult block =
        BlockConjugateGradientSolve(problem.Params(), problem.MakeGradFn(),
                                    problem.MakeBatchGradFn(), b, options);
    std::vector<double> flat;
    for (int j = 0; j < k; ++j) {
      const std::vector<double> col = block.x.Column(j);
      flat.insert(flat.end(), col.begin(), col.end());
      flat.push_back(block.residual_norm[static_cast<size_t>(j)]);
      flat.push_back(static_cast<double>(block.iterations[static_cast<size_t>(j)]));
    }
    runs.push_back(std::move(flat));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      ASSERT_EQ(runs[r][i], runs[0][i]) << "thread-count run " << r << " entry " << i;
    }
  }
}

TEST(BlockCgTest, DeflationRetiresEasyColumnsEarly) {
  // Diagonal Hessian: a single-coordinate RHS lives in a 1-dimensional Krylov
  // space and converges on the first block iteration, while a dense RHS needs
  // one iteration per distinct eigenvalue — so the easy column must deflate
  // out with a strictly smaller per-RHS iteration count.
  const int n = 10;
  BlockQuadratic problem(n, 55);
  problem.a = la::Matrix(n, n);
  for (int i = 0; i < n; ++i) problem.a(i, i) = 1.0 + 0.37 * i;

  MultiVector b(n, 2);
  for (int64_t i = 0; i < n; ++i) b.col(0)[i] = 1.0;  // dense: needs n eigenvalues
  b.col(1)[3] = 2.5;                                  // single coordinate: 1 iteration

  CgOptions options;
  options.max_iterations = 60;
  options.tolerance = 1e-10;
  const BlockCgResult block =
      BlockConjugateGradientSolve(problem.Params(), problem.MakeGradFn(),
                                  problem.MakeBatchGradFn(), b, options);

  EXPECT_TRUE(block.converged[0]);
  EXPECT_TRUE(block.converged[1]);
  EXPECT_LT(block.iterations[1], block.iterations[0]);
  // Exact solutions of (A + λI) x = b for the diagonal A.
  for (int64_t i = 0; i < n; ++i) {
    const double denom = problem.a(static_cast<int>(i), static_cast<int>(i)) +
                         options.damping;
    EXPECT_NEAR(block.x.col(0)[i], 1.0 / denom, 1e-7) << "dense column entry " << i;
    EXPECT_NEAR(block.x.col(1)[i], (i == 3 ? 2.5 : 0.0) / denom, 1e-7)
        << "sparse column entry " << i;
  }
}

TEST(BlockCgTest, ZeroAndDuplicateColumnsAreExact) {
  const int n = 9;
  BlockQuadratic problem(n, 71);
  const MultiVector base = RandomRhs(n, 2, 72);
  MultiVector b(n, 4);
  // col 0: zero. col 1 and col 3: bitwise duplicates. col 2: independent.
  b.SetColumn(1, base.Column(0));
  b.SetColumn(2, base.Column(1));
  b.SetColumn(3, base.Column(0));

  CgOptions options;
  options.max_iterations = 60;
  options.tolerance = 1e-10;
  const BlockCgResult block =
      BlockConjugateGradientSolve(problem.Params(), problem.MakeGradFn(),
                                  problem.MakeBatchGradFn(), b, options);

  EXPECT_TRUE(block.converged[0]);
  EXPECT_EQ(block.iterations[0], 0);
  EXPECT_EQ(block.residual_norm[0], 0.0);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(block.x.col(0)[i], 0.0) << "zero RHS must yield the zero solution";
    ASSERT_EQ(block.x.col(1)[i], block.x.col(3)[i])
        << "duplicate RHS columns must share the representative's bits";
  }
  EXPECT_EQ(block.iterations[1], block.iterations[3]);
  EXPECT_EQ(block.residual_norm[1], block.residual_norm[3]);
}

TEST(BlockInfluenceTest, CgBlockOneReproducesSingleRhsOracleBitwise) {
  // On the real GNN pipeline: cg_block = 1 routes every RHS through the
  // single-RHS oracle, so InfluenceOnFunctions must equal the per-function
  // entry points bit for bit.
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/37);
  InfluenceConfig cfg;
  cfg.cg_block = 1;
  // A PD regime where the solve actually converges (the default damping of
  // 0.01 leaves this trained model's Hessian indefinite, and the oracle
  // truncates via its p_ap <= 0 safeguard), so converged_rhs is checkable.
  cfg.cg.damping = 1.0;
  cfg.cg.max_iterations = 300;
  cfg.cg.tolerance = 1e-6;
  InfluenceCalculator calc(fx.model.get(), fx.ctx, fx.split.train, fx.data.labels,
                           cfg);
  InfluenceCalculator oracle(fx.model.get(), fx.ctx, fx.split.train, fx.data.labels,
                             cfg);
  const auto batched = calc.InfluenceOnFunctions({calc.UtilityFunction()});
  const auto single = oracle.InfluenceOnUtility();
  ASSERT_EQ(batched.size(), 1u);
  ASSERT_EQ(batched[0].size(), single.size());
  for (size_t v = 0; v < single.size(); ++v) {
    ASSERT_EQ(batched[0][v], single[v]) << "node " << v;
  }
  EXPECT_EQ(calc.block_stats().total_rhs, 1);
  EXPECT_EQ(calc.block_stats().converged_rhs, 1);
}

TEST(BlockInfluenceTest, BlockedInfluenceMatchesOracleWithinTolerance) {
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/39);
  InfluenceConfig cfg;
  cfg.cg_block = 8;
  // Damping that keeps the trained model's damped Hessian positive definite,
  // so both sides run CONVERGED solves (unconverged truncations of the two
  // Krylov processes would differ arbitrarily).
  cfg.cg.damping = 1.0;
  cfg.cg.max_iterations = 200;
  cfg.cg.tolerance = 1e-9;
  InfluenceCalculator calc(fx.model.get(), fx.ctx, fx.split.train, fx.data.labels,
                           cfg);
  InfluenceConfig oracle_cfg = cfg;
  oracle_cfg.cg_block = 1;
  InfluenceCalculator oracle(fx.model.get(), fx.ctx, fx.split.train, fx.data.labels,
                             oracle_cfg);

  std::vector<int> targets;
  for (int t = 0; t < 12; ++t) targets.push_back(fx.split.train[static_cast<size_t>(t)]);
  const auto blocked = calc.InfluenceOnNodeLosses(targets);
  const auto single = oracle.InfluenceOnNodeLosses(targets);
  ASSERT_EQ(blocked.size(), single.size());
  double max_rel = 0.0;
  for (size_t t = 0; t < blocked.size(); ++t) {
    double num = 0.0;
    double den = 0.0;
    ASSERT_EQ(blocked[t].size(), single[t].size());
    for (size_t v = 0; v < blocked[t].size(); ++v) {
      const double d = blocked[t][v] - single[t][v];
      num += d * d;
      den += single[t][v] * single[t][v];
    }
    max_rel = std::max(max_rel, std::sqrt(num / std::max(den, 1e-30)));
  }
  // Both sides are converged solves of the same systems; they differ only in
  // Krylov-space roundoff, far below the solver tolerance's effect on I.
  EXPECT_LT(max_rel, 1e-4) << "blocked influence sweep diverges from the oracle";
  EXPECT_GT(calc.block_stats().grad_evals, 0);
  EXPECT_EQ(calc.block_stats().total_rhs, static_cast<int>(targets.size()));
}

TEST(BlockInfluenceTest, FixedBlockIsBitwiseInvariantAcrossLaneCounts) {
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/43);
  std::vector<int> targets;
  for (int t = 0; t < 6; ++t) targets.push_back(fx.split.train[static_cast<size_t>(t)]);

  auto run = [&](int lanes) {
    InfluenceConfig cfg;
    cfg.cg_block = 6;
    cfg.tape_pool_lanes = lanes;
    InfluenceCalculator calc(fx.model.get(), fx.ctx, fx.split.train, fx.data.labels,
                             cfg);
    return calc.InfluenceOnNodeLosses(targets);
  };

  const auto want = run(1);
  for (int lanes : {2, 4}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    ExpectBitwiseEqual(want, run(lanes));
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BlockCgBackend,
                         ::testing::Values(la::BackendKind::kReference,
                                           la::BackendKind::kParallel,
                                           la::BackendKind::kSimd),
                         [](const ::testing::TestParamInfo<la::BackendKind>& info) {
                           return la::BackendKindName(info.param);
                         });

// ---- Lane-fused tape replay: the batched probe-gradient engine ----

// Deterministic probe points around the trained parameters: small absolute
// perturbations so every point stays in the model's smooth regime.
std::vector<std::vector<double>> ProbePoints(const std::vector<double>& theta0,
                                             int count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1e-3);
  std::vector<std::vector<double>> points(static_cast<size_t>(count), theta0);
  for (auto& p : points) {
    for (double& v : p) v += normal(rng);
  }
  return points;
}

std::vector<std::vector<double>> FusedGradsAt(
    EngineFixture& fx, int replay_lanes, int pool_lanes,
    const std::vector<std::vector<double>>& points) {
  InfluenceConfig cfg;
  cfg.replay_lanes = replay_lanes;
  cfg.tape_pool_lanes = pool_lanes;
  // cg_block bounds the fused width (probe budget clamp); keep it wide
  // enough that replay_lanes is the binding knob in these tests.
  cfg.cg_block = 8;
  InfluenceCalculator calc(fx.model.get(), fx.ctx, fx.split.train, fx.data.labels,
                           cfg);
  return calc.BatchTrainGrad()(points);
}

class FusedReplayBitwise : public ::testing::TestWithParam<la::BackendKind> {};

TEST_P(FusedReplayBitwise, FusedWidthsReproduceSerialReplayBitwise) {
  // The load-bearing fusion contract: for every lane width, chunk-worker
  // count, and thread count, the fused wide replay returns the width-1
  // serial replay's gradients bit for bit.
  la::ScopedBackend scoped(GetParam(), 4);
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/47);
  const auto points =
      ProbePoints(FlattenValues(fx.model->Params()), /*count=*/5, /*seed=*/417);

  const auto want = FusedGradsAt(fx, /*replay_lanes=*/1, /*pool_lanes=*/1, points);
  ASSERT_EQ(want.size(), points.size());
  for (const int width : {2, 8}) {
    for (const int pool_lanes : {1, 3}) {
      SCOPED_TRACE("width=" + std::to_string(width) +
                   " pool_lanes=" + std::to_string(pool_lanes));
      ExpectBitwiseEqual(want, FusedGradsAt(fx, width, pool_lanes, points));
    }
  }
  {
    // Thread-count invariance: the same fused width under a single-threaded
    // backend of the same kind.
    la::ScopedBackend single(GetParam(), 1);
    SCOPED_TRACE("width=8 threads=1");
    ExpectBitwiseEqual(want, FusedGradsAt(fx, 8, 1, points));
  }
}

TEST_P(FusedReplayBitwise, WidthOneMatchesDirectSerialReplayBitwise) {
  // replay_lanes = 1 must reproduce the pre-fusion engine exactly: a plain
  // ReusableLossGraph over a model clone, evaluated one point at a time.
  la::ScopedBackend scoped(GetParam(), 2);
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/53);
  const auto points =
      ProbePoints(FlattenValues(fx.model->Params()), /*count=*/3, /*seed=*/31);

  std::unique_ptr<nn::GnnModel> clone = fx.model->Clone();
  nn::GnnModel* m = clone.get();
  const nn::GraphContext* ctx = &fx.ctx;
  const std::vector<int>& nodes = fx.split.train;
  std::vector<int> labels;
  for (int v : nodes) labels.push_back(fx.data.labels[static_cast<size_t>(v)]);
  const std::vector<double> ones(nodes.size(), 1.0);
  ReusableLossGraph graph(
      [m, ctx, &nodes, &labels, &ones](ag::Tape& tape) {
        ag::Var logits = m->Forward(tape, *ctx, nn::ForwardOptions{});
        return ag::WeightedNll(ag::LogSoftmaxRows(logits), nodes, labels, ones,
                               static_cast<double>(nodes.size()));
      },
      m->Params());
  std::vector<std::vector<double>> want;
  for (const auto& p : points) {
    SetValues(m->Params(), p);
    want.push_back(graph.Grad());
  }

  ExpectBitwiseEqual(want, FusedGradsAt(fx, /*replay_lanes=*/1,
                                        /*pool_lanes=*/1, points));
}

TEST(FusedReplayTest, FusedGradsMatchCentralDifferencesOfTheLoss) {
  // Gradient correctness, not just parity: at each probe point the fused
  // width-8 gradient must reproduce directional central differences of the
  // training loss evaluated from scratch.
  la::ScopedBackend scoped(la::BackendKind::kSimd, 2);
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/59);
  const std::vector<double> theta0 = FlattenValues(fx.model->Params());
  const auto points = ProbePoints(theta0, /*count=*/3, /*seed=*/73);
  const auto grads = FusedGradsAt(fx, /*replay_lanes=*/8, /*pool_lanes=*/1, points);

  std::unique_ptr<nn::GnnModel> clone = fx.model->Clone();
  nn::GnnModel* m = clone.get();
  std::vector<int> labels;
  for (int v : fx.split.train) {
    labels.push_back(fx.data.labels[static_cast<size_t>(v)]);
  }
  const std::vector<double> ones(fx.split.train.size(), 1.0);
  auto loss_at = [&](const std::vector<double>& p) {
    SetValues(m->Params(), p);
    ag::Tape tape;
    ag::Var logits = m->Forward(tape, fx.ctx, nn::ForwardOptions{});
    ag::Var loss =
        ag::WeightedNll(ag::LogSoftmaxRows(logits), fx.split.train, labels, ones,
                        static_cast<double>(fx.split.train.size()));
    return loss.scalar();
  };

  std::mt19937_64 rng(97);
  std::normal_distribution<double> normal(0.0, 1.0);
  const double eps = 1e-5;
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<double> dir(theta0.size());
    double norm = 0.0;
    for (double& d : dir) {
      d = normal(rng);
      norm += d * d;
    }
    norm = std::sqrt(norm);
    std::vector<double> plus = points[i];
    std::vector<double> minus = points[i];
    double want_dot = 0.0;
    for (size_t j = 0; j < dir.size(); ++j) {
      dir[j] /= norm;
      plus[j] += eps * dir[j];
      minus[j] -= eps * dir[j];
      want_dot += grads[i][j] * dir[j];
    }
    const double fd = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
    EXPECT_NEAR(fd, want_dot, 1e-6 * std::max(1.0, std::fabs(fd)))
        << "probe point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FusedReplayBitwise,
                         ::testing::Values(la::BackendKind::kReference,
                                           la::BackendKind::kParallel,
                                           la::BackendKind::kSimd),
                         [](const ::testing::TestParamInfo<la::BackendKind>& info) {
                           return la::BackendKindName(info.param);
                         });

}  // namespace
}  // namespace ppfr::influence

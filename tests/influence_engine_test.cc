// Tests for the influence-engine hot path: TapePool (parallel per-seed
// backward over one shared forward tape), the ReusableLossGraph tape arena,
// and the trainer's cross-epoch tape replay. The central contract is
// BITWISE determinism: the pooled/replayed paths must reproduce the serial
// reference implementations bit for bit, for any lane count and under either
// compute backend.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "data/split.h"
#include "influence/influence.h"
#include "influence/param_vector.h"
#include "influence/tape_pool.h"
#include "la/backend.h"
#include "nn/adam.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace ppfr::influence {
namespace {

struct EngineFixture {
  data::NodeClassificationData data;
  nn::GraphContext ctx;
  data::Split split;
  std::unique_ptr<nn::GnnModel> model;

  explicit EngineFixture(nn::ModelKind kind, uint64_t seed = 31)
      : data(ppfr::testing::SmallSbm(seed, 140, 3)),
        ctx(nn::GraphContext::Build(data.graph, data.features)),
        split(data::MakeSplit(data.graph.num_nodes(), 40, 0, 3)),
        model(nn::MakeModel(kind, ctx.feature_dim(), data.num_classes, 5)) {
    nn::TrainConfig cfg;
    cfg.epochs = 30;
    nn::Train(model.get(), ctx, split.train, data.labels, cfg);
  }

  std::vector<std::vector<double>> PerNodeGrads(const InfluenceConfig& config) {
    InfluenceCalculator calc(model.get(), ctx, split.train, data.labels, config);
    return calc.PerNodeLossGrads();
  }
};

void ExpectBitwiseEqual(const std::vector<std::vector<double>>& want,
                        const std::vector<std::vector<double>>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(want[k].size(), got[k].size()) << "seed " << k;
    for (size_t i = 0; i < want[k].size(); ++i) {
      ASSERT_EQ(want[k][i], got[k][i])
          << "seed " << k << " component " << i << " differs";
    }
  }
}

class TapePoolBitwise : public ::testing::TestWithParam<la::BackendKind> {};

TEST_P(TapePoolBitwise, PooledEqualsSerialReferenceAcrossLaneCounts) {
  la::ScopedBackend scoped(GetParam(), 4);
  EngineFixture fx(nn::ModelKind::kGcn);

  InfluenceConfig serial_cfg;
  serial_cfg.serial_reference_per_node = true;
  const auto want = fx.PerNodeGrads(serial_cfg);
  ASSERT_EQ(want.size(), fx.split.train.size());

  for (int lanes : {1, 2, 4}) {
    InfluenceConfig pooled_cfg;
    pooled_cfg.tape_pool_lanes = lanes;
    const auto got = fx.PerNodeGrads(pooled_cfg);
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    ExpectBitwiseEqual(want, got);
  }
}

TEST_P(TapePoolBitwise, PooledEqualsSerialReferenceOnGat) {
  // GAT's fused attention backward propagates per-edge row supports (the
  // seeded destination rows and the union of their neighbour lists), so the
  // pooled per-node path prunes to the seed's receptive field just like
  // GCN's SpMM path — and must still match the serial reference bit for bit.
  la::ScopedBackend scoped(GetParam(), 3);
  EngineFixture fx(nn::ModelKind::kGat);

  InfluenceConfig serial_cfg;
  serial_cfg.serial_reference_per_node = true;
  const auto want = fx.PerNodeGrads(serial_cfg);

  InfluenceConfig pooled_cfg;
  pooled_cfg.tape_pool_lanes = 3;
  ExpectBitwiseEqual(want, fx.PerNodeGrads(pooled_cfg));
}

TEST(EdgeSoftmaxSupportTest, SparseSeedEqualsDenseSeedBitwise) {
  // Drives the fused GAT op directly: a sparse-seeded backward (known row
  // support → support-pruned path) must reproduce a dense whole-matrix seed
  // with the same nonzeros (unknown support → dense path) exactly, for every
  // parent (h, attn_left, attn_right).
  Rng rng(21);
  const int n = 7;
  const int heads = 2;
  const int dim = 3;
  auto edges = std::make_shared<ag::EdgeSet>();
  edges->num_nodes = n;
  edges->row_ptr.push_back(0);
  for (int i = 0; i < n; ++i) {  // ring + self-loops
    edges->col_idx.push_back(i);
    edges->col_idx.push_back((i + 1) % n);
    edges->col_idx.push_back((i + n - 1) % n);
    edges->row_ptr.push_back(static_cast<int64_t>(edges->col_idx.size()));
  }
  ag::Parameter hp("h", ppfr::testing::RandomMatrix(n, heads * dim, &rng));
  ag::Parameter lp("attn_l", ppfr::testing::RandomMatrix(n, heads, &rng));
  ag::Parameter rp("attn_r", ppfr::testing::RandomMatrix(n, heads, &rng));
  const std::vector<ag::Parameter*> params{&hp, &lp, &rp};

  auto run = [&](bool sparse_seed) {
    for (ag::Parameter* p : params) p->ZeroGrad();
    ag::Tape tape;
    ag::Var out = ag::EdgeSoftmaxAggregate(tape.Leaf(&hp), tape.Leaf(&lp),
                                           tape.Leaf(&rp), edges, heads,
                                           /*leaky_slope=*/0.2);
    if (sparse_seed) {
      tape.BackwardWithSparseSeed(out, {3, 3}, {2, 4}, {1.5, -0.5});
    } else {
      la::Matrix seed(n, heads * dim);
      seed(3, 2) = 1.5;
      seed(3, 4) = -0.5;
      tape.BackwardWithSeed(out, seed);
    }
    return FlattenGrads(params);
  };

  const std::vector<double> sparse = run(true);
  const std::vector<double> dense = run(false);
  ASSERT_EQ(sparse.size(), dense.size());
  for (size_t i = 0; i < sparse.size(); ++i) {
    ASSERT_EQ(sparse[i], dense[i]) << "component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TapePoolBitwise,
                         ::testing::Values(la::BackendKind::kReference,
                                           la::BackendKind::kParallel,
                                           la::BackendKind::kSimd),
                         [](const ::testing::TestParamInfo<la::BackendKind>& info) {
                           return la::BackendKindName(info.param);
                         });

TEST(TapePoolTest, SparseSeedMatchesMaterialisedLossNode) {
  // Seeding -w/denom at (v, label) must equal building the WeightedNll node
  // and back-propagating a unit seed through it.
  Rng rng(7);
  ag::Parameter logits_param("logits", ppfr::testing::RandomMatrix(9, 4, &rng));

  auto grads_via_loss_node = [&] {
    logits_param.ZeroGrad();
    ag::Tape tape;
    ag::Var logp = ag::LogSoftmaxRows(tape.Leaf(&logits_param));
    ag::Var loss = ag::WeightedNll(logp, {3}, {2}, {1.0}, 1.0);
    tape.Backward(loss);
    return FlattenGrads({&logits_param});
  }();

  TapePool pool(
      [&](ag::Tape& tape) { return ag::LogSoftmaxRows(tape.Leaf(&logits_param)); },
      {&logits_param}, /*num_lanes=*/1);
  const auto pooled = pool.PerSeedGrads(
      1, [](int, std::vector<int>* rows, std::vector<int>* cols,
            std::vector<double>* values) {
        rows->push_back(3);
        cols->push_back(2);
        values->push_back(-1.0);
      });

  ASSERT_EQ(pooled.size(), 1u);
  ASSERT_EQ(pooled[0].size(), grads_via_loss_node.size());
  for (size_t i = 0; i < pooled[0].size(); ++i) {
    EXPECT_EQ(pooled[0][i], grads_via_loss_node[i]) << "component " << i;
  }
}

TEST(TapePoolTest, DoesNotTouchParameterGrads) {
  Rng rng(8);
  ag::Parameter p("p", ppfr::testing::RandomMatrix(5, 3, &rng));
  p.grad.Fill(42.0);
  TapePool pool([&](ag::Tape& tape) { return ag::LogSoftmaxRows(tape.Leaf(&p)); },
                {&p}, /*num_lanes=*/2);
  pool.PerSeedGrads(4, [](int k, std::vector<int>* rows, std::vector<int>* cols,
                          std::vector<double>* values) {
    rows->push_back(k % 5);
    cols->push_back(0);
    values->push_back(-1.0);
  });
  for (int64_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_EQ(p.grad.data()[i], 42.0) << "Parameter::grad clobbered at " << i;
  }
}

TEST(ReusableLossGraphTest, ReplayedGradMatchesFreshTapeBitwise) {
  Rng rng(9);
  ag::Parameter w("w", ppfr::testing::RandomMatrix(6, 4, &rng));
  ag::Parameter b("b", ppfr::testing::RandomMatrix(1, 4, &rng));
  const std::vector<ag::Parameter*> params{&w, &b};
  auto build = [&](ag::Tape& tape) {
    ag::Var h = ag::AddRowVec(ag::Tanh(tape.Leaf(&w)), tape.Leaf(&b));
    return ag::MeanAll(ag::Square(h));
  };

  auto fresh_grad = [&] {
    for (ag::Parameter* p : params) p->ZeroGrad();
    ag::Tape tape;
    tape.Backward(build(tape));
    return FlattenGrads(params);
  };

  ReusableLossGraph graph(build, params);
  const std::vector<double> want = fresh_grad();
  // Several replays, including after a parameter update, must track the
  // fresh-tape gradient exactly.
  for (int round = 0; round < 3; ++round) {
    const std::vector<double> got = graph.Grad();
    const std::vector<double> expect = fresh_grad();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << "round " << round << " component " << i;
    }
    for (int64_t i = 0; i < w.value.size(); ++i) w.value.data()[i] += 0.01 * (round + 1);
  }
  (void)want;
}

TEST(InfluenceEngineTest, ReusedGradTapeLeavesInfluenceScoresIdentical) {
  EngineFixture fx(nn::ModelKind::kGcn, /*seed=*/33);
  InfluenceConfig reuse_cfg;  // reuse_grad_tape = true (default)
  InfluenceConfig fresh_cfg;
  fresh_cfg.reuse_grad_tape = false;

  InfluenceCalculator reuse_calc(fx.model.get(), fx.ctx, fx.split.train,
                                 fx.data.labels, reuse_cfg);
  InfluenceCalculator fresh_calc(fx.model.get(), fx.ctx, fx.split.train,
                                 fx.data.labels, fresh_cfg);
  const std::vector<double> a = reuse_calc.InfluenceOnUtility();
  const std::vector<double> b = fresh_calc.InfluenceOnUtility();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "influence score " << i;
  }
}

class TrainerReplay : public ::testing::TestWithParam<nn::ModelKind> {};

TEST_P(TrainerReplay, ReplayedEpochsMatchFreshTapesBitwise) {
  const auto data = ppfr::testing::SmallSbm(12, 90, 3);
  auto ctx = nn::GraphContext::Build(data.graph, data.features);
  const auto split = data::MakeSplit(data.graph.num_nodes(), 25, 0, 3);

  auto run = [&](bool reuse) {
    auto model = nn::MakeModel(GetParam(), ctx.feature_dim(), data.num_classes, 5);
    nn::TrainConfig cfg;
    cfg.epochs = 12;
    cfg.reuse_tape = reuse;
    const nn::TrainStats stats = nn::Train(model.get(), ctx, split.train,
                                           data.labels, cfg);
    std::vector<double> flat = FlattenValues(model->Params());
    flat.insert(flat.end(), stats.epoch_losses.begin(), stats.epoch_losses.end());
    return flat;
  };

  const std::vector<double> replayed = run(true);
  const std::vector<double> fresh = run(false);
  ASSERT_EQ(replayed.size(), fresh.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    ASSERT_EQ(replayed[i], fresh[i]) << "component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TrainerReplay,
                         ::testing::Values(nn::ModelKind::kGcn, nn::ModelKind::kGat,
                                           nn::ModelKind::kGraphSage),
                         [](const ::testing::TestParamInfo<nn::ModelKind>& info) {
                           return nn::ModelKindName(info.param);
                         });

}  // namespace
}  // namespace ppfr::influence

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solver/projections.h"
#include "solver/qclp.h"

namespace ppfr::solver {
namespace {

double Norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

TEST(ProjectionsTest, BoxClamps) {
  std::vector<double> w{-3, 0.5, 2};
  ProjectBox(-1, 1, &w);
  EXPECT_EQ(w, (std::vector<double>{-1, 0.5, 1}));
}

TEST(ProjectionsTest, BallScalesOnlyWhenOutside) {
  std::vector<double> inside{0.3, 0.4};
  ProjectBall(1.0, &inside);
  EXPECT_DOUBLE_EQ(inside[0], 0.3);
  std::vector<double> outside{3, 4};
  ProjectBall(1.0, &outside);
  EXPECT_NEAR(Norm(outside), 1.0, 1e-12);
  EXPECT_NEAR(outside[0] / outside[1], 0.75, 1e-12);  // direction preserved
}

TEST(ProjectionsTest, HalfspaceProjectsOntoBoundary) {
  const std::vector<double> u{1, 1};
  std::vector<double> ok{0.2, 0.2};
  ProjectHalfspace(u, 1.0, &ok);
  EXPECT_DOUBLE_EQ(ok[0], 0.2);  // already feasible
  std::vector<double> bad{2, 2};
  ProjectHalfspace(u, 1.0, &bad);
  EXPECT_NEAR(bad[0] + bad[1], 1.0, 1e-12);
  EXPECT_NEAR(bad[0], bad[1], 1e-12);
}

TEST(ProjectionsTest, HyperplaneProjectsBothSides) {
  const std::vector<double> u{1, 1, 1};
  std::vector<double> w{1, 2, 3};
  ProjectHyperplane(u, 0.0, &w);
  EXPECT_NEAR(w[0] + w[1] + w[2], 0.0, 1e-12);
  std::vector<double> below{-5, 0, 0};
  ProjectHyperplane(u, 0.0, &below);
  EXPECT_NEAR(below[0] + below[1] + below[2], 0.0, 1e-12);
}

TEST(ProjectionsTest, ProjectionsAreIdempotent) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> w(4);
    for (auto& x : w) x = rng.Normal() * 3;
    ProjectBall(2.0, &w);
    std::vector<double> again = w;
    ProjectBall(2.0, &again);
    for (int i = 0; i < 4; ++i) EXPECT_NEAR(w[i], again[i], 1e-12);
  }
}

TEST(DykstraTest, IntersectionPointIsFeasible) {
  Rng rng(5);
  const std::vector<double> u{1.0, -0.5, 0.25, 1.0};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w(4);
    for (auto& x : w) x = rng.Normal() * 4;
    ProjectIntersection(-1, 1, 2.0, u, 0.3, DykstraOptions{}, &w);
    double norm_sq = 0, dot = 0;
    for (int i = 0; i < 4; ++i) {
      EXPECT_GE(w[i], -1 - 1e-8);
      EXPECT_LE(w[i], 1 + 1e-8);
      norm_sq += w[i] * w[i];
      dot += u[i] * w[i];
    }
    EXPECT_LE(norm_sq, 2.0 + 1e-6);
    EXPECT_LE(dot, 0.3 + 1e-6);
  }
}

TEST(DykstraTest, MatchesExactProjectionOnBoxBall) {
  // For the point (2, 0) with box [-1,1]² and ball radius 1, the exact
  // projection is (1, 0) ... but with ball ‖w‖ ≤ 0.5 it is (0.5, 0).
  std::vector<double> w{2, 0};
  ProjectIntersection(-1, 1, 0.25, {0.0, 0.0}, 1.0, DykstraOptions{}, &w);
  EXPECT_NEAR(w[0], 0.5, 1e-6);
  EXPECT_NEAR(w[1], 0.0, 1e-9);
}

TEST(QclpTest, BallOnlyAnalyticSolution) {
  // min cᵀw s.t. ‖w‖² <= r², box wide: w* = -r c/‖c‖.
  QclpProblem p;
  p.objective = {3, -4};
  p.ball_radius_sq = 4.0;
  p.box_lo = -10;
  p.box_hi = 10;
  const QclpResult result = SolveQclp(p);
  EXPECT_NEAR(result.w[0], -2.0 * 3 / 5, 1e-3);
  EXPECT_NEAR(result.w[1], 2.0 * 4 / 5, 1e-3);
  EXPECT_NEAR(result.objective_value, -2.0 * 5, 1e-2);
}

TEST(QclpTest, BoxBindingSolution) {
  // Large ball: solution sits at the box corner opposing c.
  QclpProblem p;
  p.objective = {1, -2, 0.5};
  p.ball_radius_sq = 100.0;
  const QclpResult result = SolveQclp(p);
  EXPECT_NEAR(result.w[0], -1, 1e-3);
  EXPECT_NEAR(result.w[1], 1, 1e-3);
  EXPECT_NEAR(result.w[2], -1, 1e-3);
}

TEST(QclpTest, SolutionIsFeasible) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    QclpProblem p;
    const int n = 6;
    p.objective.resize(n);
    p.halfspace_u.resize(n);
    for (int i = 0; i < n; ++i) {
      p.objective[i] = rng.Normal();
      p.halfspace_u[i] = rng.Normal();
    }
    p.ball_radius_sq = 0.5 * n;
    p.halfspace_offset = 0.2;
    p.zero_sum = trial % 2 == 0;
    const QclpResult result = SolveQclp(p);
    EXPECT_TRUE(IsFeasible(p, result.w, 1e-4)) << "trial " << trial;
  }
}

TEST(QclpTest, BeatsRandomFeasiblePoints) {
  Rng rng(11);
  QclpProblem p;
  const int n = 5;
  p.objective.resize(n);
  p.halfspace_u.resize(n);
  for (int i = 0; i < n; ++i) {
    p.objective[i] = rng.Normal();
    p.halfspace_u[i] = rng.Normal();
  }
  p.ball_radius_sq = 2.0;
  p.halfspace_offset = 0.1;
  const QclpResult result = SolveQclp(p);

  // No random feasible point should do meaningfully better.
  double best_random = 1e9;
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<double> w(n);
    for (auto& x : w) x = rng.Uniform(-1, 1);
    if (!IsFeasible(p, w, 0.0)) continue;
    double value = 0;
    for (int i = 0; i < n; ++i) value += p.objective[i] * w[i];
    best_random = std::min(best_random, value);
  }
  EXPECT_LE(result.objective_value, best_random + 0.05 * std::fabs(best_random));
}

TEST(QclpTest, ZeroSumConstraintHolds) {
  Rng rng(13);
  QclpProblem p;
  p.objective = {1.0, 0.5, -0.2, 2.0, -1.5};
  p.ball_radius_sq = 4.0;
  p.zero_sum = true;
  const QclpResult result = SolveQclp(p);
  double sum = 0;
  for (double w : result.w) sum += w;
  EXPECT_NEAR(sum, 0.0, 1e-4);
  EXPECT_TRUE(IsFeasible(p, result.w, 1e-4));
}

TEST(QclpTest, ZeroObjectiveReturnsFeasiblePoint) {
  QclpProblem p;
  p.objective = {0, 0, 0};
  p.ball_radius_sq = 1.0;
  const QclpResult result = SolveQclp(p);
  EXPECT_TRUE(IsFeasible(p, result.w, 1e-9));
  EXPECT_DOUBLE_EQ(result.objective_value, 0.0);
}

// Exhaustive check on a 2-D grid across several random problems.
class QclpGridSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QclpGridSweep, NearGridOptimum) {
  Rng rng(GetParam());
  QclpProblem p;
  p.objective = {rng.Normal(), rng.Normal()};
  p.halfspace_u = {rng.Normal(), rng.Normal()};
  p.ball_radius_sq = 1.2;
  p.halfspace_offset = 0.15;
  const QclpResult result = SolveQclp(p);

  double grid_best = 1e9;
  constexpr int kSteps = 400;
  for (int i = 0; i <= kSteps; ++i) {
    for (int j = 0; j <= kSteps; ++j) {
      std::vector<double> w{-1.0 + 2.0 * i / kSteps, -1.0 + 2.0 * j / kSteps};
      if (!IsFeasible(p, w, 0.0)) continue;
      grid_best = std::min(grid_best, p.objective[0] * w[0] + p.objective[1] * w[1]);
    }
  }
  EXPECT_LE(result.objective_value, grid_best + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Problems, QclpGridSweep,
                         ::testing::Values(21ull, 22ull, 23ull, 24ull, 25ull));

}  // namespace
}  // namespace ppfr::solver

// Tests for the crash-safety sweep journal (runner/journal) and --resume
// semantics: full-journal resume recomputes nothing and reproduces the
// stable artifact bitwise; torn tails, corrupt/foreign headers and failed
// records all recover per the file contract.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "nn/trainer.h"
#include "runner/journal.h"
#include "runner/run_cache.h"
#include "runner/runner.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kEnvSeed = 7;

Scenario Cell(data::DatasetId dataset, nn::ModelKind model, core::MethodKind method,
              int epochs) {
  Scenario cell{dataset, model, method, {}, ""};
  cell.overrides.epochs = epochs;
  return cell;
}

Sweep MiniSuiteSweep(int epochs) {
  Sweep sweep;
  sweep.name = "journal_mini";
  for (core::MethodKind method :
       {core::MethodKind::kVanilla, core::MethodKind::kDpFr,
        core::MethodKind::kPpFr}) {
    sweep.cells.push_back(
        Cell(data::DatasetId::kEnzymesLike, nn::ModelKind::kGcn, method, epochs));
  }
  return sweep;
}

RunnerOptions JournalOptions(const std::string& journal_path, bool resume) {
  RunnerOptions opts;
  opts.threads = 1;
  opts.env_seed = kEnvSeed;
  opts.verbose = false;
  opts.retry_backoff_ms = 0;
  opts.journal_path = journal_path;
  opts.resume = resume;
  return opts;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Stable artifacts of two results, as bytes — the "did resume reproduce the
// interrupted run" oracle.
std::string StableArtifactBytes(const SweepResult& result, const std::string& dir) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ArtifactOptions stable;
  stable.stable = true;
  return ReadFileOrDie(WriteArtifact(result, dir, stable));
}

TEST(JournalTest, RoundTripsRecordsThroughReopen) {
  const std::string path = ::testing::TempDir() + "/journal_roundtrip.journal";
  std::remove(path.c_str());

  JournalRecord rec;
  rec.cell_key = 0xabcdef12345ULL;
  rec.seed = 11;
  rec.retries = 1;
  rec.cache_hit = true;
  rec.eval.accuracy = 0.75;
  rec.eval.bias = 1e-4;
  rec.eval.risk_auc = 0.62;
  rec.eval.delta_d = 0.01;
  rec.vanilla_eval.accuracy = 0.70;
  rec.delta.d_acc = 5.0;
  rec.delta.combined = -0.25;
  rec.extra["cg_unconverged"] = 2.0;

  JournalRecord failed;
  failed.cell_key = 99;
  failed.failed = true;
  failed.error = "non-finite training loss at epoch 3";

  {
    SweepJournal journal(path, "probe", kEnvSeed, /*resume=*/false);
    journal.Append(rec);
    journal.Append(failed);
  }
  SweepJournal reopened(path, "probe", kEnvSeed, /*resume=*/true);
  ASSERT_EQ(reopened.replayed().size(), 2u);
  const JournalRecord& got = reopened.replayed().at(rec.cell_key);
  EXPECT_EQ(got.seed, 11u);
  EXPECT_EQ(got.retries, 1);
  EXPECT_TRUE(got.cache_hit);
  EXPECT_FALSE(got.failed);
  EXPECT_EQ(got.eval.accuracy, 0.75);
  EXPECT_EQ(got.eval.delta_d, 0.01);
  EXPECT_EQ(got.vanilla_eval.accuracy, 0.70);
  EXPECT_EQ(got.delta.d_acc, 5.0);
  EXPECT_EQ(got.delta.combined, -0.25);
  EXPECT_EQ(got.extra.at("cg_unconverged"), 2.0);
  const JournalRecord& got_failed = reopened.replayed().at(99);
  EXPECT_TRUE(got_failed.failed);
  EXPECT_EQ(got_failed.error, "non-finite training loss at epoch 3");

  // Identity mismatches replay nothing: wrong sweep name, wrong env seed,
  // and resume=false (fresh) all start empty.
  EXPECT_TRUE(
      SweepJournal(path, "other_sweep", kEnvSeed, /*resume=*/true).replayed().empty());
  // The failed open above rewrote the file with ITS OWN header, so later
  // identities see a foreign journal — exactly the fresh-start contract.
  EXPECT_TRUE(
      SweepJournal(path, "probe", kEnvSeed, /*resume=*/true).replayed().empty());
}

TEST(JournalTest, DuplicateKeysReplayLastWins) {
  const std::string path = ::testing::TempDir() + "/journal_dupes.journal";
  std::remove(path.c_str());
  JournalRecord first;
  first.cell_key = 5;
  first.failed = true;
  first.error = "crashed attempt";
  JournalRecord second;
  second.cell_key = 5;
  second.eval.accuracy = 0.5;
  {
    SweepJournal journal(path, "dupes", kEnvSeed, /*resume=*/false);
    journal.Append(first);
    journal.Append(second);
  }
  SweepJournal reopened(path, "dupes", kEnvSeed, /*resume=*/true);
  ASSERT_EQ(reopened.replayed().size(), 1u);
  EXPECT_FALSE(reopened.replayed().at(5).failed);
  EXPECT_EQ(reopened.replayed().at(5).eval.accuracy, 0.5);
}

// The headline resume contract: a journal holding every cell restores the
// whole sweep with ZERO recomputation, bitwise-equal stable artifact.
TEST(JournalResumeTest, FullJournalResumesWithoutRetraining) {
  const std::string path = ::testing::TempDir() + "/journal_full.journal";
  std::remove(path.c_str());
  const Sweep sweep = MiniSuiteSweep(6);

  RunCache first_cache;
  const SweepResult first =
      RunSweep(sweep, &first_cache, JournalOptions(path, /*resume=*/false));
  ASSERT_EQ(first.failed_cells, 0);

  // Fresh in-memory cache = nothing carries over except the journal file.
  RunCache second_cache;
  const int64_t trains_before = nn::TrainInvocationCount();
  const SweepResult second =
      RunSweep(sweep, &second_cache, JournalOptions(path, /*resume=*/true));
  EXPECT_EQ(nn::TrainInvocationCount(), trains_before)
      << "a fully journaled sweep must not retrain anything";
  EXPECT_EQ(second.resumed_cells, static_cast<int64_t>(sweep.cells.size()));
  EXPECT_EQ(second.failed_cells, 0);
  for (const CellResult& cell : second.cells) {
    EXPECT_TRUE(cell.resumed);
    EXPECT_EQ(cell.run->model, nullptr)
        << "journal-restored cells carry metrics, not models";
  }

  EXPECT_EQ(StableArtifactBytes(first, ::testing::TempDir() + "/journal_full_a"),
            StableArtifactBytes(second, ::testing::TempDir() + "/journal_full_b"))
      << "resume must reproduce the stable artifact bitwise";
}

// A SIGKILL mid-append leaves a torn tail frame: the resume drops exactly
// the torn record, recomputes that cell, and still matches bitwise.
TEST(JournalResumeTest, TornTailRecomputesOnlyAffectedCells) {
  const std::string path = ::testing::TempDir() + "/journal_torn.journal";
  std::remove(path.c_str());
  const Sweep sweep = MiniSuiteSweep(6);

  RunCache first_cache;
  const SweepResult first =
      RunSweep(sweep, &first_cache, JournalOptions(path, /*resume=*/false));

  // Tear the last frame mid-body, as a crash during Append would.
  const uintmax_t size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  RunCache second_cache;
  const SweepResult second =
      RunSweep(sweep, &second_cache, JournalOptions(path, /*resume=*/true));
  EXPECT_EQ(second.resumed_cells, static_cast<int64_t>(sweep.cells.size()) - 1);
  EXPECT_EQ(second.failed_cells, 0);

  EXPECT_EQ(StableArtifactBytes(first, ::testing::TempDir() + "/journal_torn_a"),
            StableArtifactBytes(second, ::testing::TempDir() + "/journal_torn_b"));
}

// A corrupt header (or a journal from another sweep/format) replays nothing
// and the sweep recomputes from scratch — never crashes, never trusts bytes
// that fail the checksum.
TEST(JournalResumeTest, CorruptHeaderStartsFresh) {
  const std::string path = ::testing::TempDir() + "/journal_corrupt.journal";
  std::remove(path.c_str());
  const Sweep sweep = MiniSuiteSweep(6);

  RunCache first_cache;
  const SweepResult first =
      RunSweep(sweep, &first_cache, JournalOptions(path, /*resume=*/false));

  std::string bytes = ReadFileOrDie(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[14] ^= 0x5a;  // inside the header body → checksum mismatch
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  RunCache second_cache;
  const SweepResult second =
      RunSweep(sweep, &second_cache, JournalOptions(path, /*resume=*/true));
  EXPECT_EQ(second.resumed_cells, 0);
  EXPECT_EQ(second.failed_cells, 0);

  EXPECT_EQ(StableArtifactBytes(first, ::testing::TempDir() + "/journal_corrupt_a"),
            StableArtifactBytes(second, ::testing::TempDir() + "/journal_corrupt_b"));
}

// Failed cells journal their failure but re-run on resume — the resume is
// the natural second chance, and with the fault gone they now succeed.
TEST(JournalResumeTest, FailedRecordsRerunOnResume) {
  const std::string path = ::testing::TempDir() + "/journal_failed.journal";
  std::remove(path.c_str());
  const Sweep sweep = MiniSuiteSweep(4);

  {
    fault::ConfigureForTest("stage.cell:1");
    RunnerOptions opts = JournalOptions(path, /*resume=*/false);
    opts.max_cell_retries = 0;
    RunCache cache;
    const SweepResult crashed = RunSweep(sweep, &cache, opts);
    fault::ConfigureForTest("");
    ASSERT_EQ(crashed.failed_cells, static_cast<int64_t>(sweep.cells.size()));
  }

  RunCache cache;
  const SweepResult resumed =
      RunSweep(sweep, &cache, JournalOptions(path, /*resume=*/true));
  EXPECT_EQ(resumed.resumed_cells, 0)
      << "failed records must not restore as finished cells";
  EXPECT_EQ(resumed.failed_cells, 0) << "re-run cells succeed once the fault is gone";

  // The re-run run's artifact matches a clean never-failed run.
  RunCache clean_cache;
  RunnerOptions clean_opts = JournalOptions("", /*resume=*/false);
  clean_opts.journal_path.clear();
  const SweepResult clean = RunSweep(sweep, &clean_cache, clean_opts);
  EXPECT_EQ(StableArtifactBytes(clean, ::testing::TempDir() + "/journal_failed_a"),
            StableArtifactBytes(resumed, ::testing::TempDir() + "/journal_failed_b"));
}

}  // namespace
}  // namespace ppfr::runner

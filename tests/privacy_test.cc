#include <gtest/gtest.h>

#include <cmath>

#include "privacy/attack/link_stealing.h"
#include "privacy/attack/pair_sampler.h"
#include "privacy/defense/edge_rand.h"
#include "privacy/defense/heterophilic_perturbation.h"
#include "privacy/defense/lap_graph.h"
#include "privacy/distance.h"
#include "privacy/risk_metric.h"
#include "test_util.h"

namespace ppfr::privacy {
namespace {

using ::ppfr::testing::SmallSbm;

TEST(DistanceTest, KnownValues) {
  const std::vector<double> a{1, 0, 0};
  const std::vector<double> b{0, 1, 0};
  EXPECT_NEAR(Distance(DistanceKind::kCosine, a, b), 1.0, 1e-12);
  EXPECT_NEAR(Distance(DistanceKind::kEuclidean, a, b), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(Distance(DistanceKind::kSqeuclidean, a, b), 2.0, 1e-12);
  EXPECT_NEAR(Distance(DistanceKind::kChebyshev, a, b), 1.0, 1e-12);
  EXPECT_NEAR(Distance(DistanceKind::kCityblock, a, b), 2.0, 1e-12);
  EXPECT_NEAR(Distance(DistanceKind::kBraycurtis, a, b), 1.0, 1e-12);
  EXPECT_NEAR(Distance(DistanceKind::kCanberra, a, b), 2.0, 1e-12);
}

class DistancePropertySweep : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(DistancePropertySweep, IdentityAndSymmetryAndNonNegativity) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(5), b(5);
    for (auto& x : a) x = 0.05 + rng.Uniform();  // positive, probability-like
    for (auto& x : b) x = 0.05 + rng.Uniform();
    const double dab = Distance(GetParam(), a, b);
    const double dba = Distance(GetParam(), b, a);
    EXPECT_NEAR(dab, dba, 1e-12);
    EXPECT_GE(dab, 0.0);
    EXPECT_NEAR(Distance(GetParam(), a, a), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistancePropertySweep, ::testing::ValuesIn(AllDistanceKinds()),
    [](const auto& info) { return DistanceName(info.param); });

TEST(PairSamplerTest, PositivesAreEdgesNegativesAreNot) {
  const auto data = SmallSbm(1, 100, 3);
  const PairSample pairs = SamplePairs(data.graph, 50, 7);
  EXPECT_EQ(pairs.connected.size(), pairs.unconnected.size());
  EXPECT_LE(pairs.connected.size(), 50u);
  for (const auto& [u, v] : pairs.connected) EXPECT_TRUE(data.graph.HasEdge(u, v));
  for (const auto& [u, v] : pairs.unconnected) {
    EXPECT_FALSE(data.graph.HasEdge(u, v));
    EXPECT_NE(u, v);
  }
}

TEST(PairSamplerTest, UsesAllEdgesWhenBelowCap) {
  const auto data = SmallSbm(2, 60, 3);
  const PairSample pairs =
      SamplePairs(data.graph, static_cast<int>(data.graph.num_edges()) + 100, 7);
  EXPECT_EQ(static_cast<int64_t>(pairs.connected.size()), data.graph.num_edges());
}

TEST(LinkStealingTest, RandomPredictionsGiveChanceAuc) {
  const auto data = SmallSbm(3, 150, 3);
  const PairSample pairs = SamplePairs(data.graph, 400, 11);
  Rng rng(5);
  la::Matrix probs(data.graph.num_nodes(), 3);
  for (int v = 0; v < probs.rows(); ++v) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      probs(v, c) = 0.01 + rng.Uniform();
      sum += probs(v, c);
    }
    for (int c = 0; c < 3; ++c) probs(v, c) /= sum;
  }
  const AttackResult result = LinkStealingAttack(probs, pairs);
  EXPECT_NEAR(result.mean_auc, 0.5, 0.08);
}

TEST(LinkStealingTest, HomophilousOneHotPredictionsLeakEdges) {
  const auto data = SmallSbm(4, 150, 3);
  const PairSample pairs = SamplePairs(data.graph, 400, 11);
  // Predictions = smoothed one-hot labels: connected nodes mostly share a
  // class, so their distances are small -> attack succeeds.
  la::Matrix probs(data.graph.num_nodes(), 3, 0.05);
  for (int v = 0; v < probs.rows(); ++v) probs(v, data.labels[v]) = 0.9;
  const AttackResult result = LinkStealingAttack(probs, pairs);
  EXPECT_GT(result.mean_auc, 0.7);
  EXPECT_GT(result.cluster_f1, 0.6);
  EXPECT_EQ(result.auc_per_distance.size(), AllDistanceKinds().size());
}

TEST(RiskMetricTest, DeltaDZeroForIdenticalDistributions) {
  const auto data = SmallSbm(5, 100, 3);
  const PairSample pairs = SamplePairs(data.graph, 100, 3);
  la::Matrix uniform(data.graph.num_nodes(), 3, 1.0 / 3);
  EXPECT_NEAR(DeltaD(uniform, pairs, DistanceKind::kCosine), 0.0, 1e-12);
}

TEST(RiskMetricTest, SurrogateMatchesNumericDefinition) {
  const auto data = SmallSbm(6, 100, 3);
  const PairSample pairs = SamplePairs(data.graph, 200, 3);
  Rng rng(9);
  const la::Matrix logits =
      ppfr::testing::RandomMatrix(data.graph.num_nodes(), 3, &rng);
  ag::Tape tape;
  ag::Var logits_var = tape.Constant(logits);
  // Constant input -> needs a leaf somewhere for Backward, but value-only
  // comparison works without backward.
  const double surrogate =
      RiskSurrogate(tape, logits_var, pairs).value()(0, 0);
  const double reference = NormalizedDeltaD(la::SoftmaxRows(logits), pairs,
                                            DistanceKind::kSqeuclidean);
  EXPECT_NEAR(surrogate, reference, 1e-6 * std::max(1.0, reference));
}

TEST(EdgeRandTest, FlipProbabilityFormula) {
  EXPECT_NEAR(EdgeRandFlipProbability(std::log(3.0)), 0.5, 1e-12);
  EXPECT_GT(EdgeRandFlipProbability(1.0), EdgeRandFlipProbability(5.0));
}

TEST(EdgeRandTest, HighEpsilonPreservesGraph) {
  const auto data = SmallSbm(7, 120, 3);
  const graph::Graph noisy = EdgeRand(data.graph, 20.0, 3);
  // s = 2/(1+e^20) ~ 4e-9: expect essentially no flips.
  EXPECT_EQ(noisy.num_edges(), data.graph.num_edges());
}

TEST(EdgeRandTest, FlipCountMatchesRate) {
  const auto data = SmallSbm(8, 150, 3);
  const double eps = 6.0;
  const graph::Graph noisy = EdgeRand(data.graph, eps, 5);
  // Count differing cells between the two edge sets.
  int64_t flips = 0;
  for (const auto& e : data.graph.Edges()) flips += !noisy.HasEdge(e.u, e.v);
  for (const auto& e : noisy.Edges()) flips += !data.graph.HasEdge(e.u, e.v);
  const int64_t n = data.graph.num_nodes();
  const double expected = EdgeRandFlipProbability(eps) * (n * (n - 1) / 2.0);
  EXPECT_NEAR(static_cast<double>(flips), expected, 4.0 * std::sqrt(expected) + 5.0);
}

TEST(EdgeRandTest, DeterministicInSeed) {
  const auto data = SmallSbm(9, 100, 3);
  const graph::Graph a = EdgeRand(data.graph, 4.0, 11);
  const graph::Graph b = EdgeRand(data.graph, 4.0, 11);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (const auto& e : a.Edges()) EXPECT_TRUE(b.HasEdge(e.u, e.v));
}

TEST(LapGraphTest, KeepsEdgeBudget) {
  const auto data = SmallSbm(10, 100, 3);
  const graph::Graph noisy = LapGraph(data.graph, 4.0, 3);
  EXPECT_EQ(noisy.num_edges(), data.graph.num_edges());
}

TEST(LapGraphTest, HighEpsilonRecoversOriginalEdges) {
  const auto data = SmallSbm(11, 100, 3);
  const graph::Graph noisy = LapGraph(data.graph, 50.0, 3);
  int64_t preserved = 0;
  for (const auto& e : data.graph.Edges()) preserved += noisy.HasEdge(e.u, e.v);
  EXPECT_GT(static_cast<double>(preserved),
            0.95 * static_cast<double>(data.graph.num_edges()));
}

TEST(LapGraphTest, LowEpsilonDestroysStructure) {
  const auto data = SmallSbm(12, 100, 3);
  const graph::Graph noisy = LapGraph(data.graph, 0.1, 3);
  int64_t preserved = 0;
  for (const auto& e : data.graph.Edges()) preserved += noisy.HasEdge(e.u, e.v);
  // At eps=0.1 the Laplace noise dominates: most kept cells are random.
  EXPECT_LT(static_cast<double>(preserved),
            0.5 * static_cast<double>(data.graph.num_edges()));
}

TEST(HeterophilicPerturbationTest, ZeroGammaIsIdentity) {
  const auto data = SmallSbm(13, 100, 3);
  const graph::Graph out =
      AddHeterophilicEdges(data.graph, data.labels, 0.0, 3);
  EXPECT_EQ(out.num_edges(), data.graph.num_edges());
}

TEST(HeterophilicPerturbationTest, AddsOnlyCrossLabelNonEdges) {
  const auto data = SmallSbm(14, 120, 3);
  const std::vector<int>& predicted = data.labels;
  const graph::Graph out = AddHeterophilicEdges(data.graph, predicted, 0.5, 3);
  EXPECT_GT(out.num_edges(), data.graph.num_edges());
  for (const auto& e : out.Edges()) {
    if (data.graph.HasEdge(e.u, e.v)) continue;  // original edge
    EXPECT_NE(predicted[e.u], predicted[e.v])
        << "added edge must be heterophilic: (" << e.u << "," << e.v << ")";
  }
}

TEST(HeterophilicPerturbationTest, BudgetScalesWithGamma) {
  const auto data = SmallSbm(15, 150, 3);
  const graph::Graph small = AddHeterophilicEdges(data.graph, data.labels, 0.3, 3);
  const graph::Graph large = AddHeterophilicEdges(data.graph, data.labels, 1.0, 3);
  const int64_t added_small = small.num_edges() - data.graph.num_edges();
  const int64_t added_large = large.num_edges() - data.graph.num_edges();
  EXPECT_GT(added_large, 2 * added_small);
  // γ=1 adds about one heterophilic edge per existing edge endpoint (some
  // collisions are deduplicated, so allow slack).
  EXPECT_GT(static_cast<double>(added_large),
            0.6 * static_cast<double>(data.graph.num_edges()));
}

TEST(HeterophilicPerturbationTest, ReducesHomophily) {
  const auto data = SmallSbm(16, 150, 3);
  const graph::Graph out = AddHeterophilicEdges(data.graph, data.labels, 1.0, 3);
  EXPECT_LT(out.EdgeHomophily(data.labels), data.graph.EdgeHomophily(data.labels));
}

}  // namespace
}  // namespace ppfr::privacy

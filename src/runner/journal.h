#ifndef PPFR_RUNNER_JOURNAL_H_
#define PPFR_RUNNER_JOURNAL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/metrics.h"

namespace ppfr::runner {

// Everything the runner needs to reconstruct a finished cell's CellResult
// without recomputing it: full eval scorecards (bitwise, via the
// common/serialize double round trip), deltas, bench extras and the failure
// bookkeeping. Keyed by RunCache::CellKey of the resolved scenario — the
// same content hash the stage cache uses, so a journal record can only ever
// replay onto the exact cell configuration that produced it.
struct JournalRecord {
  uint64_t cell_key = 0;
  uint64_t seed = 0;      // resolved method seed of the instance
  bool failed = false;
  int32_t retries = 0;
  bool cache_hit = false;
  std::string error;      // empty unless failed
  core::EvalResult eval;
  core::EvalResult vanilla_eval;
  core::DeltaMetrics delta;
  std::map<std::string, double> extra;
};

// Append-only sweep journal: one checksummed, length-framed record per
// completed (or failed) cell, so a SIGKILL'd sweep rerun with --resume
// replays the finished cells from disk and only recomputes the rest —
// combined with the disk run cache this reproduces the interrupted sweep's
// stable artifact bitwise.
//
// File contract (shares the framing philosophy of runner::CacheStore — all
// failure modes recover, never crash):
//  * The file is a sequence of frames [u32 body_len][u64 fnv1a(body)][body].
//    Frame 0's body is the header: journal magic, format version, the
//    CacheStore fingerprint (serialization version + backend kind + SIMD
//    state — results are only bitwise comparable within one fingerprint),
//    the sweep name and the env seed. Every later body is one JournalRecord.
//  * Appends write a complete frame and flush. A crash mid-append leaves a
//    torn tail frame; replay parses the longest valid prefix, drops the
//    tail, and the constructor truncates the file back to that prefix (via
//    the atomic-write idiom) before appending resumes.
//  * A journal whose header is unreadable or belongs to a different
//    (version, fingerprint, sweep, env_seed) identity replays NOTHING — it
//    is overwritten with a fresh header, and the sweep recomputes (the
//    CacheStore corrupt-entry discipline, applied to the journal).
//  * Duplicate keys replay last-wins, so a record appended by a resumed run
//    supersedes the crashed run's earlier record for the same cell.
//  * A journal that was REQUESTED but cannot be created/written at open
//    dies loudly (like an uncreatable --run_cache_dir): silently running
//    unjournaled would forfeit exactly the crash-safety that was asked for.
//    Append failures after open only warn — a full disk must not kill a
//    sweep that can still finish.
// Read-only replay of a journal file for the (sweep_name, env_seed)
// identity. Unlike constructing a SweepJournal, this never rewrites or
// truncates the file — it is what `--merge` uses to read SHARD journals it
// does not own (a merge must never mutate a shard's crash-recovery state; the
// shard may still be running or about to resume). header_ok=false covers
// both "no such file" and "foreign identity" — the caller treats either as
// the whole journal missing. The fault::kJournalReplay site fires per record
// and truncates the replay at that record (it and everything after it read
// as never-finished), modelling a record that fails validation in the field.
struct JournalReplay {
  bool header_ok = false;  // file exists and the header matches the identity
  bool torn = false;       // a torn/corrupt/fault-truncated tail was dropped
  std::unordered_map<uint64_t, JournalRecord> records;
};
JournalReplay ReplayJournalFile(const std::string& path,
                                const std::string& sweep_name,
                                uint64_t env_seed);

// Bitwise equivalence under the canonical record serialization (doubles
// compare by bit pattern, so 0.0 != -0.0 and NaN == NaN exactly like the
// artifact bytes would). This is how the merge decides whether two shards'
// records for the same cell key agree or conflict.
bool RecordsEquivalent(const JournalRecord& a, const JournalRecord& b);

class SweepJournal {
 public:
  // Opens `path` for the (sweep_name, env_seed) identity. resume=false
  // starts a fresh journal (truncating any previous file); resume=true
  // replays existing valid records first (see class contract).
  SweepJournal(std::string path, std::string sweep_name, uint64_t env_seed,
               bool resume);

  // Valid replayed records by cell key (empty unless resume found a matching
  // journal). Immutable after construction.
  const std::unordered_map<uint64_t, JournalRecord>& replayed() const {
    return replayed_;
  }

  // Appends one record frame; thread-safe (concurrent scheduler workers
  // journal their cells as they finish). The fault::kJournalAppend site
  // drops the record (the cell is recomputed on the next resume), modelling
  // a crash between cell completion and the journal write.
  void Append(const JournalRecord& record);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string sweep_name_;
  uint64_t env_seed_;
  std::mutex mu_;
  std::unordered_map<uint64_t, JournalRecord> replayed_;
};

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_JOURNAL_H_

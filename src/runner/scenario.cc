#include "runner/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ppfr::runner {
namespace {

const std::vector<data::DatasetId>& AllDatasets() {
  static const std::vector<data::DatasetId> all{
      data::DatasetId::kCoraLike, data::DatasetId::kCiteseerLike,
      data::DatasetId::kPubmedLike, data::DatasetId::kEnzymesLike,
      data::DatasetId::kCreditLike};
  return all;
}

const std::vector<nn::ModelKind>& AllModels() {
  static const std::vector<nn::ModelKind> all{
      nn::ModelKind::kGcn, nn::ModelKind::kGat, nn::ModelKind::kGraphSage};
  return all;
}

const std::vector<core::MethodKind>& AllMethods() {
  static const std::vector<core::MethodKind> all{
      core::MethodKind::kVanilla, core::MethodKind::kReg, core::MethodKind::kDpReg,
      core::MethodKind::kDpFr, core::MethodKind::kPpFr};
  return all;
}

[[noreturn]] void DieWithValidNames(const char* what, const std::string& got,
                                    const std::vector<std::string>& valid) {
  std::fprintf(stderr, "unknown %s '%s'; valid names:", what, got.c_str());
  for (const std::string& name : valid) std::fprintf(stderr, " %s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (data::DatasetId id : AllDatasets()) names.push_back(data::DatasetName(id));
  return names;
}

std::vector<std::string> ModelNames() {
  std::vector<std::string> names;
  for (nn::ModelKind kind : AllModels()) names.push_back(nn::ModelKindName(kind));
  return names;
}

std::vector<std::string> MethodNames() {
  std::vector<std::string> names;
  for (core::MethodKind kind : AllMethods()) names.push_back(core::MethodName(kind));
  return names;
}

// The full method column of Tables IV/V: Vanilla first (the Δ baseline),
// then the four comparison pipelines.
std::vector<core::MethodKind> SuiteMethods() { return AllMethods(); }

// dataset-major × model × method cross product, vanilla-first per model so a
// serial run populates the stage cache before the fine-tune methods need it.
std::vector<Scenario> CrossProduct(const std::vector<data::DatasetId>& datasets,
                                   const std::vector<nn::ModelKind>& models,
                                   const std::vector<core::MethodKind>& methods) {
  std::vector<Scenario> cells;
  for (data::DatasetId dataset : datasets) {
    for (nn::ModelKind model : models) {
      for (core::MethodKind method : methods) {
        cells.push_back({dataset, model, method, {}, ""});
      }
    }
  }
  return cells;
}

Sweep AblationSweep() {
  // Fig. 6: PPFR module ablation on (CoraLike, GAT). γ = 0 disables the
  // perturbation entirely (zero heterophilic-edge budget per node), so
  // "FR only" is PPFR with pp_gamma = 0.
  Sweep sweep;
  sweep.name = "fig6";
  sweep.title = "Fig. 6 — PPFR ablation (FR-only / PP-ratio / PP+FR panels)";
  const data::DatasetId dataset = data::DatasetId::kCoraLike;
  const nn::ModelKind model = nn::ModelKind::kGat;
  const std::vector<int> epoch_sweep{8, 15, 30, 45, 60};
  const std::vector<double> gamma_sweep{0.0, 0.25, 0.5, 0.75, 1.0};
  const int fixed_epochs = 30;

  sweep.cells.push_back({dataset, model, core::MethodKind::kVanilla, {}, ""});
  for (int epochs : epoch_sweep) {
    Scenario cell{dataset, model, core::MethodKind::kPpFr, {}, ""};
    cell.overrides.pp_gamma = 0.0;
    cell.overrides.finetune_epochs = epochs;
    cell.label = "fr_only_ep" + std::to_string(epochs);
    sweep.cells.push_back(std::move(cell));
  }
  for (double gamma : gamma_sweep) {
    Scenario cell{dataset, model, core::MethodKind::kPpFr, {}, ""};
    cell.overrides.pp_gamma = gamma;
    cell.overrides.finetune_epochs = fixed_epochs;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "pp_gamma_%.2f", gamma);
    cell.label = buf;
    sweep.cells.push_back(std::move(cell));
  }
  for (int epochs : epoch_sweep) {
    Scenario cell{dataset, model, core::MethodKind::kPpFr, {}, ""};
    cell.overrides.finetune_epochs = epochs;
    cell.label = "ppfr_ep" + std::to_string(epochs);
    sweep.cells.push_back(std::move(cell));
  }
  for (bool zero_sum : {true, false}) {
    Scenario cell{dataset, model, core::MethodKind::kPpFr, {}, ""};
    cell.overrides.pp_gamma = 0.0;
    cell.overrides.finetune_epochs = fixed_epochs;
    cell.overrides.fr_zero_sum = zero_sum;
    cell.label = zero_sum ? "zero_sum_on" : "zero_sum_off";
    sweep.cells.push_back(std::move(cell));
  }
  return sweep;
}

}  // namespace

void ConfigOverrides::Apply(core::MethodConfig* cfg) const {
  if (epochs) cfg->train.epochs = *epochs;
  if (seed) cfg->seed = *seed;
  if (lambda) cfg->lambda = *lambda;
  if (dp_epsilon) cfg->dp_epsilon = *dp_epsilon;
  if (pp_gamma) cfg->pp_gamma = *pp_gamma;
  if (finetune_epochs) cfg->finetune_epochs = *finetune_epochs;
  if (fr_zero_sum) cfg->fr.zero_sum = *fr_zero_sum;
}

std::string Scenario::DisplayLabel() const {
  return label.empty() ? core::MethodName(method) : label;
}

core::MethodConfig Scenario::ResolvedConfig() const {
  core::MethodConfig cfg = core::DefaultMethodConfig(dataset, model);
  overrides.Apply(&cfg);
  return cfg;
}

std::optional<data::DatasetId> ParseDataset(const std::string& name) {
  for (data::DatasetId id : AllDatasets()) {
    if (data::DatasetName(id) == name) return id;
  }
  return std::nullopt;
}

std::optional<nn::ModelKind> ParseModel(const std::string& name) {
  for (nn::ModelKind kind : AllModels()) {
    if (nn::ModelKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

std::optional<core::MethodKind> ParseMethod(const std::string& name) {
  for (core::MethodKind kind : AllMethods()) {
    if (core::MethodName(kind) == name) return kind;
  }
  return std::nullopt;
}

data::DatasetId ParseDatasetOrDie(const std::string& name) {
  const auto id = ParseDataset(name);
  if (!id) DieWithValidNames("dataset", name, DatasetNames());
  return *id;
}

nn::ModelKind ParseModelOrDie(const std::string& name) {
  const auto kind = ParseModel(name);
  if (!kind) DieWithValidNames("model", name, ModelNames());
  return *kind;
}

core::MethodKind ParseMethodOrDie(const std::string& name) {
  const auto kind = ParseMethod(name);
  if (!kind) DieWithValidNames("method", name, MethodNames());
  return *kind;
}

std::vector<std::string> SplitList(const std::string& csv, char sep) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : csv) {
    if (c == sep) {
      if (!current.empty()) tokens.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::vector<data::DatasetId> ParseDatasetListOrDie(
    const std::string& csv, std::vector<data::DatasetId> defaults) {
  if (csv.empty() || csv == "*") return defaults;
  std::vector<data::DatasetId> out;
  for (const std::string& token : SplitList(csv)) {
    out.push_back(ParseDatasetOrDie(token));
  }
  return out;
}

std::vector<nn::ModelKind> ParseModelListOrDie(const std::string& csv,
                                               std::vector<nn::ModelKind> defaults) {
  if (csv.empty() || csv == "*") return defaults;
  std::vector<nn::ModelKind> out;
  for (const std::string& token : SplitList(csv)) {
    out.push_back(ParseModelOrDie(token));
  }
  return out;
}

std::vector<core::MethodKind> ParseMethodListOrDie(
    const std::string& csv, std::vector<core::MethodKind> defaults) {
  if (csv.empty() || csv == "*") return defaults;
  std::vector<core::MethodKind> out;
  for (const std::string& token : SplitList(csv)) {
    out.push_back(ParseMethodOrDie(token));
  }
  return out;
}

std::vector<uint64_t> ParseSeedListOrDie(const std::string& csv) {
  std::vector<uint64_t> seeds;
  for (const std::string& token : SplitList(csv)) {
    uint64_t seed = 0;
    if (!ParseUint64Strict(token, &seed)) {
      std::fprintf(stderr, "invalid seed '%s' in --seeds=%s\n", token.c_str(),
                   csv.c_str());
      std::exit(2);
    }
    if (std::find(seeds.begin(), seeds.end(), seed) != seeds.end()) {
      std::fprintf(stderr, "duplicate seed %llu in --seeds=%s\n",
                   static_cast<unsigned long long>(seed), csv.c_str());
      std::exit(2);
    }
    seeds.push_back(seed);
  }
  return seeds;
}

std::optional<Sweep> RegistrySweep(const std::string& name) {
  const auto strong = data::StrongHomophilyDatasets();
  if (name == "table2") {
    return Sweep{"table2",
                 "Table II — I_fbias / I_frisk correlation (vanilla models)",
                 CrossProduct(strong, AllModels(), {core::MethodKind::kVanilla}),
                 {}};
  }
  if (name == "table3") {
    return Sweep{"table3", "Table III — accuracy and bias, GCN Vanilla vs Reg",
                 CrossProduct(strong, {nn::ModelKind::kGcn},
                              {core::MethodKind::kVanilla, core::MethodKind::kReg}),
                 {}};
  }
  if (name == "table4") {
    return Sweep{"table4", "Table IV — PPFR effectiveness, 3 datasets x 3 models",
                 CrossProduct(strong, AllModels(), SuiteMethods()), {}};
  }
  if (name == "table5" || name == "weak-homophily") {
    return Sweep{"table5", "Table V — weak-homophily study (GCN)",
                 CrossProduct(data::WeakHomophilyDatasets(), {nn::ModelKind::kGcn},
                              SuiteMethods()),
                 {}};
  }
  if (name == "fig4") {
    return Sweep{"fig4", "Fig. 4 — attack AUC per distance, GCN vanilla vs Reg",
                 CrossProduct(strong, {nn::ModelKind::kGcn},
                              {core::MethodKind::kVanilla, core::MethodKind::kReg}),
                 {}};
  }
  if (name == "fig5") {
    return Sweep{"fig5", "Fig. 5 — accuracy cost per method, GCN and GAT",
                 CrossProduct(strong, {nn::ModelKind::kGcn, nn::ModelKind::kGat},
                              SuiteMethods()),
                 {}};
  }
  if (name == "fig6" || name == "ablation") {
    return AblationSweep();
  }
  if (name == "fig7") {
    return Sweep{"fig7", "Fig. 7 — accuracy cost per method, GraphSAGE",
                 CrossProduct(strong, {nn::ModelKind::kGraphSage}, SuiteMethods()),
                 {}};
  }
  if (name == "smoke") {
    return Sweep{"smoke", "CI smoke sweep — one dataset, one model, all methods",
                 CrossProduct({data::DatasetId::kCoraLike}, {nn::ModelKind::kGcn},
                              SuiteMethods()),
                 {}};
  }
  if (name == "smoke-multiseed") {
    // The smoke grid expanded over three method seeds by default — the
    // registry's standing example of the paper's repeat-and-average
    // protocol (any sweep does the same under --seeds=).
    Sweep sweep{"smoke-multiseed",
                "smoke grid aggregated over 3 method seeds (mean/stddev)",
                CrossProduct({data::DatasetId::kCoraLike}, {nn::ModelKind::kGcn},
                             SuiteMethods()),
                {7, 8, 9}};
    return sweep;
  }
  return std::nullopt;
}

std::vector<std::string> RegistrySweepNames() {
  return {"table2", "table3", "table4", "table5",         "fig4",
          "fig5",   "fig6",   "fig7",   "smoke", "smoke-multiseed"};
}

Sweep SweepFromFlags(const Flags& flags, const std::string& default_name) {
  const std::string scenarios = flags.GetString("scenarios", "");
  const std::string grid = flags.GetString("grid", "");
  if (!scenarios.empty() && !grid.empty()) {
    std::fprintf(stderr, "--scenarios= and --grid= are mutually exclusive\n");
    std::exit(2);
  }

  Sweep sweep;
  if (!grid.empty()) {
    // <datasets>;<models>;<methods>, each a comma-list, "" / "*" = defaults.
    // Split preserving empty positions (SplitList drops them).
    std::vector<std::string> parts(1);
    for (char c : grid) {
      if (c == ';') {
        parts.emplace_back();
      } else {
        parts.back() += c;
      }
    }
    if (parts.size() > 3) {
      std::fprintf(stderr,
                   "--grid wants at most 3 ';'-separated parts "
                   "(datasets;models;methods), got '%s'\n",
                   grid.c_str());
      std::exit(2);
    }
    parts.resize(3);
    sweep.name = "grid";
    sweep.title = "ad-hoc grid " + grid;
    sweep.cells = CrossProduct(
        ParseDatasetListOrDie(parts[0], data::StrongHomophilyDatasets()),
        ParseModelListOrDie(parts[1], AllModels()),
        ParseMethodListOrDie(parts[2], SuiteMethods()));
  } else {
    const std::vector<std::string> names =
        scenarios.empty() ? std::vector<std::string>{default_name}
                          : SplitList(scenarios);
    for (const std::string& name : names) {
      std::optional<Sweep> registered = RegistrySweep(name);
      if (!registered) DieWithValidNames("sweep", name, RegistrySweepNames());
      if (sweep.name.empty()) {
        sweep = std::move(*registered);
      } else {
        // Conflicting default seed lists only matter when nothing overrides
        // them — an explicit --seeds= / --seed= (applied by
        // ApplyCommonOverrides after this) replaces the defaults anyway.
        if (registered->seeds != sweep.seeds && !flags.Has("seeds") &&
            !flags.Has("seed")) {
          std::fprintf(stderr,
                       "cannot merge sweeps '%s' and '%s': their default seed "
                       "lists differ (pick one explicitly with --seeds=)\n",
                       sweep.name.c_str(), registered->name.c_str());
          std::exit(2);
        }
        sweep.name += "+" + registered->name;
        sweep.title += " + " + registered->title;
        for (Scenario& cell : registered->cells) {
          sweep.cells.push_back(std::move(cell));
        }
      }
    }
  }

  ApplyFilters(flags, &sweep);
  return sweep;
}

void ApplyFilters(const Flags& flags, Sweep* sweep) {
  // An empty or "*" list means "keep everything", matching the parsers'
  // own defaults convention.
  const auto keep_matching = [sweep](const auto& keep, auto field) {
    std::erase_if(sweep->cells, [&](const Scenario& cell) {
      return std::find(keep.begin(), keep.end(), cell.*field) == keep.end();
    });
  };
  const std::string datasets_csv = flags.GetString("datasets", "");
  if (!datasets_csv.empty() && datasets_csv != "*") {
    keep_matching(ParseDatasetListOrDie(datasets_csv, {}), &Scenario::dataset);
  }
  const std::string models_csv = flags.GetString("models", "");
  if (!models_csv.empty() && models_csv != "*") {
    keep_matching(ParseModelListOrDie(models_csv, {}), &Scenario::model);
  }
  if (sweep->cells.empty()) {
    std::fprintf(stderr, "sweep '%s' has no cells after --datasets/--models filters\n",
                 sweep->name.c_str());
    std::exit(2);
  }
}

std::vector<Scenario> ExpandCells(const Sweep& sweep) {
  // Seed-major: every seed block repeats the sweep's cell order
  // (vanilla-first per model), so a serial warm-up populates the stage cache
  // the same way it does for a single-seed run. This order is canonical —
  // see the header contract.
  if (sweep.seeds.empty()) return sweep.cells;
  std::vector<Scenario> expanded;
  expanded.reserve(sweep.cells.size() * sweep.seeds.size());
  for (uint64_t seed : sweep.seeds) {
    for (Scenario cell : sweep.cells) {
      cell.overrides.seed = seed;
      expanded.push_back(std::move(cell));
    }
  }
  return expanded;
}

void ApplyCommonOverrides(const Flags& flags, Sweep* sweep) {
  if (flags.Has("seed") && flags.Has("seeds")) {
    std::fprintf(stderr,
                 "--seed= and --seeds= are mutually exclusive (one pins a "
                 "single method seed, the other expands the sweep)\n");
    std::exit(2);
  }
  if (flags.Has("seeds")) {
    sweep->seeds = ParseSeedListOrDie(flags.GetString("seeds", ""));
  }
  if (flags.Has("seed")) sweep->seeds.clear();  // a pinned seed beats defaults
  for (Scenario& cell : sweep->cells) {
    if (flags.Has("epochs")) {
      cell.overrides.epochs = flags.GetInt("epochs", 0);
    }
    if (flags.Has("seed")) {
      cell.overrides.seed = flags.GetUint64("seed", 0);
    }
  }
}

}  // namespace ppfr::runner

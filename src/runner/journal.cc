#include "runner/journal.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "core/snapshot.h"
#include "runner/cache_store.h"

namespace ppfr::runner {
namespace {

constexpr uint64_t kJournalMagic = 0x314c4e4a52465050ULL;  // "PPFRJNL1" LE
constexpr uint32_t kJournalVersion = 1;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// [u32 body_len][u64 fnv1a(body)][body]
std::string Frame(const std::string& body) {
  BinaryWriter head;
  head.WriteU32(static_cast<uint32_t>(body.size()));
  head.WriteU64(Fnv1a(body));
  return head.data() + body;
}

// Parses the frame at *pos; false on a torn/corrupt frame (short header,
// body running past EOF, checksum mismatch) — the caller stops there and
// everything before *pos stays the valid prefix.
bool ReadFrame(const std::string& bytes, size_t* pos, std::string* body) {
  if (bytes.size() - *pos < 12) return false;
  BinaryReader head(bytes.data() + *pos, 12);
  const uint32_t len = head.ReadU32();
  const uint64_t checksum = head.ReadU64();
  if (bytes.size() - *pos - 12 < len) return false;
  body->assign(bytes, *pos + 12, len);
  if (Fnv1a(*body) != checksum) return false;
  *pos += 12 + static_cast<size_t>(len);
  return true;
}

void SaveRecord(BinaryWriter* w, const JournalRecord& rec) {
  w->WriteU64(rec.cell_key);
  w->WriteU64(rec.seed);
  w->WriteBool(rec.failed);
  w->WriteI32(rec.retries);
  w->WriteBool(rec.cache_hit);
  w->WriteString(rec.error);
  core::SaveEval(w, rec.eval);
  core::SaveEval(w, rec.vanilla_eval);
  w->WriteDouble(rec.delta.d_acc);
  w->WriteDouble(rec.delta.d_bias);
  w->WriteDouble(rec.delta.d_risk);
  w->WriteDouble(rec.delta.combined);
  w->WriteU32(static_cast<uint32_t>(rec.extra.size()));
  for (const auto& [name, value] : rec.extra) {
    w->WriteString(name);
    w->WriteDouble(value);
  }
}

bool LoadRecord(const std::string& body, JournalRecord* rec) {
  BinaryReader r(body);
  rec->cell_key = r.ReadU64();
  rec->seed = r.ReadU64();
  rec->failed = r.ReadBool();
  rec->retries = r.ReadI32();
  rec->cache_hit = r.ReadBool();
  rec->error = r.ReadString();
  if (!core::LoadEval(&r, &rec->eval)) return false;
  if (!core::LoadEval(&r, &rec->vanilla_eval)) return false;
  rec->delta.d_acc = r.ReadDouble();
  rec->delta.d_bias = r.ReadDouble();
  rec->delta.d_risk = r.ReadDouble();
  rec->delta.combined = r.ReadDouble();
  const uint32_t extras = r.ReadU32();
  // Each extra is at least 12 bytes (length prefix + double); bounding the
  // count before the loop keeps a garbage prefix from spinning.
  if (extras > r.remaining() / 12) return false;
  for (uint32_t i = 0; i < extras; ++i) {
    std::string name = r.ReadString();
    const double value = r.ReadDouble();
    if (!r.ok()) return false;
    rec->extra.emplace(std::move(name), value);
  }
  return r.AtEnd();
}

std::string HeaderBody(const std::string& sweep_name, uint64_t env_seed) {
  BinaryWriter w;
  w.WriteU64(kJournalMagic);
  w.WriteU32(kJournalVersion);
  w.WriteString(CacheStore::Fingerprint());
  w.WriteString(sweep_name);
  w.WriteU64(env_seed);
  return w.data();
}

struct ParsedJournal {
  bool header_ok = false;
  size_t valid_end = 0;  // bytes of the valid prefix (header frame included)
  bool torn = false;
  std::unordered_map<uint64_t, JournalRecord> records;
};

// The one replay loop, shared by the owning SweepJournal constructor (which
// then rewrites the valid prefix) and the read-only ReplayJournalFile (which
// must not). The first torn, corrupt or fault-truncated frame ends the valid
// prefix; duplicate keys replay last-wins.
ParsedJournal ParseJournal(const std::string& bytes, const std::string& header) {
  ParsedJournal out;
  size_t pos = 0;
  std::string body;
  if (!ReadFrame(bytes, &pos, &body) || body != header) return out;
  out.header_ok = true;
  out.valid_end = pos;
  while (ReadFrame(bytes, &pos, &body)) {
    // The injected replay fault models a record that fails validation: it
    // and the tail after it read as never-finished, so those cells
    // recompute (or report missing in a merge) instead of replaying junk.
    if (fault::ShouldFail(fault::kJournalReplay)) {
      std::fprintf(stderr,
                   "journal: injected replay fault (truncating replay; the "
                   "remaining records read as unfinished)\n");
      break;
    }
    JournalRecord rec;
    if (!LoadRecord(body, &rec)) break;
    out.records[rec.cell_key] = std::move(rec);  // last record wins
    out.valid_end = pos;
  }
  out.torn = out.valid_end < bytes.size();
  return out;
}

}  // namespace

bool RecordsEquivalent(const JournalRecord& a, const JournalRecord& b) {
  BinaryWriter wa, wb;
  SaveRecord(&wa, a);
  SaveRecord(&wb, b);
  return wa.data() == wb.data();
}

JournalReplay ReplayJournalFile(const std::string& path,
                                const std::string& sweep_name,
                                uint64_t env_seed) {
  JournalReplay out;
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) return out;
  ParsedJournal parsed = ParseJournal(bytes, HeaderBody(sweep_name, env_seed));
  out.header_ok = parsed.header_ok;
  out.torn = parsed.torn;
  out.records = std::move(parsed.records);
  return out;
}

SweepJournal::SweepJournal(std::string path, std::string sweep_name,
                           uint64_t env_seed, bool resume)
    : path_(std::move(path)), sweep_name_(std::move(sweep_name)),
      env_seed_(env_seed) {
  PPFR_CHECK(!path_.empty()) << "journal path must not be empty";
  const std::string header = HeaderBody(sweep_name_, env_seed_);
  std::string valid_prefix;
  std::string bytes;
  if (resume && ReadFileToString(path_, &bytes)) {
    // Header must match this run's identity bit for bit (magic, version,
    // fingerprint, sweep, env seed — HeaderBody is canonical); then every
    // intact record replays and the first torn or corrupt frame ends the
    // valid prefix, discarding the tail.
    ParsedJournal parsed = ParseJournal(bytes, header);
    if (parsed.header_ok) {
      replayed_ = std::move(parsed.records);
      if (parsed.torn) {
        std::fprintf(stderr,
                     "journal: dropping torn tail of '%s' (%zu of %zu bytes "
                     "valid; the affected cells recompute)\n",
                     path_.c_str(), parsed.valid_end, bytes.size());
      }
      valid_prefix = bytes.substr(0, parsed.valid_end);
    } else {
      std::fprintf(stderr,
                   "journal: '%s' is corrupt or belongs to another "
                   "sweep/format/backend — starting fresh (all cells "
                   "recompute)\n",
                   path_.c_str());
    }
  }
  if (valid_prefix.empty()) valid_prefix = Frame(header);
  // Rewrite the valid prefix atomically: a fresh run truncates any previous
  // journal, a resume drops the torn tail so appends land on frame
  // boundaries. Journals are one small frame per cell, so the rewrite is
  // cheap. A journal that was requested but cannot be written dies loudly —
  // see the class contract.
  std::string error;
  PPFR_CHECK(WriteFileAtomic(path_, valid_prefix, &error))
      << "journal '" << path_ << "' cannot be written: " << error;
}

void SweepJournal::Append(const JournalRecord& record) {
  if (fault::ShouldFail(fault::kJournalAppend)) {
    std::fprintf(stderr,
                 "journal: injected append fault (record dropped; the cell "
                 "recomputes on resume)\n");
    return;
  }
  BinaryWriter body;
  SaveRecord(&body, record);
  const std::string frame = Frame(body.data());
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    std::fprintf(stderr, "journal: cannot append to '%s' (record dropped)\n",
                 path_.c_str());
    return;
  }
  const bool ok =
      std::fwrite(frame.data(), 1, frame.size(), f) == frame.size() &&
      std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    // Appends are an optimisation for the NEXT run; a full disk must not
    // kill this one. The frame may be torn — replay drops it.
    std::fprintf(stderr, "journal: short append to '%s' (record may be torn)\n",
                 path_.c_str());
  }
}

}  // namespace ppfr::runner

#include "runner/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "la/backend.h"
#include "nn/trainer.h"
#include "runner/journal.h"

namespace ppfr::runner {
namespace {

RunCache::StageStats Delta(const RunCache::StageStats& after,
                           const RunCache::StageStats& before) {
  return {after.hits - before.hits, after.misses - before.misses,
          after.disk_hits - before.disk_hits};
}

RunCache::Stats Delta(const RunCache::Stats& after, const RunCache::Stats& before) {
  RunCache::Stats d;
  d.env = Delta(after.env, before.env);
  d.vanilla = Delta(after.vanilla, before.vanilla);
  d.dp_context = Delta(after.dp_context, before.dp_context);
  d.pp_context = Delta(after.pp_context, before.pp_context);
  d.fr = Delta(after.fr, before.fr);
  d.cell = Delta(after.cell, before.cell);
  return d;
}

void EmitStage(JsonWriter* w, const char* name, const RunCache::StageStats& s) {
  w->Key(name).BeginObject();
  w->Key("hits").Int(s.hits);
  w->Key("misses").Int(s.misses);
  w->Key("disk_hits").Int(s.disk_hits);
  w->EndObject();
}

// Single source of truth for the uniform per-cell metric set — both the
// aggregation pass and the extras/"is this name reserved" guard derive from
// this table, so adding a metric here is the whole change (the artifact's
// aggregate key set is golden-pinned in bench/golden/artifact_schema.txt).
struct UniformMetric {
  const char* name;
  double (*get)(const CellResult&);
};
constexpr UniformMetric kUniformMetrics[] = {
    {"accuracy", [](const CellResult& c) { return c.run->eval.accuracy; }},
    {"bias", [](const CellResult& c) { return c.run->eval.bias; }},
    {"risk_auc", [](const CellResult& c) { return c.run->eval.risk_auc; }},
    {"delta_d", [](const CellResult& c) { return c.run->eval.delta_d; }},
    {"d_acc", [](const CellResult& c) { return c.delta.d_acc; }},
    {"d_bias", [](const CellResult& c) { return c.delta.d_bias; }},
    {"d_risk", [](const CellResult& c) { return c.delta.d_risk; }},
    {"combined", [](const CellResult& c) { return c.delta.combined; }},
};

bool IsUniformMetric(const std::string& name) {
  for (const UniformMetric& metric : kUniformMetrics) {
    if (name == metric.name) return true;
  }
  return false;
}

JournalRecord RecordOf(const CellResult& cell, uint64_t key) {
  JournalRecord rec;
  rec.cell_key = key;
  rec.seed = cell.seed;
  rec.failed = cell.failed;
  rec.retries = cell.retries;
  rec.cache_hit = cell.cache_hit;
  rec.error = cell.error;
  rec.eval = cell.run->eval;
  rec.vanilla_eval = cell.vanilla_eval;
  rec.delta = cell.delta;
  rec.extra = cell.extra;
  return rec;
}

}  // namespace

core::EvalResult NanEvalResult() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  core::EvalResult eval;
  eval.accuracy = eval.bias = eval.risk_auc = eval.delta_d = nan;
  return eval;
}

core::DeltaMetrics NanDeltaMetrics() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  return {nan, nan, nan, nan};
}

std::shared_ptr<const core::MethodRun> PlaceholderRun() {
  auto run = std::make_shared<core::MethodRun>();
  run->eval = NanEvalResult();
  return run;
}

void RestoreCell(const JournalRecord& rec, CellResult* out) {
  out->seed = rec.seed;
  out->failed = rec.failed;
  out->retries = rec.retries;
  out->cache_hit = rec.cache_hit;
  out->error = rec.error;
  auto run = std::make_shared<core::MethodRun>();
  run->eval = rec.eval;
  out->run = std::move(run);
  out->vanilla_eval = rec.vanilla_eval;
  out->delta = rec.delta;
  out->extra = rec.extra;
  out->seconds = 0.0;
  out->resumed = true;
}

int ResolveCellThreads(int threads, size_t n) {
  if (threads <= 0) threads = la::ActiveBackend().num_threads();
  return std::max(1, std::min<int>(threads, static_cast<int>(n)));
}

void ParallelCells(size_t n, int threads, const std::function<void(size_t)>& fn) {
  threads = ResolveCellThreads(threads, n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // A shared index queue drained by `threads` workers (the caller
  // participates). Every worker — caller included — installs a private
  // single-threaded backend of the active kind, so the shared
  // ParallelBackend pool is never entered concurrently and, since every
  // kernel is thread-count-invariant, each index's numbers are bitwise
  // identical to a serial run.
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    const std::unique_ptr<la::Backend> backend =
        la::MakeBackend(la::ActiveBackendKind(), /*num_threads=*/1);
    la::ThreadLocalBackendGuard guard(backend.get());
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= n) break;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

SweepResult RunSweep(const Sweep& sweep, RunCache* cache,
                     const RunnerOptions& options) {
  SweepResult result;
  result.name = sweep.name;
  result.title = sweep.title;
  result.env_seed = options.env_seed;
  result.seeds = sweep.seeds;

  PPFR_CHECK(options.shard_count >= 1 && options.shard_index >= 0 &&
             options.shard_index < options.shard_count)
      << "shard " << options.shard_index << "/" << options.shard_count
      << " is not a valid partition (need 0 <= index < count)";

  // The canonical seed-major grid (ExpandCells order). A sharded run owns
  // the expanded instances k with k % shard_count == shard_index — a pure
  // function of the grid, so every shard, resume and merge agrees on the
  // partition — and schedules ONLY those (in grid order, which interleaves
  // seeds round-robin across shards and so spreads each seed block's
  // vanilla-first warm-up over the fleet).
  const std::vector<Scenario> expanded = ExpandCells(sweep);
  std::vector<Scenario> scheduled;
  if (options.shard_count == 1) {
    scheduled = expanded;
  } else {
    result.shard = std::to_string(options.shard_index) + "/" +
                   std::to_string(options.shard_count);
    scheduled.reserve(expanded.size() / options.shard_count + 1);
    for (size_t k = options.shard_index; k < expanded.size();
         k += options.shard_count) {
      scheduled.push_back(expanded[k]);
    }
  }
  result.cells.resize(scheduled.size());

  const int threads = ResolveCellThreads(options.threads, scheduled.size());
  result.threads = threads;

  // Cell keys double as journal record keys — the same content hash the
  // stage cache uses, and distinct per seed instance (the resolved seed is
  // mixed in), so a record can only replay onto its exact configuration.
  std::vector<uint64_t> keys(scheduled.size());
  for (size_t i = 0; i < scheduled.size(); ++i) {
    keys[i] = RunCache::CellKey(scheduled[i], options.env_seed);
  }

  std::unique_ptr<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    journal = std::make_unique<SweepJournal>(options.journal_path, sweep.name,
                                             options.env_seed, options.resume);
  }
  // Restore journaled cells; only the remainder is scheduled. Previously
  // FAILED cells re-run — the resume is the natural second chance.
  std::vector<size_t> pending;
  pending.reserve(scheduled.size());
  for (size_t i = 0; i < scheduled.size(); ++i) {
    const JournalRecord* rec = nullptr;
    if (journal != nullptr && options.resume) {
      const auto it = journal->replayed().find(keys[i]);
      if (it != journal->replayed().end() && !it->second.failed) rec = &it->second;
    }
    if (rec == nullptr) {
      pending.push_back(i);
      continue;
    }
    result.cells[i].scenario = scheduled[i];
    RestoreCell(*rec, &result.cells[i]);
    ++result.resumed_cells;
  }
  if (options.verbose && result.resumed_cells > 0) {
    std::fprintf(stderr, "  %lld of %zu cells restored from journal %s\n",
                 static_cast<long long>(result.resumed_cells), scheduled.size(),
                 journal->path().c_str());
  }

  const RunCache::Stats stats_before = cache->stats();
  const int64_t trains_before = nn::TrainInvocationCount();
  Stopwatch wall;

  const auto run_cell = [&](size_t i) {
    const Scenario& cell = scheduled[i];
    CellResult& out = result.cells[i];
    out.scenario = cell;
    out.seed = cell.ResolvedConfig().seed;
    // Graceful interrupt: cells not yet started are skipped (NaN
    // placeholder, NOT journaled — a resume recomputes them) while the
    // cells already in flight below finish and journal their frames
    // normally, so no completed work is lost to the signal.
    if (options.stop != nullptr && options.stop->load(std::memory_order_relaxed)) {
      out.skipped = true;
      out.run = PlaceholderRun();
      out.vanilla_eval = NanEvalResult();
      out.delta = NanDeltaMetrics();
      return;
    }
    Stopwatch watch;
    // The whole cell body sits inside the retry loop: a CellError from ANY
    // stage (training, contexts, FR solve, a cache read) surfaces here.
    // Transient errors retry with bounded exponential backoff; the rest —
    // and exhausted retries — mark this one cell failed and let the grid
    // finish. Anything other than CellError still terminates the process:
    // per-cell isolation is for data-dependent failures, not bugs.
    for (int attempt = 0;; ++attempt) {
      try {
        // Environments are heavyweight and shared read-only by every cell of
        // the same dataset; fetching inside the cell (instead of prebuilding
        // them serially) lets parallel workers overlap env construction with
        // cell work — the cache's once-latch already builds each one exactly
        // once.
        const std::shared_ptr<const core::ExperimentEnv> env_ptr =
            cache->Env(cell.dataset, options.env_seed);
        const core::ExperimentEnv& env = *env_ptr;
        out.run = cache->CellRun(cell, env, &out.cache_hit);
        if (cell.method != core::MethodKind::kVanilla) {
          const core::EvalResult vanilla =
              cache->VanillaEval(cell.model, env, cell.ResolvedConfig());
          out.vanilla_eval = vanilla;
          out.delta = core::ComputeDeltas(out.run->eval, vanilla);
        } else {
          out.vanilla_eval = out.run->eval;
          out.delta = {};
        }
        if (cell.method == core::MethodKind::kDpFr ||
            cell.method == core::MethodKind::kPpFr) {
          // Surface the FR solve's block-CG convergence debt instead of
          // silently using a partial solve (0 = every RHS met tolerance).
          out.extra["cg_unconverged"] =
              static_cast<double>(out.run->cg_unconverged);
        }
        break;
      } catch (const CellError& e) {
        if (e.transient() && attempt < options.max_cell_retries) {
          ++out.retries;
          const int backoff_ms = std::min(
              options.retry_backoff_ms << std::min(attempt, 10), 250);
          if (backoff_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          }
          continue;
        }
        out.failed = true;
        out.error = e.what();
        out.run = PlaceholderRun();
        out.vanilla_eval = NanEvalResult();
        out.delta = NanDeltaMetrics();
        break;
      }
    }
    out.seconds = watch.ElapsedSeconds();
    if (options.verbose) {
      if (out.failed) {
        std::fprintf(stderr, "  [%s/%s] %s FAILED after %.1fs (%d retries): %s\n",
                     data::DatasetName(cell.dataset).c_str(),
                     nn::ModelKindName(cell.model).c_str(),
                     cell.DisplayLabel().c_str(), out.seconds, out.retries,
                     out.error.c_str());
      } else {
        std::fprintf(stderr, "  [%s/%s] %s done in %.1fs%s\n",
                     data::DatasetName(cell.dataset).c_str(),
                     nn::ModelKindName(cell.model).c_str(),
                     cell.DisplayLabel().c_str(), out.seconds,
                     out.cache_hit ? " (cached)" : "");
      }
    }
    if (journal != nullptr) journal->Append(RecordOf(out, keys[i]));
  };

  // Stage collisions between concurrent cells (two cells needing one
  // vanilla model) are serialised by the cache's once-latch.
  ParallelCells(pending.size(), threads,
                [&](size_t j) { run_cell(pending[j]); });

  result.wall_seconds = wall.ElapsedSeconds();
  result.cache_stats = Delta(cache->stats(), stats_before);
  result.trainer_invocations = nn::TrainInvocationCount() - trains_before;
  for (const CellResult& cell : result.cells) {
    if (cell.failed) ++result.failed_cells;
    if (cell.skipped) ++result.skipped_cells;
  }
  result.interrupted =
      options.stop != nullptr && options.stop->load(std::memory_order_relaxed);
  if (result.interrupted && options.verbose) {
    std::fprintf(stderr,
                 "  sweep interrupted: %lld of %zu cells skipped (in-flight "
                 "cells finished and journaled)\n",
                 static_cast<long long>(result.skipped_cells),
                 result.cells.size());
  }
  return result;
}

std::vector<CellAggregate> AggregateCells(const SweepResult& result) {
  std::vector<CellAggregate> groups;
  for (const CellResult& cell : result.cells) {
    // A failed/skipped/missing cell's placeholder metrics are NaN; including
    // them would poison every mean. Its seed is omitted from the group's
    // `seeds` too, so values stay aligned — aggregates always cover exactly
    // the instances that actually finished (ISSUE wording: "aggregates
    // computed over what arrived").
    if (cell.failed || cell.skipped || cell.missing) continue;
    CellAggregate* group = nullptr;
    for (CellAggregate& g : groups) {
      if (g.scenario.dataset == cell.scenario.dataset &&
          g.scenario.model == cell.scenario.model &&
          g.scenario.method == cell.scenario.method &&
          g.scenario.DisplayLabel() == cell.scenario.DisplayLabel()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({cell.scenario, {}, {}});
      group = &groups.back();
    }
    group->seeds.push_back(cell.seed);
    for (const UniformMetric& metric : kUniformMetrics) {
      group->metrics[metric.name].values.push_back(metric.get(cell));
    }
    for (const auto& [name, value] : cell.extra) {
      // An extra named like a uniform metric would append into that
      // metric's values and silently misalign every aggregate after it.
      if (IsUniformMetric(name)) {
        std::fprintf(stderr,
                     "runner: dropping extra metric '%s' from aggregation "
                     "(shadows a uniform metric name)\n",
                     name.c_str());
        continue;
      }
      group->metrics[name].values.push_back(value);
    }
  }
  for (CellAggregate& g : groups) {
    for (auto& [name, agg] : g.metrics) {
      double sum = 0.0;
      for (double v : agg.values) sum += v;
      const double n = static_cast<double>(agg.values.size());
      agg.mean = sum / n;
      if (agg.values.size() > 1) {
        double sq = 0.0;
        for (double v : agg.values) sq += (v - agg.mean) * (v - agg.mean);
        agg.stddev = std::sqrt(sq / (n - 1.0));
      }
    }
  }
  return groups;
}

std::string WriteArtifact(const SweepResult& result, const std::string& dir,
                          const ArtifactOptions& options) {
  const bool stable = options.stable;
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(4);
  w.Key("sweep").String(result.name);
  w.Key("title").String(result.title);
  w.Key("backend").String(la::ActiveBackend().name());
  w.Key("backend_threads").Int(la::ActiveBackend().num_threads());
  w.Key("runner_threads").Int(result.threads);
  w.Key("env_seed").Uint(result.env_seed);
  w.Key("seeds").BeginArray();
  for (uint64_t seed : result.seeds) w.Uint(seed);
  w.EndArray();
  w.Key("stable").Bool(stable);
  w.Key("wall_seconds").Number(stable ? 0.0 : result.wall_seconds);
  w.Key("trainer_invocations").Int(stable ? 0 : result.trainer_invocations);
  // failed_cells stays REAL in stable mode: a failed cell already differs
  // numerically (NaN metrics), and hiding the count would make a partially
  // failed artifact read as clean. resumed_cells is run-provenance, not a
  // result — zeroed so resumed-vs-uninterrupted runs compare bitwise.
  w.Key("failed_cells").Int(result.failed_cells);
  w.Key("resumed_cells").Int(stable ? 0 : result.resumed_cells);
  // The fleet fields stay REAL in stable mode, like failed_cells: the shard
  // tag says the file covers a PARTIAL grid, and interrupted/skipped/missing/
  // conflicting state is degradation a stable artifact must never launder
  // into a clean-looking file. A COMPLETE merge has shard="" and zeros here,
  // which is exactly the unsharded artifact bit for bit.
  w.Key("shard").String(result.shard);
  w.Key("interrupted").Bool(result.interrupted);
  w.Key("skipped_cells").Int(result.skipped_cells);
  w.Key("missing_cells").Int(result.missing_cells);
  w.Key("missing_shards").BeginArray();
  for (int s : result.missing_shards) w.Int(s);
  w.EndArray();
  w.Key("conflicting_cells").Int(result.conflicting_cells);

  w.Key("cache").BeginObject();
  const RunCache::Stats cache_stats = stable ? RunCache::Stats{} : result.cache_stats;
  EmitStage(&w, "env", cache_stats.env);
  EmitStage(&w, "vanilla", cache_stats.vanilla);
  EmitStage(&w, "dp_context", cache_stats.dp_context);
  EmitStage(&w, "pp_context", cache_stats.pp_context);
  EmitStage(&w, "fr", cache_stats.fr);
  EmitStage(&w, "cell", cache_stats.cell);
  w.EndObject();

  w.Key("cells").BeginArray();
  for (const CellResult& cell : result.cells) {
    w.BeginObject();
    w.Key("dataset").String(data::DatasetName(cell.scenario.dataset));
    w.Key("model").String(nn::ModelKindName(cell.scenario.model));
    w.Key("method").String(core::MethodName(cell.scenario.method));
    w.Key("label").String(cell.scenario.DisplayLabel());
    w.Key("seed").Uint(cell.seed);
    w.Key("seconds").Number(stable ? 0.0 : cell.seconds);
    w.Key("cache_hit").Bool(stable ? false : cell.cache_hit);
    w.Key("status").String(cell.failed    ? "failed"
                           : cell.skipped ? "skipped"
                           : cell.missing ? "missing"
                                          : "ok");
    w.Key("error").String(cell.error);
    // Retry counts and the resumed marker vary with fault timing and run
    // provenance, never with results — zeroed in stable mode like the cache
    // counters.
    w.Key("retries").Int(stable ? 0 : cell.retries);
    w.Key("resumed").Bool(stable ? false : cell.resumed);
    w.Key("eval").BeginObject();
    JsonMetric(&w, "accuracy", cell.run->eval.accuracy);
    JsonMetric(&w, "bias", cell.run->eval.bias);
    JsonMetric(&w, "risk_auc", cell.run->eval.risk_auc);
    JsonMetric(&w, "delta_d", cell.run->eval.delta_d);
    w.EndObject();
    w.Key("delta").BeginObject();
    JsonMetric(&w, "d_acc", cell.delta.d_acc);
    JsonMetric(&w, "d_bias", cell.delta.d_bias);
    JsonMetric(&w, "d_risk", cell.delta.d_risk);
    JsonMetric(&w, "combined", cell.delta.combined);
    w.EndObject();
    if (!cell.extra.empty()) {
      w.Key("extra").BeginObject();
      for (const auto& [key, value] : cell.extra) {
        JsonMetric(&w, key, value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();

  // Per-metric cross-seed aggregates (degenerate single-value groups for a
  // single-seed run, so the schema does not depend on the seed list).
  w.Key("aggregates").BeginArray();
  for (const CellAggregate& group : AggregateCells(result)) {
    w.BeginObject();
    w.Key("dataset").String(data::DatasetName(group.scenario.dataset));
    w.Key("model").String(nn::ModelKindName(group.scenario.model));
    w.Key("method").String(core::MethodName(group.scenario.method));
    w.Key("label").String(group.scenario.DisplayLabel());
    w.Key("seeds").BeginArray();
    for (uint64_t seed : group.seeds) w.Uint(seed);
    w.EndArray();
    // Bench-attached extras aggregate under "extra" (schema-exempt, like the
    // per-cell extras) so the uniform "metrics" key set stays golden-pinned.
    const auto emit_metric = [&w](const std::string& name, const MetricAggregate& agg) {
      w.Key(name).BeginObject();
      JsonMetric(&w, "mean", agg.mean);
      JsonMetric(&w, "stddev", agg.stddev);
      w.Key("values").BeginArray();
      for (double v : agg.values) w.Number(v);
      w.EndArray();
      w.EndObject();
    };
    // An extra attached to only some seed instances of a group cannot be
    // aligned with "seeds"; dropping it loudly beats emitting statistics
    // over a silently wrong sample.
    const auto extra_complete = [&](const std::string& name,
                                    const MetricAggregate& agg) {
      if (agg.values.size() == group.seeds.size()) return true;
      std::fprintf(stderr,
                   "runner: dropping extra metric '%s' from aggregate '%s' "
                   "(%zu values for %zu seed instances)\n",
                   name.c_str(), group.scenario.DisplayLabel().c_str(),
                   agg.values.size(), group.seeds.size());
      return false;
    };
    bool has_extras = false;
    w.Key("metrics").BeginObject();
    for (const auto& [name, agg] : group.metrics) {
      if (IsUniformMetric(name)) {
        emit_metric(name, agg);
      } else {
        has_extras |= extra_complete(name, agg);
      }
    }
    w.EndObject();
    if (has_extras) {
      w.Key("extra").BeginObject();
      for (const auto& [name, agg] : group.metrics) {
        if (!IsUniformMetric(name) && agg.values.size() == group.seeds.size()) {
          emit_metric(name, agg);
        }
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path =
      dir + "/BENCH_" + result.name + options.filename_suffix + ".json";
  WriteFileOrDie(path, w.ToString());
  return path;
}

const CellResult* FindCell(const SweepResult& result, data::DatasetId dataset,
                           nn::ModelKind model, core::MethodKind method) {
  for (const CellResult& cell : result.cells) {
    if (cell.scenario.dataset == dataset && cell.scenario.model == model &&
        cell.scenario.method == method) {
      return &cell;
    }
  }
  return nullptr;
}

const CellResult* FindCellByLabel(const SweepResult& result,
                                  const std::string& label) {
  for (const CellResult& cell : result.cells) {
    if (cell.scenario.DisplayLabel() == label) return &cell;
  }
  return nullptr;
}

}  // namespace ppfr::runner

#include "runner/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "la/backend.h"
#include "nn/trainer.h"

namespace ppfr::runner {
namespace {

RunCache::StageStats Delta(const RunCache::StageStats& after,
                           const RunCache::StageStats& before) {
  return {after.hits - before.hits, after.misses - before.misses};
}

RunCache::Stats Delta(const RunCache::Stats& after, const RunCache::Stats& before) {
  RunCache::Stats d;
  d.env = Delta(after.env, before.env);
  d.vanilla = Delta(after.vanilla, before.vanilla);
  d.dp_context = Delta(after.dp_context, before.dp_context);
  d.pp_context = Delta(after.pp_context, before.pp_context);
  d.fr = Delta(after.fr, before.fr);
  d.cell = Delta(after.cell, before.cell);
  return d;
}

void EmitStage(JsonWriter* w, const char* name, const RunCache::StageStats& s) {
  w->Key(name).BeginObject();
  w->Key("hits").Int(s.hits);
  w->Key("misses").Int(s.misses);
  w->EndObject();
}

}  // namespace

int ResolveCellThreads(int threads, size_t n) {
  if (threads <= 0) threads = la::ActiveBackend().num_threads();
  return std::max(1, std::min<int>(threads, static_cast<int>(n)));
}

void ParallelCells(size_t n, int threads, const std::function<void(size_t)>& fn) {
  threads = ResolveCellThreads(threads, n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // A shared index queue drained by `threads` workers (the caller
  // participates). Every worker — caller included — installs a private
  // single-threaded backend of the active kind, so the shared
  // ParallelBackend pool is never entered concurrently and, since every
  // kernel is thread-count-invariant, each index's numbers are bitwise
  // identical to a serial run.
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    const std::unique_ptr<la::Backend> backend =
        la::MakeBackend(la::ActiveBackendKind(), /*num_threads=*/1);
    la::ThreadLocalBackendGuard guard(backend.get());
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= n) break;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

SweepResult RunSweep(const Sweep& sweep, RunCache* cache,
                     const RunnerOptions& options) {
  SweepResult result;
  result.name = sweep.name;
  result.title = sweep.title;
  result.env_seed = options.env_seed;
  result.cells.resize(sweep.cells.size());

  const int threads = ResolveCellThreads(options.threads, sweep.cells.size());
  result.threads = threads;

  const RunCache::Stats stats_before = cache->stats();
  const int64_t trains_before = nn::TrainInvocationCount();
  Stopwatch wall;

  const auto run_cell = [&](size_t i) {
    const Scenario& cell = sweep.cells[i];
    // Environments are heavyweight and shared read-only by every cell of
    // the same dataset; fetching inside the cell (instead of prebuilding
    // them serially) lets parallel workers overlap env construction with
    // cell work — the cache's once-latch already builds each one exactly
    // once.
    const std::shared_ptr<const core::ExperimentEnv> env_ptr =
        cache->Env(cell.dataset, options.env_seed);
    const core::ExperimentEnv& env = *env_ptr;
    CellResult& out = result.cells[i];
    out.scenario = cell;
    Stopwatch watch;
    out.run = cache->CellRun(cell, env, &out.cache_hit);
    if (cell.method != core::MethodKind::kVanilla) {
      const core::EvalResult vanilla =
          cache->VanillaEval(cell.model, env, cell.ResolvedConfig());
      out.vanilla_eval = vanilla;
      out.delta = core::ComputeDeltas(out.run->eval, vanilla);
    } else {
      out.vanilla_eval = out.run->eval;
      out.delta = {};
    }
    out.seconds = watch.ElapsedSeconds();
    if (options.verbose) {
      std::fprintf(stderr, "  [%s/%s] %s done in %.1fs%s\n",
                   data::DatasetName(cell.dataset).c_str(),
                   nn::ModelKindName(cell.model).c_str(),
                   cell.DisplayLabel().c_str(), out.seconds,
                   out.cache_hit ? " (cached)" : "");
    }
  };

  // Stage collisions between concurrent cells (two cells needing one
  // vanilla model) are serialised by the cache's once-latch.
  ParallelCells(sweep.cells.size(), threads, run_cell);

  result.wall_seconds = wall.ElapsedSeconds();
  result.cache_stats = Delta(cache->stats(), stats_before);
  result.trainer_invocations = nn::TrainInvocationCount() - trains_before;
  return result;
}

std::string WriteArtifact(const SweepResult& result, const std::string& dir) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("sweep").String(result.name);
  w.Key("title").String(result.title);
  w.Key("backend").String(la::ActiveBackend().name());
  w.Key("backend_threads").Int(la::ActiveBackend().num_threads());
  w.Key("runner_threads").Int(result.threads);
  w.Key("env_seed").Uint(result.env_seed);
  w.Key("wall_seconds").Number(result.wall_seconds);
  w.Key("trainer_invocations").Int(result.trainer_invocations);

  w.Key("cache").BeginObject();
  EmitStage(&w, "env", result.cache_stats.env);
  EmitStage(&w, "vanilla", result.cache_stats.vanilla);
  EmitStage(&w, "dp_context", result.cache_stats.dp_context);
  EmitStage(&w, "pp_context", result.cache_stats.pp_context);
  EmitStage(&w, "fr", result.cache_stats.fr);
  EmitStage(&w, "cell", result.cache_stats.cell);
  w.EndObject();

  w.Key("cells").BeginArray();
  for (const CellResult& cell : result.cells) {
    w.BeginObject();
    w.Key("dataset").String(data::DatasetName(cell.scenario.dataset));
    w.Key("model").String(nn::ModelKindName(cell.scenario.model));
    w.Key("method").String(core::MethodName(cell.scenario.method));
    w.Key("label").String(cell.scenario.DisplayLabel());
    w.Key("seconds").Number(cell.seconds);
    w.Key("cache_hit").Bool(cell.cache_hit);
    w.Key("eval").BeginObject();
    w.Key("accuracy").Number(cell.run->eval.accuracy);
    w.Key("bias").Number(cell.run->eval.bias);
    w.Key("risk_auc").Number(cell.run->eval.risk_auc);
    w.Key("delta_d").Number(cell.run->eval.delta_d);
    w.EndObject();
    w.Key("delta").BeginObject();
    w.Key("d_acc").Number(cell.delta.d_acc);
    w.Key("d_bias").Number(cell.delta.d_bias);
    w.Key("d_risk").Number(cell.delta.d_risk);
    w.Key("combined").Number(cell.delta.combined);
    w.EndObject();
    if (!cell.extra.empty()) {
      w.Key("extra").BeginObject();
      for (const auto& [key, value] : cell.extra) {
        w.Key(key).Number(value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path = dir + "/BENCH_" + result.name + ".json";
  WriteFileOrDie(path, w.ToString());
  return path;
}

const CellResult* FindCell(const SweepResult& result, data::DatasetId dataset,
                           nn::ModelKind model, core::MethodKind method) {
  for (const CellResult& cell : result.cells) {
    if (cell.scenario.dataset == dataset && cell.scenario.model == model &&
        cell.scenario.method == method) {
      return &cell;
    }
  }
  return nullptr;
}

const CellResult* FindCellByLabel(const SweepResult& result,
                                  const std::string& label) {
  for (const CellResult& cell : result.cells) {
    if (cell.scenario.DisplayLabel() == label) return &cell;
  }
  return nullptr;
}

}  // namespace ppfr::runner

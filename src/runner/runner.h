#ifndef PPFR_RUNNER_RUNNER_H_
#define PPFR_RUNNER_RUNNER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/recoverable.h"
#include "runner/journal.h"
#include "runner/run_cache.h"
#include "runner/scenario.h"

namespace ppfr::runner {

// The exception a pipeline stage raises on a DATA-DEPENDENT, recoverable
// failure (non-finite loss, block-CG collapse after fallback, a disk-cache
// read race, an injected fault). RunSweep catches it at the cell boundary:
// transient errors retry with bounded backoff, the rest mark the one cell
// `failed` while the grid completes. See common/recoverable.h.
using CellError = ppfr::RecoverableError;

struct RunnerOptions {
  // Concurrent cells. 1 = serial on the calling thread with the process-wide
  // backend (the historical bench behaviour); > 1 fans independent cells
  // across worker threads, each pinned to a private single-threaded backend
  // of the active kind (la::ThreadLocalBackendGuard), which keeps results
  // bitwise identical to the serial order. <= 0 picks the active backend's
  // thread count.
  int threads = 1;
  uint64_t env_seed = core::kDefaultEnvSeed;
  bool verbose = true;  // per-cell progress lines on stderr
  // Extra attempts for a cell that failed with a TRANSIENT CellError (cache
  // read races, injected faults). Deterministic failures never retry.
  int max_cell_retries = 2;
  // Backoff before retry r (0-based) is retry_backoff_ms << r, capped at
  // 250ms. 0 disables sleeping (tests).
  int retry_backoff_ms = 10;
  // Non-empty enables the crash-safety journal (runner/journal.h): every
  // finished or failed cell appends a checksummed record to this file.
  std::string journal_path;
  // Replay journal_path before running: cells with a valid completed record
  // are restored from it (marked `resumed`, zero recompute) and only the
  // rest are scheduled. Previously FAILED cells re-run — a resume is the
  // natural moment to give them another chance. Requires journal_path.
  bool resume = false;
  // Fleet sharding: with shard_count > 1, this process runs only the
  // expanded (cell × seed) instances k (ExpandCells order) with
  // k % shard_count == shard_index — a deterministic function of the grid
  // alone, so the partition is identical across machines, resumes and the
  // merge. SweepResult::cells then holds ONLY the owned instances (in grid
  // order); runner::MergeShards reassembles the full grid from the shard
  // journals. shard_index must be in [0, shard_count).
  int shard_index = 0;
  int shard_count = 1;
  // Graceful-interrupt flag (set from a SIGTERM/SIGINT handler). When it
  // reads true, cells not yet started are marked `skipped` (NOT journaled —
  // a resume recomputes them) while in-flight cells finish and journal
  // normally, and the result comes back with interrupted=true. null = never
  // stop.
  const std::atomic<bool>* stop = nullptr;
};

struct CellResult {
  Scenario scenario;
  std::shared_ptr<const core::MethodRun> run;
  core::EvalResult vanilla_eval;  // vanilla baseline of the same (dataset, model)
  core::DeltaMetrics delta;       // vs vanilla_eval; zeros for vanilla cells
  uint64_t seed = 0;       // resolved method seed this instance ran with
  double seconds = 0.0;
  bool cache_hit = false;  // the whole cell came out of the run cache
  // The cell failed with a CellError after retries; `run` holds the NaN
  // placeholder (no model), `error` the reason. Failed cells are excluded
  // from AggregateCells and emitted with status "failed" in the artifact.
  bool failed = false;
  std::string error;
  int retries = 0;      // transient-failure attempts burned on this cell
  bool resumed = false;  // restored from the sweep journal, not computed
  // Not computed because a graceful interrupt (RunnerOptions::stop) landed
  // before this cell started; carries the NaN placeholder, excluded from
  // aggregates, status "skipped". Never journaled, so a resume recomputes.
  bool skipped = false;
  // Merge-only: no shard journal delivered a record for this cell (its shard
  // is missing, crashed before finishing it, or its record failed replay).
  // NaN placeholder, excluded from aggregates, status "missing".
  bool missing = false;
  // Bench-specific scalar metrics merged into the JSON artifact (e.g.
  // table2's Pearson r); keyed by metric name.
  std::map<std::string, double> extra;
};

struct SweepResult {
  std::string name;
  std::string title;
  // One entry per scheduled run. With a seed list the sweep is expanded
  // seed-major: cells[s * base + i] is base cell i under seeds[s], so each
  // seed block preserves the sweep's vanilla-first cell order.
  std::vector<CellResult> cells;
  std::vector<uint64_t> seeds;  // expansion list; empty = single-seed run
  double wall_seconds = 0.0;
  int threads = 1;
  uint64_t env_seed = 0;
  RunCache::Stats cache_stats;      // cache state delta over this sweep
  int64_t trainer_invocations = 0;  // nn::Train calls during this sweep
  int64_t failed_cells = 0;         // cells that ended in `failed` state
  int64_t resumed_cells = 0;        // cells restored from the journal
  // "i/N" when this result is one shard of a sharded run (its `cells` then
  // cover only the owned grid instances). Empty for an unsharded run AND for
  // a merged result — the merged artifact of a complete fleet is bitwise
  // identical to the unsharded artifact, shard provenance included.
  std::string shard;
  // A graceful interrupt landed mid-sweep; `skipped_cells` instances were
  // never started. Both stay REAL in stable artifacts — an interrupted run
  // legitimately differs from a completed one.
  bool interrupted = false;
  int64_t skipped_cells = 0;
  // Merge-only degradation report (all zero/empty elsewhere, including on a
  // complete merge): shard indices whose journal was absent or unreadable,
  // cells no shard delivered, and cells where two shards delivered
  // NON-identical records (lowest shard index wins deterministically).
  std::vector<int> missing_shards;
  int64_t missing_cells = 0;
  int64_t conflicting_cells = 0;
};

// Mean / stddev / per-seed values of one metric across the seed instances of
// one logical cell. stddev is the sample standard deviation (n-1), 0 for a
// single value; non-finite values propagate into the mean so the artifact's
// *_finite markers flag them.
struct MetricAggregate {
  std::vector<double> values;  // in SweepResult::seeds order
  double mean = 0.0;
  double stddev = 0.0;
};

struct CellAggregate {
  Scenario scenario;            // representative (first seed instance)
  std::vector<uint64_t> seeds;  // seeds contributing, aligned with values
  // Keyed by metric name: the four eval metrics, the four deltas, and any
  // bench-attached extras present on every instance.
  std::map<std::string, MetricAggregate> metrics;
};

// Groups the result's cells by (dataset, model, method, label) in first-
// appearance order and aggregates every metric across seeds. Failed cells
// are skipped entirely — their NaN placeholders would poison every mean —
// so a group's `seeds` lists only the instances that actually finished.
// Called by WriteArtifact at emission time so bench-attached `extra` metrics
// are included; exposed for tests and bespoke bench tables.
std::vector<CellAggregate> AggregateCells(const SweepResult& result);

// Runs every cell of the sweep through the cache, serially or across the
// cell scheduler (see RunnerOptions::threads). Results are returned in cell
// order regardless of completion order.
SweepResult RunSweep(const Sweep& sweep, RunCache* cache,
                     const RunnerOptions& options = {});

// Resolves a requested scheduler width against the work-item count:
// <= 0 means the active backend's thread count, clamped to [1, n].
int ResolveCellThreads(int threads, size_t n);

// The cell scheduler's worker loop, reusable by benches that fan their own
// per-cell work (e.g. table2's influence correlations): runs fn(i) for every
// i in [0, n). threads (after ResolveCellThreads) == 1 runs inline on the
// caller with the process-wide backend; otherwise `threads` workers (the
// caller participates) drain an index queue, each pinned to a private
// single-threaded backend of the active kind — the determinism discipline
// that keeps results bitwise identical to the serial order. fn must only
// touch per-index state (or internally synchronised services like RunCache).
void ParallelCells(size_t n, int threads, const std::function<void(size_t)>& fn);

// NaN placeholders for cells that produced no numbers (failed, skipped by an
// interrupt, missing from a merge). Benches dereference cell.run->eval
// freely, so such cells carry a model-less MethodRun whose metrics are NaN —
// the artifact's *_finite markers flag them, and AggregateCells skips the
// cell entirely. Shared with runner::MergeShards.
std::shared_ptr<const core::MethodRun> PlaceholderRun();
core::EvalResult NanEvalResult();
core::DeltaMetrics NanDeltaMetrics();

// Rebuilds a CellResult from its journal record (scenario must already be
// set). The restored run carries the recorded eval but NO model (restoring
// skips the compute entirely); front-ends that post-process models re-run
// without --resume, or lean on the disk run cache. Used by RunSweep's
// --resume replay and by MergeShards' reassembly — the one deserialization,
// so a merged cell is bit-for-bit what a resumed cell would be.
void RestoreCell(const JournalRecord& rec, CellResult* out);

struct ArtifactOptions {
  // Stable mode zeroes the fields that legitimately vary between otherwise
  // identical runs — wall/cell seconds, cache hit/miss/disk counters,
  // trainer invocations, per-cell cache_hit, retry counts and the
  // resumed markers — so two runs of the same sweep (e.g. cold vs warm
  // --run_cache_dir, or interrupted-then-resumed vs uninterrupted, or a
  // complete shard merge vs the unsharded run) produce bitwise-identical
  // files iff their numeric results are bitwise identical. Degradation
  // state (failed/skipped/missing cells, interrupted, missing_shards,
  // conflicting_cells, the shard tag) stays REAL — a degraded artifact must
  // never read as clean. The schema is unchanged.
  bool stable = false;
  // Appended to the artifact's basename: BENCH_<name><suffix>.json. Used by
  // sharded runs (".shard-<i>of<N>") so per-shard artifacts never collide
  // with the merged/unsharded one in a shared --json_dir.
  std::string filename_suffix;
};

// Writes the uniform BENCH_<name><suffix>.json artifact (schema_version 4:
// fleet fields — sweep-level shard/interrupted/skipped_cells/missing_cells/
// missing_shards/conflicting_cells, per-cell status values "skipped" and
// "missing" — on top of v3's per-cell status/error/retries/resumed and
// failed/resumed counts); returns its path.
std::string WriteArtifact(const SweepResult& result, const std::string& dir = ".",
                          const ArtifactOptions& options = {});

// First cell matching (dataset, model, method); nullptr when absent.
const CellResult* FindCell(const SweepResult& result, data::DatasetId dataset,
                           nn::ModelKind model, core::MethodKind method);
// First cell with the given display label; nullptr when absent.
const CellResult* FindCellByLabel(const SweepResult& result,
                                  const std::string& label);

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_RUNNER_H_

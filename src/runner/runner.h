#ifndef PPFR_RUNNER_RUNNER_H_
#define PPFR_RUNNER_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runner/run_cache.h"
#include "runner/scenario.h"

namespace ppfr::runner {

struct RunnerOptions {
  // Concurrent cells. 1 = serial on the calling thread with the process-wide
  // backend (the historical bench behaviour); > 1 fans independent cells
  // across worker threads, each pinned to a private single-threaded backend
  // of the active kind (la::ThreadLocalBackendGuard), which keeps results
  // bitwise identical to the serial order. <= 0 picks the active backend's
  // thread count.
  int threads = 1;
  uint64_t env_seed = core::kDefaultEnvSeed;
  bool verbose = true;  // per-cell progress lines on stderr
};

struct CellResult {
  Scenario scenario;
  std::shared_ptr<const core::MethodRun> run;
  core::EvalResult vanilla_eval;  // vanilla baseline of the same (dataset, model)
  core::DeltaMetrics delta;       // vs vanilla_eval; zeros for vanilla cells
  double seconds = 0.0;
  bool cache_hit = false;  // the whole cell came out of the run cache
  // Bench-specific scalar metrics merged into the JSON artifact (e.g.
  // table2's Pearson r); keyed by metric name.
  std::map<std::string, double> extra;
};

struct SweepResult {
  std::string name;
  std::string title;
  std::vector<CellResult> cells;
  double wall_seconds = 0.0;
  int threads = 1;
  uint64_t env_seed = 0;
  RunCache::Stats cache_stats;      // cache state delta over this sweep
  int64_t trainer_invocations = 0;  // nn::Train calls during this sweep
};

// Runs every cell of the sweep through the cache, serially or across the
// cell scheduler (see RunnerOptions::threads). Results are returned in cell
// order regardless of completion order.
SweepResult RunSweep(const Sweep& sweep, RunCache* cache,
                     const RunnerOptions& options = {});

// Resolves a requested scheduler width against the work-item count:
// <= 0 means the active backend's thread count, clamped to [1, n].
int ResolveCellThreads(int threads, size_t n);

// The cell scheduler's worker loop, reusable by benches that fan their own
// per-cell work (e.g. table2's influence correlations): runs fn(i) for every
// i in [0, n). threads (after ResolveCellThreads) == 1 runs inline on the
// caller with the process-wide backend; otherwise `threads` workers (the
// caller participates) drain an index queue, each pinned to a private
// single-threaded backend of the active kind — the determinism discipline
// that keeps results bitwise identical to the serial order. fn must only
// touch per-index state (or internally synchronised services like RunCache).
void ParallelCells(size_t n, int threads, const std::function<void(size_t)>& fn);

// Writes the uniform BENCH_<name>.json artifact; returns its path.
std::string WriteArtifact(const SweepResult& result, const std::string& dir = ".");

// First cell matching (dataset, model, method); nullptr when absent.
const CellResult* FindCell(const SweepResult& result, data::DatasetId dataset,
                           nn::ModelKind model, core::MethodKind method);
// First cell with the given display label; nullptr when absent.
const CellResult* FindCellByLabel(const SweepResult& result,
                                  const std::string& label);

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_RUNNER_H_

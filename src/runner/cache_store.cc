#include "runner/cache_store.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <sstream>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "la/backend.h"

namespace ppfr::runner {
namespace {

// Bumped whenever any stage payload layout or this header layout changes;
// old entries then read as plain misses and are rewritten.
// v2: FrOutput/MethodRun payloads gained the block-CG convergence counters.
constexpr uint32_t kFormatVersion = 2;
constexpr uint64_t kMagic = 0x31435252524650ULL;  // "PFRRRC1" little-endian

constexpr const char* kIndexFile = "cache-index.txt";
constexpr int64_t kDefaultClaimStaleMs = 120000;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexKey(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(key));
  return buf;
}

int64_t NowUnixSeconds() { return static_cast<int64_t>(std::time(nullptr)); }

// mtime of `path` as unix seconds, or -1 when unreadable.
int64_t FileMtime(const std::string& path) {
  std::error_code ec;
  const auto t = std::filesystem::last_write_time(path, ec);
  if (ec) return -1;
  // file_clock → system_clock; C++17 has no clock_cast, so convert via the
  // now() offset (second-level precision is all the GC/staleness logic needs).
  const auto sys = std::chrono::time_point_cast<std::chrono::seconds>(
      t - std::filesystem::file_time_type::clock::now() +
      std::chrono::system_clock::now());
  return std::chrono::duration_cast<std::chrono::seconds>(sys.time_since_epoch())
      .count();
}

// True when `pid` provably no longer exists ON THIS MACHINE. kill(pid, 0)
// with EPERM means "exists but not ours" — treated as alive. A cache dir on
// shared storage sees pids from other machines; those fall back to the age
// bound, never the pid probe.
bool PidProvablyDead(long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
}

}  // namespace

CacheStore::CacheStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  PPFR_CHECK(!ec && std::filesystem::is_directory(dir_))
      << "run cache dir '" << dir_ << "' cannot be created: " << ec.message();
}

std::string CacheStore::Fingerprint() {
  const la::Backend& backend = la::ActiveBackend();
  std::string fp = "v";
  fp += std::to_string(kFormatVersion);
  fp += "|backend=";
  fp += backend.name();
  fp += "|simd=";
  fp += backend.simd_active() ? "1" : "0";
  return fp;
}

std::string CacheStore::EntryPath(const char* stage, uint64_t key) const {
  return dir_ + "/" + stage + "-" + HexKey(key) + ".bin";
}

std::string CacheStore::ClaimPath(const char* stage, uint64_t key) const {
  return EntryPath(stage, key) + ".claim";
}

std::string CacheStore::IndexPath() const { return dir_ + "/" + kIndexFile; }

void CacheStore::Touch(const std::string& file) const {
  const int64_t now = NowUnixSeconds();
  std::lock_guard<std::mutex> lock(touch_mu_);
  touched_[file] = now;
}

bool CacheStore::Load(const char* stage, uint64_t key, std::string* payload) const {
  if (!enabled()) return false;
  const std::string path = EntryPath(stage, key);
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) return false;  // absent: plain miss

  const auto corrupt = [&] {
    std::fprintf(stderr,
                 "run cache: deleting corrupt entry %s (recomputing stage)\n",
                 path.c_str());
    std::remove(path.c_str());
    return false;
  };

  BinaryReader r(bytes);
  const uint64_t magic = r.ReadU64();
  // A foreign magic means the file is not ours (another tool, or a future
  // format that re-keys the magic): a plain miss, never deleted — the next
  // Store overwrites it in place if this process recomputes the stage.
  if (magic != kMagic) return false;
  const uint32_t version = r.ReadU32();
  const std::string fingerprint = r.ReadString();
  const uint64_t stored_key = r.ReadU64();
  const uint64_t checksum = r.ReadU64();
  std::string body = r.ReadString();
  // A magic-matching entry that is truncated, has trailing junk or fails
  // its checksum is corruption: delete so the recompute rewrites it clean.
  if (!r.AtEnd() || Fnv1a(body) != checksum) return corrupt();
  // An intact entry from another format version, backend or fingerprint is a
  // plain miss — the next Store overwrites it.
  if (version != kFormatVersion || fingerprint != Fingerprint() ||
      stored_key != key) {
    return false;
  }
  *payload = std::move(body);
  Touch(std::string(stage) + "-" + HexKey(key) + ".bin");
  return true;
}

void CacheStore::Store(const char* stage, uint64_t key,
                       const std::string& payload) const {
  if (!enabled()) return;
  BinaryWriter w;
  w.WriteU64(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteString(Fingerprint());
  w.WriteU64(key);
  w.WriteU64(Fnv1a(payload));
  w.WriteString(payload);
  std::string error;
  if (!WriteFileAtomic(EntryPath(stage, key), w.data(), &error)) {
    // Persisting is an optimisation; a full disk must not kill the sweep.
    std::fprintf(stderr, "run cache: %s (entry not persisted)\n", error.c_str());
    return;
  }
  Touch(std::string(stage) + "-" + HexKey(key) + ".bin");
}

// ---- Claims ----------------------------------------------------------------

int64_t CacheStore::claim_stale_ms() {
  static const int64_t ms = [] {
    const char* env = std::getenv("PPFR_CACHE_CLAIM_STALE_MS");
    if (env == nullptr || *env == '\0') return kDefaultClaimStaleMs;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    PPFR_CHECK(end != nullptr && *end == '\0' && v > 0)
        << "PPFR_CACHE_CLAIM_STALE_MS wants a positive integer (ms), got '"
        << env << "'";
    return static_cast<int64_t>(v);
  }();
  return ms;
}

bool CacheStore::TryClaim(const char* stage, uint64_t key) const {
  if (!enabled()) return true;
  if (fault::ShouldFail(fault::kCacheStoreClaim)) return false;
  const std::string path = ClaimPath(stage, key);
  // O_EXCL is the atom: exactly one process creates the file, even over NFS
  // v3+ (where O_EXCL create is honoured by modern servers).
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  std::ostringstream body;
  body << "pid=" << ::getpid() << "\nfingerprint=" << Fingerprint()
       << "\ncreated_unix=" << NowUnixSeconds() << "\n";
  const std::string s = body.str();
  // Short/failed writes leave an empty-ish claim; ProbeClaim treats a claim
  // without a parseable pid as live-until-stale, which is safe (bounded).
  (void)!::write(fd, s.data(), s.size());
  ::close(fd);
  return true;
}

void CacheStore::ReleaseClaim(const char* stage, uint64_t key) const {
  if (!enabled()) return;
  std::remove(ClaimPath(stage, key).c_str());
}

CacheStore::ClaimState CacheStore::ProbeClaim(const char* stage, uint64_t key,
                                              int64_t stale_ms) const {
  if (!enabled()) return ClaimState::kNone;
  const std::string path = ClaimPath(stage, key);
  std::string body;
  if (!ReadFileToString(path, &body)) return ClaimState::kNone;
  if (stale_ms <= 0) stale_ms = claim_stale_ms();

  // Dead-owner fast path: a pid line naming a provably-dead local process
  // makes the claim stale immediately (no need to wait out the age bound
  // after a SIGKILL'd shard).
  const size_t pid_at = body.find("pid=");
  if (pid_at != std::string::npos) {
    const long pid = std::strtol(body.c_str() + pid_at + 4, nullptr, 10);
    if (PidProvablyDead(pid)) return ClaimState::kStale;
  }

  const int64_t mtime = FileMtime(path);
  if (mtime < 0) return ClaimState::kNone;  // vanished between read and stat
  const int64_t age_ms = (NowUnixSeconds() - mtime) * 1000;
  return age_ms > stale_ms ? ClaimState::kStale : ClaimState::kHeld;
}

void CacheStore::BreakClaim(const char* stage, uint64_t key) const {
  if (!enabled()) return;
  std::fprintf(stderr, "run cache: breaking stale claim %s\n",
               ClaimPath(stage, key).c_str());
  std::remove(ClaimPath(stage, key).c_str());
}

// ---- Garbage collection -----------------------------------------------------

CacheStore::GcResult CacheStore::GarbageCollect(const GcOptions& options) const {
  GcResult result;
  if (!enabled()) return result;

  // Last-access map: persisted index, overridden by entry mtimes when newer
  // (another process may have touched entries since the index was written),
  // overridden by this process's in-memory touches.
  std::unordered_map<std::string, int64_t> access;
  {
    std::string index;
    if (ReadFileToString(IndexPath(), &index)) {
      std::istringstream lines(index);
      std::string file;
      int64_t when = 0;
      // Malformed lines (hand-edited, torn) just drop out of the map; the
      // entry then falls back to its mtime below.
      while (lines >> file >> when) access[file] = when;
    }
  }

  struct Entry {
    std::string file;  // basename
    int64_t bytes = 0;
    int64_t last_access = 0;
    bool claimed = false;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& it : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string file = it.path().filename().string();
    if (file.size() < 4 || file.compare(file.size() - 4, 4, ".bin") != 0) {
      continue;  // claim files, the index, temp files, foreign junk
    }
    Entry e;
    e.file = file;
    e.bytes = static_cast<int64_t>(std::filesystem::file_size(it.path(), ec));
    if (ec) continue;  // raced a delete
    const int64_t mtime = FileMtime(it.path().string());
    auto indexed = access.find(file);
    e.last_access = std::max(mtime, indexed == access.end() ? int64_t{0}
                                                            : indexed->second);
    std::error_code claim_ec;
    e.claimed = std::filesystem::exists(it.path().string() + ".claim", claim_ec);
    entries.push_back(std::move(e));
  }
  {
    std::lock_guard<std::mutex> lock(touch_mu_);
    for (auto& e : entries) {
      auto t = touched_.find(e.file);
      if (t != touched_.end()) e.last_access = std::max(e.last_access, t->second);
    }
  }

  result.entries_before = static_cast<int64_t>(entries.size());
  for (const auto& e : entries) result.bytes_before += e.bytes;

  // Oldest-first so the LRU evicts from the front.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.last_access != b.last_access ? a.last_access < b.last_access
                                          : a.file < b.file;
  });

  const int64_t now = NowUnixSeconds();
  int64_t live_bytes = result.bytes_before;
  std::vector<Entry> kept;
  for (const auto& e : entries) {
    const bool over_budget = options.max_bytes > 0 && live_bytes > options.max_bytes;
    const bool expired = options.max_age_seconds > 0 &&
                         now - e.last_access > options.max_age_seconds;
    if (!over_budget && !expired) {
      kept.push_back(e);
      continue;
    }
    if (e.claimed) {
      // A claimant is mid-compute on this entry; evicting under it would
      // waste the work it is about to persist (or already reads).
      ++result.kept_claimed;
      kept.push_back(e);
      continue;
    }
    std::remove((dir_ + "/" + e.file).c_str());
    ++result.evicted_entries;
    result.evicted_bytes += e.bytes;
    live_bytes -= e.bytes;
  }

  // Rewrite the index for the surviving entries (atomic; a torn index only
  // costs access precision, never correctness).
  std::ostringstream index;
  for (const auto& e : kept) index << e.file << " " << e.last_access << "\n";
  std::string error;
  if (!WriteFileAtomic(IndexPath(), index.str(), &error)) {
    std::fprintf(stderr, "run cache: %s (gc index not persisted)\n", error.c_str());
  }
  return result;
}

}  // namespace ppfr::runner

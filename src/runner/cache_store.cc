#include "runner/cache_store.h"

#include <cstdio>
#include <filesystem>

#include "common/check.h"
#include "common/serialize.h"
#include "la/backend.h"

namespace ppfr::runner {
namespace {

// Bumped whenever any stage payload layout or this header layout changes;
// old entries then read as plain misses and are rewritten.
// v2: FrOutput/MethodRun payloads gained the block-CG convergence counters.
constexpr uint32_t kFormatVersion = 2;
constexpr uint64_t kMagic = 0x31435252524650ULL;  // "PFRRRC1" little-endian

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexKey(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

CacheStore::CacheStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  PPFR_CHECK(!ec && std::filesystem::is_directory(dir_))
      << "run cache dir '" << dir_ << "' cannot be created: " << ec.message();
}

std::string CacheStore::Fingerprint() {
  const la::Backend& backend = la::ActiveBackend();
  std::string fp = "v";
  fp += std::to_string(kFormatVersion);
  fp += "|backend=";
  fp += backend.name();
  fp += "|simd=";
  fp += backend.simd_active() ? "1" : "0";
  return fp;
}

std::string CacheStore::EntryPath(const char* stage, uint64_t key) const {
  return dir_ + "/" + stage + "-" + HexKey(key) + ".bin";
}

bool CacheStore::Load(const char* stage, uint64_t key, std::string* payload) const {
  if (!enabled()) return false;
  const std::string path = EntryPath(stage, key);
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) return false;  // absent: plain miss

  const auto corrupt = [&] {
    std::fprintf(stderr,
                 "run cache: deleting corrupt entry %s (recomputing stage)\n",
                 path.c_str());
    std::remove(path.c_str());
    return false;
  };

  BinaryReader r(bytes);
  const uint64_t magic = r.ReadU64();
  // A foreign magic means the file is not ours (another tool, or a future
  // format that re-keys the magic): a plain miss, never deleted — the next
  // Store overwrites it in place if this process recomputes the stage.
  if (magic != kMagic) return false;
  const uint32_t version = r.ReadU32();
  const std::string fingerprint = r.ReadString();
  const uint64_t stored_key = r.ReadU64();
  const uint64_t checksum = r.ReadU64();
  std::string body = r.ReadString();
  // A magic-matching entry that is truncated, has trailing junk or fails
  // its checksum is corruption: delete so the recompute rewrites it clean.
  if (!r.AtEnd() || Fnv1a(body) != checksum) return corrupt();
  // An intact entry from another format version, backend or fingerprint is a
  // plain miss — the next Store overwrites it.
  if (version != kFormatVersion || fingerprint != Fingerprint() ||
      stored_key != key) {
    return false;
  }
  *payload = std::move(body);
  return true;
}

void CacheStore::Store(const char* stage, uint64_t key,
                       const std::string& payload) const {
  if (!enabled()) return;
  BinaryWriter w;
  w.WriteU64(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteString(Fingerprint());
  w.WriteU64(key);
  w.WriteU64(Fnv1a(payload));
  w.WriteString(payload);
  std::string error;
  if (!WriteFileAtomic(EntryPath(stage, key), w.data(), &error)) {
    // Persisting is an optimisation; a full disk must not kill the sweep.
    std::fprintf(stderr, "run cache: %s (entry not persisted)\n", error.c_str());
  }
}

}  // namespace ppfr::runner

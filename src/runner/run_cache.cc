#include "runner/run_cache.h"

#include <bit>
#include <chrono>

namespace ppfr::runner {

KeyHasher& KeyHasher::Mix(uint64_t v) {
  // FNV-1a over the 8 little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffULL;
    hash_ *= 1099511628211ULL;
  }
  return *this;
}

KeyHasher& KeyHasher::Mix(double v) { return Mix(std::bit_cast<uint64_t>(v)); }

KeyHasher& KeyHasher::Mix(const std::string& s) {
  for (unsigned char c : s) {
    hash_ ^= c;
    hash_ *= 1099511628211ULL;
  }
  // Length terminator so ("ab","c") and ("a","bc") differ.
  return Mix(static_cast<uint64_t>(s.size()));
}

namespace {

// The training-schedule prefix every trained-model stage depends on.
void MixTrainPrefix(KeyHasher* h, const core::MethodConfig& config) {
  h->Mix(config.train.epochs)
      .Mix(config.train.lr)
      .Mix(config.train.weight_decay)
      .Mix(config.train.sage_fanout)
      .Mix(config.train.seed)
      .Mix(config.seed);
}

void MixFrPrefix(KeyHasher* h, const core::MethodConfig& config) {
  h->Mix(config.fr.alpha)
      .Mix(config.fr.beta)
      .Mix(config.fr.zero_sum)
      .Mix(config.fr.influence.cg.damping)
      .Mix(config.fr.influence.cg.max_iterations)
      .Mix(config.fr.influence.cg.tolerance)
      .Mix(config.fr.influence.cg.hvp_step);
}

}  // namespace

uint64_t RunCache::EnvKey(data::DatasetId id, uint64_t env_seed) {
  return KeyHasher().Mix("env").Mix(static_cast<int>(id)).Mix(env_seed).hash();
}

uint64_t RunCache::VanillaKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                              const core::MethodConfig& config) {
  KeyHasher h;
  h.Mix("vanilla").Mix(EnvKey(env.id, env.env_seed)).Mix(static_cast<int>(kind));
  MixTrainPrefix(&h, config);
  return h.hash();
}

uint64_t RunCache::DpKey(const core::ExperimentEnv& env,
                         const core::MethodConfig& config) {
  return KeyHasher()
      .Mix("dp")
      .Mix(EnvKey(env.id, env.env_seed))
      .Mix(config.dp_epsilon)
      .Mix(config.use_lap_graph)
      .Mix(config.seed)
      .hash();
}

uint64_t RunCache::PpKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                         const core::MethodConfig& config) {
  // The PP context is a function of the vanilla model's predictions, so the
  // vanilla stage key is this key's prefix.
  return KeyHasher()
      .Mix("pp")
      .Mix(VanillaKey(kind, env, config))
      .Mix(config.pp_gamma)
      .Mix(config.seed)
      .hash();
}

uint64_t RunCache::FrKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                         const core::MethodConfig& config) {
  KeyHasher h;
  h.Mix("fr").Mix(VanillaKey(kind, env, config));
  MixFrPrefix(&h, config);
  return h.hash();
}

uint64_t RunCache::CellKey(const Scenario& cell, uint64_t env_seed) {
  const core::MethodConfig config = cell.ResolvedConfig();
  KeyHasher h;
  h.Mix("cell")
      .Mix(EnvKey(cell.dataset, env_seed))
      .Mix(static_cast<int>(cell.model))
      .Mix(static_cast<int>(cell.method));
  MixTrainPrefix(&h, config);
  MixFrPrefix(&h, config);
  h.Mix(config.lambda)
      .Mix(config.dp_epsilon)
      .Mix(config.use_lap_graph)
      .Mix(config.pp_gamma)
      .Mix(config.finetune_scale)
      .Mix(config.finetune_epochs)
      .Mix(config.finetune_lr);
  return h.hash();
}

template <typename V>
V RunCache::GetOrCompute(std::unordered_map<uint64_t, std::shared_future<V>>* map,
                         uint64_t key, StageStats* stats,
                         const std::function<V()>& compute, bool* was_hit) {
  std::promise<V> promise;
  std::shared_future<V> future;
  bool computer = false;
  bool ready_at_claim = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map->find(key);
    if (it != map->end()) {
      future = it->second;
      ++stats->hits;
      ready_at_claim =
          future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    } else {
      future = promise.get_future().share();
      map->emplace(key, future);
      ++stats->misses;
      computer = true;
    }
  }
  // was_hit is only true for a PURE hit — the value was ready when we asked.
  // A concurrent waiter that blocks on an in-flight compute spends real wall
  // time, so reporting it as cached would corrupt the per-cell timing in the
  // artifacts (the stats above stay claim-based either way: misses count
  // actual computes).
  if (was_hit != nullptr) *was_hit = ready_at_claim;
  // compute() must not throw: this library is exception-free by design
  // (failures abort via PPFR_CHECK — see common/check.h), and an exception
  // here would leave a broken promise permanently mapped to the key.
  if (computer) promise.set_value(compute());
  // A waiter only ever blocks on a key some RUNNING thread claimed above, so
  // a fixed-size scheduler cannot deadlock here.
  return future.get();
}

std::shared_ptr<const core::ExperimentEnv> RunCache::Env(data::DatasetId id,
                                                         uint64_t env_seed) {
  return GetOrCompute<std::shared_ptr<const core::ExperimentEnv>>(
      &envs_, EnvKey(id, env_seed), &stats_.env, [&] {
        return std::make_shared<const core::ExperimentEnv>(
            core::MakeEnv(id, env_seed));
      });
}

std::shared_ptr<const RunCache::VanillaStage> RunCache::VanillaStageFor(
    nn::ModelKind kind, const core::ExperimentEnv& env,
    const core::MethodConfig& config) {
  return GetOrCompute<std::shared_ptr<const VanillaStage>>(
      &vanilla_, VanillaKey(kind, env, config), &stats_.vanilla, [&] {
        auto stage = std::make_shared<VanillaStage>();
        stage->model = core::TrainFresh(kind, env, env.ctx, config, /*lambda=*/0.0);
        stage->eval = core::EvaluateModel(stage->model.get(), env.Eval());
        return std::shared_ptr<const VanillaStage>(std::move(stage));
      });
}

std::unique_ptr<nn::GnnModel> RunCache::VanillaModel(nn::ModelKind kind,
                                                     const core::ExperimentEnv& env,
                                                     const core::MethodConfig& config) {
  return VanillaStageFor(kind, env, config)->model->Clone();
}

core::EvalResult RunCache::VanillaEval(nn::ModelKind kind,
                                       const core::ExperimentEnv& env,
                                       const core::MethodConfig& config) {
  return VanillaStageFor(kind, env, config)->eval;
}

std::shared_ptr<const nn::GraphContext> RunCache::DpContext(
    const core::ExperimentEnv& env, const core::MethodConfig& config) {
  return GetOrCompute<std::shared_ptr<const nn::GraphContext>>(
      &dp_contexts_, DpKey(env, config), &stats_.dp_context, [&] {
        return std::make_shared<const nn::GraphContext>(
            core::MakeDpContext(env, config));
      });
}

std::shared_ptr<const nn::GraphContext> RunCache::PpContext(
    nn::ModelKind kind, const core::ExperimentEnv& env,
    const core::MethodConfig& config) {
  return GetOrCompute<std::shared_ptr<const nn::GraphContext>>(
      &pp_contexts_, PpKey(kind, env, config), &stats_.pp_context, [&] {
        // Work on a private clone: concurrent stages must not share a
        // mutable model, and the clone's predictions are identical.
        const std::unique_ptr<nn::GnnModel> model = VanillaModel(kind, env, config);
        return std::make_shared<const nn::GraphContext>(core::MakePpContext(
            env, model.get(), config.pp_gamma, config.seed ^ 0x99ULL));
      });
}

std::shared_ptr<const core::FrOutput> RunCache::FrWeights(
    nn::ModelKind kind, const core::ExperimentEnv& env,
    const core::MethodConfig& config) {
  return GetOrCompute<std::shared_ptr<const core::FrOutput>>(
      &fr_outputs_, FrKey(kind, env, config), &stats_.fr, [&] {
        const std::unique_ptr<nn::GnnModel> model = VanillaModel(kind, env, config);
        return std::make_shared<const core::FrOutput>(
            core::ComputeFr(model.get(), env, config));
      });
}

std::shared_ptr<const core::MethodRun> RunCache::CellRun(
    const Scenario& cell, const core::ExperimentEnv& env, bool* cache_hit) {
  return GetOrCompute<std::shared_ptr<const core::MethodRun>>(
      &cells_, CellKey(cell, env.env_seed), &stats_.cell,
      [&] {
        const core::MethodConfig config = cell.ResolvedConfig();
        return std::make_shared<const core::MethodRun>(
            core::RunMethod(cell.method, cell.model, env, config, this));
      },
      cache_hit);
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ppfr::runner

#include "runner/run_cache.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/fault_injection.h"
#include "common/recoverable.h"
#include "common/serialize.h"
#include "core/snapshot.h"
#include "influence/influence.h"

namespace ppfr::runner {

KeyHasher& KeyHasher::Mix(uint64_t v) {
  // FNV-1a over the 8 little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffULL;
    hash_ *= 1099511628211ULL;
  }
  return *this;
}

KeyHasher& KeyHasher::Mix(double v) {
  // Canonicalize before bit-casting: -0.0 == 0.0 and any two NaNs compare
  // equivalent config-wise, so equal configs must produce equal keys — the
  // disk-persisted cache makes a spurious key split user-visible as a
  // recompute (or a stale artifact diff).
  if (v == 0.0) v = 0.0;  // collapses -0.0 onto +0.0
  const uint64_t bits = std::isnan(v) ? 0x7ff8000000000000ULL  // canonical qNaN
                                      : std::bit_cast<uint64_t>(v);
  return Mix(bits);
}

KeyHasher& KeyHasher::Mix(const std::string& s) {
  for (unsigned char c : s) {
    hash_ ^= c;
    hash_ *= 1099511628211ULL;
  }
  // Length terminator so ("ab","c") and ("a","bc") differ.
  return Mix(static_cast<uint64_t>(s.size()));
}

namespace {

// The training-schedule prefix every trained-model stage depends on.
void MixTrainPrefix(KeyHasher* h, const core::MethodConfig& config) {
  h->Mix(config.train.epochs)
      .Mix(config.train.lr)
      .Mix(config.train.weight_decay)
      .Mix(config.train.sage_fanout)
      .Mix(config.train.seed)
      .Mix(config.seed);
}

void MixFrPrefix(KeyHasher* h, const core::MethodConfig& config) {
  h->Mix(config.fr.alpha)
      .Mix(config.fr.beta)
      .Mix(config.fr.zero_sum)
      .Mix(config.fr.influence.cg.damping)
      .Mix(config.fr.influence.cg.max_iterations)
      .Mix(config.fr.influence.cg.tolerance)
      .Mix(config.fr.influence.cg.hvp_step)
      .Mix(influence::ResolveCgBlock(config.fr.influence.cg_block))
      .Mix(influence::ResolveReplayLanes(config.fr.influence.replay_lanes));
}

}  // namespace

uint64_t RunCache::EnvKey(data::DatasetId id, uint64_t env_seed) {
  return KeyHasher().Mix("env").Mix(static_cast<int>(id)).Mix(env_seed).hash();
}

uint64_t RunCache::VanillaKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                              const core::MethodConfig& config) {
  KeyHasher h;
  h.Mix("vanilla").Mix(EnvKey(env.id, env.env_seed)).Mix(static_cast<int>(kind));
  MixTrainPrefix(&h, config);
  return h.hash();
}

uint64_t RunCache::DpKey(const core::ExperimentEnv& env,
                         const core::MethodConfig& config) {
  return KeyHasher()
      .Mix("dp")
      .Mix(EnvKey(env.id, env.env_seed))
      .Mix(config.dp_epsilon)
      .Mix(config.use_lap_graph)
      .Mix(config.seed)
      .hash();
}

uint64_t RunCache::PpKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                         const core::MethodConfig& config) {
  // The PP context is a function of the vanilla model's predictions, so the
  // vanilla stage key is this key's prefix.
  return KeyHasher()
      .Mix("pp")
      .Mix(VanillaKey(kind, env, config))
      .Mix(config.pp_gamma)
      .Mix(config.seed)
      .hash();
}

uint64_t RunCache::FrKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                         const core::MethodConfig& config) {
  KeyHasher h;
  h.Mix("fr").Mix(VanillaKey(kind, env, config));
  MixFrPrefix(&h, config);
  return h.hash();
}

uint64_t RunCache::CellKey(const Scenario& cell, uint64_t env_seed) {
  const core::MethodConfig config = cell.ResolvedConfig();
  KeyHasher h;
  h.Mix("cell")
      .Mix(EnvKey(cell.dataset, env_seed))
      .Mix(static_cast<int>(cell.model))
      .Mix(static_cast<int>(cell.method));
  MixTrainPrefix(&h, config);
  MixFrPrefix(&h, config);
  h.Mix(config.lambda)
      .Mix(config.dp_epsilon)
      .Mix(config.use_lap_graph)
      .Mix(config.pp_gamma)
      .Mix(config.finetune_scale)
      .Mix(config.finetune_epochs)
      .Mix(config.finetune_lr);
  return h.hash();
}

template <typename V>
V RunCache::GetOrCompute(std::unordered_map<uint64_t, std::shared_future<V>>* map,
                         uint64_t key, StageStats* stats,
                         const std::function<V()>& compute, bool* was_hit) {
  std::promise<V> promise;
  std::shared_future<V> future;
  bool computer = false;
  bool ready_at_claim = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map->find(key);
    if (it != map->end()) {
      future = it->second;
      ++stats->hits;
      ready_at_claim =
          future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    } else {
      future = promise.get_future().share();
      map->emplace(key, future);
      ++stats->misses;
      computer = true;
    }
  }
  // was_hit is only true for a PURE hit — the value was ready when we asked.
  // A concurrent waiter that blocks on an in-flight compute spends real wall
  // time, so reporting it as cached would corrupt the per-cell timing in the
  // artifacts (the stats above stay claim-based either way: misses count
  // actual computes).
  if (was_hit != nullptr) *was_hit = ready_at_claim;
  if (computer) {
    // The only thing compute() may throw is the sanctioned RecoverableError
    // (a data-dependent stage failure or an injected fault — everything else
    // still PPFR_CHECK-aborts). The key is unmapped FIRST so any requester
    // arriving after the failure starts a fresh compute — i.e. a cell retry
    // actually retries — and only then are the blocked waiters woken with
    // the exception, which each of them rethrows from get() and handles as
    // its own cell's failure. A failed compute therefore never wedges a key
    // behind a broken promise.
    try {
      promise.set_value(compute());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        map->erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  // A waiter only ever blocks on a key some RUNNING thread claimed above, so
  // a fixed-size scheduler cannot deadlock here.
  return future.get();
}

RunCache::RunCache(std::string persist_dir) : store_(std::move(persist_dir)) {}

bool RunCache::LoadStage(const char* stage, uint64_t key, std::string* payload) const {
  // The injected read fault models a disk read racing a concurrent writer or
  // a transient I/O error: transient, so the cell retry loop recovers it.
  if (store_.enabled() && fault::ShouldFail(fault::kCacheStoreRead)) {
    throw RecoverableError(std::string("injected cache-store read fault (") +
                               stage + " stage)",
                           /*transient=*/true);
  }
  return store_.Load(stage, key, payload);
}

void RunCache::StoreStage(const char* stage, uint64_t key,
                          const std::string& payload) const {
  // A write fault degrades exactly like the real full-disk path in
  // CacheStore::Store: the entry is simply not persisted (a later process
  // recomputes it); the in-memory result is unaffected.
  if (store_.enabled() && fault::ShouldFail(fault::kCacheStoreWrite)) {
    std::fprintf(stderr,
                 "run cache: injected cache-store write fault (%s stage, "
                 "entry not persisted)\n",
                 stage);
    return;
  }
  store_.Store(stage, key, payload);
}

void RunCache::NoteDiskHit(StageStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats->disk_hits;
}

void RunCache::ClaimedCompute(const char* stage, uint64_t key,
                              const std::function<bool(bool)>& try_load,
                              const std::function<void()>& compute) const {
  if (try_load(/*faulted=*/true)) return;
  if (!store_.enabled()) {
    compute();
    return;
  }
  int64_t backoff_ms = 2;
  for (;;) {
    if (store_.TryClaim(stage, key)) {
      CacheStore::ClaimGuard guard(&store_, stage, key);
      // Double-check under the claim: the previous claimant may have
      // persisted the entry between our miss and our win.
      if (try_load(/*faulted=*/false)) return;
      compute();
      return;
      // ~guard releases the claim — including when compute() unwinds with a
      // RecoverableError, so a failed compute never wedges the key for other
      // processes until the staleness bound.
    }
    // Lost the claim race: the winner is computing this exact deterministic
    // entry. Poll for it instead of double-training.
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<int64_t>(backoff_ms * 2, 50);
    if (try_load(/*faulted=*/false)) return;
    // No entry yet. A live claim means keep waiting; a stale one (dead pid,
    // over the age bound) or none at all (claimant released without
    // persisting — failed compute or failed write) means re-contend.
    if (store_.ProbeClaim(stage, key) == CacheStore::ClaimState::kStale) {
      store_.BreakClaim(stage, key);
    }
  }
}

std::shared_ptr<const core::ExperimentEnv> RunCache::Env(data::DatasetId id,
                                                         uint64_t env_seed) {
  return GetOrCompute<std::shared_ptr<const core::ExperimentEnv>>(
      &envs_, EnvKey(id, env_seed), &stats_.env, [&] {
        return std::make_shared<const core::ExperimentEnv>(
            core::MakeEnv(id, env_seed));
      });
}

std::shared_ptr<const RunCache::VanillaStage> RunCache::VanillaStageFor(
    nn::ModelKind kind, const core::ExperimentEnv& env,
    const core::MethodConfig& config) {
  const uint64_t key = VanillaKey(kind, env, config);
  return GetOrCompute<std::shared_ptr<const VanillaStage>>(
      &vanilla_, key, &stats_.vanilla, [&] {
        std::shared_ptr<const VanillaStage> result;
        const auto try_load = [&](bool faulted) {
          std::string payload;
          if (!(faulted ? LoadStage("vanilla", key, &payload)
                        : store_.Load("vanilla", key, &payload))) {
            return false;
          }
          BinaryReader r(payload);
          auto stage = std::make_shared<VanillaStage>();
          stage->model = core::LoadModel(&r, kind, env, config.seed);
          if (stage->model != nullptr && core::LoadEval(&r, &stage->eval) &&
              r.AtEnd()) {
            NoteDiskHit(&stats_.vanilla);
            result = std::move(stage);
            return true;
          }
          // Architecture/shape drift inside a checksum-valid entry: fall
          // through to the recompute, which overwrites it.
          return false;
        };
        ClaimedCompute("vanilla", key, try_load, [&] {
          auto stage = std::make_shared<VanillaStage>();
          stage->model =
              core::TrainFresh(kind, env, env.ctx, config, /*lambda=*/0.0);
          stage->eval = core::EvaluateModel(stage->model.get(), env.Eval());
          if (store_.enabled()) {
            BinaryWriter w;
            core::SaveModel(&w, stage->model.get());
            core::SaveEval(&w, stage->eval);
            StoreStage("vanilla", key, w.data());
          }
          result = std::move(stage);
        });
        return result;
      });
}

std::unique_ptr<nn::GnnModel> RunCache::VanillaModel(nn::ModelKind kind,
                                                     const core::ExperimentEnv& env,
                                                     const core::MethodConfig& config) {
  return VanillaStageFor(kind, env, config)->model->Clone();
}

core::EvalResult RunCache::VanillaEval(nn::ModelKind kind,
                                       const core::ExperimentEnv& env,
                                       const core::MethodConfig& config) {
  return VanillaStageFor(kind, env, config)->eval;
}

// Shared disk-backed compute wrapper for the two perturbed-context stages:
// only the edited graph structure is persisted; the operators are rebuilt
// deterministically against the environment's features.
std::shared_ptr<const nn::GraphContext> RunCache::ContextStage(
    std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const nn::GraphContext>>>*
        map,
    const char* stage, uint64_t key, StageStats* stats,
    const core::ExperimentEnv& env,
    const std::function<nn::GraphContext()>& compute) {
  return GetOrCompute<std::shared_ptr<const nn::GraphContext>>(
      map, key, stats, [&] {
        std::shared_ptr<const nn::GraphContext> result;
        const auto try_load = [&](bool faulted) {
          std::string payload;
          if (!(faulted ? LoadStage(stage, key, &payload)
                        : store_.Load(stage, key, &payload))) {
            return false;
          }
          BinaryReader r(payload);
          auto ctx = std::make_shared<nn::GraphContext>();
          if (core::LoadGraphContext(&r, env.dataset.data.features, ctx.get()) &&
              r.AtEnd()) {
            NoteDiskHit(stats);
            result = std::move(ctx);
            return true;
          }
          return false;
        };
        ClaimedCompute(stage, key, try_load, [&] {
          auto ctx = std::make_shared<const nn::GraphContext>(compute());
          if (store_.enabled()) {
            BinaryWriter w;
            core::SaveGraphStructure(&w, ctx->graph);
            StoreStage(stage, key, w.data());
          }
          result = std::move(ctx);
        });
        return result;
      });
}

std::shared_ptr<const nn::GraphContext> RunCache::DpContext(
    const core::ExperimentEnv& env, const core::MethodConfig& config) {
  return ContextStage(&dp_contexts_, "dp", DpKey(env, config), &stats_.dp_context,
                      env, [&] { return core::MakeDpContext(env, config); });
}

std::shared_ptr<const nn::GraphContext> RunCache::PpContext(
    nn::ModelKind kind, const core::ExperimentEnv& env,
    const core::MethodConfig& config) {
  return ContextStage(
      &pp_contexts_, "pp", PpKey(kind, env, config), &stats_.pp_context, env, [&] {
        // Work on a private clone: concurrent stages must not share a
        // mutable model, and the clone's predictions are identical.
        const std::unique_ptr<nn::GnnModel> model = VanillaModel(kind, env, config);
        return core::MakePpContext(env, model.get(), config.pp_gamma,
                                   config.seed ^ 0x99ULL);
      });
}

std::shared_ptr<const core::FrOutput> RunCache::FrWeights(
    nn::ModelKind kind, const core::ExperimentEnv& env,
    const core::MethodConfig& config) {
  const uint64_t key = FrKey(kind, env, config);
  return GetOrCompute<std::shared_ptr<const core::FrOutput>>(
      &fr_outputs_, key, &stats_.fr, [&] {
        std::shared_ptr<const core::FrOutput> result;
        const auto try_load = [&](bool faulted) {
          std::string payload;
          if (!(faulted ? LoadStage("fr", key, &payload)
                        : store_.Load("fr", key, &payload))) {
            return false;
          }
          BinaryReader r(payload);
          auto fr = std::make_shared<core::FrOutput>();
          if (core::LoadFrOutput(&r, fr.get()) && r.AtEnd()) {
            NoteDiskHit(&stats_.fr);
            result = std::move(fr);
            return true;
          }
          return false;
        };
        ClaimedCompute("fr", key, try_load, [&] {
          const std::unique_ptr<nn::GnnModel> model =
              VanillaModel(kind, env, config);
          auto fr = std::make_shared<const core::FrOutput>(
              core::ComputeFr(model.get(), env, config));
          if (store_.enabled()) {
            BinaryWriter w;
            core::SaveFrOutput(&w, *fr);
            StoreStage("fr", key, w.data());
          }
          result = std::move(fr);
        });
        return result;
      });
}

std::shared_ptr<const core::MethodRun> RunCache::CellRun(
    const Scenario& cell, const core::ExperimentEnv& env, bool* cache_hit) {
  const uint64_t key = CellKey(cell, env.env_seed);
  return GetOrCompute<std::shared_ptr<const core::MethodRun>>(
      &cells_, key, &stats_.cell,
      [&] {
        if (fault::ShouldFail(fault::kStageCell)) {
          throw RecoverableError("injected stage.cell fault", /*transient=*/true);
        }
        const core::MethodConfig config = cell.ResolvedConfig();
        std::shared_ptr<const core::MethodRun> result;
        const auto try_load = [&](bool faulted) {
          std::string payload;
          if (!(faulted ? LoadStage("cell", key, &payload)
                        : store_.Load("cell", key, &payload))) {
            return false;
          }
          BinaryReader r(payload);
          auto run = std::make_shared<core::MethodRun>();
          if (core::LoadMethodRun(&r, cell.model, env, config.seed, run.get()) &&
              r.AtEnd()) {
            NoteDiskHit(&stats_.cell);
            result = std::move(run);
            return true;
          }
          return false;
        };
        ClaimedCompute("cell", key, try_load, [&] {
          auto run = std::make_shared<core::MethodRun>(
              core::RunMethod(cell.method, cell.model, env, config, this));
          if (store_.enabled()) {
            BinaryWriter w;
            core::SaveMethodRun(&w, *run);
            StoreStage("cell", key, w.data());
          }
          result = std::move(run);
        });
        return result;
      },
      cache_hit);
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ppfr::runner

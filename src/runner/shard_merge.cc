#include "runner/shard_merge.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/check.h"
#include "common/fault_injection.h"
#include "runner/journal.h"
#include "runner/run_cache.h"

namespace ppfr::runner {
namespace {

// shard-<i>of<N>.journal -> (i, N); false for any other filename.
bool ParseShardJournalName(const std::string& name, int* index, int* count) {
  int i = -1, n = -1;
  char tail = '\0';
  // %c after the suffix rejects trailing junk (sscanf would otherwise accept
  // "shard-0of3.journal.bak").
  if (std::sscanf(name.c_str(), "shard-%dof%d.journal%c", &i, &n, &tail) != 2) {
    return false;
  }
  *index = i;
  *count = n;
  return true;
}

}  // namespace

std::string ShardJournalFilename(int shard_index, int shard_count) {
  return "shard-" + std::to_string(shard_index) + "of" +
         std::to_string(shard_count) + ".journal";
}

SweepResult MergeShards(const Sweep& sweep, const ShardMergeOptions& options,
                        ShardMergeReport* report) {
  // Discover the fleet width from the journal filenames. Every journal in
  // the directory must agree on N: a mix means two different fleet layouts'
  // leftovers share the directory, and merging across them would silently
  // mispartition the grid.
  int shard_count = 0;
  std::error_code ec;
  PPFR_CHECK(std::filesystem::is_directory(options.shard_dir, ec))
      << "--merge directory '" << options.shard_dir << "' does not exist";
  for (const auto& it : std::filesystem::directory_iterator(options.shard_dir, ec)) {
    int index = 0, count = 0;
    if (!ParseShardJournalName(it.path().filename().string(), &index, &count)) {
      continue;
    }
    PPFR_CHECK(count >= 1 && index >= 0 && index < count)
        << "shard journal '" << it.path().string() << "' names an impossible "
        << "partition (" << index << "/" << count << ")";
    PPFR_CHECK(shard_count == 0 || shard_count == count)
        << "shard journals in '" << options.shard_dir << "' disagree on the "
        << "fleet width (" << shard_count << " vs " << count
        << ") — two different sharded runs must not merge into one artifact";
    shard_count = count;
  }
  PPFR_CHECK(shard_count >= 1)
      << "no shard-<i>of<N>.journal files in '" << options.shard_dir
      << "' — nothing to merge";

  SweepResult result;
  result.name = sweep.name;
  result.title = sweep.title;
  result.seeds = sweep.seeds;
  result.env_seed = options.env_seed;
  result.threads = 1;

  // Read-only replay of every shard journal. An absent, injected-unreadable
  // or identity-mismatched journal degrades its whole shard to missing; a
  // torn tail degrades just the unfinished cells (they read as missing
  // below). ReplayJournalFile never rewrites — the shard may still resume.
  std::vector<std::unordered_map<uint64_t, JournalRecord>> shard_records(
      shard_count);
  std::vector<int> present;
  for (int s = 0; s < shard_count; ++s) {
    const std::string path = options.shard_dir + "/" +
                             ShardJournalFilename(s, shard_count);
    if (!std::filesystem::exists(path, ec)) {
      result.missing_shards.push_back(s);
      continue;
    }
    if (fault::ShouldFail(fault::kShardMergeRead)) {
      std::fprintf(stderr,
                   "merge: injected read fault on '%s' (shard %d degrades to "
                   "missing)\n",
                   path.c_str(), s);
      result.missing_shards.push_back(s);
      continue;
    }
    JournalReplay replay =
        ReplayJournalFile(path, sweep.name, options.env_seed);
    if (!replay.header_ok) {
      std::fprintf(stderr,
                   "merge: '%s' is unreadable or belongs to another "
                   "sweep/format/backend (shard %d degrades to missing)\n",
                   path.c_str(), s);
      result.missing_shards.push_back(s);
      continue;
    }
    if (replay.torn) {
      std::fprintf(stderr,
                   "merge: '%s' has a torn tail (shard %d's unfinished cells "
                   "report missing)\n",
                   path.c_str(), s);
    }
    shard_records[s] = std::move(replay.records);
    present.push_back(s);
  }

  // Reassemble the canonical grid. Any shard may deliver any cell (a resume
  // after repartitioning, an operator's manual rerun), so every journal is
  // consulted for every key; the partition only predicts where the record
  // SHOULD be. Lowest shard index wins on duplicates, deterministically;
  // non-identical duplicates additionally count as conflicts.
  const std::vector<Scenario> expanded = ExpandCells(sweep);
  result.cells.resize(expanded.size());
  for (size_t k = 0; k < expanded.size(); ++k) {
    const uint64_t key = RunCache::CellKey(expanded[k], result.env_seed);
    CellResult& out = result.cells[k];
    out.scenario = expanded[k];
    out.seed = expanded[k].ResolvedConfig().seed;
    const JournalRecord* winner = nullptr;
    bool conflict = false;
    for (int s = 0; s < shard_count; ++s) {
      const auto it = shard_records[s].find(key);
      if (it == shard_records[s].end()) continue;
      if (winner == nullptr) {
        winner = &it->second;
      } else if (!RecordsEquivalent(*winner, it->second)) {
        conflict = true;
      }
    }
    if (winner == nullptr) {
      out.missing = true;
      out.run = PlaceholderRun();
      out.vanilla_eval = NanEvalResult();
      out.delta = NanDeltaMetrics();
      ++result.missing_cells;
      continue;
    }
    if (conflict) ++result.conflicting_cells;
    RestoreCell(*winner, &out);
    if (out.failed) ++result.failed_cells;
    ++result.resumed_cells;
  }

  if (report != nullptr) {
    report->shard_count = shard_count;
    report->present_shards = present;
    report->complete = result.missing_shards.empty() &&
                       result.missing_cells == 0 &&
                       result.conflicting_cells == 0;
  }
  return result;
}

}  // namespace ppfr::runner

#ifndef PPFR_RUNNER_SCENARIO_H_
#define PPFR_RUNNER_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/experiment.h"
#include "core/methods.h"

namespace ppfr::runner {

// Declarative description of one experiment cell: which (dataset, model,
// method) to run, plus config overrides layered on top of
// core::DefaultMethodConfig(dataset, model). A named sweep (table4, fig5,
// the ablation, ...) is a list of these — data, not a copy-pasted main().
struct ConfigOverrides {
  std::optional<int> epochs;            // vanilla-phase epochs
  std::optional<uint64_t> seed;         // method seed (model init, DP/PP noise)
  std::optional<double> lambda;         // fairness-regulariser weight
  std::optional<double> dp_epsilon;     // edge-DP budget
  std::optional<double> pp_gamma;       // PP heterophilic edge ratio
  std::optional<int> finetune_epochs;   // exact fine-tune epochs (beats scale)
  std::optional<bool> fr_zero_sum;      // QCLP zero-sum constraint

  // Layers the set fields onto `cfg`.
  void Apply(core::MethodConfig* cfg) const;
};

struct Scenario {
  data::DatasetId dataset = data::DatasetId::kCoraLike;
  nn::ModelKind model = nn::ModelKind::kGcn;
  core::MethodKind method = core::MethodKind::kVanilla;
  ConfigOverrides overrides;
  // Distinguishes variants of the same (dataset, model, method) triple in a
  // sweep (e.g. the ablation's γ/epoch grid); empty means the method name.
  std::string label;

  std::string DisplayLabel() const;
  // The fully resolved config this cell runs with.
  core::MethodConfig ResolvedConfig() const;
};

struct Sweep {
  std::string name;   // artifact is written as BENCH_<name>.json
  std::string title;  // one-line human description
  std::vector<Scenario> cells;
  // Seed list for multi-seed aggregation: when non-empty, RunSweep schedules
  // every cell once per seed (seed-major, overriding overrides.seed) and the
  // artifact reports per-seed values plus mean/stddev per metric. Empty (the
  // default for most registry sweeps) runs each cell once with its resolved
  // config seed. --seeds=0,1,2 overrides any per-scenario default.
  std::vector<uint64_t> seeds;
};

// The sweep's fully expanded (cell × seed) schedule, seed-major:
// expanded[s * cells.size() + i] is base cell i with overrides.seed =
// seeds[s] (an empty seed list schedules the cells as-is). This one function
// defines the canonical grid order everything downstream leans on — the
// scheduler, journal replay, the `--shard=i/N` ownership rule (expanded
// index k belongs to shard k % N) and the merge's cell reassembly — so the
// partition is stable across processes, resumes and merges by construction.
std::vector<Scenario> ExpandCells(const Sweep& sweep);

// ---- Exact-match name parsing -------------------------------------------
//
// All parsers match full names (case-sensitive, as printed by DatasetName /
// ModelKindName / MethodName). The *OrDie variants print the valid names to
// stderr and exit(2) on an unknown token — a typo must never silently fall
// back to defaults.

std::optional<data::DatasetId> ParseDataset(const std::string& name);
std::optional<nn::ModelKind> ParseModel(const std::string& name);
std::optional<core::MethodKind> ParseMethod(const std::string& name);

data::DatasetId ParseDatasetOrDie(const std::string& name);
nn::ModelKind ParseModelOrDie(const std::string& name);
core::MethodKind ParseMethodOrDie(const std::string& name);

// Comma-separated lists; an empty string yields `defaults`.
std::vector<data::DatasetId> ParseDatasetListOrDie(
    const std::string& csv, std::vector<data::DatasetId> defaults);
std::vector<nn::ModelKind> ParseModelListOrDie(const std::string& csv,
                                               std::vector<nn::ModelKind> defaults);
std::vector<core::MethodKind> ParseMethodListOrDie(
    const std::string& csv, std::vector<core::MethodKind> defaults);

// Splits a string on `sep`, dropping empty tokens.
std::vector<std::string> SplitList(const std::string& csv, char sep = ',');

// Comma-separated seed list, parsed strictly (ParseUint64Strict): any
// malformed or duplicate token dies with the offending value. Empty input
// yields the empty list (= single-seed behaviour).
std::vector<uint64_t> ParseSeedListOrDie(const std::string& csv);

// ---- Registry ------------------------------------------------------------

// Named sweeps reproducing the paper's tables and figures (see
// EXPERIMENTS.md for the mapping). Known names: table2, table3, table4,
// table5 (alias weak-homophily), fig4, fig5, fig6 (alias ablation), fig7,
// smoke, smoke-multiseed (the smoke grid with a 3-seed default list — the
// paper's tables average repeated runs, and this is the cheap registry
// entry that exercises that path end-to-end). Returns nullopt for unknown
// names.
std::optional<Sweep> RegistrySweep(const std::string& name);

// All registered sweep names, for usage listings.
std::vector<std::string> RegistrySweepNames();

// Builds the sweep a binary should run from its command line:
//   --scenarios=<name>[,<name>...]   merge registered sweeps
//   --grid=<datasets>;<models>;<methods>   ad-hoc full cross product, each
//       component a comma-list ("" or "*" = the component's default grid)
// Both die loudly on unknown names. Without either flag, returns the
// registered sweep `default_name`. After resolution, --datasets= / --models=
// narrow the cell list (exact matching), keeping cell order.
Sweep SweepFromFlags(const Flags& flags, const std::string& default_name);

// Narrows the sweep's cell list with --datasets= / --models= (exact names,
// die-on-unknown); exits if nothing is left.
void ApplyFilters(const Flags& flags, Sweep* sweep);

// Applies the common cell-level flag overrides (--epochs=, --seed=) to every
// cell of the sweep, and --seeds= to the sweep's seed list. --seed and
// --seeds are mutually exclusive (one pins a single method seed, the other
// expands the sweep over several).
void ApplyCommonOverrides(const Flags& flags, Sweep* sweep);

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_SCENARIO_H_

#ifndef PPFR_RUNNER_CACHE_STORE_H_
#define PPFR_RUNNER_CACHE_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppfr::runner {

// Disk layer under RunCache: one file per (stage, key) holding a versioned,
// checksummed binary payload, so repeated bench invocations across processes
// share trained models, DP/PP contexts and FR solves instead of recomputing
// them. The keys are RunCache's process-stable FNV content hashes, which is
// what makes cross-process sharing sound in the first place.
//
// File contract (all failure modes recover, never crash):
//  * Writes are atomic: payload goes to a unique temp file that is flushed,
//    checked and rename(2)d into place — a concurrent reader sees either
//    the old entry or the complete new one, never a torn file.
//  * Every entry carries a magic/format-version header, the producing
//    build's fingerprint (serialization version + active la::Backend kind +
//    SIMD state — backends are bitwise-deterministic internally but NOT
//    bitwise-equal to each other, so mixing them through one cache would
//    silently break the "identical to a cold run" guarantee), the entry's
//    own key, and an FNV-1a checksum of the payload.
//  * A missing file is a miss. A file with a foreign magic is not ours and
//    is left alone (plain miss; a recompute's Store overwrites it), as is a
//    structurally-intact entry with a different format version, fingerprint
//    or key. A magic-matching file that is truncated or checksum-failing is
//    CORRUPT: it is deleted before reporting the miss so a crashed writer
//    or bit rot can never wedge a key permanently.
//
// Multi-process contention contract (the sharded-fleet hardening):
//  * A compute slot is claimed through an O_CREAT|O_EXCL claim file
//    (`<entry>.claim` holding pid + fingerprint + wall time). Exactly one
//    process wins the create; the rest poll for the entry to appear under
//    bounded backoff instead of recomputing — two shards sharing a cache dir
//    never double-train one vanilla stage.
//  * A claim whose owner pid is dead (same machine) or whose file is older
//    than the staleness bound is STALE: a waiting process breaks it
//    (unlink) and re-contends for the O_EXCL create. The unlink-based
//    takeover has a benign race — in the worst interleaving two processes
//    compute the same deterministic entry and the atomic Store makes the
//    last rename win — it can waste work, never corrupt the cache.
//  * A claim is always released through the RAII ClaimGuard, including on a
//    RecoverableError unwinding out of the compute, so a failed compute
//    never wedges a key behind a claim until the staleness bound.
class CacheStore {
 public:
  // Empty dir = disabled (every Load misses, Store is a no-op). A non-empty
  // dir is created (recursively) on first use; an uncreatable dir dies
  // loudly — a requested-but-unusable cache must not silently degrade to
  // retraining everything.
  explicit CacheStore(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Reads the payload stored under (stage, key). False on miss; corrupt
  // entries are deleted first (see class contract). Hits refresh the entry's
  // last-access stamp in the in-memory index (flushed by GarbageCollect).
  bool Load(const char* stage, uint64_t key, std::string* payload) const;

  // Persists the payload under (stage, key) atomically. Write failures (disk
  // full, permissions) warn on stderr and leave the cache entry absent; the
  // in-memory result is unaffected.
  void Store(const char* stage, uint64_t key, const std::string& payload) const;

  // ---- Cross-process claims -----------------------------------------------

  enum class ClaimState {
    kNone,   // no claim file
    kHeld,   // live claim (young enough, owner not provably dead)
    kStale,  // dead owner pid or older than the staleness bound
  };

  // Attempts to create the claim file for (stage, key) with O_EXCL. True =
  // this process now owns the compute slot and must ReleaseClaim (use
  // ClaimGuard). Always true when the store is disabled (no cross-process
  // concern). The fault::kCacheStoreClaim site models a spuriously failing
  // create (e.g. NFS close-to-open races): the caller re-enters its poll
  // loop and re-contends.
  bool TryClaim(const char* stage, uint64_t key) const;

  // Unlinks the claim file. Idempotent.
  void ReleaseClaim(const char* stage, uint64_t key) const;

  // Classifies the current claim file (see ClaimState). stale_ms bounds the
  // age of a live claim; <= 0 uses claim_stale_ms().
  ClaimState ProbeClaim(const char* stage, uint64_t key, int64_t stale_ms = 0) const;

  // Unlinks a stale claim so the breaker (and everyone else) can re-contend
  // the O_EXCL create. See the takeover race note in the class contract.
  void BreakClaim(const char* stage, uint64_t key) const;

  // RAII ownership of a claim slot; releases on destruction.
  class ClaimGuard {
   public:
    ClaimGuard(const CacheStore* store, const char* stage, uint64_t key)
        : store_(store), stage_(stage), key_(key) {}
    ~ClaimGuard() { store_->ReleaseClaim(stage_, key_); }
    ClaimGuard(const ClaimGuard&) = delete;
    ClaimGuard& operator=(const ClaimGuard&) = delete;

   private:
    const CacheStore* store_;
    const char* stage_;
    uint64_t key_;
  };

  // The staleness bound for claim takeover, resolved once per process:
  // PPFR_CACHE_CLAIM_STALE_MS (strictly parsed, > 0) or the 120 s default.
  // Must exceed the longest single stage compute, or a slow trainer gets
  // "taken over" and the stage computes twice (still correct, just wasted).
  static int64_t claim_stale_ms();

  // ---- Size/age-bounded garbage collection --------------------------------

  struct GcOptions {
    int64_t max_bytes = 0;        // total entry bytes to keep; 0 = unbounded
    int64_t max_age_seconds = 0;  // evict entries idle longer; 0 = unbounded
  };
  struct GcResult {
    int64_t entries_before = 0;
    int64_t bytes_before = 0;
    int64_t evicted_entries = 0;
    int64_t evicted_bytes = 0;
    int64_t kept_claimed = 0;  // eviction candidates spared by a live claim
  };

  // Evicts least-recently-used entries until the directory fits the bounds.
  // Last-access times come from the persisted index file (updated from this
  // process's Load/Store traffic and each entry's mtime, whichever is
  // newer); the refreshed index is rewritten atomically afterwards. Entries
  // with ANY claim file present are never evicted — a claimant is about to
  // rewrite them. Claim files themselves are not entries and are left alone.
  // No-op (all zeros) when the store is disabled.
  GcResult GarbageCollect(const GcOptions& options) const;

  // The GC index: "<file> <last_access_unix>" lines under dir(). Exposed so
  // the preflight can probe its writability before a sweep trains.
  std::string IndexPath() const;

  // "<serialize version>|backend=<kind>|simd=<0/1>" of the calling process.
  static std::string Fingerprint();

  // Path of the entry file for (stage, key) — exposed for the corruption
  // tests.
  std::string EntryPath(const char* stage, uint64_t key) const;
  // Path of the claim file for (stage, key).
  std::string ClaimPath(const char* stage, uint64_t key) const;

 private:
  // Records a Load/Store touch of `file` (basename) for the GC index.
  void Touch(const std::string& file) const;

  std::string dir_;
  // Last-access stamps observed by THIS process, merged into the index file
  // at GarbageCollect time. Guarded: Load/Store run on scheduler workers.
  mutable std::mutex touch_mu_;
  mutable std::unordered_map<std::string, int64_t> touched_;
};

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_CACHE_STORE_H_

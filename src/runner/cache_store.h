#ifndef PPFR_RUNNER_CACHE_STORE_H_
#define PPFR_RUNNER_CACHE_STORE_H_

#include <cstdint>
#include <string>

namespace ppfr::runner {

// Disk layer under RunCache: one file per (stage, key) holding a versioned,
// checksummed binary payload, so repeated bench invocations across processes
// share trained models, DP/PP contexts and FR solves instead of recomputing
// them. The keys are RunCache's process-stable FNV content hashes, which is
// what makes cross-process sharing sound in the first place.
//
// File contract (all failure modes recover, never crash):
//  * Writes are atomic: payload goes to a unique temp file that is flushed,
//    checked and rename(2)d into place — a concurrent reader sees either
//    the old entry or the complete new one, never a torn file.
//  * Every entry carries a magic/format-version header, the producing
//    build's fingerprint (serialization version + active la::Backend kind +
//    SIMD state — backends are bitwise-deterministic internally but NOT
//    bitwise-equal to each other, so mixing them through one cache would
//    silently break the "identical to a cold run" guarantee), the entry's
//    own key, and an FNV-1a checksum of the payload.
//  * A missing file is a miss. A file with a foreign magic is not ours and
//    is left alone (plain miss; a recompute's Store overwrites it), as is a
//    structurally-intact entry with a different format version, fingerprint
//    or key. A magic-matching file that is truncated or checksum-failing is
//    CORRUPT: it is deleted before reporting the miss so a crashed writer
//    or bit rot can never wedge a key permanently.
class CacheStore {
 public:
  // Empty dir = disabled (every Load misses, Store is a no-op). A non-empty
  // dir is created (recursively) on first use; an uncreatable dir dies
  // loudly — a requested-but-unusable cache must not silently degrade to
  // retraining everything.
  explicit CacheStore(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Reads the payload stored under (stage, key). False on miss; corrupt
  // entries are deleted first (see class contract).
  bool Load(const char* stage, uint64_t key, std::string* payload) const;

  // Persists the payload under (stage, key) atomically. Write failures (disk
  // full, permissions) warn on stderr and leave the cache entry absent; the
  // in-memory result is unaffected.
  void Store(const char* stage, uint64_t key, const std::string& payload) const;

  // "<serialize version>|backend=<kind>|simd=<0/1>" of the calling process.
  static std::string Fingerprint();

  // Path of the entry file for (stage, key) — exposed for the corruption
  // tests.
  std::string EntryPath(const char* stage, uint64_t key) const;

 private:
  std::string dir_;
};

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_CACHE_STORE_H_

#ifndef PPFR_RUNNER_RUN_CACHE_H_
#define PPFR_RUNNER_RUN_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/methods.h"
#include "runner/cache_store.h"
#include "runner/scenario.h"

namespace ppfr::runner {

// Stable content hash for cache keys: FNV-1a over tagged field bytes. Keys
// never involve addresses or iteration order, so the same logical inputs
// hash identically in every process — a prerequisite for persisting or
// sharding the cache later (golden-tested in tests/runner_test.cc).
class KeyHasher {
 public:
  KeyHasher& Mix(uint64_t v);
  KeyHasher& Mix(int v) { return Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  KeyHasher& Mix(bool v) { return Mix(static_cast<uint64_t>(v ? 1 : 0)); }
  // Canonicalized bit pattern: -0.0 hashes as +0.0 and every NaN payload as
  // one canonical qNaN, so configs that compare equal share a key.
  KeyHasher& Mix(double v);
  KeyHasher& Mix(const std::string& s);
  // Without this overload a literal like Mix("env") would take the bool
  // conversion (pointer-to-bool beats the user-defined std::string one) and
  // every namespace tag would hash identically.
  KeyHasher& Mix(const char* s) { return Mix(std::string(s)); }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;  // FNV offset basis
};

// Process-wide stage-level run cache behind the scenario runner: one
// instance memoises every expensive pipeline stage across methods, cells and
// sweeps, keyed by content hashes of the stage's inputs ("stage prefix" of
// the MethodConfig). Vanilla training therefore happens exactly once per
// (dataset, env seed, model kind, train schedule, method seed) no matter how
// many methods, tables and figures consume it.
//
// Thread safety: all getters are callable from concurrent scheduler workers.
// The first requester of a key computes the entry (outside the map lock);
// concurrent requesters for the same key block on a shared_future until it
// is ready. Entries are immutable once computed and never evicted; a compute
// that fails with the sanctioned RecoverableError (common/recoverable.h) is
// unmapped again, so a retried cell recomputes instead of rethrowing a stale
// failure, and its waiters rethrow from the shared future. Because
// the computer is always a running thread — a waiter only ever waits on a
// key some other running thread claimed — the latch cannot deadlock a
// fixed-size scheduler.
// With a persist dir (--run_cache_dir= / PPFR_RUN_CACHE_DIR), every computed
// stage is additionally serialised into a CacheStore and in-memory misses
// first try a disk load — so a SECOND PROCESS running the same sweep resumes
// every trained model, DP/PP context, FR solve and whole cell from disk
// (zero nn::Train calls, bitwise-identical artifacts; gated in
// tests/runner_test.cc and the CI warm-cache leg). CONCURRENT processes
// sharing one dir (sharded sweeps) additionally coordinate through
// CacheStore claim files via ClaimedCompute, so a shared stage trains in
// exactly one process fleet-wide while the rest wait for the entry (gated in
// tests/cache_contention_test.cc).
class RunCache : public core::StageCache {
 public:
  struct StageStats {
    int64_t hits = 0;
    int64_t misses = 0;
    // Of the misses, how many were satisfied by a disk load instead of a
    // recompute (disk_hits <= misses; only ever nonzero with a persist dir).
    int64_t disk_hits = 0;
  };
  struct Stats {
    StageStats env;
    StageStats vanilla;
    StageStats dp_context;
    StageStats pp_context;
    StageStats fr;
    StageStats cell;
  };

  // An empty persist_dir keeps the cache purely in-memory (the historical
  // behaviour); a non-empty one persists every stage across processes.
  explicit RunCache(std::string persist_dir = {});

  const CacheStore& store() const { return store_; }

  // ---- Content-hash keys (public for the stability tests) ----
  static uint64_t EnvKey(data::DatasetId id, uint64_t env_seed);
  static uint64_t VanillaKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                             const core::MethodConfig& config);
  static uint64_t DpKey(const core::ExperimentEnv& env,
                        const core::MethodConfig& config);
  static uint64_t PpKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                        const core::MethodConfig& config);
  static uint64_t FrKey(nn::ModelKind kind, const core::ExperimentEnv& env,
                        const core::MethodConfig& config);
  static uint64_t CellKey(const Scenario& cell, uint64_t env_seed);

  // ---- Stage getters ----

  // Shared experiment environment for a dataset (graph, similarity, attack
  // pairs). Heavyweight and read-only, so all cells share one instance.
  std::shared_ptr<const core::ExperimentEnv> Env(data::DatasetId id,
                                                 uint64_t env_seed);

  // core::StageCache interface (consumed by core::RunMethod).
  std::unique_ptr<nn::GnnModel> VanillaModel(nn::ModelKind kind,
                                             const core::ExperimentEnv& env,
                                             const core::MethodConfig& config) override;
  core::EvalResult VanillaEval(nn::ModelKind kind, const core::ExperimentEnv& env,
                               const core::MethodConfig& config) override;
  std::shared_ptr<const nn::GraphContext> DpContext(
      const core::ExperimentEnv& env, const core::MethodConfig& config) override;
  std::shared_ptr<const nn::GraphContext> PpContext(
      nn::ModelKind kind, const core::ExperimentEnv& env,
      const core::MethodConfig& config) override;
  std::shared_ptr<const core::FrOutput> FrWeights(
      nn::ModelKind kind, const core::ExperimentEnv& env,
      const core::MethodConfig& config) override;

  // Fully-run cell (RunMethod through this cache), memoised on the resolved
  // config — a cell repeated across sweeps in one process runs once. On
  // return *cache_hit (when non-null) says whether the memo held a READY
  // result (a waiter on an in-flight duplicate reports false: it spent the
  // compute's wall time).
  std::shared_ptr<const core::MethodRun> CellRun(const Scenario& cell,
                                                 const core::ExperimentEnv& env,
                                                 bool* cache_hit = nullptr);

  Stats stats() const;

 private:
  struct VanillaStage {
    std::unique_ptr<nn::GnnModel> model;
    core::EvalResult eval;
  };

  template <typename V>
  V GetOrCompute(std::unordered_map<uint64_t, std::shared_future<V>>* map,
                 uint64_t key, StageStats* stats, const std::function<V()>& compute,
                 bool* was_hit = nullptr);

  std::shared_ptr<const VanillaStage> VanillaStageFor(nn::ModelKind kind,
                                                      const core::ExperimentEnv& env,
                                                      const core::MethodConfig& config);

  // Counts a miss that was satisfied from disk (called from compute lambdas,
  // outside the map lock).
  void NoteDiskHit(StageStats* stats);

  // CacheStore::Load/Store behind the fault-injection sites
  // (fault::kCacheStoreRead throws a transient RecoverableError, modelling a
  // read racing a writer; kCacheStoreWrite degrades to "entry not
  // persisted"). Every stage's disk traffic routes through these.
  bool LoadStage(const char* stage, uint64_t key, std::string* payload) const;
  void StoreStage(const char* stage, uint64_t key, const std::string& payload) const;

  // Cross-process claim protocol around a disk-backed stage compute (see the
  // CacheStore contention contract). try_load(faulted) attempts the disk
  // load and reports whether the caller's result is now set; only the FIRST
  // attempt routes through the kCacheStoreRead fault site (faulted=true) —
  // the post-claim double-check and the waiter polls read raw, so the claim
  // machinery never perturbs the deterministic fault cadences the PR 7 tests
  // pin. compute() trains/solves and persists. The in-process GetOrCompute
  // latch already guarantees one caller per key per process, so everything
  // here is about OTHER processes sharing the cache dir:
  //   miss -> TryClaim -> won:  double-check load (claimant may have just
  //                             finished), else compute, release via RAII
  //                     lost:  poll the entry under bounded backoff
  //                            (2 ms doubling, 50 ms cap); a stale claim
  //                            (dead pid / age bound) is broken and the
  //                            create re-contended.
  // With the store disabled this degenerates to compute() exactly like the
  // pre-claim code path.
  void ClaimedCompute(const char* stage, uint64_t key,
                      const std::function<bool(bool faulted)>& try_load,
                      const std::function<void()>& compute) const;

  // Disk-backed compute shared by the DP/PP context stages.
  std::shared_ptr<const nn::GraphContext> ContextStage(
      std::unordered_map<uint64_t,
                         std::shared_future<std::shared_ptr<const nn::GraphContext>>>* map,
      const char* stage, uint64_t key, StageStats* stats,
      const core::ExperimentEnv& env,
      const std::function<nn::GraphContext()>& compute);

  CacheStore store_;
  mutable std::mutex mu_;
  Stats stats_;
  std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const core::ExperimentEnv>>>
      envs_;
  std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const VanillaStage>>>
      vanilla_;
  std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const nn::GraphContext>>>
      dp_contexts_;
  std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const nn::GraphContext>>>
      pp_contexts_;
  std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const core::FrOutput>>>
      fr_outputs_;
  std::unordered_map<uint64_t, std::shared_future<std::shared_ptr<const core::MethodRun>>>
      cells_;
};

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_RUN_CACHE_H_

#ifndef PPFR_RUNNER_SHARD_MERGE_H_
#define PPFR_RUNNER_SHARD_MERGE_H_

#include <string>
#include <vector>

#include "runner/runner.h"

namespace ppfr::runner {

// Reassembly of a sharded sweep (`bench_runner --shard=i/N --shard_dir=DIR`)
// into the full-grid SweepResult, from the per-shard journals alone — no
// shard process needs to be alive, and the merge never mutates the shard
// files (read-only replay; a crashed shard's journal stays exactly as its
// resume expects it).
//
// Guarantees:
//  * COMPLETE fleet (every shard journal present, every grid cell delivered,
//    no conflicts): the merged result, written with ArtifactOptions.stable,
//    is bitwise identical to the unsharded stable artifact of the same
//    sweep — same cell order (the canonical ExpandCells grid), same record
//    deserialization (RestoreCell), same writer. CI `cmp`s this.
//  * DEGRADED fleet: graceful degradation, never failure. An absent or
//    unreadable shard journal lands its index in `missing_shards` (its cells
//    report status "missing"); a cell no shard finished is "missing";
//    duplicate records for one cell (a cell recomputed after a stale-claim
//    takeover, an operator re-running a shard) are compared bitwise — equal
//    duplicates are benign, differing ones count into `conflicting_cells`
//    and the LOWEST shard index wins, deterministically. Aggregates cover
//    exactly the cells that arrived.
//
// Malformed dirs die loudly via PPFR_CHECK: no shard journals at all, or
// journals disagreeing on the fleet width N (two different sweeps' leftovers
// in one directory must not silently merge into nonsense).

// The canonical shard journal filename inside the shard dir. Both the shard
// processes (writing) and the merge (discovering) go through this, so the
// naming contract lives in one place.
std::string ShardJournalFilename(int shard_index, int shard_count);

struct ShardMergeOptions {
  std::string shard_dir;  // directory holding shard-<i>of<N>.journal files
  uint64_t env_seed = 0;  // must match the journals' header identity
};

struct ShardMergeReport {
  int shard_count = 0;            // N discovered from the journal filenames
  std::vector<int> present_shards;
  // True iff nothing degraded: all N journals replayed, every cell
  // delivered, zero conflicts. The caller maps this to its exit code.
  bool complete = false;
};

// Merges DIR's shard journals for `sweep` into result (full grid order).
// The degradation counters live on the returned SweepResult
// (missing_shards / missing_cells / conflicting_cells), ready for
// WriteArtifact; `report` (optional) adds the fleet bookkeeping.
// The fault::kShardMergeRead site fires once per discovered journal and
// degrades that shard to missing — the injected analogue of an unreadable
// file on a dead machine.
SweepResult MergeShards(const Sweep& sweep, const ShardMergeOptions& options,
                        ShardMergeReport* report = nullptr);

}  // namespace ppfr::runner

#endif  // PPFR_RUNNER_SHARD_MERGE_H_

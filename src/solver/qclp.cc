#include "solver/qclp.h"

#include <cmath>

#include "common/check.h"

namespace ppfr::solver {
namespace {

double Objective(const std::vector<double>& c, const std::vector<double>& w) {
  double s = 0.0;
  for (size_t i = 0; i < c.size(); ++i) s += c[i] * w[i];
  return s;
}

void Project(const QclpProblem& p, const DykstraOptions& dykstra,
             std::vector<double>* w) {
  std::vector<ProjectionFn> sets;
  sets.push_back(
      [&p](std::vector<double>* v) { ProjectBox(p.box_lo, p.box_hi, v); });
  sets.push_back(
      [&p](std::vector<double>* v) { ProjectBall(p.ball_radius_sq, v); });
  if (!p.halfspace_u.empty()) {
    sets.push_back([&p](std::vector<double>* v) {
      ProjectHalfspace(p.halfspace_u, p.halfspace_offset, v);
    });
  }
  if (p.zero_sum) {
    sets.push_back([](std::vector<double>* v) {
      const std::vector<double> ones(v->size(), 1.0);
      ProjectHyperplane(ones, 0.0, v);
    });
  }
  DykstraProject(sets, dykstra, w);
}

}  // namespace

QclpResult SolveQclp(const QclpProblem& problem, const QclpOptions& options) {
  const size_t n = problem.objective.size();
  PPFR_CHECK_GT(n, 0u);
  if (!problem.halfspace_u.empty()) {
    PPFR_CHECK_EQ(problem.halfspace_u.size(), n);
  }

  double c_norm = 0.0;
  for (double c : problem.objective) c_norm += c * c;
  c_norm = std::sqrt(c_norm);

  QclpResult result;
  result.w.assign(n, 0.0);
  Project(problem, options.dykstra, &result.w);  // feasible start
  double best_value = Objective(problem.objective, result.w);
  std::vector<double> best_w = result.w;

  if (c_norm == 0.0) {
    result.objective_value = best_value;
    return result;
  }

  const double step0 = options.initial_step > 0.0
                           ? options.initial_step
                           : std::sqrt(problem.ball_radius_sq) / c_norm;
  std::vector<double> w = result.w;
  for (int it = 1; it <= options.max_iterations; ++it) {
    const double step = step0 / std::sqrt(static_cast<double>(it));
    for (size_t i = 0; i < n; ++i) w[i] -= step * problem.objective[i];
    Project(problem, options.dykstra, &w);
    const double value = Objective(problem.objective, w);
    if (value < best_value) {
      best_value = value;
      best_w = w;
    }
    result.iterations = it;
  }
  result.w = std::move(best_w);
  result.objective_value = best_value;
  return result;
}

QclpResult SolveLiLiuLp(const std::vector<double>& objective,
                        const QclpOptions& options) {
  QclpProblem problem;
  problem.objective = objective;
  // Only box + sum preservation: emulate "no ball" with a radius covering the
  // whole box (‖w‖² <= n when w ∈ [-1,1]^n).
  problem.ball_radius_sq = static_cast<double>(objective.size());
  problem.zero_sum = true;
  return SolveQclp(problem, options);
}

bool IsFeasible(const QclpProblem& problem, const std::vector<double>& w,
                double slack) {
  double norm_sq = 0.0;
  for (double x : w) {
    if (x < problem.box_lo - slack || x > problem.box_hi + slack) return false;
    norm_sq += x * x;
  }
  if (norm_sq > problem.ball_radius_sq + slack) return false;
  if (!problem.halfspace_u.empty()) {
    double dot = 0.0;
    for (size_t i = 0; i < w.size(); ++i) dot += problem.halfspace_u[i] * w[i];
    if (dot > problem.halfspace_offset + slack) return false;
  }
  if (problem.zero_sum) {
    double sum = 0.0;
    for (double x : w) sum += x;
    if (std::fabs(sum) > slack * static_cast<double>(w.size())) return false;
  }
  return true;
}

}  // namespace ppfr::solver

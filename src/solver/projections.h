#ifndef PPFR_SOLVER_PROJECTIONS_H_
#define PPFR_SOLVER_PROJECTIONS_H_

#include <functional>
#include <vector>

namespace ppfr::solver {

// Euclidean projections onto the convex sets making up the QCLP feasible
// region (Eq. 13 of the paper), plus Dykstra's algorithm for their
// intersection.

// Projection onto the box [lo, hi]^n (in place).
void ProjectBox(double lo, double hi, std::vector<double>* w);

// Projection onto the L2 ball ‖w‖² <= radius_sq (in place).
void ProjectBall(double radius_sq, std::vector<double>* w);

// Projection onto the halfspace {w : uᵀw <= offset} (in place).
void ProjectHalfspace(const std::vector<double>& u, double offset,
                      std::vector<double>* w);

// Projection onto the hyperplane {w : uᵀw == offset} (in place).
void ProjectHyperplane(const std::vector<double>& u, double offset,
                       std::vector<double>* w);

struct DykstraOptions {
  int max_sweeps = 100;
  double tolerance = 1e-10;  // on the squared change between sweeps
  // Plain cyclic-projection sweeps run after the Dykstra loop to clean up
  // residual constraint violations (POCS converges to a feasible point).
  int polish_sweeps = 60;
};

// A single-set Euclidean projection operating in place.
using ProjectionFn = std::function<void(std::vector<double>*)>;

// Dykstra's alternating projection onto the intersection of convex sets
// (converges to the exact Euclidean projection, unlike plain cyclic
// projection).
void DykstraProject(const std::vector<ProjectionFn>& sets,
                    const DykstraOptions& options, std::vector<double>* w);

// Convenience wrapper: box ∩ ball ∩ halfspace.
void ProjectIntersection(double box_lo, double box_hi, double ball_radius_sq,
                         const std::vector<double>& halfspace_u,
                         double halfspace_offset, const DykstraOptions& options,
                         std::vector<double>* w);

}  // namespace ppfr::solver

#endif  // PPFR_SOLVER_PROJECTIONS_H_

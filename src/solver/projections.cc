#include "solver/projections.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppfr::solver {

void ProjectBox(double lo, double hi, std::vector<double>* w) {
  PPFR_CHECK_LE(lo, hi);
  for (double& x : *w) x = std::clamp(x, lo, hi);
}

void ProjectBall(double radius_sq, std::vector<double>* w) {
  PPFR_CHECK_GE(radius_sq, 0.0);
  double norm_sq = 0.0;
  for (double x : *w) norm_sq += x * x;
  if (norm_sq <= radius_sq || norm_sq == 0.0) return;
  const double scale = std::sqrt(radius_sq / norm_sq);
  for (double& x : *w) x *= scale;
}

void ProjectHalfspace(const std::vector<double>& u, double offset,
                      std::vector<double>* w) {
  PPFR_CHECK_EQ(u.size(), w->size());
  double dot = 0.0, norm_sq = 0.0;
  for (size_t i = 0; i < u.size(); ++i) {
    dot += u[i] * (*w)[i];
    norm_sq += u[i] * u[i];
  }
  if (dot <= offset || norm_sq == 0.0) return;
  const double step = (dot - offset) / norm_sq;
  for (size_t i = 0; i < u.size(); ++i) (*w)[i] -= step * u[i];
}

void ProjectHyperplane(const std::vector<double>& u, double offset,
                       std::vector<double>* w) {
  PPFR_CHECK_EQ(u.size(), w->size());
  double dot = 0.0, norm_sq = 0.0;
  for (size_t i = 0; i < u.size(); ++i) {
    dot += u[i] * (*w)[i];
    norm_sq += u[i] * u[i];
  }
  if (norm_sq == 0.0) return;
  const double step = (dot - offset) / norm_sq;
  for (size_t i = 0; i < u.size(); ++i) (*w)[i] -= step * u[i];
}

void DykstraProject(const std::vector<ProjectionFn>& sets,
                    const DykstraOptions& options, std::vector<double>* w) {
  PPFR_CHECK(!sets.empty());
  const size_t n = w->size();
  std::vector<std::vector<double>> corrections(sets.size(), std::vector<double>(n, 0.0));

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double change_sq = 0.0;
    for (size_t set_idx = 0; set_idx < sets.size(); ++set_idx) {
      std::vector<double>& correction = corrections[set_idx];
      std::vector<double> y(n);
      for (size_t i = 0; i < n; ++i) y[i] = (*w)[i] + correction[i];
      std::vector<double> projected = y;
      sets[set_idx](&projected);
      for (size_t i = 0; i < n; ++i) {
        correction[i] = y[i] - projected[i];
        change_sq += (projected[i] - (*w)[i]) * (projected[i] - (*w)[i]);
        (*w)[i] = projected[i];
      }
    }
    if (change_sq < options.tolerance) break;
  }

  // Feasibility polish: Dykstra's change-based stopping can leave tiny
  // (~1e-5) constraint violations. Plain cyclic projections (POCS) converge
  // to a feasible point and barely move an almost-feasible one.
  for (int sweep = 0; sweep < options.polish_sweeps; ++sweep) {
    for (const ProjectionFn& project : sets) project(w);
  }
}

void ProjectIntersection(double box_lo, double box_hi, double ball_radius_sq,
                         const std::vector<double>& halfspace_u,
                         double halfspace_offset, const DykstraOptions& options,
                         std::vector<double>* w) {
  std::vector<ProjectionFn> sets;
  sets.push_back([box_lo, box_hi](std::vector<double>* v) {
    ProjectBox(box_lo, box_hi, v);
  });
  sets.push_back([ball_radius_sq](std::vector<double>* v) {
    ProjectBall(ball_radius_sq, v);
  });
  sets.push_back([&halfspace_u, halfspace_offset](std::vector<double>* v) {
    ProjectHalfspace(halfspace_u, halfspace_offset, v);
  });
  DykstraProject(sets, options, w);
}

}  // namespace ppfr::solver

#ifndef PPFR_SOLVER_QCLP_H_
#define PPFR_SOLVER_QCLP_H_

#include <vector>

#include "solver/projections.h"

namespace ppfr::solver {

// The fairness-aware-reweighting program of Eq. 13:
//   min_w   cᵀ w
//   s.t.    ‖w‖² <= ball_radius_sq          (reweighting budget  α·|Vl|)
//           uᵀ w  <= halfspace_offset        (bounded utility cost β·ΣI⁺util)
//           box_lo <= w_i <= box_hi          (w_v ∈ [-1, 1])
// The paper solves this with Gurobi; this projected-(sub)gradient solver with
// Dykstra projections reaches the same optimum for this convex program.
struct QclpProblem {
  std::vector<double> objective;  // c
  double ball_radius_sq = 1.0;
  std::vector<double> halfspace_u;  // u (empty disables the constraint)
  double halfspace_offset = 0.0;
  double box_lo = -1.0;
  double box_hi = 1.0;
  // Adds the equality constraint Σ_i w_i = 0 (pure redistribution). Used by
  // the fairness-aware reweighting so debiasing cannot degenerate into
  // globally down-weighting the loss (see DESIGN.md §5).
  bool zero_sum = false;
};

struct QclpOptions {
  int max_iterations = 600;
  double initial_step = 0.0;  // 0 = auto (ball radius / ‖c‖)
  DykstraOptions dykstra;
};

struct QclpResult {
  std::vector<double> w;
  double objective_value = 0.0;
  int iterations = 0;
};

QclpResult SolveQclp(const QclpProblem& problem, const QclpOptions& options = {});

// The LP training scheme of Li & Liu (ICML'22) that the paper contrasts its
// QCLP against (§VI-B1): same linear objective, but the only constraints are
// the box and weight-sum preservation (Σw = 0 in our centred parameterisation)
// — no reweighting-budget ball and no utility halfspace. Exposed for the
// ablation benches.
QclpResult SolveLiLiuLp(const std::vector<double>& objective,
                        const QclpOptions& options = {});

// Checks feasibility of a point up to `slack` (used in tests).
bool IsFeasible(const QclpProblem& problem, const std::vector<double>& w,
                double slack = 1e-6);

}  // namespace ppfr::solver

#endif  // PPFR_SOLVER_QCLP_H_

#include "core/methods.h"

#include <cmath>

#include "privacy/defense/edge_rand.h"
#include "privacy/defense/heterophilic_perturbation.h"
#include "privacy/defense/lap_graph.h"

namespace ppfr::core {

std::string MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kVanilla:
      return "Vanilla";
    case MethodKind::kReg:
      return "Reg";
    case MethodKind::kDpReg:
      return "DPReg";
    case MethodKind::kDpFr:
      return "DPFR";
    case MethodKind::kPpFr:
      return "PPFR";
  }
  return "?";
}

std::vector<MethodKind> ComparisonMethods() {
  return {MethodKind::kReg, MethodKind::kDpReg, MethodKind::kDpFr, MethodKind::kPpFr};
}

std::unique_ptr<nn::GnnModel> TrainFresh(nn::ModelKind model_kind,
                                         const ExperimentEnv& env,
                                         const nn::GraphContext& train_ctx,
                                         const MethodConfig& config, double lambda) {
  std::unique_ptr<nn::GnnModel> model =
      nn::MakeModel(model_kind, env.ctx.feature_dim(), env.dataset.data.num_classes,
                    config.seed);
  nn::TrainConfig train = config.train;
  if (lambda > 0.0) {
    train.fairness_reg = lambda;
    train.fairness_laplacian = env.similarity.laplacian;
  }
  nn::Train(model.get(), train_ctx, env.train_nodes(), env.labels(), train);
  return model;
}

nn::GraphContext MakeDpContext(const ExperimentEnv& env, const MethodConfig& config) {
  const graph::Graph& g = env.dataset.data.graph;
  graph::Graph perturbed =
      config.use_lap_graph
          ? privacy::LapGraph(g, config.dp_epsilon, config.seed ^ 0xd9ULL)
          : privacy::EdgeRand(g, config.dp_epsilon, config.seed ^ 0xd9ULL);
  return nn::GraphContext::Build(std::move(perturbed), env.dataset.data.features);
}

nn::GraphContext MakePpContext(const ExperimentEnv& env, nn::GnnModel* model,
                               double gamma, uint64_t seed) {
  const la::Matrix probs = model->PredictProbs(env.ctx);
  const std::vector<int> predicted = la::ArgmaxRows(probs);
  graph::Graph perturbed = privacy::AddHeterophilicEdges(env.dataset.data.graph,
                                                         predicted, gamma, seed);
  return nn::GraphContext::Build(std::move(perturbed), env.dataset.data.features);
}

FrOutput ComputeFr(nn::GnnModel* model, const ExperimentEnv& env,
                   const MethodConfig& config) {
  return ComputeFairnessWeights(model, env.ctx, env.train_nodes(), env.labels(),
                                env.similarity.laplacian, config.fr);
}

void Finetune(nn::GnnModel* model, const ExperimentEnv& env,
              const nn::GraphContext& ctx, const std::vector<double>& sample_weights,
              int epochs, const MethodConfig& config) {
  nn::TrainConfig finetune = config.train;
  finetune.epochs = epochs;
  finetune.lr = config.finetune_lr > 0.0 ? config.finetune_lr : config.train.lr;
  finetune.sample_weights = sample_weights;
  finetune.fairness_reg = 0.0;
  finetune.fairness_laplacian = nullptr;
  finetune.seed = config.seed ^ 0xf1eULL;
  nn::Train(model, ctx, env.train_nodes(), env.labels(), finetune);
}

MethodRun RunMethod(MethodKind method, nn::ModelKind model_kind,
                    const ExperimentEnv& env, const MethodConfig& config) {
  MethodRun run;
  const int finetune_epochs = std::max(
      1, static_cast<int>(std::lround(config.finetune_scale * config.train.epochs)));

  switch (method) {
    case MethodKind::kVanilla:
      run.model = TrainFresh(model_kind, env, env.ctx, config, /*lambda=*/0.0);
      break;
    case MethodKind::kReg:
      run.model = TrainFresh(model_kind, env, env.ctx, config, config.lambda);
      break;
    case MethodKind::kDpReg: {
      const nn::GraphContext dp_ctx = MakeDpContext(env, config);
      run.model = TrainFresh(model_kind, env, dp_ctx, config, config.lambda);
      break;
    }
    case MethodKind::kDpFr: {
      run.model = TrainFresh(model_kind, env, env.ctx, config, /*lambda=*/0.0);
      const FrOutput fr = ComputeFr(run.model.get(), env, config);
      run.fr_weights = fr.sample_weights;
      const nn::GraphContext dp_ctx = MakeDpContext(env, config);
      Finetune(run.model.get(), env, dp_ctx, fr.sample_weights, finetune_epochs,
               config);
      break;
    }
    case MethodKind::kPpFr: {
      run.model = TrainFresh(model_kind, env, env.ctx, config, /*lambda=*/0.0);
      const FrOutput fr = ComputeFr(run.model.get(), env, config);
      run.fr_weights = fr.sample_weights;
      const nn::GraphContext pp_ctx =
          MakePpContext(env, run.model.get(), config.pp_gamma, config.seed ^ 0x99ULL);
      Finetune(run.model.get(), env, pp_ctx, fr.sample_weights, finetune_epochs,
               config);
      break;
    }
  }
  run.eval = EvaluateModel(run.model.get(), env.Eval());
  return run;
}

}  // namespace ppfr::core

#include "core/methods.h"

#include <cmath>

#include "privacy/defense/edge_rand.h"
#include "privacy/defense/heterophilic_perturbation.h"
#include "privacy/defense/lap_graph.h"

namespace ppfr::core {

std::string MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kVanilla:
      return "Vanilla";
    case MethodKind::kReg:
      return "Reg";
    case MethodKind::kDpReg:
      return "DPReg";
    case MethodKind::kDpFr:
      return "DPFR";
    case MethodKind::kPpFr:
      return "PPFR";
  }
  return "?";
}

std::vector<MethodKind> ComparisonMethods() {
  return {MethodKind::kReg, MethodKind::kDpReg, MethodKind::kDpFr, MethodKind::kPpFr};
}

std::unique_ptr<nn::GnnModel> TrainFresh(nn::ModelKind model_kind,
                                         const ExperimentEnv& env,
                                         const nn::GraphContext& train_ctx,
                                         const MethodConfig& config, double lambda) {
  std::unique_ptr<nn::GnnModel> model =
      nn::MakeModel(model_kind, env.ctx.feature_dim(), env.dataset.data.num_classes,
                    config.seed);
  nn::TrainConfig train = config.train;
  if (lambda > 0.0) {
    train.fairness_reg = lambda;
    train.fairness_laplacian = env.similarity.laplacian;
  }
  nn::Train(model.get(), train_ctx, env.train_nodes(), env.labels(), train);
  return model;
}

nn::GraphContext MakeDpContext(const ExperimentEnv& env, const MethodConfig& config) {
  const graph::Graph& g = env.dataset.data.graph;
  graph::Graph perturbed =
      config.use_lap_graph
          ? privacy::LapGraph(g, config.dp_epsilon, config.seed ^ 0xd9ULL)
          : privacy::EdgeRand(g, config.dp_epsilon, config.seed ^ 0xd9ULL);
  return nn::GraphContext::Build(std::move(perturbed), env.dataset.data.features);
}

nn::GraphContext MakePpContext(const ExperimentEnv& env, nn::GnnModel* model,
                               double gamma, uint64_t seed) {
  const la::Matrix probs = model->PredictProbs(env.ctx);
  const std::vector<int> predicted = la::ArgmaxRows(probs);
  graph::Graph perturbed = privacy::AddHeterophilicEdges(env.dataset.data.graph,
                                                         predicted, gamma, seed);
  return nn::GraphContext::Build(std::move(perturbed), env.dataset.data.features);
}

FrOutput ComputeFr(nn::GnnModel* model, const ExperimentEnv& env,
                   const MethodConfig& config) {
  return ComputeFairnessWeights(model, env.ctx, env.train_nodes(), env.labels(),
                                env.similarity.laplacian, config.fr);
}

void Finetune(nn::GnnModel* model, const ExperimentEnv& env,
              const nn::GraphContext& ctx, const std::vector<double>& sample_weights,
              int epochs, const MethodConfig& config) {
  nn::TrainConfig finetune = config.train;
  finetune.epochs = epochs;
  finetune.lr = config.finetune_lr > 0.0 ? config.finetune_lr : config.train.lr;
  finetune.sample_weights = sample_weights;
  finetune.fairness_reg = 0.0;
  finetune.fairness_laplacian = nullptr;
  finetune.seed = config.seed ^ 0xf1eULL;
  nn::Train(model, ctx, env.train_nodes(), env.labels(), finetune);
}

int FinetuneEpochs(const MethodConfig& config) {
  if (config.finetune_epochs > 0) return config.finetune_epochs;
  return std::max(
      1, static_cast<int>(std::lround(config.finetune_scale * config.train.epochs)));
}

MethodRun RunMethod(MethodKind method, nn::ModelKind model_kind,
                    const ExperimentEnv& env, const MethodConfig& config,
                    StageCache* cache) {
  MethodRun run;
  const int finetune_epochs = FinetuneEpochs(config);

  // Stage accessors: through the cache when one is installed, recomputed
  // otherwise. Every stage is a deterministic function of (env identity,
  // model kind, config prefix), so the two paths are bitwise identical.
  const auto vanilla = [&]() -> std::unique_ptr<nn::GnnModel> {
    if (cache != nullptr) return cache->VanillaModel(model_kind, env, config);
    return TrainFresh(model_kind, env, env.ctx, config, /*lambda=*/0.0);
  };
  const auto fr_weights = [&](nn::GnnModel* model) -> std::shared_ptr<const FrOutput> {
    if (cache != nullptr) return cache->FrWeights(model_kind, env, config);
    return std::make_shared<const FrOutput>(ComputeFr(model, env, config));
  };
  const auto dp_context = [&]() -> std::shared_ptr<const nn::GraphContext> {
    if (cache != nullptr) return cache->DpContext(env, config);
    return std::make_shared<const nn::GraphContext>(MakeDpContext(env, config));
  };

  switch (method) {
    case MethodKind::kVanilla:
      run.model = vanilla();
      // The cached eval is the eval of the cached model; skip recomputing it.
      run.eval = cache != nullptr ? cache->VanillaEval(model_kind, env, config)
                                  : EvaluateModel(run.model.get(), env.Eval());
      return run;
    case MethodKind::kReg:
      run.model = TrainFresh(model_kind, env, env.ctx, config, config.lambda);
      break;
    case MethodKind::kDpReg: {
      const std::shared_ptr<const nn::GraphContext> dp_ctx = dp_context();
      run.model = TrainFresh(model_kind, env, *dp_ctx, config, config.lambda);
      break;
    }
    case MethodKind::kDpFr: {
      run.model = vanilla();
      const std::shared_ptr<const FrOutput> fr = fr_weights(run.model.get());
      run.fr_weights = fr->sample_weights;
      run.cg_total_rhs = fr->cg_total_rhs;
      run.cg_unconverged = fr->cg_unconverged;
      const std::shared_ptr<const nn::GraphContext> dp_ctx = dp_context();
      Finetune(run.model.get(), env, *dp_ctx, fr->sample_weights, finetune_epochs,
               config);
      break;
    }
    case MethodKind::kPpFr: {
      run.model = vanilla();
      const std::shared_ptr<const FrOutput> fr = fr_weights(run.model.get());
      run.fr_weights = fr->sample_weights;
      run.cg_total_rhs = fr->cg_total_rhs;
      run.cg_unconverged = fr->cg_unconverged;
      const std::shared_ptr<const nn::GraphContext> pp_ctx =
          cache != nullptr
              ? cache->PpContext(model_kind, env, config)
              : std::make_shared<const nn::GraphContext>(MakePpContext(
                    env, run.model.get(), config.pp_gamma, config.seed ^ 0x99ULL));
      Finetune(run.model.get(), env, *pp_ctx, fr->sample_weights, finetune_epochs,
               config);
      break;
    }
  }
  run.eval = EvaluateModel(run.model.get(), env.Eval());
  return run;
}

}  // namespace ppfr::core

#ifndef PPFR_CORE_METHODS_H_
#define PPFR_CORE_METHODS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppfr::core {

// The training pipelines compared in §VII:
//  - Vanilla: plain training (the Δ baseline, "w/o").
//  - Reg:     vanilla training + InFoRM fairness regulariser.
//  - DPReg:   edge-DP perturbed graph + regulariser, trained from scratch.
//  - DPFR:    vanilla training, then FR-reweighted fine-tune on the DP graph.
//  - PPFR:    vanilla training, then FR-reweighted fine-tune on the PP graph
//             (the paper's method).
enum class MethodKind { kVanilla, kReg, kDpReg, kDpFr, kPpFr };

std::string MethodName(MethodKind kind);

// The four methods compared against Vanilla in Tables IV/V and Figs 5/7.
std::vector<MethodKind> ComparisonMethods();

struct MethodRun {
  std::unique_ptr<nn::GnnModel> model;
  EvalResult eval;                   // always on the original graph
  std::vector<double> fr_weights;    // (1 + w), FR-based methods only
  // FR-based methods only: inverse-HVP solve health copied from the FrOutput
  // (how many CG right-hand sides ran / missed tolerance), surfaced per cell
  // as the `cg_unconverged` artifact metric.
  int cg_total_rhs = 0;
  int cg_unconverged = 0;
};

// Memoisation point for the expensive pipeline stages that methods share:
// the vanilla train (DPFR/PPFR resume from it instead of retraining), the
// DP/PP graph-context construction, and the FR solve. Implementations key
// entries by a content hash of (dataset id, env seed, model kind, and the
// stage-relevant MethodConfig prefix) so a hit is exactly the computation the
// cold path would have run — results are bitwise identical either way (every
// stage is a deterministic function of its key). runner::RunCache is the
// production implementation; nullptr means "no cache" and reproduces the
// historical train-from-scratch behaviour.
class StageCache {
 public:
  virtual ~StageCache() = default;

  // Clone of the stage-cached vanilla model for this cell (trained on miss).
  virtual std::unique_ptr<nn::GnnModel> VanillaModel(nn::ModelKind kind,
                                                     const ExperimentEnv& env,
                                                     const MethodConfig& config) = 0;
  // Evaluation of that vanilla model on the original graph.
  virtual EvalResult VanillaEval(nn::ModelKind kind, const ExperimentEnv& env,
                                 const MethodConfig& config) = 0;
  // Edge-DP perturbed context (EdgeRand / LapGraph, per config).
  virtual std::shared_ptr<const nn::GraphContext> DpContext(
      const ExperimentEnv& env, const MethodConfig& config) = 0;
  // Heterophilic-perturbation context guided by the vanilla model's
  // predictions (γ = config.pp_gamma).
  virtual std::shared_ptr<const nn::GraphContext> PpContext(
      nn::ModelKind kind, const ExperimentEnv& env, const MethodConfig& config) = 0;
  // FR reweighting solved against the vanilla model.
  virtual std::shared_ptr<const FrOutput> FrWeights(nn::ModelKind kind,
                                                    const ExperimentEnv& env,
                                                    const MethodConfig& config) = 0;
};

// Runs one full pipeline and evaluates it against the original graph. With a
// StageCache, shared stages (vanilla train, DP/PP contexts, the FR solve) are
// fetched from / deposited into the cache instead of recomputed per method.
MethodRun RunMethod(MethodKind method, nn::ModelKind model_kind,
                    const ExperimentEnv& env, const MethodConfig& config,
                    StageCache* cache = nullptr);

// Fine-tune epoch count for a config: the explicit override when set,
// otherwise finetune_scale · train.epochs (at least 1).
int FinetuneEpochs(const MethodConfig& config);

// ---- Pipeline primitives (exposed for the ablation bench / examples) ----

// Vanilla (or Reg when lambda > 0) training of a fresh model.
std::unique_ptr<nn::GnnModel> TrainFresh(nn::ModelKind model_kind,
                                         const ExperimentEnv& env,
                                         const nn::GraphContext& train_ctx,
                                         const MethodConfig& config, double lambda);

// Applies the configured edge-DP mechanism to the original graph.
nn::GraphContext MakeDpContext(const ExperimentEnv& env, const MethodConfig& config);

// Applies the paper's privacy-aware perturbation guided by `model`'s
// predictions, with the given γ.
nn::GraphContext MakePpContext(const ExperimentEnv& env, nn::GnnModel* model,
                               double gamma, uint64_t seed);

// FR weights for `model` computed on the original context.
FrOutput ComputeFr(nn::GnnModel* model, const ExperimentEnv& env,
                   const MethodConfig& config);

// Continues training `model` on `ctx` for `epochs` with per-node weights.
void Finetune(nn::GnnModel* model, const ExperimentEnv& env,
              const nn::GraphContext& ctx, const std::vector<double>& sample_weights,
              int epochs, const MethodConfig& config);

}  // namespace ppfr::core

#endif  // PPFR_CORE_METHODS_H_

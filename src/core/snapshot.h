#ifndef PPFR_CORE_SNAPSHOT_H_
#define PPFR_CORE_SNAPSHOT_H_

#include "common/serialize.h"
#include "core/methods.h"

namespace ppfr::core {

// Snapshot/restore hooks for the stage-level run cache's disk persistence
// (runner::CacheStore): each expensive pipeline stage serialises to a flat
// binary payload and restores bitwise-identically. Loaders return false on
// any structural mismatch or truncation — the cache treats that as a miss
// and recomputes; they never crash on corrupt bytes.

// ---- Evaluation scorecards ----
void SaveEval(BinaryWriter* w, const EvalResult& eval);
bool LoadEval(BinaryReader* r, EvalResult* eval);

// ---- FR solve results ----
void SaveFrOutput(BinaryWriter* w, const FrOutput& fr);
bool LoadFrOutput(BinaryReader* r, FrOutput* fr);

// ---- Perturbed graph contexts (DP / PP stages) ----
// Only the edited graph structure is persisted (canonical edge list); the
// feature matrix is the environment's own and the propagation operators are
// deterministic functions of (graph, features), so the restore path rebuilds
// via GraphContext::Build and lands on bitwise-identical operators.
void SaveGraphStructure(BinaryWriter* w, const graph::Graph& g);
bool LoadGraphContext(BinaryReader* r, const la::Matrix& features,
                      nn::GraphContext* ctx);

// ---- Trained models ----
// A fresh architecture-matched model is constructed (MakeModel — the random
// init is fully overwritten) and its parameters loaded.
void SaveModel(BinaryWriter* w, nn::GnnModel* model);
std::unique_ptr<nn::GnnModel> LoadModel(BinaryReader* r, nn::ModelKind kind,
                                        const ExperimentEnv& env, uint64_t seed);

// ---- Whole method runs (the cell stage) ----
void SaveMethodRun(BinaryWriter* w, const MethodRun& run);
bool LoadMethodRun(BinaryReader* r, nn::ModelKind kind, const ExperimentEnv& env,
                   uint64_t seed, MethodRun* run);

}  // namespace ppfr::core

#endif  // PPFR_CORE_SNAPSHOT_H_

#ifndef PPFR_CORE_METRICS_H_
#define PPFR_CORE_METRICS_H_

#include <memory>
#include <vector>

#include "la/csr_matrix.h"
#include "nn/models.h"
#include "privacy/attack/link_stealing.h"

namespace ppfr::core {

// Trustworthiness scorecard of one trained model, always measured against the
// ORIGINAL graph: test accuracy, InFoRM bias (lower = fairer), link-stealing
// mean AUC (lower = more private) and the Δd statistic of Definition 2.
struct EvalResult {
  double accuracy = 0.0;
  double bias = 0.0;
  double risk_auc = 0.0;
  double delta_d = 0.0;
  privacy::AttackResult attack;
};

// Inputs required to evaluate any model produced by any method.
struct EvalInputs {
  const nn::GraphContext* ctx = nullptr;  // original context
  const std::vector<int>* labels = nullptr;
  const std::vector<int>* test_nodes = nullptr;
  std::shared_ptr<const la::CsrMatrix> laplacian;  // L_S of the original graph
  const privacy::PairSample* pairs = nullptr;      // true-edge attack pairs
};

EvalResult EvaluateModel(nn::GnnModel* model, const EvalInputs& inputs);

// Relative changes vs the vanilla model and the combined metric of Eq. 22:
//   Δ(x) = (method.x - vanilla.x) / vanilla.x,   Δ = Δbias·Δrisk / |Δacc|.
struct DeltaMetrics {
  double d_acc = 0.0;
  double d_bias = 0.0;
  double d_risk = 0.0;
  double combined = 0.0;
};

DeltaMetrics ComputeDeltas(const EvalResult& method, const EvalResult& vanilla);

}  // namespace ppfr::core

#endif  // PPFR_CORE_METRICS_H_

#include "core/metrics.h"

#include <cmath>

#include "fairness/bias_metric.h"
#include "nn/trainer.h"
#include "privacy/risk_metric.h"

namespace ppfr::core {

EvalResult EvaluateModel(nn::GnnModel* model, const EvalInputs& inputs) {
  PPFR_CHECK(inputs.ctx != nullptr);
  PPFR_CHECK(inputs.labels != nullptr);
  PPFR_CHECK(inputs.test_nodes != nullptr);
  PPFR_CHECK(inputs.laplacian != nullptr);
  PPFR_CHECK(inputs.pairs != nullptr);

  EvalResult result;
  const la::Matrix logits = model->Logits(*inputs.ctx);
  const la::Matrix probs = la::SoftmaxRows(logits);
  result.accuracy = nn::Accuracy(logits, *inputs.labels, *inputs.test_nodes);
  result.bias = fairness::Bias(probs, *inputs.laplacian);
  result.attack = privacy::LinkStealingAttack(probs, *inputs.pairs);
  result.risk_auc = result.attack.mean_auc;
  result.delta_d = privacy::DeltaD(probs, *inputs.pairs, privacy::DistanceKind::kCosine);
  return result;
}

DeltaMetrics ComputeDeltas(const EvalResult& method, const EvalResult& vanilla) {
  auto ratio = [](double now, double base) {
    if (base == 0.0) return 0.0;
    return (now - base) / base;
  };
  DeltaMetrics d;
  d.d_acc = ratio(method.accuracy, vanilla.accuracy);
  d.d_bias = ratio(method.bias, vanilla.bias);
  d.d_risk = ratio(method.risk_auc, vanilla.risk_auc);
  const double denom = std::max(std::fabs(d.d_acc), 1e-6);
  d.combined = d.d_bias * d.d_risk / denom;
  return d;
}

}  // namespace ppfr::core

#ifndef PPFR_CORE_FR_H_
#define PPFR_CORE_FR_H_

#include <memory>
#include <vector>

#include "influence/influence.h"
#include "la/csr_matrix.h"
#include "nn/models.h"

namespace ppfr::core {

// Fairness-aware re-weighting (§VI-B1): after vanilla training, find per-node
// loss weights w ∈ [-1,1]^|Vl| by the QCLP of Eq. 13 —
//   min Σ_v w_v I_fbias(w_v)   s.t. ‖w‖² ≤ α|Vl|,
//   Σ_v w_v I_futil(w_v) ≤ β Σ I⁺_futil(w_v),  -1 ≤ w_v ≤ 1 —
// then fine-tune with per-node weights (1 + w_v).
struct FrConfig {
  double alpha = 0.9;
  double beta = 0.1;
  // Restrict the QCLP to zero-sum reweightings (Σw = 0). Keeps the total
  // loss mass fixed so the solver redistributes weight instead of globally
  // shrinking it; markedly better bias/accuracy trade on the synthetic
  // benchmarks (ablated in bench_fig6_ablation).
  bool zero_sum = true;
  influence::InfluenceConfig influence;
};

struct FrOutput {
  std::vector<double> w;                // solution, aligned with train nodes
  std::vector<double> sample_weights;   // 1 + w (ready for TrainConfig)
  std::vector<double> bias_influence;   // I_fbias(w_v)
  std::vector<double> util_influence;   // I_futil(w_v)
  double objective = 0.0;
  // Inverse-HVP solve health behind the influences: how many CG right-hand
  // sides the solve processed and how many of those missed the residual
  // tolerance. Surfaced per cell as the `cg_unconverged` artifact metric so
  // sweeps flag silently-degraded solves.
  int cg_total_rhs = 0;
  int cg_unconverged = 0;
};

FrOutput ComputeFairnessWeights(nn::GnnModel* model, const nn::GraphContext& ctx,
                                const std::vector<int>& train_nodes,
                                const std::vector<int>& labels,
                                const std::shared_ptr<const la::CsrMatrix>& laplacian,
                                const FrConfig& config);

}  // namespace ppfr::core

#endif  // PPFR_CORE_FR_H_

#include "core/fr.h"

#include <utility>

#include "solver/qclp.h"

namespace ppfr::core {

FrOutput ComputeFairnessWeights(nn::GnnModel* model, const nn::GraphContext& ctx,
                                const std::vector<int>& train_nodes,
                                const std::vector<int>& labels,
                                const std::shared_ptr<const la::CsrMatrix>& laplacian,
                                const FrConfig& config) {
  // Cell-scoped warm-pool cache: every influence consumer in this FR compute
  // (the shared-forward TapePool, the fused probe GradLanePool) shares one
  // set of warm pools instead of rebuilding them per use-site.
  influence::ReplayCache replay_cache;
  influence::InfluenceConfig influence_config = config.influence;
  influence_config.replay_cache = &replay_cache;
  influence::InfluenceCalculator calculator(model, ctx, train_nodes, labels,
                                            influence_config);
  FrOutput out;
  // Bias and utility influences share one 2-RHS block inverse-HVP solve (and
  // the batched -SᵀG contraction) instead of two independent CG chains; with
  // influence.cg_block = 1 this reduces to the single-RHS oracle per column.
  std::vector<std::vector<double>> batched = calculator.InfluenceOnFunctions(
      {influence::InfluenceCalculator::BiasFunction(laplacian),
       calculator.UtilityFunction()});
  out.bias_influence = std::move(batched[0]);
  out.util_influence = std::move(batched[1]);
  const influence::BlockSolveStats& solve_stats = calculator.block_stats();
  out.cg_total_rhs = solve_stats.total_rhs;
  out.cg_unconverged = solve_stats.total_rhs - solve_stats.converged_rhs;

  // Sign bookkeeping. By the implicit function theorem dθ*/dw_v = -H⁻¹∇L_v,
  // so df/dw_v = -∇fᵀH⁻¹∇L_v — which is exactly what the calculator returns
  // (n·df/dw_v up to the positive 1/|Vl| loss normalisation). The QCLP
  // objective Σ_v w_v·I_f(v) therefore IS the predicted change of f under the
  // reweighting, matching Eq. 13's intent of minimising the resulting bias.
  // (The paper's Eq. 9 drops the IFT minus sign and its Eq. 13 re-uses that
  // convention; the two slips cancel, and this orientation is the one that
  // empirically debiases — see tests/core_test.cc.)
  solver::QclpProblem problem;
  problem.objective = out.bias_influence;
  problem.ball_radius_sq = config.alpha * static_cast<double>(train_nodes.size());
  problem.halfspace_u = out.util_influence;
  // Utility budget: the predicted loss increase may not exceed β times the
  // total predicted increase over all loss-harming directions.
  double positive_util = 0.0;
  for (double u : out.util_influence) {
    if (u > 0.0) positive_util += u;
  }
  problem.halfspace_offset = config.beta * positive_util;
  problem.zero_sum = config.zero_sum;

  const solver::QclpResult solution = solver::SolveQclp(problem);
  out.w = solution.w;
  out.objective = solution.objective_value;
  out.sample_weights.reserve(out.w.size());
  for (double w : out.w) out.sample_weights.push_back(1.0 + w);
  return out;
}

}  // namespace ppfr::core

#include "core/snapshot.h"

#include "nn/param_io.h"

namespace ppfr::core {

void SaveEval(BinaryWriter* w, const EvalResult& eval) {
  w->WriteDouble(eval.accuracy);
  w->WriteDouble(eval.bias);
  w->WriteDouble(eval.risk_auc);
  w->WriteDouble(eval.delta_d);
  w->WriteDoubleVec(eval.attack.auc_per_distance);
  w->WriteDouble(eval.attack.mean_auc);
  w->WriteDouble(eval.attack.cluster_precision);
  w->WriteDouble(eval.attack.cluster_recall);
  w->WriteDouble(eval.attack.cluster_f1);
  w->WriteDouble(eval.attack.cluster_accuracy);
}

bool LoadEval(BinaryReader* r, EvalResult* eval) {
  eval->accuracy = r->ReadDouble();
  eval->bias = r->ReadDouble();
  eval->risk_auc = r->ReadDouble();
  eval->delta_d = r->ReadDouble();
  eval->attack.auc_per_distance = r->ReadDoubleVec();
  eval->attack.mean_auc = r->ReadDouble();
  eval->attack.cluster_precision = r->ReadDouble();
  eval->attack.cluster_recall = r->ReadDouble();
  eval->attack.cluster_f1 = r->ReadDouble();
  eval->attack.cluster_accuracy = r->ReadDouble();
  return r->ok();
}

void SaveFrOutput(BinaryWriter* w, const FrOutput& fr) {
  w->WriteDoubleVec(fr.w);
  w->WriteDoubleVec(fr.sample_weights);
  w->WriteDoubleVec(fr.bias_influence);
  w->WriteDoubleVec(fr.util_influence);
  w->WriteDouble(fr.objective);
  w->WriteI32(fr.cg_total_rhs);
  w->WriteI32(fr.cg_unconverged);
}

bool LoadFrOutput(BinaryReader* r, FrOutput* fr) {
  fr->w = r->ReadDoubleVec();
  fr->sample_weights = r->ReadDoubleVec();
  fr->bias_influence = r->ReadDoubleVec();
  fr->util_influence = r->ReadDoubleVec();
  fr->objective = r->ReadDouble();
  fr->cg_total_rhs = r->ReadI32();
  fr->cg_unconverged = r->ReadI32();
  return r->ok();
}

void SaveGraphStructure(BinaryWriter* w, const graph::Graph& g) {
  w->WriteI32(g.num_nodes());
  w->WriteU64(static_cast<uint64_t>(g.num_edges()));
  for (const graph::Edge& e : g.Edges()) {
    w->WriteI32(e.u);
    w->WriteI32(e.v);
  }
}

bool LoadGraphContext(BinaryReader* r, const la::Matrix& features,
                      nn::GraphContext* ctx) {
  const int num_nodes = r->ReadI32();
  const uint64_t num_edges = r->ReadU64();
  if (!r->ok() || num_nodes < 0 || num_nodes != features.rows()) return false;
  // Each edge is 8 payload bytes; a count beyond the remaining stream is
  // corruption, and bounding it BEFORE reserve() keeps a garbage prefix
  // from triggering a pathological allocation (same rule as ReadDoubleVec).
  if (num_edges > r->remaining() / 8) return false;
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges));
  for (uint64_t i = 0; i < num_edges; ++i) {
    graph::Edge e{r->ReadI32(), r->ReadI32()};
    if (!r->ok()) return false;
    if (e.u < 0 || e.u >= num_nodes || e.v < 0 || e.v >= num_nodes) return false;
    edges.push_back(e);
  }
  *ctx = nn::GraphContext::Build(graph::Graph::FromEdges(num_nodes, edges),
                                 features);
  return true;
}

void SaveModel(BinaryWriter* w, nn::GnnModel* model) {
  nn::SaveParams(w, model->Params());
}

std::unique_ptr<nn::GnnModel> LoadModel(BinaryReader* r, nn::ModelKind kind,
                                        const ExperimentEnv& env, uint64_t seed) {
  std::unique_ptr<nn::GnnModel> model = nn::MakeModel(
      kind, env.ctx.feature_dim(), env.dataset.data.num_classes, seed);
  if (!nn::LoadParams(r, model->Params())) return nullptr;
  return model;
}

void SaveMethodRun(BinaryWriter* w, const MethodRun& run) {
  SaveModel(w, run.model.get());
  SaveEval(w, run.eval);
  w->WriteDoubleVec(run.fr_weights);
  w->WriteI32(run.cg_total_rhs);
  w->WriteI32(run.cg_unconverged);
}

bool LoadMethodRun(BinaryReader* r, nn::ModelKind kind, const ExperimentEnv& env,
                   uint64_t seed, MethodRun* run) {
  run->model = LoadModel(r, kind, env, seed);
  if (run->model == nullptr) return false;
  if (!LoadEval(r, &run->eval)) return false;
  run->fr_weights = r->ReadDoubleVec();
  run->cg_total_rhs = r->ReadI32();
  run->cg_unconverged = r->ReadI32();
  return r->ok();
}

}  // namespace ppfr::core

#ifndef PPFR_CORE_EXPERIMENT_H_
#define PPFR_CORE_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "core/fr.h"
#include "core/metrics.h"
#include "data/datasets.h"
#include "fairness/bias_metric.h"
#include "nn/graph_context.h"
#include "nn/trainer.h"
#include "privacy/attack/pair_sampler.h"

namespace ppfr::core {

// Everything one dataset's experiments share: the generated data, the
// original-graph context and similarity structures, and the attack pairs
// (always sampled against the TRUE edges).
struct ExperimentEnv {
  // Identity of the environment — MakeEnv is deterministic in (id, env_seed),
  // so these two fields name the content of everything below. The runner's
  // stage cache folds them into its content-hash keys.
  data::DatasetId id = data::DatasetId::kCoraLike;
  uint64_t env_seed = 0;

  data::Dataset dataset;
  nn::GraphContext ctx;
  fairness::SimilarityContext similarity;
  privacy::PairSample attack_pairs;

  const std::vector<int>& labels() const { return dataset.data.labels; }
  const std::vector<int>& train_nodes() const { return dataset.split.train; }
  const std::vector<int>& test_nodes() const { return dataset.split.test; }

  EvalInputs Eval() const;
};

// Builds the environment for a dataset. Deterministic in (id, seed).
ExperimentEnv MakeEnv(data::DatasetId id, uint64_t seed);

// Configuration of one method run — shared by all benches so every table and
// figure reports the same underlying pipelines.
struct MethodConfig {
  nn::TrainConfig train;      // vanilla-phase schedule
  double lambda = 5e-3;       // fairness-regulariser weight (Reg / DPReg)
  double dp_epsilon = 4.0;    // edge-DP budget
  bool use_lap_graph = false; // LapGraph instead of EdgeRand (larger graphs)
  double pp_gamma = 0.5;      // PP heterophilic edge ratio γ
  double finetune_scale = 0.2;  // s, fine-tune epochs = s · vanilla epochs
  int finetune_epochs = 0;    // > 0 pins the epoch count, ignoring the scale
  double finetune_lr = 5e-3;
  FrConfig fr;
  uint64_t seed = 7;
};

// Paper-matched defaults per dataset/model (single source of truth for the
// bench harnesses; see EXPERIMENTS.md for the values).
MethodConfig DefaultMethodConfig(data::DatasetId id, nn::ModelKind kind);

// Default environment seed used across benches.
inline constexpr uint64_t kDefaultEnvSeed = 20240610;

}  // namespace ppfr::core

#endif  // PPFR_CORE_EXPERIMENT_H_

#include "core/experiment.h"

namespace ppfr::core {
namespace {
constexpr int kAttackPairsPerClass = 2000;
}  // namespace

EvalInputs ExperimentEnv::Eval() const {
  EvalInputs inputs;
  inputs.ctx = &ctx;
  inputs.labels = &dataset.data.labels;
  inputs.test_nodes = &dataset.split.test;
  inputs.laplacian = similarity.laplacian;
  inputs.pairs = &attack_pairs;
  return inputs;
}

ExperimentEnv MakeEnv(data::DatasetId id, uint64_t seed) {
  ExperimentEnv env;
  env.id = id;
  env.env_seed = seed;
  env.dataset = data::LoadDataset(id, seed);
  env.ctx = nn::GraphContext::Build(env.dataset.data.graph, env.dataset.data.features);
  env.similarity = fairness::SimilarityContext::FromGraph(env.dataset.data.graph);
  env.attack_pairs =
      privacy::SamplePairs(env.dataset.data.graph, kAttackPairsPerClass, seed ^ 0xa77acc);
  return env;
}

MethodConfig DefaultMethodConfig(data::DatasetId id, nn::ModelKind kind) {
  MethodConfig cfg;
  cfg.train.epochs = 150;
  cfg.train.lr = 0.01;
  cfg.train.weight_decay = 5e-4;
  cfg.train.sage_fanout = 5;
  cfg.finetune_scale = 0.2;
  cfg.finetune_lr = 1e-3;
  cfg.pp_gamma = 0.5;
  cfg.dp_epsilon = 4.0;
  cfg.lambda = 3e-4;

  // LapGraph on the largest graph, as in the paper (EdgeRand elsewhere).
  cfg.use_lap_graph = id == data::DatasetId::kPubmedLike;

  switch (id) {
    case data::DatasetId::kCoraLike:
      cfg.lambda = 3e-4;
      break;
    case data::DatasetId::kCiteseerLike:
      cfg.lambda = 3e-4;
      break;
    case data::DatasetId::kPubmedLike:
      cfg.lambda = 6e-5;
      break;
    case data::DatasetId::kEnzymesLike:
      cfg.lambda = 3e-4;
      break;
    case data::DatasetId::kCreditLike:
      cfg.lambda = 2e-4;
      break;
  }
  if (kind == nn::ModelKind::kGat) {
    cfg.train.lr = 0.01;
    cfg.finetune_scale = 0.25;
  }
  if (kind == nn::ModelKind::kGraphSage) {
    cfg.finetune_scale = 0.25;
  }
  return cfg;
}

}  // namespace ppfr::core

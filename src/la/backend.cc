#include "la/backend.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"

namespace ppfr::la {
namespace {

// ---------------------------------------------------------------------------
// Naive kernels. These are the original seed loops, kept verbatim: they are
// the ReferenceBackend (correctness oracle) and the small-problem fallback of
// the ParallelBackend, where blocking/packing overhead would dominate.
// ---------------------------------------------------------------------------

void NaiveGemm(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Zero();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (int i = 0; i < a.rows(); ++i) {
    double* out_row = out->row(i);
    const double* a_row = a.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      const double* b_row = b.row(k);
      for (int j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void NaiveGemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Zero();
  for (int k = 0; k < a.rows(); ++k) {
    const double* a_row = a.row(k);
    const double* b_row = b.row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* out_row = out->row(i);
      for (int j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
}

void NaiveGemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  for (int i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i);
    double* out_row = out->row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row(j);
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a_row[k] * b_row[k];
      out_row[j] = s;
    }
  }
}

void NaiveTranspose(const Matrix& a, Matrix* out) {
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) (*out)(c, r) = a(r, c);
  }
}

void NaiveSpmmAccumRows(const CsrMatrix& a, const Matrix& x, double alpha, Matrix* out,
                        int64_t row_begin, int64_t row_end) {
  const int n = x.cols();
  const std::vector<int64_t>& row_ptr = a.row_ptr();
  const std::vector<int>& col_idx = a.col_idx();
  const std::vector<double>& values = a.values();
  for (int64_t r = row_begin; r < row_end; ++r) {
    double* out_row = out->row(static_cast<int>(r));
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double w = alpha * values[k];
      const double* x_row = x.row(col_idx[k]);
      for (int j = 0; j < n; ++j) out_row[j] += w * x_row[j];
    }
  }
}

// ---------------------------------------------------------------------------
// ReferenceBackend
// ---------------------------------------------------------------------------

class ReferenceBackend final : public Backend {
 public:
  std::string name() const override { return "reference"; }

  void Gemm(const Matrix& a, const Matrix& b, Matrix* out) const override {
    NaiveGemm(a, b, out);
  }
  void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) const override {
    NaiveGemmTransA(a, b, out);
  }
  void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) const override {
    NaiveGemmTransB(a, b, out);
  }
  void Transpose(const Matrix& a, Matrix* out) const override {
    NaiveTranspose(a, out);
  }
  void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out->data();
    for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
  }
  void SpmmAccum(const CsrMatrix& a, const Matrix& x, double alpha,
                 Matrix* out) const override {
    NaiveSpmmAccumRows(a, x, alpha, out, 0, a.rows());
  }
  void Apply(int64_t n, int64_t grain,
             const std::function<void(int64_t, int64_t)>& fn) const override {
    (void)grain;
    if (n > 0) fn(0, n);
  }
  double VDot(const double* a, const double* b, int64_t n) const override {
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  }
  void VAxpy(double alpha, const double* x, double* y, int64_t n) const override {
    for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  }
  void VScale(double alpha, double* x, int64_t n) const override {
    for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
  }
};

// ---------------------------------------------------------------------------
// ParallelBackend: cache-blocked GEMM with packed operands (GEBP scheme) and
// row-partitioned sparse/elementwise kernels on a shared thread pool.
//
// Determinism: for a fixed problem the floating-point summation order is
// independent of the thread count — GEMM assigns each output tile to exactly
// one thread and walks k in ascending panel order, SpMM partitions disjoint
// rows, and reductions sum fixed-size block partials in block order.
// ---------------------------------------------------------------------------

// Register micro-tile (MR x NR accumulators) and cache panels: an MC x KC
// packed panel of A lives in L2, a KC x NR sliver of packed B streams from
// L1, and the KC x NC packed B panel sits in L3.
constexpr int kMr = 4;
constexpr int kNr = 8;
constexpr int kMc = 64;
constexpr int kKc = 256;
constexpr int kNc = 2048;

// Below these sizes the naive loops win (no packing / dispatch overhead).
constexpr int64_t kGemmSerialCutoff = 32 * 1024;   // m*n*k
constexpr int64_t kElementwiseCutoff = 32 * 1024;  // flat elements
constexpr int64_t kSpmmWorkCutoff = 32 * 1024;     // nnz * x.cols()
constexpr int64_t kReduceBlock = 4096;             // deterministic partial sums

int64_t RoundUp(int64_t v, int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

class ParallelBackend final : public Backend {
 public:
  explicit ParallelBackend(int num_threads) : pool_(num_threads) {}

  std::string name() const override { return "parallel"; }
  int num_threads() const override { return pool_.num_threads(); }

  void Gemm(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const int m = a.rows(), k = a.cols(), n = b.cols();
    const int64_t work = static_cast<int64_t>(m) * n * k;
    if (work < kGemmSerialCutoff || n < kNr || k < 8) {
      NaiveGemm(a, b, out);
      return;
    }
    BlockedGemm(a, b, out);
  }

  void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const int64_t work = static_cast<int64_t>(a.cols()) * b.cols() * a.rows();
    if (work < kGemmSerialCutoff || b.cols() < kNr || a.rows() < 8) {
      NaiveGemmTransA(a, b, out);
      return;
    }
    // aᵀ·b via an explicit transpose; the packed-GEMM throughput dwarfs the
    // one extra pass over a.
    Matrix at(a.cols(), a.rows());
    Transpose(a, &at);
    BlockedGemm(at, b, out);
  }

  void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const int64_t work = static_cast<int64_t>(a.rows()) * b.rows() * a.cols();
    if (work < kGemmSerialCutoff || b.rows() < kNr || a.cols() < 8) {
      NaiveGemmTransB(a, b, out);
      return;
    }
    Matrix bt(b.cols(), b.rows());
    Transpose(b, &bt);
    BlockedGemm(a, bt, out);
  }

  void Transpose(const Matrix& a, Matrix* out) const override {
    constexpr int kTile = 32;
    if (a.size() < kElementwiseCutoff) {
      NaiveTranspose(a, out);
      return;
    }
    const int rows = a.rows(), cols = a.cols();
    const int64_t row_tiles = (rows + kTile - 1) / kTile;
    pool_.ParallelFor(0, row_tiles, 1, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        const int r0 = static_cast<int>(t) * kTile;
        const int r1 = std::min(rows, r0 + kTile);
        for (int c0 = 0; c0 < cols; c0 += kTile) {
          const int c1 = std::min(cols, c0 + kTile);
          for (int r = r0; r < r1; ++r) {
            for (int c = c0; c < c1; ++c) (*out)(c, r) = a(r, c);
          }
        }
      }
    });
  }

  void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out->data();
    pool_.ParallelFor(0, a.size(), kElementwiseCutoff, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
    });
  }

  void SpmmAccum(const CsrMatrix& a, const Matrix& x, double alpha,
                 Matrix* out) const override {
    const int64_t work = a.nnz() * x.cols();
    if (work < kSpmmWorkCutoff || a.rows() == 0) {
      NaiveSpmmAccumRows(a, x, alpha, out, 0, a.rows());
      return;
    }
    // nnz-balanced row partition: chunk boundaries are chosen on cumulative
    // nnz (row_ptr is already the prefix sum), so a handful of high-degree
    // rows in a power-law graph can't serialise one chunk while the rest sit
    // idle. Each chunk still owns a disjoint, contiguous output-row range
    // and walks it in row order, so results are independent of both the
    // chunk count and the thread assignment.
    const int64_t num_chunks = std::min<int64_t>(
        pool_.num_threads(), std::max<int64_t>(1, work / kSpmmWorkCutoff));
    if (num_chunks <= 1) {
      NaiveSpmmAccumRows(a, x, alpha, out, 0, a.rows());
      return;
    }
    const std::vector<int64_t> bounds =
        NnzBalancedRowBounds(a.row_ptr(), a.rows(), num_chunks);
    pool_.ParallelFor(0, num_chunks, 1, [&](int64_t c0, int64_t c1) {
      for (int64_t c = c0; c < c1; ++c) {
        NaiveSpmmAccumRows(a, x, alpha, out, bounds[static_cast<size_t>(c)],
                           bounds[static_cast<size_t>(c + 1)]);
      }
    });
  }

  void Apply(int64_t n, int64_t grain,
             const std::function<void(int64_t, int64_t)>& fn) const override {
    pool_.ParallelFor(0, n, std::max<int64_t>(grain, 1), fn);
  }

  double VDot(const double* a, const double* b, int64_t n) const override {
    if (n < kElementwiseCutoff) {
      double s = 0.0;
      for (int64_t i = 0; i < n; ++i) s += a[i] * b[i];
      return s;
    }
    // Fixed-size block partials summed in block order: the result does not
    // depend on how blocks were assigned to threads.
    const int64_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
    std::vector<double> partial(static_cast<size_t>(num_blocks), 0.0);
    pool_.ParallelFor(0, num_blocks, 4, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        const int64_t lo = blk * kReduceBlock;
        const int64_t hi = std::min(n, lo + kReduceBlock);
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i) s += a[i] * b[i];
        partial[static_cast<size_t>(blk)] = s;
      }
    });
    double s = 0.0;
    for (double p : partial) s += p;
    return s;
  }

  void VAxpy(double alpha, const double* x, double* y, int64_t n) const override {
    pool_.ParallelFor(0, n, kElementwiseCutoff, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
    });
  }

  void VScale(double alpha, double* x, int64_t n) const override {
    pool_.ParallelFor(0, n, kElementwiseCutoff, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) x[i] *= alpha;
    });
  }

 private:
  // GEBP-blocked GEMM. B panels are packed transposed into NR-wide, k-major
  // slivers (so the micro-kernel streams both operands with unit stride), A
  // panels into MR-wide k-major slivers; both are zero-padded to full tiles
  // so the register kernel never branches on edges.
  void BlockedGemm(const Matrix& a, const Matrix& b, Matrix* out) const {
    const int m = a.rows(), k = a.cols(), n = b.cols();
    out->Zero();
    if (m == 0 || n == 0 || k == 0) return;

    std::vector<double> bpack;
    for (int jc = 0; jc < n; jc += kNc) {
      const int nc = std::min(kNc, n - jc);
      const int ncp = static_cast<int>(RoundUp(nc, kNr));
      for (int kc = 0; kc < k; kc += kKc) {
        const int kb = std::min(kKc, k - kc);
        bpack.assign(static_cast<size_t>(kb) * ncp, 0.0);
        for (int p = 0; p < ncp / kNr; ++p) {
          double* dst = bpack.data() + static_cast<size_t>(p) * kb * kNr;
          const int valid = std::min(kNr, nc - p * kNr);
          for (int kk = 0; kk < kb; ++kk) {
            const double* b_row = b.row(kc + kk) + jc + p * kNr;
            for (int j = 0; j < valid; ++j) dst[kk * kNr + j] = b_row[j];
          }
        }

        const int64_t num_ic_blocks = (m + kMc - 1) / kMc;
        const int64_t num_p_panels = ncp / kNr;
        if (num_ic_blocks >= pool_.num_threads() || num_ic_blocks >= num_p_panels) {
          // Tall m: partition row blocks across threads, each packing its own
          // A panels.
          pool_.ParallelFor(0, num_ic_blocks, 1, [&](int64_t blk0, int64_t blk1) {
            std::vector<double> apack;
            for (int64_t blk = blk0; blk < blk1; ++blk) {
              const int ic = static_cast<int>(blk) * kMc;
              const int mc = std::min(kMc, m - ic);
              const int mcp = PackA(a, ic, mc, kc, kb, &apack);
              for (int p = 0; p < num_p_panels; ++p) {
                const double* bp = bpack.data() + static_cast<size_t>(p) * kb * kNr;
                const int nr = std::min(kNr, nc - p * kNr);
                for (int q = 0; q < mcp / kMr; ++q) {
                  const double* ap = apack.data() + static_cast<size_t>(q) * kb * kMr;
                  MicroKernel(ap, bp, kb, out, ic + q * kMr,
                              std::min(kMr, mc - q * kMr), jc + p * kNr, nr);
                }
              }
            }
          });
        } else {
          // Skinny m (fewer row blocks than threads, e.g. weight-gradient
          // GEMMs where m is a hidden width): pack A once and partition the
          // B column panels across threads instead — each thread owns a
          // disjoint column range of out.
          std::vector<double> apack;
          for (int64_t blk = 0; blk < num_ic_blocks; ++blk) {
            const int ic = static_cast<int>(blk) * kMc;
            const int mc = std::min(kMc, m - ic);
            const int mcp = PackA(a, ic, mc, kc, kb, &apack);
            pool_.ParallelFor(0, num_p_panels, 1, [&](int64_t p0, int64_t p1) {
              for (int64_t p = p0; p < p1; ++p) {
                const double* bp = bpack.data() + static_cast<size_t>(p) * kb * kNr;
                const int nr = std::min(kNr, nc - static_cast<int>(p) * kNr);
                for (int q = 0; q < mcp / kMr; ++q) {
                  const double* ap = apack.data() + static_cast<size_t>(q) * kb * kMr;
                  MicroKernel(ap, bp, kb, out, ic + q * kMr,
                              std::min(kMr, mc - q * kMr),
                              jc + static_cast<int>(p) * kNr, nr);
                }
              }
            });
          }
        }
      }
    }
  }

  // Packs the (ic, kc) panel of A into MR-wide k-major slivers, zero-padded
  // to full tiles. Returns the padded row count mcp.
  static int PackA(const Matrix& a, int ic, int mc, int kc, int kb,
                   std::vector<double>* apack) {
    const int mcp = static_cast<int>(RoundUp(mc, kMr));
    apack->assign(static_cast<size_t>(kb) * mcp, 0.0);
    for (int q = 0; q < mcp / kMr; ++q) {
      double* dst = apack->data() + static_cast<size_t>(q) * kb * kMr;
      const int valid = std::min(kMr, mc - q * kMr);
      for (int ir = 0; ir < valid; ++ir) {
        const double* a_row = a.row(ic + q * kMr + ir) + kc;
        for (int kk = 0; kk < kb; ++kk) dst[kk * kMr + ir] = a_row[kk];
      }
    }
    return mcp;
  }

  // out[i0:i0+mr, j0:j0+nr] += Apack(kb x kMr) · Bpack(kb x kNr). The kMr*kNr
  // accumulators live in registers; the jr loop is the SIMD dimension.
  static void MicroKernel(const double* ap, const double* bp, int kb, Matrix* out,
                          int i0, int mr, int j0, int nr) {
    double acc[kMr * kNr] = {0.0};
    for (int kk = 0; kk < kb; ++kk) {
      const double* av = ap + static_cast<size_t>(kk) * kMr;
      const double* bv = bp + static_cast<size_t>(kk) * kNr;
      for (int ir = 0; ir < kMr; ++ir) {
        const double aik = av[ir];
        for (int jr = 0; jr < kNr; ++jr) acc[ir * kNr + jr] += aik * bv[jr];
      }
    }
    for (int ir = 0; ir < mr; ++ir) {
      double* out_row = out->row(i0 + ir) + j0;
      for (int jr = 0; jr < nr; ++jr) out_row[jr] += acc[ir * kNr + jr];
    }
  }

  mutable ThreadPool pool_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::unique_ptr<Backend>& BackendSlot() {
  static std::unique_ptr<Backend> slot;
  return slot;
}

// Worker-thread override installed by ThreadLocalBackendGuard.
thread_local Backend* t_backend_override = nullptr;

BackendKind g_active_kind = BackendKind::kParallel;
int g_active_threads = 0;  // requested value; 0 = hardware concurrency

// First-use initialisation from the environment. call_once makes a cold
// concurrent ActiveBackend() safe; swapping backends afterwards
// (SetActiveBackend) is an orchestration-thread-only operation, like the
// kernels themselves (see ThreadPool::ParallelFor).
std::once_flag g_env_init_once;

void InitFromEnvIfNeeded() {
  std::call_once(g_env_init_once, [] {
    if (BackendSlot() != nullptr) return;  // SetActiveBackend already ran
    BackendKind kind = BackendKind::kParallel;
    int threads = 0;
    if (const char* env = std::getenv("PPFR_LA_BACKEND")) {
      const std::string value(env);
      if (value == "reference") {
        kind = BackendKind::kReference;
      } else {
        PPFR_CHECK(value == "parallel" || value.empty())
            << "PPFR_LA_BACKEND must be 'reference' or 'parallel', got '" << value
            << "'";
      }
    }
    if (const char* env = std::getenv("PPFR_LA_THREADS")) threads = std::atoi(env);
    SetActiveBackend(kind, threads);
  });
}

}  // namespace

std::string BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kReference:
      return "reference";
    case BackendKind::kParallel:
      return "parallel";
  }
  return "unknown";
}

std::unique_ptr<Backend> MakeBackend(BackendKind kind, int num_threads) {
  switch (kind) {
    case BackendKind::kReference:
      return std::make_unique<ReferenceBackend>();
    case BackendKind::kParallel:
      return std::make_unique<ParallelBackend>(num_threads);
  }
  PPFR_CHECK(false) << "unknown backend kind";
  return nullptr;
}

Backend& ActiveBackend() {
  if (t_backend_override != nullptr) return *t_backend_override;
  InitFromEnvIfNeeded();
  return *BackendSlot();
}

ThreadLocalBackendGuard::ThreadLocalBackendGuard(Backend* backend)
    : previous_(t_backend_override) {
  t_backend_override = backend;
}

ThreadLocalBackendGuard::~ThreadLocalBackendGuard() { t_backend_override = previous_; }

BackendKind ActiveBackendKind() {
  InitFromEnvIfNeeded();
  return g_active_kind;
}

void SetActiveBackend(BackendKind kind, int num_threads) {
  BackendSlot() = MakeBackend(kind, num_threads);
  g_active_kind = kind;
  g_active_threads = num_threads;
}

void ConfigureBackendFromFlags(const Flags& flags) {
  InitFromEnvIfNeeded();
  BackendKind kind = g_active_kind;
  int threads = g_active_threads;
  if (flags.Has("la_backend")) {
    const std::string value = flags.GetString("la_backend", "");
    if (value == "reference") {
      kind = BackendKind::kReference;
    } else if (value == "parallel") {
      kind = BackendKind::kParallel;
    } else {
      PPFR_CHECK(false) << "--la_backend must be 'reference' or 'parallel', got '"
                        << value << "'";
    }
  }
  if (flags.Has("la_threads")) threads = flags.GetInt("la_threads", threads);
  // Avoid tearing down and respawning an identical thread pool when the
  // flags only restate the current configuration.
  if (kind != g_active_kind || threads != g_active_threads) {
    SetActiveBackend(kind, threads);
  }
}

ScopedBackend::ScopedBackend(BackendKind kind, int num_threads) {
  InitFromEnvIfNeeded();
  previous_kind_ = g_active_kind;
  previous_threads_ = g_active_threads;
  SetActiveBackend(kind, num_threads);
}

ScopedBackend::~ScopedBackend() { SetActiveBackend(previous_kind_, previous_threads_); }

}  // namespace ppfr::la

#include "la/backend.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "la/simd_kernels.h"

namespace ppfr::la {
namespace {

// ---------------------------------------------------------------------------
// Naive kernels. These are the original seed loops, kept verbatim: they are
// the ReferenceBackend (correctness oracle) and the small-problem fallback of
// the ParallelBackend, where blocking/packing overhead would dominate.
// ---------------------------------------------------------------------------

void NaiveGemm(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Zero();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (int i = 0; i < a.rows(); ++i) {
    double* out_row = out->row(i);
    const double* a_row = a.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      const double* b_row = b.row(k);
      for (int j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void NaiveGemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Zero();
  for (int k = 0; k < a.rows(); ++k) {
    const double* a_row = a.row(k);
    const double* b_row = b.row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* out_row = out->row(i);
      for (int j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
}

void NaiveGemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  for (int i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i);
    double* out_row = out->row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row(j);
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a_row[k] * b_row[k];
      out_row[j] = s;
    }
  }
}

void NaiveTranspose(const Matrix& a, Matrix* out) {
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) (*out)(c, r) = a(r, c);
  }
}

void NaiveSpmmAccumRows(const CsrMatrix& a, const Matrix& x, double alpha, Matrix* out,
                        int64_t row_begin, int64_t row_end) {
  const int n = x.cols();
  const std::vector<int64_t>& row_ptr = a.row_ptr();
  const std::vector<int>& col_idx = a.col_idx();
  const std::vector<double>& values = a.values();
  for (int64_t r = row_begin; r < row_end; ++r) {
    double* out_row = out->row(static_cast<int>(r));
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double w = alpha * values[k];
      const double* x_row = x.row(col_idx[k]);
      for (int j = 0; j < n; ++j) out_row[j] += w * x_row[j];
    }
  }
}

// Serial support-guided kernels: the original loops from matrix.cc /
// csr_matrix.cc, now the Backend base-class (and small-support) path. The
// supports a seeded backward produces are tiny, so these loops are the fast
// path; ParallelBackend/SimdBackend only diverge above a work threshold.

void SerialGemmTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                               const std::vector<int>& rows) {
  for (int r : rows) {
    const double* g_row = g.row(r);
    double* out_row = out->row(r);
    for (int j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row(j);
      double s = 0.0;
      for (int c = 0; c < g.cols(); ++c) s += g_row[c] * b_row[c];
      out_row[j] += s;
    }
  }
}

void SerialGemmTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                               const std::vector<int>& rows) {
  for (int r : rows) {
    const double* a_row = a.row(r);
    const double* g_row = g.row(r);
    for (int i = 0; i < a.cols(); ++i) {
      const double ari = a_row[i];
      if (ari == 0.0) continue;
      double* out_row = out->row(i);
      for (int j = 0; j < g.cols(); ++j) out_row[j] += ari * g_row[j];
    }
  }
}

void SerialSpmmAccumRows(const CsrMatrix& a, const Matrix& x, double alpha,
                         Matrix* out, const std::vector<int>& rows,
                         const std::vector<uint8_t>& x_row_nonzero) {
  const bool masked = !x_row_nonzero.empty();
  const int n = x.cols();
  const std::vector<int64_t>& row_ptr = a.row_ptr();
  const std::vector<int>& col_idx = a.col_idx();
  const std::vector<double>& values = a.values();
  for (int r : rows) {
    PPFR_DCHECK_GE(r, 0);
    PPFR_DCHECK_LT(r, a.rows());
    double* out_row = out->row(r);
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const int c = col_idx[k];
      if (masked && !x_row_nonzero[c]) continue;
      const double w = alpha * values[k];
      const double* x_row = x.row(c);
      for (int j = 0; j < n; ++j) out_row[j] += w * x_row[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Naive lane-blocked kernels: per-lane windowed copies of the loops above,
// walking lane windows in lane order. Each lane's window reproduces the
// corresponding narrow kernel's per-element operation sequence exactly, so
// lane l's output bits equal a narrow call on the lane views — the base-class
// (and small-shape) implementations of the Backend::GemmLanes* family.
// ---------------------------------------------------------------------------

void NaiveGemmLanes(const Matrix& a, const Matrix& b, Matrix* out, int lanes) {
  const int n = b.cols() / lanes;
  const bool a_shared = a.cols() == b.rows();
  if (a_shared) {
    // Shared a means every lane multiplies by the SAME a(i, kk): the per-lane
    // j loops are adjacent column windows of one contiguous row, and each
    // output element's kk-order accumulation is untouched by fusing them — so
    // the wide call IS the narrow naive kernel on the full-width b, bit for
    // bit, with lanes-times-longer streaming inner loops.
    NaiveGemm(a, b, out);
    return;
  }
  const int k = a.cols() / lanes;
  out->Zero();
  // Wide a: the lane loop sits between kk and j, so the inner walk covers the
  // full contiguous width of out/b rows (one short j block per lane) while
  // each element still accumulates in ascending kk exactly like a narrow
  // call on its lane window. The aik == 0 skip stays per-lane.
  for (int i = 0; i < a.rows(); ++i) {
    double* out_row = out->row(i);
    const double* a_row = a.row(i);
    for (int kk = 0; kk < k; ++kk) {
      const double* b_row = b.row(kk);
      for (int l = 0; l < lanes; ++l) {
        const double ail = a_row[l * k + kk];
        if (ail == 0.0) continue;
        const int b0 = l * n;
        for (int j = 0; j < n; ++j) out_row[b0 + j] += ail * b_row[b0 + j];
      }
    }
  }
}

void NaiveGemmLanesTransA(const Matrix& a, const Matrix& b, Matrix* out, int lanes) {
  const int n = b.cols() / lanes;
  const int ka = out->rows();
  const bool a_shared = a.cols() == ka;
  if (a_shared) {
    // Same fusion as NaiveGemmLanes: a(k, i) is lane-invariant, the lane
    // windows of b/out are adjacent, and per-element accumulation stays in
    // ascending k — the narrow naive kernel on the full-width b is bitwise
    // the per-lane loop with longer inner streams.
    NaiveGemmTransA(a, b, out);
    return;
  }
  out->Zero();
  for (int l = 0; l < lanes; ++l) {
    const int a0 = l * ka;
    const int b0 = l * n;
    for (int k = 0; k < a.rows(); ++k) {
      const double* a_row = a.row(k) + a0;
      const double* b_row = b.row(k) + b0;
      for (int i = 0; i < ka; ++i) {
        const double aki = a_row[i];
        if (aki == 0.0) continue;
        double* out_row = out->row(i) + b0;
        for (int j = 0; j < n; ++j) out_row[j] += aki * b_row[j];
      }
    }
  }
}

void NaiveGemmLanesTransB(const Matrix& a, const Matrix& b, Matrix* out, int lanes) {
  // Overwrites like NaiveGemmTransB — no pre-zero.
  const int n = a.cols() / lanes;
  const int kb = b.rows();
  for (int l = 0; l < lanes; ++l) {
    const int a0 = l * n;
    const int o0 = l * kb;
    for (int i = 0; i < a.rows(); ++i) {
      const double* a_row = a.row(i) + a0;
      double* out_row = out->row(i) + o0;
      for (int j = 0; j < kb; ++j) {
        const double* b_row = b.row(j) + a0;
        double s = 0.0;
        for (int k = 0; k < n; ++k) s += a_row[k] * b_row[k];
        out_row[j] = s;
      }
    }
  }
}

void SerialGemmLanesTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                                    const std::vector<int>& rows, int lanes) {
  const int n = g.cols() / lanes;
  const int kb = b.rows();
  for (int r : rows) {
    for (int l = 0; l < lanes; ++l) {
      const double* g_row = g.row(r) + l * n;
      double* out_row = out->row(r) + l * kb;
      for (int j = 0; j < kb; ++j) {
        const double* b_row = b.row(j) + l * n;
        double s = 0.0;
        for (int c = 0; c < n; ++c) s += g_row[c] * b_row[c];
        out_row[j] += s;
      }
    }
  }
}

void SerialGemmLanesTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                                    const std::vector<int>& rows, int lanes) {
  const int n = g.cols() / lanes;
  const int ka = out->rows();
  const bool a_shared = a.cols() == ka;
  // r in list order outer (like the narrow kernel), lanes inner: per lane
  // window every output element accumulates its row contributions in the
  // same order as a narrow call.
  if (a_shared) {
    // ari is lane-invariant and the lane windows of g/out rows are adjacent,
    // so the lane loop fuses into ONE full-width streaming update per (r, i)
    // — per-element bits identical, lanes-times-fewer/longer inner loops.
    const int wide = n * lanes;
    for (int r : rows) {
      const double* a_row = a.row(r);
      const double* g_row = g.row(r);
      for (int i = 0; i < ka; ++i) {
        const double ari = a_row[i];
        if (ari == 0.0) continue;
        double* out_row = out->row(i);
        for (int j = 0; j < wide; ++j) out_row[j] += ari * g_row[j];
      }
    }
    return;
  }
  for (int r : rows) {
    for (int l = 0; l < lanes; ++l) {
      const double* a_row = a.row(r) + l * ka;
      const double* g_row = g.row(r) + l * n;
      for (int i = 0; i < ka; ++i) {
        const double ari = a_row[i];
        if (ari == 0.0) continue;
        double* out_row = out->row(i) + l * n;
        for (int j = 0; j < n; ++j) out_row[j] += ari * g_row[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Leaf-kernel table. The ParallelBackend owns blocking, packing, cutoffs and
// the thread pool; the innermost register/vector loops are routed through
// this table so the SimdBackend can swap in the AVX2/FMA (or AVX-512)
// variants from la/simd_kernels.h without duplicating any dispatch logic —
// and fall back to the scalar set per-routine when the CPU probe fails.
// ---------------------------------------------------------------------------

struct LeafKernels {
  // Packed GEMM micro-kernel; see simd::MicroKernel4x8Avx2 for the contract.
  void (*gemm_micro)(const double* ap, const double* bp, int kb, double* out,
                     int64_t out_stride, int mr, int nr);
  // Width of the packed B slivers gemm_micro consumes (the NR of its register
  // tile). BlockedGemm packs B to this width, so a wider-vector kernel (the
  // 16-wide AVX-512 tile) gets matching panels without a second packing
  // scheme.
  int pack_nr;
  double (*dot)(const double* a, const double* b, int64_t n);
  void (*axpy)(double alpha, const double* x, double* y, int64_t n);
  void (*scale)(double alpha, double* x, int64_t n);
  void (*hadamard)(const double* a, const double* b, double* out, int64_t n);
  // Fused CG-step leaves; see Backend::VAxpyDot / Backend::VDotAxpy for the
  // bitwise contracts they implement.
  double (*axpy_dot)(double alpha, const double* x, double* y, int64_t n);
  double (*xpay_dot)(double beta, const double* x, double* y, int64_t n);
  // Multi-column CSR row kernel: for one output row,
  //   out_row[j] += Σ_k (alpha·vals[k]) · x(cols[k], j),  k in CSR order.
  // Must be bitwise equal to the per-nonzero axpy sequence
  // (for k: axpy(alpha·vals[k], x.row(cols[k]), out_row, n)); the vector
  // variant (simd::SpmmRow) keeps out_row columns in registers across the
  // whole nonzero list instead of re-loading/re-storing them per nonzero —
  // the win that widens with the fused-replay column count.
  void (*spmm_row)(const double* vals, const int* cols, int64_t nnz, double alpha,
                   const double* x, int64_t x_stride, double* out_row, int64_t n);
};

// Register micro-tile (MR x NR accumulators) and cache panels: an MC x KC
// packed panel of A lives in L2, a KC x NR sliver of packed B streams from
// L1, and the KC x NC packed B panel sits in L3.
constexpr int kMr = 4;
constexpr int kNr = 8;
constexpr int kMc = 64;
constexpr int kKc = 256;
constexpr int kNc = 2048;

// The SIMD micro-kernels are written for exactly this A-sliver geometry (the
// B width is per-kernel via LeafKernels::pack_nr, and kNc must stay a
// multiple of every pack_nr in use).
static_assert(kMr == 4, "simd micro-kernels assume 4-wide packed A slivers");
static_assert(kNc % 16 == 0, "kNc must be a multiple of every pack_nr");

// Below these sizes the naive loops win (no packing / dispatch overhead).
constexpr int64_t kGemmSerialCutoff = 32 * 1024;   // m*n*k
constexpr int64_t kElementwiseCutoff = 32 * 1024;  // flat elements
constexpr int64_t kSpmmWorkCutoff = 32 * 1024;     // nnz * x.cols()
constexpr int64_t kReduceBlock = 4096;             // deterministic partial sums

void ScalarMicroKernel(const double* ap, const double* bp, int kb, double* out,
                       int64_t out_stride, int mr, int nr) {
  // The kMr*kNr accumulators live in registers; the jr loop is the SIMD
  // dimension (auto-vectorized under -march=native).
  double acc[kMr * kNr] = {0.0};
  for (int kk = 0; kk < kb; ++kk) {
    const double* av = ap + static_cast<size_t>(kk) * kMr;
    const double* bv = bp + static_cast<size_t>(kk) * kNr;
    for (int ir = 0; ir < kMr; ++ir) {
      const double aik = av[ir];
      for (int jr = 0; jr < kNr; ++jr) acc[ir * kNr + jr] += aik * bv[jr];
    }
  }
  for (int ir = 0; ir < mr; ++ir) {
    double* out_row = out + ir * out_stride;
    for (int jr = 0; jr < nr; ++jr) out_row[jr] += acc[ir * kNr + jr];
  }
}

double ScalarDot(const double* a, const double* b, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void ScalarAxpy(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarScale(double alpha, double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ScalarHadamard(const double* a, const double* b, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

// The scalar fused leaves are literally the unfused compositions — that IS
// the bitwise definition of the fused contract, and the single-pass win only
// materialises in the vector variants (simd::AxpyDot / simd::XpayDot), where
// explicit intrinsics pin the per-element operations exactly.
double ScalarAxpyDot(double alpha, const double* x, double* y, int64_t n) {
  ScalarAxpy(alpha, x, y, n);
  return ScalarDot(y, y, n);
}

double ScalarXpayDot(double beta, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
  return ScalarDot(y, y, n);
}

void ScalarSpmmRow(const double* vals, const int* cols, int64_t nnz, double alpha,
                   const double* x, int64_t x_stride, double* out_row, int64_t n) {
  // Literally the repeated-ScalarAxpy sequence — the bitwise definition of
  // the spmm_row contract.
  for (int64_t k = 0; k < nnz; ++k) {
    const double w = alpha * vals[k];
    const double* x_row = x + static_cast<size_t>(cols[k]) * x_stride;
    for (int64_t j = 0; j < n; ++j) out_row[j] += w * x_row[j];
  }
}

constexpr LeafKernels kScalarLeafKernels = {&ScalarMicroKernel, kNr, &ScalarDot,
                                            &ScalarAxpy, &ScalarScale,
                                            &ScalarHadamard, &ScalarAxpyDot,
                                            &ScalarXpayDot, &ScalarSpmmRow};

// Debug guard for the row-partitioned support kernels: partitioning the row
// list across workers is only race-free because support entries are distinct
// output rows. The serial paths tolerate duplicates, so this is checked only
// where the list is about to be split.
bool RowsDistinct(std::vector<int> rows) {
  std::sort(rows.begin(), rows.end());
  return std::adjacent_find(rows.begin(), rows.end()) == rows.end();
}

// AVX2+FMA leaf kernels, with the GEMM micro-kernel upgraded to the 16-wide
// AVX-512 tile when the CPU has it (bitwise identical — one fma per element
// per k step either way). Only called when simd::KernelsUsable() passed.
LeafKernels SimdLeafKernels() {
  LeafKernels kernels = kScalarLeafKernels;
  if (simd::CpuSupportsAvx512() && !simd::Avx512DisabledByEnv()) {
    kernels.gemm_micro = &simd::MicroKernel4x16Avx512;
    kernels.pack_nr = 16;
  } else {
    kernels.gemm_micro = &simd::MicroKernel4x8Avx2;
    kernels.pack_nr = kNr;
  }
  kernels.dot = &simd::VDot;
  kernels.axpy = &simd::VAxpy;
  kernels.scale = &simd::VScale;
  kernels.hadamard = &simd::Hadamard;
  kernels.axpy_dot = &simd::AxpyDot;
  kernels.xpay_dot = &simd::XpayDot;
  kernels.spmm_row = &simd::SpmmRow;
  return kernels;
}

// ---------------------------------------------------------------------------
// ReferenceBackend
// ---------------------------------------------------------------------------

class ReferenceBackend final : public Backend {
 public:
  std::string name() const override { return "reference"; }

  void Gemm(const Matrix& a, const Matrix& b, Matrix* out) const override {
    NaiveGemm(a, b, out);
  }
  void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) const override {
    NaiveGemmTransA(a, b, out);
  }
  void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) const override {
    NaiveGemmTransB(a, b, out);
  }
  void Transpose(const Matrix& a, Matrix* out) const override {
    NaiveTranspose(a, out);
  }
  void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out->data();
    for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
  }
  void SpmmAccum(const CsrMatrix& a, const Matrix& x, double alpha,
                 Matrix* out) const override {
    NaiveSpmmAccumRows(a, x, alpha, out, 0, a.rows());
  }
  void Apply(int64_t n, int64_t grain,
             const std::function<void(int64_t, int64_t)>& fn) const override {
    (void)grain;
    if (n > 0) fn(0, n);
  }
  double VDot(const double* a, const double* b, int64_t n) const override {
    return ScalarDot(a, b, n);
  }
  void VAxpy(double alpha, const double* x, double* y, int64_t n) const override {
    ScalarAxpy(alpha, x, y, n);
  }
  void VScale(double alpha, double* x, int64_t n) const override {
    ScalarScale(alpha, x, n);
  }
};

// ---------------------------------------------------------------------------
// ParallelBackend: cache-blocked GEMM with packed operands (GEBP scheme) and
// row-partitioned sparse/elementwise kernels on a shared thread pool. The
// innermost loops come from a LeafKernels table so SimdBackend (below) can
// reuse every dispatch decision with vector leaf kernels.
//
// Determinism: for a fixed problem the floating-point summation order is
// independent of the thread count — GEMM assigns each output tile to exactly
// one thread and walks k in ascending panel order, SpMM partitions disjoint
// rows, and reductions sum fixed-size block partials in block order. The
// SIMD leaf kernels preserve this: their per-element results depend only on
// the inputs (elementwise lanes and scalar tails round identically), and the
// only vectorized reduction (dot) runs over the same fixed blocks.
// ---------------------------------------------------------------------------

class ParallelBackend : public Backend {
 public:
  explicit ParallelBackend(int num_threads,
                           const LeafKernels& kernels = kScalarLeafKernels)
      : kernels_(kernels), pool_(num_threads) {}

  std::string name() const override { return "parallel"; }
  int num_threads() const override { return pool_.num_threads(); }

  void Gemm(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const int m = a.rows(), k = a.cols(), n = b.cols();
    const int64_t work = static_cast<int64_t>(m) * n * k;
    if (work < kGemmSerialCutoff || n < kNr || k < 8) {
      // The n cutoff is the scalar tile width (not pack_nr): below a full
      // 8-wide sliver the packing overhead dominates any micro-kernel.
      NaiveGemm(a, b, out);
      return;
    }
    BlockedGemm(a, b, out);
  }

  void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const int64_t work = static_cast<int64_t>(a.cols()) * b.cols() * a.rows();
    if (work < kGemmSerialCutoff || b.cols() < kNr || a.rows() < 8) {
      NaiveGemmTransA(a, b, out);
      return;
    }
    // aᵀ·b via an explicit transpose; the packed-GEMM throughput dwarfs the
    // one extra pass over a.
    Matrix at(a.cols(), a.rows());
    Transpose(a, &at);
    BlockedGemm(at, b, out);
  }

  void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const int64_t work = static_cast<int64_t>(a.rows()) * b.rows() * a.cols();
    if (work < kGemmSerialCutoff || b.rows() < kNr || a.cols() < 8) {
      NaiveGemmTransB(a, b, out);
      return;
    }
    Matrix bt(b.cols(), b.rows());
    Transpose(b, &bt);
    BlockedGemm(a, bt, out);
  }

  void Transpose(const Matrix& a, Matrix* out) const override {
    constexpr int kTile = 32;
    if (a.size() < kElementwiseCutoff) {
      NaiveTranspose(a, out);
      return;
    }
    const int rows = a.rows(), cols = a.cols();
    const int64_t row_tiles = (rows + kTile - 1) / kTile;
    pool_.ParallelFor(0, row_tiles, 1, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        const int r0 = static_cast<int>(t) * kTile;
        const int r1 = std::min(rows, r0 + kTile);
        for (int c0 = 0; c0 < cols; c0 += kTile) {
          const int c1 = std::min(cols, c0 + kTile);
          for (int r = r0; r < r1; ++r) {
            for (int c = c0; c < c1; ++c) (*out)(c, r) = a(r, c);
          }
        }
      }
    });
  }

  void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) const override {
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out->data();
    pool_.ParallelFor(0, a.size(), kElementwiseCutoff, [&](int64_t lo, int64_t hi) {
      kernels_.hadamard(pa + lo, pb + lo, po + lo, hi - lo);
    });
  }

  void SpmmAccum(const CsrMatrix& a, const Matrix& x, double alpha,
                 Matrix* out) const override {
    const int64_t work = a.nnz() * x.cols();
    if (work < kSpmmWorkCutoff || a.rows() == 0) {
      SpmmRowRange(a, x, alpha, out, 0, a.rows());
      return;
    }
    // nnz-balanced row partition: chunk boundaries are chosen on cumulative
    // nnz (row_ptr is already the prefix sum), so a handful of high-degree
    // rows in a power-law graph can't serialise one chunk while the rest sit
    // idle. Each chunk still owns a disjoint, contiguous output-row range
    // and walks it in row order, so results are independent of both the
    // chunk count and the thread assignment.
    const int64_t num_chunks = std::min<int64_t>(
        pool_.num_threads(), std::max<int64_t>(1, work / kSpmmWorkCutoff));
    if (num_chunks <= 1) {
      SpmmRowRange(a, x, alpha, out, 0, a.rows());
      return;
    }
    const std::vector<int64_t> bounds =
        NnzBalancedRowBounds(a.row_ptr(), a.rows(), num_chunks);
    pool_.ParallelFor(0, num_chunks, 1, [&](int64_t c0, int64_t c1) {
      for (int64_t c = c0; c < c1; ++c) {
        SpmmRowRange(a, x, alpha, out, bounds[static_cast<size_t>(c)],
                     bounds[static_cast<size_t>(c + 1)]);
      }
    });
  }

  void Apply(int64_t n, int64_t grain,
             const std::function<void(int64_t, int64_t)>& fn) const override {
    pool_.ParallelFor(0, n, std::max<int64_t>(grain, 1), fn);
  }

  double VDot(const double* a, const double* b, int64_t n) const override {
    if (n < kElementwiseCutoff) return kernels_.dot(a, b, n);
    // Fixed-size block partials summed in block order: the result does not
    // depend on how blocks were assigned to threads, and each block's range
    // is a function of n alone — so the vector kernel's lane pattern inside
    // a block is fixed too.
    const int64_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
    std::vector<double> partial(static_cast<size_t>(num_blocks), 0.0);
    pool_.ParallelFor(0, num_blocks, 4, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        const int64_t lo = blk * kReduceBlock;
        const int64_t hi = std::min(n, lo + kReduceBlock);
        partial[static_cast<size_t>(blk)] = kernels_.dot(a + lo, b + lo, hi - lo);
      }
    });
    double s = 0.0;
    for (double p : partial) s += p;
    return s;
  }

  void VAxpy(double alpha, const double* x, double* y, int64_t n) const override {
    pool_.ParallelFor(0, n, kElementwiseCutoff, [&](int64_t lo, int64_t hi) {
      kernels_.axpy(alpha, x + lo, y + lo, hi - lo);
    });
  }

  void VScale(double alpha, double* x, int64_t n) const override {
    pool_.ParallelFor(0, n, kElementwiseCutoff, [&](int64_t lo, int64_t hi) {
      kernels_.scale(alpha, x + lo, hi - lo);
    });
  }

  // Fused CG steps. The update halves are elementwise and split-invariant,
  // so chunking them by reduce blocks (instead of VAxpy's coarser elementwise
  // grain) leaves every element bit-identical; the dot halves then follow
  // VDot's exact fixed-block partial scheme. Net effect: one pass over y, and
  // bitwise equality with the unfused sequences at every n and thread count.
  double VAxpyDot(double alpha, const double* x, double* y, int64_t n) const override {
    if (n < kElementwiseCutoff) return kernels_.axpy_dot(alpha, x, y, n);
    return FusedReduce([&](int64_t lo, int64_t hi) {
      return kernels_.axpy_dot(alpha, x + lo, y + lo, hi - lo);
    }, n);
  }

  double VDotAxpy(double beta, const double* x, double* y, int64_t n) const override {
    if (n < kElementwiseCutoff) return kernels_.xpay_dot(beta, x, y, n);
    return FusedReduce([&](int64_t lo, int64_t hi) {
      return kernels_.xpay_dot(beta, x + lo, y + lo, hi - lo);
    }, n);
  }

  // Support-guided kernels. `rows` entries are distinct (they are nonzero-row
  // supports), so partitioning the row list hands each worker disjoint output
  // rows. Per-element summation order never depends on the partition: the
  // TransB variant is a sum of whole-row dot products, the SpMM variant walks
  // k in CSR order within a row, and the TransA variant (whose output rows
  // are shared across `rows`) is partitioned over output *columns* instead,
  // with every worker walking `rows` in list order.

  void GemmTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                           const std::vector<int>& rows) const override {
    const int64_t per_row = static_cast<int64_t>(b.rows()) * g.cols();
    const int64_t work = static_cast<int64_t>(rows.size()) * per_row;
    auto run = [&](int64_t lo, int64_t hi) {
      for (int64_t idx = lo; idx < hi; ++idx) {
        const int r = rows[static_cast<size_t>(idx)];
        const double* g_row = g.row(r);
        double* out_row = out->row(r);
        for (int j = 0; j < b.rows(); ++j) {
          out_row[j] += kernels_.dot(g_row, b.row(j), g.cols());
        }
      }
    };
    if (work < kGemmSerialCutoff) {
      run(0, static_cast<int64_t>(rows.size()));
      return;
    }
    PPFR_DCHECK(RowsDistinct(rows))
        << "GemmTransBAccumRows: duplicate support rows would race when split";
    const int64_t grain =
        std::max<int64_t>(1, kGemmSerialCutoff / std::max<int64_t>(per_row, 1));
    pool_.ParallelFor(0, static_cast<int64_t>(rows.size()), grain, run);
  }

  void GemmTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                           const std::vector<int>& rows) const override {
    const int64_t per_col = static_cast<int64_t>(rows.size()) * a.cols();
    const int64_t work = per_col * g.cols();
    auto run = [&](int64_t j_lo, int64_t j_hi) {
      const int64_t len = j_hi - j_lo;
      for (int r : rows) {
        const double* a_row = a.row(r);
        const double* g_row = g.row(r) + j_lo;
        for (int i = 0; i < a.cols(); ++i) {
          const double ari = a_row[i];
          if (ari == 0.0) continue;
          kernels_.axpy(ari, g_row, out->row(i) + j_lo, len);
        }
      }
    };
    if (work < kGemmSerialCutoff) {
      run(0, g.cols());
      return;
    }
    const int64_t grain =
        std::max<int64_t>(1, kGemmSerialCutoff / std::max<int64_t>(per_col, 1));
    pool_.ParallelFor(0, g.cols(), grain, run);
  }

  void SpmmAccumRows(const CsrMatrix& a, const Matrix& x, double alpha, Matrix* out,
                     const std::vector<int>& rows,
                     const std::vector<uint8_t>& x_row_nonzero) const override {
    const std::vector<int64_t>& row_ptr = a.row_ptr();
    int64_t nnz = 0;
    for (int r : rows) nnz += row_ptr[r + 1] - row_ptr[r];
    const int64_t work = nnz * x.cols();
    const bool masked = !x_row_nonzero.empty();
    const std::vector<int>& col_idx = a.col_idx();
    const std::vector<double>& values = a.values();
    const int n = x.cols();
    auto run = [&](int64_t lo, int64_t hi) {
      for (int64_t idx = lo; idx < hi; ++idx) {
        const int r = rows[static_cast<size_t>(idx)];
        PPFR_DCHECK_GE(r, 0);
        PPFR_DCHECK_LT(r, a.rows());
        double* out_row = out->row(r);
        if (!masked) {
          // Unmasked rows take the whole nonzero list through the
          // multi-column leaf (bitwise the per-nonzero axpy sequence).
          const int64_t k0 = row_ptr[r], k1 = row_ptr[r + 1];
          if (k0 < k1) {
            kernels_.spmm_row(values.data() + k0, col_idx.data() + k0, k1 - k0,
                              alpha, x.data(), x.cols(), out_row, n);
          }
          continue;
        }
        for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
          const int c = col_idx[k];
          if (!x_row_nonzero[c]) continue;
          kernels_.axpy(alpha * values[k], x.row(c), out_row, n);
        }
      }
    };
    if (work < kSpmmWorkCutoff || rows.empty()) {
      run(0, static_cast<int64_t>(rows.size()));
      return;
    }
    PPFR_DCHECK(RowsDistinct(rows))
        << "SpmmAccumRows: duplicate support rows would race when split";
    const int64_t per_row =
        std::max<int64_t>(1, work / static_cast<int64_t>(rows.size()));
    const int64_t grain = std::max<int64_t>(1, kSpmmWorkCutoff / per_row);
    pool_.ParallelFor(0, static_cast<int64_t>(rows.size()), grain, run);
  }

  // Lane-blocked GEMM family. Every dispatch decision is re-derived from the
  // PER-LANE shape with the exact narrow predicates: a batched lane must
  // never flip between the naive (mul+add, two roundings per term) and
  // blocked (FMA, one rounding) patterns relative to its serial narrow call,
  // or bitwise parity with the serial replay dies. Once a lane is blocked,
  // the per-element k-panel FMA chain is independent of the total packed
  // column count, so shared-A lanes collapse into ONE wide packed GEMM (A
  // packed once for all lanes — the BLAS-3 win) and wide-A lanes run as
  // windowed packed calls over the shared output buffer.

  void GemmLanes(const Matrix& a, const Matrix& b, Matrix* out,
                 int lanes) const override {
    const int n = b.cols() / lanes;
    const bool a_shared = a.cols() == b.rows();
    const int k = a_shared ? a.cols() : a.cols() / lanes;
    const int64_t work = static_cast<int64_t>(a.rows()) * n * k;
    if (work < kGemmSerialCutoff || n < kNr || k < 8) {
      NaiveGemmLanes(a, b, out, lanes);
      return;
    }
    if (a_shared) {
      BlockedGemm(a, b, out);
      return;
    }
    out->Zero();
    for (int l = 0; l < lanes; ++l) {
      BlockedGemmWindow(a, l * k, k, b, l * n, n, out, l * n);
    }
  }

  void GemmLanesTransA(const Matrix& a, const Matrix& b, Matrix* out,
                       int lanes) const override {
    const int n = b.cols() / lanes;
    const int ka = out->rows();
    const bool a_shared = a.cols() == ka;
    const int m = a.rows();
    const int64_t work = static_cast<int64_t>(ka) * n * m;
    if (work < kGemmSerialCutoff || n < kNr || m < 8) {
      NaiveGemmLanesTransA(a, b, out, lanes);
      return;
    }
    out->Zero();
    if (a_shared) {
      Matrix at(a.cols(), a.rows());
      Transpose(a, &at);
      BlockedGemmWindow(at, 0, m, b, 0, b.cols(), out, 0);
      return;
    }
    Matrix at(ka, m);  // one per-lane transposed window, reused across lanes
    for (int l = 0; l < lanes; ++l) {
      for (int r = 0; r < m; ++r) {
        const double* a_row = a.row(r) + l * ka;
        for (int i = 0; i < ka; ++i) at(i, r) = a_row[i];
      }
      BlockedGemmWindow(at, 0, m, b, l * n, n, out, l * n);
    }
  }

  void GemmLanesTransB(const Matrix& a, const Matrix& b, Matrix* out,
                       int lanes) const override {
    const int n = a.cols() / lanes;
    const int kb = b.rows();
    const int64_t work = static_cast<int64_t>(a.rows()) * kb * n;
    if (work < kGemmSerialCutoff || kb < kNr || n < 8) {
      NaiveGemmLanesTransB(a, b, out, lanes);
      return;
    }
    out->Zero();
    Matrix bt(n, kb);  // per-lane transposed window, reused across lanes
    for (int l = 0; l < lanes; ++l) {
      for (int r = 0; r < kb; ++r) {
        const double* b_row = b.row(r) + l * n;
        for (int c = 0; c < n; ++c) bt(c, r) = b_row[c];
      }
      BlockedGemmWindow(a, l * n, n, bt, 0, kb, out, l * kb);
    }
  }

  void GemmLanesTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                                const std::vector<int>& rows,
                                int lanes) const override {
    const int n = g.cols() / lanes;
    const int kb = b.rows();
    const int64_t per_row = static_cast<int64_t>(kb) * n * lanes;
    const int64_t work = static_cast<int64_t>(rows.size()) * per_row;
    auto run = [&](int64_t lo, int64_t hi) {
      for (int64_t idx = lo; idx < hi; ++idx) {
        const int r = rows[static_cast<size_t>(idx)];
        for (int l = 0; l < lanes; ++l) {
          const double* g_row = g.row(r) + l * n;
          double* out_row = out->row(r) + l * kb;
          for (int j = 0; j < kb; ++j) {
            out_row[j] += kernels_.dot(g_row, b.row(j) + l * n, n);
          }
        }
      }
    };
    if (work < kGemmSerialCutoff) {
      run(0, static_cast<int64_t>(rows.size()));
      return;
    }
    PPFR_DCHECK(RowsDistinct(rows))
        << "GemmLanesTransBAccumRows: duplicate support rows would race when split";
    const int64_t grain =
        std::max<int64_t>(1, kGemmSerialCutoff / std::max<int64_t>(per_row, 1));
    pool_.ParallelFor(0, static_cast<int64_t>(rows.size()), grain, run);
  }

  void GemmLanesTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                                const std::vector<int>& rows,
                                int lanes) const override {
    const int n = g.cols() / lanes;
    const int ka = out->rows();
    const bool a_shared = a.cols() == ka;
    const int64_t per_lane = static_cast<int64_t>(rows.size()) * ka * n;
    // Lanes are disjoint output-column blocks, so the lane loop is the
    // parallel axis (the narrow kernel partitions output columns the same
    // way); every worker walks `rows` in list order, keeping per-element
    // accumulation order identical to the serial lane loop.
    auto run = [&](int64_t l0, int64_t l1) {
      if (a_shared) {
        // ari is lane-invariant and the worker's lane range [l0, l1) is a
        // contiguous column window of g/out, so the whole range collapses
        // into ONE streaming axpy per (r, i). Per-element bits are unchanged
        // (the axpy leaves round each element independently of the call's
        // offset/length — see simd::VAxpy), but the leaf runs lanes-times
        // fewer times over lanes-times-longer vectors.
        const int g0 = static_cast<int>(l0) * n;
        const int wide = static_cast<int>(l1 - l0) * n;
        for (int r : rows) {
          const double* a_row = a.row(r);
          const double* g_row = g.row(r) + g0;
          for (int i = 0; i < ka; ++i) {
            const double ari = a_row[i];
            if (ari == 0.0) continue;
            kernels_.axpy(ari, g_row, out->row(i) + g0, wide);
          }
        }
        return;
      }
      for (int64_t l = l0; l < l1; ++l) {
        const int a0 = static_cast<int>(l) * ka;
        const int g0 = static_cast<int>(l) * n;
        for (int r : rows) {
          const double* a_row = a.row(r) + a0;
          const double* g_row = g.row(r) + g0;
          for (int i = 0; i < ka; ++i) {
            const double ari = a_row[i];
            if (ari == 0.0) continue;
            kernels_.axpy(ari, g_row, out->row(i) + g0, n);
          }
        }
      }
    };
    if (per_lane * lanes < kGemmSerialCutoff) {
      run(0, lanes);
      return;
    }
    pool_.ParallelFor(0, lanes, 1, run);
  }

 private:
  // Runs a fused update+square-reduce leaf over the VDot reduce-block grid
  // and sums the partials in block order (the VDot determinism scheme).
  template <typename BlockFn>
  double FusedReduce(const BlockFn& block_fn, int64_t n) const {
    const int64_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
    std::vector<double> partial(static_cast<size_t>(num_blocks), 0.0);
    pool_.ParallelFor(0, num_blocks, 4, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        const int64_t lo = blk * kReduceBlock;
        const int64_t hi = std::min(n, lo + kReduceBlock);
        partial[static_cast<size_t>(blk)] = block_fn(lo, hi);
      }
    });
    double s = 0.0;
    for (double p : partial) s += p;
    return s;
  }

  // out(r0:r1, :) += alpha * a(r0:r1, :) * x — one contiguous row range,
  // each row's whole nonzero list routed through the multi-column spmm_row
  // leaf (bitwise the old per-nonzero axpy sequence; the vector variant holds
  // the output columns in registers across the nonzeros).
  void SpmmRowRange(const CsrMatrix& a, const Matrix& x, double alpha, Matrix* out,
                    int64_t row_begin, int64_t row_end) const {
    const int n = x.cols();
    const std::vector<int64_t>& row_ptr = a.row_ptr();
    const std::vector<int>& col_idx = a.col_idx();
    const std::vector<double>& values = a.values();
    for (int64_t r = row_begin; r < row_end; ++r) {
      const int64_t k0 = row_ptr[r], k1 = row_ptr[r + 1];
      if (k0 == k1) continue;
      kernels_.spmm_row(values.data() + k0, col_idx.data() + k0, k1 - k0, alpha,
                        x.data(), x.cols(), out->row(static_cast<int>(r)), n);
    }
  }

  // GEBP-blocked GEMM. B panels are packed transposed into NR-wide, k-major
  // slivers (so the micro-kernel streams both operands with unit stride), A
  // panels into MR-wide k-major slivers; both are zero-padded to full tiles
  // so the register kernel never branches on edges.
  void BlockedGemm(const Matrix& a, const Matrix& b, Matrix* out) const {
    out->Zero();
    BlockedGemmWindow(a, 0, a.cols(), b, 0, b.cols(), out, 0);
  }

  // Windowed GEBP core behind both BlockedGemm and the lane-blocked family:
  // accumulates a(:, a0:a0+k) · b(0:k, b0:b0+n) into out(:, o0:o0+n) WITHOUT
  // zeroing (callers zero the full output once, so per-lane windowed calls
  // over one shared buffer compose). The loop structure, packing and micro
  // calls are the original BlockedGemm body with column offsets threaded
  // through, so the (0, full, 0) instantiation reproduces it bit for bit.
  void BlockedGemmWindow(const Matrix& a, int a0, int k, const Matrix& b, int b0,
                         int n, Matrix* out, int o0) const {
    const int m = a.rows();
    if (m == 0 || n == 0 || k == 0) return;

    // B slivers are packed to the active micro-kernel's register-tile width
    // (8 for the scalar/AVX2 kernels, 16 for the AVX-512 tile).
    const int nrp = kernels_.pack_nr;
    std::vector<double> bpack;
    for (int jc = 0; jc < n; jc += kNc) {
      const int nc = std::min(kNc, n - jc);
      const int ncp = static_cast<int>(RoundUp(nc, nrp));
      for (int kc = 0; kc < k; kc += kKc) {
        const int kb = std::min(kKc, k - kc);
        bpack.assign(static_cast<size_t>(kb) * ncp, 0.0);
        for (int p = 0; p < ncp / nrp; ++p) {
          double* dst = bpack.data() + static_cast<size_t>(p) * kb * nrp;
          const int valid = std::min(nrp, nc - p * nrp);
          for (int kk = 0; kk < kb; ++kk) {
            const double* b_row = b.row(kc + kk) + b0 + jc + p * nrp;
            for (int j = 0; j < valid; ++j) dst[kk * nrp + j] = b_row[j];
          }
        }

        const int64_t num_ic_blocks = (m + kMc - 1) / kMc;
        const int64_t num_p_panels = ncp / nrp;
        if (num_ic_blocks >= pool_.num_threads() || num_ic_blocks >= num_p_panels) {
          // Tall m: partition row blocks across threads, each packing its own
          // A panels.
          pool_.ParallelFor(0, num_ic_blocks, 1, [&](int64_t blk0, int64_t blk1) {
            std::vector<double> apack;
            for (int64_t blk = blk0; blk < blk1; ++blk) {
              const int ic = static_cast<int>(blk) * kMc;
              const int mc = std::min(kMc, m - ic);
              const int mcp = PackA(a, ic, mc, a0 + kc, kb, &apack);
              for (int p = 0; p < num_p_panels; ++p) {
                const double* bp = bpack.data() + static_cast<size_t>(p) * kb * nrp;
                const int nr = std::min(nrp, nc - p * nrp);
                for (int q = 0; q < mcp / kMr; ++q) {
                  const double* ap = apack.data() + static_cast<size_t>(q) * kb * kMr;
                  kernels_.gemm_micro(ap, bp, kb,
                                      out->row(ic + q * kMr) + o0 + jc + p * nrp,
                                      out->cols(), std::min(kMr, mc - q * kMr), nr);
                }
              }
            }
          });
        } else {
          // Skinny m (fewer row blocks than threads, e.g. weight-gradient
          // GEMMs where m is a hidden width): pack A once and partition the
          // B column panels across threads instead — each thread owns a
          // disjoint column range of out.
          std::vector<double> apack;
          for (int64_t blk = 0; blk < num_ic_blocks; ++blk) {
            const int ic = static_cast<int>(blk) * kMc;
            const int mc = std::min(kMc, m - ic);
            const int mcp = PackA(a, ic, mc, a0 + kc, kb, &apack);
            pool_.ParallelFor(0, num_p_panels, 1, [&](int64_t p0, int64_t p1) {
              for (int64_t p = p0; p < p1; ++p) {
                const double* bp = bpack.data() + static_cast<size_t>(p) * kb * nrp;
                const int nr = std::min(nrp, nc - static_cast<int>(p) * nrp);
                for (int q = 0; q < mcp / kMr; ++q) {
                  const double* ap = apack.data() + static_cast<size_t>(q) * kb * kMr;
                  kernels_.gemm_micro(
                      ap, bp, kb,
                      out->row(ic + q * kMr) + o0 + jc + static_cast<int>(p) * nrp,
                      out->cols(), std::min(kMr, mc - q * kMr), nr);
                }
              }
            });
          }
        }
      }
    }
  }

  // Packs the (ic, kc) panel of A into MR-wide k-major slivers, zero-padded
  // to full tiles. Returns the padded row count mcp.
  static int PackA(const Matrix& a, int ic, int mc, int kc, int kb,
                   std::vector<double>* apack) {
    const int mcp = static_cast<int>(RoundUp(mc, kMr));
    apack->assign(static_cast<size_t>(kb) * mcp, 0.0);
    for (int q = 0; q < mcp / kMr; ++q) {
      double* dst = apack->data() + static_cast<size_t>(q) * kb * kMr;
      const int valid = std::min(kMr, mc - q * kMr);
      for (int ir = 0; ir < valid; ++ir) {
        const double* a_row = a.row(ic + q * kMr + ir) + kc;
        for (int kk = 0; kk < kb; ++kk) dst[kk * kMr + ir] = a_row[kk];
      }
    }
    return mcp;
  }

  static int64_t RoundUp(int64_t v, int64_t multiple) {
    return (v + multiple - 1) / multiple * multiple;
  }

  LeafKernels kernels_;
  mutable ThreadPool pool_;
};

// ---------------------------------------------------------------------------
// SimdBackend: the ParallelBackend dispatch layer with the AVX2/FMA leaf
// kernels (la/simd_kernels.h) swapped in. The CPU probe and the
// PPFR_SIMD_DISABLE escape hatch are sampled once at construction; when
// either fails, the scalar leaf-kernel table is used instead, which makes
// every routine fall back to the exact ParallelBackend behaviour.
// ---------------------------------------------------------------------------

class SimdBackend final : public ParallelBackend {
 public:
  explicit SimdBackend(int num_threads)
      : ParallelBackend(num_threads, simd::KernelsUsable() ? SimdLeafKernels()
                                                           : kScalarLeafKernels),
        simd_active_(simd::KernelsUsable()) {}

  std::string name() const override { return "simd"; }
  bool simd_active() const override { return simd_active_; }

 private:
  const bool simd_active_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::unique_ptr<Backend>& BackendSlot() {
  static std::unique_ptr<Backend> slot;
  return slot;
}

// Worker-thread override installed by ThreadLocalBackendGuard.
thread_local Backend* t_backend_override = nullptr;

BackendKind g_active_kind = BackendKind::kParallel;
int g_active_threads = 0;  // requested value; 0 = hardware concurrency

// First-use initialisation from the environment. call_once makes a cold
// concurrent ActiveBackend() safe; swapping backends afterwards
// (SetActiveBackend) is an orchestration-thread-only operation, like the
// kernels themselves (see ThreadPool::ParallelFor).
std::once_flag g_env_init_once;

void InitFromEnvIfNeeded() {
  std::call_once(g_env_init_once, [] {
    if (BackendSlot() != nullptr) return;  // SetActiveBackend already ran
    BackendKind kind = BackendKind::kParallel;
    int threads = 0;
    if (const char* env = std::getenv("PPFR_LA_BACKEND")) {
      const std::string value(env);
      if (value == "reference") {
        kind = BackendKind::kReference;
      } else if (value == "simd") {
        kind = BackendKind::kSimd;
      } else {
        PPFR_CHECK(value == "parallel" || value.empty())
            << "PPFR_LA_BACKEND must be 'reference', 'parallel' or 'simd', got '"
            << value << "'";
      }
    }
    if (const char* env = std::getenv("PPFR_LA_THREADS")) threads = std::atoi(env);
    SetActiveBackend(kind, threads);
  });
}

}  // namespace

void Backend::GemmTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                                  const std::vector<int>& rows) const {
  SerialGemmTransBAccumRows(g, b, out, rows);
}

void Backend::GemmTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                                  const std::vector<int>& rows) const {
  SerialGemmTransAAccumRows(a, g, out, rows);
}

void Backend::SpmmAccumRows(const CsrMatrix& a, const Matrix& x, double alpha,
                            Matrix* out, const std::vector<int>& rows,
                            const std::vector<uint8_t>& x_row_nonzero) const {
  SerialSpmmAccumRows(a, x, alpha, out, rows, x_row_nonzero);
}

// Base lane-blocked kernels: the serial per-lane windowed naive loops.
// ReferenceBackend inherits these, which makes it the per-lane bitwise
// oracle; ParallelBackend/SimdBackend override with blocked/threaded paths
// that must match them lane for lane.

void Backend::GemmLanes(const Matrix& a, const Matrix& b, Matrix* out,
                        int lanes) const {
  NaiveGemmLanes(a, b, out, lanes);
}

void Backend::GemmLanesTransA(const Matrix& a, const Matrix& b, Matrix* out,
                              int lanes) const {
  NaiveGemmLanesTransA(a, b, out, lanes);
}

void Backend::GemmLanesTransB(const Matrix& a, const Matrix& b, Matrix* out,
                              int lanes) const {
  NaiveGemmLanesTransB(a, b, out, lanes);
}

void Backend::GemmLanesTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                                       const std::vector<int>& rows,
                                       int lanes) const {
  SerialGemmLanesTransBAccumRows(g, b, out, rows, lanes);
}

void Backend::GemmLanesTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                                       const std::vector<int>& rows,
                                       int lanes) const {
  SerialGemmLanesTransAAccumRows(a, g, out, rows, lanes);
}

// Unfused compositions — the bitwise definition of the fused contracts
// (ReferenceBackend keeps these; ParallelBackend overrides with single-pass
// loops that match them bit for bit).
double Backend::VAxpyDot(double alpha, const double* x, double* y, int64_t n) const {
  VAxpy(alpha, x, y, n);
  return VDot(y, y, n);
}

double Backend::VDotAxpy(double beta, const double* x, double* y, int64_t n) const {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
  return VDot(y, y, n);
}

std::string BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kReference:
      return "reference";
    case BackendKind::kParallel:
      return "parallel";
    case BackendKind::kSimd:
      return "simd";
  }
  return "unknown";
}

std::unique_ptr<Backend> MakeBackend(BackendKind kind, int num_threads) {
  switch (kind) {
    case BackendKind::kReference:
      return std::make_unique<ReferenceBackend>();
    case BackendKind::kParallel:
      return std::make_unique<ParallelBackend>(num_threads);
    case BackendKind::kSimd:
      return std::make_unique<SimdBackend>(num_threads);
  }
  PPFR_CHECK(false) << "unknown backend kind";
  return nullptr;
}

Backend& ActiveBackend() {
  if (t_backend_override != nullptr) return *t_backend_override;
  InitFromEnvIfNeeded();
  return *BackendSlot();
}

ThreadLocalBackendGuard::ThreadLocalBackendGuard(Backend* backend)
    : previous_(t_backend_override) {
  t_backend_override = backend;
}

ThreadLocalBackendGuard::~ThreadLocalBackendGuard() { t_backend_override = previous_; }

BackendKind ActiveBackendKind() {
  InitFromEnvIfNeeded();
  return g_active_kind;
}

void SetActiveBackend(BackendKind kind, int num_threads) {
  BackendSlot() = MakeBackend(kind, num_threads);
  g_active_kind = kind;
  g_active_threads = num_threads;
}

void ConfigureBackendFromFlags(const Flags& flags) {
  InitFromEnvIfNeeded();
  BackendKind kind = g_active_kind;
  int threads = g_active_threads;
  if (flags.Has("la_backend")) {
    const std::string value = flags.GetString("la_backend", "");
    if (value == "reference") {
      kind = BackendKind::kReference;
    } else if (value == "parallel") {
      kind = BackendKind::kParallel;
    } else if (value == "simd") {
      kind = BackendKind::kSimd;
    } else {
      PPFR_CHECK(false)
          << "--la_backend must be 'reference', 'parallel' or 'simd', got '"
          << value << "'";
    }
  }
  if (flags.Has("la_threads")) threads = flags.GetInt("la_threads", threads);
  // Avoid tearing down and respawning an identical thread pool when the
  // flags only restate the current configuration.
  if (kind != g_active_kind || threads != g_active_threads) {
    SetActiveBackend(kind, threads);
  }
}

ScopedBackend::ScopedBackend(BackendKind kind, int num_threads) {
  InitFromEnvIfNeeded();
  previous_kind_ = g_active_kind;
  previous_threads_ = g_active_threads;
  SetActiveBackend(kind, num_threads);
}

ScopedBackend::~ScopedBackend() { SetActiveBackend(previous_kind_, previous_threads_); }

}  // namespace ppfr::la

#ifndef PPFR_LA_SIMD_KERNELS_H_
#define PPFR_LA_SIMD_KERNELS_H_

#include <cstdint>

namespace ppfr::la::simd {

// SIMD-explicit leaf kernels behind la::SimdBackend (backend.cc). Everything
// here operates on raw double buffers so the dispatch/blocking layer above
// stays the single owner of shapes, packing and threading.
//
// Portability contract: the kernels are compiled with per-function target
// attributes (AVX2+FMA, plus an AVX-512F GEMM micro-kernel), so the
// translation unit builds under the portable baseline (-DPPFR_NATIVE=OFF)
// and the binary runs on any x86-64 — callers must gate every call on the
// runtime probes below. On non-x86 builds the probes return false and the
// kernels are compiled as aborting stubs.
//
// Determinism contract (see backend.cc): per-element results depend only on
// the inputs, never on chunk boundaries or the vector width —
//   * VAxpy/VScale/Hadamard are elementwise; the scalar tail uses the same
//     single-rounding operation as the vector lanes (std::fma for axpy), so
//     splitting a range at any point yields identical bits.
//   * VDot reduces over fixed-width lane accumulators combined in a fixed
//     order; the caller keeps ranges fixed (reduce-block scheme).
//   * The GEMM micro-kernels apply one fma per (element, k) in ascending k
//     order, so the AVX2 and AVX-512 variants are bitwise identical.

// True when this build can emit the SIMD code paths at all (x86-64 GCC/Clang).
bool CompiledWithSimd();

// Runtime CPU probes (cached after the first call).
bool CpuSupportsAvx2Fma();
bool CpuSupportsAvx512();

// True when the operator forced the scalar fallback via PPFR_SIMD_DISABLE=1
// (any non-empty value other than "0"). Re-read on every call so tests can
// toggle it around backend construction.
bool DisabledByEnv();
// PPFR_SIMD_AVX512=0 pins the GEMM micro-kernel to the AVX2 variant on
// AVX-512 hardware (bitwise identical either way; this is a bench/debug knob).
bool Avx512DisabledByEnv();

// CompiledWithSimd() && CpuSupportsAvx2Fma() && !DisabledByEnv(). Backends
// sample this once at construction.
bool KernelsUsable();

// GEMM register micro-kernels on packed panels, matching the ParallelBackend
// packing scheme: `ap` is a kb x 4 sliver (k-major, 4-wide rows), `bp` a
// k-major sliver of the kernel's packed width (8 for the AVX2 kernel, 16 for
// the AVX-512 one — the dispatch layer packs B to whatever width the active
// micro-kernel declares). Both slivers are zero-padded to full tiles.
// Accumulates into out[ir * out_stride + jr] for ir < mr, jr < nr.
//
// All variants apply exactly one fma per (out element, k) in ascending k
// order, so they are bitwise interchangeable.
void MicroKernel4x8Avx2(const double* ap, const double* bp, int kb,
                        double* out, int64_t out_stride, int mr, int nr);
// AVX-512F variant over a 16-wide packed B sliver (two zmm per k step, so
// half the broadcast traffic per fma of the 8-wide tile).
void MicroKernel4x16Avx512(const double* ap, const double* bp, int kb,
                           double* out, int64_t out_stride, int mr, int nr);

// Flat-vector kernels (AVX2+FMA).
double VDot(const double* a, const double* b, int64_t n);
void VAxpy(double alpha, const double* x, double* y, int64_t n);
void VScale(double alpha, double* x, int64_t n);
void Hadamard(const double* a, const double* b, double* out, int64_t n);

// Fused CG-step kernels: one memory pass over y instead of the two that the
// separate axpy + dot calls cost. Bitwise contract (relied on by the CG
// solver and tests/la_backend_test.cc):
//   * AxpyDot(alpha, x, y, n): y += alpha·x exactly as VAxpy (fmadd lanes,
//     std::fma tail), and the returned yᵀy of the UPDATED y accumulates in
//     exactly VDot's fixed-lane pattern — so the result equals calling
//     VAxpy then VDot(y, y), bit for bit.
//   * XpayDot(beta, x, y, n): y = x + beta·y elementwise (single-rounded
//     fmadd lanes, std::fma tail — the CG p-update), returning yᵀy of the
//     updated y in VDot's pattern, so a follow-up VDot(y, y) reproduces the
//     returned value bit for bit.
double AxpyDot(double alpha, const double* x, double* y, int64_t n);
double XpayDot(double beta, const double* x, double* y, int64_t n);

// Multi-column CSR row kernel: out_row[j] += Σ_k (alpha·vals[k])·x(cols[k], j)
// over one output row's nonzero list (k in CSR order), x row-major with the
// given stride. Bitwise contract: per element this is the fma chain that
// repeated VAxpy calls over the nonzeros produce (fmadd lanes, std::fma
// tail — one fma per (element, k), k ascending), so routing a row through
// this kernel instead of per-nonzero VAxpy never changes a bit. The win is
// register blocking over columns: each 8-wide output block is loaded and
// stored ONCE for the whole nonzero list instead of once per nonzero, which
// turns the x-row gathers into the only memory traffic — and widens with the
// fused-replay lane count.
void SpmmRow(const double* vals, const int* cols, int64_t nnz, double alpha,
             const double* x, int64_t x_stride, double* out_row, int64_t n);

}  // namespace ppfr::la::simd

#endif  // PPFR_LA_SIMD_KERNELS_H_

#ifndef PPFR_LA_STATS_H_
#define PPFR_LA_STATS_H_

#include <vector>

namespace ppfr::la {

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

// Population variance (divides by n); 0 for fewer than two samples.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

// Pearson correlation coefficient in [-1, 1]; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

// Area under the ROC curve for a binary classification where `scores_pos`
// should rank ABOVE `scores_neg`. Computed with the Mann-Whitney U statistic
// with tie correction: AUC = P(pos > neg) + 0.5 P(pos == neg).
double AucFromScores(const std::vector<double>& scores_pos,
                     const std::vector<double>& scores_neg);

}  // namespace ppfr::la

#endif  // PPFR_LA_STATS_H_

#include "la/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppfr::la {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  PPFR_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double AucFromScores(const std::vector<double>& scores_pos,
                     const std::vector<double>& scores_neg) {
  PPFR_CHECK(!scores_pos.empty());
  PPFR_CHECK(!scores_neg.empty());
  // Rank-sum formulation: sort the union, sum the (tie-averaged) ranks of the
  // positives, then U = R_pos - n_pos (n_pos + 1) / 2 and AUC = U / (n_pos n_neg).
  struct Entry {
    double score;
    bool positive;
  };
  std::vector<Entry> all;
  all.reserve(scores_pos.size() + scores_neg.size());
  for (double s : scores_pos) all.push_back({s, true});
  for (double s : scores_neg) all.push_back({s, false});
  std::sort(all.begin(), all.end(),
            [](const Entry& a, const Entry& b) { return a.score < b.score; });

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    while (j < all.size() && all[j].score == all[i].score) ++j;
    // Average rank of the tie group, 1-based.
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (size_t k = i; k < j; ++k) {
      if (all[k].positive) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double n_pos = static_cast<double>(scores_pos.size());
  const double n_neg = static_cast<double>(scores_neg.size());
  const double u = rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0;
  return u / (n_pos * n_neg);
}

}  // namespace ppfr::la

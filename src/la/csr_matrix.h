#ifndef PPFR_LA_CSR_MATRIX_H_
#define PPFR_LA_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace ppfr::la {

// A single (row, col, value) entry used to build sparse matrices.
struct Triplet {
  int row;
  int col;
  double value;
};

// Chunk boundaries over [0, num_rows) balanced on cumulative nnz: returns
// num_chunks+1 non-decreasing row indices with bounds.front()==0 and
// bounds.back()==num_rows, each interior boundary placed (via lower_bound on
// the prefix-sum row_ptr) so every chunk carries ~nnz/num_chunks entries.
// Shared by the parallel SpMM kernel and the fused edge-softmax forward so a
// few hub rows in a power-law graph can't serialise one chunk.
std::vector<int64_t> NnzBalancedRowBounds(const std::vector<int64_t>& row_ptr,
                                          int64_t num_rows, int64_t num_chunks);

// Compressed-sparse-row matrix of doubles. Used for normalised adjacency
// operators (Â), similarity matrices S and their Laplacians — all of which
// are multiplied against dense embedding matrices during training.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) {}
  CsrMatrix(int rows, int cols) : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
    RegisterArenaBytes();
  }

  // Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(int rows, int cols, std::vector<Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  // out = this * x (SpMM). Shapes: (r,c) x (c,n) -> (r,n).
  Matrix Multiply(const Matrix& x) const;

  // out += alpha * (this * x), into a preallocated (r,n) matrix.
  void MultiplyAccum(const Matrix& x, double alpha, Matrix* out) const;

  // Row-subset variant: accumulates only the output rows listed in `rows`
  // (distinct indices, each computed exactly as MultiplyAccum would).
  // Dispatches through the active backend: the autograd row-support
  // machinery usually passes the small nonzero-row support of a seeded
  // backward pass, which stays on the serial path, while large supports get
  // threshold-gated threading and SIMD inner loops.
  //
  // `x_row_nonzero` (sized >= x.rows(), or empty for "unknown") marks the
  // rows of x that may be nonzero; entries pointing at an unmarked row are
  // skipped. A skipped entry only ever contributes an exact ±0 product, so
  // the result is bitwise identical to the unmasked computation — the mask
  // just avoids streaming known-zero rows through the cache.
  void MultiplyAccumRows(const Matrix& x, double alpha, Matrix* out,
                         const std::vector<int>& rows,
                         const std::vector<uint8_t>& x_row_nonzero = {}) const;

  CsrMatrix Transposed() const;

  // Entry lookup by binary search within the row; 0.0 when absent.
  double At(int row, int col) const;

  // Converts to dense (small matrices / tests only).
  Matrix ToDense() const;

 private:
  // Re-registers this matrix's buffer bytes with the la arena counters; call
  // after any step that (re)sizes the three buffers.
  void RegisterArenaBytes() {
    arena_.Set(static_cast<int64_t>(row_ptr_.size() * sizeof(int64_t) +
                                    col_idx_.size() * sizeof(int) +
                                    values_.size() * sizeof(double)));
  }

  int rows_;
  int cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;  // sorted within each row
  std::vector<double> values_;
  // Last member: default copy/move/destroy keep the arena counters in sync.
  internal::ArenaRegistration arena_;
};

}  // namespace ppfr::la

#endif  // PPFR_LA_CSR_MATRIX_H_

#include "la/csr_matrix.h"

#include <algorithm>

#include "la/backend.h"

namespace ppfr::la {

std::vector<int64_t> NnzBalancedRowBounds(const std::vector<int64_t>& row_ptr,
                                          int64_t num_rows, int64_t num_chunks) {
  PPFR_CHECK_GE(num_chunks, 1);
  PPFR_CHECK_GE(static_cast<int64_t>(row_ptr.size()), num_rows + 1);
  const int64_t nnz = row_ptr[static_cast<size_t>(num_rows)];
  std::vector<int64_t> bounds(static_cast<size_t>(num_chunks) + 1, 0);
  bounds[static_cast<size_t>(num_chunks)] = num_rows;
  for (int64_t c = 1; c < num_chunks; ++c) {
    const int64_t target = c * nnz / num_chunks;
    const auto it = std::lower_bound(row_ptr.begin(),
                                     row_ptr.begin() + num_rows + 1, target);
    const int64_t row = std::min<int64_t>(it - row_ptr.begin(), num_rows);
    bounds[static_cast<size_t>(c)] = std::max(bounds[static_cast<size_t>(c - 1)], row);
  }
  return bounds;
}

CsrMatrix CsrMatrix::FromTriplets(int rows, int cols, std::vector<Triplet> triplets) {
  CsrMatrix m(rows, cols);
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    PPFR_CHECK_GE(t.row, 0);
    PPFR_CHECK_LT(t.row, rows);
    PPFR_CHECK_GE(t.col, 0);
    PPFR_CHECK_LT(t.col, cols);
    double v = 0.0;
    size_t j = i;
    while (j < triplets.size() && triplets[j].row == t.row && triplets[j].col == t.col) {
      v += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(t.col);
    m.values_.push_back(v);
    m.row_ptr_[t.row + 1]++;
    i = j;
  }
  // Deduplicated per-row counts -> prefix sums, in place.
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  m.RegisterArenaBytes();
  return m;
}

Matrix CsrMatrix::Multiply(const Matrix& x) const {
  PPFR_CHECK_EQ(cols_, x.rows());
  Matrix out(rows_, x.cols());
  MultiplyAccum(x, 1.0, &out);
  return out;
}

void CsrMatrix::MultiplyAccum(const Matrix& x, double alpha, Matrix* out) const {
  PPFR_CHECK_EQ(cols_, x.rows());
  PPFR_CHECK_EQ(out->rows(), rows_);
  PPFR_CHECK_EQ(out->cols(), x.cols());
  ActiveBackend().SpmmAccum(*this, x, alpha, out);
}

void CsrMatrix::MultiplyAccumRows(const Matrix& x, double alpha, Matrix* out,
                                  const std::vector<int>& rows,
                                  const std::vector<uint8_t>& x_row_nonzero) const {
  PPFR_CHECK_EQ(cols_, x.rows());
  PPFR_CHECK_EQ(out->rows(), rows_);
  PPFR_CHECK_EQ(out->cols(), x.cols());
  if (!x_row_nonzero.empty()) {
    PPFR_CHECK_GE(static_cast<int>(x_row_nonzero.size()), x.rows());
  }
  ActiveBackend().SpmmAccumRows(*this, x, alpha, out, rows, x_row_nonzero);
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triplets.push_back({col_idx_[k], r, values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

double CsrMatrix::At(int row, int col) const {
  PPFR_CHECK_GE(row, 0);
  PPFR_CHECK_LT(row, rows_);
  const auto begin = col_idx_.begin() + row_ptr_[row];
  const auto end = col_idx_.begin() + row_ptr_[row + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[it - col_idx_.begin()];
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) += values_[k];
    }
  }
  return out;
}

}  // namespace ppfr::la

#ifndef PPFR_LA_MATRIX_H_
#define PPFR_LA_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace ppfr::la {

// Row-major dense matrix of doubles. The GNN stack works in double precision
// because the influence-function machinery (HVP + conjugate gradient) needs
// the numerical headroom.
// Bumped once per dense buffer allocation: shape construction and copy
// construction with a nonzero size. (Copy ASSIGNMENT is uncounted — the
// destination vector may reuse its capacity, so it is not reliably an
// allocation.) The influence-engine bench uses the delta to demonstrate that
// tape replay/pooling keeps the hot loop allocation-free; relaxed ordering
// because only totals matter.
int64_t MatrixAllocCount();

// Byte-level arena accounting across the dense-matrix and CSR buffers:
// `ArenaBytesInUse` is the logical bytes currently registered (buffer sizes,
// not allocator capacities), `ArenaPeakBytes` the high-water mark since the
// last `ResetArenaPeakBytes` (which rebases the peak to the current level).
// The scale bench's "bounded-peak-memory" claim is measured against this
// peak per stage; relaxed atomics because only totals matter.
int64_t ArenaBytesInUse();
int64_t ArenaPeakBytes();
void ResetArenaPeakBytes();

// Process peak resident set (VmHWM) in bytes, read from /proc/self/status;
// 0 where the kernel does not expose it. Unlike the arena counters this
// includes code, allocator slack and every non-matrix allocation, so the two
// together separate "our data structures" from "everything else".
int64_t ProcessPeakRssBytes();

namespace internal {
void BumpMatrixAllocCount();

// Tracks one object's registered share of the process arena-byte counters.
// Embed as the LAST member and call Set(bytes) whenever the owning object's
// buffer sizes change; copies re-register the source's share, moves transfer
// it, destruction releases it — so the default special members of the owner
// keep the global counters consistent.
class ArenaRegistration {
 public:
  ArenaRegistration() = default;
  ArenaRegistration(const ArenaRegistration& other) { Set(other.bytes_); }
  ArenaRegistration& operator=(const ArenaRegistration& other) {
    Set(other.bytes_);
    return *this;
  }
  ArenaRegistration(ArenaRegistration&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ArenaRegistration& operator=(ArenaRegistration&& other) noexcept {
    if (this != &other) {
      Set(0);
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~ArenaRegistration() { Set(0); }

  void Set(int64_t bytes);

 private:
  int64_t bytes_ = 0;
};
}  // namespace internal

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
    PPFR_CHECK_GE(rows, 0);
    PPFR_CHECK_GE(cols, 0);
    if (!data_.empty()) internal::BumpMatrixAllocCount();
    arena_.Set(static_cast<int64_t>(data_.size()) * sizeof(double));
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    if (!data_.empty()) internal::BumpMatrixAllocCount();
    arena_.Set(static_cast<int64_t>(data_.size()) * sizeof(double));
  }
  Matrix& operator=(const Matrix& other) = default;
  // Declaring the counting copy constructor suppresses the implicit move
  // members; restore them (moves transfer a buffer, they don't allocate).
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }

  double& operator()(int r, int c) {
    CheckIndex(r, c);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    CheckIndex(r, c);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(int r) {
    CheckRow(r);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const double* row(int r) const {
    CheckRow(r);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(double value);
  void Zero() { Fill(0.0); }
  // Copies `other`'s contents into this matrix without reallocating (shapes
  // must already match) — the tape replay arena's refill primitive.
  void CopyDataFrom(const Matrix& other);

  // this += alpha * other (shapes must match).
  void Axpy(double alpha, const Matrix& other);
  // this *= alpha.
  void Scale(double alpha);

  double SumAll() const;
  double FrobeniusNorm() const;
  double MaxAbs() const;

  std::string DebugString(int max_rows = 6, int max_cols = 8) const;

 private:
  // Debug-build bounds checks (free in release). Out-of-range access used to
  // silently read/corrupt neighbouring rows.
  void CheckIndex(int r, int c) const {
    PPFR_DCHECK_GE(r, 0) << "row index out of range for " << rows_ << "x" << cols_;
    PPFR_DCHECK_LT(r, rows_) << "row index out of range for " << rows_ << "x" << cols_;
    PPFR_DCHECK_GE(c, 0) << "col index out of range for " << rows_ << "x" << cols_;
    PPFR_DCHECK_LT(c, cols_) << "col index out of range for " << rows_ << "x" << cols_;
  }
  void CheckRow(int r) const {
    PPFR_DCHECK_GE(r, 0) << "row index out of range for " << rows_ << "x" << cols_;
    PPFR_DCHECK_LT(r, rows_) << "row index out of range for " << rows_ << "x" << cols_;
  }

  int rows_;
  int cols_;
  std::vector<double> data_;
  // Last member: its default copy/move/destroy semantics keep the global
  // arena-byte counters consistent with `data_` (see ArenaRegistration).
  internal::ArenaRegistration arena_;
};

// out = a * b (dense GEMM). Shapes: (m,k) x (k,n) -> (m,n).
Matrix MatMul(const Matrix& a, const Matrix& b);

// out = aᵀ * b. Shapes: (k,m) x (k,n) -> (m,n).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

// out = a * bᵀ. Shapes: (m,k) x (n,k) -> (m,n).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

Matrix Transpose(const Matrix& a);

// Elementwise helpers.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);

// Frobenius inner product <a, b>.
double Dot(const Matrix& a, const Matrix& b);

// Row-subset GEMM accumulators used by the sparsity-propagating seeded
// backward (autograd row-support machinery). Both dispatch through the
// active backend: `rows` (distinct indices — a nonzero-row support) is
// usually tiny, so the serial loops stay the base path, but large supports
// (dense graphs) get threshold-gated threading and SIMD inner loops under
// the parallel/simd backends.
//
// out(r, :) += g(r, :) · bᵀ for r in rows.   g: (m,n), b: (k,n), out: (m,k).
void GemmTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                         const std::vector<int>& rows);
// out += Σ_{r in rows} a(r, :)ᵀ ⊗ g(r, :).   a: (m,k), g: (m,n), out: (k,n).
void GemmTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                         const std::vector<int>& rows);

// Lane-blocked GEMM wrappers behind the fused multi-point tape replay
// (see Backend::GemmLanes* in la/backend.h for the lane layout and bitwise
// contract). `a` may be lane-SHARED (a.cols() == b.rows() for MatMulLanes;
// shape-detected) or lane-wide. Shapes below use L = lanes, per-lane widths
// inferred from the wide operand.
//
// out = [a_0·b_0 | …]: a (m,k) or (m,k·L), b (k,n·L) -> out (m,n·L).
Matrix MatMulLanes(const Matrix& a, const Matrix& b, int lanes);
// out_l = a_lᵀ·b_l: a (m,k) or (m,k·L), b (m,n·L) -> out (k,n·L). A shared
// `a` can be shape-ambiguous here (its width alone does not reveal the
// per-lane k), so the caller states it: the recording op knows whether its
// left operand was lane-shared.
Matrix MatMulLanesTransA(const Matrix& a, const Matrix& b, int lanes,
                         bool a_shared);
// out_l = a_l·b_lᵀ: a (m,n·L), b (k,n·L) -> out (m,k·L).
Matrix MatMulLanesTransB(const Matrix& a, const Matrix& b, int lanes);
// Row-support lane accumulators (see GemmTransBAccumRows/GemmTransAAccumRows
// above for the narrow contracts; these run all L lanes per listed row):
// out_l(r,:) += g_l(r,:)·b_lᵀ — g (m,n·L), b (k,n·L), out (m,k·L).
void GemmLanesTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                              const std::vector<int>& rows, int lanes);
// out_l += Σ_{r in rows} a_l(r,:)ᵀ⊗g_l(r,:) — a (m,k) or (m,k·L), g (m,n·L),
// out (k,n·L).
void GemmLanesTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                              const std::vector<int>& rows, int lanes);

// Row-wise softmax (numerically stable).
Matrix SoftmaxRows(const Matrix& logits);

// Per-row argmax (ties resolved to the smallest index).
std::vector<int> ArgmaxRows(const Matrix& m);

}  // namespace ppfr::la

#endif  // PPFR_LA_MATRIX_H_

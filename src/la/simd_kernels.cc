#include "la/simd_kernels.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PPFR_SIMD_X86 1
#include <immintrin.h>
#else
#define PPFR_SIMD_X86 0
#endif

namespace ppfr::la::simd {

bool CompiledWithSimd() { return PPFR_SIMD_X86 != 0; }

bool CpuSupportsAvx2Fma() {
#if PPFR_SIMD_X86
  static const bool supported = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return supported;
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if PPFR_SIMD_X86
  static const bool supported = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx512f");
  }();
  return supported;
#else
  return false;
#endif
}

namespace {
bool EnvFlagSet(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}
}  // namespace

bool DisabledByEnv() { return EnvFlagSet("PPFR_SIMD_DISABLE"); }

bool Avx512DisabledByEnv() {
  const char* env = std::getenv("PPFR_SIMD_AVX512");
  return env != nullptr && env[0] == '0' && env[1] == '\0';
}

bool KernelsUsable() {
  return CompiledWithSimd() && CpuSupportsAvx2Fma() && !DisabledByEnv();
}

#if PPFR_SIMD_X86

#define PPFR_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define PPFR_TARGET_AVX512 __attribute__((target("avx512f")))

PPFR_TARGET_AVX2
void MicroKernel4x8Avx2(const double* ap, const double* bp, int kb,
                        double* out, int64_t out_stride, int mr, int nr) {
  // 4x8 accumulator block: two ymm per packed-A row, eight ymm total, plus
  // one broadcast register and two B registers — comfortably inside the 16
  // ymm registers. k ascends, so every out element sees one fma per k in a
  // fixed order regardless of tiling or threading.
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (int kk = 0; kk < kb; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(bp + static_cast<int64_t>(kk) * 8);
    const __m256d b1 = _mm256_loadu_pd(bp + static_cast<int64_t>(kk) * 8 + 4);
    const double* av = ap + static_cast<int64_t>(kk) * 4;
    __m256d a = _mm256_broadcast_sd(av + 0);
    c00 = _mm256_fmadd_pd(a, b0, c00);
    c01 = _mm256_fmadd_pd(a, b1, c01);
    a = _mm256_broadcast_sd(av + 1);
    c10 = _mm256_fmadd_pd(a, b0, c10);
    c11 = _mm256_fmadd_pd(a, b1, c11);
    a = _mm256_broadcast_sd(av + 2);
    c20 = _mm256_fmadd_pd(a, b0, c20);
    c21 = _mm256_fmadd_pd(a, b1, c21);
    a = _mm256_broadcast_sd(av + 3);
    c30 = _mm256_fmadd_pd(a, b0, c30);
    c31 = _mm256_fmadd_pd(a, b1, c31);
  }
  if (mr == 4 && nr == 8) {
    double* r0 = out;
    double* r1 = out + out_stride;
    double* r2 = out + 2 * out_stride;
    double* r3 = out + 3 * out_stride;
    _mm256_storeu_pd(r0, _mm256_add_pd(_mm256_loadu_pd(r0), c00));
    _mm256_storeu_pd(r0 + 4, _mm256_add_pd(_mm256_loadu_pd(r0 + 4), c01));
    _mm256_storeu_pd(r1, _mm256_add_pd(_mm256_loadu_pd(r1), c10));
    _mm256_storeu_pd(r1 + 4, _mm256_add_pd(_mm256_loadu_pd(r1 + 4), c11));
    _mm256_storeu_pd(r2, _mm256_add_pd(_mm256_loadu_pd(r2), c20));
    _mm256_storeu_pd(r2 + 4, _mm256_add_pd(_mm256_loadu_pd(r2 + 4), c21));
    _mm256_storeu_pd(r3, _mm256_add_pd(_mm256_loadu_pd(r3), c30));
    _mm256_storeu_pd(r3 + 4, _mm256_add_pd(_mm256_loadu_pd(r3 + 4), c31));
    return;
  }
  // Edge tile: spill the full 4x8 accumulator and add only the valid window.
  double acc[32];
  _mm256_storeu_pd(acc + 0, c00);
  _mm256_storeu_pd(acc + 4, c01);
  _mm256_storeu_pd(acc + 8, c10);
  _mm256_storeu_pd(acc + 12, c11);
  _mm256_storeu_pd(acc + 16, c20);
  _mm256_storeu_pd(acc + 20, c21);
  _mm256_storeu_pd(acc + 24, c30);
  _mm256_storeu_pd(acc + 28, c31);
  for (int ir = 0; ir < mr; ++ir) {
    double* out_row = out + ir * out_stride;
    for (int jr = 0; jr < nr; ++jr) out_row[jr] += acc[ir * 8 + jr];
  }
}

PPFR_TARGET_AVX512
void MicroKernel4x16Avx512(const double* ap, const double* bp, int kb,
                           double* out, int64_t out_stride, int mr, int nr) {
  // 4x16 tile: two zmm per packed-A row (eight accumulators), two B loads
  // and four broadcasts per k step for eight fmas — the broadcast traffic
  // per fma is half that of the 8-wide tile, which is what the wider packing
  // buys. Per out element the operation sequence is identical to the AVX2
  // kernel (one fma per k, ascending), so the variants are bitwise
  // interchangeable.
  __m512d c00 = _mm512_setzero_pd(), c01 = _mm512_setzero_pd();
  __m512d c10 = _mm512_setzero_pd(), c11 = _mm512_setzero_pd();
  __m512d c20 = _mm512_setzero_pd(), c21 = _mm512_setzero_pd();
  __m512d c30 = _mm512_setzero_pd(), c31 = _mm512_setzero_pd();
  for (int kk = 0; kk < kb; ++kk) {
    const __m512d b0 = _mm512_loadu_pd(bp + static_cast<int64_t>(kk) * 16);
    const __m512d b1 = _mm512_loadu_pd(bp + static_cast<int64_t>(kk) * 16 + 8);
    const double* av = ap + static_cast<int64_t>(kk) * 4;
    __m512d a = _mm512_set1_pd(av[0]);
    c00 = _mm512_fmadd_pd(a, b0, c00);
    c01 = _mm512_fmadd_pd(a, b1, c01);
    a = _mm512_set1_pd(av[1]);
    c10 = _mm512_fmadd_pd(a, b0, c10);
    c11 = _mm512_fmadd_pd(a, b1, c11);
    a = _mm512_set1_pd(av[2]);
    c20 = _mm512_fmadd_pd(a, b0, c20);
    c21 = _mm512_fmadd_pd(a, b1, c21);
    a = _mm512_set1_pd(av[3]);
    c30 = _mm512_fmadd_pd(a, b0, c30);
    c31 = _mm512_fmadd_pd(a, b1, c31);
  }
  if (mr == 4 && nr == 16) {
    double* r0 = out;
    double* r1 = out + out_stride;
    double* r2 = out + 2 * out_stride;
    double* r3 = out + 3 * out_stride;
    _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c00));
    _mm512_storeu_pd(r0 + 8, _mm512_add_pd(_mm512_loadu_pd(r0 + 8), c01));
    _mm512_storeu_pd(r1, _mm512_add_pd(_mm512_loadu_pd(r1), c10));
    _mm512_storeu_pd(r1 + 8, _mm512_add_pd(_mm512_loadu_pd(r1 + 8), c11));
    _mm512_storeu_pd(r2, _mm512_add_pd(_mm512_loadu_pd(r2), c20));
    _mm512_storeu_pd(r2 + 8, _mm512_add_pd(_mm512_loadu_pd(r2 + 8), c21));
    _mm512_storeu_pd(r3, _mm512_add_pd(_mm512_loadu_pd(r3), c30));
    _mm512_storeu_pd(r3 + 8, _mm512_add_pd(_mm512_loadu_pd(r3 + 8), c31));
    return;
  }
  double acc[64];
  _mm512_storeu_pd(acc + 0, c00);
  _mm512_storeu_pd(acc + 8, c01);
  _mm512_storeu_pd(acc + 16, c10);
  _mm512_storeu_pd(acc + 24, c11);
  _mm512_storeu_pd(acc + 32, c20);
  _mm512_storeu_pd(acc + 40, c21);
  _mm512_storeu_pd(acc + 48, c30);
  _mm512_storeu_pd(acc + 56, c31);
  for (int ir = 0; ir < mr; ++ir) {
    double* out_row = out + ir * out_stride;
    for (int jr = 0; jr < nr; ++jr) out_row[jr] += acc[ir * 16 + jr];
  }
}

PPFR_TARGET_AVX2
double VDot(const double* a, const double* b, int64_t n) {
  // Two fixed 4-wide lane accumulators (an 8-element stride pattern that
  // depends only on n), combined lane-by-lane in a fixed order, then the
  // scalar tail. The caller is responsible for keeping ranges fixed across
  // thread counts (the reduce-block scheme in backend.cc).
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                           acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

PPFR_TARGET_AVX2
void VAxpy(double alpha, const double* x, double* y, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  // std::fma matches the vector lanes' single rounding, so an element lands
  // on the same bits whether a range split put it in a lane or in the tail.
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

PPFR_TARGET_AVX2
double AxpyDot(double alpha, const double* x, double* y, int64_t n) {
  // Fused y += alpha·x; returns yᵀy of the updated y. The update applies
  // VAxpy's exact per-element operation (fmadd lanes, std::fma tail) and the
  // reduction accumulates in VDot's exact pattern (two 4-wide accumulators on
  // an 8-element stride, one optional 4-wide step into acc0, fixed lane
  // combine, scalar tail), so the result is bitwise identical to VAxpy
  // followed by VDot(y, y) — in one pass over y instead of three.
  const __m256d va = _mm256_set1_pd(alpha);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 =
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d y1 =
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4));
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
    acc0 = _mm256_fmadd_pd(y0, y0, acc0);
    acc1 = _mm256_fmadd_pd(y1, y1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d y0 =
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(y + i, y0);
    acc0 = _mm256_fmadd_pd(y0, y0, acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    y[i] = std::fma(alpha, x[i], y[i]);
    s += y[i] * y[i];
  }
  return s;
}

PPFR_TARGET_AVX2
double XpayDot(double beta, const double* x, double* y, int64_t n) {
  // Fused y = x + beta·y (the CG search-direction update, single-rounded per
  // element); returns yᵀy of the updated y in VDot's exact accumulation
  // pattern, so VDot(y, y) afterwards reproduces the returned bits.
  const __m256d vb = _mm256_set1_pd(beta);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 =
        _mm256_fmadd_pd(vb, _mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i));
    const __m256d y1 =
        _mm256_fmadd_pd(vb, _mm256_loadu_pd(y + i + 4), _mm256_loadu_pd(x + i + 4));
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
    acc0 = _mm256_fmadd_pd(y0, y0, acc0);
    acc1 = _mm256_fmadd_pd(y1, y1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d y0 =
        _mm256_fmadd_pd(vb, _mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, y0);
    acc0 = _mm256_fmadd_pd(y0, y0, acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    y[i] = std::fma(beta, y[i], x[i]);
    s += y[i] * y[i];
  }
  return s;
}

PPFR_TARGET_AVX2
void SpmmRow(const double* vals, const int* cols, int64_t nnz, double alpha,
             const double* x, int64_t x_stride, double* out_row, int64_t n) {
  // Column-register-blocked CSR row accumulate. Each 8-wide output block
  // lives in two ymm across the WHOLE nonzero list (load once, store once);
  // per element the k loop applies exactly the fma chain repeated VAxpy
  // calls would (alpha·vals[k] is the same double product every time it is
  // recomputed, and std::fma in the tail matches the fmadd lanes), so the
  // kernel is bitwise the per-nonzero axpy sequence.
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256d y0 = _mm256_loadu_pd(out_row + j);
    __m256d y1 = _mm256_loadu_pd(out_row + j + 4);
    for (int64_t k = 0; k < nnz; ++k) {
      const __m256d w = _mm256_set1_pd(alpha * vals[k]);
      const double* x_row = x + static_cast<size_t>(cols[k]) * x_stride;
      y0 = _mm256_fmadd_pd(w, _mm256_loadu_pd(x_row + j), y0);
      y1 = _mm256_fmadd_pd(w, _mm256_loadu_pd(x_row + j + 4), y1);
    }
    _mm256_storeu_pd(out_row + j, y0);
    _mm256_storeu_pd(out_row + j + 4, y1);
  }
  if (j + 4 <= n) {
    __m256d y0 = _mm256_loadu_pd(out_row + j);
    for (int64_t k = 0; k < nnz; ++k) {
      const __m256d w = _mm256_set1_pd(alpha * vals[k]);
      const double* x_row = x + static_cast<size_t>(cols[k]) * x_stride;
      y0 = _mm256_fmadd_pd(w, _mm256_loadu_pd(x_row + j), y0);
    }
    _mm256_storeu_pd(out_row + j, y0);
    j += 4;
  }
  for (; j < n; ++j) {
    double acc = out_row[j];
    for (int64_t k = 0; k < nnz; ++k) {
      acc = std::fma(alpha * vals[k],
                     x[static_cast<size_t>(cols[k]) * x_stride + j], acc);
    }
    out_row[j] = acc;
  }
}

PPFR_TARGET_AVX2
void VScale(double alpha, double* x, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

PPFR_TARGET_AVX2
void Hadamard(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

#else  // !PPFR_SIMD_X86

// Aborting stubs: KernelsUsable() is false on these builds, so reaching one
// of these means a dispatch-layer bug, not a platform limitation.
void MicroKernel4x8Avx2(const double*, const double*, int, double*, int64_t, int,
                        int) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
}
void MicroKernel4x16Avx512(const double*, const double*, int, double*, int64_t, int,
                           int) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
}
double VDot(const double*, const double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
  return 0.0;
}
void VAxpy(double, const double*, double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
}
double AxpyDot(double, const double*, double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
  return 0.0;
}
double XpayDot(double, const double*, double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
  return 0.0;
}
void SpmmRow(const double*, const int*, int64_t, double, const double*, int64_t,
             double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
}
void VScale(double, double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
}
void Hadamard(const double*, const double*, double*, int64_t) {
  PPFR_CHECK(false) << "SIMD kernels are not compiled into this build";
}

#endif  // PPFR_SIMD_X86

}  // namespace ppfr::la::simd

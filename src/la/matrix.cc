#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ppfr::la {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    PPFR_CHECK_EQ(rows[r].size(), static_cast<size_t>(m.cols()));
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

void Matrix::Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::Axpy(double alpha, const Matrix& other) {
  PPFR_CHECK(SameShape(other));
  const double* src = other.data();
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * src[i];
}

void Matrix::Scale(double alpha) {
  for (auto& v : data_) v *= alpha;
}

double Matrix::SumAll() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    os << "\n  [";
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      os << (c ? ", " : "") << (*this)(r, c);
    }
    if (cols_ > max_cols) os << ", ...";
    os << "]";
  }
  if (rows_ > max_rows) os << "\n  ...";
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  PPFR_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (int i = 0; i < a.rows(); ++i) {
    double* out_row = out.row(i);
    const double* a_row = a.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      const double* b_row = b.row(k);
      for (int j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  PPFR_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    const double* a_row = a.row(k);
    const double* b_row = b.row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* out_row = out.row(i);
      for (int j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  PPFR_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i);
    double* out_row = out.row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row(j);
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a_row[k] * b_row[k];
      out_row[j] = s;
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  Matrix out = a;
  out.Axpy(1.0, b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  Matrix out = a;
  out.Axpy(-1.0, b);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  const double* pa = a.data();
  const double* pb = b.data();
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    const double* in = logits.row(r);
    double* o = out.row(r);
    double mx = in[0];
    for (int c = 1; c < logits.cols(); ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < logits.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (int c = 0; c < logits.cols(); ++c) o[c] /= sum;
  }
  return out;
}

std::vector<int> ArgmaxRows(const Matrix& m) {
  std::vector<int> out(m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    int best = 0;
    for (int c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

}  // namespace ppfr::la

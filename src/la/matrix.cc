#include "la/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "la/backend.h"

namespace ppfr::la {
namespace {
std::atomic<int64_t> g_matrix_alloc_count{0};
std::atomic<int64_t> g_arena_bytes{0};
std::atomic<int64_t> g_arena_peak_bytes{0};

// Lift the peak to at least `bytes` (CAS loop; contention is rare because
// peaks only move on growth).
void RaiseArenaPeak(int64_t bytes) {
  int64_t peak = g_arena_peak_bytes.load(std::memory_order_relaxed);
  while (bytes > peak &&
         !g_arena_peak_bytes.compare_exchange_weak(peak, bytes,
                                                   std::memory_order_relaxed)) {
  }
}
}  // namespace

int64_t MatrixAllocCount() { return g_matrix_alloc_count.load(std::memory_order_relaxed); }

int64_t ArenaBytesInUse() { return g_arena_bytes.load(std::memory_order_relaxed); }

int64_t ArenaPeakBytes() { return g_arena_peak_bytes.load(std::memory_order_relaxed); }

void ResetArenaPeakBytes() {
  // Rebase to the current level, not zero: the peak should never read below
  // what is live right now.
  g_arena_peak_bytes.store(g_arena_bytes.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

int64_t ProcessPeakRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  int64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

namespace internal {
void BumpMatrixAllocCount() {
  g_matrix_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

void ArenaRegistration::Set(int64_t bytes) {
  if (bytes == bytes_) return;
  const int64_t now =
      g_arena_bytes.fetch_add(bytes - bytes_, std::memory_order_relaxed) +
      (bytes - bytes_);
  bytes_ = bytes;
  RaiseArenaPeak(now);
}
}  // namespace internal

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  for (size_t r = 0; r < rows.size(); ++r) {
    PPFR_CHECK_EQ(rows[r].size(), cols)
        << "Matrix::FromRows: ragged input — row " << r << " has " << rows[r].size()
        << " entries but row 0 has " << cols;
  }
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(cols));
  for (int r = 0; r < m.rows(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

void Matrix::Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::CopyDataFrom(const Matrix& other) {
  PPFR_CHECK(SameShape(other));
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  PPFR_CHECK(SameShape(other));
  ActiveBackend().VAxpy(alpha, other.data(), data_.data(), size());
}

void Matrix::Scale(double alpha) {
  ActiveBackend().VScale(alpha, data_.data(), size());
}

double Matrix::SumAll() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    os << "\n  [";
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      os << (c ? ", " : "") << (*this)(r, c);
    }
    if (cols_ > max_cols) os << ", ...";
    os << "]";
  }
  if (rows_ > max_rows) os << "\n  ...";
  return os.str();
}

// The dense kernels below dispatch through the active compute backend
// (la/backend.h); this file only owns shape validation and allocation.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  PPFR_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  ActiveBackend().Gemm(a, b, &out);
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  PPFR_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  ActiveBackend().GemmTransA(a, b, &out);
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  PPFR_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  ActiveBackend().GemmTransB(a, b, &out);
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  ActiveBackend().Transpose(a, &out);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  Matrix out = a;
  out.Axpy(1.0, b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  Matrix out = a;
  out.Axpy(-1.0, b);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  ActiveBackend().Hadamard(a, b, &out);
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  PPFR_CHECK(a.SameShape(b));
  return ActiveBackend().Dot(a, b);
}

void GemmTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                         const std::vector<int>& rows) {
  PPFR_CHECK_EQ(g.cols(), b.cols());
  PPFR_CHECK_EQ(out->rows(), g.rows());
  PPFR_CHECK_EQ(out->cols(), b.rows());
  ActiveBackend().GemmTransBAccumRows(g, b, out, rows);
}

void GemmTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                         const std::vector<int>& rows) {
  PPFR_CHECK_EQ(a.rows(), g.rows());
  PPFR_CHECK_EQ(out->rows(), a.cols());
  PPFR_CHECK_EQ(out->cols(), g.cols());
  ActiveBackend().GemmTransAAccumRows(a, g, out, rows);
}

Matrix MatMulLanes(const Matrix& a, const Matrix& b, int lanes) {
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(b.cols() % lanes, 0);
  const bool a_shared = a.cols() == b.rows();
  PPFR_CHECK(a_shared || a.cols() == b.rows() * lanes)
      << "MatMulLanes: a is " << a.rows() << "x" << a.cols()
      << ", expected shared k=" << b.rows() << " or wide k*L=" << b.rows() * lanes;
  Matrix out(a.rows(), b.cols());
  ActiveBackend().GemmLanes(a, b, &out, lanes);
  return out;
}

Matrix MatMulLanesTransA(const Matrix& a, const Matrix& b, int lanes,
                         bool a_shared) {
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(b.cols() % lanes, 0);
  PPFR_CHECK_EQ(a.rows(), b.rows());
  if (!a_shared) PPFR_CHECK_EQ(a.cols() % lanes, 0);
  const int ka = a_shared ? a.cols() : a.cols() / lanes;
  Matrix out(ka, b.cols());
  ActiveBackend().GemmLanesTransA(a, b, &out, lanes);
  return out;
}

Matrix MatMulLanesTransB(const Matrix& a, const Matrix& b, int lanes) {
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(a.cols() % lanes, 0);
  PPFR_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows() * lanes);
  ActiveBackend().GemmLanesTransB(a, b, &out, lanes);
  return out;
}

void GemmLanesTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                              const std::vector<int>& rows, int lanes) {
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(g.cols() % lanes, 0);
  PPFR_CHECK_EQ(g.cols(), b.cols());
  PPFR_CHECK_EQ(out->rows(), g.rows());
  PPFR_CHECK_EQ(out->cols(), b.rows() * lanes);
  ActiveBackend().GemmLanesTransBAccumRows(g, b, out, rows, lanes);
}

void GemmLanesTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                              const std::vector<int>& rows, int lanes) {
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(g.cols() % lanes, 0);
  PPFR_CHECK_EQ(a.rows(), g.rows());
  const bool a_shared = out->rows() == a.cols();
  PPFR_CHECK(a_shared || a.cols() == out->rows() * lanes);
  PPFR_CHECK_EQ(out->cols(), g.cols());
  ActiveBackend().GemmLanesTransAAccumRows(a, g, out, rows, lanes);
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    const double* in = logits.row(r);
    double* o = out.row(r);
    double mx = in[0];
    for (int c = 1; c < logits.cols(); ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < logits.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (int c = 0; c < logits.cols(); ++c) o[c] /= sum;
  }
  return out;
}

std::vector<int> ArgmaxRows(const Matrix& m) {
  std::vector<int> out(m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    int best = 0;
    for (int c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

}  // namespace ppfr::la

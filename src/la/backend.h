#ifndef PPFR_LA_BACKEND_H_
#define PPFR_LA_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "la/csr_matrix.h"
#include "la/matrix.h"

namespace ppfr {
class Flags;
}  // namespace ppfr

namespace ppfr::la {

// Compute backend behind every dense/sparse linear-algebra hot path in the
// library. The free functions in matrix.h, CsrMatrix::Multiply*, and the
// flat-vector helpers in influence/param_vector.h all dispatch through the
// active backend, so autograd, nn, influence and privacy never touch a raw
// kernel directly — swapping the backend re-routes the whole stack.
//
// Implementations:
//   * ReferenceBackend — the original single-threaded loops, kept as the
//     correctness oracle for tests and as the small-problem fallback.
//   * ParallelBackend  — cache-blocked GEMM with packed operands,
//     multi-threaded via common/thread_pool.h, and row-partitioned CSR SpMM.
//   * SimdBackend      — the ParallelBackend dispatch/blocking layer with
//     AVX2+FMA register micro-kernels (la/simd_kernels.h) swapped in as the
//     leaf kernels; CPU features are probed at construction and any missing
//     capability (or PPFR_SIMD_DISABLE=1) falls back to the scalar leaf
//     kernels per-routine, so the binary builds and runs everywhere.
//
// Threading contract: kernels fan work out across the pool internally, but
// must be *invoked* from a single orchestration thread at a time (the
// ParallelBackend pool is not reentrant and concurrent entry trips its
// ParallelFor check). Parallelism across independent problems belongs above
// this layer, e.g. the tape-pool design sketched in ROADMAP.md.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;
  virtual int num_threads() const { return 1; }
  // True when this backend actually executes SIMD leaf kernels (i.e. it is a
  // SimdBackend AND the runtime feature probe passed AND the operator did not
  // force the fallback). Bench artifacts record this next to the timings.
  virtual bool simd_active() const { return false; }

  // Dense GEMM family. `out` must be preallocated to the result shape; the
  // kernels overwrite it.
  virtual void Gemm(const Matrix& a, const Matrix& b, Matrix* out) const = 0;        // a·b
  virtual void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) const = 0;  // aᵀ·b
  virtual void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) const = 0;  // a·bᵀ
  virtual void Transpose(const Matrix& a, Matrix* out) const = 0;

  // Elementwise / reduction kernels on matrices.
  virtual void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) const = 0;
  double Dot(const Matrix& a, const Matrix& b) const {
    return VDot(a.data(), b.data(), a.size());
  }

  // Generic range runner for elementwise/row-partitioned loops that have no
  // dedicated kernel (activations, row softmax, gathers). Splits [0, n) into
  // disjoint chunks of at least `grain` indices and invokes fn(begin, end)
  // over them — possibly across threads, so fn must only write per-index
  // state. Because chunks are disjoint and per-index work is independent, the
  // result is bitwise identical for any thread count.
  virtual void Apply(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) const = 0;

  // Sparse: out += alpha * a * x, row-major dense x/out.
  virtual void SpmmAccum(const CsrMatrix& a, const Matrix& x, double alpha,
                         Matrix* out) const = 0;

  // Support-guided row-subset kernels behind the seeded-backward row-support
  // machinery (autograd GradRefPartial; see matrix.h / csr_matrix.h for the
  // shape contracts, which the free-function wrappers check). The base-class
  // implementations are the serial scalar loops — the correct choice for the
  // small supports a per-node backward produces; ParallelBackend and
  // SimdBackend override them with threshold-gated threading and vectorized
  // inner loops for large supports (dense graphs), keeping the serial path
  // as the small-support fallback.
  //
  // out(r, :) += g(r, :) · bᵀ for r in rows.   g: (m,n), b: (k,n), out: (m,k).
  virtual void GemmTransBAccumRows(const Matrix& g, const Matrix& b, Matrix* out,
                                   const std::vector<int>& rows) const;
  // out += Σ_{r in rows} a(r, :)ᵀ ⊗ g(r, :).   a: (m,k), g: (m,n), out: (k,n).
  virtual void GemmTransAAccumRows(const Matrix& a, const Matrix& g, Matrix* out,
                                   const std::vector<int>& rows) const;
  // Row-subset SpMM accumulate (CsrMatrix::MultiplyAccumRows): for r in rows,
  // out(r, :) += alpha * Σ_k a(r, k) x(k, :), skipping x rows that
  // `x_row_nonzero` (empty = unknown) marks as zero.
  virtual void SpmmAccumRows(const CsrMatrix& a, const Matrix& x, double alpha,
                             Matrix* out, const std::vector<int>& rows,
                             const std::vector<uint8_t>& x_row_nonzero) const;

  // Lane-blocked GEMM family behind the fused multi-point tape replay
  // (autograd MatMulLanes). A lane-wide matrix of base width w stores lane l
  // in columns [l·w, (l+1)·w); `lanes` copies of a GEMM run in one call, with
  // the operand `a` either SHARED across lanes (detected by shape:
  // a.cols() == b.rows(), e.g. the feature matrix under a lane-wide weight)
  // or itself lane-wide.
  //
  // Bitwise contract (the fused-replay determinism story rests on it): lane
  // l's output window equals the corresponding narrow kernel applied to the
  // lane's operand windows BIT FOR BIT, on every backend and thread count.
  // The base-class implementations are per-lane windowed copies of the naive
  // loops; ParallelBackend re-derives its naive/blocked dispatch decision
  // from the PER-LANE shape (so a lane never flips between the naive
  // mul+add and the blocked-FMA rounding pattern just because it was
  // batched), and runs shared-`a` blocked lanes as ONE wide packed GEMM —
  // the per-element k-panel FMA chain is independent of the total column
  // count, which is exactly where the fusion's BLAS-3 win comes from.
  //
  // out = [a_0·b_0 | … ], a: (m,k) shared or (m,k·L), b: (k,n·L), out: (m,n·L).
  virtual void GemmLanes(const Matrix& a, const Matrix& b, Matrix* out,
                         int lanes) const;
  // out_l = a_lᵀ·b_l, a: (m,k) shared or (m,k·L), b: (m,n·L), out: (k,n·L).
  virtual void GemmLanesTransA(const Matrix& a, const Matrix& b, Matrix* out,
                               int lanes) const;
  // out_l = a_l·b_lᵀ, a: (m,n·L), b: (k,n·L), out: (m,k·L).
  virtual void GemmLanesTransB(const Matrix& a, const Matrix& b, Matrix* out,
                               int lanes) const;
  // Lane-blocked row-support variants of the two Accum kernels below:
  // out_l(r,:) += g_l(r,:)·b_lᵀ for r in rows (g: (m,n·L), b: (k,n·L),
  // out: (m,k·L)), and out_l += Σ_{r in rows} a_l(r,:)ᵀ⊗g_l(r,:) (a: (m,k)
  // shared or (m,k·L), g: (m,n·L), out: (k,n·L)).
  virtual void GemmLanesTransBAccumRows(const Matrix& g, const Matrix& b,
                                        Matrix* out, const std::vector<int>& rows,
                                        int lanes) const;
  virtual void GemmLanesTransAAccumRows(const Matrix& a, const Matrix& g,
                                        Matrix* out, const std::vector<int>& rows,
                                        int lanes) const;

  // Flat-vector kernels (parameter vectors in the influence machinery, and
  // Matrix::Axpy/Scale over the contiguous buffer).
  virtual double VDot(const double* a, const double* b, int64_t n) const = 0;
  virtual void VAxpy(double alpha, const double* x, double* y, int64_t n) const = 0;
  virtual void VScale(double alpha, double* x, int64_t n) const = 0;

  // Fused CG-step kernels — one pass over y where the unfused sequence costs
  // two or three. Contracts (relied on by the influence CG solvers and
  // verified bitwise in tests/la_backend_test.cc):
  //   * VAxpyDot: y += alpha·x, returns yᵀy of the UPDATED y. Bitwise equal
  //     to VAxpy followed by VDot(y, y) on every backend and thread count
  //     (the update is elementwise split-invariant, the reduction follows
  //     VDot's fixed-block partial scheme).
  //   * VDotAxpy: y = x + beta·y elementwise (the CG search-direction
  //     update), returns yᵀy of the updated y; a follow-up VDot(y, y)
  //     reproduces the returned value bit for bit. Deterministic across
  //     thread counts like every other kernel.
  // The base implementations are the unfused compositions, which IS the
  // bitwise definition; ParallelBackend overrides them with genuinely fused
  // single-pass loops.
  virtual double VAxpyDot(double alpha, const double* x, double* y, int64_t n) const;
  virtual double VDotAxpy(double beta, const double* x, double* y, int64_t n) const;
};

enum class BackendKind { kReference, kParallel, kSimd };

std::string BackendKindName(BackendKind kind);

// Creates a standalone backend instance (used by tests and the bench
// comparison harness; normal code uses the process-wide active backend).
std::unique_ptr<Backend> MakeBackend(BackendKind kind, int num_threads);

// Process-wide active backend. On first use it is initialised from the
// PPFR_LA_BACKEND ("reference"|"parallel"|"simd") and PPFR_LA_THREADS
// environment variables, defaulting to the parallel backend with one thread
// per core.
Backend& ActiveBackend();
BackendKind ActiveBackendKind();

// Replaces the active backend. num_threads <= 0 selects hardware_concurrency.
void SetActiveBackend(BackendKind kind, int num_threads = 0);

// Applies --la_backend=reference|parallel|simd and --la_threads=N
// command-line flags (bench/example binaries call this right after parsing
// Flags).
void ConfigureBackendFromFlags(const Flags& flags);

// Thread-local backend override, consulted by ActiveBackend() before the
// process-wide instance. This is how parallelism ABOVE the kernel layer is
// made safe: an orchestrator (e.g. influence::TapePool) gives each of its
// worker threads a private single-threaded backend of the active kind, so
// concurrent workers never enter the shared ParallelBackend pool (which is
// not reentrant). Kernels are deterministic across thread counts, so routing
// a worker through a 1-thread clone is bitwise equivalent to the main path.
class ThreadLocalBackendGuard {
 public:
  explicit ThreadLocalBackendGuard(Backend* backend);
  ~ThreadLocalBackendGuard();

  ThreadLocalBackendGuard(const ThreadLocalBackendGuard&) = delete;
  ThreadLocalBackendGuard& operator=(const ThreadLocalBackendGuard&) = delete;

 private:
  Backend* previous_;
};

// RAII backend swap for tests: restores the previous backend on destruction.
class ScopedBackend {
 public:
  ScopedBackend(BackendKind kind, int num_threads = 0);
  ~ScopedBackend();

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  BackendKind previous_kind_;
  int previous_threads_;
};

}  // namespace ppfr::la

#endif  // PPFR_LA_BACKEND_H_

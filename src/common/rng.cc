#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace ppfr {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t value) {
  // One SplitMix64 step over the combined state; the odd multiplier keeps
  // (seed, value) pairs from colliding under simple arithmetic relations.
  uint64_t state = seed ^ (value * 0xd6e8feb86659fd93ULL + 0x2545f4914f6cdd1dULL);
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  PPFR_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Laplace(double scale) {
  PPFR_CHECK_GT(scale, 0.0);
  const double u = Uniform() - 0.5;
  return -scale * std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), u);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  PPFR_CHECK_GE(n, k);
  PPFR_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index pool.
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    const int64_t j = i + UniformInt(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace ppfr

#include "common/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/check.h"

namespace ppfr::fault {
namespace {

constexpr const char* kKnownSites[] = {
    kCacheStoreRead, kCacheStoreWrite, kCacheStoreClaim, kShardMergeRead,
    kJournalReplay,  kStageCell,       kJournalAppend,   kTestSite};

bool IsKnownSite(const std::string& name) {
  for (const char* site : kKnownSites) {
    if (name == site) return true;
  }
  return false;
}

std::string KnownSiteList() {
  std::string out;
  for (const char* site : kKnownSites) {
    if (!out.empty()) out += ", ";
    out += site;
  }
  return out;
}

struct SiteState {
  uint64_t every_n = 0;
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> fired{0};
};

struct Config {
  // std::map nodes are pointer-stable, so concurrent ShouldFail calls may
  // hammer the atomics while the (immutable-after-parse) structure is shared.
  std::map<std::string, SiteState> sites;
};

// Replaced wholesale by ConfigureForTest; old configs are leaked rather than
// deleted so a racing reader can never touch freed memory. Configs are tiny
// and reconfiguration is a test-only operation.
std::atomic<Config*> g_config{nullptr};
std::atomic<bool> g_enabled{false};
std::once_flag g_env_once;

Config* ParseSpec(const std::string& spec) {
  auto config = new Config();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    PPFR_CHECK(colon != std::string::npos)
        << "PPFR_FAULT_INJECT entry '" << entry
        << "' is not site:every_n (e.g. cache_store.read:3)";
    const std::string site = entry.substr(0, colon);
    const std::string count = entry.substr(colon + 1);
    PPFR_CHECK(IsKnownSite(site)) << "PPFR_FAULT_INJECT names unknown site '"
                                  << site << "'; known sites: " << KnownSiteList();
    char* parse_end = nullptr;
    const unsigned long long n = std::strtoull(count.c_str(), &parse_end, 10);
    PPFR_CHECK(parse_end != nullptr && *parse_end == '\0' && !count.empty() && n > 0)
        << "PPFR_FAULT_INJECT site '" << site << "' wants a positive every_n, got '"
        << count << "'";
    config->sites[site].every_n = n;
  }
  return config;
}

void Install(Config* config) {
  g_config.store(config, std::memory_order_release);
  g_enabled.store(config != nullptr && !config->sites.empty(),
                  std::memory_order_release);
}

void EnsureEnvLoaded() {
  std::call_once(g_env_once, [] {
    // ConfigureForTest may already have installed a spec before the first
    // prod-site hit; the env must not clobber it.
    if (g_config.load(std::memory_order_acquire) != nullptr) return;
    const char* env = std::getenv("PPFR_FAULT_INJECT");
    Install(ParseSpec(env == nullptr ? "" : env));
  });
}

SiteState* FindSite(const char* site) {
  EnsureEnvLoaded();
  Config* config = g_config.load(std::memory_order_acquire);
  if (config == nullptr) return nullptr;
  auto it = config->sites.find(site);
  return it == config->sites.end() ? nullptr : &it->second;
}

}  // namespace

bool Enabled() {
  EnsureEnvLoaded();
  return g_enabled.load(std::memory_order_acquire);
}

bool ShouldFail(const char* site) {
  if (!g_enabled.load(std::memory_order_acquire) && !Enabled()) return false;
  SiteState* state = FindSite(site);
  if (state == nullptr) return false;
  const int64_t hit = state->hits.fetch_add(1) + 1;
  if (hit % static_cast<int64_t>(state->every_n) != 0) return false;
  state->fired.fetch_add(1);
  return true;
}

int64_t HitCount(const char* site) {
  SiteState* state = FindSite(site);
  return state == nullptr ? 0 : state->hits.load();
}

int64_t FiredCount(const char* site) {
  SiteState* state = FindSite(site);
  return state == nullptr ? 0 : state->fired.load();
}

void ConfigureForTest(const std::string& spec) {
  // Force the once-flag to resolve first so a later EnsureEnvLoaded cannot
  // clobber the test spec with the environment's.
  EnsureEnvLoaded();
  Install(ParseSpec(spec));
}

}  // namespace ppfr::fault

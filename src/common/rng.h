#ifndef PPFR_COMMON_RNG_H_
#define PPFR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace ppfr {

// Deterministic seed derivation: folds `value` into `seed` through one
// SplitMix64 finalisation. Chaining names an independent stream per tuple —
// MixSeed(MixSeed(seed, a), b) — which is the counter-based RNG idiom behind
// the streamed graph generator (one stream per block pair), the on-demand
// feature rows (one stream per node) and the neighbour sampler (one stream
// per (seed, epoch, batch)): any component can be regenerated in isolation
// without replaying a shared sequential stream.
uint64_t MixSeed(uint64_t seed, uint64_t value);

// Deterministic, seedable pseudo-random number generator (xoshiro256**,
// seeded through SplitMix64). Every stochastic component in the library takes
// an explicit Rng or seed so whole experiments replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Standard normal via Box-Muller.
  double Normal();

  // Normal with the given mean / stddev.
  double Normal(double mean, double stddev);

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  // Laplace(0, scale) draw.
  double Laplace(double scale);

  // Samples k distinct integers from [0, n) (k <= n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (int64_t i = static_cast<int64_t>(items->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  // Derives an independent child generator (for parallel reproducibility).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ppfr

#endif  // PPFR_COMMON_RNG_H_

#ifndef PPFR_COMMON_LOGGING_H_
#define PPFR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ppfr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Stream-style log line that flushes on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ppfr

#define PPFR_LOG(level) \
  ::ppfr::internal::LogLine(::ppfr::LogLevel::k##level, __FILE__, __LINE__)

#endif  // PPFR_COMMON_LOGGING_H_

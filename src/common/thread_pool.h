#ifndef PPFR_COMMON_THREAD_POOL_H_
#define PPFR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ppfr {

// Fixed-size pool of worker threads with a fork-join ParallelFor. Workers are
// spawned once and reused across calls; ParallelFor blocks the caller until
// every chunk has run (the caller participates, so a 1-thread pool degrades
// to an inline loop with zero synchronisation).
//
// ParallelFor is not reentrant, and that covers concurrent external callers
// too: a second orchestration thread entering ParallelFor while another
// call's chunks are pending trips a CHECK. One pool serves one caller at a
// time (the la::Backend layer only parallelises leaf kernels, driven from a
// single orchestration thread).
class ThreadPool {
 public:
  // num_threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Splits [begin, end) into contiguous chunks of at least min_grain
  // iterations and invokes fn(chunk_begin, chunk_end) across the pool.
  // Chunks are disjoint, so fn may write to per-index state without locking.
  void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable task_done_;
  std::queue<std::function<void()>> tasks_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

}  // namespace ppfr

#endif  // PPFR_COMMON_THREAD_POOL_H_

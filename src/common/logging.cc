#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace ppfr {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogLine::~LogLine() {
  if (level_ < g_level) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace ppfr

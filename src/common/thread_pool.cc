#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace ppfr {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  // The calling thread executes chunks too, so only n-1 workers are needed.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    task_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  min_grain = std::max<int64_t>(min_grain, 1);
  // Floor division so every chunk carries at least min_grain iterations (the
  // backends use min_grain as "below this, threading doesn't pay").
  const int64_t max_chunks = std::max<int64_t>(range / min_grain, 1);
  const int64_t num_chunks = std::min<int64_t>(num_threads_, max_chunks);
  if (num_chunks <= 1 || workers_.empty()) {
    fn(begin, end);
    return;
  }

  const int64_t chunk = (range + num_chunks - 1) / num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PPFR_CHECK_EQ(pending_, 0) << "ThreadPool::ParallelFor is not reentrant";
    for (int64_t c = 1; c < num_chunks; ++c) {
      const int64_t lo = begin + c * chunk;
      const int64_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      tasks_.emplace([&fn, lo, hi] { fn(lo, hi); });
      ++pending_;
    }
  }
  task_ready_.notify_all();

  // The caller runs the first chunk, then helps drain the queue before
  // blocking, so a pool is never slower than the loop it replaces.
  fn(begin, std::min(end, begin + chunk));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        task_done_.wait(lock, [this] { return pending_ == 0; });
        return;
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    task_done_.notify_all();
  }
}

}  // namespace ppfr

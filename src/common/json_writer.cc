#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/serialize.h"

namespace ppfr {

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    PPFR_CHECK(out_.empty()) << "JSON document already has a root value";
    return;
  }
  if (stack_.back() == Scope::kObject) {
    PPFR_CHECK(key_pending_) << "object values need a Key() first";
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  out_ += '\n';
  Indent();
  has_items_.back() = true;
}

void JsonWriter::Indent() {
  out_.append(2 * stack_.size(), ' ');
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PPFR_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  PPFR_CHECK(!key_pending_) << "dangling Key() at EndObject";
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PPFR_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  PPFR_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "Key() outside an object";
  PPFR_CHECK(!key_pending_) << "two keys in a row";
  if (has_items_.back()) out_ += ',';
  out_ += '\n';
  Indent();
  has_items_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  // Round-trip exact for IEEE doubles: the artifacts feed the cross-PR
  // bench trajectory, where low-bit differences are signal, not noise.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::ToString() const {
  PPFR_CHECK(stack_.empty()) << "unclosed JSON container";
  return out_ + "\n";
}

std::string JsonWriter::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonMetric(JsonWriter* w, const std::string& key, double value) {
  w->Key(key).Number(value);
  if (!std::isfinite(value)) w->Key(key + "_finite").Bool(false);
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::string error;
  PPFR_CHECK(WriteFileAtomic(path, contents, &error)) << error;
}

}  // namespace ppfr

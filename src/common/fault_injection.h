#ifndef PPFR_COMMON_FAULT_INJECTION_H_
#define PPFR_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

// Deterministic fault injection for exercising the runner's recovery paths
// (per-cell isolation, retry, journal resume) in tests and CI instead of
// trusting them. Sites are named code locations that ask ShouldFail(site)
// before doing their real work; the spec
//
//   PPFR_FAULT_INJECT=site:every_n[,site:every_n...]
//
// (environment variable, or ConfigureForTest) makes the named site "fire" on
// every n-th hit — hit numbers n, 2n, 3n, ... of a process-wide per-site
// counter. Firing depends only on the hit ORDER, never on time or
// randomness, so a serial sweep under a fixed spec fails at exactly the same
// points in every run. A malformed spec or an unknown site name dies loudly
// at first use (a typo'd site would otherwise silently inject nothing).
namespace ppfr::fault {

// The registered sites. Throwing sites raise RecoverableError(transient);
// non-throwing sites degrade (a skipped persist, a dropped journal record).
inline constexpr const char* kCacheStoreRead = "cache_store.read";    // throws
inline constexpr const char* kCacheStoreWrite = "cache_store.write";  // skips persist
// Cross-process sites (the sharded-fleet hardening): a spuriously failing
// claim-file create (the O_EXCL loses although nobody holds the claim — the
// claimer re-enters its bounded poll loop), an unreadable shard journal
// during --merge (the shard degrades to missing), and a journal record that
// fails replay validation (that record and the tail after it recompute).
inline constexpr const char* kCacheStoreClaim = "cache_store.claim";  // claim denied
inline constexpr const char* kShardMergeRead = "shard.merge_read";    // shard skipped
inline constexpr const char* kJournalReplay = "journal.replay";       // truncates replay
inline constexpr const char* kStageCell = "stage.cell";               // throws
inline constexpr const char* kJournalAppend = "journal.append";       // drops record
inline constexpr const char* kTestSite = "test.site";  // tests only, no prod caller

// True when any site is configured (cheap: one atomic load).
bool Enabled();

// Counts a hit at `site` and reports whether this hit fires. Always false
// for unconfigured sites. Thread-safe; under concurrency the hit order (and
// therefore which caller fires) is scheduling-dependent, so deterministic
// tests drive faulted sweeps serially.
bool ShouldFail(const char* site);

// Instrumentation for tests: total hits / fired hits at `site` since the
// last (re)configuration. 0 for unconfigured sites.
int64_t HitCount(const char* site);
int64_t FiredCount(const char* site);

// Replaces the active spec (ignoring the environment variable) and resets
// every counter; "" disables injection entirely. Must not race an in-flight
// sweep. Dies on a malformed spec, exactly like the environment path.
void ConfigureForTest(const std::string& spec);

}  // namespace ppfr::fault

#endif  // PPFR_COMMON_FAULT_INJECTION_H_

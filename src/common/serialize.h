#ifndef PPFR_COMMON_SERIALIZE_H_
#define PPFR_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppfr {

// Length-prefixed little-endian binary serialization for the disk-persisted
// run cache (and any other fixed-layout snapshot). Writers never fail;
// readers are *total*: every Read* reports success via ok() and returns a
// zero value once the stream is exhausted or a length prefix is implausible,
// so a truncated or corrupted file degrades into `!ok()` — never UB, never a
// crash. Cache loaders treat !ok() as "entry is corrupt: delete, recompute".
//
// Doubles travel as their IEEE-754 bit pattern, so a round trip is bitwise
// exact (including NaN payloads and -0.0) — the persisted cache must
// reproduce cold-run results bit for bit.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteDouble(double v);
  void WriteBool(bool v) { WriteU32(v ? 1u : 0u); }
  void WriteString(const std::string& s);
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteIntVec(const std::vector<int>& v);

  const std::string& data() const { return out_; }

 private:
  std::string out_;
};

class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::string& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }
  int32_t ReadI32() { return static_cast<int32_t>(ReadU32()); }
  double ReadDouble();
  bool ReadBool() { return ReadU32() != 0; }
  std::string ReadString();
  std::vector<double> ReadDoubleVec();
  std::vector<int> ReadIntVec();

  // False once any read ran past the end of the buffer or a container
  // length prefix exceeded the remaining bytes. Sticky.
  bool ok() const { return ok_; }
  // ok() and every byte consumed — loaders check this to reject entries
  // with trailing junk.
  bool AtEnd() const { return ok_ && pos_ == size_; }
  // Unread bytes (0 once poisoned) — lets loaders bound a container length
  // prefix before allocating for it.
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

 private:
  // Claims `n` bytes; returns nullptr (and poisons the reader) when fewer
  // remain.
  const char* Claim(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Reads an entire file; false when it cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* contents);

// Writes `contents` to `path` atomically: a unique sibling temp file is
// written, flushed and checked, then rename(2)d over `path`. Readers of
// `path` therefore never observe a torn or truncated file, and a full disk
// or unwritable directory reports false (with the temp file cleaned up)
// instead of leaving a partial artifact behind.
bool WriteFileAtomic(const std::string& path, const std::string& contents,
                     std::string* error = nullptr);

}  // namespace ppfr

#endif  // PPFR_COMMON_SERIALIZE_H_

#ifndef PPFR_COMMON_JSON_WRITER_H_
#define PPFR_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppfr {

// Minimal streaming JSON builder for the uniform BENCH_<sweep>.json artifacts
// (and any other machine-readable output). Handles comma placement, string
// escaping and two-space indentation; the caller is responsible for pairing
// Begin*/End* calls and for putting a Key before every value inside an
// object (both are PPFR_CHECKed).
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("sweep").String("table4");
//   w.Key("cells").BeginArray();
//   ...
//   w.EndArray().EndObject();
//   WriteFileOrDie(path, w.ToString());
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);  // non-finite values serialise as null
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Finished document (PPFR_CHECKs that every container was closed).
  std::string ToString() const;

  static std::string Escape(const std::string& raw);

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void Indent();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

// Emits `key`: `value`, and — because Number() serialises non-finite values
// as null, which corrupts bench trajectories silently — a sibling
// "<key>_finite": false marker whenever the value is NaN/Inf. Metric-bearing
// artifact writers route every measured number through this so a non-finite
// metric is loud in the artifact (and trips the CI schema diff, which pins
// the finite-only key set).
void JsonMetric(JsonWriter* w, const std::string& key, double value);

// Writes `contents` to `path` atomically (temp file + rename, flush and
// stream state checked), PPFR_CHECK-failing with the path on any I/O error —
// a full disk or unwritable directory must never leave a silently truncated
// artifact behind.
void WriteFileOrDie(const std::string& path, const std::string& contents);

}  // namespace ppfr

#endif  // PPFR_COMMON_JSON_WRITER_H_

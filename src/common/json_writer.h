#ifndef PPFR_COMMON_JSON_WRITER_H_
#define PPFR_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppfr {

// Minimal streaming JSON builder for the uniform BENCH_<sweep>.json artifacts
// (and any other machine-readable output). Handles comma placement, string
// escaping and two-space indentation; the caller is responsible for pairing
// Begin*/End* calls and for putting a Key before every value inside an
// object (both are PPFR_CHECKed).
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("sweep").String("table4");
//   w.Key("cells").BeginArray();
//   ...
//   w.EndArray().EndObject();
//   WriteFileOrDie(path, w.ToString());
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);  // non-finite values serialise as null
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Finished document (PPFR_CHECKs that every container was closed).
  std::string ToString() const;

  static std::string Escape(const std::string& raw);

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void Indent();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

// Writes `contents` to `path`, PPFR_CHECK-failing on I/O errors.
void WriteFileOrDie(const std::string& path, const std::string& contents);

}  // namespace ppfr

#endif  // PPFR_COMMON_JSON_WRITER_H_

#ifndef PPFR_COMMON_TABLE_PRINTER_H_
#define PPFR_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace ppfr {

// Renders paper-style ASCII tables for the experiment harnesses, e.g.
//
//   +----------+---------+--------+
//   | Datasets | Methods | Acc    |
//   +----------+---------+--------+
//   | Cora     | Vanilla | 86.12  |
//   ...
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  // Renders the whole table.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

  // Formats a double with the given number of decimals ("-" for NaN).
  static std::string Num(double value, int decimals = 2);

  // Formats a ratio as a percentage with sign, e.g. -35.51.
  static std::string Pct(double ratio, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace ppfr

#endif  // PPFR_COMMON_TABLE_PRINTER_H_

#ifndef PPFR_COMMON_CHECK_H_
#define PPFR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Abort-on-violation precondition macros, in the spirit of glog's CHECK.
// The library does not use exceptions; programming errors terminate with a
// message pinpointing the failed condition.

namespace ppfr::internal {

[[noreturn]] inline void CheckFail(const char* file, int line, const char* cond,
                                   const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, cond,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

// Builds the optional streamed message of a failed CHECK.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* cond)
      : file_(file), line_(line), cond_(cond) {}
  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, cond_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* cond_;
  std::ostringstream stream_;
};

}  // namespace ppfr::internal

#define PPFR_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else /* NOLINT */                                                \
    ::ppfr::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define PPFR_CHECK_OP(a, b, op) PPFR_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define PPFR_CHECK_EQ(a, b) PPFR_CHECK_OP(a, b, ==)
#define PPFR_CHECK_NE(a, b) PPFR_CHECK_OP(a, b, !=)
#define PPFR_CHECK_LT(a, b) PPFR_CHECK_OP(a, b, <)
#define PPFR_CHECK_LE(a, b) PPFR_CHECK_OP(a, b, <=)
#define PPFR_CHECK_GT(a, b) PPFR_CHECK_OP(a, b, >)
#define PPFR_CHECK_GE(a, b) PPFR_CHECK_OP(a, b, >=)

// Debug-only variants for hot-path preconditions (element access, kernel
// inner loops). Active unless NDEBUG; in release builds they compile to
// nothing while still type-checking the condition and any streamed message.
#ifndef NDEBUG
#define PPFR_DCHECK(cond) PPFR_CHECK(cond)
#define PPFR_DCHECK_OP(a, b, op) PPFR_CHECK_OP(a, b, op)
#else
#define PPFR_DCHECK(cond) \
  while (false) PPFR_CHECK(cond)
#define PPFR_DCHECK_OP(a, b, op) \
  while (false) PPFR_CHECK_OP(a, b, op)
#endif

#define PPFR_DCHECK_EQ(a, b) PPFR_DCHECK_OP(a, b, ==)
#define PPFR_DCHECK_NE(a, b) PPFR_DCHECK_OP(a, b, !=)
#define PPFR_DCHECK_LT(a, b) PPFR_DCHECK_OP(a, b, <)
#define PPFR_DCHECK_LE(a, b) PPFR_DCHECK_OP(a, b, <=)
#define PPFR_DCHECK_GT(a, b) PPFR_DCHECK_OP(a, b, >)
#define PPFR_DCHECK_GE(a, b) PPFR_DCHECK_OP(a, b, >=)

#endif  // PPFR_COMMON_CHECK_H_

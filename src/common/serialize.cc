#include "common/serialize.h"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ppfr {

void BinaryWriter::WriteU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  out_.append(bytes, 4);
}

void BinaryWriter::WriteU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xffULL);
  }
  out_.append(bytes, 8);
}

void BinaryWriter::WriteDouble(double v) { WriteU64(std::bit_cast<uint64_t>(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.append(s);
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void BinaryWriter::WriteIntVec(const std::vector<int>& v) {
  WriteU64(v.size());
  for (int x : v) WriteI32(x);
}

const char* BinaryReader::Claim(size_t n) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return nullptr;
  }
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

uint32_t BinaryReader::ReadU32() {
  const char* p = Claim(4);
  if (p == nullptr) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t BinaryReader::ReadU64() {
  const char* p = Claim(8);
  if (p == nullptr) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double BinaryReader::ReadDouble() { return std::bit_cast<double>(ReadU64()); }

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  // A length beyond the remaining bytes marks corruption; checking before
  // Claim avoids a pathological allocation from a garbage prefix.
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return {};
  }
  const char* p = Claim(static_cast<size_t>(n));
  return p == nullptr ? std::string{} : std::string(p, static_cast<size_t>(n));
}

std::vector<double> BinaryReader::ReadDoubleVec() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > (size_ - pos_) / 8) {
    ok_ = false;
    return {};
  }
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = ReadDouble();
  return v;
}

std::vector<int> BinaryReader::ReadIntVec() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > (size_ - pos_) / 4) {
    ok_ = false;
    return {};
  }
  std::vector<int> v(static_cast<size_t>(n));
  for (int& x : v) x = ReadI32();
  return v;
}

bool ReadFileToString(const std::string& path, std::string* contents) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return false;
  *contents = std::move(out);
  return true;
}

bool WriteFileAtomic(const std::string& path, const std::string& contents,
                     std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + " " + path + ": " + std::strerror(errno);
    }
    return false;
  };
  // pid + a process-wide counter keep concurrent writers — other processes
  // sharing a cache dir AND other threads in this one — off each other's
  // temp files; the final rename is atomic either way.
  static std::atomic<uint64_t> tmp_serial{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_serial.fetch_add(1));
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail("cannot open");
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  // fwrite success only means "buffered"; fflush forces the data down and
  // surfaces ENOSPC, then ferror catches anything the stream latched.
  const bool write_ok =
      written == contents.size() && std::fflush(f) == 0 && std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !write_ok) {
    std::remove(tmp.c_str());
    return fail("short write to");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("cannot rename into");
  }
  return true;
}

}  // namespace ppfr

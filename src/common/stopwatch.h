#ifndef PPFR_COMMON_STOPWATCH_H_
#define PPFR_COMMON_STOPWATCH_H_

#include <chrono>

namespace ppfr {

// Wall-clock stopwatch for experiment harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppfr

#endif  // PPFR_COMMON_STOPWATCH_H_

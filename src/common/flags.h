#ifndef PPFR_COMMON_FLAGS_H_
#define PPFR_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppfr {

// Strict scalar parsers shared by Flags and the list-valued runner flags
// (--seeds=0,1,2). False on empty input, trailing garbage ("12abc") or
// out-of-range values — a numeric token either parses exactly or not at all.
bool ParseInt64Strict(const std::string& s, int64_t* out);
bool ParseUint64Strict(const std::string& s, uint64_t* out);
bool ParseDoubleStrict(const std::string& s, double* out);

// Minimal --key=value command-line parsing for the bench/example binaries.
// Unknown flags are kept and queryable; "--flag" alone parses as "true".
// Typed getters parse strictly: a malformed value ("--seed=12abc", overflow,
// "--lr=fast") prints the flag name and exits(2) instead of silently
// truncating to something plausible.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  int GetInt(const std::string& name, int def) const;
  // Full-width unsigned parse — seeds are uint64_t and must not round-trip
  // through int (see runner::ApplyCommonOverrides).
  uint64_t GetUint64(const std::string& name, uint64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  // Names present on the command line that are not in `known` (sorted). The
  // bench binaries turn a non-empty result into a usage listing + exit so a
  // typo like --epoch=10 fails loudly instead of silently running defaults.
  std::vector<std::string> UnknownFlags(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ppfr

#endif  // PPFR_COMMON_FLAGS_H_

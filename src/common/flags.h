#ifndef PPFR_COMMON_FLAGS_H_
#define PPFR_COMMON_FLAGS_H_

#include <map>
#include <string>

namespace ppfr {

// Minimal --key=value command-line parsing for the bench/example binaries.
// Unknown flags are kept and queryable; "--flag" alone parses as "true".
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  int GetInt(const std::string& name, int def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ppfr

#endif  // PPFR_COMMON_FLAGS_H_

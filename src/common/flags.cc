#include "common/flags.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>

namespace ppfr {
namespace {

// All strict parsers share the shape: reject leading whitespace (strtoX
// would skip it, letting " -1" smuggle a sign past any first-character
// check), reset errno, parse with an end pointer, then reject (a) nothing
// consumed, (b) trailing garbage, and (c) out-of-range values.
// `--seed=12abc` and `--epochs=99999999999999` must never silently truncate
// into a plausible number.

bool LeadingWhitespace(const std::string& s) {
  return std::isspace(static_cast<unsigned char>(s[0])) != 0;
}

[[noreturn]] void DieBadFlag(const std::string& name, const std::string& value,
                             const char* why) {
  std::fprintf(stderr, "invalid value for --%s: '%s' (%s)\n", name.c_str(),
               value.c_str(), why);
  std::exit(2);
}

}  // namespace

bool ParseInt64Strict(const std::string& s, int64_t* out) {
  if (s.empty() || LeadingWhitespace(s)) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64Strict(const std::string& s, uint64_t* out) {
  if (s.empty() || LeadingWhitespace(s)) return false;
  // strtoull happily parses "-1" as ULLONG_MAX; a sign has no business in an
  // unsigned flag.
  if (s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDoubleStrict(const std::string& s, double* out) {
  if (s.empty() || LeadingWhitespace(s)) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  // Non-finite results are garbage flags whether they came from overflow
  // ("1e999") or from strtod's literal forms ("inf", "nan") — a NaN/Inf
  // config value would poison a whole sweep. Gradual underflow to a
  // subnormal (ERANGE on some libcs) is a representable value and fine.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int Flags::GetInt(const std::string& name, int def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  int64_t v = 0;
  if (!ParseInt64Strict(it->second, &v) ||
      v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    DieBadFlag(name, it->second, "want an integer in int range");
  }
  return static_cast<int>(v);
}

uint64_t Flags::GetUint64(const std::string& name, uint64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  uint64_t v = 0;
  if (!ParseUint64Strict(it->second, &v)) {
    DieBadFlag(name, it->second, "want an unsigned 64-bit integer");
  }
  return v;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  double v = 0.0;
  if (!ParseDoubleStrict(it->second, &v)) {
    DieBadFlag(name, it->second, "want a finite-range decimal number");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  DieBadFlag(name, v, "want true/false/1/0/yes/no");
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace ppfr

#include "common/flags.h"

#include <cstdlib>
#include <string_view>

namespace ppfr {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int Flags::GetInt(const std::string& name, int def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atoi(it->second.c_str());
}

uint64_t Flags::GetUint64(const std::string& name, uint64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace ppfr

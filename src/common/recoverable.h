#ifndef PPFR_COMMON_RECOVERABLE_H_
#define PPFR_COMMON_RECOVERABLE_H_

#include <exception>
#include <string>
#include <utility>

namespace ppfr {

// The single sanctioned exception type in an otherwise exception-free
// codebase: a DATA-DEPENDENT, recoverable runtime failure — a training run
// diverging into a non-finite loss, the block-CG solver collapsing even
// after its single-RHS fallback, a disk-cache entry failing mid-read, an
// injected fault (common/fault_injection.h). Stage code throws it instead of
// PPFR_CHECK-aborting on such conditions; the scenario runner catches it at
// the cell boundary (runner::CellError is an alias) and marks that one cell
// failed while the rest of the grid completes. Programming errors and
// environmental misconfiguration still abort via PPFR_CHECK — nothing else
// in this library throws, and nothing else catches.
class RecoverableError : public std::exception {
 public:
  explicit RecoverableError(std::string message, bool transient = false)
      : message_(std::move(message)), transient_(transient) {}

  const char* what() const noexcept override { return message_.c_str(); }

  // Transient failures (read races against a concurrent cache writer,
  // injected faults) are worth retrying with backoff; deterministic ones
  // (a diverged loss will diverge again under the same seed) are not.
  bool transient() const { return transient_; }

 private:
  std::string message_;
  bool transient_;
};

}  // namespace ppfr

#endif  // PPFR_COMMON_RECOVERABLE_H_

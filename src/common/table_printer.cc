#include "common/table_printer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace ppfr {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  PPFR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PPFR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Num(double value, int decimals) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::Pct(double ratio, int decimals) {
  if (std::isnan(ratio)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f", decimals, ratio * 100.0);
  return buf;
}

}  // namespace ppfr

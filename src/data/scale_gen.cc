#include "data/scale_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::data {
namespace {

// Stream-tag constants folded into the base seed so the edge, feature and
// split streams never alias each other.
constexpr uint64_t kEdgeStreamTag = 0x45444745;     // "EDGE"
constexpr uint64_t kFeatureStreamTag = 0x46454154;  // "FEAT"
constexpr uint64_t kSplitStreamTag = 0x53504c54;    // "SPLT"

// Draws a local rank in [0, n) with density ∝ x^(-alpha) over the continuous
// relaxation [1, n+1] (inverse CDF), so rank 0 is the block's biggest hub.
// alpha <= 0 falls back to uniform.
int64_t PowerLawRank(int64_t n, double alpha, Rng* rng) {
  if (alpha <= 0.0) return rng->UniformInt(n);
  const double u = rng->Uniform();
  const double top = static_cast<double>(n) + 1.0;
  double x;
  if (std::fabs(alpha - 1.0) < 1e-12) {
    x = std::exp(u * std::log(top));
  } else {
    const double e = 1.0 - alpha;
    x = std::pow(1.0 + u * (std::pow(top, e) - 1.0), 1.0 / e);
  }
  const int64_t rank = static_cast<int64_t>(std::floor(x)) - 1;
  return std::clamp<int64_t>(rank, 0, n - 1);
}

}  // namespace

int64_t ScaleGraphConfig::BlockStart(int b) const {
  PPFR_CHECK_GE(b, 0);
  PPFR_CHECK_LE(b, num_blocks);
  return static_cast<int64_t>(b) * num_nodes / num_blocks;
}

int ScaleGraphConfig::BlockOf(int64_t v) const {
  PPFR_CHECK_GE(v, 0);
  PPFR_CHECK_LT(v, num_nodes);
  // floor(v·B/n) lands on the right block up to boundary rounding; nudge.
  int b = static_cast<int>(v * num_blocks / num_nodes);
  while (b + 1 < num_blocks && v >= BlockStart(b + 1)) ++b;
  while (b > 0 && v < BlockStart(b)) --b;
  return b;
}

void StreamScaleEdges(const ScaleGraphConfig& config, uint64_t seed,
                      const std::function<void(int64_t, int64_t)>& emit) {
  const int64_t n = config.num_nodes;
  const int num_blocks = config.num_blocks;
  const uint64_t edge_seed = MixSeed(seed, kEdgeStreamTag);
  const double total_edges = static_cast<double>(n) * config.average_degree / 2.0;

  // Cross-pair weight normaliser: inter-block budget splits ∝ |a|·|b|.
  double cross_weight = 0.0;
  for (int a = 0; a < num_blocks; ++a) {
    const double sa = static_cast<double>(config.BlockStart(a + 1) - config.BlockStart(a));
    for (int b = a + 1; b < num_blocks; ++b) {
      const double sb =
          static_cast<double>(config.BlockStart(b + 1) - config.BlockStart(b));
      cross_weight += sa * sb;
    }
  }

  for (int a = 0; a < num_blocks; ++a) {
    const int64_t start_a = config.BlockStart(a);
    const int64_t size_a = config.BlockStart(a + 1) - start_a;
    for (int b = a; b < num_blocks; ++b) {
      const int64_t start_b = config.BlockStart(b);
      const int64_t size_b = config.BlockStart(b + 1) - start_b;

      // Deterministic budget for this block pair; an independent counter-based
      // stream per pair means replay (and any per-pair parallel split) never
      // depends on emission order elsewhere.
      double budget;
      if (a == b) {
        budget = config.homophily * total_edges * static_cast<double>(size_a) /
                 static_cast<double>(n);
        if (size_a < 2) continue;
      } else {
        if (cross_weight <= 0.0) continue;
        budget = (1.0 - config.homophily) * total_edges *
                 (static_cast<double>(size_a) * static_cast<double>(size_b)) /
                 cross_weight;
      }
      const int64_t m = static_cast<int64_t>(std::llround(budget));
      Rng rng(MixSeed(MixSeed(edge_seed, static_cast<uint64_t>(a)),
                      static_cast<uint64_t>(b)));
      for (int64_t e = 0; e < m; ++e) {
        const int64_t u = start_a + PowerLawRank(size_a, config.power_law_alpha, &rng);
        const int64_t v = start_b + PowerLawRank(size_b, config.power_law_alpha, &rng);
        emit(u, v);  // u == v (intra pairs) is a self-loop; the builder drops it
      }
    }
  }
}

ScaleDataset::ScaleDataset(const ScaleGraphConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  PPFR_CHECK_GE(config.num_blocks, 2);
  PPFR_CHECK_GE(config.num_nodes, config.num_blocks);
  PPFR_CHECK_GE(config.average_degree, 0.0);
  PPFR_CHECK_GE(config.homophily, 0.0);
  PPFR_CHECK_LE(config.homophily, 1.0);
  PPFR_CHECK_LE(config.signature_size * config.num_blocks, config.feature_dim)
      << "class signatures must fit in the feature space";
  adj_ = graph::BuildCsrFromEdgeStream(
      config.num_nodes, [this](const std::function<void(int64_t, int64_t)>& emit) {
        StreamScaleEdges(config_, seed_, emit);
      });
}

std::vector<int> ScaleDataset::LabelsFor(const std::vector<int>& nodes) const {
  std::vector<int> labels(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) labels[i] = Label(nodes[i]);
  return labels;
}

void ScaleDataset::FillFeatureRow(int64_t v, double* row) const {
  const int cls = Label(v);
  const int sig_begin = cls * config_.signature_size;
  const int sig_end = sig_begin + config_.signature_size;
  Rng rng(MixSeed(MixSeed(seed_, kFeatureStreamTag), static_cast<uint64_t>(v)));
  for (int f = 0; f < config_.feature_dim; ++f) {
    const bool in_signature = f >= sig_begin && f < sig_end;
    const double prob =
        in_signature ? config_.feature_on_prob : config_.feature_noise_prob;
    row[f] = rng.Bernoulli(prob) ? 1.0 : 0.0;
  }
}

la::Matrix ScaleDataset::GatherFeatures(const std::vector<int>& nodes) const {
  la::Matrix out(static_cast<int>(nodes.size()), config_.feature_dim);
  for (size_t i = 0; i < nodes.size(); ++i) {
    FillFeatureRow(nodes[i], out.row(static_cast<int>(i)));
  }
  return out;
}

la::Matrix ScaleDataset::MaterializeFeatures() const {
  PPFR_CHECK_LE(config_.num_nodes, int64_t{1} << 22)
      << "MaterializeFeatures is a small-scale parity helper";
  la::Matrix out(static_cast<int>(config_.num_nodes), config_.feature_dim);
  for (int64_t v = 0; v < config_.num_nodes; ++v) {
    FillFeatureRow(v, out.row(static_cast<int>(v)));
  }
  return out;
}

std::vector<int> ScaleDataset::MaterializeLabels() const {
  std::vector<int> labels(static_cast<size_t>(config_.num_nodes));
  for (int64_t v = 0; v < config_.num_nodes; ++v) {
    labels[static_cast<size_t>(v)] = Label(v);
  }
  return labels;
}

std::vector<int> ScaleDataset::StridedNodes(int64_t count, uint64_t salt) const {
  PPFR_CHECK_GT(count, 0);
  PPFR_CHECK_LE(count, config_.num_nodes);
  const int64_t stride = config_.num_nodes / count;
  const int64_t phase = static_cast<int64_t>(
      MixSeed(MixSeed(seed_, kSplitStreamTag), salt) % static_cast<uint64_t>(stride ? stride : 1));
  std::vector<int> nodes(static_cast<size_t>(count));
  for (int64_t k = 0; k < count; ++k) {
    nodes[static_cast<size_t>(k)] = static_cast<int>(k * stride + phase);
  }
  return nodes;
}

}  // namespace ppfr::data

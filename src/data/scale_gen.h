#ifndef PPFR_DATA_SCALE_GEN_H_
#define PPFR_DATA_SCALE_GEN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr_builder.h"
#include "la/matrix.h"

namespace ppfr::data {

// Configuration for the streamed power-law block-model generator — the scale
// axis counterpart of SbmConfig (data/sbm.h). Same block-model semantics
// (homophily-calibrated intra/inter edge budgets, class-signature features)
// but engineered for 10^5–10^7 nodes: labels are closed-form over contiguous
// node-id blocks, edges stream per block pair from counter-based RNG, and
// feature rows are generated on demand per node — nothing global beyond the
// CSR is ever materialised.
struct ScaleGraphConfig {
  int64_t num_nodes = 100000;
  int num_blocks = 4;  // classes; node ids are split into contiguous blocks
  int feature_dim = 32;

  // Expected average degree and fraction of edges that stay within a block.
  double average_degree = 8.0;
  double homophily = 0.7;

  // Within-block endpoint skew: endpoints are drawn with density ∝ x^(-alpha)
  // over each block's local rank, so low ranks become hubs (power-law-ish
  // degrees). alpha <= 0 selects endpoints uniformly. Keep alpha well below
  // 1: at alpha >= 1 the density mass piles onto rank 0, most draws collide
  // on the same hub pairs, and the builder's dedupe collapses the realised
  // average degree far under `average_degree`.
  double power_law_alpha = 0.8;

  // Feature model as in SbmConfig: each class owns `signature_size` feature
  // ids; signature features fire with `feature_on_prob`, the rest with
  // `feature_noise_prob`.
  int signature_size = 8;
  double feature_on_prob = 0.4;
  double feature_noise_prob = 0.02;

  // First node id of block b (blocks are contiguous, sizes differ by <= 1).
  int64_t BlockStart(int b) const;
  // Block (= label) of node v, inverse of BlockStart.
  int BlockOf(int64_t v) const;
};

// Streams the deterministic edge multiset for (config, seed) into `emit`,
// one Rng(MixSeed(MixSeed(seed, a), b)) stream per block pair — replaying the
// call yields the identical sequence, which is what lets the two-pass CSR
// builder run without an edge list. Self-loops and duplicates may be emitted;
// the builder drops/collapses them.
void StreamScaleEdges(const ScaleGraphConfig& config, uint64_t seed,
                      const std::function<void(int64_t, int64_t)>& emit);

// A generated attributed graph whose only resident state is the CSR
// adjacency: labels are computed, feature rows are regenerated from their
// per-node counter-based stream on each request. Deterministic in
// (config, seed); Materialize* bridges to the dense representation for
// small-scale parity tests.
class ScaleDataset {
 public:
  ScaleDataset(const ScaleGraphConfig& config, uint64_t seed);

  const ScaleGraphConfig& config() const { return config_; }
  const graph::CsrAdjacency& adjacency() const { return adj_; }
  int64_t num_nodes() const { return config_.num_nodes; }
  int num_classes() const { return config_.num_blocks; }

  int Label(int64_t v) const { return config_.BlockOf(v); }
  std::vector<int> LabelsFor(const std::vector<int>& nodes) const;

  // Writes node v's feature row (config().feature_dim entries) into `row`.
  // Each node owns an independent RNG stream, so any row can be regenerated
  // in isolation, in any order, any number of times.
  void FillFeatureRow(int64_t v, double* row) const;
  // Stacks FillFeatureRow over `nodes` — the mini-batch feature path.
  la::Matrix GatherFeatures(const std::vector<int>& nodes) const;

  // Full dense materialisations (small graphs / parity tests only).
  la::Matrix MaterializeFeatures() const;
  std::vector<int> MaterializeLabels() const;

  // `count` nodes spread evenly over [0, num_nodes) by a strided pick with a
  // salt-dependent phase — deterministic, and balanced across the contiguous
  // label blocks by construction. Distinct salts give disjoint phases (mod
  // the stride), which is how train/val node sets are kept disjoint.
  std::vector<int> StridedNodes(int64_t count, uint64_t salt) const;

 private:
  ScaleGraphConfig config_;
  uint64_t seed_;
  graph::CsrAdjacency adj_;
};

}  // namespace ppfr::data

#endif  // PPFR_DATA_SCALE_GEN_H_

#ifndef PPFR_DATA_DATASETS_H_
#define PPFR_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "data/sbm.h"
#include "data/split.h"

namespace ppfr::data {

// Named benchmark substitutes. The real Cora / Citeseer / Pubmed / Enzymes /
// Credit datasets cannot be shipped in this offline build; each enum value
// maps to an SBM configuration calibrated to that dataset's class count, the
// homophily the paper reports (§VII-D: 0.81 / 0.74 / 0.80 / 0.66 / 0.62) and
// its sparse degree regime, scaled to laptop-minutes sizes (see DESIGN.md §2).
enum class DatasetId {
  kCoraLike,
  kCiteseerLike,
  kPubmedLike,
  kEnzymesLike,
  kCreditLike,
};

// Datasets used in the strong-homophily experiments (Tables II-IV, Figs 4-7).
std::vector<DatasetId> StrongHomophilyDatasets();
// Datasets used in the weak-homophily study (Table V).
std::vector<DatasetId> WeakHomophilyDatasets();

// Human-readable name ("CoraLike", ...).
std::string DatasetName(DatasetId id);

// The calibrated generator configuration for a dataset.
SbmConfig DatasetConfig(DatasetId id);

// Default number of labelled training nodes for a dataset.
int DefaultTrainCount(DatasetId id);

// A fully materialised benchmark: graph + features + labels + split.
struct Dataset {
  NodeClassificationData data;
  Split split;
};

// Generates the dataset and its split. Deterministic in (id, seed).
Dataset LoadDataset(DatasetId id, uint64_t seed);

}  // namespace ppfr::data

#endif  // PPFR_DATA_DATASETS_H_

#ifndef PPFR_DATA_SBM_H_
#define PPFR_DATA_SBM_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "la/matrix.h"

namespace ppfr::data {

// Configuration for the stochastic-block-model generator with
// class-conditional bag-of-words-style features. Calibrated instances stand
// in for the citation benchmarks the paper evaluates on (see datasets.h).
struct SbmConfig {
  std::string name = "sbm";
  int num_nodes = 1000;
  int num_classes = 4;
  int feature_dim = 64;

  // Target edge homophily h = p / (p + (C-1) q) and expected average degree.
  double homophily = 0.8;
  double average_degree = 4.0;

  // Feature model: each class owns `signature_size` feature ids; a node
  // activates each signature feature with `feature_on_prob` and every other
  // feature with `feature_noise_prob`.
  int signature_size = 16;
  double feature_on_prob = 0.4;
  double feature_noise_prob = 0.02;

  // Intra-class linking probability p; derived from homophily/degree.
  double IntraClassProb() const;
  // Inter-class linking probability q.
  double InterClassProb() const;
};

// A generated attributed graph for node classification.
struct NodeClassificationData {
  std::string name;
  graph::Graph graph;
  la::Matrix features;      // num_nodes x feature_dim (0/1 entries)
  std::vector<int> labels;  // num_nodes, in [0, num_classes)
  int num_classes = 0;
};

// Samples a graph + features + labels from the block model. Deterministic in
// (config, seed).
NodeClassificationData GenerateSbm(const SbmConfig& config, uint64_t seed);

}  // namespace ppfr::data

#endif  // PPFR_DATA_SBM_H_

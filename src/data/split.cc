#include "data/split.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::data {

Split MakeSplit(int num_nodes, int train_count, int val_count, uint64_t seed) {
  PPFR_CHECK_GE(train_count, 0);
  PPFR_CHECK_GE(val_count, 0);
  PPFR_CHECK_LE(train_count + val_count, num_nodes);
  std::vector<int> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&ids);

  Split split;
  split.train.assign(ids.begin(), ids.begin() + train_count);
  split.val.assign(ids.begin() + train_count, ids.begin() + train_count + val_count);
  split.test.assign(ids.begin() + train_count + val_count, ids.end());
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace ppfr::data

#ifndef PPFR_DATA_SPLIT_H_
#define PPFR_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

namespace ppfr::data {

// A train / validation / test partition of node ids.
struct Split {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

// Random disjoint split. `train_count + val_count` must not exceed the node
// count; all remaining nodes go to test. Deterministic in the seed.
Split MakeSplit(int num_nodes, int train_count, int val_count, uint64_t seed);

}  // namespace ppfr::data

#endif  // PPFR_DATA_SPLIT_H_

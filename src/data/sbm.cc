#include "data/sbm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppfr::data {
namespace {

// Samples edges within a node-id block pair using geometric skipping, so the
// cost is proportional to the number of sampled edges rather than the number
// of candidate pairs. `emit(u, v)` receives ordered candidate pairs.
template <typename EmitFn>
void SampleBlockPairs(int64_t num_pairs, double prob, Rng* rng, EmitFn emit) {
  if (prob <= 0.0 || num_pairs <= 0) return;
  PPFR_CHECK_LT(prob, 1.0);
  const double log1mp = std::log1p(-prob);
  int64_t cursor = -1;
  while (true) {
    const double u = std::max(rng->Uniform(), 1e-300);
    const int64_t skip = 1 + static_cast<int64_t>(std::floor(std::log(u) / log1mp));
    cursor += skip;
    if (cursor >= num_pairs) break;
    emit(cursor);
  }
}

}  // namespace

double SbmConfig::IntraClassProb() const {
  // Expected same-class degree a = h * d spread over n/C - 1 same-class peers.
  const double peers = static_cast<double>(num_nodes) / num_classes - 1.0;
  PPFR_CHECK_GT(peers, 0.0);
  return std::min(0.999, homophily * average_degree / peers);
}

double SbmConfig::InterClassProb() const {
  const double peers =
      static_cast<double>(num_nodes) * (num_classes - 1) / num_classes;
  PPFR_CHECK_GT(peers, 0.0);
  return std::min(0.999, (1.0 - homophily) * average_degree / peers);
}

NodeClassificationData GenerateSbm(const SbmConfig& config, uint64_t seed) {
  PPFR_CHECK_GE(config.num_classes, 2);
  PPFR_CHECK_GE(config.num_nodes, config.num_classes);
  PPFR_CHECK_LE(config.signature_size * config.num_classes, config.feature_dim)
      << "class signatures must fit in the feature space";
  Rng rng(seed);

  NodeClassificationData out;
  out.name = config.name;
  out.num_classes = config.num_classes;

  // Balanced labels, then shuffled so node ids carry no class signal.
  const int n = config.num_nodes;
  out.labels.resize(n);
  for (int v = 0; v < n; ++v) out.labels[v] = v % config.num_classes;
  rng.Shuffle(&out.labels);

  // Group nodes by class for blockwise edge sampling.
  std::vector<std::vector<int>> members(config.num_classes);
  for (int v = 0; v < n; ++v) members[out.labels[v]].push_back(v);

  const double p = config.IntraClassProb();
  const double q = config.InterClassProb();
  std::vector<graph::Edge> edges;

  for (int a = 0; a < config.num_classes; ++a) {
    // Within-class pairs (i < j inside the member list).
    const auto& ma = members[a];
    const int64_t sa = static_cast<int64_t>(ma.size());
    SampleBlockPairs(sa * (sa - 1) / 2, p, &rng, [&](int64_t pair_idx) {
      // Unrank pair_idx -> (i, j) with i < j: row i starts at offset
      // offset(i) = i*sa - i(i+1)/2; binary-search the row, then the column.
      auto offset = [sa](int64_t i) { return i * sa - i * (i + 1) / 2; };
      int64_t lo = 0, hi = sa - 1;  // row in [lo, hi)
      while (lo + 1 < hi) {
        const int64_t mid = (lo + hi) / 2;
        if (offset(mid) <= pair_idx) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const int64_t ii = lo;
      const int64_t jj = pair_idx - offset(ii) + ii + 1;
      edges.push_back({ma[static_cast<size_t>(ii)], ma[static_cast<size_t>(jj)]});
    });
    // Cross-class blocks (a < b): full rectangle.
    for (int b = a + 1; b < config.num_classes; ++b) {
      const auto& mb = members[b];
      const int64_t sb = static_cast<int64_t>(mb.size());
      SampleBlockPairs(sa * sb, q, &rng, [&](int64_t pair_idx) {
        edges.push_back({ma[static_cast<size_t>(pair_idx / sb)],
                         mb[static_cast<size_t>(pair_idx % sb)]});
      });
    }
  }
  out.graph = graph::Graph::FromEdges(n, edges);

  // Class-conditional features: disjoint signature blocks of feature ids.
  out.features = la::Matrix(n, config.feature_dim);
  for (int v = 0; v < n; ++v) {
    const int cls = out.labels[v];
    const int sig_begin = cls * config.signature_size;
    for (int f = 0; f < config.feature_dim; ++f) {
      const bool in_signature = f >= sig_begin && f < sig_begin + config.signature_size;
      const double prob = in_signature ? config.feature_on_prob : config.feature_noise_prob;
      if (rng.Bernoulli(prob)) out.features(v, f) = 1.0;
    }
  }
  return out;
}

}  // namespace ppfr::data

#include "data/datasets.h"

#include "common/check.h"

namespace ppfr::data {

std::vector<DatasetId> StrongHomophilyDatasets() {
  return {DatasetId::kCoraLike, DatasetId::kCiteseerLike, DatasetId::kPubmedLike};
}

std::vector<DatasetId> WeakHomophilyDatasets() {
  return {DatasetId::kEnzymesLike, DatasetId::kCreditLike};
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kCoraLike:
      return "CoraLike";
    case DatasetId::kCiteseerLike:
      return "CiteseerLike";
    case DatasetId::kPubmedLike:
      return "PubmedLike";
    case DatasetId::kEnzymesLike:
      return "EnzymesLike";
    case DatasetId::kCreditLike:
      return "CreditLike";
  }
  PPFR_CHECK(false) << "unknown dataset id";
  return "";
}

SbmConfig DatasetConfig(DatasetId id) {
  SbmConfig cfg;
  cfg.name = DatasetName(id);
  switch (id) {
    case DatasetId::kCoraLike:
      // Cora: 2708 nodes, 7 classes, homophily 0.81, avg degree ~3.9.
      cfg.num_nodes = 1400;
      cfg.num_classes = 7;
      cfg.feature_dim = 128;
      cfg.homophily = 0.81;
      cfg.average_degree = 3.9;
      cfg.signature_size = 12;
      cfg.feature_on_prob = 0.16;
      cfg.feature_noise_prob = 0.04;
      break;
    case DatasetId::kCiteseerLike:
      // Citeseer: 3327 nodes, 6 classes, homophily 0.74, avg degree ~2.8.
      cfg.num_nodes = 1320;
      cfg.num_classes = 6;
      cfg.feature_dim = 128;
      cfg.homophily = 0.74;
      cfg.average_degree = 2.8;
      cfg.signature_size = 12;
      cfg.feature_on_prob = 0.13;
      cfg.feature_noise_prob = 0.04;
      break;
    case DatasetId::kPubmedLike:
      // Pubmed: 19717 nodes, 3 classes, homophily 0.80, avg degree ~4.5.
      cfg.num_nodes = 3000;
      cfg.num_classes = 3;
      cfg.feature_dim = 96;
      cfg.homophily = 0.80;
      cfg.average_degree = 4.5;
      cfg.signature_size = 20;
      cfg.feature_on_prob = 0.16;
      cfg.feature_noise_prob = 0.05;
      break;
    case DatasetId::kEnzymesLike:
      // Enzymes: 6 classes, weak homophily 0.66, denser local structure.
      cfg.num_nodes = 600;
      cfg.num_classes = 6;
      cfg.feature_dim = 64;
      cfg.homophily = 0.66;
      cfg.average_degree = 5.3;
      cfg.signature_size = 8;
      cfg.feature_on_prob = 0.20;
      cfg.feature_noise_prob = 0.06;
      break;
    case DatasetId::kCreditLike:
      // Credit: 2 classes, weak homophily 0.62, higher degree.
      cfg.num_nodes = 2000;
      cfg.num_classes = 2;
      cfg.feature_dim = 64;
      cfg.homophily = 0.62;
      cfg.average_degree = 8.0;
      cfg.signature_size = 12;
      cfg.feature_on_prob = 0.18;
      cfg.feature_noise_prob = 0.06;
      break;
  }
  return cfg;
}

int DefaultTrainCount(DatasetId id) {
  switch (id) {
    case DatasetId::kCoraLike:
      return 140;
    case DatasetId::kCiteseerLike:
      return 120;
    case DatasetId::kPubmedLike:
      return 120;
    case DatasetId::kEnzymesLike:
      return 90;
    case DatasetId::kCreditLike:
      return 120;
  }
  return 100;
}

Dataset LoadDataset(DatasetId id, uint64_t seed) {
  Dataset ds;
  ds.data = GenerateSbm(DatasetConfig(id), seed);
  const int val_count = DefaultTrainCount(id);  // validation same size as train
  ds.split = MakeSplit(ds.data.graph.num_nodes(), DefaultTrainCount(id), val_count,
                       seed ^ 0x5eedULL);
  return ds;
}

}  // namespace ppfr::data

#ifndef PPFR_NN_INIT_H_
#define PPFR_NN_INIT_H_

#include "common/rng.h"
#include "la/matrix.h"

namespace ppfr::nn {

// Glorot (Xavier) uniform initialisation: U(-l, l), l = sqrt(6/(fan_in+fan_out)).
la::Matrix GlorotUniform(int rows, int cols, Rng* rng);

// Zero matrix (bias initialisation).
la::Matrix Zeros(int rows, int cols);

}  // namespace ppfr::nn

#endif  // PPFR_NN_INIT_H_

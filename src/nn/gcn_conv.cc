#include "nn/gcn_conv.h"

#include "nn/init.h"

namespace ppfr::nn {

GcnConv::GcnConv(int in_dim, int out_dim, uint64_t seed)
    : weight_("gcn.weight",
              [&] {
                Rng rng(seed);
                return GlorotUniform(in_dim, out_dim, &rng);
              }()),
      bias_("gcn.bias", Zeros(1, out_dim)) {}

ag::Var GcnConv::Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x,
                         int lanes) {
  ag::Var w = tape.Leaf(&weight_);
  ag::Var b = tape.Leaf(&bias_);
  // MatMulLanes is the only lane-aware op the layer needs: SpMM and the bias
  // broadcast are column-count-invariant per element, so the lane-wide
  // activations flow through them unchanged (lanes == 1 is exactly MatMul).
  ag::Var xw = ag::MatMulLanes(x, w, lanes);
  ag::Var propagated = ag::SpMM(ctx.gcn_adj, xw);
  return ag::AddRowVec(propagated, b);
}

std::vector<ag::Parameter*> GcnConv::Params() { return {&weight_, &bias_}; }

}  // namespace ppfr::nn

#include "nn/trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "common/recoverable.h"
#include "common/rng.h"
#include "nn/adam.h"
#include "nn/sampler.h"

namespace ppfr::nn {
namespace {
std::atomic<int64_t> train_invocations{0};
}  // namespace

int64_t TrainInvocationCount() { return train_invocations.load(); }

TrainStats Train(GnnModel* model, const GraphContext& ctx,
                 const std::vector<int>& train_nodes, const std::vector<int>& labels,
                 const TrainConfig& config) {
  train_invocations.fetch_add(1);
  PPFR_CHECK(!train_nodes.empty());
  PPFR_CHECK_EQ(labels.size(), static_cast<size_t>(ctx.num_nodes()));

  std::vector<int> train_labels(train_nodes.size());
  for (size_t i = 0; i < train_nodes.size(); ++i) {
    train_labels[i] = labels[train_nodes[i]];
  }
  std::vector<double> weights = config.sample_weights;
  if (weights.empty()) {
    weights.assign(train_nodes.size(), 1.0);
  }
  PPFR_CHECK_EQ(weights.size(), train_nodes.size());

  std::vector<ag::Parameter*> params = model->Params();
  Adam optimizer(params, {.lr = config.lr, .weight_decay = config.weight_decay});
  Rng sample_rng(config.seed);

  TrainStats stats;
  stats.epoch_losses.reserve(config.epochs);
  // One tape serves every epoch: the first pass records the graph structure,
  // later passes replay it in place (per-epoch state — parameter values, the
  // sampled SAGE aggregator, saved activations — is refreshed each pass
  // because replay re-runs the builders and replaces backward closures).
  ag::Tape reused_tape;
  bool recorded = false;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    ForwardOptions options;
    if (model->UsesNeighborSampling()) {
      options.sage_aggregator = ctx.SampledMeanAdj(config.sage_fanout, &sample_rng);
    }

    for (ag::Parameter* p : params) p->ZeroGrad();
    ag::Tape fresh_tape;
    ag::Tape& tape = config.reuse_tape ? reused_tape : fresh_tape;
    if (config.reuse_tape && recorded) tape.BeginReplay();
    ag::Var logits = model->Forward(tape, ctx, options);
    ag::Var logp = ag::LogSoftmaxRows(logits);
    ag::Var loss = ag::WeightedNll(logp, train_nodes, train_labels, weights,
                                   static_cast<double>(train_nodes.size()));
    if (config.fairness_laplacian != nullptr && config.fairness_reg != 0.0) {
      ag::Var probs = ag::SoftmaxRows(logits);
      ag::Var bias = ag::LaplacianQuadratic(config.fairness_laplacian, probs);
      loss = ag::Add(loss, ag::Scale(bias, config.fairness_reg));
    }
    tape.Backward(loss);
    recorded = true;
    optimizer.Step();

    // A non-finite loss is a data-dependent divergence (bad hyper-parameter
    // cell, exploding fairness term), not a programming error: raise the
    // sanctioned recoverable error so the runner can fail just this cell
    // instead of killing the whole sweep. Not transient — the same inputs
    // diverge identically, so retrying is wasted work.
    if (!std::isfinite(loss.scalar())) {
      throw RecoverableError("non-finite training loss at epoch " +
                             std::to_string(epoch));
    }
    stats.epoch_losses.push_back(loss.scalar());
    if (config.verbose && epoch % 20 == 0) {
      PPFR_LOG(Info) << "epoch " << epoch << " loss " << loss.scalar();
    }
  }
  stats.final_loss = stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

TrainStats TrainSampled(GnnModel* model, const SampledTrainSpec& spec,
                        const std::vector<int>& train_nodes,
                        const std::vector<int>& train_labels,
                        const TrainConfig& config) {
  train_invocations.fetch_add(1);
  PPFR_CHECK(spec.adj != nullptr);
  PPFR_CHECK(spec.gather_features != nullptr);
  PPFR_CHECK(!train_nodes.empty());
  PPFR_CHECK_EQ(train_labels.size(), train_nodes.size());
  PPFR_CHECK(config.fairness_laplacian == nullptr)
      << "the fairness regulariser needs full-graph probabilities; use Train()";
  PPFR_CHECK(config.sample_weights.empty() ||
             config.sample_weights.size() == train_nodes.size());

  // Per-node label/weight lookup survives the per-epoch batch shuffles.
  std::unordered_map<int, size_t> node_index;
  node_index.reserve(train_nodes.size() * 2);
  for (size_t i = 0; i < train_nodes.size(); ++i) {
    node_index.emplace(train_nodes[i], i);
  }

  NeighborSampler sampler(spec.adj, {.fanout = config.sage_fanout,
                                     .num_hops = 2,
                                     .seed = config.seed});
  std::vector<ag::Parameter*> params = model->Params();
  Adam optimizer(params, {.lr = config.lr, .weight_decay = config.weight_decay});

  TrainStats stats;
  stats.epoch_losses.reserve(config.epochs);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<std::vector<int>> batches = NeighborSampler::EpochBatches(
        train_nodes, config.batch_nodes, config.seed, epoch);
    double epoch_loss = 0.0;
    for (size_t b = 0; b < batches.size(); ++b) {
      const std::vector<int>& batch = batches[b];
      const SampledBlock block =
          sampler.SampleBlock(batch, epoch, static_cast<int>(b));

      std::vector<int> rows(batch.size());
      std::vector<int> labels(batch.size());
      std::vector<double> weights(batch.size(), 1.0);
      for (size_t i = 0; i < batch.size(); ++i) {
        rows[i] = static_cast<int>(i);  // targets are the leading logits rows
        const size_t idx = node_index.at(batch[i]);
        labels[i] = train_labels[idx];
        if (!config.sample_weights.empty()) weights[i] = config.sample_weights[idx];
      }

      for (ag::Parameter* p : params) p->ZeroGrad();
      // The block structure (frontier, aggregators) changes per batch, so
      // each step records a fresh tape — reuse_tape is a full-batch feature.
      ag::Tape tape;
      ag::Var x = tape.Constant(spec.gather_features(block.frontier));
      ag::Var logits = model->ForwardSampled(tape, block, x);
      ag::Var logp = ag::LogSoftmaxRows(logits);
      ag::Var loss = ag::WeightedNll(logp, rows, labels, weights,
                                     static_cast<double>(batch.size()));
      tape.Backward(loss);
      optimizer.Step();

      if (!std::isfinite(loss.scalar())) {
        throw RecoverableError("non-finite sampled training loss at epoch " +
                               std::to_string(epoch) + " batch " +
                               std::to_string(b));
      }
      epoch_loss += loss.scalar() * static_cast<double>(batch.size());
    }
    epoch_loss /= static_cast<double>(train_nodes.size());
    stats.epoch_losses.push_back(epoch_loss);
    if (config.verbose && epoch % 20 == 0) {
      PPFR_LOG(Info) << "epoch " << epoch << " sampled loss " << epoch_loss;
    }
  }
  stats.final_loss = stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

la::Matrix SampledLogits(GnnModel* model, const SampledTrainSpec& spec,
                         const std::vector<int>& nodes, int batch_nodes) {
  PPFR_CHECK(spec.adj != nullptr);
  PPFR_CHECK(spec.gather_features != nullptr);
  PPFR_CHECK(!nodes.empty());
  // Full fanout makes every block the exact 2-hop neighbourhood — inference
  // is deterministic and the epoch/batch stream indices are inert.
  NeighborSampler sampler(spec.adj, {.fanout = kAllNeighbors, .num_hops = 2,
                                     .seed = 0});
  la::Matrix out;
  int64_t row = 0;
  for (size_t begin = 0; begin < nodes.size();) {
    const size_t end = batch_nodes > 0
                           ? std::min(nodes.size(), begin + static_cast<size_t>(batch_nodes))
                           : nodes.size();
    const std::vector<int> batch(nodes.begin() + begin, nodes.begin() + end);
    const SampledBlock block = sampler.SampleBlock(batch, 0, 0);
    ag::Tape tape;
    ag::Var x = tape.Constant(spec.gather_features(block.frontier));
    ag::Var logits = model->ForwardSampled(tape, block, x);
    const la::Matrix& vals = logits.value();
    if (out.rows() == 0) {
      out = la::Matrix(static_cast<int>(nodes.size()), vals.cols());
    }
    for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
      std::copy(vals.row(i), vals.row(i) + vals.cols(),
                out.row(static_cast<int>(row + i)));
    }
    row += static_cast<int64_t>(batch.size());
    begin = end;
  }
  return out;
}

double Accuracy(const la::Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& nodes) {
  PPFR_CHECK(!nodes.empty());
  const std::vector<int> pred = la::ArgmaxRows(logits);
  int64_t correct = 0;
  for (int v : nodes) {
    if (pred[v] == labels[v]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

}  // namespace ppfr::nn

#include "nn/trainer.h"

#include <atomic>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/recoverable.h"
#include "common/rng.h"
#include "nn/adam.h"

namespace ppfr::nn {
namespace {
std::atomic<int64_t> train_invocations{0};
}  // namespace

int64_t TrainInvocationCount() { return train_invocations.load(); }

TrainStats Train(GnnModel* model, const GraphContext& ctx,
                 const std::vector<int>& train_nodes, const std::vector<int>& labels,
                 const TrainConfig& config) {
  train_invocations.fetch_add(1);
  PPFR_CHECK(!train_nodes.empty());
  PPFR_CHECK_EQ(labels.size(), static_cast<size_t>(ctx.num_nodes()));

  std::vector<int> train_labels(train_nodes.size());
  for (size_t i = 0; i < train_nodes.size(); ++i) {
    train_labels[i] = labels[train_nodes[i]];
  }
  std::vector<double> weights = config.sample_weights;
  if (weights.empty()) {
    weights.assign(train_nodes.size(), 1.0);
  }
  PPFR_CHECK_EQ(weights.size(), train_nodes.size());

  std::vector<ag::Parameter*> params = model->Params();
  Adam optimizer(params, {.lr = config.lr, .weight_decay = config.weight_decay});
  Rng sample_rng(config.seed);

  TrainStats stats;
  stats.epoch_losses.reserve(config.epochs);
  // One tape serves every epoch: the first pass records the graph structure,
  // later passes replay it in place (per-epoch state — parameter values, the
  // sampled SAGE aggregator, saved activations — is refreshed each pass
  // because replay re-runs the builders and replaces backward closures).
  ag::Tape reused_tape;
  bool recorded = false;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    ForwardOptions options;
    if (model->UsesNeighborSampling()) {
      options.sage_aggregator = ctx.SampledMeanAdj(config.sage_fanout, &sample_rng);
    }

    for (ag::Parameter* p : params) p->ZeroGrad();
    ag::Tape fresh_tape;
    ag::Tape& tape = config.reuse_tape ? reused_tape : fresh_tape;
    if (config.reuse_tape && recorded) tape.BeginReplay();
    ag::Var logits = model->Forward(tape, ctx, options);
    ag::Var logp = ag::LogSoftmaxRows(logits);
    ag::Var loss = ag::WeightedNll(logp, train_nodes, train_labels, weights,
                                   static_cast<double>(train_nodes.size()));
    if (config.fairness_laplacian != nullptr && config.fairness_reg != 0.0) {
      ag::Var probs = ag::SoftmaxRows(logits);
      ag::Var bias = ag::LaplacianQuadratic(config.fairness_laplacian, probs);
      loss = ag::Add(loss, ag::Scale(bias, config.fairness_reg));
    }
    tape.Backward(loss);
    recorded = true;
    optimizer.Step();

    // A non-finite loss is a data-dependent divergence (bad hyper-parameter
    // cell, exploding fairness term), not a programming error: raise the
    // sanctioned recoverable error so the runner can fail just this cell
    // instead of killing the whole sweep. Not transient — the same inputs
    // diverge identically, so retrying is wasted work.
    if (!std::isfinite(loss.scalar())) {
      throw RecoverableError("non-finite training loss at epoch " +
                             std::to_string(epoch));
    }
    stats.epoch_losses.push_back(loss.scalar());
    if (config.verbose && epoch % 20 == 0) {
      PPFR_LOG(Info) << "epoch " << epoch << " loss " << loss.scalar();
    }
  }
  stats.final_loss = stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

double Accuracy(const la::Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& nodes) {
  PPFR_CHECK(!nodes.empty());
  const std::vector<int> pred = la::ArgmaxRows(logits);
  int64_t correct = 0;
  for (int v : nodes) {
    if (pred[v] == labels[v]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

}  // namespace ppfr::nn

#ifndef PPFR_NN_TRAINER_H_
#define PPFR_NN_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "graph/csr_builder.h"
#include "la/csr_matrix.h"
#include "nn/models.h"

namespace ppfr::nn {

// One training run (vanilla training or a fine-tuning continuation).
struct TrainConfig {
  int epochs = 200;
  double lr = 0.01;
  double weight_decay = 5e-4;

  // λ for the InFoRM fairness regulariser λ·Tr(Yᵀ L_S Y) on the softmax
  // probabilities; active only when `fairness_laplacian` is provided.
  double fairness_reg = 0.0;
  std::shared_ptr<const la::CsrMatrix> fairness_laplacian;

  // Per-train-node loss weights (1 + w_v) from fairness-aware reweighting;
  // empty means all-ones. Aligned with `train_nodes`.
  std::vector<double> sample_weights;

  // GraphSAGE neighbour sampling fanout (per epoch).
  int sage_fanout = 5;

  // Mini-batch size for TrainSampled (target nodes per batch); <= 0 trains
  // one batch holding every train node. Ignored by full-batch Train().
  int batch_nodes = 0;

  uint64_t seed = 1;  // drives neighbour sampling only
  bool verbose = false;

  // Reuse one autograd tape across epochs (record the first forward, replay
  // thereafter — value/grad buffers are recycled instead of reallocated).
  // The loss structure is static across epochs for every model, so this is
  // purely an execution-mode switch; results are bitwise identical to the
  // fresh-tape-per-epoch path.
  bool reuse_tape = true;
};

struct TrainStats {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
};

// Full-batch training of `model` on the given context/labels. Loss:
//   (1/|train|) Σ_v (1+w_v)·NLL(v)  +  λ·Tr(softmax(logits)ᵀ L_S softmax(logits))
// Weight decay is handled by the optimiser.
TrainStats Train(GnnModel* model, const GraphContext& ctx,
                 const std::vector<int>& train_nodes, const std::vector<int>& labels,
                 const TrainConfig& config);

// Data access for neighbour-sampled mini-batch training at scale: the CSR
// adjacency the sampler walks (non-owning) plus a feature gather producing
// the rows for a frontier of global node ids on demand — at no point does a
// full feature matrix exist. data::ScaleDataset::GatherFeatures binds
// directly; a dense feature matrix binds via a row-copy lambda in tests.
struct SampledTrainSpec {
  const graph::CsrAdjacency* adj = nullptr;
  std::function<la::Matrix(const std::vector<int>&)> gather_features;
};

// Neighbour-sampled mini-batch training (GraphSAGE-style models only — the
// model must implement ForwardSampled). `train_labels` is aligned with
// `train_nodes`. Per epoch the train nodes are shuffled into batches of
// config.batch_nodes; each batch samples a fanout-capped 2-hop block
// (deterministic in (config.seed, epoch, batch)), gathers only the frontier's
// feature rows and steps Adam on the batch NLL. With batch_nodes <= 0 and
// sage_fanout >= max degree this computes the same loss as full-batch
// Train() up to float summation order (the parity the tests pin within
// tolerance). The fairness regulariser and tape reuse are full-batch-only
// features; config.fairness_laplacian must be null and reuse_tape is ignored
// (block structure changes per batch).
TrainStats TrainSampled(GnnModel* model, const SampledTrainSpec& spec,
                        const std::vector<int>& train_nodes,
                        const std::vector<int>& train_labels,
                        const TrainConfig& config);

// Inference logits for `nodes` through full-fanout (exact) sampled blocks in
// batches of `batch_nodes`: row i holds the logits of nodes[i]. Deterministic
// — no sampling randomness at full fanout.
la::Matrix SampledLogits(GnnModel* model, const SampledTrainSpec& spec,
                         const std::vector<int>& nodes, int batch_nodes = 1024);

// Process-wide count of Train() calls (vanilla runs and fine-tunes alike).
// The scenario runner's stage cache exists to drive this number down — its
// tests assert e.g. "vanilla trained exactly once per (dataset, model, seed)"
// by diffing this counter around a sweep.
int64_t TrainInvocationCount();

// Fraction of `nodes` whose argmax prediction matches the label.
double Accuracy(const la::Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& nodes);

}  // namespace ppfr::nn

#endif  // PPFR_NN_TRAINER_H_

#ifndef PPFR_NN_TRAINER_H_
#define PPFR_NN_TRAINER_H_

#include <memory>
#include <vector>

#include "la/csr_matrix.h"
#include "nn/models.h"

namespace ppfr::nn {

// One training run (vanilla training or a fine-tuning continuation).
struct TrainConfig {
  int epochs = 200;
  double lr = 0.01;
  double weight_decay = 5e-4;

  // λ for the InFoRM fairness regulariser λ·Tr(Yᵀ L_S Y) on the softmax
  // probabilities; active only when `fairness_laplacian` is provided.
  double fairness_reg = 0.0;
  std::shared_ptr<const la::CsrMatrix> fairness_laplacian;

  // Per-train-node loss weights (1 + w_v) from fairness-aware reweighting;
  // empty means all-ones. Aligned with `train_nodes`.
  std::vector<double> sample_weights;

  // GraphSAGE neighbour sampling fanout (per epoch).
  int sage_fanout = 5;

  uint64_t seed = 1;  // drives neighbour sampling only
  bool verbose = false;

  // Reuse one autograd tape across epochs (record the first forward, replay
  // thereafter — value/grad buffers are recycled instead of reallocated).
  // The loss structure is static across epochs for every model, so this is
  // purely an execution-mode switch; results are bitwise identical to the
  // fresh-tape-per-epoch path.
  bool reuse_tape = true;
};

struct TrainStats {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
};

// Full-batch training of `model` on the given context/labels. Loss:
//   (1/|train|) Σ_v (1+w_v)·NLL(v)  +  λ·Tr(softmax(logits)ᵀ L_S softmax(logits))
// Weight decay is handled by the optimiser.
TrainStats Train(GnnModel* model, const GraphContext& ctx,
                 const std::vector<int>& train_nodes, const std::vector<int>& labels,
                 const TrainConfig& config);

// Process-wide count of Train() calls (vanilla runs and fine-tunes alike).
// The scenario runner's stage cache exists to drive this number down — its
// tests assert e.g. "vanilla trained exactly once per (dataset, model, seed)"
// by diffing this counter around a sweep.
int64_t TrainInvocationCount();

// Fraction of `nodes` whose argmax prediction matches the label.
double Accuracy(const la::Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& nodes);

}  // namespace ppfr::nn

#endif  // PPFR_NN_TRAINER_H_

#include "nn/graph_context.h"

#include "graph/graph_ops.h"

namespace ppfr::nn {

GraphContext GraphContext::Build(graph::Graph g, la::Matrix features) {
  PPFR_CHECK_EQ(g.num_nodes(), features.rows());
  GraphContext ctx;
  ctx.gcn_adj = ag::MakeSparseOperand(graph::GcnNormalizedAdjacency(g), /*symmetric=*/true);
  ctx.mean_adj =
      ag::MakeSparseOperand(graph::MeanAggregationMatrix(g), /*symmetric=*/false);

  auto edges = std::make_shared<ag::EdgeSet>();
  const int n = g.num_nodes();
  edges->num_nodes = n;
  edges->row_ptr.assign(n + 1, 0);
  for (int v = 0; v < n; ++v) {
    edges->row_ptr[v + 1] = edges->row_ptr[v] + g.Degree(v) + 1;  // +1 self-loop
  }
  edges->col_idx.resize(edges->row_ptr[n]);
  for (int v = 0; v < n; ++v) {
    int64_t k = edges->row_ptr[v];
    edges->col_idx[k++] = v;
    for (int u : g.Neighbors(v)) edges->col_idx[k++] = u;
  }
  ctx.edges_with_self = std::move(edges);

  ctx.graph = std::move(g);
  ctx.features = std::move(features);
  return ctx;
}

std::shared_ptr<const ag::SparseOperand> GraphContext::SampledMeanAdj(int fanout,
                                                                      Rng* rng) const {
  return ag::MakeSparseOperand(graph::SampledMeanAggregationMatrix(graph, fanout, rng),
                               /*symmetric=*/false);
}

}  // namespace ppfr::nn

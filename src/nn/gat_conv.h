#ifndef PPFR_NN_GAT_CONV_H_
#define PPFR_NN_GAT_CONV_H_

#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/graph_context.h"

namespace ppfr::nn {

// Multi-head graph attention layer (Velickovic et al.):
//   per head h: H_h = X W_h,  e_ij = LeakyReLU(a_lᵀ H_h[i] + a_rᵀ H_h[j])
//   alpha = softmax_j(e_ij) over j ∈ N(i) ∪ {i},  out_i = Σ_j alpha_ij H_h[j]
// Heads are concatenated when `concat` is true (hidden layers) and averaged
// otherwise (output layer).
class GatConv {
 public:
  GatConv(int in_dim, int out_dim, int heads, bool concat, uint64_t seed);

  GatConv(const GatConv&) = default;
  GatConv& operator=(const GatConv&) = default;

  // `lanes` > 1 runs the fused-replay lane-wide graph (see GcnConv::Forward):
  // the per-head projections and attention-score GEMMs run lane-wide, then
  // the edge softmax-aggregate — whose per-row softmax would mix lanes — runs
  // per lane on sliced windows, and the lane outputs concatenate back into
  // the lane-major wide layout.
  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x, int lanes = 1);

  std::vector<ag::Parameter*> Params();

  int output_dim() const { return concat_ ? out_dim_ * heads_ : out_dim_; }

 private:
  int out_dim_;
  int heads_;
  bool concat_;
  std::vector<ag::Parameter> weights_;     // per head: in_dim x out_dim
  std::vector<ag::Parameter> attn_left_;   // per head: out_dim x 1
  std::vector<ag::Parameter> attn_right_;  // per head: out_dim x 1
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_GAT_CONV_H_

#ifndef PPFR_NN_GCN_CONV_H_
#define PPFR_NN_GCN_CONV_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/graph_context.h"

namespace ppfr::nn {

// Graph convolution layer (Kipf & Welling): out = Â (X W) + b.
class GcnConv {
 public:
  GcnConv(int in_dim, int out_dim, uint64_t seed);

  // Copyable so models can be cloned for before/after comparisons.
  GcnConv(const GcnConv&) = default;
  GcnConv& operator=(const GcnConv&) = default;

  // `lanes` > 1 runs the fused-replay lane-wide graph: weight/bias must be
  // column-widened (nn::WidenModelParams) and `x` is lane-shared (layer 1
  // features) or lane-wide (a previous lane-wide layer's output). lanes == 1
  // is the ordinary narrow layer.
  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x, int lanes = 1);

  std::vector<ag::Parameter*> Params();

 private:
  ag::Parameter weight_;
  ag::Parameter bias_;
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_GCN_CONV_H_

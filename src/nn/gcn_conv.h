#ifndef PPFR_NN_GCN_CONV_H_
#define PPFR_NN_GCN_CONV_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/graph_context.h"

namespace ppfr::nn {

// Graph convolution layer (Kipf & Welling): out = Â (X W) + b.
class GcnConv {
 public:
  GcnConv(int in_dim, int out_dim, uint64_t seed);

  // Copyable so models can be cloned for before/after comparisons.
  GcnConv(const GcnConv&) = default;
  GcnConv& operator=(const GcnConv&) = default;

  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x);

  std::vector<ag::Parameter*> Params();

 private:
  ag::Parameter weight_;
  ag::Parameter bias_;
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_GCN_CONV_H_

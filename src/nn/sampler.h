#ifndef PPFR_NN_SAMPLER_H_
#define PPFR_NN_SAMPLER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr_builder.h"
#include "la/csr_matrix.h"

namespace ppfr::nn {

// Fanout value meaning "take every neighbour" — the cap never binds, making
// the sampled block an exact restriction of the full-graph mean aggregator
// (the parity case the tests pin).
inline constexpr int kAllNeighbors = std::numeric_limits<int>::max();

struct SamplerConfig {
  // Max neighbours aggregated per node per hop; nodes at or under the cap
  // keep all neighbours (mean over deg), matching
  // graph::SampledMeanAggregationMatrix semantics.
  int fanout = 5;
  int num_hops = 2;  // SAGE depth
  uint64_t seed = 1;
};

// One hop of a sampled block: a local row-stochastic aggregation operator
// mapping activations over the input frontier F_h (agg cols) to the output
// frontier F_{h+1} (agg rows). Row o averages the <= fanout sampled
// neighbours of frontier node o with weight 1/k.
struct SampledHop {
  la::CsrMatrix agg;
  int num_in() const { return agg.cols(); }
  int num_out() const { return agg.rows(); }
};

// A k-hop mini-batch block. `frontier` holds global node ids with the PREFIX
// property F_{num_hops} ⊆ … ⊆ F_1 ⊆ F_0 = frontier, where F_h is the
// leading hop_sizes[h] entries and F_{num_hops} is exactly `targets` in call
// order. The prefix property is what lets a SAGE layer's self-term be a
// GatherRows of the leading rows of its input activations. `hops` is in
// forward order: layer h consumes activations over F_h and produces F_{h+1}.
struct SampledBlock {
  std::vector<int> frontier;
  std::vector<int> hop_sizes;  // num_hops + 1 entries, non-increasing
  std::vector<SampledHop> hops;

  int num_inputs() const { return hop_sizes.front(); }
  int num_targets() const { return hop_sizes.back(); }
};

// Fanout-capped k-hop block sampler over a CSR adjacency (non-owning).
// Every (hop, node) pair draws from its own counter-based RNG stream derived
// from (seed, epoch, batch, hop, node) — the sampled block is a pure function
// of those values plus `targets`, independent of thread count, iteration
// order or any other sampling that happened before (the property the
// determinism tests pin across runs and backends).
class NeighborSampler {
 public:
  NeighborSampler(const graph::CsrAdjacency* adj, const SamplerConfig& config);

  const SamplerConfig& config() const { return config_; }

  // Builds the block for one mini-batch of target nodes. Sampled neighbours
  // are kept in ascending node-id order, so the frontier layout itself is
  // canonical.
  SampledBlock SampleBlock(const std::vector<int>& targets, int epoch,
                           int batch) const;

  // Deterministically shuffles `nodes` for `epoch` and chunks them into
  // batches of `batch_nodes` (last batch may be short); batch_nodes <= 0
  // means one batch holding everything.
  static std::vector<std::vector<int>> EpochBatches(const std::vector<int>& nodes,
                                                    int batch_nodes, uint64_t seed,
                                                    int epoch);

 private:
  const graph::CsrAdjacency* adj_;
  SamplerConfig config_;
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_SAMPLER_H_

#include "nn/models.h"

namespace ppfr::nn {
namespace {
constexpr int kGcnHidden = 16;
constexpr int kGatHidden = 8;
constexpr int kGatHeads = 4;
constexpr int kSageHidden = 16;
}  // namespace

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcn:
      return "GCN";
    case ModelKind::kGat:
      return "GAT";
    case ModelKind::kGraphSage:
      return "GraphSage";
  }
  return "?";
}

ag::Var GnnModel::ForwardSampled(ag::Tape& tape, const SampledBlock& block,
                                 ag::Var x) {
  (void)tape;
  (void)block;
  (void)x;
  PPFR_CHECK(false) << ModelKindName(kind())
                    << " has no sampled mini-batch forward path";
  return x;
}

la::Matrix GnnModel::Logits(const GraphContext& ctx) {
  ag::Tape tape;
  ag::Var out = Forward(tape, ctx, ForwardOptions{});
  return out.value();
}

la::Matrix GnnModel::PredictProbs(const GraphContext& ctx) {
  return la::SoftmaxRows(Logits(ctx));
}

// ---- GCN ----

Gcn::Gcn(int in_dim, int hidden_dim, int num_classes, uint64_t seed)
    : conv1_(in_dim, hidden_dim, seed), conv2_(hidden_dim, num_classes, seed + 101) {}

ag::Var Gcn::Forward(ag::Tape& tape, const GraphContext& ctx,
                     const ForwardOptions& options) {
  ag::Var x = tape.StaticConstant(ctx.features);
  ag::Var h = ag::Relu(conv1_.Forward(tape, ctx, x, options.replay_lanes));
  return conv2_.Forward(tape, ctx, h, options.replay_lanes);
}

std::vector<ag::Parameter*> Gcn::Params() {
  std::vector<ag::Parameter*> params = conv1_.Params();
  for (ag::Parameter* p : conv2_.Params()) params.push_back(p);
  return params;
}

std::unique_ptr<GnnModel> Gcn::Clone() const { return std::make_unique<Gcn>(*this); }

// ---- GAT ----

Gat::Gat(int in_dim, int hidden_dim, int num_classes, int heads, uint64_t seed)
    : conv1_(in_dim, hidden_dim, heads, /*concat=*/true, seed),
      conv2_(hidden_dim * heads, num_classes, 1, /*concat=*/false, seed + 101) {}

ag::Var Gat::Forward(ag::Tape& tape, const GraphContext& ctx,
                     const ForwardOptions& options) {
  ag::Var x = tape.StaticConstant(ctx.features);
  ag::Var h = ag::Elu(conv1_.Forward(tape, ctx, x, options.replay_lanes));
  return conv2_.Forward(tape, ctx, h, options.replay_lanes);
}

std::vector<ag::Parameter*> Gat::Params() {
  std::vector<ag::Parameter*> params = conv1_.Params();
  for (ag::Parameter* p : conv2_.Params()) params.push_back(p);
  return params;
}

std::unique_ptr<GnnModel> Gat::Clone() const { return std::make_unique<Gat>(*this); }

// ---- GraphSAGE ----

GraphSage::GraphSage(int in_dim, int hidden_dim, int num_classes, uint64_t seed)
    : conv1_(in_dim, hidden_dim, seed), conv2_(hidden_dim, num_classes, seed + 101) {}

ag::Var GraphSage::Forward(ag::Tape& tape, const GraphContext& ctx,
                           const ForwardOptions& options) {
  ag::Var x = tape.StaticConstant(ctx.features);
  ag::Var h = ag::Relu(
      conv1_.Forward(tape, ctx, x, options.sage_aggregator, options.replay_lanes));
  return conv2_.Forward(tape, ctx, h, options.sage_aggregator, options.replay_lanes);
}

ag::Var GraphSage::ForwardSampled(ag::Tape& tape, const SampledBlock& block,
                                  ag::Var x) {
  PPFR_CHECK_EQ(block.hops.size(), size_t{2})
      << "two-layer GraphSAGE needs a 2-hop sampled block";
  PPFR_CHECK_EQ(x.value().rows(), block.num_inputs());
  // The hop aggregators are local (frontier-indexed) operators; asymmetric,
  // so the operand carries an explicit transpose for the backward pass.
  ag::Var h = ag::Relu(conv1_.ForwardBlock(
      tape, x, ag::MakeSparseOperand(block.hops[0].agg, /*symmetric=*/false)));
  return conv2_.ForwardBlock(
      tape, h, ag::MakeSparseOperand(block.hops[1].agg, /*symmetric=*/false));
}

std::vector<ag::Parameter*> GraphSage::Params() {
  std::vector<ag::Parameter*> params = conv1_.Params();
  for (ag::Parameter* p : conv2_.Params()) params.push_back(p);
  return params;
}

std::unique_ptr<GnnModel> GraphSage::Clone() const {
  return std::make_unique<GraphSage>(*this);
}

std::unique_ptr<GnnModel> MakeModel(ModelKind kind, int in_dim, int num_classes,
                                    uint64_t seed) {
  switch (kind) {
    case ModelKind::kGcn:
      return std::make_unique<Gcn>(in_dim, kGcnHidden, num_classes, seed);
    case ModelKind::kGat:
      return std::make_unique<Gat>(in_dim, kGatHidden, num_classes, kGatHeads, seed);
    case ModelKind::kGraphSage:
      return std::make_unique<GraphSage>(in_dim, kSageHidden, num_classes, seed);
  }
  PPFR_CHECK(false) << "unknown model kind";
  return nullptr;
}

void WidenModelParams(GnnModel* model, int lanes) {
  PPFR_CHECK_GE(lanes, 1);
  if (lanes == 1) return;
  for (ag::Parameter* p : model->Params()) {
    p->value = la::Matrix(p->value.rows(), p->value.cols() * lanes);
    p->grad = la::Matrix(p->grad.rows(), p->grad.cols() * lanes);
  }
}

}  // namespace ppfr::nn

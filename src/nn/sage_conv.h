#ifndef PPFR_NN_SAGE_CONV_H_
#define PPFR_NN_SAGE_CONV_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/graph_context.h"

namespace ppfr::nn {

// GraphSAGE mean-aggregator layer (Hamilton et al.):
//   out = X W_self + mean_{j in N(i)} X_j W_neigh + b
// During training the neighbour mean uses a per-epoch *sampled* aggregator
// (the sampling is what dilutes edge-DP noise, §VII-B of the paper).
class SageConv {
 public:
  SageConv(int in_dim, int out_dim, uint64_t seed);

  SageConv(const SageConv&) = default;
  SageConv& operator=(const SageConv&) = default;

  // `aggregator` overrides the context's full-graph neighbour mean when
  // non-null (used for sampled training passes). `lanes` > 1 runs the
  // fused-replay lane-wide graph (see GcnConv::Forward).
  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x,
                  const std::shared_ptr<const ag::SparseOperand>& aggregator,
                  int lanes = 1);

  // Mini-batch block variant: `x` holds activations over an input frontier
  // whose leading agg->mat.rows() rows are the output frontier (the sampler's
  // prefix property), so the self term is a GatherRows of that prefix and the
  // neighbour term is the local sampled mean `agg` applied to the whole
  // frontier. Output has agg->mat.rows() rows.
  ag::Var ForwardBlock(ag::Tape& tape, ag::Var x,
                       const std::shared_ptr<const ag::SparseOperand>& agg);

  std::vector<ag::Parameter*> Params();

 private:
  ag::Parameter weight_self_;
  ag::Parameter weight_neigh_;
  ag::Parameter bias_;
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_SAGE_CONV_H_

#ifndef PPFR_NN_ADAM_H_
#define PPFR_NN_ADAM_H_

#include <vector>

#include "autograd/tape.h"

namespace ppfr::nn {

// Adam optimiser (Kingma & Ba) with classic L2 weight decay folded into the
// gradient. Operates in-place on the registered parameters.
class Adam {
 public:
  struct Options {
    double lr = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<ag::Parameter*> params, const Options& options);

  // Applies one update from the gradients currently stored in the params,
  // then leaves gradients untouched (caller zeroes them).
  void Step();

  // Resets first/second moment state and the step counter.
  void ResetState();

  const Options& options() const { return options_; }
  void set_lr(double lr) { options_.lr = lr; }

 private:
  std::vector<ag::Parameter*> params_;
  Options options_;
  std::vector<la::Matrix> m_;
  std::vector<la::Matrix> v_;
  int64_t step_ = 0;
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_ADAM_H_

#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace ppfr::nn {

Adam::Adam(std::vector<ag::Parameter*> params, const Options& options)
    : params_(std::move(params)), options_(options) {
  PPFR_CHECK(!params_.empty());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (ag::Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Parameter* p = params_[i];
    double* value = p->value.data();
    const double* grad = p->grad.data();
    double* m = m_[i].data();
    double* v = v_[i].data();
    for (int64_t k = 0; k < p->size(); ++k) {
      const double g = grad[k] + options_.weight_decay * value[k];
      m[k] = options_.beta1 * m[k] + (1.0 - options_.beta1) * g;
      v[k] = options_.beta2 * v[k] + (1.0 - options_.beta2) * g * g;
      const double m_hat = m[k] / bc1;
      const double v_hat = v[k] / bc2;
      value[k] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

void Adam::ResetState() {
  step_ = 0;
  for (auto& m : m_) m.Zero();
  for (auto& v : v_) v.Zero();
}

}  // namespace ppfr::nn

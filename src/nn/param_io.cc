#include "nn/param_io.h"

namespace ppfr::nn {

void SaveParams(BinaryWriter* w, const std::vector<ag::Parameter*>& params) {
  w->WriteU64(params.size());
  for (const ag::Parameter* p : params) {
    w->WriteString(p->name);
    w->WriteI32(p->value.rows());
    w->WriteI32(p->value.cols());
    for (int64_t i = 0; i < p->value.size(); ++i) w->WriteDouble(p->value.data()[i]);
  }
}

bool LoadParams(BinaryReader* r, const std::vector<ag::Parameter*>& params) {
  if (r->ReadU64() != params.size() || !r->ok()) return false;
  for (ag::Parameter* p : params) {
    if (r->ReadString() != p->name) return false;
    const int rows = r->ReadI32();
    const int cols = r->ReadI32();
    if (!r->ok() || rows != p->value.rows() || cols != p->value.cols()) return false;
    for (int64_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] = r->ReadDouble();
    }
    if (!r->ok()) return false;
  }
  return true;
}

}  // namespace ppfr::nn

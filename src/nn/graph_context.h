#ifndef PPFR_NN_GRAPH_CONTEXT_H_
#define PPFR_NN_GRAPH_CONTEXT_H_

#include <memory>

#include "autograd/ops.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "la/matrix.h"

namespace ppfr::nn {

// A snapshot of everything a GNN forward pass needs about one graph:
// features plus the propagation operators for each architecture. PPFR's
// structure perturbations produce a *new* context from the edited graph and
// hand it to the same model — which is what makes the method model-agnostic.
struct GraphContext {
  graph::Graph graph;
  la::Matrix features;

  // Symmetric GCN operator D̃^{-1/2}(A+I)D̃^{-1/2}.
  std::shared_ptr<const ag::SparseOperand> gcn_adj;
  // Row-stochastic neighbour mean (GraphSAGE full-graph aggregator).
  std::shared_ptr<const ag::SparseOperand> mean_adj;
  // Destination-grouped edges including self-loops (GAT attention support).
  std::shared_ptr<const ag::EdgeSet> edges_with_self;

  int num_nodes() const { return graph.num_nodes(); }
  int feature_dim() const { return features.cols(); }

  // Builds all operators from a graph + feature matrix.
  static GraphContext Build(graph::Graph g, la::Matrix features);

  // Per-epoch sampled GraphSAGE aggregator (fanout neighbours per node).
  std::shared_ptr<const ag::SparseOperand> SampledMeanAdj(int fanout, Rng* rng) const;
};

}  // namespace ppfr::nn

#endif  // PPFR_NN_GRAPH_CONTEXT_H_

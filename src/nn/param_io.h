#ifndef PPFR_NN_PARAM_IO_H_
#define PPFR_NN_PARAM_IO_H_

#include "common/serialize.h"
#include "nn/models.h"

namespace ppfr::nn {

// Binary (de)serialization of a model's trainable parameters for the
// disk-persisted run cache. The format is positional but self-checking:
// parameter count, then per parameter its name and shape followed by the
// row-major values (bitwise IEEE-754, so a round trip reproduces the model
// exactly). Gradients are not persisted — a restored model is a post-training
// snapshot, not an optimiser state.
void SaveParams(BinaryWriter* w, const std::vector<ag::Parameter*>& params);

// Loads into an already-constructed model's parameters. False (model left in
// an unspecified half-written state — discard it) when the stream is
// truncated or the recorded count/names/shapes disagree with `params`, which
// is how architecture drift between writer and reader surfaces: as a cache
// miss, never as a crash or a silently misloaded model.
bool LoadParams(BinaryReader* r, const std::vector<ag::Parameter*>& params);

}  // namespace ppfr::nn

#endif  // PPFR_NN_PARAM_IO_H_

#include "nn/sampler.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::nn {
namespace {
constexpr uint64_t kBlockStreamTag = 0x424c4f43;  // "BLOC"
constexpr uint64_t kBatchStreamTag = 0x42415443;  // "BATC"
}  // namespace

NeighborSampler::NeighborSampler(const graph::CsrAdjacency* adj,
                                 const SamplerConfig& config)
    : adj_(adj), config_(config) {
  PPFR_CHECK(adj != nullptr);
  PPFR_CHECK_GT(config.fanout, 0);
  PPFR_CHECK_GE(config.num_hops, 1);
}

SampledBlock NeighborSampler::SampleBlock(const std::vector<int>& targets,
                                          int epoch, int batch) const {
  PPFR_CHECK(!targets.empty());
  const uint64_t block_seed = MixSeed(
      MixSeed(MixSeed(config_.seed, kBlockStreamTag), static_cast<uint64_t>(epoch)),
      static_cast<uint64_t>(batch));

  SampledBlock out;
  out.frontier = targets;
  std::unordered_map<int, int> local;  // global node id -> frontier index
  local.reserve(targets.size() * 4);
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto [it, inserted] = local.emplace(targets[i], static_cast<int>(i));
    PPFR_CHECK(inserted) << "duplicate target node " << targets[i] << " in batch";
  }

  // Build hops backward from the targets: the hop feeding frontier F_{h+1}
  // expands it (prefix-preserving) into F_h.
  std::vector<int> sizes{static_cast<int>(targets.size())};
  std::vector<SampledHop> hops_backward;
  std::vector<int> sampled;  // neighbour scratch, reused across nodes
  for (int h = config_.num_hops - 1; h >= 0; --h) {
    const int num_out = static_cast<int>(out.frontier.size());
    const uint64_t hop_seed = MixSeed(block_seed, static_cast<uint64_t>(h));
    std::vector<la::Triplet> triplets;
    triplets.reserve(static_cast<size_t>(num_out) *
                     std::min<int64_t>(config_.fanout, 16));
    for (int o = 0; o < num_out; ++o) {
      const int v = out.frontier[o];
      const auto nbrs = adj_->Neighbors(v);
      const int deg = static_cast<int>(nbrs.size());
      if (deg == 0) continue;  // isolated node: zero aggregation row
      sampled.clear();
      if (deg <= config_.fanout) {
        sampled.assign(nbrs.begin(), nbrs.end());
      } else {
        Rng rng(MixSeed(hop_seed, static_cast<uint64_t>(v)));
        std::vector<int> picks = rng.SampleWithoutReplacement(deg, config_.fanout);
        std::sort(picks.begin(), picks.end());  // ascending node ids (nbrs sorted)
        for (int idx : picks) sampled.push_back(nbrs[idx]);
      }
      const double w = 1.0 / static_cast<double>(sampled.size());
      for (int u : sampled) {
        auto [it, inserted] = local.emplace(u, static_cast<int>(out.frontier.size()));
        if (inserted) out.frontier.push_back(u);
        triplets.push_back({o, it->second, w});
      }
    }
    SampledHop hop;
    hop.agg = la::CsrMatrix::FromTriplets(
        num_out, static_cast<int>(out.frontier.size()), std::move(triplets));
    hops_backward.push_back(std::move(hop));
    sizes.push_back(static_cast<int>(out.frontier.size()));
  }

  std::reverse(sizes.begin(), sizes.end());
  out.hop_sizes = std::move(sizes);
  out.hops.reserve(hops_backward.size());
  for (auto it = hops_backward.rbegin(); it != hops_backward.rend(); ++it) {
    out.hops.push_back(std::move(*it));
  }
  return out;
}

std::vector<std::vector<int>> NeighborSampler::EpochBatches(
    const std::vector<int>& nodes, int batch_nodes, uint64_t seed, int epoch) {
  PPFR_CHECK(!nodes.empty());
  if (batch_nodes <= 0 || batch_nodes >= static_cast<int>(nodes.size())) {
    return {nodes};
  }
  std::vector<int> order = nodes;
  Rng rng(MixSeed(MixSeed(seed, kBatchStreamTag), static_cast<uint64_t>(epoch)));
  rng.Shuffle(&order);
  std::vector<std::vector<int>> batches;
  for (size_t begin = 0; begin < order.size(); begin += batch_nodes) {
    const size_t end = std::min(order.size(), begin + batch_nodes);
    batches.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return batches;
}

}  // namespace ppfr::nn

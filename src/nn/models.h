#ifndef PPFR_NN_MODELS_H_
#define PPFR_NN_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/graph_context.h"
#include "nn/sage_conv.h"
#include "nn/sampler.h"

namespace ppfr::nn {

enum class ModelKind { kGcn, kGat, kGraphSage };

std::string ModelKindName(ModelKind kind);

// Per-forward options. `sage_aggregator` carries the per-epoch sampled
// neighbour mean for GraphSAGE training passes. `replay_lanes` > 1 builds the
// lane-wide graph of the fused multi-point tape replay: every parameter must
// have been widened to `lanes` column blocks (WidenModelParams), the logits
// come out (n x classes·lanes) with lane l in columns [l·classes, (l+1)·classes),
// and each lane is bitwise identical to a replay_lanes == 1 forward at that
// lane's parameter point.
struct ForwardOptions {
  std::shared_ptr<const ag::SparseOperand> sage_aggregator;
  int replay_lanes = 1;
};

// A node-classification GNN. Forward returns raw logits (n x classes); the
// trainer / metrics apply (log-)softmax.
class GnnModel {
 public:
  virtual ~GnnModel() = default;

  virtual ag::Var Forward(ag::Tape& tape, const GraphContext& ctx,
                          const ForwardOptions& options) = 0;
  // Mini-batch forward over a sampled k-hop block (nn/sampler.h): `x` holds
  // the gathered features of block.frontier; the result has
  // block.num_targets() rows, aligned with the batch's target nodes. Only
  // architectures whose layers aggregate locally can run this way — the base
  // implementation aborts; GraphSage overrides it.
  virtual ag::Var ForwardSampled(ag::Tape& tape, const SampledBlock& block,
                                 ag::Var x);
  virtual std::vector<ag::Parameter*> Params() = 0;
  virtual ModelKind kind() const = 0;
  // Deep copy (used to keep the vanilla model while fine-tuning a clone).
  virtual std::unique_ptr<GnnModel> Clone() const = 0;

  // True when training should resample neighbourhoods each epoch.
  bool UsesNeighborSampling() const { return kind() == ModelKind::kGraphSage; }

  // Convenience: forward pass without sampling, returning logits values.
  la::Matrix Logits(const GraphContext& ctx);
  // Softmax probabilities of Logits().
  la::Matrix PredictProbs(const GraphContext& ctx);
};

// Two-layer GCN: ReLU(Â X W1) -> Â H W2.
class Gcn final : public GnnModel {
 public:
  Gcn(int in_dim, int hidden_dim, int num_classes, uint64_t seed);

  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx,
                  const ForwardOptions& options) override;
  std::vector<ag::Parameter*> Params() override;
  ModelKind kind() const override { return ModelKind::kGcn; }
  std::unique_ptr<GnnModel> Clone() const override;

 private:
  GcnConv conv1_;
  GcnConv conv2_;
};

// Two-layer GAT: ELU(GAT(in->hidden, heads, concat)) -> GAT(hidden*heads->C, 1 head).
class Gat final : public GnnModel {
 public:
  Gat(int in_dim, int hidden_dim, int num_classes, int heads, uint64_t seed);

  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx,
                  const ForwardOptions& options) override;
  std::vector<ag::Parameter*> Params() override;
  ModelKind kind() const override { return ModelKind::kGat; }
  std::unique_ptr<GnnModel> Clone() const override;

 private:
  GatConv conv1_;
  GatConv conv2_;
};

// Two-layer GraphSAGE with mean aggregation and neighbour sampling.
class GraphSage final : public GnnModel {
 public:
  GraphSage(int in_dim, int hidden_dim, int num_classes, uint64_t seed);

  ag::Var Forward(ag::Tape& tape, const GraphContext& ctx,
                  const ForwardOptions& options) override;
  ag::Var ForwardSampled(ag::Tape& tape, const SampledBlock& block,
                         ag::Var x) override;
  std::vector<ag::Parameter*> Params() override;
  ModelKind kind() const override { return ModelKind::kGraphSage; }
  std::unique_ptr<GnnModel> Clone() const override;

 private:
  SageConv conv1_;
  SageConv conv2_;
};

// Factory with per-kind default hyperparameters (hidden width, heads).
std::unique_ptr<GnnModel> MakeModel(ModelKind kind, int in_dim, int num_classes,
                                    uint64_t seed);

// Reshapes every parameter of `model` (value and grad) from (r x c) to
// (r x c·lanes) zeros, the column-blocked layout that a
// ForwardOptions::replay_lanes == lanes forward consumes. The widened values
// are meaningless until the caller scatters per-lane parameter points into
// the column blocks (influence::GradLanePool does this per replay chunk) —
// widening is a layout change, not a broadcast.
void WidenModelParams(GnnModel* model, int lanes);

}  // namespace ppfr::nn

#endif  // PPFR_NN_MODELS_H_

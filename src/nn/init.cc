#include "nn/init.h"

#include <cmath>

namespace ppfr::nn {

la::Matrix GlorotUniform(int rows, int cols, Rng* rng) {
  la::Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-limit, limit);
  return m;
}

la::Matrix Zeros(int rows, int cols) { return la::Matrix(rows, cols); }

}  // namespace ppfr::nn

#include "nn/gat_conv.h"

#include "nn/init.h"

namespace ppfr::nn {
namespace {
constexpr double kLeakySlope = 0.2;
}  // namespace

GatConv::GatConv(int in_dim, int out_dim, int heads, bool concat, uint64_t seed)
    : out_dim_(out_dim), heads_(heads), concat_(concat) {
  PPFR_CHECK_GE(heads, 1);
  Rng owned_rng(seed);
  Rng* rng = &owned_rng;
  weights_.reserve(heads);
  attn_left_.reserve(heads);
  attn_right_.reserve(heads);
  for (int h = 0; h < heads; ++h) {
    weights_.emplace_back("gat.weight", GlorotUniform(in_dim, out_dim, rng));
    attn_left_.emplace_back("gat.attn_l", GlorotUniform(out_dim, 1, rng));
    attn_right_.emplace_back("gat.attn_r", GlorotUniform(out_dim, 1, rng));
  }
}

ag::Var GatConv::Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x,
                         int lanes) {
  // Per-head projections H_h and attention scores (lane-wide when lanes > 1),
  // then one fused softmax-aggregate over all heads per lane.
  std::vector<ag::Var> head_features;
  std::vector<ag::Var> left_scores;
  std::vector<ag::Var> right_scores;
  head_features.reserve(heads_);
  for (int h = 0; h < heads_; ++h) {
    ag::Var w = tape.Leaf(&weights_[h]);
    ag::Var hh = ag::MatMulLanes(x, w, lanes);  // n x out_dim·L
    head_features.push_back(hh);
    left_scores.push_back(
        ag::MatMulLanes(hh, tape.Leaf(&attn_left_[h]), lanes));  // n x L
    right_scores.push_back(
        ag::MatMulLanes(hh, tape.Leaf(&attn_right_[h]), lanes));  // n x L
  }

  // Concat heads + softmax-aggregate + (optionally) average heads, for one
  // lane's narrow feature/score windows.
  auto aggregate_heads = [&](std::vector<ag::Var> hf, std::vector<ag::Var> ls,
                             std::vector<ag::Var> rs) {
    ag::Var h_all = heads_ == 1 ? hf[0] : ag::ConcatCols(hf);
    ag::Var sl = heads_ == 1 ? ls[0] : ag::ConcatCols(ls);
    ag::Var sr = heads_ == 1 ? rs[0] : ag::ConcatCols(rs);
    ag::Var out = ag::EdgeSoftmaxAggregate(h_all, sl, sr, ctx.edges_with_self, heads_,
                                           kLeakySlope);
    if (concat_ || heads_ == 1) return out;

    // Average heads: out is n x (heads*out_dim); sum the head blocks.
    ag::Var acc{};
    for (int h = 0; h < heads_; ++h) {
      // Slice head block h via a constant selector matrix (heads*out x out).
      la::Matrix selector(heads_ * out_dim_, out_dim_);
      for (int c = 0; c < out_dim_; ++c) selector(h * out_dim_ + c, c) = 1.0;
      ag::Var block = ag::MatMul(out, tape.Constant(std::move(selector)));
      acc = h == 0 ? block : ag::Add(acc, block);
    }
    return ag::Scale(acc, 1.0 / heads_);
  };

  if (lanes == 1) {
    return aggregate_heads(std::move(head_features), std::move(left_scores),
                           std::move(right_scores));
  }

  // The edge softmax normalises over a destination's neighbours per head —
  // its per-row arithmetic depends on every head column, so unlike the GEMMs
  // it cannot run lane-wide. Slice each lane's windows out of the wide
  // projections, aggregate per lane with the narrow op (bitwise the serial
  // path: a slice is a copy), and concatenate lane outputs back into the
  // lane-major wide layout.
  std::vector<ag::Var> lane_outputs;
  lane_outputs.reserve(lanes);
  for (int l = 0; l < lanes; ++l) {
    std::vector<ag::Var> hf;
    std::vector<ag::Var> ls;
    std::vector<ag::Var> rs;
    hf.reserve(heads_);
    for (int h = 0; h < heads_; ++h) {
      hf.push_back(ag::SliceCols(head_features[h], l * out_dim_, out_dim_));
      ls.push_back(ag::SliceCols(left_scores[h], l, 1));
      rs.push_back(ag::SliceCols(right_scores[h], l, 1));
    }
    lane_outputs.push_back(
        aggregate_heads(std::move(hf), std::move(ls), std::move(rs)));
  }
  return ag::ConcatCols(lane_outputs);
}

std::vector<ag::Parameter*> GatConv::Params() {
  std::vector<ag::Parameter*> params;
  for (int h = 0; h < heads_; ++h) {
    params.push_back(&weights_[h]);
    params.push_back(&attn_left_[h]);
    params.push_back(&attn_right_[h]);
  }
  return params;
}

}  // namespace ppfr::nn

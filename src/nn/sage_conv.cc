#include "nn/sage_conv.h"

#include "nn/init.h"

namespace ppfr::nn {

namespace {
la::Matrix Glorot(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return GlorotUniform(rows, cols, &rng);
}
}  // namespace

SageConv::SageConv(int in_dim, int out_dim, uint64_t seed)
    : weight_self_("sage.weight_self", Glorot(in_dim, out_dim, seed)),
      weight_neigh_("sage.weight_neigh", Glorot(in_dim, out_dim, seed + 1)),
      bias_("sage.bias", Zeros(1, out_dim)) {}

ag::Var SageConv::Forward(ag::Tape& tape, const GraphContext& ctx, ag::Var x,
                          const std::shared_ptr<const ag::SparseOperand>& aggregator,
                          int lanes) {
  const auto& agg = aggregator != nullptr ? aggregator : ctx.mean_adj;
  // Only the weight GEMMs contract over columns; SpMM, Add and the bias
  // broadcast pass lane-wide activations through unchanged.
  ag::Var self_term = ag::MatMulLanes(x, tape.Leaf(&weight_self_), lanes);
  ag::Var neigh_mean = ag::SpMM(agg, x);
  ag::Var neigh_term = ag::MatMulLanes(neigh_mean, tape.Leaf(&weight_neigh_), lanes);
  return ag::AddRowVec(ag::Add(self_term, neigh_term), tape.Leaf(&bias_));
}

ag::Var SageConv::ForwardBlock(ag::Tape& tape, ag::Var x,
                               const std::shared_ptr<const ag::SparseOperand>& agg) {
  PPFR_CHECK(agg != nullptr);
  const int num_out = agg->mat.rows();
  PPFR_CHECK_LE(num_out, x.value().rows());
  PPFR_CHECK_EQ(agg->mat.cols(), x.value().rows());
  std::vector<int> prefix(static_cast<size_t>(num_out));
  for (int i = 0; i < num_out; ++i) prefix[static_cast<size_t>(i)] = i;
  ag::Var self_term =
      ag::MatMul(ag::GatherRows(x, prefix), tape.Leaf(&weight_self_));
  ag::Var neigh_term = ag::MatMul(ag::SpMM(agg, x), tape.Leaf(&weight_neigh_));
  return ag::AddRowVec(ag::Add(self_term, neigh_term), tape.Leaf(&bias_));
}

std::vector<ag::Parameter*> SageConv::Params() {
  return {&weight_self_, &weight_neigh_, &bias_};
}

}  // namespace ppfr::nn

#ifndef PPFR_GRAPH_GRAPH_H_
#define PPFR_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ppfr::graph {

// An undirected edge (u, v). Stored canonically with u < v.
struct Edge {
  int u;
  int v;
};

// Immutable undirected simple graph in CSR form (sorted adjacency lists,
// no self-loops, no multi-edges). Structure perturbations (DP noise, PP
// heterophilic edges) build new Graph instances from edited edge lists.
class Graph {
 public:
  Graph() : num_nodes_(0) {}

  // Builds from an edge list; duplicates and self-loops are dropped,
  // (u, v) / (v, u) are unified.
  static Graph FromEdges(int num_nodes, const std::vector<Edge>& edges);

  int num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  // Sorted neighbours of node v.
  std::span<const int> Neighbors(int v) const;
  int Degree(int v) const;
  bool HasEdge(int u, int v) const;

  // Canonical (u < v) edge list.
  const std::vector<Edge>& Edges() const { return edges_; }

  // Average degree 2|E| / n.
  double AverageDegree() const;

  // Fraction of edges whose endpoints share a label (edge homophily).
  double EdgeHomophily(const std::vector<int>& labels) const;

 private:
  int num_nodes_;
  std::vector<int64_t> row_ptr_;
  std::vector<int> adj_;
  std::vector<Edge> edges_;
};

}  // namespace ppfr::graph

#endif  // PPFR_GRAPH_GRAPH_H_

#ifndef PPFR_GRAPH_SPARSITY_STATS_H_
#define PPFR_GRAPH_SPARSITY_STATS_H_

#include "graph/graph.h"

namespace ppfr::graph {

// Statistics backing Proposition V.2: when minimising the InFoRM bias, only
// 1-hop and 2-hop pairs move (Lemma V.1), and 2-hop pairs are a vanishing
// fraction of the unconnected pairs — so d̄0 stays put while d̄1 shrinks.
struct TwoHopStats {
  int64_t connected_pairs = 0;    // 1-hop
  int64_t two_hop_pairs = 0;      // unconnected but hop == 2
  int64_t unconnected_pairs = 0;  // all i < j with no edge
  // two_hop_pairs / unconnected_pairs — the empirical Eq. 5 ratio.
  double two_hop_ratio = 0.0;
  // The paper's closed form (p + q)² / (1 - (p + q)) with p + q = d̄/(n-1).
  double eq5_prediction = 0.0;
};

// Exact BFS-based count (O(n·(m/n)²) for sparse graphs).
TwoHopStats ComputeTwoHopStats(const Graph& g);

}  // namespace ppfr::graph

#endif  // PPFR_GRAPH_SPARSITY_STATS_H_

#include "graph/csr_builder.h"

#include <algorithm>

#include "common/check.h"

namespace ppfr::graph {
namespace {
// Ceiling on directed adjacency entries (2 per undirected edge): the int64
// row_ptr can address more, but anything past this is a generator bug (at 4
// bytes per entry it is already a quarter-terabyte buffer), so fail loudly
// before reserve() turns it into an opaque bad_alloc or a wrapped size.
constexpr int64_t kMaxAdjEntries = int64_t{1} << 36;
}  // namespace

std::span<const int> CsrAdjacency::Neighbors(int64_t v) const {
  PPFR_CHECK_GE(v, 0);
  PPFR_CHECK_LT(v, num_nodes_);
  return {adj_.data() + row_ptr_[v], adj_.data() + row_ptr_[v + 1]};
}

int CsrAdjacency::Degree(int64_t v) const {
  PPFR_CHECK_GE(v, 0);
  PPFR_CHECK_LT(v, num_nodes_);
  return static_cast<int>(row_ptr_[v + 1] - row_ptr_[v]);
}

int CsrAdjacency::MaxDegree() const {
  int max_deg = 0;
  for (int64_t v = 0; v < num_nodes_; ++v) {
    max_deg = std::max(max_deg, static_cast<int>(row_ptr_[v + 1] - row_ptr_[v]));
  }
  return max_deg;
}

double CsrAdjacency::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(adj_.size()) / static_cast<double>(num_nodes_);
}

Graph CsrAdjacency::ToGraph() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges()));
  for (int64_t v = 0; v < num_nodes_; ++v) {
    for (int64_t k = row_ptr_[v]; k < row_ptr_[v + 1]; ++k) {
      if (v < adj_[k]) edges.push_back({static_cast<int>(v), adj_[k]});
    }
  }
  return Graph::FromEdges(static_cast<int>(num_nodes_), edges);
}

CsrAdjacency CsrAdjacency::FromGraph(const Graph& g) {
  return BuildCsrFromEdgeStream(
      g.num_nodes(), [&g](const std::function<void(int64_t, int64_t)>& emit) {
        for (const Edge& e : g.Edges()) emit(e.u, e.v);
      });
}

CsrAdjacency BuildCsrFromEdgeStream(
    int64_t num_nodes,
    const std::function<void(const std::function<void(int64_t, int64_t)>&)>& stream) {
  PPFR_CHECK_GE(num_nodes, 0);
  PPFR_CHECK_LE(num_nodes, kMaxCsrNodes)
      << "node count overflows the int32 CSR column indices "
      << "(kMaxCsrNodes = " << kMaxCsrNodes << ")";

  CsrAdjacency out;
  out.num_nodes_ = num_nodes;
  out.row_ptr_.assign(static_cast<size_t>(num_nodes) + 1, 0);

  // Pass 1: degree count. Self-loops are dropped here and must be dropped
  // identically on replay (the emit callback applies the same filter).
  int64_t pass1_entries = 0;
  stream([&](int64_t u, int64_t v) {
    PPFR_CHECK_GE(u, 0);
    PPFR_CHECK_LT(u, num_nodes);
    PPFR_CHECK_GE(v, 0);
    PPFR_CHECK_LT(v, num_nodes);
    if (u == v) return;
    out.row_ptr_[u + 1]++;
    out.row_ptr_[v + 1]++;
    pass1_entries += 2;
  });
  PPFR_CHECK_LE(pass1_entries, kMaxAdjEntries)
      << "edge stream too large for the adjacency buffer";

  for (int64_t v = 0; v < num_nodes; ++v) out.row_ptr_[v + 1] += out.row_ptr_[v];
  out.adj_.resize(static_cast<size_t>(pass1_entries));

  // Pass 2: in-place placement through per-row cursors.
  std::vector<int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  int64_t pass2_entries = 0;
  stream([&](int64_t u, int64_t v) {
    PPFR_CHECK_GE(u, 0);
    PPFR_CHECK_LT(u, num_nodes);
    PPFR_CHECK_GE(v, 0);
    PPFR_CHECK_LT(v, num_nodes);
    if (u == v) return;
    PPFR_CHECK_LT(pass2_entries, pass1_entries)
        << "edge stream emitted more edges on replay than on the count pass";
    out.adj_[static_cast<size_t>(cursor[u]++)] = static_cast<int>(v);
    out.adj_[static_cast<size_t>(cursor[v]++)] = static_cast<int>(u);
    pass2_entries += 2;
  });
  PPFR_CHECK_EQ(pass2_entries, pass1_entries)
      << "edge stream is not replayable: pass 2 emitted a different edge count";

  // Per-row sort + in-place dedupe (multi-edges collapse to simple edges),
  // then compact the adjacency buffer and rebuild row_ptr over the kept runs.
  int64_t write = 0;
  int64_t begin = 0;  // original row start — row_ptr_[v] is overwritten below
  for (int64_t v = 0; v < num_nodes; ++v) {
    const int64_t end = out.row_ptr_[v + 1];
    std::sort(out.adj_.begin() + begin, out.adj_.begin() + end);
    const auto last = std::unique(out.adj_.begin() + begin, out.adj_.begin() + end);
    const int64_t kept = last - (out.adj_.begin() + begin);
    if (write != begin) {
      std::copy(out.adj_.begin() + begin, out.adj_.begin() + begin + kept,
                out.adj_.begin() + write);
    }
    out.row_ptr_[v] = write;
    write += kept;
    begin = end;
  }
  out.row_ptr_[num_nodes] = write;
  out.adj_.resize(static_cast<size_t>(write));
  out.adj_.shrink_to_fit();
  out.RegisterArenaBytes();
  return out;
}

}  // namespace ppfr::graph

#ifndef PPFR_GRAPH_CSR_BUILDER_H_
#define PPFR_GRAPH_CSR_BUILDER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "la/matrix.h"

namespace ppfr::graph {

// Hard node-count ceiling imposed by the int32 column indices of the CSR
// layout (la::CsrMatrix and CsrAdjacency share it). Builders reject larger
// graphs with an error naming this limit instead of silently wrapping.
inline constexpr int64_t kMaxCsrNodes = 2147483647;  // INT32_MAX

// Undirected simple graph stored as bare CSR (row_ptr + sorted adjacency) —
// no materialised edge list, unlike graph::Graph, so a 10^7-node graph costs
// 8(n+1) + 4·2m bytes and nothing else. This is the structure the streamed
// generator builds into and the neighbour sampler reads from; `ToGraph()`
// bridges back to the edge-list world for small-scale parity tests.
class CsrAdjacency {
 public:
  CsrAdjacency() = default;

  int64_t num_nodes() const { return num_nodes_; }
  // Undirected edge count (each edge stored twice in adj_).
  int64_t num_edges() const { return static_cast<int64_t>(adj_.size()) / 2; }

  // Sorted, deduplicated neighbours of node v.
  std::span<const int> Neighbors(int64_t v) const;
  int Degree(int64_t v) const;
  int MaxDegree() const;
  double AverageDegree() const;

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& adj() const { return adj_; }

  // Materialises the canonical edge list (small graphs / parity tests only —
  // defeats the bounded-memory point at scale).
  Graph ToGraph() const;
  static CsrAdjacency FromGraph(const Graph& g);

 private:
  friend CsrAdjacency BuildCsrFromEdgeStream(
      int64_t, const std::function<void(const std::function<void(int64_t, int64_t)>&)>&);

  void RegisterArenaBytes() {
    arena_.Set(static_cast<int64_t>(row_ptr_.size() * sizeof(int64_t) +
                                    adj_.size() * sizeof(int)));
  }

  int64_t num_nodes_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int> adj_;
  // Last member: default copy/move/destroy keep the arena counters in sync.
  la::internal::ArenaRegistration arena_;
};

// Builds a CsrAdjacency from a REPLAYABLE edge stream in two passes without
// ever holding an edge list: pass 1 counts degrees, pass 2 places endpoints
// in place via per-row cursors, then each row is sorted and deduplicated
// (multi-edges collapse, self-loops are dropped on emit). `stream` is called
// exactly twice and must emit the same multiset of edges both times — the
// counter-based generator in data/scale_gen satisfies this by construction;
// a mismatch aborts rather than corrupting the structure. Peak memory is the
// final CSR plus one int64 cursor array — the "bounded-peak-memory" path the
// scale bench measures.
//
// Endpoints are validated against [0, num_nodes) and num_nodes against
// kMaxCsrNodes; the total directed entry count is bounds-checked before the
// adjacency buffer is reserved.
CsrAdjacency BuildCsrFromEdgeStream(
    int64_t num_nodes,
    const std::function<void(const std::function<void(int64_t, int64_t)>&)>& stream);

}  // namespace ppfr::graph

#endif  // PPFR_GRAPH_CSR_BUILDER_H_

#ifndef PPFR_GRAPH_GRAPH_OPS_H_
#define PPFR_GRAPH_GRAPH_OPS_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "la/csr_matrix.h"

namespace ppfr::graph {

// Symmetric GCN propagation operator Â = D̃^{-1/2} (A + I) D̃^{-1/2},
// with D̃ the degree matrix of (A + I) (Kipf & Welling).
la::CsrMatrix GcnNormalizedAdjacency(const Graph& g);

// Left-normalised operator D̃^{-1} (A + I) used by the paper's §VI-B2 risk
// model (one-hop mean aggregation including self).
la::CsrMatrix LeftNormalizedAdjacency(const Graph& g);

// Row-stochastic neighbour-mean operator M: M_ij = 1/deg(i) for j ∈ N(i)
// (rows of isolated nodes are zero). The GraphSAGE mean aggregator.
la::CsrMatrix MeanAggregationMatrix(const Graph& g);

// Sampled GraphSAGE aggregator: for every node, at most `fanout` neighbours
// are drawn without replacement and weighted 1/#sampled. Rebuilt per epoch.
la::CsrMatrix SampledMeanAggregationMatrix(const Graph& g, int fanout, Rng* rng);

// BFS hop distances from `source`, capped at `max_hops` (entries beyond the
// cap, including unreachable nodes, are max_hops + 1).
std::vector<int> BfsHops(const Graph& g, int source, int max_hops);

// Hop distance between u and v, capped at `cap` (returns cap + 1 when the
// distance exceeds the cap or the nodes are disconnected).
int HopDistance(const Graph& g, int u, int v, int cap);

}  // namespace ppfr::graph

#endif  // PPFR_GRAPH_GRAPH_OPS_H_

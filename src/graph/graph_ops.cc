#include "graph/graph_ops.h"

#include <cmath>
#include <deque>

#include "common/check.h"

namespace ppfr::graph {

la::CsrMatrix GcnNormalizedAdjacency(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<double> inv_sqrt_deg(n);
  for (int v = 0; v < n; ++v) {
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.Degree(v)) + 1.0);
  }
  std::vector<la::Triplet> triplets;
  triplets.reserve(2 * g.num_edges() + n);
  for (int v = 0; v < n; ++v) {
    triplets.push_back({v, v, inv_sqrt_deg[v] * inv_sqrt_deg[v]});
    for (int u : g.Neighbors(v)) {
      triplets.push_back({v, u, inv_sqrt_deg[v] * inv_sqrt_deg[u]});
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

la::CsrMatrix LeftNormalizedAdjacency(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<la::Triplet> triplets;
  triplets.reserve(2 * g.num_edges() + n);
  for (int v = 0; v < n; ++v) {
    const double w = 1.0 / (static_cast<double>(g.Degree(v)) + 1.0);
    triplets.push_back({v, v, w});
    for (int u : g.Neighbors(v)) triplets.push_back({v, u, w});
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

la::CsrMatrix MeanAggregationMatrix(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<la::Triplet> triplets;
  triplets.reserve(2 * g.num_edges());
  for (int v = 0; v < n; ++v) {
    const int deg = g.Degree(v);
    if (deg == 0) continue;
    const double w = 1.0 / deg;
    for (int u : g.Neighbors(v)) triplets.push_back({v, u, w});
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

la::CsrMatrix SampledMeanAggregationMatrix(const Graph& g, int fanout, Rng* rng) {
  PPFR_CHECK_GT(fanout, 0);
  const int n = g.num_nodes();
  std::vector<la::Triplet> triplets;
  // nnz is bounded by both n·fanout and the full adjacency; the min keeps the
  // reserve sane when fanout is a "take everything" sentinel like INT_MAX.
  triplets.reserve(static_cast<size_t>(std::min<int64_t>(
      static_cast<int64_t>(n) * fanout, 2 * g.num_edges())));
  for (int v = 0; v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    const int deg = static_cast<int>(nbrs.size());
    if (deg == 0) continue;
    if (deg <= fanout) {
      const double w = 1.0 / deg;
      for (int u : nbrs) triplets.push_back({v, u, w});
    } else {
      const double w = 1.0 / fanout;
      for (int idx : rng->SampleWithoutReplacement(deg, fanout)) {
        triplets.push_back({v, nbrs[idx], w});
      }
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

std::vector<int> BfsHops(const Graph& g, int source, int max_hops) {
  const int n = g.num_nodes();
  std::vector<int> hops(n, max_hops + 1);
  hops[source] = 0;
  std::deque<int> queue{source};
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    if (hops[v] >= max_hops) continue;
    for (int u : g.Neighbors(v)) {
      if (hops[u] > hops[v] + 1) {
        hops[u] = hops[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return hops;
}

int HopDistance(const Graph& g, int u, int v, int cap) {
  if (u == v) return 0;
  std::vector<int> hops = BfsHops(g, u, cap);
  return hops[v];
}

}  // namespace ppfr::graph

#include "graph/sparsity_stats.h"

#include <vector>

namespace ppfr::graph {

TwoHopStats ComputeTwoHopStats(const Graph& g) {
  TwoHopStats stats;
  const int n = g.num_nodes();
  stats.connected_pairs = g.num_edges();
  const int64_t all_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  stats.unconnected_pairs = all_pairs - stats.connected_pairs;

  // Count 2-hop pairs: neighbours-of-neighbours that are not neighbours.
  std::vector<char> seen(n, 0);
  std::vector<int> touched;
  for (int i = 0; i < n; ++i) {
    touched.clear();
    for (int u : g.Neighbors(i)) {
      for (int w : g.Neighbors(u)) {
        if (w <= i || seen[w]) continue;
        seen[w] = 1;
        touched.push_back(w);
      }
    }
    for (int w : touched) {
      seen[w] = 0;
      if (!g.HasEdge(i, w)) ++stats.two_hop_pairs;
    }
  }
  if (stats.unconnected_pairs > 0) {
    stats.two_hop_ratio = static_cast<double>(stats.two_hop_pairs) /
                          static_cast<double>(stats.unconnected_pairs);
  }
  // Eq. 5 closed form with the aggregate linking rate r = p + q = d̄/(n-1).
  // The paper prints ratio = (p+q)²/(1-(p+q)); its numerator counts expected
  // common neighbours for ONE intermediate node, so summing over the n-1
  // candidates gives the dimensionally consistent (n-1)(p+q)²/(1-(p+q)) used
  // here (≈ d̄²/(n-1), still vanishing for sparse graphs — the proposition's
  // argument is unaffected; validated in tests/risk_model_test.cc).
  if (n > 1) {
    const double rate = g.AverageDegree() / static_cast<double>(n - 1);
    if (rate < 1.0) {
      stats.eq5_prediction = static_cast<double>(n - 1) * rate * rate / (1.0 - rate);
    }
  }
  return stats;
}

}  // namespace ppfr::graph

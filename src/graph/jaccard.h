#ifndef PPFR_GRAPH_JACCARD_H_
#define PPFR_GRAPH_JACCARD_H_

#include "graph/graph.h"
#include "la/csr_matrix.h"

namespace ppfr::graph {

// Jaccard node-similarity matrix S derived from the graph structure, using
// closed neighbourhoods N[i] = N(i) ∪ {i} (this mirrors the self-loop added
// by the GCN normalisation, and yields Lemma V.1 of the paper:
// S_ij > 0 iff hop(i, j) <= 2). The diagonal is excluded; S is symmetric and
// sparse — only 1-hop and 2-hop pairs have entries.
la::CsrMatrix JaccardSimilarity(const Graph& g);

// Laplacian L_S = D_S - S of a symmetric similarity matrix (D_S diagonal of
// row sums). Used in the InFoRM bias Tr(Yᵀ L_S Y).
la::CsrMatrix SimilarityLaplacian(const la::CsrMatrix& similarity);

}  // namespace ppfr::graph

#endif  // PPFR_GRAPH_JACCARD_H_

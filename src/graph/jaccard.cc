#include "graph/jaccard.h"

#include <algorithm>

#include "common/check.h"

namespace ppfr::graph {

la::CsrMatrix JaccardSimilarity(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<la::Triplet> triplets;
  std::vector<char> in_closed(n, 0);
  std::vector<int> candidates;
  std::vector<char> seen(n, 0);

  for (int i = 0; i < n; ++i) {
    // Mark N[i].
    in_closed[i] = 1;
    for (int u : g.Neighbors(i)) in_closed[u] = 1;
    const int size_i = g.Degree(i) + 1;

    // Candidate j: within two hops of i (neighbours and their neighbours).
    candidates.clear();
    auto consider = [&](int j) {
      if (j > i && !seen[j]) {
        seen[j] = 1;
        candidates.push_back(j);
      }
    };
    for (int u : g.Neighbors(i)) {
      consider(u);
      for (int w : g.Neighbors(u)) consider(w);
    }

    for (int j : candidates) {
      seen[j] = 0;
      // |N[i] ∩ N[j]| by scanning N[j] against the bitmap.
      int inter = in_closed[j] ? 1 : 0;
      for (int u : g.Neighbors(j)) inter += in_closed[u];
      if (inter == 0) continue;
      const int size_j = g.Degree(j) + 1;
      const double sim =
          static_cast<double>(inter) / static_cast<double>(size_i + size_j - inter);
      triplets.push_back({i, j, sim});
      triplets.push_back({j, i, sim});
    }

    // Unmark N[i].
    in_closed[i] = 0;
    for (int u : g.Neighbors(i)) in_closed[u] = 0;
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

la::CsrMatrix SimilarityLaplacian(const la::CsrMatrix& similarity) {
  PPFR_CHECK_EQ(similarity.rows(), similarity.cols());
  const int n = similarity.rows();
  std::vector<la::Triplet> triplets;
  triplets.reserve(similarity.nnz() + n);
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int64_t k = similarity.row_ptr()[r]; k < similarity.row_ptr()[r + 1]; ++k) {
      const int c = similarity.col_idx()[k];
      const double v = similarity.values()[k];
      if (c == r) continue;  // diagonal similarity does not enter L
      triplets.push_back({r, c, -v});
      row_sum += v;
    }
    triplets.push_back({r, r, row_sum});
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace ppfr::graph

#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace ppfr::graph {

Graph Graph::FromEdges(int num_nodes, const std::vector<Edge>& edges) {
  Graph g;
  g.num_nodes_ = num_nodes;
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const Edge& e : edges) {
    PPFR_CHECK_GE(e.u, 0);
    PPFR_CHECK_LT(e.u, num_nodes);
    PPFR_CHECK_GE(e.v, 0);
    PPFR_CHECK_LT(e.v, num_nodes);
    if (e.u == e.v) continue;
    canon.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  canon.erase(std::unique(canon.begin(), canon.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              canon.end());
  g.edges_ = std::move(canon);

  std::vector<int> degree(num_nodes, 0);
  for (const Edge& e : g.edges_) {
    degree[e.u]++;
    degree[e.v]++;
  }
  g.row_ptr_.assign(num_nodes + 1, 0);
  for (int v = 0; v < num_nodes; ++v) g.row_ptr_[v + 1] = g.row_ptr_[v] + degree[v];
  g.adj_.resize(g.row_ptr_[num_nodes]);
  std::vector<int64_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const Edge& e : g.edges_) {
    g.adj_[cursor[e.u]++] = e.v;
    g.adj_[cursor[e.v]++] = e.u;
  }
  for (int v = 0; v < num_nodes; ++v) {
    std::sort(g.adj_.begin() + g.row_ptr_[v], g.adj_.begin() + g.row_ptr_[v + 1]);
  }
  return g;
}

std::span<const int> Graph::Neighbors(int v) const {
  PPFR_CHECK_GE(v, 0);
  PPFR_CHECK_LT(v, num_nodes_);
  return {adj_.data() + row_ptr_[v], adj_.data() + row_ptr_[v + 1]};
}

int Graph::Degree(int v) const {
  PPFR_CHECK_GE(v, 0);
  PPFR_CHECK_LT(v, num_nodes_);
  return static_cast<int>(row_ptr_[v + 1] - row_ptr_[v]);
}

bool Graph::HasEdge(int u, int v) const {
  if (u == v) return false;
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / num_nodes_;
}

double Graph::EdgeHomophily(const std::vector<int>& labels) const {
  PPFR_CHECK_EQ(labels.size(), static_cast<size_t>(num_nodes_));
  if (edges_.empty()) return 0.0;
  int64_t same = 0;
  for (const Edge& e : edges_) {
    if (labels[e.u] == labels[e.v]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(edges_.size());
}

}  // namespace ppfr::graph

#ifndef PPFR_PRIVACY_ATTACK_LINK_STEALING_H_
#define PPFR_PRIVACY_ATTACK_LINK_STEALING_H_

#include <vector>

#include "la/matrix.h"
#include "privacy/attack/pair_sampler.h"
#include "privacy/distance.h"

namespace ppfr::privacy {

// Outcome of the black-box link-stealing attack (Attack-0 of He et al.):
// the attacker queries the victim once per node, computes prediction
// distances for candidate pairs, and infers "connected" for the closer pairs.
struct AttackResult {
  // AUC of ranking pairs by -distance, one entry per AllDistanceKinds().
  std::vector<double> auc_per_distance;
  // Mean of auc_per_distance — the headline risk number (§VII-B "average AUC
  // derived from eight different distances").
  double mean_auc = 0.0;

  // Unsupervised attack: 2-means clustering of the (cosine) distances; the
  // low-distance cluster is predicted connected.
  double cluster_precision = 0.0;
  double cluster_recall = 0.0;
  double cluster_f1 = 0.0;
  double cluster_accuracy = 0.0;
};

// Runs the attack given the victim's posteriors (n x classes) and the
// evaluation pairs.
AttackResult LinkStealingAttack(const la::Matrix& probs, const PairSample& pairs);

// Distances of each pair list under one metric (helper, also used by the
// risk metric and tests).
std::vector<double> PairDistances(const la::Matrix& probs,
                                  const std::vector<std::pair<int, int>>& pairs,
                                  DistanceKind kind);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_ATTACK_LINK_STEALING_H_

#include "privacy/attack/pair_sampler.h"

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::privacy {

PairSample SamplePairs(const graph::Graph& g, int max_per_class, uint64_t seed) {
  PPFR_CHECK_GT(max_per_class, 0);
  const int n = g.num_nodes();
  PPFR_CHECK_GE(n, 2);
  Rng rng(seed);
  PairSample sample;

  // Positives: all edges, or a uniform subsample.
  const auto& edges = g.Edges();
  const int64_t num_edges = static_cast<int64_t>(edges.size());
  if (num_edges <= max_per_class) {
    for (const auto& e : edges) sample.connected.emplace_back(e.u, e.v);
  } else {
    for (int idx :
         rng.SampleWithoutReplacement(static_cast<int>(num_edges), max_per_class)) {
      sample.connected.emplace_back(edges[idx].u, edges[idx].v);
    }
  }

  // Negatives: rejection-sample unconnected pairs (the graph is sparse, so
  // rejections are rare).
  const size_t target = sample.connected.size();
  int64_t attempts = 0;
  const int64_t max_attempts = static_cast<int64_t>(target) * 1000 + 1000;
  while (sample.unconnected.size() < target && attempts < max_attempts) {
    ++attempts;
    const int u = static_cast<int>(rng.UniformInt(n));
    const int v = static_cast<int>(rng.UniformInt(n));
    if (u == v || g.HasEdge(u, v)) continue;
    sample.unconnected.emplace_back(u, v);
  }
  PPFR_CHECK_EQ(sample.unconnected.size(), target)
      << "could not sample enough unconnected pairs (graph too dense?)";
  return sample;
}

}  // namespace ppfr::privacy

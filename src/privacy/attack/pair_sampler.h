#ifndef PPFR_PRIVACY_ATTACK_PAIR_SAMPLER_H_
#define PPFR_PRIVACY_ATTACK_PAIR_SAMPLER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace ppfr::privacy {

// Node pairs the attacker is evaluated on: the positives are (a sample of)
// the true edges, the negatives an equal-size sample of unconnected pairs.
struct PairSample {
  std::vector<std::pair<int, int>> connected;
  std::vector<std::pair<int, int>> unconnected;
};

// Samples up to `max_per_class` pairs of each class against the TRUE graph
// (attacks are always scored on the confidential edges, whatever structure
// the defender trained on). Deterministic in the seed.
PairSample SamplePairs(const graph::Graph& g, int max_per_class, uint64_t seed);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_ATTACK_PAIR_SAMPLER_H_
